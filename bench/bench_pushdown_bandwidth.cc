/// \file bench_pushdown_bandwidth.cc
/// \brief PUSHDOWN — Section 3.3's arbitration-bandwidth measurement with
/// near-data predicate pushdown on vs off.
///
/// Section 3.3 shows the arbitration network is the machine's scarce
/// resource: every operand byte a processor consumes crosses it. For
/// selective restricts the near-data path attacks the numerator instead of
/// the packet overhead — the compiled predicate runs where the page lives
/// (engine: inside the buffer hierarchy; simulator: at the disk-cache port
/// during IC staging), so only surviving tuples are repacked into machine
/// units and cross the rings.
///
/// Runs a three-query selective mix (2% range, 1% point, count-only 5%
/// range) under PushdownPolicy::kForceOff vs kHonorPlan on BOTH backends,
/// asserting byte-identical tuple-set hashes across every policy x backend
/// cell and identical filtered-page counts across backends. Headline gauge
/// `pushdown.sec33_bytes_reduction_x` is the simulator's outer-ring byte
/// collapse, asserted >= 5x at scale >= 0.1.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "engine/run.h"
#include "machine/simulator.h"
#include "ra/optimizer.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

/// Order-insensitive content hash: sum of per-tuple FNV-1a over raw bytes.
uint64_t HashResult(const QueryResult& result) {
  uint64_t sum = 0;
  for (const PagePtr& page : result.pages()) {
    for (int i = 0; i < page->num_tuples(); ++i) {
      const std::string t = page->tuple(i).ToString();
      uint64_t h = 1469598103934665603ULL;
      for (char c : t) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
      }
      sum += h;
    }
  }
  return sum;
}

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.5);
  const int page_bytes = bench::FlagInt(argc, argv, "pagebytes", 16384);
  const uint64_t n = static_cast<uint64_t>(scale * 1e6);
  std::printf("== PUSHDOWN: near-data restricts, Section 3.3 re-measured ==\n");
  std::printf("# scale %.2f: %llu tuples (%.2f GB), %d B pages\n", scale,
              static_cast<unsigned long long>(n),
              static_cast<double>(n) * 100 / 1e9, page_bytes);

  StorageEngine storage(page_bytes);
  {
    auto rel = GenerateRelation(&storage, "src", n, /*seed=*/7);
    DFDB_CHECK(rel.ok()) << rel.status();
  }
  DFDB_CHECK(storage.SyncAllStats().ok());
  DFDB_CHECK(storage.CommitRelation("src").ok());

  struct Bench {
    const char* name;
    PlanNodePtr root;
  };
  std::vector<Bench> queries;
  // ~2% uniform range: zone maps cannot prune (every page spans the full
  // k1000 domain), so the whole reduction comes from pushdown.
  queries.push_back({"range_2pct", MakeRestrict(MakeScan("src"),
                                                Lt(Col("k1000"), Lit(20)))});
  // 1% point restrict.
  queries.push_back(
      {"point_1pct", MakeRestrict(MakeScan("src"), Eq(Col("k100"), Lit(7)))});
  // Count-only scan: the aggregate consumes the pushed-down restrict, so
  // only the count — not the matching tuples — leaves the query.
  queries.push_back(
      {"count_5pct",
       MakeAggregate(
           MakeRestrict(MakeScan("src"), Lt(Col("k1000"), Lit(50))), {},
           {AggregateSpec{AggregateSpec::Func::kCount, "", "matches"}})});

  Optimizer optimizer(&storage.catalog());
  std::vector<PlanNodePtr> plans;
  int scans_pushdown = 0;
  for (const Bench& q : queries) {
    OptimizerReport report;
    auto p = optimizer.Optimize(*q.root, &report);
    DFDB_CHECK(p.ok()) << p.status();
    scans_pushdown += report.scans_pushdown;
    plans.push_back(std::move(*p));
  }
  DFDB_CHECK(scans_pushdown == static_cast<int>(queries.size()))
      << "optimizer should mark every selective scan pushable, got "
      << scans_pushdown;

  struct Mode {
    const char* name;
    PushdownPolicy policy;
  };
  const Mode modes[] = {
      {"off", PushdownPolicy::kForceOff},
      {"on", PushdownPolicy::kHonorPlan},
  };

  bench::Table table({"query", "mode", "engine_arb_bytes", "engine_s",
                      "machine_outer_bytes", "machine_s", "tuples"});
  uint64_t engine_arb[2] = {0, 0};
  uint64_t machine_outer[2] = {0, 0};
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    uint64_t reference_hash = 0;
    uint64_t reference_tuples = 0;
    uint64_t engine_filtered = 0;
    for (int mi = 0; mi < 2; ++mi) {
      const Mode& mode = modes[mi];
      const PlanNode& plan = *plans[qi];
      // Threads engine.
      ExecOptions eopts;
      eopts.page_bytes = page_bytes;
      eopts.pushdown = mode.policy;
      ExecStats estats;
      auto eresult = RunQuery(&storage, plan, eopts, &estats);
      DFDB_CHECK(eresult.ok()) << eresult.status();
      // Ring simulator.
      MachineOptions mopts;
      mopts.config.page_bytes = page_bytes;
      mopts.pushdown = mode.policy;
      MachineSimulator sim(&storage, mopts);
      auto mreport = sim.Run({&plan});
      DFDB_CHECK(mreport.ok()) << mreport.status();
      DFDB_CHECK(mreport->results.size() == 1);

      // Byte-identical results across policies and backends.
      const uint64_t ehash = HashResult(*eresult);
      const uint64_t mhash = HashResult(mreport->results[0]);
      DFDB_CHECK(ehash == mhash)
          << queries[qi].name << " " << mode.name
          << ": engine and machine disagree";
      if (mi == 0) {
        reference_hash = ehash;
        reference_tuples = eresult->num_tuples();
      } else {
        DFDB_CHECK(ehash == reference_hash)
            << queries[qi].name
            << ": pushed-down result differs from raw path";
        // Both backends must have filtered the same page set.
        engine_filtered = eresult->stats().pushdown.pages_filtered;
        DFDB_CHECK(engine_filtered > 0)
            << queries[qi].name << ": engine pushdown never engaged";
        DFDB_CHECK(mreport->pushdown.pages_filtered == engine_filtered)
            << queries[qi].name << ": backends filtered different page sets ("
            << mreport->pushdown.pages_filtered << " vs " << engine_filtered
            << ")";
      }
      engine_arb[mi] += eresult->stats().arbitration_bytes;
      machine_outer[mi] += mreport->bytes.outer_ring;
      table.AddRow(
          {queries[qi].name, mode.name,
           StrFormat("%llu", static_cast<unsigned long long>(
                                 eresult->stats().arbitration_bytes)),
           StrFormat("%.3f", eresult->stats().wall_seconds),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 mreport->bytes.outer_ring)),
           StrFormat("%.3f", mreport->makespan.ToSecondsF()),
           StrFormat("%llu",
                     static_cast<unsigned long long>(reference_tuples))});
    }
  }
  table.Print("pushdown_bandwidth");

  const double machine_reduction =
      machine_outer[1] > 0 ? static_cast<double>(machine_outer[0]) /
                                 static_cast<double>(machine_outer[1])
                           : 1.0;
  const double engine_reduction =
      engine_arb[1] > 0 ? static_cast<double>(engine_arb[0]) /
                              static_cast<double>(engine_arb[1])
                        : 1.0;
  std::printf("# outer-ring bytes: %llu raw, %llu pushed (%.1fx fewer); "
              "engine arbitration: %.1fx fewer\n",
              static_cast<unsigned long long>(machine_outer[0]),
              static_cast<unsigned long long>(machine_outer[1]),
              machine_reduction, engine_reduction);
  if (scale >= 0.1) {
    DFDB_CHECK(machine_reduction >= 5.0)
        << "acceptance: expected >=5x fewer arbitration-network bytes at "
        << "scale " << scale << ", got " << machine_reduction;
  }

  // Whole-mix runs per mode: full counter snapshots for the JSON report
  // (machine.pushdown.* / engine.pushdown.* observability contract), with
  // the headline gauges on the pushed-down runs.
  std::vector<const PlanNode*> mix;
  for (const PlanNodePtr& p : plans) mix.push_back(p.get());
  for (int mi = 0; mi < 2; ++mi) {
    MachineOptions mopts;
    mopts.config.page_bytes = page_bytes;
    mopts.pushdown = modes[mi].policy;
    MachineSimulator sim(&storage, mopts);
    auto mreport = sim.Run(mix);
    DFDB_CHECK(mreport.ok()) << mreport.status();
    obs::RunReport run = mreport->ToReport();
    run.label = StrFormat("machine pushdown=%s", modes[mi].name);
    if (mi == 1) {
      run.gauges["pushdown.sec33_bytes_reduction_x"] = machine_reduction;
      run.gauges["pushdown.outer_ring_bytes_raw"] =
          static_cast<double>(machine_outer[0]);
      run.gauges["pushdown.outer_ring_bytes_pushed"] =
          static_cast<double>(machine_outer[1]);
    }
    bench::JsonReport::Global().AddRunReport(run);
    std::printf("# %s: %s\n", run.label.c_str(), mreport->ToString().c_str());

    ExecOptions eopts;
    eopts.page_bytes = page_bytes;
    eopts.pushdown = modes[mi].policy;
    ExecStats estats;
    auto eresults = RunBatch(&storage, mix, eopts, &estats);
    DFDB_CHECK(eresults.ok()) << eresults.status();
    obs::RunReport erun = estats.ToReport();
    erun.label = StrFormat("engine pushdown=%s", modes[mi].name);
    if (mi == 1) {
      erun.gauges["pushdown.engine_arb_reduction_x"] = engine_reduction;
    }
    bench::JsonReport::Global().AddRunReport(erun);
  }

  bench::WriteJson("bench_pushdown_bandwidth", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

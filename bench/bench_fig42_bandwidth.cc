/// \file bench_fig42_bandwidth.cc
/// \brief FIG-4.2 — "Bandwidth requirements of DIRECT with page-level
/// granularity" (Section 4.1, Figure 4.2).
///
/// Paper setup: the ten-query benchmark of Section 3.2, 16 KB operand
/// pages, LSI-11 IPs (16 KB page in 33 ms), CCD disk cache, two IBM 3330
/// drives. "The bandwidth for each of the different processor levels was
/// obtained by dividing the total number of bytes transferred by the
/// execution time of the benchmark" — average, not peak.
///
/// Expected shape: outer-ring average bandwidth grows with the number of
/// IPs and stays below the 40 Mbps DLCN ring budget up to ~50 IPs; the
/// disk level saturates at the two-drive limit.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "machine/simulator.h"

namespace dfdb {
namespace {

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 1.0);
  std::printf("== FIG-4.2: average bandwidth per storage level vs #IPs ==\n");
  StorageEngine storage(/*default_page_bytes=*/16384);
  bench::BuildDatabaseOrDie(&storage, scale);
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans = bench::QueryPointers(queries);

  bench::Table table({"ips", "exec_time_s", "outer_ring_mbps",
                      "inner_ring_kbps", "cache_mbps", "disk_mbps",
                      "ip_util_pct", "under_40mbps"});
  // Shared RunReport path (same RunTable type bench_fig31 uses).
  bench::RunTable runs({"ips"});
  const int ips[] = {1, 2, 5, 10, 20, 30, 40, 50, 75, 100};
  for (int p : ips) {
    MachineOptions opts;
    opts.granularity = Granularity::kPage;
    opts.config.num_instruction_processors = p;
    opts.config.num_instruction_controllers = 8;
    opts.config.page_bytes = 16384;
    MachineSimulator sim(&storage, opts);
    auto report = sim.Run(plans);
    DFDB_CHECK(report.ok()) << report.status();
    const double outer_mbps = report->OuterRingBps() / 1e6;
    table.AddRow({StrFormat("%d", p),
                  StrFormat("%.3f", report->makespan.ToSecondsF()),
                  StrFormat("%.3f", outer_mbps),
                  StrFormat("%.3f", report->InnerRingBps() / 1e3),
                  StrFormat("%.3f", report->CacheBps() / 1e6),
                  StrFormat("%.3f", report->DiskBps() / 1e6),
                  StrFormat("%.1f", report->IpUtilization() * 100.0),
                  outer_mbps < 40.0 ? "yes" : "NO"});
    obs::RunReport run = report->ToReport();
    run.label = StrFormat("ips=%d", p);
    runs.Add({StrFormat("%d", p)}, run);
  }
  table.Print("fig42");
  runs.Print("fig42_runs");
  std::printf(
      "# Paper claim: a 40 Mbps shift-register-insertion ring is sufficient\n"
      "# for configurations of up to ~50 instruction processors.\n");
  bench::WriteJson("bench_fig42_bandwidth", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

/// \file bench_operators.cc
/// \brief OPS — google-benchmark microbenchmarks of the operator kernels
/// that the instruction processors execute.

#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include <cstring>
#include <vector>

#include "common/logging.h"
#include "operators/aggregator.h"
#include "operators/dedup.h"
#include "operators/kernels.h"
#include "operators/sort_merge_join.h"
#include "storage/storage_engine.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

/// Shared fixture data: one generated relation, materialized pages.
struct BenchData {
  StorageEngine storage{16384};
  Schema schema = BenchmarkSchema();
  std::vector<PagePtr> pages;
  std::vector<PagePtr> small_pages;

  BenchData() {
    auto r1 = GenerateRelation(&storage, "bench", 20000, 1);
    DFDB_CHECK(r1.ok());
    auto f1 = storage.GetHeapFile("bench");
    DFDB_CHECK(f1.ok());
    for (PageId id : (*f1)->PageIds()) {
      auto p = storage.page_store().Get(id);
      DFDB_CHECK(p.ok());
      pages.push_back(*p);
    }
    auto r2 = GenerateRelation(&storage, "bench_small", 2000, 2);
    DFDB_CHECK(r2.ok());
    auto f2 = storage.GetHeapFile("bench_small");
    DFDB_CHECK(f2.ok());
    for (PageId id : (*f2)->PageIds()) {
      auto p = storage.page_store().Get(id);
      DFDB_CHECK(p.ok());
      small_pages.push_back(*p);
    }
  }
};

BenchData& Data() {
  static BenchData* data = new BenchData();
  return *data;
}

/// Sink that counts, avoiding allocation noise in kernel benchmarks.
class CountingSink final : public PageSink {
 public:
  Status Emit(Slice tuple) override {
    count_ += tuple.size();
    return Status::OK();
  }
  size_t count() const { return count_; }

 private:
  size_t count_ = 0;
};

void BM_RestrictPage(benchmark::State& state) {
  BenchData& d = Data();
  ExprPtr pred = Lt(Col("k1000"), Lit(static_cast<int32_t>(state.range(0))));
  DFDB_CHECK_OK(pred->Bind(d.schema, nullptr));
  size_t bytes = 0;
  for (auto _ : state) {
    CountingSink sink;
    for (const PagePtr& page : d.pages) {
      DFDB_CHECK_OK(RestrictPage(d.schema, *pred, *page, &sink));
      bytes += static_cast<size_t>(page->payload_bytes());
    }
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_RestrictPage)->Arg(10)->Arg(100)->Arg(500)->Arg(1000);

void BM_ProjectPage(benchmark::State& state) {
  BenchData& d = Data();
  const std::vector<int> indices = {0, 6, 8};
  size_t bytes = 0;
  for (auto _ : state) {
    CountingSink sink;
    for (const PagePtr& page : d.pages) {
      DFDB_CHECK_OK(ProjectPage(d.schema, indices, *page, &sink));
      bytes += static_cast<size_t>(page->payload_bytes());
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ProjectPage);

void BM_NestedLoopsJoinPage(benchmark::State& state) {
  BenchData& d = Data();
  ExprPtr pred = Eq(Col("k100"), RightCol("k100"));
  DFDB_CHECK_OK(pred->Bind(d.schema, &d.schema));
  size_t pairs = 0;
  for (auto _ : state) {
    CountingSink sink;
    DFDB_CHECK_OK(JoinPages(d.schema, d.schema, *pred, *d.pages[0],
                            *d.small_pages[0], &sink));
    pairs += static_cast<size_t>(d.pages[0]->num_tuples()) *
             static_cast<size_t>(d.small_pages[0]->num_tuples());
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(pairs));
}
BENCHMARK(BM_NestedLoopsJoinPage);

void BM_SortMergeJoin(benchmark::State& state) {
  BenchData& d = Data();
  const int key = 6;  // k100.
  for (auto _ : state) {
    CountingSink sink;
    DFDB_CHECK_OK(SortMergeJoin(d.schema, d.small_pages, key, d.schema,
                                d.small_pages, key, &sink));
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_SortMergeJoin);

void BM_DuplicateElimination(benchmark::State& state) {
  BenchData& d = Data();
  const std::vector<int> indices = {4};  // k10: heavy duplication.
  for (auto _ : state) {
    DuplicateEliminator dedup;
    size_t fresh = 0;
    for (const PagePtr& page : d.pages) {
      for (int i = 0; i < page->num_tuples(); ++i) {
        const std::string projected =
            ProjectTuple(d.schema, page->tuple(i), indices);
        if (dedup.Insert(Slice(projected))) ++fresh;
      }
    }
    benchmark::DoNotOptimize(fresh);
  }
}
BENCHMARK(BM_DuplicateElimination);

void BM_Aggregate(benchmark::State& state) {
  BenchData& d = Data();
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "cnt"});
  specs.push_back({AggregateSpec::Func::kSum, "k1000", "total"});
  Schema out = Schema::CreateOrDie({Column::Int32("k100"),
                                    Column::Int64("cnt"),
                                    Column::Int64("total")});
  for (auto _ : state) {
    auto agg = Aggregator::Create(d.schema, out, {"k100"}, specs);
    DFDB_CHECK(agg.ok());
    for (const PagePtr& page : d.pages) {
      DFDB_CHECK_OK(agg->Consume(*page));
    }
    CountingSink sink;
    DFDB_CHECK_OK(agg->Finish(&sink));
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_Aggregate);

void BM_TupleEncode(benchmark::State& state) {
  Schema schema = BenchmarkSchema();
  std::vector<Value> row{
      Value::Int32(1),  Value::Int32(2),  Value::Int32(0), Value::Int32(1),
      Value::Int32(5),  Value::Int32(10), Value::Int32(42), Value::Int32(999),
      Value::Double(0.5), Value::Char("padpadpad")};
  for (auto _ : state) {
    auto encoded = EncodeTuple(schema, row);
    DFDB_CHECK(encoded.ok());
    benchmark::DoNotOptimize(*encoded);
  }
}
BENCHMARK(BM_TupleEncode);

void BM_PageAppend(benchmark::State& state) {
  Schema schema = BenchmarkSchema();
  const std::string tuple(static_cast<size_t>(schema.tuple_width()), 'x');
  for (auto _ : state) {
    auto page = Page::Create(1, schema.tuple_width(), 16384);
    DFDB_CHECK(page.ok());
    while (!page->full()) {
      DFDB_CHECK_OK(page->Append(Slice(tuple)));
    }
    benchmark::DoNotOptimize(page->num_tuples());
  }
}
BENCHMARK(BM_PageAppend);

}  // namespace
}  // namespace dfdb

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// results/bench_operators.json so this binary matches the other benches'
// JSON contract (explicit --benchmark_out flags still win).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=results/bench_operators.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    ::mkdir("results", 0755);  // Best effort.
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

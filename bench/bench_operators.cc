/// \file bench_operators.cc
/// \brief OPS — operator-kernel throughput: compiled predicate programs vs
/// the interpreted Expr oracle, and the hash-join fast path vs nested loops.
///
/// Default mode measures page-at-a-time kernel throughput both ways on the
/// standard benchmark relations, prints a before/after table, and exports
/// the gauges (`kernel.restrict.compiled_tuples_per_s`, ...) plus one real
/// engine run's counter snapshot (`engine.kernel.*`) through the shared
/// RunReport JSON path (`--json=PATH`, default results/bench_operators.json).
/// `--micro` instead runs the original google-benchmark microbenchmarks,
/// writing results/bench_operators_micro.json.

#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include <chrono>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "engine/run.h"
#include "operators/aggregator.h"
#include "operators/dedup.h"
#include "operators/kernels.h"
#include "operators/sort_merge_join.h"
#include "ra/analyzer.h"
#include "ra/expr_compile.h"
#include "storage/storage_engine.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

/// Shared fixture data: one generated relation, materialized pages.
struct BenchData {
  StorageEngine storage{16384};
  Schema schema = BenchmarkSchema();
  std::vector<PagePtr> pages;
  std::vector<PagePtr> small_pages;

  BenchData() {
    auto r1 = GenerateRelation(&storage, "bench", 20000, 1);
    DFDB_CHECK(r1.ok());
    auto f1 = storage.GetHeapFile("bench");
    DFDB_CHECK(f1.ok());
    for (PageId id : (*f1)->PageIds()) {
      auto p = storage.page_store().Get(id);
      DFDB_CHECK(p.ok());
      pages.push_back(*p);
    }
    auto r2 = GenerateRelation(&storage, "bench_small", 2000, 2);
    DFDB_CHECK(r2.ok());
    auto f2 = storage.GetHeapFile("bench_small");
    DFDB_CHECK(f2.ok());
    for (PageId id : (*f2)->PageIds()) {
      auto p = storage.page_store().Get(id);
      DFDB_CHECK(p.ok());
      small_pages.push_back(*p);
    }
  }
};

BenchData& Data() {
  static BenchData* data = new BenchData();
  return *data;
}

/// Sink that counts, avoiding allocation noise in kernel benchmarks.
class CountingSink final : public PageSink {
 public:
  Status Emit(Slice tuple) override {
    count_ += tuple.size();
    return Status::OK();
  }
  Status EmitParts(const Slice* parts, size_t n) override {
    for (size_t i = 0; i < n; ++i) count_ += parts[i].size();
    return Status::OK();
  }
  size_t count() const { return count_; }

 private:
  size_t count_ = 0;
};

// ---------------------------------------------------------------------------
// Gauge mode (default): interpreted vs compiled kernel throughput
// ---------------------------------------------------------------------------

/// Best-of-N wall time of one full workload pass (best, not mean, to shed
/// scheduler noise; each pass is milliseconds to seconds of work).
template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Comparison {
  const char* name;
  double interpreted_per_s = 0;
  double compiled_per_s = 0;
  double speedup() const {
    return interpreted_per_s > 0 ? compiled_per_s / interpreted_per_s : 0;
  }
};

/// Restrict comparison over every page of "bench" (tuples/s).
Comparison CompareRestrict(const char* name, ExprPtr pred, int reps) {
  BenchData& d = Data();
  DFDB_CHECK_OK(pred->Bind(d.schema, nullptr));
  auto compiled = CompiledPredicate::Compile(*pred, d.schema);
  DFDB_CHECK(compiled.ok()) << compiled.status();
  uint64_t tuples = 0;
  for (const PagePtr& page : d.pages) {
    tuples += static_cast<uint64_t>(page->num_tuples());
  }
  Comparison out{name};
  const double ti = BestSeconds(reps, [&] {
    CountingSink sink;
    for (const PagePtr& page : d.pages) {
      DFDB_CHECK_OK(RestrictPage(d.schema, *pred, *page, &sink));
    }
    benchmark::DoNotOptimize(sink.count());
  });
  const double tc = BestSeconds(reps, [&] {
    CountingSink sink;
    for (const PagePtr& page : d.pages) {
      DFDB_CHECK_OK(RestrictPage(*compiled, *page, &sink));
    }
    benchmark::DoNotOptimize(sink.count());
  });
  out.interpreted_per_s = static_cast<double>(tuples) / ti;
  out.compiled_per_s = static_cast<double>(tuples) / tc;
  return out;
}

/// CountMatches: per-tuple interpreted EvalBool loop (the pre-compilation
/// implementation) vs the compiled counting kernel (tuples/s).
Comparison CompareCount(const char* name, ExprPtr pred, int reps) {
  BenchData& d = Data();
  DFDB_CHECK_OK(pred->Bind(d.schema, nullptr));
  auto compiled = CompiledPredicate::Compile(*pred, d.schema);
  DFDB_CHECK(compiled.ok()) << compiled.status();
  uint64_t tuples = 0;
  for (const PagePtr& page : d.pages) {
    tuples += static_cast<uint64_t>(page->num_tuples());
  }
  Comparison out{name};
  const double ti = BestSeconds(reps, [&] {
    uint64_t n = 0;
    for (const PagePtr& page : d.pages) {
      for (int i = 0; i < page->num_tuples(); ++i) {
        TupleView view(&d.schema, page->tuple(i));
        auto r = pred->EvalBool(view, nullptr);
        DFDB_CHECK(r.ok());
        n += *r ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(n);
  });
  const double tc = BestSeconds(reps, [&] {
    uint64_t n = 0;
    for (const PagePtr& page : d.pages) {
      n += CountMatches(*compiled, *page);
    }
    benchmark::DoNotOptimize(n);
  });
  out.interpreted_per_s = static_cast<double>(tuples) / ti;
  out.compiled_per_s = static_cast<double>(tuples) / tc;
  return out;
}

/// Join comparison: interpreted nested loops vs the compiled kernel (hash
/// path for equijoins) over outer pages of "bench" x all of "bench_small".
/// Throughput is tuple *pairs* per second — the nested-loops work unit.
Comparison CompareJoin(const char* name, ExprPtr pred, size_t outer_pages,
                       int reps) {
  BenchData& d = Data();
  DFDB_CHECK_OK(pred->Bind(d.schema, &d.schema));
  auto compiled = CompiledJoinPredicate::Compile(*pred, d.schema, d.schema);
  DFDB_CHECK(compiled.ok()) << compiled.status();
  DFDB_CHECK(compiled->hash_eligible());
  outer_pages = std::min(outer_pages, d.pages.size());
  uint64_t pairs = 0;
  for (size_t o = 0; o < outer_pages; ++o) {
    for (const PagePtr& inner : d.small_pages) {
      pairs += static_cast<uint64_t>(d.pages[o]->num_tuples()) *
               static_cast<uint64_t>(inner->num_tuples());
    }
  }
  Comparison out{name};
  const double ti = BestSeconds(reps, [&] {
    CountingSink sink;
    for (size_t o = 0; o < outer_pages; ++o) {
      for (const PagePtr& inner : d.small_pages) {
        DFDB_CHECK_OK(
            JoinPages(d.schema, d.schema, *pred, *d.pages[o], *inner, &sink));
      }
    }
    benchmark::DoNotOptimize(sink.count());
  });
  JoinScratch scratch;
  const double tc = BestSeconds(reps, [&] {
    CountingSink sink;
    for (size_t o = 0; o < outer_pages; ++o) {
      for (const PagePtr& inner : d.small_pages) {
        DFDB_CHECK_OK(JoinPages(*compiled, *d.pages[o], *inner, &scratch,
                                &sink, nullptr));
      }
    }
    benchmark::DoNotOptimize(sink.count());
  });
  out.interpreted_per_s = static_cast<double>(pairs) / ti;
  out.compiled_per_s = static_cast<double>(pairs) / tc;
  return out;
}

/// One real engine execution (restrict + equijoin), proving the
/// `engine.kernel.*` counter family flows end to end: the exported run must
/// show compiled pages and a hash join.
obs::RunReport EngineCounterRun() {
  BenchData& d = Data();
  PlanNodePtr plan = MakeJoin(
      MakeRestrict(MakeScan("bench"), Lt(Col("k1000"), Lit(100))),
      MakeScan("bench_small"), Eq(Col("id"), RightCol("id")));
  Analyzer analyzer(&d.storage.catalog());
  auto analysis = analyzer.Resolve(plan.get());
  DFDB_CHECK(analysis.ok()) << analysis.status();
  ExecStats stats;
  auto result = RunQuery(&d.storage, *plan, ExecOptions{}, &stats);
  DFDB_CHECK(result.ok()) << result.status();
  DFDB_CHECK(stats.kernel.compiled_pages > 0);
  DFDB_CHECK(stats.kernel.hash_joins > 0);
  DFDB_CHECK(stats.kernel.compile_fallbacks == 0);
  obs::RunReport report = stats.ToReport();
  report.label = "restrict+hashjoin";
  return report;
}

int GaugeMain(int argc, char** argv) {
  const int reps = bench::FlagInt(argc, argv, "reps", 3);
  std::printf("== OPS: compiled kernels vs interpreted oracle ==\n");
  Data();  // Materialize relations before timing.

  std::vector<Comparison> rows;
  // Single compare, selective (10%) and half-selective shapes.
  rows.push_back(CompareRestrict("restrict.k1000_lt_100",
                                 Lt(Col("k1000"), Lit(100)), reps));
  rows.push_back(CompareRestrict("restrict.k1000_lt_500",
                                 Lt(Col("k1000"), Lit(500)), reps));
  // Conjunction of compares (the kConjunction fast shape).
  rows.push_back(CompareRestrict(
      "restrict.conj", And(Eq(Col("k2"), Lit(1)), Lt(Col("k100"), Lit(50))),
      reps));
  // Double compare and a generic-program disjunction.
  rows.push_back(CompareRestrict("restrict.val_lt_half",
                                 Lt(Col("val"), Lit(0.5)), reps));
  rows.push_back(CompareRestrict(
      "restrict.generic_or",
      Or(Lt(Col("k1000"), Lit(50)), Gt(Col("val"), Lit(0.95))), reps));
  rows.push_back(
      CompareCount("count.k1000_lt_100", Lt(Col("k1000"), Lit(100)), reps));
  // Selective equijoin (unique keys) and a fan-out equijoin.
  rows.push_back(
      CompareJoin("join.eq_id", Eq(Col("id"), RightCol("id")), 4, reps));
  rows.push_back(CompareJoin("join.eq_k100",
                             Eq(Col("k100"), RightCol("k100")), 4, reps));

  bench::Table table({"kernel", "interpreted/s", "compiled/s", "speedup"});
  obs::RunReport report = EngineCounterRun();
  for (const Comparison& c : rows) {
    table.AddRow({c.name, StrFormat("%.3gM", c.interpreted_per_s / 1e6),
                  StrFormat("%.3gM", c.compiled_per_s / 1e6),
                  StrFormat("%.1fx", c.speedup())});
    const std::string base = std::string("kernel.") + c.name;
    report.gauges[base + ".interpreted_per_s"] = c.interpreted_per_s;
    report.gauges[base + ".compiled_per_s"] = c.compiled_per_s;
    report.gauges[base + ".speedup_x"] = c.speedup();
  }
  table.Print("ops_kernels");
  bench::JsonReport::Global().AddRunReport(report);
  bench::WriteJson("bench_operators", argc, argv);
  return 0;
}

// ---------------------------------------------------------------------------
// Micro mode (--micro): the original google-benchmark suite
// ---------------------------------------------------------------------------

void BM_RestrictPage(benchmark::State& state) {
  BenchData& d = Data();
  ExprPtr pred = Lt(Col("k1000"), Lit(static_cast<int32_t>(state.range(0))));
  DFDB_CHECK_OK(pred->Bind(d.schema, nullptr));
  size_t bytes = 0;
  for (auto _ : state) {
    CountingSink sink;
    for (const PagePtr& page : d.pages) {
      DFDB_CHECK_OK(RestrictPage(d.schema, *pred, *page, &sink));
      bytes += static_cast<size_t>(page->payload_bytes());
    }
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_RestrictPage)->Arg(10)->Arg(100)->Arg(500)->Arg(1000);

void BM_RestrictPageCompiled(benchmark::State& state) {
  BenchData& d = Data();
  ExprPtr pred = Lt(Col("k1000"), Lit(static_cast<int32_t>(state.range(0))));
  DFDB_CHECK_OK(pred->Bind(d.schema, nullptr));
  auto compiled = CompiledPredicate::Compile(*pred, d.schema);
  DFDB_CHECK(compiled.ok());
  size_t bytes = 0;
  for (auto _ : state) {
    CountingSink sink;
    for (const PagePtr& page : d.pages) {
      DFDB_CHECK_OK(RestrictPage(*compiled, *page, &sink));
      bytes += static_cast<size_t>(page->payload_bytes());
    }
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_RestrictPageCompiled)->Arg(10)->Arg(100)->Arg(500)->Arg(1000);

void BM_ProjectPage(benchmark::State& state) {
  BenchData& d = Data();
  const std::vector<int> indices = {0, 6, 8};
  size_t bytes = 0;
  for (auto _ : state) {
    CountingSink sink;
    for (const PagePtr& page : d.pages) {
      DFDB_CHECK_OK(ProjectPage(d.schema, indices, *page, &sink));
      bytes += static_cast<size_t>(page->payload_bytes());
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ProjectPage);

void BM_NestedLoopsJoinPage(benchmark::State& state) {
  BenchData& d = Data();
  ExprPtr pred = Eq(Col("k100"), RightCol("k100"));
  DFDB_CHECK_OK(pred->Bind(d.schema, &d.schema));
  size_t pairs = 0;
  for (auto _ : state) {
    CountingSink sink;
    DFDB_CHECK_OK(JoinPages(d.schema, d.schema, *pred, *d.pages[0],
                            *d.small_pages[0], &sink));
    pairs += static_cast<size_t>(d.pages[0]->num_tuples()) *
             static_cast<size_t>(d.small_pages[0]->num_tuples());
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(pairs));
}
BENCHMARK(BM_NestedLoopsJoinPage);

void BM_HashJoinPage(benchmark::State& state) {
  BenchData& d = Data();
  ExprPtr pred = Eq(Col("k100"), RightCol("k100"));
  DFDB_CHECK_OK(pred->Bind(d.schema, &d.schema));
  auto compiled = CompiledJoinPredicate::Compile(*pred, d.schema, d.schema);
  DFDB_CHECK(compiled.ok());
  JoinScratch scratch;
  size_t pairs = 0;
  for (auto _ : state) {
    CountingSink sink;
    DFDB_CHECK_OK(JoinPages(*compiled, *d.pages[0], *d.small_pages[0],
                            &scratch, &sink, nullptr));
    pairs += static_cast<size_t>(d.pages[0]->num_tuples()) *
             static_cast<size_t>(d.small_pages[0]->num_tuples());
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(pairs));
}
BENCHMARK(BM_HashJoinPage);

void BM_SortMergeJoin(benchmark::State& state) {
  BenchData& d = Data();
  const int key = 6;  // k100.
  for (auto _ : state) {
    CountingSink sink;
    DFDB_CHECK_OK(SortMergeJoin(d.schema, d.small_pages, key, d.schema,
                                d.small_pages, key, &sink));
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_SortMergeJoin);

void BM_DuplicateElimination(benchmark::State& state) {
  BenchData& d = Data();
  const std::vector<int> indices = {4};  // k10: heavy duplication.
  for (auto _ : state) {
    DuplicateEliminator dedup;
    size_t fresh = 0;
    std::string projected;
    for (const PagePtr& page : d.pages) {
      for (int i = 0; i < page->num_tuples(); ++i) {
        ProjectTupleInto(d.schema, page->tuple(i), indices, &projected);
        if (dedup.Insert(Slice(projected))) ++fresh;
      }
    }
    benchmark::DoNotOptimize(fresh);
  }
}
BENCHMARK(BM_DuplicateElimination);

void BM_Aggregate(benchmark::State& state) {
  BenchData& d = Data();
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "cnt"});
  specs.push_back({AggregateSpec::Func::kSum, "k1000", "total"});
  Schema out = Schema::CreateOrDie({Column::Int32("k100"),
                                    Column::Int64("cnt"),
                                    Column::Int64("total")});
  for (auto _ : state) {
    auto agg = Aggregator::Create(d.schema, out, {"k100"}, specs);
    DFDB_CHECK(agg.ok());
    for (const PagePtr& page : d.pages) {
      DFDB_CHECK_OK(agg->Consume(*page));
    }
    CountingSink sink;
    DFDB_CHECK_OK(agg->Finish(&sink));
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_Aggregate);

void BM_TupleEncode(benchmark::State& state) {
  Schema schema = BenchmarkSchema();
  std::vector<Value> row{
      Value::Int32(1),  Value::Int32(2),  Value::Int32(0), Value::Int32(1),
      Value::Int32(5),  Value::Int32(10), Value::Int32(42), Value::Int32(999),
      Value::Double(0.5), Value::Char("padpadpad")};
  for (auto _ : state) {
    auto encoded = EncodeTuple(schema, row);
    DFDB_CHECK(encoded.ok());
    benchmark::DoNotOptimize(*encoded);
  }
}
BENCHMARK(BM_TupleEncode);

void BM_PageAppend(benchmark::State& state) {
  Schema schema = BenchmarkSchema();
  const std::string tuple(static_cast<size_t>(schema.tuple_width()), 'x');
  for (auto _ : state) {
    auto page = Page::Create(1, schema.tuple_width(), 16384);
    DFDB_CHECK(page.ok());
    while (!page->full()) {
      DFDB_CHECK_OK(page->Append(Slice(tuple)));
    }
    benchmark::DoNotOptimize(page->num_tuples());
  }
}
BENCHMARK(BM_PageAppend);

/// --micro: google-benchmark suite, defaulting --benchmark_out to
/// results/bench_operators_micro.json (explicit flags still win).
int MicroMain(int argc, char** argv) {
  std::vector<char*> args;
  args.push_back(argv[0]);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) continue;
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
    args.push_back(argv[i]);
  }
  static char out_flag[] =
      "--benchmark_out=results/bench_operators_micro.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    ::mkdir("results", 0755);  // Best effort.
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

int Main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) return MicroMain(argc, argv);
  }
  return GaugeMain(argc, argv);
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

/// \file bench_pipeline_fusion.cc
/// \brief FUSION — pipelined operator fusion on the ten-query mix.
///
/// Runs the paper's ten-query benchmark both ways on the machine simulator:
/// materialized (every operator is an instruction; restrict results ride
/// the outer ring to the consuming IC) vs fused (the optimizer's per-edge
/// marks fold restrict-over-base producers into the consumer's operand, so
/// the IC filters during staging compaction and the restrict never occupies
/// an IP). Q1/Q2 are restrict-only roots — nothing to fold — so the
/// pipelineable subset is Q3..Q10; the aggregate speedup over that subset
/// is the headline gauge (`pipeline.q3_q10_speedup_x`).
///
/// One engine batch run per policy rides along so the report also carries
/// the threads backend's `engine.pipeline.*` counter family.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "engine/run.h"
#include "machine/simulator.h"
#include "ra/optimizer.h"

namespace dfdb {
namespace {

int Main(int argc, char** argv) {
  // Default scale 0.4: large enough that every query moves real pages,
  // small enough that the quadratic join page-pair work of Q9/Q10 does not
  // swamp the restrict edges being measured (at scale 1.0 the mix is
  // join-bound and no pipelining decision is visible in the makespan).
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.4);
  // Fusion removes whole instructions, so its makespan win shows when IPs
  // are scarce enough that restricts compete with joins for processor time
  // — with spare IPs the restricts hide behind the join entirely. Default
  // to the paper's minimal configuration: one IP, 1 KB pages (Section 3.3
  // reasons about 1 KB pages; small pages maximize the per-page dispatch
  // overhead that folding eliminates).
  const int ips = bench::FlagInt(argc, argv, "ips", 1);
  const int page_bytes = bench::FlagInt(argc, argv, "pagebytes", 1000);
  std::printf("== FUSION: fused vs materialized pipeline edges ==\n");
  StorageEngine storage(page_bytes);
  bench::BuildDatabaseOrDie(&storage, scale);

  // Optimizer-marked plans: DecidePipelining chooses per edge from catalog
  // stats; the fused runs honor exactly those marks.
  Optimizer optimizer(&storage.catalog());
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<PlanNodePtr> optimized;
  std::vector<int> fused_edges;
  for (const Query& q : queries) {
    OptimizerReport report;
    auto plan = optimizer.Optimize(*q.root, &report);
    DFDB_CHECK(plan.ok()) << plan.status();
    optimized.push_back(std::move(*plan));
    fused_edges.push_back(report.edges_fused);
  }

  MachineOptions base;
  base.config.num_instruction_processors = ips;
  base.config.page_bytes = page_bytes;
  // Isolate the fusion variable: near-data pushdown would pre-filter the
  // restricts during staging in both modes and mask the edge decision.
  base.pushdown = PushdownPolicy::kForceOff;

  bench::Table table({"query", "fused_edges", "materialized_s", "fused_s",
                      "speedup_x", "pages_elided"});
  double subset_mat = 0.0, subset_fused = 0.0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    double secs[2];
    uint64_t elided = 0;
    for (int mode = 0; mode < 2; ++mode) {
      MachineOptions opts = base;
      opts.pipeline = mode == 0 ? PipelinePolicy::kForceMaterialize
                                : PipelinePolicy::kHonorPlan;
      MachineSimulator sim(&storage, opts);
      auto report = sim.Run({optimized[qi].get()});
      DFDB_CHECK(report.ok()) << report.status();
      secs[mode] = report->makespan.ToSecondsF();
      if (mode == 1) elided = report->pipeline_pages_elided;
    }
    if (queries[qi].id >= 3) {
      subset_mat += secs[0];
      subset_fused += secs[1];
    }
    table.AddRow({queries[qi].name, StrFormat("%d", fused_edges[qi]),
                  StrFormat("%.3f", secs[0]), StrFormat("%.3f", secs[1]),
                  StrFormat("%.2fx", secs[0] / secs[1]),
                  StrFormat("%llu", static_cast<unsigned long long>(elided))});
  }
  table.Print("fusion");
  const double agg = subset_fused > 0 ? subset_mat / subset_fused : 1.0;
  std::printf("# Q3..Q10 aggregate: materialized %.3fs, fused %.3fs "
              "(%.2fx)\n",
              subset_mat, subset_fused, agg);

  // Whole-mix simulator runs: full counter snapshots for both modes, with
  // the headline gauges on the fused report.
  std::vector<const PlanNode*> plans;
  for (const PlanNodePtr& p : optimized) plans.push_back(p.get());
  for (int mode = 0; mode < 2; ++mode) {
    MachineOptions opts = base;
    opts.pipeline = mode == 0 ? PipelinePolicy::kForceMaterialize
                              : PipelinePolicy::kHonorPlan;
    MachineSimulator sim(&storage, opts);
    auto report = sim.Run(plans);
    DFDB_CHECK(report.ok()) << report.status();
    obs::RunReport run = report->ToReport();
    run.label = mode == 0 ? "sim materialized" : "sim fused";
    if (mode == 1) {
      run.gauges["pipeline.q3_q10_speedup_x"] = agg;
      run.gauges["pipeline.q3_q10_materialized_s"] = subset_mat;
      run.gauges["pipeline.q3_q10_fused_s"] = subset_fused;
    }
    bench::JsonReport::Global().AddRunReport(run);
    std::printf("# %s: %s\n", run.label.c_str(),
                report->ToString().c_str());
  }

  // Threads-engine batch, both policies: publishes engine.pipeline.*.
  for (int mode = 0; mode < 2; ++mode) {
    ExecOptions eopts;
    eopts.pipeline = mode == 0 ? PipelinePolicy::kForceMaterialize
                               : PipelinePolicy::kHonorPlan;
    eopts.pushdown = PushdownPolicy::kForceOff;
    ExecStats stats;
    auto results = RunBatch(&storage, plans, eopts, &stats);
    DFDB_CHECK(results.ok()) << results.status();
    obs::RunReport run = stats.ToReport();
    run.label = mode == 0 ? "engine materialized" : "engine fused";
    bench::JsonReport::Global().AddRunReport(run);
  }

  bench::WriteJson("bench_pipeline_fusion", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

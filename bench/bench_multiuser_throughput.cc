/// \file bench_multiuser_throughput.cc
/// \brief Multi-user throughput: MVCC snapshot reads vs barrier admission
/// vs pool-per-query.
///
/// Section 4.0, requirement 1: the master controller must "support the
/// simultaneous execution of multiple queries from several users". This
/// bench replays a mixed reader/writer query stream from several client
/// threads under the three execution regimes the repo has grown through:
///
///   per_query         — the historical model: each query stands up its own
///       worker pool via RunQuery, with the callers spinning on the
///       ConflictManager themselves ("the caller's responsibility").
///   resident_barrier  — one long-lived Scheduler with the legacy S/X
///       admission: every reader of a written relation queues behind the
///       writer.
///   resident_snapshot — the same Scheduler under MVCC snapshot reads (the
///       default): readers are stamped with an immutable Snapshot at
///       admission and never queue; the admission queue arbitrates
///       writer–writer conflicts only.
///
/// The stream is constructed so reader results are a database invariant:
/// writers only touch k1000 >= 900 rows of r14, every reader restricts
/// r14 below that. The bench hashes all reader results per mode and checks
/// the three modes return byte-identical reader bytes — snapshot reads may
/// not change answers, only waiting. It also asserts that under
/// resident_snapshot no reader ever queued.
///
/// All regimes run the identical stream against an identically seeded
/// fresh database, so queries/sec is directly comparable. Results report
/// through the shared RunReport JSON path (`--json=PATH`).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "engine/concurrency.h"
#include "engine/run.h"
#include "engine/scheduler.h"
#include "ra/analyzer.h"

namespace dfdb {
namespace {

/// One entry of the benchmark stream: a plan template plus its admission
/// sets (pre-analyzed once against a throwaway catalog-equivalent storage).
struct StreamQuery {
  PlanNodePtr plan;
  std::set<std::string> read_set;
  std::set<std::string> write_set;
  bool is_writer = false;
};

/// Builds the mixed stream. Every fourth slot is a writer on r14 touching
/// only k1000 >= 900 (alternating appends of r10 rows with k1000 >= 950
/// and deletes of the k1000 >= 900 region); every other fourth slot is a
/// dedicated r14 reader restricted to k1000 < 300 (the contended
/// reader–writer pair); the rest cycle the ten paper benchmark readers,
/// whose r14 scans are likewise restricted below 300.
std::vector<StreamQuery> BuildStream(int total, StorageEngine* storage) {
  std::vector<Query> readers = MakePaperBenchmarkQueries();
  std::vector<StreamQuery> stream;
  stream.reserve(static_cast<size_t>(total));
  Analyzer analyzer(&storage->catalog());
  size_t reader_cursor = 0;
  for (int i = 0; i < total; ++i) {
    StreamQuery sq;
    if (i % 4 == 3) {
      sq.is_writer = true;
      if (i % 8 == 3) {
        sq.plan = MakeAppend(
            MakeRestrict(MakeScan("r10"), Ge(Col("k1000"), Lit(950))), "r14");
      } else {
        sq.plan = MakeDelete("r14", Ge(Col("k1000"), Lit(900)));
      }
    } else if (i % 4 == 1) {
      sq.plan = MakeRestrict(MakeScan("r14"), Lt(Col("k1000"), Lit(300)));
    } else {
      sq.plan = readers[reader_cursor % readers.size()].root->Clone();
      ++reader_cursor;
    }
    auto analysis = analyzer.Resolve(sq.plan.get());
    DFDB_CHECK(analysis.ok()) << analysis.status();
    sq.read_set = std::move(analysis->read_set);
    sq.write_set = std::move(analysis->write_set);
    stream.push_back(std::move(sq));
  }
  return stream;
}

/// Order-independent fingerprint of one result: FNV-1a over the sorted
/// multiset of raw tuple bytes (engines may emit pages in any order).
uint64_t HashResult(const QueryResult& result) {
  std::vector<std::string> tuples;
  (void)result.ForEachTuple([&](const TupleView& t) -> Status {
    tuples.emplace_back(t.raw().data(), t.raw().size());
    return Status::OK();
  });
  std::sort(tuples.begin(), tuples.end());
  uint64_t h = 1469598103934665603ull;
  for (const std::string& t : tuples) {
    for (char c : t) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xffu;  // Tuple separator.
    h *= 1099511628211ull;
  }
  return h;
}

/// Combines per-index reader hashes in stream order (the stream index
/// identifies the query regardless of which client thread ran it).
uint64_t CombineReaderHashes(const std::vector<uint64_t>& per_index) {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t x : per_index) {
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

struct ModeResult {
  double wall_seconds = 0;
  double qps = 0;
  /// Admission-queue entries (resident modes) or spin retries (per_query),
  /// split by the stream's reader/writer flag.
  uint64_t reader_queued = 0;
  uint64_t writer_queued = 0;
  uint64_t queue_wait_ns = 0;
  uint64_t reader_hash = 0;
  obs::RunReport report;
};

/// Pool-per-query baseline: clients pull stream indices from a shared
/// cursor, spin on the ConflictManager until admitted, and run each query
/// through RunQuery — which builds and tears down a worker pool per call,
/// exactly as pre-scheduler callers did.
ModeResult RunPerQuery(StorageEngine* storage,
                       const std::vector<StreamQuery>& stream,
                       const ExecOptions& opts, int clients) {
  ConflictManager conflicts;
  std::atomic<size_t> cursor{0};
  std::vector<uint64_t> retries(stream.size(), 0);
  std::vector<uint64_t> hashes(stream.size(), 0);
  std::vector<ExecStats> per_query(stream.size());
  std::vector<Status> statuses(stream.size(), Status::OK());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (size_t i = cursor.fetch_add(1); i < stream.size();
           i = cursor.fetch_add(1)) {
        const StreamQuery& sq = stream[i];
        const uint64_t qid = static_cast<uint64_t>(i) + 1;
        while (!conflicts.TryAdmit(qid, sq.read_set, sq.write_set)) {
          ++retries[i];
          std::this_thread::yield();
        }
        auto result = RunQuery(storage, *sq.plan, opts, &per_query[i]);
        conflicts.Release(qid);
        statuses[i] = result.status();
        if (result.ok() && !sq.is_writer) hashes[i] = HashResult(*result);
      }
    });
  }
  for (auto& t : pool) t.join();
  const auto end = std::chrono::steady_clock::now();

  ModeResult out;
  ExecStats sum;
  for (size_t i = 0; i < stream.size(); ++i) {
    DFDB_CHECK(statuses[i].ok()) << "query " << i << ": " << statuses[i];
    sum.tasks_executed += per_query[i].tasks_executed;
    sum.packets += per_query[i].packets;
    sum.arbitration_bytes += per_query[i].arbitration_bytes;
    sum.distribution_bytes += per_query[i].distribution_bytes;
    sum.overhead_bytes += per_query[i].overhead_bytes;
    sum.pages_produced += per_query[i].pages_produced;
    sum.tuples_produced += per_query[i].tuples_produced;
    sum.mvcc_snapshots_captured += per_query[i].mvcc_snapshots_captured;
    sum.mvcc_pages_copied += per_query[i].mvcc_pages_copied;
    sum.mvcc_gc_reclaimed += per_query[i].mvcc_gc_reclaimed;
    sum.mvcc_commits += per_query[i].mvcc_commits;
    sum.mvcc_versions_live = per_query[i].mvcc_versions_live;
    out.reader_queued += stream[i].is_writer ? 0 : retries[i];
    out.writer_queued += stream[i].is_writer ? retries[i] : 0;
  }
  out.wall_seconds = std::chrono::duration<double>(end - start).count();
  sum.wall_seconds = out.wall_seconds;
  out.qps = static_cast<double>(stream.size()) / out.wall_seconds;
  out.reader_hash = CombineReaderHashes(hashes);
  out.report = sum.ToReport();
  return out;
}

/// Resident-scheduler modes: the same clients Submit() into one long-lived
/// pool; the MC admission queue replaces the callers' spin loops. \p mode
/// selects MVCC snapshot reads (readers never queue) or the legacy barrier
/// regime (relation-level S/X admission).
ModeResult RunResident(StorageEngine* storage,
                       const std::vector<StreamQuery>& stream,
                       const ExecOptions& opts, int clients,
                       ConcurrencyMode mode) {
  SchedulerOptions sched_opts;
  sched_opts.exec = opts;
  sched_opts.concurrency = mode;
  Scheduler scheduler(storage, std::move(sched_opts));
  std::atomic<size_t> cursor{0};
  std::vector<uint64_t> queued(stream.size(), 0);
  std::vector<uint64_t> hashes(stream.size(), 0);
  std::vector<Status> statuses(stream.size(), Status::OK());
  std::atomic<uint64_t> queue_wait_ns{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (size_t i = cursor.fetch_add(1); i < stream.size();
           i = cursor.fetch_add(1)) {
        auto handle = scheduler.Submit(*stream[i].plan);
        if (!handle.ok()) {
          statuses[i] = handle.status();
          continue;
        }
        auto result = handle->Wait();
        statuses[i] = result.status();
        queue_wait_ns.fetch_add(handle->queue_wait_ns(),
                                std::memory_order_relaxed);
        if (result.ok()) {
          queued[i] = result->stats().sched_queued;
          if (!stream[i].is_writer) hashes[i] = HashResult(*result);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  const auto end = std::chrono::steady_clock::now();

  ModeResult out;
  out.wall_seconds = std::chrono::duration<double>(end - start).count();
  out.qps = static_cast<double>(stream.size()) / out.wall_seconds;
  out.queue_wait_ns = queue_wait_ns.load();
  for (size_t i = 0; i < stream.size(); ++i) {
    out.reader_queued += stream[i].is_writer ? 0 : queued[i];
    out.writer_queued += stream[i].is_writer ? queued[i] : 0;
  }
  out.reader_hash = CombineReaderHashes(hashes);

  ExecStats agg = scheduler.AggregateStats();
  agg.wall_seconds = out.wall_seconds;
  out.report = agg.ToReport();
  for (const Status& s : statuses) DFDB_CHECK(s.ok()) << s;
  scheduler.Shutdown();
  return out;
}

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.5);
  const int total = bench::FlagInt(argc, argv, "queries", 40);
  const int clients = bench::FlagInt(argc, argv, "clients", 8);
  const int procs = bench::FlagInt(argc, argv, "procs", 8);
  DFDB_CHECK(total >= 16) << "need a >=16-query stream for a meaningful mix";

  std::printf("== multi-user throughput: snapshot vs barrier vs "
              "pool-per-query ==\n");
  std::printf("# stream: %d queries (every 4th a writer, every 4th an r14 "
              "reader), %d clients, %d processors\n", total, clients, procs);

  ExecOptions opts;
  opts.granularity = Granularity::kPage;
  opts.num_processors = procs;

  bench::Table table({"mode", "wall_s", "qps", "reader_queued",
                      "writer_queued", "avg_queue_wait_ms", "reader_hash"});
  bench::RunTable runs({"mode"});
  constexpr int kNumModes = 3;
  ModeResult results[kNumModes];
  const char* kModes[kNumModes] = {"per_query", "resident_barrier",
                                   "resident_snapshot"};
  for (int m = 0; m < kNumModes; ++m) {
    // Fresh, identically seeded database per mode: writers mutate r14, so
    // reusing one database would hand the next mode a different input.
    StorageEngine storage(/*default_page_bytes=*/16384);
    bench::BuildDatabaseOrDie(&storage, scale);
    std::vector<StreamQuery> stream = BuildStream(total, &storage);
    switch (m) {
      case 0:
        results[m] = RunPerQuery(&storage, stream, opts, clients);
        break;
      case 1:
        results[m] = RunResident(&storage, stream, opts, clients,
                                 ConcurrencyMode::kBarrier);
        break;
      default:
        results[m] = RunResident(&storage, stream, opts, clients,
                                 ConcurrencyMode::kSnapshot);
        break;
    }
    const ModeResult& r = results[m];
    const double avg_wait_ms =
        r.queue_wait_ns > 0
            ? static_cast<double>(r.queue_wait_ns) / 1e6 / total
            : 0.0;
    table.AddRow({kModes[m], StrFormat("%.3f", r.wall_seconds),
                  StrFormat("%.2f", r.qps),
                  StrFormat("%llu", static_cast<unsigned long long>(r.reader_queued)),
                  StrFormat("%llu", static_cast<unsigned long long>(r.writer_queued)),
                  StrFormat("%.3f", avg_wait_ms),
                  StrFormat("%016llx", static_cast<unsigned long long>(r.reader_hash))});
    obs::RunReport run = r.report;
    run.label = StrFormat("%s c=%d p=%d", kModes[m], clients, procs);
    run.counters.Set("multiuser.reader_result_hash", r.reader_hash);
    run.counters.Set("multiuser.reader_queued", r.reader_queued);
    run.counters.Set("multiuser.writer_queued", r.writer_queued);
    runs.Add({kModes[m]}, run);
  }
  table.Print("multiuser_throughput");
  runs.Print("multiuser_runs");

  // The MVCC contract, checked on every run: snapshot-mode readers are
  // admitted immediately, and no regime changes reader bytes.
  DFDB_CHECK(results[2].reader_queued == 0)
      << "snapshot mode queued a reader";
  DFDB_CHECK(results[0].reader_hash == results[1].reader_hash &&
             results[1].reader_hash == results[2].reader_hash)
      << "reader results diverged across concurrency modes";

  std::printf("# resident_snapshot/per_query qps: %.2fx\n",
              results[2].qps / results[0].qps);
  std::printf("# resident_snapshot/resident_barrier qps: %.2fx\n",
              results[2].qps / results[1].qps);

  bench::WriteJson("bench_multiuser_throughput", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

/// \file bench_multiuser_throughput.cc
/// \brief Multi-user throughput: resident scheduler pool vs pool-per-query.
///
/// Section 4.0, requirement 1: the master controller must "support the
/// simultaneous execution of multiple queries from several users". This
/// bench replays a mixed reader/writer query stream from several client
/// threads under the two execution regimes the repo has grown through:
///
///   per-query — the historical model: each query stands up its own worker
///       pool via Executor::Execute, with the callers spinning on the
///       ConflictManager themselves ("the caller's responsibility").
///   resident  — one long-lived Scheduler: clients Submit() into a shared
///       persistent pool and the MC admission queue handles conflicts and
///       re-admission.
///
/// Both regimes run the identical stream against an identically seeded
/// fresh database, so queries/sec is directly comparable. Results report
/// through the shared RunReport JSON path (`--json=PATH`).

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "engine/concurrency.h"
#include "engine/executor.h"
#include "engine/scheduler.h"
#include "ra/analyzer.h"

namespace dfdb {
namespace {

/// One entry of the benchmark stream: a plan template plus its admission
/// sets (pre-analyzed once against a throwaway catalog-equivalent storage).
struct StreamQuery {
  PlanNodePtr plan;
  std::set<std::string> read_set;
  std::set<std::string> write_set;
  bool is_writer = false;
};

/// Builds the mixed stream: the ten paper benchmark readers cycled, with
/// every fourth slot a writer (alternating appends into and deletes from
/// r14, a relation the heavier readers also scan).
std::vector<StreamQuery> BuildStream(int total, StorageEngine* storage) {
  std::vector<Query> readers = MakePaperBenchmarkQueries();
  std::vector<StreamQuery> stream;
  stream.reserve(static_cast<size_t>(total));
  Analyzer analyzer(&storage->catalog());
  size_t reader_cursor = 0;
  for (int i = 0; i < total; ++i) {
    StreamQuery sq;
    if (i % 4 == 3) {
      sq.is_writer = true;
      if (i % 8 == 3) {
        sq.plan = MakeAppend(
            MakeRestrict(MakeScan("r10"), Lt(Col("k1000"), Lit(50))), "r14");
      } else {
        sq.plan = MakeDelete("r14", Lt(Col("k1000"), Lit(20)));
      }
    } else {
      sq.plan = readers[reader_cursor % readers.size()].root->Clone();
      ++reader_cursor;
    }
    auto analysis = analyzer.Resolve(sq.plan.get());
    DFDB_CHECK(analysis.ok()) << analysis.status();
    sq.read_set = std::move(analysis->read_set);
    sq.write_set = std::move(analysis->write_set);
    stream.push_back(std::move(sq));
  }
  return stream;
}

struct ModeResult {
  double wall_seconds = 0;
  double qps = 0;
  uint64_t queued = 0;
  uint64_t queue_wait_ns = 0;
  obs::RunReport report;
};

/// Pool-per-query baseline: clients pull stream indices from a shared
/// cursor, spin on the ConflictManager until admitted, and run each query
/// through Executor::Execute — which builds and tears down a worker pool
/// per call, exactly as pre-scheduler callers did.
ModeResult RunPerQuery(StorageEngine* storage,
                       const std::vector<StreamQuery>& stream,
                       const ExecOptions& opts, int clients) {
  Executor executor(storage, opts);
  ConflictManager conflicts;
  std::atomic<size_t> cursor{0};
  std::atomic<uint64_t> retries{0};
  std::vector<ExecStats> per_query(stream.size());
  std::vector<Status> statuses(stream.size(), Status::OK());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (size_t i = cursor.fetch_add(1); i < stream.size();
           i = cursor.fetch_add(1)) {
        const StreamQuery& sq = stream[i];
        const uint64_t qid = static_cast<uint64_t>(i) + 1;
        while (!conflicts.TryAdmit(qid, sq.read_set, sq.write_set)) {
          retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
        auto result = executor.Execute(*sq.plan, &per_query[i]);
        conflicts.Release(qid);
        statuses[i] = result.status();
      }
    });
  }
  for (auto& t : pool) t.join();
  const auto end = std::chrono::steady_clock::now();

  ModeResult out;
  ExecStats sum;
  for (size_t i = 0; i < stream.size(); ++i) {
    DFDB_CHECK(statuses[i].ok()) << "query " << i << ": " << statuses[i];
    sum.tasks_executed += per_query[i].tasks_executed;
    sum.packets += per_query[i].packets;
    sum.arbitration_bytes += per_query[i].arbitration_bytes;
    sum.distribution_bytes += per_query[i].distribution_bytes;
    sum.overhead_bytes += per_query[i].overhead_bytes;
    sum.pages_produced += per_query[i].pages_produced;
    sum.tuples_produced += per_query[i].tuples_produced;
  }
  out.wall_seconds = std::chrono::duration<double>(end - start).count();
  sum.wall_seconds = out.wall_seconds;
  out.qps = static_cast<double>(stream.size()) / out.wall_seconds;
  out.queued = retries.load();
  out.report = sum.ToReport();
  return out;
}

/// Resident-scheduler mode: the same clients Submit() into one long-lived
/// pool; the MC admission queue replaces the callers' spin loops.
ModeResult RunResident(StorageEngine* storage,
                       const std::vector<StreamQuery>& stream,
                       const ExecOptions& opts, int clients) {
  SchedulerOptions sched_opts;
  sched_opts.exec = opts;
  Scheduler scheduler(storage, std::move(sched_opts));
  std::atomic<size_t> cursor{0};
  std::vector<Status> statuses(stream.size(), Status::OK());
  std::atomic<uint64_t> queue_wait_ns{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (size_t i = cursor.fetch_add(1); i < stream.size();
           i = cursor.fetch_add(1)) {
        auto handle = scheduler.Submit(*stream[i].plan);
        if (!handle.ok()) {
          statuses[i] = handle.status();
          continue;
        }
        auto result = handle->Wait();
        statuses[i] = result.status();
        queue_wait_ns.fetch_add(handle->queue_wait_ns(),
                                std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : pool) t.join();
  const auto end = std::chrono::steady_clock::now();

  ModeResult out;
  out.wall_seconds = std::chrono::duration<double>(end - start).count();
  out.qps = static_cast<double>(stream.size()) / out.wall_seconds;
  out.queue_wait_ns = queue_wait_ns.load();

  ExecStats agg = scheduler.AggregateStats();
  out.queued = agg.sched_queued;
  agg.wall_seconds = out.wall_seconds;
  out.report = agg.ToReport();
  for (const Status& s : statuses) DFDB_CHECK(s.ok()) << s;
  scheduler.Shutdown();
  return out;
}

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.5);
  const int total = bench::FlagInt(argc, argv, "queries", 40);
  const int clients = bench::FlagInt(argc, argv, "clients", 8);
  const int procs = bench::FlagInt(argc, argv, "procs", 8);
  DFDB_CHECK(total >= 16) << "need a >=16-query stream for a meaningful mix";

  std::printf("== multi-user throughput: resident pool vs pool-per-query ==\n");
  std::printf("# stream: %d queries (every 4th a writer), %d clients, "
              "%d processors\n", total, clients, procs);

  ExecOptions opts;
  opts.granularity = Granularity::kPage;
  opts.num_processors = procs;

  bench::Table table({"mode", "wall_s", "qps", "queued_or_retries",
                      "avg_queue_wait_ms"});
  bench::RunTable runs({"mode"});
  ModeResult results[2];
  const char* kModes[2] = {"per_query", "resident"};
  for (int m = 0; m < 2; ++m) {
    // Fresh, identically seeded database per mode: writers mutate r14, so
    // reusing one database would hand the second mode a different input.
    StorageEngine storage(/*default_page_bytes=*/16384);
    bench::BuildDatabaseOrDie(&storage, scale);
    std::vector<StreamQuery> stream = BuildStream(total, &storage);
    results[m] = m == 0 ? RunPerQuery(&storage, stream, opts, clients)
                        : RunResident(&storage, stream, opts, clients);
    const ModeResult& r = results[m];
    const double avg_wait_ms =
        r.queue_wait_ns > 0
            ? static_cast<double>(r.queue_wait_ns) / 1e6 / total
            : 0.0;
    table.AddRow({kModes[m], StrFormat("%.3f", r.wall_seconds),
                  StrFormat("%.2f", r.qps), StrFormat("%llu", static_cast<unsigned long long>(r.queued)),
                  StrFormat("%.3f", avg_wait_ms)});
    obs::RunReport run = r.report;
    run.label = StrFormat("%s c=%d p=%d", kModes[m], clients, procs);
    runs.Add({kModes[m]}, run);
  }
  table.Print("multiuser_throughput");
  runs.Print("multiuser_runs");
  std::printf("# resident/per_query qps: %.2fx\n",
              results[1].qps / results[0].qps);

  bench::WriteJson("bench_multiuser_throughput", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

/// \file bench_util.h
/// \brief Shared helpers for the experiment harnesses.
///
/// Each bench binary regenerates one table or figure of the paper (see
/// DESIGN.md's experiment index) and prints it as an aligned text table plus
/// a CSV block for plotting.

#ifndef DFDB_BENCH_BENCH_UTIL_H_
#define DFDB_BENCH_BENCH_UTIL_H_

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/string_util.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "ra/plan.h"
#include "storage/storage_engine.h"
#include "workload/paper_benchmark.h"

namespace dfdb {
namespace bench {

/// Parses "--name=value" style flags.
inline double FlagDouble(int argc, char** argv, const char* name,
                         double def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return def;
}

inline int FlagInt(int argc, char** argv, const char* name, int def) {
  return static_cast<int>(FlagDouble(argc, argv, name, def));
}

inline std::string FlagString(int argc, char** argv, const char* name,
                              const char* def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return def;
}

/// Builds the paper database; aborts on failure (bench setup).
inline void BuildDatabaseOrDie(StorageEngine* storage, double scale,
                               uint64_t seed = 42) {
  auto bytes = BuildPaperDatabase(storage, scale, seed);
  DFDB_CHECK(bytes.ok()) << bytes.status();
  std::printf("# database: 15 relations, %.2f MB (scale %.2f)\n",
              static_cast<double>(*bytes) / 1e6, scale);
}

/// Raw pointers to the benchmark query roots (the sim/engine APIs take
/// const PlanNode*).
inline std::vector<const PlanNode*> QueryPointers(
    const std::vector<Query>& queries) {
  std::vector<const PlanNode*> out;
  out.reserve(queries.size());
  for (const Query& q : queries) out.push_back(q.root.get());
  return out;
}

/// Accumulates everything one bench binary measured — printed tables and
/// raw obs::RunReports — and writes it as one JSON document. Every bench
/// calls WriteJson() (below) before exiting, so `results/<bench>.json`
/// exists for each binary; `--json=PATH` overrides the destination.
class JsonReport {
 public:
  static JsonReport& Global() {
    static JsonReport* r = new JsonReport();
    return *r;
  }

  /// Registers a printed table (tag + headers + string rows). Called by
  /// Table::Print, so benches get their tables exported for free.
  void AddTable(const char* tag, const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("tag");
    w.String(tag);
    w.Key("headers");
    w.BeginArray();
    for (const auto& h : headers) w.String(h);
    w.EndArray();
    w.Key("rows");
    w.BeginArray();
    for (const auto& row : rows) {
      w.BeginArray();
      for (const auto& cell : row) w.String(cell);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
    tables_.push_back(w.TakeString());
  }

  /// Registers one run's full RunReport (either backend).
  void AddRunReport(const obs::RunReport& report) {
    runs_.push_back(report.ToJson());
  }

  /// Writes `{"bench":..,"schema_version":1,"tables":[..],"runs":[..]}` to
  /// `--json=PATH` or `results/<bench>.json`. Best-effort: a bench never
  /// fails because its report directory is unwritable.
  void Write(const std::string& bench, int argc, char** argv) {
    std::string path = FlagString(argc, argv, "json", "");
    if (path.empty()) path = "results/" + bench + ".json";
    const size_t slash = path.find_last_of('/');
    if (slash != std::string::npos && slash > 0) {
      ::mkdir(path.substr(0, slash).c_str(), 0755);  // Best effort.
    }
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("bench");
    w.String(bench);
    w.Key("schema_version");
    w.Uint(1);
    w.Key("tables");
    w.BeginArray();
    for (const auto& t : tables_) w.Raw(t);
    w.EndArray();
    w.Key("runs");
    w.BeginArray();
    for (const auto& r : runs_) w.Raw(r);
    w.EndArray();
    w.EndObject();
    const std::string doc = w.TakeString();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "# warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("# json: %s\n", path.c_str());
  }

 private:
  JsonReport() = default;

  std::vector<std::string> tables_;
  std::vector<std::string> runs_;
};

/// Writes the bench's collected JSON document (call last in main()).
inline void WriteJson(const std::string& bench, int argc, char** argv) {
  JsonReport::Global().Write(bench, argc, argv);
}

/// Simple aligned table writer with a trailing CSV block.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print(const char* csv_tag) const {
    JsonReport::Global().AddTable(csv_tag, headers_, rows_);
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
    // CSV block for downstream plotting.
    std::printf("\n#CSV %s\n", csv_tag);
    auto csv_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      }
      std::printf("\n");
    };
    csv_row(headers_);
    for (const auto& row : rows_) csv_row(row);
    std::printf("#END\n\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One reporting path for both backends: a table whose rows come from
/// obs::RunReports (ExecStats::ToReport() or MachineReport::ToReport()),
/// with optional leading key columns (the sweep parameters). Every added
/// report is also registered with JsonReport, so the bench's JSON document
/// carries the full counter snapshots behind the printed summary.
class RunTable {
 public:
  explicit RunTable(std::vector<std::string> key_headers)
      : table_([&] {
          std::vector<std::string> h = std::move(key_headers);
          const char* fixed[] = {"backend", "seconds",  "MB",
                                 "Mbit/s",  "packets", "faults"};
          h.insert(h.end(), std::begin(fixed), std::end(fixed));
          return h;
        }()) {}

  void Add(std::vector<std::string> keys, const obs::RunReport& report) {
    std::vector<std::string> row = std::move(keys);
    row.push_back(report.backend);
    row.push_back(StrFormat("%.4f", report.seconds));
    row.push_back(
        StrFormat("%.2f", static_cast<double>(report.data_bytes) / 1e6));
    row.push_back(StrFormat("%.1f", report.bits_per_second() / 1e6));
    row.push_back(StrFormat("%llu", static_cast<unsigned long long>(
                                        report.packets)));
    row.push_back(StrFormat("%llu", static_cast<unsigned long long>(
                                        report.faults)));
    table_.AddRow(std::move(row));
    JsonReport::Global().AddRunReport(report);
  }

  void Print(const char* csv_tag) const { table_.Print(csv_tag); }

 private:
  Table table_;
};

}  // namespace bench
}  // namespace dfdb

#endif  // DFDB_BENCH_BENCH_UTIL_H_

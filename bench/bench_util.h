/// \file bench_util.h
/// \brief Shared helpers for the experiment harnesses.
///
/// Each bench binary regenerates one table or figure of the paper (see
/// DESIGN.md's experiment index) and prints it as an aligned text table plus
/// a CSV block for plotting.

#ifndef DFDB_BENCH_BENCH_UTIL_H_
#define DFDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "ra/plan.h"
#include "storage/storage_engine.h"
#include "workload/paper_benchmark.h"

namespace dfdb {
namespace bench {

/// Parses "--name=value" style flags.
inline double FlagDouble(int argc, char** argv, const char* name,
                         double def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return def;
}

inline int FlagInt(int argc, char** argv, const char* name, int def) {
  return static_cast<int>(FlagDouble(argc, argv, name, def));
}

/// Builds the paper database; aborts on failure (bench setup).
inline void BuildDatabaseOrDie(StorageEngine* storage, double scale,
                               uint64_t seed = 42) {
  auto bytes = BuildPaperDatabase(storage, scale, seed);
  DFDB_CHECK(bytes.ok()) << bytes.status();
  std::printf("# database: 15 relations, %.2f MB (scale %.2f)\n",
              static_cast<double>(*bytes) / 1e6, scale);
}

/// Raw pointers to the benchmark query roots (the sim/engine APIs take
/// const PlanNode*).
inline std::vector<const PlanNode*> QueryPointers(
    const std::vector<Query>& queries) {
  std::vector<const PlanNode*> out;
  out.reserve(queries.size());
  for (const Query& q : queries) out.push_back(q.root.get());
  return out;
}

/// Simple aligned table writer with a trailing CSV block.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print(const char* csv_tag) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
    // CSV block for downstream plotting.
    std::printf("\n#CSV %s\n", csv_tag);
    auto csv_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      }
      std::printf("\n");
    };
    csv_row(headers_);
    for (const auto& row : rows_) csv_row(row);
    std::printf("#END\n\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bench
}  // namespace dfdb

#endif  // DFDB_BENCH_BENCH_UTIL_H_

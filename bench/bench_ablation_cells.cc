/// \file bench_ablation_cells.cc
/// \brief ABL-MC — memory cells per processor.
///
/// The paper's benchmark fixes "two memory cells for each processor"
/// (Section 3.2); this ablation sweeps the bound on the threads engine,
/// where the cell count throttles how many enabled instruction packets may
/// be outstanding ahead of the processors. Too few cells starve the
/// processors; beyond a handful, returns vanish — which is why the paper's
/// choice of 2 is reasonable.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "engine/run.h"

namespace dfdb {
namespace {

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 1.0);
  const int procs = bench::FlagInt(argc, argv, "procs", 4);
  std::printf("== ABL-MC: memory cells per processor (threads engine) ==\n");
  StorageEngine storage(/*default_page_bytes=*/16384);
  bench::BuildDatabaseOrDie(&storage, scale);
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans = bench::QueryPointers(queries);

  bench::Table table({"cells_per_proc", "wall_s", "tasks", "packets",
                      "arb_mb", "local_hit_pct"});
  for (int cells : {1, 2, 3, 4, 6, 8}) {
    ExecOptions opts;
    opts.granularity = Granularity::kPage;
    opts.num_processors = procs;
    opts.memory_cells_per_processor = cells;
    opts.page_bytes = 16384;
    opts.local_memory_pages = 8 * 8;  // 8 ICs' worth of local memory.
    opts.disk_cache_pages = 64;
    // Median of three runs to stabilize wall clock.
    double best = 1e30;
    ExecStats stats;
    for (int run = 0; run < 3; ++run) {
      ExecStats run_stats;
      auto results = RunBatch(&storage, plans, opts, &run_stats);
      DFDB_CHECK(results.ok()) << results.status();
      if (run_stats.wall_seconds < best) {
        best = run_stats.wall_seconds;
        stats = run_stats;
      }
    }
    obs::RunReport run_report = stats.ToReport();
    run_report.label = StrFormat("cells=%d", cells);
    bench::JsonReport::Global().AddRunReport(run_report);
    const double hits =
        static_cast<double>(stats.buffer.local_hits) /
        std::max<double>(1.0, static_cast<double>(stats.buffer.local_hits +
                                                  stats.buffer.cache_reads));
    table.AddRow({StrFormat("%d", cells), StrFormat("%.3f", best),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(stats.tasks_executed)),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(stats.packets)),
                  StrFormat("%.2f",
                            static_cast<double>(stats.arbitration_bytes) / 1e6),
                  StrFormat("%.1f", hits * 100.0)});
  }
  table.Print("ablmc");
  bench::WriteJson("bench_ablation_cells", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

/// \file bench_pipeline_compare.cc
/// \brief PIPE — data-flow vs strict pipelining vs serial (Section 2.3).
///
/// The paper contrasts data-flow execution with the pipelined processing
/// of Smith & Chang and Yao: pipelining caps concurrency at one processor
/// per query-tree node and (per Yao) requires an operator to finish before
/// its successor starts. We compare, on the machine simulator:
///   serial      — one IP, relation granularity (one node at a time);
///   pipelined   — relation granularity with #IPs = #nodes (one processor
///                 per node, successors wait for completion);
///   data-flow   — page granularity with the same #IPs, free assignment;
///   fused       — data-flow plus the per-edge pipeline-fusion decision
///                 (PipelinePolicy::kForceFuse): restrict-over-base
///                 producers fold into the consumer's operand staging, so
///                 they never occupy an IP at all.
/// Also reports the uniprocessor nested-loops vs sorted-merge baseline on
/// the reference executor (Blasgen & Eswaran, Section 2.1).

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "engine/reference.h"
#include "machine/simulator.h"
#include "ra/analyzer.h"

namespace dfdb {
namespace {

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 1.0);
  std::printf("== PIPE: data-flow vs pipelining vs serial ==\n");
  StorageEngine storage(/*default_page_bytes=*/16384);
  bench::BuildDatabaseOrDie(&storage, scale);
  std::vector<Query> queries = MakePaperBenchmarkQueries();

  bench::Table table(
      {"query", "nodes", "serial_s", "pipelined_s", "dataflow_s", "fused_s",
       "dataflow_speedup_vs_pipe", "fused_speedup_vs_dataflow"});
  Analyzer analyzer(&storage.catalog());
  for (const Query& q : queries) {
    auto clone = q.root->Clone();
    auto analysis = analyzer.Resolve(clone.get());
    DFDB_CHECK(analysis.ok()) << analysis.status();
    // Instructions = non-scan nodes; pipelining grants one IP each.
    const int instr_count =
        analysis->num_nodes == 1
            ? 1
            : analysis->num_joins + analysis->num_restricts +
                  analysis->num_projects;
    double times[4];
    for (int mode = 0; mode < 4; ++mode) {
      MachineOptions opts;
      opts.config.page_bytes = 16384;
      opts.config.num_instruction_controllers = 8;
      switch (mode) {
        case 0:  // Serial.
          opts.granularity = Granularity::kRelation;
          opts.config.num_instruction_processors = 1;
          break;
        case 1:  // Pipelined: one processor per node, barrier semantics.
          opts.granularity = Granularity::kRelation;
          opts.config.num_instruction_processors = std::max(1, instr_count);
          break;
        case 2:  // Data-flow: page granularity, same resources.
          opts.granularity = Granularity::kPage;
          opts.config.num_instruction_processors = std::max(1, instr_count);
          break;
        case 3:  // Data-flow with every foldable edge fused.
          opts.granularity = Granularity::kPage;
          opts.config.num_instruction_processors = std::max(1, instr_count);
          opts.pipeline = PipelinePolicy::kForceFuse;
          break;
      }
      MachineSimulator sim(&storage, opts);
      auto report = sim.Run({q.root.get()});
      DFDB_CHECK(report.ok()) << report.status();
      times[mode] = report->makespan.ToSecondsF();
    }
    table.AddRow({q.name, StrFormat("%d", instr_count),
                  StrFormat("%.3f", times[0]), StrFormat("%.3f", times[1]),
                  StrFormat("%.3f", times[2]), StrFormat("%.3f", times[3]),
                  StrFormat("%.2fx", times[1] / times[2]),
                  StrFormat("%.2fx", times[2] / times[3])});
  }
  table.Print("pipe");

  // Uniprocessor join-algorithm baseline: nested loops vs sorted merge.
  std::printf("-- uniprocessor join algorithms (reference executor, host "
              "wall clock) --\n");
  bench::Table joins({"query", "nested_loops_ms", "sort_merge_ms"});
  ReferenceExecutor reference(&storage);
  for (const Query& q : queries) {
    if (q.id < 3) continue;  // Restrict-only queries have no join.
    double ms[2];
    for (int alg = 0; alg < 2; ++alg) {
      const auto start = std::chrono::steady_clock::now();
      auto result = reference.Execute(*q.root, /*use_sort_merge=*/alg == 1);
      DFDB_CHECK(result.ok()) << result.status();
      ms[alg] = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    }
    joins.AddRow({q.name, StrFormat("%.1f", ms[0]), StrFormat("%.1f", ms[1])});
  }
  joins.Print("pipe_joins");
  bench::WriteJson("bench_pipeline_compare", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

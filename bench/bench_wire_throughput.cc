/// \file bench_wire_throughput.cc
/// \brief End-to-end wire throughput: N clients × mixed RAQL stream over TCP.
///
/// The host interface is a performance surface of its own (Rödiger et al.,
/// "High-Speed Query Processing over High-Speed Networks"): this bench
/// measures the full host → wire → master controller → engine → wire path
/// rather than the in-process Submit() path of bench_multiuser_throughput.
///
/// Two phases:
///
///   throughput — N client threads (each with its own blocking Client)
///       replay a mixed reader/writer RAQL stream against an in-process
///       Server; reports p50/p99 round-trip latency and queries/sec via the
///       RunReport gauges, plus the server's net.* counters.
///   backpressure — a server with a tiny admission cap K is offered 2K
///       concurrent clients; the cap must convert the overload into
///       kRetryLater rejections (bounded server memory) rather than
///       unbounded queueing, verified by the net.rejected counter.
///
/// Results report through the shared RunReport JSON path (`--json=PATH`).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "net/client.h"
#include "net/server.h"

namespace dfdb {
namespace {

/// The query mix, as RAQL text (the wire carries text, not plan trees):
/// restricts, a projection, a join, and an aggregate as readers, with every
/// fourth slot a writer against r14 (append / delete alternating).
std::vector<std::string> BuildStream(int total) {
  static const char* kReaders[] = {
      "restrict(r01, k1000 < 100)",
      "project(r05, [k100], dedup)",
      "restrict(r08, k10 = 3 and k100 < 50)",
      "join(restrict(r01, k1000 < 40), r06, k100 = right.k100)",
      "agg(r02, [k10], [count() as n, sum(k1000) as total])",
      "restrict(r11, k2 = 1)",
  };
  const size_t num_readers = sizeof(kReaders) / sizeof(kReaders[0]);
  std::vector<std::string> stream;
  stream.reserve(static_cast<size_t>(total));
  size_t reader_cursor = 0;
  for (int i = 0; i < total; ++i) {
    if (i % 4 == 3) {
      stream.emplace_back(i % 8 == 3
                              ? "append(restrict(r10, k1000 < 50), r14)"
                              : "delete(r14, k1000 >= 950)");
    } else {
      stream.emplace_back(kReaders[reader_cursor % num_readers]);
      ++reader_cursor;
    }
  }
  return stream;
}

double PercentileMs(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

struct PhaseResult {
  double wall_seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t retries = 0;
};

/// Replays \p stream from \p num_clients threads, each owning one
/// connection. Returns merged latency stats; per-query failures are
/// counted, not fatal (the backpressure phase expects retry exhaustion).
PhaseResult RunClients(uint16_t port, const std::vector<std::string>& stream,
                       int num_clients, const net::ClientOptions& copts) {
  std::atomic<size_t> cursor{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> retries{0};
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(num_clients));

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = net::Client::Connect("127.0.0.1", port, copts);
      if (!client.ok()) {
        failed.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (size_t i = cursor.fetch_add(1); i < stream.size();
           i = cursor.fetch_add(1)) {
        const auto q_start = std::chrono::steady_clock::now();
        auto result = client->Execute(stream[i]);
        const auto q_end = std::chrono::steady_clock::now();
        if (result.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          retries.fetch_add(static_cast<uint64_t>(result->retries),
                            std::memory_order_relaxed);
          latencies[static_cast<size_t>(c)].push_back(
              std::chrono::duration<double, std::milli>(q_end - q_start)
                  .count());
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
          if (!client->connected()) return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  PhaseResult out;
  out.wall_seconds = std::chrono::duration<double>(end - start).count();
  std::vector<double> merged;
  for (const auto& v : latencies) merged.insert(merged.end(), v.begin(), v.end());
  std::sort(merged.begin(), merged.end());
  out.p50_ms = PercentileMs(merged, 0.5);
  out.p99_ms = PercentileMs(merged, 0.99);
  out.ok = ok.load();
  out.failed = failed.load();
  out.retries = retries.load();
  out.qps = out.wall_seconds > 0
                ? static_cast<double>(out.ok) / out.wall_seconds
                : 0;
  return out;
}

/// One RunReport for a finished phase: engine aggregate + net.* counters +
/// latency gauges.
obs::RunReport MakeReport(net::Server* server, const PhaseResult& r,
                          std::string label) {
  ExecStats agg = server->AggregateStats();
  agg.wall_seconds = r.wall_seconds;
  obs::RunReport report = agg.ToReport();
  report.label = std::move(label);
  server->SnapshotMetrics(&report.counters);
  report.gauges["latency.p50_ms"] = r.p50_ms;
  report.gauges["latency.p99_ms"] = r.p99_ms;
  report.gauges["queries_per_second"] = r.qps;
  return report;
}

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.25);
  const int total = bench::FlagInt(argc, argv, "queries", 64);
  const int clients = bench::FlagInt(argc, argv, "clients", 8);
  const int procs = bench::FlagInt(argc, argv, "procs", 8);
  const int cap = bench::FlagInt(argc, argv, "cap", 4);

  std::printf("== wire throughput: %d clients x %d-query mixed stream ==\n",
              clients, total);
  const std::vector<std::string> stream = BuildStream(total);

  bench::Table table(
      {"phase", "clients", "cap", "wall_s", "qps", "p50_ms", "p99_ms",
       "ok", "failed", "rejected"});
  bench::RunTable runs({"phase"});

  // --- Phase 1: throughput under a roomy admission cap. -------------------
  {
    StorageEngine storage(/*default_page_bytes=*/16384);
    bench::BuildDatabaseOrDie(&storage, scale);
    net::ServerOptions options;
    options.max_inflight = 64;
    options.scheduler.exec.granularity = Granularity::kPage;
    options.scheduler.exec.num_processors = procs;
    net::Server server(&storage, options);
    DFDB_CHECK_OK(server.Start());

    PhaseResult r = RunClients(server.port(), stream, clients, {});
    DFDB_CHECK(r.failed == 0) << "throughput phase had failed queries";
    DFDB_CHECK(r.ok == static_cast<uint64_t>(total));
    const uint64_t rejected = server.counters().rejected.load();
    table.AddRow({"throughput", StrFormat("%d", clients), "64",
                  StrFormat("%.3f", r.wall_seconds), StrFormat("%.1f", r.qps),
                  StrFormat("%.3f", r.p50_ms), StrFormat("%.3f", r.p99_ms),
                  StrFormat("%llu", static_cast<unsigned long long>(r.ok)),
                  StrFormat("%llu", static_cast<unsigned long long>(r.failed)),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(rejected))});
    runs.Add({"throughput"},
             MakeReport(&server, r,
                        StrFormat("throughput c=%d p=%d", clients, procs)));
    server.Stop();
  }

  // --- Phase 2: backpressure — cap K, offered load 2K. --------------------
  {
    StorageEngine storage(/*default_page_bytes=*/16384);
    bench::BuildDatabaseOrDie(&storage, scale);
    net::ServerOptions options;
    options.max_inflight = cap;
    options.scheduler.exec.granularity = Granularity::kPage;
    options.scheduler.exec.num_processors = procs;
    net::Server server(&storage, options);
    DFDB_CHECK_OK(server.Start());

    net::ClientOptions copts;
    copts.max_retries = 64;  // Absorb rejections; the stream must finish.
    copts.retry_backoff_ms = 1;
    PhaseResult r = RunClients(server.port(), stream, 2 * cap, copts);
    const uint64_t rejected = server.counters().rejected.load();
    DFDB_CHECK(r.failed == 0) << "backpressure phase had failed queries";
    // The cap must actually bite: with 2K clients against K slots, some
    // requests are rejected pre-execution instead of queueing in memory.
    DFDB_CHECK(rejected > 0)
        << "offered load 2K never tripped the admission cap";
    table.AddRow({"backpressure", StrFormat("%d", 2 * cap),
                  StrFormat("%d", cap), StrFormat("%.3f", r.wall_seconds),
                  StrFormat("%.1f", r.qps), StrFormat("%.3f", r.p50_ms),
                  StrFormat("%.3f", r.p99_ms),
                  StrFormat("%llu", static_cast<unsigned long long>(r.ok)),
                  StrFormat("%llu", static_cast<unsigned long long>(r.failed)),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(rejected))});
    runs.Add({"backpressure"},
             MakeReport(&server, r, StrFormat("backpressure cap=%d", cap)));
    std::printf("# backpressure: cap=%d offered=%d -> %llu rejections "
                "absorbed by client retry\n",
                cap, 2 * cap, static_cast<unsigned long long>(rejected));
    server.Stop();
  }

  table.Print("wire_throughput");
  runs.Print("wire_runs");
  bench::WriteJson("bench_wire_throughput", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

/// \file bench_distributed_join.cc
/// \brief Scale-out shuffle bench: the distributed hash join across
/// in-process worker clusters at increasing worker counts.
///
/// For each worker count the bench stands up a full cluster (N
/// net::Server processes-in-miniature, each holding its hash slice of the
/// paper database, plus a dist::Coordinator) and runs a shuffle-heavy
/// join/aggregate mix. Three invariants are asserted, not just printed:
///
///  - **Hash identity.** The FNV multiset hash of every query's result is
///    identical at every worker count — partitioned execution must not
///    change a single result byte (aggregates use integer columns only,
///    so no float-association caveats).
///  - **Work scale-out.** `speedup_compute_x` divides the single-worker
///    engine task count by the busiest worker's task count at N workers —
///    the critical-path compute reduction that becomes wall-clock speedup
///    on real hardware (this container may have one core, so wall time
///    alone cannot show scale-out; it is reported honestly alongside).
///    The bench fails below --min-speedup (default 2 at 3 workers).
///  - **Ring comparability.** The same query mix runs on the simulator at
///    matching IP counts; the simulated outer-ring bandwidth (Fig 4.2's
///    measurement) lands in one table next to the real coordinator-star
///    shuffle bandwidth, since the coordinator star is the outer ring made
///    explicit.
///
///   bench_distributed_join --scale=0.5 --workers=3 --reps=3

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "dist/coordinator.h"
#include "machine/simulator.h"
#include "net/server.h"
#include "ra/parser.h"

namespace dfdb {
namespace {

/// A representative scale-out mix: shuffled hash joins and aggregates on
/// fine-grained keys (k1000 — coarse keys like k100 quantize 100 values
/// over N buckets and the join output per value is quadratic in per-value
/// counts, so they skew), one co-partitioned join on the placement key
/// (no shuffle at all), and one local scan/project.
const char* const kQueries[] = {
    "join(restrict(r01, k1000 < 400), restrict(r06, k1000 < 700), "
    "k1000 = right.k1000)",
    "join(r01, r02, id = right.id)",
    "project(restrict(r01, k1000 < 500), [id, k100, k1000])",
    "agg(r01, [k1000], [count() as n, sum(k5) as s])",
    "agg(join(restrict(r03, k1000 < 500), r08, k1000 = right.k1000), [k10], "
    "[count() as n, sum(k25) as s])",
};

uint64_t Fnv64(const char* data, size_t len, uint64_t h) {
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Order-insensitive result fingerprint: XOR of per-tuple FNV hashes,
/// folded with the row count and tuple width.
uint64_t MultisetHash(const net::RemoteResult& result) {
  const int width = result.schema.tuple_width();
  uint64_t h = 0;
  if (width > 0) {
    for (size_t off = 0; off + static_cast<size_t>(width) <=
                         result.tuples.size();
         off += static_cast<size_t>(width)) {
      h ^= Fnv64(result.tuples.data() + off, static_cast<size_t>(width),
                 0xcbf29ce484222325ULL);
    }
  }
  h = Fnv64(reinterpret_cast<const char*>(&result.num_tuples), 8, h + 1);
  return h;
}

struct ClusterRun {
  double wall_s = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t batches = 0;
  uint64_t max_worker_tasks = 0;
  uint64_t total_worker_tasks = 0;
  std::vector<uint64_t> hashes;
  obs::MetricsRegistry metrics;
};

StatusOr<ClusterRun> RunCluster(int workers, double scale, int procs,
                                int reps) {
  std::vector<std::unique_ptr<StorageEngine>> storages;
  std::vector<std::unique_ptr<net::Server>> servers;
  std::vector<dist::WorkerAddress> addrs;
  for (int w = 0; w < workers; ++w) {
    auto storage = std::make_unique<StorageEngine>(16384);
    DFDB_RETURN_IF_ERROR(
        BuildPartitionedPaperDatabase(storage.get(), w, workers, scale)
            .status());
    net::ServerOptions options;
    options.port = 0;
    options.scheduler.exec.num_processors = procs;
    auto server =
        std::make_unique<net::Server>(storage.get(), std::move(options));
    DFDB_RETURN_IF_ERROR(server->Start());
    addrs.push_back(dist::WorkerAddress{"127.0.0.1", server->port()});
    storages.push_back(std::move(storage));
    servers.push_back(std::move(server));
  }
  Catalog catalog;
  DFDB_RETURN_IF_ERROR(BuildPaperCatalog(&catalog, scale));
  dist::CoordinatorOptions options;
  options.workers = std::move(addrs);
  options.partition_column = std::string(kPartitionColumn);
  dist::Coordinator coordinator(&catalog, std::move(options));
  DFDB_RETURN_IF_ERROR(coordinator.Connect());

  ClusterRun out;
  // Warm-up pass collects the result fingerprints.
  for (const char* text : kQueries) {
    DFDB_ASSIGN_OR_RETURN(net::RemoteResult result,
                          coordinator.Execute(text));
    out.hashes.push_back(MultisetHash(result));
  }
  const uint64_t micros_before =
      coordinator.counters().shuffle_micros.load();
  for (int rep = 0; rep < reps; ++rep) {
    for (const char* text : kQueries) {
      DFDB_ASSIGN_OR_RETURN(net::RemoteResult result,
                            coordinator.Execute(text));
      out.bytes_shuffled += result.counters["dist.bytes_shuffled"];
      out.batches += result.counters["dist.batches_routed"];
      out.max_worker_tasks += result.counters["dist.worker_tasks_max"];
      out.total_worker_tasks += result.counters["dist.worker_tasks_total"];
    }
  }
  out.wall_s = static_cast<double>(coordinator.counters().shuffle_micros.load() -
                                   micros_before) /
               1e6;
  coordinator.SnapshotMetrics(&out.metrics);
  for (auto& server : servers) {
    server->SnapshotMetrics(&out.metrics);
    server->Stop();
  }
  return out;
}

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.5);
  const int max_workers = bench::FlagInt(argc, argv, "workers", 3);
  const int procs = bench::FlagInt(argc, argv, "procs", 2);
  const int reps = bench::FlagInt(argc, argv, "reps", 3);
  const double min_speedup = bench::FlagDouble(argc, argv, "min-speedup", 2.0);

  std::printf("== DIST: partitioned hash join across worker clusters ==\n");
  bench::Table table({"workers", "wall_s", "speedup_wall_x",
                      "speedup_compute_x", "shuffle_MB", "batches",
                      "max_worker_tasks"});

  std::vector<int> counts = {1};
  if (max_workers > 1) counts.push_back(max_workers);
  if (max_workers > 2) counts.insert(counts.begin() + 1, 2);

  double wall_1 = 0;
  uint64_t tasks_1 = 0;
  std::vector<uint64_t> hashes_1;
  double headline_wall = 0;
  double headline_compute = 0;
  ClusterRun headline_run;
  for (int workers : counts) {
    auto run = RunCluster(workers, scale, procs, reps);
    DFDB_CHECK(run.ok()) << run.status();
    if (workers == 1) {
      wall_1 = run->wall_s;
      tasks_1 = run->max_worker_tasks;
      hashes_1 = run->hashes;
    } else {
      // Hash identity: partitioning must not change one result byte.
      DFDB_CHECK(run->hashes == hashes_1)
          << "result hash mismatch at " << workers << " workers";
    }
    const double speedup_wall =
        run->wall_s > 0 ? wall_1 / run->wall_s : 0;
    const double speedup_compute =
        run->max_worker_tasks > 0
            ? static_cast<double>(tasks_1) /
                  static_cast<double>(run->max_worker_tasks)
            : 0;
    table.AddRow({StrFormat("%d", workers), StrFormat("%.3f", run->wall_s),
                  StrFormat("%.2f", speedup_wall),
                  StrFormat("%.2f", speedup_compute),
                  StrFormat("%.2f", static_cast<double>(run->bytes_shuffled) /
                                        1e6),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(run->batches)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        run->max_worker_tasks))});
    if (workers == max_workers) {
      headline_wall = speedup_wall;
      headline_compute = speedup_compute;
      headline_run = std::move(*run);
    }
  }
  table.Print("dist_join");

  // The simulator's Fig 4.2 outer-ring measurement over the same query
  // mix at matching IP counts, next to the real coordinator-star shuffle
  // bandwidth: the same shared-path quantity, simulated and measured.
  StorageEngine full(16384);
  bench::BuildDatabaseOrDie(&full, scale);
  std::vector<PlanNodePtr> roots;
  std::vector<const PlanNode*> plans;
  for (const char* text : kQueries) {
    auto parsed = ParseQuery(text);
    DFDB_CHECK(parsed.ok()) << parsed.status();
    plans.push_back(parsed->get());
    roots.push_back(std::move(*parsed));
  }
  bench::Table ring({"workers", "real_shuffle_mbps", "sim_outer_ring_mbps"});
  const double real_mbps =
      headline_run.wall_s > 0
          ? static_cast<double>(headline_run.bytes_shuffled) * 8.0 / 1e6 /
                headline_run.wall_s
          : 0;
  for (int workers : counts) {
    MachineOptions opts;
    opts.granularity = Granularity::kPage;
    opts.config.num_instruction_processors = workers;
    opts.config.page_bytes = 16384;
    MachineSimulator sim(&full, opts);
    auto report = sim.Run(plans);
    DFDB_CHECK(report.ok()) << report.status();
    ring.AddRow({StrFormat("%d", workers),
                 workers == max_workers ? StrFormat("%.3f", real_mbps) : "-",
                 StrFormat("%.3f", report->OuterRingBps() / 1e6)});
    if (workers == max_workers) {
      obs::RunReport run = report->ToReport();
      run.label = StrFormat("sim ips=%d", workers);
      bench::JsonReport::Global().AddRunReport(run);
    }
  }
  ring.Print("dist_vs_sim_ring");

  // Headline gauges + the full dist.*/net.exchange.* counter registry.
  obs::RunReport report;
  report.backend = "engine";
  report.label = StrFormat("dist workers=%d", max_workers);
  report.seconds = headline_run.wall_s;
  report.data_bytes = headline_run.bytes_shuffled;
  report.packets = headline_run.batches;
  report.counters = std::move(headline_run.metrics);
  report.gauges["dist.join.workers"] = max_workers;
  report.gauges["dist.join.speedup_wall_x"] = headline_wall;
  report.gauges["dist.join.speedup_compute_x"] = headline_compute;
  report.gauges["dist.join.shuffle_mbit_s"] = real_mbps;
  bench::JsonReport::Global().AddRunReport(report);

  std::printf(
      "# speedup at %d workers: compute %.2fx (critical-path tasks), "
      "wall %.2fx\n",
      max_workers, headline_compute, headline_wall);
  bench::WriteJson("bench_distributed_join", argc, argv);
  if (max_workers > 1 && headline_compute < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: compute speedup %.2fx below required %.2fx\n",
                 headline_compute, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

/// \file bench_index_pruning.cc
/// \brief INDEX — page pruning via zone maps and grid files on a skewed
/// GB-scale event workload.
///
/// Builds a sessionized Zipfian event relation (scale 1.0 = 1M 100-byte
/// tuples), then runs three selective restricts — a ~2% time window, a
/// rare-user equality, and a user+device+time conjunction — under three
/// access-path modes: full scans forced (`off`), zone maps only (plans
/// optimized before CREATE INDEX), and grid file + zone maps (plans
/// optimized after). Every mode runs on both backends; the tuple-set hash
/// of every run must be identical (pruning is purely a page-read
/// optimization). Headline gauge `index.selective_restrict_speedup_x` is
/// the aggregate page-read reduction of the best mode over full scans,
/// asserted >= 5x at scale >= 2.0.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "engine/run.h"
#include "index/index_manager.h"
#include "machine/simulator.h"
#include "ra/optimizer.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

/// Order-insensitive content hash: sum of per-tuple FNV-1a over raw bytes.
uint64_t HashResult(const QueryResult& result) {
  uint64_t sum = 0;
  for (const PagePtr& page : result.pages()) {
    for (int i = 0; i < page->num_tuples(); ++i) {
      const std::string t = page->tuple(i).ToString();
      uint64_t h = 1469598103934665603ULL;
      for (char c : t) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
      }
      sum += h;
    }
  }
  return sum;
}

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 2.0);
  const int page_bytes = bench::FlagInt(argc, argv, "pagebytes", 16384);
  const uint64_t n = static_cast<uint64_t>(scale * 1e6);
  std::printf("== INDEX: zone-map / grid-file page pruning ==\n");
  std::printf("# scale %.2f: %llu tuples (%.2f GB), %d B pages\n", scale,
              static_cast<unsigned long long>(n),
              static_cast<double>(n) * 100 / 1e9, page_bytes);

  StorageEngine storage(page_bytes);
  {
    auto rel = GenerateSkewedRelation(&storage, "events", n, /*seed=*/42);
    DFDB_CHECK(rel.ok()) << rel.status();
  }
  DFDB_CHECK(storage.SyncAllStats().ok());
  DFDB_CHECK(storage.CommitRelation("events").ok());
  auto file = storage.GetHeapFile("events");
  DFDB_CHECK(file.ok()) << file.status();
  DFDB_CHECK((*file)->Flush().ok());
  const uint64_t total_pages = (*file)->PageIds().size();
  const int64_t users =
      static_cast<int64_t>(SkewedEventUserCount(n));

  struct Bench {
    const char* name;
    PlanNodePtr root;
  };
  std::vector<Bench> queries;
  // ~2% time window in the middle of the event stream: contiguous pages,
  // zone maps prune near-perfectly.
  queries.push_back(
      {"ts_window_2pct",
       MakeRestrict(MakeScan("events"),
                    And(Ge(Col("ts"), Lit(static_cast<int64_t>(n * 3 / 10))),
                        Lt(Col("ts"), Lit(static_cast<int64_t>(
                                          n * 3 / 10 + n / 50)))))});
  // Rare user: sessionized generation clusters the few sessions of a
  // cold Zipfian rank into a handful of pages; the grid file finds them.
  // Rank users/10 is cold enough to prune hard yet hot enough to return
  // tuples (a fully dead rank would make the differential vacuous).
  queries.push_back(
      {"rare_user_eq",
       MakeRestrict(MakeScan("events"),
                    Eq(Col("user"), Lit(static_cast<int32_t>(users / 10))))});
  // Conjunction over both grid dimensions plus a time bound.
  queries.push_back(
      {"user_device_ts",
       MakeRestrict(
           MakeScan("events"),
           And(And(Eq(Col("user"),
                      Lit(static_cast<int32_t>(users / 20))),
                   Eq(Col("device"), Lit(5))),
               Ge(Col("ts"), Lit(static_cast<int64_t>(n / 4)))))});

  // Zone-only plans: optimized before the index definition exists.
  Optimizer optimizer(&storage.catalog());
  std::vector<PlanNodePtr> zone_plans;
  for (const Bench& q : queries) {
    auto p = optimizer.Optimize(*q.root, nullptr);
    DFDB_CHECK(p.ok()) << p.status();
    zone_plans.push_back(std::move(*p));
  }
  // Grid plans: optimized with the (user, device) grid file in the catalog.
  Status created = GetIndexManager(&storage)->CreateIndex(
      "events_user_device", "events", {"user", "device"});
  DFDB_CHECK(created.ok()) << created;
  std::vector<PlanNodePtr> grid_plans;
  for (const Bench& q : queries) {
    auto p = optimizer.Optimize(*q.root, nullptr);
    DFDB_CHECK(p.ok()) << p.status();
    grid_plans.push_back(std::move(*p));
  }

  struct Mode {
    const char* name;
    IndexPolicy policy;
    const std::vector<PlanNodePtr>* plans;
  };
  const Mode modes[] = {
      {"off", IndexPolicy::kForceFullScan, &grid_plans},
      {"zone", IndexPolicy::kHonorPlan, &zone_plans},
      {"grid", IndexPolicy::kHonorPlan, &grid_plans},
  };

  bench::Table table({"query", "mode", "engine_pages_read", "engine_s",
                      "machine_pages_read", "machine_s", "tuples"});
  uint64_t pages_off = 0, pages_best = 0;
  ExecStats grid_engine_stats;
  MachineReport grid_machine_report;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    uint64_t reference_hash = 0;
    uint64_t reference_tuples = 0;
    for (const Mode& mode : modes) {
      const PlanNode& plan = *(*mode.plans)[qi];
      // Threads engine.
      ExecOptions eopts;
      eopts.page_bytes = page_bytes;
      eopts.index = mode.policy;
      ExecStats estats;
      auto eresult = RunQuery(&storage, plan, eopts, &estats);
      DFDB_CHECK(eresult.ok()) << eresult.status();
      const uint64_t engine_read =
          total_pages - eresult->stats().index.pages_pruned;
      // Ring simulator.
      MachineOptions mopts;
      mopts.config.page_bytes = page_bytes;
      mopts.index = mode.policy;
      MachineSimulator sim(&storage, mopts);
      auto mreport = sim.Run({&plan});
      DFDB_CHECK(mreport.ok()) << mreport.status();
      DFDB_CHECK(mreport->results.size() == 1);
      const uint64_t machine_read =
          total_pages - mreport->index.pages_pruned;

      // Byte-identical results across modes and backends.
      const uint64_t ehash = HashResult(*eresult);
      const uint64_t mhash = HashResult(mreport->results[0]);
      DFDB_CHECK(ehash == mhash)
          << queries[qi].name << " " << mode.name
          << ": engine and machine disagree";
      if (mode.policy == IndexPolicy::kForceFullScan) {
        reference_hash = ehash;
        reference_tuples = eresult->num_tuples();
        pages_off += engine_read;
      } else {
        DFDB_CHECK(ehash == reference_hash)
            << queries[qi].name << " " << mode.name
            << ": pruned result differs from full scan";
      }
      DFDB_CHECK(mreport->index.pages_pruned ==
                 eresult->stats().index.pages_pruned)
          << queries[qi].name << " " << mode.name
          << ": backends pruned different page sets";
      if (std::string(mode.name) == "grid") {
        pages_best += engine_read;
        grid_engine_stats = eresult->stats();
        grid_machine_report = *std::move(mreport);
      }
      table.AddRow(
          {queries[qi].name, mode.name,
           StrFormat("%llu", static_cast<unsigned long long>(engine_read)),
           StrFormat("%.3f", eresult->stats().wall_seconds),
           StrFormat("%llu", static_cast<unsigned long long>(machine_read)),
           StrFormat("%.3f", mreport->makespan.ToSecondsF()),
           StrFormat("%llu",
                     static_cast<unsigned long long>(reference_tuples))});
    }
  }
  table.Print("index_pruning");

  const double speedup =
      pages_best > 0 ? static_cast<double>(pages_off) /
                           static_cast<double>(pages_best)
                     : 1.0;
  std::printf("# selective restricts: %llu pages full-scan, %llu pruned "
              "(%.1fx fewer page reads)\n",
              static_cast<unsigned long long>(pages_off),
              static_cast<unsigned long long>(pages_best), speedup);
  if (scale >= 2.0) {
    DFDB_CHECK(speedup >= 5.0)
        << "acceptance: expected >=5x page-read reduction at scale "
        << scale << ", got " << speedup;
  }

  obs::RunReport erun = grid_engine_stats.ToReport();
  erun.label = "engine grid";
  erun.gauges["index.selective_restrict_speedup_x"] = speedup;
  erun.gauges["index.pages_full_scan"] = static_cast<double>(pages_off);
  erun.gauges["index.pages_after_pruning"] = static_cast<double>(pages_best);
  bench::JsonReport::Global().AddRunReport(erun);
  obs::RunReport mrun = grid_machine_report.ToReport();
  mrun.label = "machine grid";
  bench::JsonReport::Global().AddRunReport(mrun);

  bench::WriteJson("bench_index_pruning", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

/// \file bench_ablation_pagesize.cc
/// \brief ABL-PS — page-size ablation (Section 3.3's discussion).
///
/// "While increasing the page size to 10,000 bytes will obviously decrease
/// the arbitration network bandwidth requirements by another order of
/// magnitude, such an increase may have an adverse effect on query
/// execution time because it may reduce the maximum degree of concurrency
/// which is possible."
///
/// Expected shape: network traffic decreases monotonically with page size,
/// while execution time is U-shaped — tiny pages drown in per-packet
/// overhead, huge pages starve the processors of parallelism.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "machine/simulator.h"

namespace dfdb {
namespace {

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 1.0);
  std::printf("== ABL-PS: page-size sweep ==\n");
  StorageEngine storage(/*default_page_bytes=*/16384);
  bench::BuildDatabaseOrDie(&storage, scale);
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans = bench::QueryPointers(queries);

  for (int procs : {8, 32}) {
    std::printf("-- %d instruction processors --\n", procs);
    bench::Table table({"page_bytes", "exec_time_s", "outer_ring_mb",
                        "outer_ring_mbps", "instr_packets"});
    for (int page : {512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}) {
      MachineOptions opts;
      opts.granularity = Granularity::kPage;
      opts.config.num_instruction_processors = procs;
      opts.config.num_instruction_controllers = 8;
      opts.config.page_bytes = page;
      // Hold the byte capacity of the memories constant across page sizes.
      opts.config.ic_local_memory_pages =
          std::max(2, 8 * 16384 / page);
      opts.config.disk_cache_pages = std::max(4, 64 * 16384 / page);
      MachineSimulator sim(&storage, opts);
      auto report = sim.Run(plans);
      DFDB_CHECK(report.ok()) << report.status();
      table.AddRow(
          {StrFormat("%d", page),
           StrFormat("%.3f", report->makespan.ToSecondsF()),
           StrFormat("%.2f",
                     static_cast<double>(report->bytes.outer_ring) / 1e6),
           StrFormat("%.3f", report->OuterRingBps() / 1e6),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 report->instruction_packets))});
    }
    table.Print(procs == 8 ? "ablps_p8" : "ablps_p32");
  }
  bench::WriteJson("bench_ablation_pagesize", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

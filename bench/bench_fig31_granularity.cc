/// \file bench_fig31_granularity.cc
/// \brief FIG-3.1 — "Comparison of Page-Level and Relation-Level
/// Granularities" (Section 3.2, Figure 3.1).
///
/// Paper setup: ten-query benchmark (2x1R, 3x1J+2R, 2x2J+3R, 1x3J+4R,
/// 1x4J+4R, 1x5J+6R), 15 relations / 5.5 MB, two memory cells per
/// processor. Expected shape: page-level granularity outperforms
/// relation-level "by a factor of about two", both curves flattening once
/// the benchmark's parallelism is exhausted.
///
/// The primary reproduction runs on the machine simulator (simulated time,
/// device models of Section 4.1); a secondary table runs the same policies
/// on the multithreaded engine (host wall-clock).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "engine/run.h"
#include "machine/simulator.h"

namespace dfdb {
namespace {

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 1.0);
  std::printf("== FIG-3.1: page-level vs relation-level granularity ==\n");
  StorageEngine storage(/*default_page_bytes=*/16384);
  bench::BuildDatabaseOrDie(&storage, scale);
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans = bench::QueryPointers(queries);

  bench::Table table({"processors", "relation_time_s", "page_time_s",
                      "speedup_page_over_relation"});
  // Both backends report through the shared RunReport path (the same
  // RunTable type bench_fig42_bandwidth uses).
  bench::RunTable runs({"granularity", "processors"});
  const int procs[] = {1, 2, 4, 8, 12, 16, 24, 32, 40, 50};
  for (int p : procs) {
    double times[2] = {0, 0};
    for (int g = 0; g < 2; ++g) {
      MachineOptions opts;
      opts.granularity = g == 0 ? Granularity::kRelation : Granularity::kPage;
      opts.config.num_instruction_processors = p;
      opts.config.num_instruction_controllers = 8;
      opts.config.page_bytes = 16384;
      MachineSimulator sim(&storage, opts);
      auto report = sim.Run(plans);
      DFDB_CHECK(report.ok()) << report.status();
      times[g] = report->makespan.ToSecondsF();
      obs::RunReport run = report->ToReport();
      run.label = StrFormat("%s p=%d", g == 0 ? "relation" : "page", p);
      runs.Add({g == 0 ? "relation" : "page", StrFormat("%d", p)}, run);
    }
    table.AddRow({StrFormat("%d", p), StrFormat("%.3f", times[0]),
                  StrFormat("%.3f", times[1]),
                  StrFormat("%.2fx", times[0] / times[1])});
  }
  table.Print("fig31_machine");

  // Secondary: the same policies on real threads (wall clock).
  std::printf("-- threads engine (host wall clock, same policies) --\n");
  bench::Table wall({"processors", "relation_wall_s", "page_wall_s",
                     "speedup"});
  for (int p : {1, 2, 4, 8}) {
    double times[2] = {0, 0};
    for (int g = 0; g < 2; ++g) {
      ExecOptions opts;
      opts.granularity = g == 0 ? Granularity::kRelation : Granularity::kPage;
      opts.num_processors = p;
      opts.page_bytes = 16384;
      opts.local_memory_pages = 64;
      opts.disk_cache_pages = 512;
      ExecStats stats;
      auto results = RunBatch(&storage, plans, opts, &stats);
      DFDB_CHECK(results.ok()) << results.status();
      times[g] = stats.wall_seconds;
      obs::RunReport run = stats.ToReport();
      run.label = StrFormat("%s p=%d", g == 0 ? "relation" : "page", p);
      runs.Add({g == 0 ? "relation" : "page", StrFormat("%d", p)}, run);
    }
    wall.AddRow({StrFormat("%d", p), StrFormat("%.3f", times[0]),
                 StrFormat("%.3f", times[1]),
                 StrFormat("%.2fx", times[0] / times[1])});
  }
  wall.Print("fig31_threads");
  runs.Print("fig31_runs");
  bench::WriteJson("bench_fig31_granularity", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

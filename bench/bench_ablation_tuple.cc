/// \file bench_ablation_tuple.cc
/// \brief ABL-TUP — tuple-level granularity measured end to end.
///
/// The paper rejects tuple granularity analytically (Section 3.3: network
/// burden, memory-management complexity) without running it. We run it:
/// on a scaled-down database the machine simulator executes the same
/// queries at tuple, page, and relation granularity.
///
/// Expected shape: tuple granularity moves ~10x the bytes of 1 KB pages
/// across the ring and pays a large per-packet overhead in both packets
/// and time, with no compensating speedup — confirming the paper's
/// argument empirically.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "machine/simulator.h"

namespace dfdb {
namespace {

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.02);
  std::printf("== ABL-TUP: tuple vs page vs relation granularity ==\n");
  StorageEngine storage(/*default_page_bytes=*/1000);
  bench::BuildDatabaseOrDie(&storage, scale);
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans = bench::QueryPointers(queries);

  bench::Table table({"granularity", "ips", "exec_time_s", "outer_ring_mb",
                      "instr_packets", "events"});
  for (int ips : {1, 4, 16}) {
    for (Granularity g :
         {Granularity::kTuple, Granularity::kPage, Granularity::kRelation}) {
      MachineOptions opts;
      opts.granularity = g;
      opts.config.num_instruction_processors = ips;
      opts.config.page_bytes = 1000;
      opts.config.ic_local_memory_pages = 128;   // Same bytes as 8 x 16 KB.
      opts.config.disk_cache_pages = 1024;       // Same bytes as 64 x 16 KB.
      MachineSimulator sim(&storage, opts);
      auto report = sim.Run(plans);
      DFDB_CHECK(report.ok()) << report.status();
      table.AddRow(
          {std::string(GranularityToString(g)), StrFormat("%d", ips),
           StrFormat("%.3f", report->makespan.ToSecondsF()),
           StrFormat("%.3f",
                     static_cast<double>(report->bytes.outer_ring) / 1e6),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 report->instruction_packets)),
           StrFormat("%llu", static_cast<unsigned long long>(report->events))});
    }
  }
  table.Print("abltup");
  bench::WriteJson("bench_ablation_tuple", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

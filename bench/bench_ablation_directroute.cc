/// \file bench_ablation_directroute.cc
/// \brief ABL-DR — IP-to-IP direct result routing (Section 5.0).
///
/// "We feel that it should be possible to route some of the data pages
/// which are produced by IPs directly from one IP to another without first
/// sending the page to an IC. If such an approach could be successfully
/// implemented then message traffic on the outer ring could be further
/// reduced. There appears, however, to be a tradeoff between decreased
/// message traffic and increased IP complexity."
///
/// The sweep varies the modelled IP-complexity cost per directly routed
/// packet; the crossover shows where the paper's tradeoff flips.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "machine/simulator.h"

namespace dfdb {
namespace {

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 1.0);
  std::printf("== ABL-DR: direct IP-to-IP result routing ==\n");
  StorageEngine storage(/*default_page_bytes=*/16384);
  bench::BuildDatabaseOrDie(&storage, scale);
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans = bench::QueryPointers(queries);

  bench::Table table({"ips", "mode", "ip_overhead_us", "exec_time_s",
                      "outer_ring_mb", "direct_routes"});
  for (int ips : {8, 16, 32}) {
    for (int mode = 0; mode < 4; ++mode) {
      MachineOptions opts;
      opts.granularity = Granularity::kPage;
      opts.config.num_instruction_processors = ips;
      opts.config.num_instruction_controllers = 8;
      opts.config.page_bytes = 16384;
      int overhead_us = 0;
      if (mode > 0) {
        opts.ip_direct_routing = true;
        overhead_us = mode == 1 ? 0 : (mode == 2 ? 200 : 2000);
        opts.direct_routing_overhead = SimTime::Micros(overhead_us);
      }
      MachineSimulator sim(&storage, opts);
      auto report = sim.Run(plans);
      DFDB_CHECK(report.ok()) << report.status();
      table.AddRow(
          {StrFormat("%d", ips), mode == 0 ? "via_ic" : "direct",
           StrFormat("%d", overhead_us),
           StrFormat("%.3f", report->makespan.ToSecondsF()),
           StrFormat("%.2f",
                     static_cast<double>(report->bytes.outer_ring) / 1e6),
           StrFormat("%llu",
                     static_cast<unsigned long long>(report->direct_routes))});
    }
  }
  table.Print("abldr");
  bench::WriteJson("bench_ablation_directroute", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

/// \file bench_ablation_hardware.cc
/// \brief ABL-HW — machine design space: instruction controllers and disk
/// drives.
///
/// Section 4.1 fixes "two IBM 3330 disk drives" and leaves the IC count
/// open ("a set of instruction controllers"). This sweep shows where each
/// resource binds on the ten-query benchmark:
///   - ICs form the distributed arbitration network; too few serialize
///     instruction control and concentrate local-memory pressure;
///   - drives bound cold-read and spill bandwidth — the level Figure 4.2
///     shows saturating first.
///
/// A second sweep measures graceful degradation (Section 4's motivation for
/// distributed control): time-to-completion of the full benchmark while k
/// IPs are killed mid-run, with the recovery counters that explain the
/// slowdown.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "machine/simulator.h"

namespace dfdb {
namespace {

int Main(int argc, char** argv) {
  const double scale = bench::FlagDouble(argc, argv, "scale", 1.0);
  const int ips = bench::FlagInt(argc, argv, "ips", 24);
  std::printf("== ABL-HW: instruction controllers x disk drives (%d IPs) ==\n",
              ips);
  StorageEngine storage(/*default_page_bytes=*/16384);
  bench::BuildDatabaseOrDie(&storage, scale);
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans = bench::QueryPointers(queries);

  bench::Table table({"ics", "drives", "exec_time_s", "disk_mbps",
                      "cache_mbps", "outer_ring_mbps", "ip_util_pct"});
  for (int ics : {1, 2, 4, 8, 16}) {
    for (int drives : {1, 2, 4}) {
      MachineOptions opts;
      opts.granularity = Granularity::kPage;
      opts.config.num_instruction_processors = ips;
      opts.config.num_instruction_controllers = ics;
      opts.config.num_disk_drives = drives;
      opts.config.page_bytes = 16384;
      MachineSimulator sim(&storage, opts);
      auto report = sim.Run(plans);
      DFDB_CHECK(report.ok()) << report.status();
      table.AddRow({StrFormat("%d", ics), StrFormat("%d", drives),
                    StrFormat("%.3f", report->makespan.ToSecondsF()),
                    StrFormat("%.3f", report->DiskBps() / 1e6),
                    StrFormat("%.3f", report->CacheBps() / 1e6),
                    StrFormat("%.3f", report->OuterRingBps() / 1e6),
                    StrFormat("%.1f", report->IpUtilization() * 100.0)});
    }
  }
  table.Print("ablhw");

  // Graceful degradation: kill k of the IPs, staggered over the first half
  // of the fault-free run, and measure the completion-time cost of
  // detection, retransmission, and re-dispatch.
  std::printf("\n== ABL-HW-FAULT: time-to-completion under k IP kills ==\n");
  MachineOptions base;
  base.granularity = Granularity::kPage;
  base.config.num_instruction_processors = ips;
  base.config.num_instruction_controllers = 4;
  base.config.num_disk_drives = 2;
  base.config.page_bytes = 16384;
  MachineSimulator healthy(&storage, base);
  auto healthy_report = healthy.Run(plans);
  DFDB_CHECK(healthy_report.ok()) << healthy_report.status();
  const SimTime horizon = healthy_report->makespan;

  bench::Table fault_table({"kills", "exec_time_s", "slowdown", "timeouts",
                            "retries", "redispatches", "retry_lost_ms"});
  for (int kills : {0, 1, 2, 4}) {
    FaultPlan plan;
    for (int k = 0; k < kills; ++k) {
      // Stagger kills across the first half of the fault-free makespan so
      // recovery overlaps remaining work instead of landing on the tail.
      const SimTime at = SimTime::Nanos(
          horizon.nanos() * (k + 1) / (2 * (kills + 1)));
      plan.events.push_back(
          {FaultType::kKillIp, at, /*target=*/-1, 1, SimTime::Zero()});
    }
    MachineOptions opts = base;
    opts.fault_plan = plan;
    MachineSimulator sim(&storage, opts);
    auto report = sim.Run(plans);
    DFDB_CHECK(report.ok()) << report.status();
    fault_table.AddRow(
        {StrFormat("%d", kills),
         StrFormat("%.3f", report->makespan.ToSecondsF()),
         StrFormat("%.3fx", report->makespan.ToSecondsF() /
                                healthy_report->makespan.ToSecondsF()),
         StrFormat("%llu", (unsigned long long)report->faults.timeouts),
         StrFormat("%llu", (unsigned long long)report->faults.retries),
         StrFormat("%llu", (unsigned long long)report->faults.redispatches),
         StrFormat("%.3f",
                   report->faults.retry_ticks_lost.ToSecondsF() * 1e3)});
  }
  fault_table.Print("ablhw_fault");
  bench::WriteJson("bench_ablation_hardware", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

/// \file bench_ablation_broadcast.cc
/// \brief ABL-BC — the broadcast facility for joins (Section 4.0,
/// requirement 4).
///
/// "In order to minimize data movement, a broadcast facility is needed so
/// that a page from the inner relation can be distributed to some or all
/// of the participating processors simultaneously."
///
/// Expected shape: with broadcast disabled, outer-ring traffic for the
/// inner relation multiplies by the number of participating IPs, and ring
/// saturation slows the join at high IP counts.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "machine/simulator.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

int Main(int argc, char** argv) {
  const int tuples = bench::FlagInt(argc, argv, "tuples", 4000);
  std::printf("== ABL-BC: broadcast vs unicast inner-relation pages ==\n");
  StorageEngine storage(/*default_page_bytes=*/16384);
  auto ra = GenerateRelation(&storage, "big", static_cast<uint64_t>(tuples), 1);
  auto rb =
      GenerateRelation(&storage, "small", static_cast<uint64_t>(tuples / 4), 2);
  DFDB_CHECK(ra.ok() && rb.ok());
  auto plan = MakeJoin(MakeScan("big"), MakeScan("small"),
                       Eq(Col("k100"), RightCol("k100")));

  bench::Table table({"ips", "mode", "exec_time_s", "outer_ring_mb",
                      "broadcasts", "outer_ring_mbps"});
  for (int ips : {2, 4, 8, 16, 32}) {
    for (int mode = 0; mode < 2; ++mode) {
      MachineOptions opts;
      opts.granularity = Granularity::kPage;
      opts.broadcast_join = mode == 0;
      opts.config.num_instruction_processors = ips;
      opts.config.page_bytes = 4096;
      MachineSimulator sim(&storage, opts);
      auto report = sim.Run({plan.get()});
      DFDB_CHECK(report.ok()) << report.status();
      table.AddRow(
          {StrFormat("%d", ips), mode == 0 ? "broadcast" : "unicast",
           StrFormat("%.3f", report->makespan.ToSecondsF()),
           StrFormat("%.2f",
                     static_cast<double>(report->bytes.outer_ring) / 1e6),
           StrFormat("%llu",
                     static_cast<unsigned long long>(report->broadcasts)),
           StrFormat("%.3f", report->OuterRingBps() / 1e6)});
    }
  }
  table.Print("ablbc");
  bench::WriteJson("bench_ablation_broadcast", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

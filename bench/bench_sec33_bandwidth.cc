/// \file bench_sec33_bandwidth.cc
/// \brief SEC-3.3 — the arbitration-network bandwidth analysis of
/// Section 3.3.
///
/// The paper's analytic claim, for a nested-loops join of relations with n
/// and m 100-byte tuples and per-packet overhead c:
///   tuple granularity moves  n*m*(200+c)        bytes;
///   1 KB-page granularity    n/10 * m/10 * (2000+c) = n*m*(20+c/100);
///   10 KB pages cut another order of magnitude.
/// "The bandwidth requirements of the page approach is 1/10 that of the
/// tuple level approach."
///
/// We print the analytic table AND the measured outer-ring bytes from the
/// machine simulator running the same join at each granularity.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "machine/simulator.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

/// Analytic bytes through the arbitration network (paper formulas).
double AnalyticBytes(double n, double m, double tuple_bytes, double page_bytes,
                     double c) {
  const double pages_n = n * tuple_bytes / page_bytes;
  const double pages_m = m * tuple_bytes / page_bytes;
  return pages_n * pages_m * (2.0 * page_bytes + c);
}

int Main(int argc, char** argv) {
  std::printf("== SEC-3.3: arbitration bandwidth, tuple vs page ==\n");

  // Part 1: the paper's analytic table.
  bench::Table analytic({"n=m", "overhead_c", "tuple_bytes", "page1k_bytes",
                         "page10k_bytes", "tuple_over_page1k"});
  for (double nm : {100.0, 316.0, 1000.0, 3162.0}) {
    for (double c : {16.0, 64.0, 256.0}) {
      const double tuple = nm * nm * (200.0 + c);
      const double p1k = AnalyticBytes(nm, nm, 100.0, 1000.0, c);
      const double p10k = AnalyticBytes(nm, nm, 100.0, 10000.0, c);
      analytic.AddRow({StrFormat("%.0f", nm), StrFormat("%.0f", c),
                       StrFormat("%.3e", tuple), StrFormat("%.3e", p1k),
                       StrFormat("%.3e", p10k),
                       StrFormat("%.2fx", tuple / p1k)});
    }
  }
  analytic.Print("sec33_analytic");

  // Part 2: measured on the machine simulator. A single join of two
  // relations (no restricts so every tuple flows), at tuple granularity vs
  // 1 KB and 10 KB pages.
  const int n = bench::FlagInt(argc, argv, "n", 300);
  std::printf("-- measured: join of two %d-tuple relations (100 B tuples) --\n",
              n);
  bench::Table measured({"granularity", "page_bytes", "outer_ring_bytes",
                         "instr_packets", "sim_time_s"});
  uint64_t tuple_bytes_measured = 0, page_bytes_measured = 0;
  std::vector<obs::RunReport> runs;
  for (int mode = 0; mode < 3; ++mode) {
    StorageEngine storage(/*default_page_bytes=*/16384);
    auto ra = GenerateRelation(&storage, "lhs", static_cast<uint64_t>(n), 1);
    auto rb = GenerateRelation(&storage, "rhs", static_cast<uint64_t>(n), 2);
    DFDB_CHECK(ra.ok() && rb.ok());
    auto plan = MakeJoin(MakeScan("lhs"), MakeScan("rhs"),
                         Eq(Col("k100"), RightCol("k100")));
    MachineOptions opts;
    opts.granularity = mode == 0 ? Granularity::kTuple : Granularity::kPage;
    opts.config.page_bytes = mode == 2 ? 10000 : 1000;
    opts.config.num_instruction_processors = 8;
    MachineSimulator sim(&storage, opts);
    auto report = sim.Run({plan.get()});
    DFDB_CHECK(report.ok()) << report.status();
    const char* label = mode == 0 ? "tuple" : "page";
    obs::RunReport run = report->ToReport();
    run.label = StrFormat("%s pb=%d", label,
                          mode == 0 ? 100 : opts.config.page_bytes);
    // The measured table, re-emitted as gauges so the JSON report (and the
    // regression gate's metric keys) carry the same numbers as the stdout
    // table.
    run.gauges["sec33.outer_ring_bytes"] =
        static_cast<double>(report->bytes.outer_ring);
    run.gauges["sec33.instr_packets"] =
        static_cast<double>(report->instruction_packets);
    run.gauges["sec33.sim_time_s"] = report->makespan.ToSecondsF();
    runs.push_back(std::move(run));
    if (mode == 0) tuple_bytes_measured = report->bytes.outer_ring;
    if (mode == 1) page_bytes_measured = report->bytes.outer_ring;
    measured.AddRow({label, StrFormat("%d", mode == 0 ? 100 : opts.config.page_bytes),
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           report->bytes.outer_ring)),
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           report->instruction_packets)),
                     StrFormat("%.3f", report->makespan.ToSecondsF())});
  }
  measured.Print("sec33_measured");
  if (page_bytes_measured > 0) {
    const double ratio = static_cast<double>(tuple_bytes_measured) /
                         static_cast<double>(page_bytes_measured);
    std::printf("# measured tuple/page(1KB) traffic ratio: %.1fx "
                "(paper's analysis: ~10x)\n",
                ratio);
    runs[1].gauges["sec33.tuple_over_page1k_ratio_x"] = ratio;
  }
  for (obs::RunReport& run : runs) {
    bench::JsonReport::Global().AddRunReport(run);
  }
  bench::WriteJson("bench_sec33_bandwidth", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

/// \file bench_ablation_project.cc
/// \brief ABL-PROJ — parallel duplicate elimination (Section 5.0).
///
/// "Two other areas which need additional research are algorithms for
/// performing the project operator (elimination of unwanted attributes and
/// duplicate tuples) using multiple processors ... we have not yet
/// developed an algorithm for which a high degree of parallelism can be
/// maintained for the duration of the operator."
///
/// We implement the hash-partitioned algorithm (every input page is
/// broadcast once; IP i eliminates duplicates within partition i) and
/// measure it against the single-IP barrier the paper was stuck with.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "machine/simulator.h"
#include "ra/parser.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

int Main(int argc, char** argv) {
  const int tuples = bench::FlagInt(argc, argv, "tuples", 20000);
  std::printf("== ABL-PROJ: parallel vs serial dedup-project ==\n");
  StorageEngine storage(/*default_page_bytes=*/4096);
  auto rel =
      GenerateRelation(&storage, "big", static_cast<uint64_t>(tuples), 1);
  DFDB_CHECK(rel.ok());
  // Project to (k100, k1000): 100k possible values, heavy duplication.
  auto plan = ParseQuery("project(big, [k100, k1000], dedup)");
  DFDB_CHECK(plan.ok()) << plan.status();

  bench::Table table({"ips", "mode", "exec_time_s", "result_tuples",
                      "outer_ring_mb", "broadcasts", "speedup"});
  for (int ips : {1, 2, 4, 8, 16}) {
    double serial_time = 0;
    for (int mode = 0; mode < 2; ++mode) {
      MachineOptions opts;
      opts.granularity = Granularity::kPage;
      opts.parallel_project = mode == 1;
      opts.project_partitions = 8;
      opts.config.num_instruction_processors = ips;
      opts.config.page_bytes = 4096;
      MachineSimulator sim(&storage, opts);
      auto report = sim.Run({plan->get()});
      DFDB_CHECK(report.ok()) << report.status();
      const double t = report->makespan.ToSecondsF();
      if (mode == 0) serial_time = t;
      table.AddRow(
          {StrFormat("%d", ips), mode == 0 ? "serial" : "parallel",
           StrFormat("%.3f", t),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 report->results[0].num_tuples())),
           StrFormat("%.2f",
                     static_cast<double>(report->bytes.outer_ring) / 1e6),
           StrFormat("%llu",
                     static_cast<unsigned long long>(report->broadcasts)),
           StrFormat("%.2fx", serial_time / t)});
    }
  }
  table.Print("ablproj");
  bench::WriteJson("bench_ablation_project", argc, argv);
  return 0;
}

}  // namespace
}  // namespace dfdb

int main(int argc, char** argv) { return dfdb::Main(argc, argv); }

# Empty compiler generated dependencies file for granularity_tour.
# This may be replaced when dependencies are built.

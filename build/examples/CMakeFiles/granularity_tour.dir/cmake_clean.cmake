file(REMOVE_RECURSE
  "CMakeFiles/granularity_tour.dir/granularity_tour.cpp.o"
  "CMakeFiles/granularity_tour.dir/granularity_tour.cpp.o.d"
  "granularity_tour"
  "granularity_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/machine_sim.dir/machine_sim.cpp.o"
  "CMakeFiles/machine_sim.dir/machine_sim.cpp.o.d"
  "machine_sim"
  "machine_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/raql_repl.dir/raql_repl.cpp.o"
  "CMakeFiles/raql_repl.dir/raql_repl.cpp.o.d"
  "raql_repl"
  "raql_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raql_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for raql_repl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_project.dir/bench_ablation_project.cc.o"
  "CMakeFiles/bench_ablation_project.dir/bench_ablation_project.cc.o.d"
  "bench_ablation_project"
  "bench_ablation_project.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_project.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_project.
# This may be replaced when dependencies are built.

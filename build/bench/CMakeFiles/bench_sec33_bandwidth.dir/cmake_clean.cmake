file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_bandwidth.dir/bench_sec33_bandwidth.cc.o"
  "CMakeFiles/bench_sec33_bandwidth.dir/bench_sec33_bandwidth.cc.o.d"
  "bench_sec33_bandwidth"
  "bench_sec33_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

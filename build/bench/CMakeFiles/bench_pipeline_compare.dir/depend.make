# Empty dependencies file for bench_pipeline_compare.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_compare.dir/bench_pipeline_compare.cc.o"
  "CMakeFiles/bench_pipeline_compare.dir/bench_pipeline_compare.cc.o.d"
  "bench_pipeline_compare"
  "bench_pipeline_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

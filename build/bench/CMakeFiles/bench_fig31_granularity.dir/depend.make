# Empty dependencies file for bench_fig31_granularity.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ablation_hardware.
# This may be replaced when dependencies are built.

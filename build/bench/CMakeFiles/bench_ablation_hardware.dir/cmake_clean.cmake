file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hardware.dir/bench_ablation_hardware.cc.o"
  "CMakeFiles/bench_ablation_hardware.dir/bench_ablation_hardware.cc.o.d"
  "bench_ablation_hardware"
  "bench_ablation_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_cells.
# This may be replaced when dependencies are built.

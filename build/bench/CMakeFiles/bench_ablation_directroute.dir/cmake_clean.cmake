file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_directroute.dir/bench_ablation_directroute.cc.o"
  "CMakeFiles/bench_ablation_directroute.dir/bench_ablation_directroute.cc.o.d"
  "bench_ablation_directroute"
  "bench_ablation_directroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_directroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_directroute.
# This may be replaced when dependencies are built.

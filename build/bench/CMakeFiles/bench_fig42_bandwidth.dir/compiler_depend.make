# Empty compiler generated dependencies file for bench_fig42_bandwidth.
# This may be replaced when dependencies are built.

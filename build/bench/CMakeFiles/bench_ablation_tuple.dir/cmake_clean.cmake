file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tuple.dir/bench_ablation_tuple.cc.o"
  "CMakeFiles/bench_ablation_tuple.dir/bench_ablation_tuple.cc.o.d"
  "bench_ablation_tuple"
  "bench_ablation_tuple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_tuple.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dfdb_workload.dir/csv.cc.o"
  "CMakeFiles/dfdb_workload.dir/csv.cc.o.d"
  "CMakeFiles/dfdb_workload.dir/generator.cc.o"
  "CMakeFiles/dfdb_workload.dir/generator.cc.o.d"
  "CMakeFiles/dfdb_workload.dir/paper_benchmark.cc.o"
  "CMakeFiles/dfdb_workload.dir/paper_benchmark.cc.o.d"
  "libdfdb_workload.a"
  "libdfdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdfdb_workload.a"
)

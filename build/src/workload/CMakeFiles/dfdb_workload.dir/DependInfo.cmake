
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/csv.cc" "src/workload/CMakeFiles/dfdb_workload.dir/csv.cc.o" "gcc" "src/workload/CMakeFiles/dfdb_workload.dir/csv.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/dfdb_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/dfdb_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/paper_benchmark.cc" "src/workload/CMakeFiles/dfdb_workload.dir/paper_benchmark.cc.o" "gcc" "src/workload/CMakeFiles/dfdb_workload.dir/paper_benchmark.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/dfdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/dfdb_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dfdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/operators/CMakeFiles/dfdb_operators.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dfdb_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

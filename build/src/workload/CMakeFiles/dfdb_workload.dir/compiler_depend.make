# Empty compiler generated dependencies file for dfdb_workload.
# This may be replaced when dependencies are built.

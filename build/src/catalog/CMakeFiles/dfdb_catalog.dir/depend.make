# Empty dependencies file for dfdb_catalog.
# This may be replaced when dependencies are built.

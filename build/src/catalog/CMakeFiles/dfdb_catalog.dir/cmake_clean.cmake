file(REMOVE_RECURSE
  "CMakeFiles/dfdb_catalog.dir/catalog.cc.o"
  "CMakeFiles/dfdb_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/dfdb_catalog.dir/schema.cc.o"
  "CMakeFiles/dfdb_catalog.dir/schema.cc.o.d"
  "CMakeFiles/dfdb_catalog.dir/types.cc.o"
  "CMakeFiles/dfdb_catalog.dir/types.cc.o.d"
  "libdfdb_catalog.a"
  "libdfdb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfdb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

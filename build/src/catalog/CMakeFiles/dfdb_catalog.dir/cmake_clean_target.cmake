file(REMOVE_RECURSE
  "libdfdb_catalog.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dfdb_storage.dir/buffer_manager.cc.o"
  "CMakeFiles/dfdb_storage.dir/buffer_manager.cc.o.d"
  "CMakeFiles/dfdb_storage.dir/heap_file.cc.o"
  "CMakeFiles/dfdb_storage.dir/heap_file.cc.o.d"
  "CMakeFiles/dfdb_storage.dir/page.cc.o"
  "CMakeFiles/dfdb_storage.dir/page.cc.o.d"
  "CMakeFiles/dfdb_storage.dir/page_store.cc.o"
  "CMakeFiles/dfdb_storage.dir/page_store.cc.o.d"
  "CMakeFiles/dfdb_storage.dir/page_table.cc.o"
  "CMakeFiles/dfdb_storage.dir/page_table.cc.o.d"
  "CMakeFiles/dfdb_storage.dir/storage_engine.cc.o"
  "CMakeFiles/dfdb_storage.dir/storage_engine.cc.o.d"
  "CMakeFiles/dfdb_storage.dir/tuple.cc.o"
  "CMakeFiles/dfdb_storage.dir/tuple.cc.o.d"
  "libdfdb_storage.a"
  "libdfdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

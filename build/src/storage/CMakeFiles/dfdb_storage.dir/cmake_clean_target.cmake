file(REMOVE_RECURSE
  "libdfdb_storage.a"
)

# Empty dependencies file for dfdb_storage.
# This may be replaced when dependencies are built.

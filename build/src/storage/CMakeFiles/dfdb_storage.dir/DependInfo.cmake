
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_manager.cc" "src/storage/CMakeFiles/dfdb_storage.dir/buffer_manager.cc.o" "gcc" "src/storage/CMakeFiles/dfdb_storage.dir/buffer_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/storage/CMakeFiles/dfdb_storage.dir/heap_file.cc.o" "gcc" "src/storage/CMakeFiles/dfdb_storage.dir/heap_file.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/dfdb_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/dfdb_storage.dir/page.cc.o.d"
  "/root/repo/src/storage/page_store.cc" "src/storage/CMakeFiles/dfdb_storage.dir/page_store.cc.o" "gcc" "src/storage/CMakeFiles/dfdb_storage.dir/page_store.cc.o.d"
  "/root/repo/src/storage/page_table.cc" "src/storage/CMakeFiles/dfdb_storage.dir/page_table.cc.o" "gcc" "src/storage/CMakeFiles/dfdb_storage.dir/page_table.cc.o.d"
  "/root/repo/src/storage/storage_engine.cc" "src/storage/CMakeFiles/dfdb_storage.dir/storage_engine.cc.o" "gcc" "src/storage/CMakeFiles/dfdb_storage.dir/storage_engine.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/storage/CMakeFiles/dfdb_storage.dir/tuple.cc.o" "gcc" "src/storage/CMakeFiles/dfdb_storage.dir/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/dfdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

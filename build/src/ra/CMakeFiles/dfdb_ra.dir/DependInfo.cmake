
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ra/analyzer.cc" "src/ra/CMakeFiles/dfdb_ra.dir/analyzer.cc.o" "gcc" "src/ra/CMakeFiles/dfdb_ra.dir/analyzer.cc.o.d"
  "/root/repo/src/ra/expr.cc" "src/ra/CMakeFiles/dfdb_ra.dir/expr.cc.o" "gcc" "src/ra/CMakeFiles/dfdb_ra.dir/expr.cc.o.d"
  "/root/repo/src/ra/optimizer.cc" "src/ra/CMakeFiles/dfdb_ra.dir/optimizer.cc.o" "gcc" "src/ra/CMakeFiles/dfdb_ra.dir/optimizer.cc.o.d"
  "/root/repo/src/ra/parser.cc" "src/ra/CMakeFiles/dfdb_ra.dir/parser.cc.o" "gcc" "src/ra/CMakeFiles/dfdb_ra.dir/parser.cc.o.d"
  "/root/repo/src/ra/plan.cc" "src/ra/CMakeFiles/dfdb_ra.dir/plan.cc.o" "gcc" "src/ra/CMakeFiles/dfdb_ra.dir/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/dfdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dfdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdfdb_ra.a"
)

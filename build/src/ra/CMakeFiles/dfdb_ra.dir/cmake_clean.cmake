file(REMOVE_RECURSE
  "CMakeFiles/dfdb_ra.dir/analyzer.cc.o"
  "CMakeFiles/dfdb_ra.dir/analyzer.cc.o.d"
  "CMakeFiles/dfdb_ra.dir/expr.cc.o"
  "CMakeFiles/dfdb_ra.dir/expr.cc.o.d"
  "CMakeFiles/dfdb_ra.dir/optimizer.cc.o"
  "CMakeFiles/dfdb_ra.dir/optimizer.cc.o.d"
  "CMakeFiles/dfdb_ra.dir/parser.cc.o"
  "CMakeFiles/dfdb_ra.dir/parser.cc.o.d"
  "CMakeFiles/dfdb_ra.dir/plan.cc.o"
  "CMakeFiles/dfdb_ra.dir/plan.cc.o.d"
  "libdfdb_ra.a"
  "libdfdb_ra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfdb_ra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

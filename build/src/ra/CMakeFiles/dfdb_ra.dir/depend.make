# Empty dependencies file for dfdb_ra.
# This may be replaced when dependencies are built.

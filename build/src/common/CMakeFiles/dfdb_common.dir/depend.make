# Empty dependencies file for dfdb_common.
# This may be replaced when dependencies are built.

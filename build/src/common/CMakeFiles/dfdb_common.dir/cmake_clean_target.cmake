file(REMOVE_RECURSE
  "libdfdb_common.a"
)

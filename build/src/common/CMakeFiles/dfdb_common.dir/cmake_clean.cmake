file(REMOVE_RECURSE
  "CMakeFiles/dfdb_common.dir/sim_time.cc.o"
  "CMakeFiles/dfdb_common.dir/sim_time.cc.o.d"
  "CMakeFiles/dfdb_common.dir/status.cc.o"
  "CMakeFiles/dfdb_common.dir/status.cc.o.d"
  "CMakeFiles/dfdb_common.dir/string_util.cc.o"
  "CMakeFiles/dfdb_common.dir/string_util.cc.o.d"
  "libdfdb_common.a"
  "libdfdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dfdb_operators.dir/aggregator.cc.o"
  "CMakeFiles/dfdb_operators.dir/aggregator.cc.o.d"
  "CMakeFiles/dfdb_operators.dir/kernels.cc.o"
  "CMakeFiles/dfdb_operators.dir/kernels.cc.o.d"
  "CMakeFiles/dfdb_operators.dir/sort_merge_join.cc.o"
  "CMakeFiles/dfdb_operators.dir/sort_merge_join.cc.o.d"
  "libdfdb_operators.a"
  "libdfdb_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfdb_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

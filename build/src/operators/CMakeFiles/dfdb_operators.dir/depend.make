# Empty dependencies file for dfdb_operators.
# This may be replaced when dependencies are built.

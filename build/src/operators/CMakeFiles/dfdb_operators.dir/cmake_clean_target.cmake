file(REMOVE_RECURSE
  "libdfdb_operators.a"
)

# Empty dependencies file for dfdb_machine.
# This may be replaced when dependencies are built.

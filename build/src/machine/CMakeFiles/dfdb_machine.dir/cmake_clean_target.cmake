file(REMOVE_RECURSE
  "libdfdb_machine.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dfdb_machine.dir/instruction.cc.o"
  "CMakeFiles/dfdb_machine.dir/instruction.cc.o.d"
  "CMakeFiles/dfdb_machine.dir/packet.cc.o"
  "CMakeFiles/dfdb_machine.dir/packet.cc.o.d"
  "CMakeFiles/dfdb_machine.dir/simulator.cc.o"
  "CMakeFiles/dfdb_machine.dir/simulator.cc.o.d"
  "libdfdb_machine.a"
  "libdfdb_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfdb_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/instruction.cc" "src/machine/CMakeFiles/dfdb_machine.dir/instruction.cc.o" "gcc" "src/machine/CMakeFiles/dfdb_machine.dir/instruction.cc.o.d"
  "/root/repo/src/machine/packet.cc" "src/machine/CMakeFiles/dfdb_machine.dir/packet.cc.o" "gcc" "src/machine/CMakeFiles/dfdb_machine.dir/packet.cc.o.d"
  "/root/repo/src/machine/simulator.cc" "src/machine/CMakeFiles/dfdb_machine.dir/simulator.cc.o" "gcc" "src/machine/CMakeFiles/dfdb_machine.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/dfdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/operators/CMakeFiles/dfdb_operators.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/dfdb_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dfdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dfdb_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

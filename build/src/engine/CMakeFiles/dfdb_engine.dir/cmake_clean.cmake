file(REMOVE_RECURSE
  "CMakeFiles/dfdb_engine.dir/concurrency.cc.o"
  "CMakeFiles/dfdb_engine.dir/concurrency.cc.o.d"
  "CMakeFiles/dfdb_engine.dir/edge.cc.o"
  "CMakeFiles/dfdb_engine.dir/edge.cc.o.d"
  "CMakeFiles/dfdb_engine.dir/executor.cc.o"
  "CMakeFiles/dfdb_engine.dir/executor.cc.o.d"
  "CMakeFiles/dfdb_engine.dir/reference.cc.o"
  "CMakeFiles/dfdb_engine.dir/reference.cc.o.d"
  "libdfdb_engine.a"
  "libdfdb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfdb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

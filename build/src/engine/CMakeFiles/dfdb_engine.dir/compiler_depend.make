# Empty compiler generated dependencies file for dfdb_engine.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdfdb_engine.a"
)

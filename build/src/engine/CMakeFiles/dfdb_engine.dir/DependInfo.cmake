
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/concurrency.cc" "src/engine/CMakeFiles/dfdb_engine.dir/concurrency.cc.o" "gcc" "src/engine/CMakeFiles/dfdb_engine.dir/concurrency.cc.o.d"
  "/root/repo/src/engine/edge.cc" "src/engine/CMakeFiles/dfdb_engine.dir/edge.cc.o" "gcc" "src/engine/CMakeFiles/dfdb_engine.dir/edge.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/dfdb_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/dfdb_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/reference.cc" "src/engine/CMakeFiles/dfdb_engine.dir/reference.cc.o" "gcc" "src/engine/CMakeFiles/dfdb_engine.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/operators/CMakeFiles/dfdb_operators.dir/DependInfo.cmake"
  "/root/repo/build/src/ra/CMakeFiles/dfdb_ra.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dfdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/dfdb_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

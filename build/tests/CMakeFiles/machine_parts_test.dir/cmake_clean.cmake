file(REMOVE_RECURSE
  "CMakeFiles/machine_parts_test.dir/machine_parts_test.cc.o"
  "CMakeFiles/machine_parts_test.dir/machine_parts_test.cc.o.d"
  "machine_parts_test"
  "machine_parts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_parts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Runs a seeded bench with --json and validates the emitted report against
# tools/report_schema.json. Driven by the `report_schema_check` ctest entry.
if(NOT DEFINED BENCH OR NOT DEFINED CHECKER OR NOT DEFINED SCHEMA
   OR NOT DEFINED OUT)
  message(FATAL_ERROR
      "run_schema_check.cmake needs BENCH, CHECKER, SCHEMA, and OUT")
endif()

execute_process(
  COMMAND ${BENCH} --n=60 --json=${OUT}
  RESULT_VARIABLE bench_result
  OUTPUT_QUIET)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "bench run failed (${BENCH})")
endif()

execute_process(
  COMMAND ${CHECKER} --schema=${SCHEMA} --input=${OUT}
  RESULT_VARIABLE check_result)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "report does not conform to ${SCHEMA}")
endif()

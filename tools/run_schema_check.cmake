# Runs a seeded bench with --json and validates the emitted report against
# tools/report_schema.json. Driven by the `report_schema_check*` ctest
# entries. BENCH_ARGS is an optional semicolon-separated list of extra
# bench flags (each entry passed as its own argument). REQUIRE_SUBSTRING is
# an optional semicolon-separated list of strings that must appear verbatim
# in the emitted JSON (e.g. specific counter names), for contracts the
# generic schema cannot express.
if(NOT DEFINED BENCH OR NOT DEFINED CHECKER OR NOT DEFINED SCHEMA
   OR NOT DEFINED OUT)
  message(FATAL_ERROR
      "run_schema_check.cmake needs BENCH, CHECKER, SCHEMA, and OUT")
endif()
if(NOT DEFINED BENCH_ARGS)
  set(BENCH_ARGS "")
endif()

execute_process(
  COMMAND ${BENCH} ${BENCH_ARGS} --json=${OUT}
  RESULT_VARIABLE bench_result
  OUTPUT_QUIET)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "bench run failed (${BENCH})")
endif()

execute_process(
  COMMAND ${CHECKER} --schema=${SCHEMA} --input=${OUT}
  RESULT_VARIABLE check_result)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "report does not conform to ${SCHEMA}")
endif()

if(DEFINED REQUIRE_SUBSTRING)
  file(READ ${OUT} report_contents)
  foreach(needle IN LISTS REQUIRE_SUBSTRING)
    string(FIND "${report_contents}" "${needle}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR "report ${OUT} is missing \"${needle}\"")
    endif()
  endforeach()
endif()

# Runs the gated benches in smoke mode and diffs their headline metrics
# against results/baselines.json with tools/compare_report.py. Driven by
# the `bench_regression_gate` ctest entry.
#
# BENCHES is a semicolon-separated list of `binary@arg,arg,...` entries
# (commas separate per-bench args so the outer cmake list stays intact);
# each bench writes ${OUT_DIR}/<name>.json which is handed to the
# comparator. Baselines were recorded with these exact arguments — keep
# them in sync or re-record with compare_report.py --update.
if(NOT DEFINED BENCHES OR NOT DEFINED PYTHON OR NOT DEFINED COMPARE
   OR NOT DEFINED BASELINES OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR
      "run_regression_gate.cmake needs BENCHES, PYTHON, COMPARE, "
      "BASELINES, and OUT_DIR")
endif()

file(MAKE_DIRECTORY ${OUT_DIR})
set(reports "")
foreach(entry IN LISTS BENCHES)
  string(REPLACE "@" ";" parts "${entry}")
  list(GET parts 0 bench)
  set(bench_args "")
  list(LENGTH parts nparts)
  if(nparts GREATER 1)
    list(GET parts 1 packed)
    string(REPLACE "," ";" bench_args "${packed}")
  endif()
  get_filename_component(name ${bench} NAME_WE)
  set(out ${OUT_DIR}/${name}.json)
  execute_process(
    COMMAND ${bench} ${bench_args} --json=${out}
    RESULT_VARIABLE bench_result
    OUTPUT_QUIET)
  if(NOT bench_result EQUAL 0)
    message(FATAL_ERROR "bench run failed (${bench})")
  endif()
  list(APPEND reports ${out})
endforeach()

execute_process(
  COMMAND ${PYTHON} ${COMPARE} --baselines ${BASELINES} ${reports}
  RESULT_VARIABLE compare_result)
if(NOT compare_result EQUAL 0)
  message(FATAL_ERROR "bench metrics regressed against ${BASELINES}")
endif()

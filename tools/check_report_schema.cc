/// \file check_report_schema.cc
/// \brief Validates a bench JSON report against a (subset) JSON Schema.
///
/// Usage: check_report_schema --schema=tools/report_schema.json
///                            --input=results/bench_sec33_bandwidth.json
///
/// Supports the schema subset the report contract needs: "type" (object,
/// array, string, number, integer, boolean), "required", "properties",
/// "items", "minItems", and "const". Unknown keywords are ignored, matching
/// JSON Schema's permissive spirit. Exit code 0 = valid; 1 = parse or
/// validation failure, with the offending JSON path on stderr.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  bool is_integer = false;  ///< Number was written without '.', 'e', 'E'.
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it != object.end() ? &it->second : nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    if (!ParseValue(out)) {
      *error = error_.empty() ? "malformed JSON" : error_;
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      *error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  bool ParseKeyword(JsonValue* out) {
    auto match = [&](const char* kw) {
      const size_t n = std::strlen(kw);
      if (text_.compare(pos_, n, kw) == 0) {
        pos_ += n;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return Fail("unknown keyword");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    out->type = JsonValue::Type::kNumber;
    out->is_integer = token.find_first_of(".eE") == std::string::npos;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            // Validation only needs byte fidelity for ASCII; encode the
            // rest as UTF-8 without surrogate-pair handling.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Schema-subset validation
// ---------------------------------------------------------------------------

bool TypeMatches(const JsonValue& value, const std::string& type) {
  using T = JsonValue::Type;
  if (type == "object") return value.type == T::kObject;
  if (type == "array") return value.type == T::kArray;
  if (type == "string") return value.type == T::kString;
  if (type == "boolean") return value.type == T::kBool;
  if (type == "null") return value.type == T::kNull;
  if (type == "number") return value.type == T::kNumber;
  if (type == "integer") {
    return value.type == T::kNumber &&
           (value.is_integer || std::floor(value.number) == value.number);
  }
  return false;  // Unknown type name: treat as mismatch, it is a schema bug.
}

const char* TypeName(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "boolean";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

bool Validate(const JsonValue& value, const JsonValue& schema,
              const std::string& path, std::string* error) {
  if (schema.type != JsonValue::Type::kObject) {
    *error = path + ": schema node is not an object";
    return false;
  }
  if (const JsonValue* type = schema.Find("type")) {
    if (type->type != JsonValue::Type::kString ||
        !TypeMatches(value, type->string)) {
      *error = path + ": expected type " +
               (type->type == JsonValue::Type::kString ? type->string : "?") +
               ", got " + TypeName(value.type);
      return false;
    }
  }
  if (const JsonValue* expect = schema.Find("const")) {
    const bool same =
        expect->type == value.type &&
        (expect->type != JsonValue::Type::kString ||
         expect->string == value.string) &&
        (expect->type != JsonValue::Type::kNumber ||
         expect->number == value.number) &&
        (expect->type != JsonValue::Type::kBool ||
         expect->boolean == value.boolean);
    if (!same) {
      *error = path + ": value does not match schema const";
      return false;
    }
  }
  if (const JsonValue* required = schema.Find("required")) {
    for (const JsonValue& key : required->array) {
      if (value.Find(key.string) == nullptr) {
        *error = path + ": missing required key \"" + key.string + "\"";
        return false;
      }
    }
  }
  if (const JsonValue* properties = schema.Find("properties")) {
    for (const auto& [key, subschema] : properties->object) {
      if (const JsonValue* child = value.Find(key)) {
        if (!Validate(*child, subschema, path + "." + key, error)) return false;
      }
    }
  }
  if (const JsonValue* min_items = schema.Find("minItems")) {
    if (value.type == JsonValue::Type::kArray &&
        value.array.size() < static_cast<size_t>(min_items->number)) {
      *error = path + ": fewer than " +
               std::to_string(static_cast<size_t>(min_items->number)) +
               " items";
      return false;
    }
  }
  if (const JsonValue* items = schema.Find("items")) {
    for (size_t i = 0; i < value.array.size(); ++i) {
      if (!Validate(value.array[i], *items,
                    path + "[" + std::to_string(i) + "]", error)) {
        return false;
      }
    }
  }
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->append(buffer, n);
  }
  std::fclose(f);
  return true;
}

std::string Flag(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::string();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string schema_path = Flag(argc, argv, "schema");
  const std::string input_path = Flag(argc, argv, "input");
  if (schema_path.empty() || input_path.empty()) {
    std::fprintf(stderr,
                 "usage: check_report_schema --schema=FILE --input=FILE\n");
    return 1;
  }
  std::string schema_text, input_text;
  if (!ReadFile(schema_path, &schema_text)) {
    std::fprintf(stderr, "cannot read schema %s\n", schema_path.c_str());
    return 1;
  }
  if (!ReadFile(input_path, &input_text)) {
    std::fprintf(stderr, "cannot read input %s\n", input_path.c_str());
    return 1;
  }
  JsonValue schema, input;
  std::string error;
  if (!Parser(schema_text).Parse(&schema, &error)) {
    std::fprintf(stderr, "schema parse error: %s\n", error.c_str());
    return 1;
  }
  if (!Parser(input_text).Parse(&input, &error)) {
    std::fprintf(stderr, "input parse error: %s\n", error.c_str());
    return 1;
  }
  if (!Validate(input, schema, "$", &error)) {
    std::fprintf(stderr, "schema violation: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s conforms to %s\n", input_path.c_str(), schema_path.c_str());
  return 0;
}

/// \file dfdb_server.cc
/// \brief The back-end machine as a process: a TCP server over one
/// StorageEngine + resident Scheduler.
///
/// Loads the paper's 15-relation database at --scale, then serves RAQL
/// queries on --host:--port until SIGTERM/SIGINT, at which point it drains
/// gracefully (answers in-flight queries, flushes sockets, shuts the
/// scheduler down), prints the final net.*/engine.* counter registry, and
/// exits 0.
///
///   dfdb_server --port=7437 --scale=0.25 --procs=8 --max-inflight=64

#include <csignal>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "net/server.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace dfdb;

  net::ServerOptions options;
  options.host = bench::FlagString(argc, argv, "host", "127.0.0.1");
  options.port = static_cast<uint16_t>(bench::FlagInt(argc, argv, "port", 7437));
  options.max_inflight = bench::FlagInt(argc, argv, "max-inflight", 64);
  options.max_connections = bench::FlagInt(argc, argv, "max-connections", 256);
  options.default_deadline_ms = static_cast<uint32_t>(
      bench::FlagInt(argc, argv, "deadline-ms", 0));
  options.scheduler.exec.granularity = Granularity::kPage;
  options.scheduler.exec.num_processors =
      bench::FlagInt(argc, argv, "procs", 8);
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.25);
  const int partition = bench::FlagInt(argc, argv, "partition", 0);
  const int partitions = bench::FlagInt(argc, argv, "partitions", 1);

  StorageEngine storage(/*default_page_bytes=*/16384);
  if (partitions > 1) {
    // Worker mode: load only this process's hash slice of the database
    // (tools/dfdb_cluster starts one such server per worker).
    auto bytes = BuildPartitionedPaperDatabase(&storage, partition, partitions,
                                               scale);
    if (!bytes.ok()) {
      std::fprintf(stderr, "dfdb_server: %s\n",
                   bytes.status().ToString().c_str());
      return 1;
    }
    std::printf("# database: partition %d/%d, %.2f MB (scale %.2f)\n",
                partition, partitions, static_cast<double>(*bytes) / 1e6,
                scale);
  } else {
    bench::BuildDatabaseOrDie(&storage, scale);
  }

  net::Server server(&storage, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "dfdb_server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("# dfdb_server listening on %s:%u (max-inflight=%d, procs=%d)\n",
              options.host.c_str(), server.port(), options.max_inflight,
              options.scheduler.exec.num_processors);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("# dfdb_server draining...\n");
  server.Stop();

  obs::MetricsRegistry registry;
  server.SnapshotMetrics(&registry);
  std::printf("%s", registry.ToString().c_str());
  std::printf("# dfdb_server drained cleanly\n");
  return 0;
}

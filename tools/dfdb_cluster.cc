/// \file dfdb_cluster.cc
/// \brief One-command scale-out cluster: forks N partitioned dfdb_server
/// workers, then serves ordinary DFW1 clients through an in-process
/// coordinator + front server.
///
/// Workers listen on --port+1 .. --port+N and each load their hash slice
/// of the paper database (--partition=i --partitions=N); the front door on
/// --port speaks the same protocol a single dfdb_server does, so
/// dfdb_client and the REPL work against a cluster unchanged. SIGTERM or
/// SIGINT drains: the front server stops, workers get SIGTERM and are
/// reaped, and the final dist.* counter registry is printed.
///
///   dfdb_cluster --port=7447 --workers=3 --scale=0.25 --procs=4

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "bench/bench_util.h"
#include "dist/coordinator.h"
#include "dist/front_server.h"
#include "net/client.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

/// Directory holding this binary, so dfdb_server is found next to it
/// regardless of the caller's working directory.
std::string SelfDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  char* slash = std::strrchr(buf, '/');
  if (slash == nullptr) return ".";
  *slash = '\0';
  return buf;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace dfdb;

  const std::string host = bench::FlagString(argc, argv, "host", "127.0.0.1");
  const uint16_t port =
      static_cast<uint16_t>(bench::FlagInt(argc, argv, "port", 7447));
  const int workers = bench::FlagInt(argc, argv, "workers", 3);
  const double scale = bench::FlagDouble(argc, argv, "scale", 0.25);
  const int procs = bench::FlagInt(argc, argv, "procs", 4);
  const std::string default_server_bin = SelfDir() + "/dfdb_server";
  const std::string server_bin = bench::FlagString(
      argc, argv, "server-bin", default_server_bin.c_str());
  if (workers < 1 || workers > 64) {
    std::fprintf(stderr, "dfdb_cluster: --workers must be in [1, 64]\n");
    return 1;
  }

  // Fork one partitioned worker per slot.
  std::vector<pid_t> pids;
  for (int w = 0; w < workers; ++w) {
    std::vector<std::string> args = {
        server_bin,
        StrFormat("--host=%s", host.c_str()),
        StrFormat("--port=%u", static_cast<unsigned>(port + 1 + w)),
        StrFormat("--scale=%.4f", scale),
        StrFormat("--procs=%d", procs),
        StrFormat("--partition=%d", w),
        StrFormat("--partitions=%d", workers),
    };
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "dfdb_cluster: fork failed\n");
      return 1;
    }
    if (pid == 0) {
      std::vector<char*> cargs;
      for (std::string& a : args) cargs.push_back(a.data());
      cargs.push_back(nullptr);
      ::execv(cargs[0], cargs.data());
      std::fprintf(stderr, "dfdb_cluster: cannot exec %s\n", cargs[0]);
      _exit(127);
    }
    pids.push_back(pid);
  }
  auto reap_workers = [&] {
    for (pid_t pid : pids) ::kill(pid, SIGTERM);
    bool clean = true;
    for (pid_t pid : pids) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      clean = clean && WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }
    return clean;
  };

  // Wait until every worker answers a ping (they load their slice first).
  dist::CoordinatorOptions options;
  options.partition_column = std::string(kPartitionColumn);
  for (int w = 0; w < workers; ++w) {
    options.workers.push_back(
        dist::WorkerAddress{host, static_cast<uint16_t>(port + 1 + w)});
  }
  for (int w = 0; w < workers; ++w) {
    bool up = false;
    for (int attempt = 0; attempt < 200 && g_stop == 0; ++attempt) {
      auto probe = net::Client::Connect(host, options.workers[w].port);
      if (probe.ok() && probe->Ping().ok()) {
        up = true;
        probe->Close();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!up) {
      std::fprintf(stderr, "dfdb_cluster: worker %d did not come up\n", w);
      reap_workers();
      return 1;
    }
  }

  Catalog catalog;
  Status cat = BuildPaperCatalog(&catalog, scale);
  if (!cat.ok()) {
    std::fprintf(stderr, "dfdb_cluster: %s\n", cat.ToString().c_str());
    reap_workers();
    return 1;
  }
  dist::Coordinator coordinator(&catalog, std::move(options));
  Status connected = coordinator.Connect();
  if (!connected.ok()) {
    std::fprintf(stderr, "dfdb_cluster: %s\n", connected.ToString().c_str());
    reap_workers();
    return 1;
  }

  dist::FrontServerOptions front_options;
  front_options.host = host;
  front_options.port = port;
  dist::FrontServer front(&coordinator, front_options);
  Status started = front.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "dfdb_cluster: %s\n", started.ToString().c_str());
    reap_workers();
    return 1;
  }
  std::printf("# dfdb_cluster serving on %s:%u (%d workers on ports %u-%u)\n",
              host.c_str(), front.port(), workers,
              static_cast<unsigned>(port + 1),
              static_cast<unsigned>(port + workers));
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("# dfdb_cluster draining...\n");
  front.Stop();
  const bool workers_clean = reap_workers();

  obs::MetricsRegistry registry;
  coordinator.SnapshotMetrics(&registry);
  std::printf("%s", registry.ToString().c_str());
  if (!workers_clean) {
    std::printf("# dfdb_cluster drained with worker errors\n");
    return 1;
  }
  std::printf("# dfdb_cluster drained cleanly\n");
  return 0;
}

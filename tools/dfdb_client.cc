/// \file dfdb_client.cc
/// \brief Command-line client for dfdb_server: runs RAQL queries remotely.
///
/// Queries come from the remaining command-line arguments (each non-flag
/// argument is one query), or from stdin, one query per line, when no
/// query arguments are given. Exits non-zero if any query fails.
///
///   dfdb_client --port=7437 'restrict(r01, k1000 < 100)'
///   printf 'project(r05, [k100], dedup)\n' | dfdb_client --port=7437

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/client.h"

namespace {

void PrintResult(const dfdb::net::RemoteResult& result, bool quiet) {
  using dfdb::TupleView;
  if (!quiet) {
    for (int c = 0; c < result.schema.num_columns(); ++c) {
      std::printf("%s%s", c ? " | " : "",
                  result.schema.column(c).name.c_str());
    }
    std::printf("\n");
    uint64_t shown = 0;
    result.ForEachTuple([&](const TupleView& t) {
      if (shown < 20) std::printf("%s\n", t.ToString().c_str());
      ++shown;
    });
    if (shown > 20) {
      std::printf("... (%llu rows total)\n",
                  static_cast<unsigned long long>(shown));
    }
  }
  std::printf("(%llu rows, %.3f ms server, %d retries)\n",
              static_cast<unsigned long long>(result.num_tuples),
              result.server_seconds * 1e3, result.retries);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfdb;

  const std::string host = bench::FlagString(argc, argv, "host", "127.0.0.1");
  const uint16_t port =
      static_cast<uint16_t>(bench::FlagInt(argc, argv, "port", 7437));
  const uint32_t deadline_ms =
      static_cast<uint32_t>(bench::FlagInt(argc, argv, "deadline-ms", 0));
  bool quiet = false;
  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strncmp(argv[i], "--", 2) != 0) {
      queries.emplace_back(argv[i]);
    }
  }
  if (queries.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) queries.push_back(line);
    }
  }
  if (queries.empty()) {
    std::fprintf(stderr, "dfdb_client: no queries given\n");
    return 2;
  }

  auto client = net::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "dfdb_client: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  int failures = 0;
  for (const std::string& query : queries) {
    if (!quiet) std::printf("dfdb> %s\n", query.c_str());
    auto result = client->Execute(query, deadline_ms);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      ++failures;
      if (!client->connected()) break;  // Connection lost; stop the batch.
      continue;
    }
    PrintResult(*result, quiet);
  }
  return failures == 0 ? 0 : 1;
}

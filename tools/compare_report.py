#!/usr/bin/env python3
"""Bench-report regression gate: diff RunReport JSON against baselines.

Reads one or more bench report documents (the ``results/<bench>.json``
files every bench writes) and compares selected metrics against a
committed baselines file. A metric is addressed as

    <bench>:<gauge-name>                  -- runs[].gauges entry
    <bench>:table.<tag>.<row>.<column>    -- table cell; <row> is the
                                             first cell of the row

Baselines file::

    {
      "default_tolerance": 0.2,
      "metrics": {
        "bench_operators:kernel.join.eq_id.speedup_x":
            {"value": 12.0, "direction": "min", "tolerance": 0.5},
        ...
      }
    }

``direction`` is ``min`` (higher is better: fail only when the actual
value drops below ``baseline * (1 - tolerance)``) or ``both`` (fail when
outside ``baseline * (1 +/- tolerance)``). A metric listed in the
baselines but absent from the reports fails the gate — silent contract
drift is exactly what this tool exists to catch.

    compare_report.py --baselines results/baselines.json report.json...
    compare_report.py --baselines results/baselines.json --update report.json...

``--update`` rewrites the baselines file from the observed values,
keeping each metric's direction and tolerance.
"""

import argparse
import json
import sys


def load_reports(paths):
    """Returns {bench_name: report_dict}; duplicate bench names are an
    error (ambiguous source of truth)."""
    reports = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        bench = doc.get("bench")
        if not bench:
            raise SystemExit(f"{path}: missing 'bench' field")
        if bench in reports:
            raise SystemExit(f"{path}: duplicate report for bench {bench}")
        reports[bench] = doc
    return reports


def lookup(reports, key):
    """Resolves a metric key to a float, or None if absent."""
    if ":" not in key:
        return None
    bench, metric = key.split(":", 1)
    doc = reports.get(bench)
    if doc is None:
        return None
    if metric.startswith("table."):
        parts = metric.split(".", 3)  # table, tag, row, column
        if len(parts) != 4:
            return None
        _, tag, row_key, column = parts
        for table in doc.get("tables", []):
            if table.get("tag") != tag:
                continue
            headers = table.get("headers", [])
            if column not in headers:
                return None
            col = headers.index(column)
            for row in table.get("rows", []):
                if row and row[0] == row_key and col < len(row):
                    try:
                        return float(row[col])
                    except ValueError:
                        return None
        return None
    for run in doc.get("runs", []):
        gauges = run.get("gauges") or {}
        if metric in gauges:
            try:
                return float(gauges[metric])
            except (TypeError, ValueError):
                return None
    return None


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", required=True)
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from observed values")
    parser.add_argument("reports", nargs="+")
    args = parser.parse_args(argv)

    with open(args.baselines) as f:
        baselines = json.load(f)
    default_tol = float(baselines.get("default_tolerance", 0.2))
    metrics = baselines.get("metrics", {})
    reports = load_reports(args.reports)

    if args.update:
        missing = []
        for key, spec in sorted(metrics.items()):
            actual = lookup(reports, key)
            if actual is None:
                missing.append(key)
            else:
                spec["value"] = round(actual, 6)
        if missing:
            for key in missing:
                print(f"UPDATE-MISSING {key}", file=sys.stderr)
            return 1
        with open(args.baselines, "w") as f:
            json.dump(baselines, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"updated {len(metrics)} baselines in {args.baselines}")
        return 0

    failures = 0
    for key, spec in sorted(metrics.items()):
        baseline = float(spec["value"])
        tol = float(spec.get("tolerance", default_tol))
        direction = spec.get("direction", "both")
        actual = lookup(reports, key)
        if actual is None:
            print(f"FAIL {key}: metric missing from reports "
                  f"(baseline {baseline:g})")
            failures += 1
            continue
        low = baseline * (1.0 - tol)
        high = baseline * (1.0 + tol)
        if direction == "min":
            ok = actual >= low
            bound = f">= {low:g}"
        else:
            ok = low <= actual <= high
            bound = f"in [{low:g}, {high:g}]"
        delta = (actual / baseline - 1.0) * 100.0 if baseline else 0.0
        verdict = "ok  " if ok else "FAIL"
        print(f"{verdict} {key}: {actual:g} vs baseline {baseline:g} "
              f"({delta:+.1f}%, want {bound})")
        if not ok:
            failures += 1

    if failures:
        print(f"{failures} metric(s) outside tolerance", file=sys.stderr)
        return 1
    print(f"all {len(metrics)} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

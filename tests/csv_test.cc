/// \file csv_test.cc
/// \brief Tests for CSV import/export.

#include "workload/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "engine/reference.h"
#include "ra/parser.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

Schema PeopleSchema() {
  return Schema::CreateOrDie({Column::Int32("id"), Column::Char("name", 16),
                              Column::Double("score")});
}

TEST(CsvTest, ImportWithSchema) {
  StorageEngine storage(256);
  std::istringstream in(
      "id,name,score\n"
      "1,alice,3.5\n"
      "2,bob,-1.25\n"
      "3,\"c, quoted\",0\n");
  ASSERT_OK_AND_ASSIGN(uint64_t rows,
                       ImportCsv(&storage, "people", PeopleSchema(), in));
  EXPECT_EQ(rows, 3u);
  ASSERT_OK_AND_ASSIGN(RelationMeta meta,
                       storage.catalog().GetRelation("people"));
  EXPECT_EQ(meta.tuple_count, 3u);

  // Read back and check a quoted field survived.
  ReferenceExecutor reference(&storage);
  ASSERT_OK_AND_ASSIGN(auto plan, ParseQuery("restrict(people, id = 3)"));
  ASSERT_OK_AND_ASSIGN(QueryResult result, reference.Execute(*plan));
  ASSERT_EQ(result.num_tuples(), 1u);
  ASSERT_OK_AND_ASSIGN(auto row_values, result.ToRows());
  EXPECT_EQ(row_values[0][1].as_char(), "c, quoted");
}

TEST(CsvTest, ImportIsAtomicOnError) {
  StorageEngine storage(256);
  std::istringstream in(
      "id,name,score\n"
      "1,alice,3.5\n"
      "oops,bob,1\n");
  auto result = ImportCsv(&storage, "people", PeopleSchema(), in);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
  // Nothing left behind.
  EXPECT_FALSE(storage.catalog().Exists("people"));
}

TEST(CsvTest, ImportRejectsBadShapes) {
  StorageEngine storage(256);
  {
    std::istringstream in("id,name,score\n1,alice\n");
    EXPECT_FALSE(ImportCsv(&storage, "p1", PeopleSchema(), in).ok());
  }
  {
    std::istringstream in("id,name,score\n1,\"broken,2.0\n");
    EXPECT_FALSE(ImportCsv(&storage, "p2", PeopleSchema(), in).ok());
  }
  {
    std::istringstream in(
        "id,name,score\n1,this_name_is_way_too_long_for_char16,1\n");
    EXPECT_FALSE(ImportCsv(&storage, "p3", PeopleSchema(), in).ok());
  }
}

TEST(CsvTest, InferredSchemaTypes) {
  StorageEngine storage(256);
  std::istringstream in(
      "a,b,c\n"
      "10,2.5,hello\n"
      "-3,0.1,world\n");
  ASSERT_OK_AND_ASSIGN(uint64_t rows, ImportCsvInferred(&storage, "t", in));
  EXPECT_EQ(rows, 2u);
  ASSERT_OK_AND_ASSIGN(RelationMeta meta, storage.catalog().GetRelation("t"));
  EXPECT_EQ(meta.schema.column(0).type, ColumnType::kInt64);
  EXPECT_EQ(meta.schema.column(1).type, ColumnType::kDouble);
  EXPECT_EQ(meta.schema.column(2).type, ColumnType::kChar);
}

TEST(CsvTest, InferredRequiresHeaderAndData) {
  StorageEngine storage(256);
  std::istringstream empty("");
  EXPECT_FALSE(ImportCsvInferred(&storage, "x", empty).ok());
  std::istringstream only_header("a,b\n");
  EXPECT_FALSE(ImportCsvInferred(&storage, "y", only_header).ok());
}

TEST(CsvTest, ExportRoundTrip) {
  StorageEngine storage(256);
  std::istringstream in(
      "id,name,score\n"
      "1,alice,3.5\n"
      "2,\"has \"\"quotes\"\"\",2\n");
  ASSERT_OK_AND_ASSIGN(uint64_t rows,
                       ImportCsv(&storage, "people", PeopleSchema(), in));
  EXPECT_EQ(rows, 2u);
  std::ostringstream out;
  ASSERT_OK_AND_ASSIGN(uint64_t exported,
                       ExportCsv(&storage, "people", out));
  EXPECT_EQ(exported, 2u);

  // Import the export into a second engine; contents must match.
  StorageEngine storage2(256);
  std::istringstream back(out.str());
  ASSERT_OK_AND_ASSIGN(uint64_t rows2,
                       ImportCsv(&storage2, "people", PeopleSchema(), back));
  EXPECT_EQ(rows2, 2u);
  ReferenceExecutor r1(&storage), r2(&storage2);
  ASSERT_OK_AND_ASSIGN(auto plan, ParseQuery("people"));
  ASSERT_OK_AND_ASSIGN(QueryResult a, r1.Execute(*plan));
  ASSERT_OK_AND_ASSIGN(QueryResult b, r2.Execute(*plan));
  testing::ExpectSameResult(a, b);
}

TEST(CsvTest, ExportQueryResult) {
  StorageEngine storage(1000);
  ASSERT_OK_AND_ASSIGN(auto rel, GenerateRelation(&storage, "r", 50, 1));
  (void)rel;
  ReferenceExecutor reference(&storage);
  ASSERT_OK_AND_ASSIGN(auto plan,
                       ParseQuery("agg(r, [k10], [count() as n])"));
  ASSERT_OK_AND_ASSIGN(QueryResult result, reference.Execute(*plan));
  std::ostringstream out;
  ASSERT_OK_AND_ASSIGN(uint64_t rows, ExportResultCsv(result, out));
  EXPECT_EQ(rows, result.num_tuples());
  // Header uses the aggregate output names.
  EXPECT_EQ(out.str().substr(0, 6), "k10,n\n");
}

}  // namespace
}  // namespace dfdb

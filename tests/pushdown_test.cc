/// \file pushdown_test.cc
/// \brief Near-data predicate pushdown: optimizer marking, the filtered
/// buffer read path, and the pushdown differential — pushed-down restricts
/// must be byte-identical to the raw path on both backends, compose with
/// access-path pruning and MVCC snapshots, and survive fault storms.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/run.h"
#include "index/index_manager.h"
#include "machine/simulator.h"
#include "ra/optimizer.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;
using ::dfdb::testing::ResultMultiset;

// ---------------------------------------------------------------------------
// Optimizer marking
// ---------------------------------------------------------------------------

class PushdownPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(/*default_page_bytes=*/2000);
    ASSERT_OK_AND_ASSIGN(RelationId rel,
                         GenerateRelation(storage_.get(), "r", 5000, 11));
    (void)rel;
    ASSERT_OK(storage_->SyncAllStats());
    ASSERT_OK(storage_->CommitRelation("r"));
  }
  std::unique_ptr<StorageEngine> storage_;
};

TEST_F(PushdownPlanTest, MarksSelectiveRestrictScans) {
  Optimizer optimizer(&storage_->catalog());
  // 2% selectivity: well under the device breakeven.
  auto plan = MakeRestrict(MakeScan("r"), Lt(Col("k1000"), Lit(20)));
  OptimizerReport report;
  ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, &report));
  ASSERT_EQ(opt->child(0).op, PlanOp::kScan);
  EXPECT_TRUE(opt->child(0).pushdown);
  EXPECT_EQ(report.scans_pushdown, 1);
  EXPECT_EQ(report.pushdown_rejected, 0);
  // The mark is visible in EXPLAIN output.
  EXPECT_NE(opt->ToString().find("pushdown"), std::string::npos);
}

TEST_F(PushdownPlanTest, RejectsUnselectiveRestrict) {
  Optimizer optimizer(&storage_->catalog());
  // 90% selectivity: above kPushdownSelectivity — filtering at the device
  // would scan everything and still ship almost everything.
  auto plan = MakeRestrict(MakeScan("r"), Lt(Col("k1000"), Lit(900)));
  OptimizerReport report;
  ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, &report));
  EXPECT_FALSE(opt->child(0).pushdown);
  EXPECT_EQ(report.scans_pushdown, 0);
  EXPECT_EQ(report.pushdown_rejected, 1);
}

TEST_F(PushdownPlanTest, BareScanNeverMarked) {
  Optimizer optimizer(&storage_->catalog());
  auto plan = MakeScan("r");
  OptimizerReport report;
  ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, &report));
  EXPECT_FALSE(opt->pushdown);
  EXPECT_EQ(report.scans_pushdown, 0);
}

TEST_F(PushdownPlanTest, MarkSurvivesClone) {
  Optimizer optimizer(&storage_->catalog());
  auto plan = MakeRestrict(MakeScan("r"), Eq(Col("k100"), Lit(3)));
  ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));
  ASSERT_TRUE(opt->child(0).pushdown);
  PlanNodePtr copy = opt->Clone();
  EXPECT_TRUE(copy->child(0).pushdown);
}

TEST_F(PushdownPlanTest, ComposesWithAccessPathMarks) {
  // With a covering grid file the scan gets BOTH marks: pruning drops
  // whole pages, pushdown filters the residual pages' tuples.
  StorageEngine storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateSkewedRelation(&storage, "ev", 20000, 7));
  (void)rel;
  ASSERT_OK(storage.SyncAllStats());
  ASSERT_OK(storage.CommitRelation("ev"));
  ASSERT_OK(GetIndexManager(&storage)->CreateIndex("ev_u", "ev", {"user"}));
  Optimizer optimizer(&storage.catalog());
  auto plan = MakeRestrict(MakeScan("ev"), Eq(Col("user"), Lit(40)));
  OptimizerReport report;
  ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, &report));
  EXPECT_EQ(opt->child(0).access_path, ScanAccessPath::kGridFile);
  EXPECT_TRUE(opt->child(0).pushdown);
  EXPECT_EQ(report.scans_pushdown, 1);
}

// ---------------------------------------------------------------------------
// Engine counters: the filtered read path engages and is policy-gated
// ---------------------------------------------------------------------------

TEST_F(PushdownPlanTest, EngineCountersTrackFilteredReads) {
  Optimizer optimizer(&storage_->catalog());
  auto plan = MakeRestrict(MakeScan("r"), Lt(Col("k1000"), Lit(20)));
  ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));

  ExecOptions honor;
  honor.page_bytes = 2000;
  ASSERT_OK_AND_ASSIGN(QueryResult pushed,
                       RunQuery(storage_.get(), *opt, honor));
  const PushdownCounters& pc = pushed.stats().pushdown;
  EXPECT_GT(pc.pages_filtered, 0u);
  EXPECT_GT(pc.tuples_in, pc.tuples_out);
  EXPECT_GT(pc.bytes_elided, 0u);
  EXPECT_EQ(pc.fallbacks, 0u);
  EXPECT_EQ(pc.tuples_out, pushed.num_tuples());

  ExecOptions off = honor;
  off.pushdown = PushdownPolicy::kForceOff;
  ASSERT_OK_AND_ASSIGN(QueryResult raw, RunQuery(storage_.get(), *opt, off));
  EXPECT_EQ(raw.stats().pushdown.pages_filtered, 0u);
  EXPECT_EQ(raw.stats().pushdown.tuples_in, 0u);
  ExpectSameResult(raw, pushed);
  // The whole point: the restrict's operand traffic collapses.
  EXPECT_LT(pushed.stats().arbitration_bytes,
            raw.stats().arbitration_bytes / 5);
}

// ---------------------------------------------------------------------------
// Differential fuzz: policy x backend, mixed selectivities
// ---------------------------------------------------------------------------

class PushdownDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(/*default_page_bytes=*/2000);
    ASSERT_OK_AND_ASSIGN(RelationId rel,
                         GenerateRelation(storage_.get(), "r", 20000, 13));
    (void)rel;
    ASSERT_OK(storage_->SyncAllStats());
    ASSERT_OK(storage_->CommitRelation("r"));
  }

  // Seeded random restricts over the benchmark columns, spanning
  // selectivities on both sides of the pushdown breakeven, plus count-only
  // aggregate shapes.
  PlanNodePtr RandomQuery(Random* rng) {
    ExprPtr pred;
    switch (rng->Uniform(5)) {
      case 0:  // Narrow range (pushable).
        pred = Lt(Col("k1000"),
                  Lit(static_cast<int32_t>(1 + rng->Uniform(100))));
        break;
      case 1:  // Point restrict (pushable).
        pred = Eq(Col("k100"), Lit(static_cast<int32_t>(rng->Uniform(100))));
        break;
      case 2:  // Wide range (rejected: above breakeven).
        pred = Lt(Col("k1000"),
                  Lit(static_cast<int32_t>(800 + rng->Uniform(200))));
        break;
      case 3:  // Conjunction across columns.
        pred = And(Lt(Col("k1000"),
                      Lit(static_cast<int32_t>(1 + rng->Uniform(300)))),
                   Lt(Col("val"), Lit(rng->NextDouble())));
        break;
      default:  // Double comparison.
        pred = Lt(Col("val"), Lit(rng->NextDouble() * 0.2));
        break;
    }
    auto filtered = MakeRestrict(MakeScan("r"), std::move(pred));
    if (rng->Bernoulli(0.25)) {
      // Count-only scan: only the count leaves the query.
      return MakeAggregate(std::move(filtered), {},
                           {AggregateSpec{AggregateSpec::Func::kCount, "",
                                          "matches"}});
    }
    return filtered;
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_F(PushdownDifferentialTest, EngineHonorMatchesForceOffFuzz) {
  Optimizer optimizer(&storage_->catalog());
  Random rng(123);
  ExecOptions honor;
  honor.page_bytes = 2000;
  ExecOptions off = honor;
  off.pushdown = PushdownPolicy::kForceOff;

  uint64_t total_filtered = 0;
  for (int trial = 0; trial < 40; ++trial) {
    auto plan = RandomQuery(&rng);
    ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));
    ASSERT_OK_AND_ASSIGN(QueryResult pushed,
                         RunQuery(storage_.get(), *opt, honor));
    ASSERT_OK_AND_ASSIGN(QueryResult raw, RunQuery(storage_.get(), *opt, off));
    ExpectSameResult(raw, pushed);
    total_filtered += pushed.stats().pushdown.pages_filtered;
    EXPECT_EQ(raw.stats().pushdown.pages_filtered, 0u);
  }
  EXPECT_GT(total_filtered, 0u)
      << "no query ever pushed down — differential vacuous";
}

TEST_F(PushdownDifferentialTest, MachineMatchesEngineWithPageParity) {
  Optimizer optimizer(&storage_->catalog());
  Random rng(321);
  MachineOptions honor;
  MachineOptions off;
  off.pushdown = PushdownPolicy::kForceOff;
  ExecOptions engine_honor;
  engine_honor.page_bytes = 2000;

  uint64_t total_filtered = 0;
  for (int trial = 0; trial < 12; ++trial) {
    auto plan = RandomQuery(&rng);
    ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));
    MachineSimulator sim_honor(storage_.get(), honor);
    ASSERT_OK_AND_ASSIGN(MachineReport pushed, sim_honor.Run({opt.get()}));
    MachineSimulator sim_off(storage_.get(), off);
    ASSERT_OK_AND_ASSIGN(MachineReport raw, sim_off.Run({opt.get()}));
    ASSERT_EQ(pushed.results.size(), 1u);
    ASSERT_EQ(raw.results.size(), 1u);
    ExpectSameResult(raw.results[0], pushed.results[0]);
    EXPECT_EQ(raw.pushdown.pages_filtered, 0u);
    ASSERT_OK_AND_ASSIGN(QueryResult engine,
                         RunQuery(storage_.get(), *opt, engine_honor));
    ExpectSameResult(engine, pushed.results[0]);
    // Both backends must run the filter over the same raw-page set. The
    // engine may serve some pages straight from its local buffer level,
    // but pages_filtered counts filter executions, not residency.
    EXPECT_EQ(pushed.pushdown.pages_filtered,
              engine.stats().pushdown.pages_filtered)
        << "trial " << trial << ": backends filtered different page sets";
    total_filtered += pushed.pushdown.pages_filtered;
  }
  EXPECT_GT(total_filtered, 0u);
}

// ---------------------------------------------------------------------------
// Composition: access-path pruning + pushdown on the residual pages
// ---------------------------------------------------------------------------

TEST(PushdownIndexTest, ComposedPruningAndPushdownMatchRawPath) {
  StorageEngine storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateSkewedRelation(&storage, "ev", 30000, 7));
  (void)rel;
  ASSERT_OK(storage.SyncAllStats());
  ASSERT_OK(storage.CommitRelation("ev"));
  ASSERT_OK(GetIndexManager(&storage)
                ->CreateIndex("ev_ud", "ev", {"user", "device"}));
  Optimizer optimizer(&storage.catalog());
  Random rng(77);
  const uint64_t users = SkewedEventUserCount(30000);

  ExecOptions both;
  both.page_bytes = 2000;
  ExecOptions neither = both;
  neither.index = IndexPolicy::kForceFullScan;
  neither.pushdown = PushdownPolicy::kForceOff;
  ExecOptions prune_only = both;
  prune_only.pushdown = PushdownPolicy::kForceOff;
  ExecOptions push_only = both;
  push_only.index = IndexPolicy::kForceFullScan;

  uint64_t composed_filtered = 0, composed_pruned = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto plan = MakeRestrict(
        MakeScan("ev"),
        And(Eq(Col("user"), Lit(static_cast<int32_t>(rng.Uniform(users)))),
            Eq(Col("device"), Lit(static_cast<int32_t>(rng.Uniform(16))))));
    ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));
    ASSERT_OK_AND_ASSIGN(QueryResult r_both, RunQuery(&storage, *opt, both));
    ASSERT_OK_AND_ASSIGN(QueryResult r_neither,
                         RunQuery(&storage, *opt, neither));
    ASSERT_OK_AND_ASSIGN(QueryResult r_prune,
                         RunQuery(&storage, *opt, prune_only));
    ASSERT_OK_AND_ASSIGN(QueryResult r_push,
                         RunQuery(&storage, *opt, push_only));
    ExpectSameResult(r_neither, r_both);
    ExpectSameResult(r_neither, r_prune);
    ExpectSameResult(r_neither, r_push);
    // Composed run: pruning first, pushdown on the residual pages only.
    EXPECT_LE(r_both.stats().pushdown.pages_filtered,
              r_push.stats().pushdown.pages_filtered);
    composed_filtered += r_both.stats().pushdown.pages_filtered;
    composed_pruned += r_both.stats().index.pages_pruned;
  }
  EXPECT_GT(composed_filtered, 0u);
  EXPECT_GT(composed_pruned, 0u);
}

// ---------------------------------------------------------------------------
// MVCC: pushed-down reads see their snapshot, not the rewritten head
// ---------------------------------------------------------------------------

TEST(PushdownMvccTest, PushedReadsUnchangedAcrossDelete) {
  StorageEngine storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateRelation(&storage, "r", 20000, 3));
  (void)rel;
  ASSERT_OK(storage.SyncAllStats());
  ASSERT_OK(storage.CommitRelation("r"));
  Optimizer optimizer(&storage.catalog());
  auto plan = MakeRestrict(MakeScan("r"), Lt(Col("k1000"), Lit(50)));
  ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));
  ASSERT_TRUE(opt->child(0).pushdown);

  ExecOptions honor;
  honor.page_bytes = 2000;
  ExecOptions off = honor;
  off.pushdown = PushdownPolicy::kForceOff;

  ASSERT_OK_AND_ASSIGN(QueryResult before, RunQuery(&storage, *opt, honor));
  ASSERT_GT(before.num_tuples(), 0u);

  // CoW-delete half the matching tuples and commit a new version.
  {
    auto del = MakeDelete("r", Lt(Col("k1000"), Lit(25)));
    ASSERT_OK_AND_ASSIGN(PlanNodePtr del_opt, optimizer.Optimize(*del, nullptr));
    ASSERT_OK_AND_ASSIGN(QueryResult del_result,
                         RunQuery(&storage, *del_opt, honor));
    (void)del_result;
    ASSERT_OK(storage.CommitRelation("r"));
  }

  // Post-delete, pushed-down and raw reads agree with each other and both
  // see strictly fewer tuples than the pre-delete version.
  ASSERT_OK_AND_ASSIGN(QueryResult after_pushed,
                       RunQuery(&storage, *opt, honor));
  ASSERT_OK_AND_ASSIGN(QueryResult after_raw, RunQuery(&storage, *opt, off));
  ExpectSameResult(after_raw, after_pushed);
  EXPECT_LT(after_pushed.num_tuples(), before.num_tuples());
  EXPECT_GT(after_pushed.stats().pushdown.pages_filtered, 0u);

  // Same picture on the simulator (it stamps its own snapshot per query).
  MachineOptions mhonor;
  MachineSimulator sim(&storage, mhonor);
  ASSERT_OK_AND_ASSIGN(MachineReport mreport, sim.Run({opt.get()}));
  ASSERT_EQ(mreport.results.size(), 1u);
  ExpectSameResult(after_raw, mreport.results[0]);
}

// Concurrent pushed-down readers against a deleting/committing writer with
// snapshot GC churning page ids. Run under tsan via pushdown_test_tsan.
TEST(PushdownMvccTest, ConcurrentPushedReadsUnderGc) {
  StorageEngine storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateRelation(&storage, "r", 10000, 9));
  (void)rel;
  ASSERT_OK(storage.SyncAllStats());
  ASSERT_OK(storage.CommitRelation("r"));
  Optimizer optimizer(&storage.catalog());
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Random rng(2000 + t);
      ExecOptions honor;
      honor.page_bytes = 2000;
      honor.num_processors = 2;
      ExecOptions off = honor;
      off.pushdown = PushdownPolicy::kForceOff;
      while (!stop.load(std::memory_order_relaxed)) {
        auto plan = MakeRestrict(
            MakeScan("r"),
            Lt(Col("k1000"), Lit(static_cast<int32_t>(1 + rng.Uniform(100)))));
        auto opt = optimizer.Optimize(*plan, nullptr);
        if (!opt.ok()) { ++failures; break; }
        // Each run snapshots independently while the writer commits, so
        // only success (no torn reads under GC) is asserted here; result
        // equality is covered by the differential tests above.
        auto a = RunQuery(&storage, **opt, honor);
        auto b = RunQuery(&storage, **opt, off);
        if (!a.ok() || !b.ok()) { ++failures; break; }
      }
    });
  }
  std::thread writer([&] {
    Random rng(5);
    for (int round = 0; round < 8; ++round) {
      auto del = MakeDelete(
          "r", Eq(Col("k100"), Lit(static_cast<int32_t>(rng.Uniform(100)))));
      auto opt = optimizer.Optimize(*del, nullptr);
      if (!opt.ok()) { ++failures; break; }
      ExecOptions opts;
      opts.page_bytes = 2000;
      auto r = RunQuery(&storage, **opt, opts);
      if (!r.ok()) { ++failures; break; }
      if (!storage.CommitRelation("r").ok()) { ++failures; break; }
    }
    stop.store(true, std::memory_order_relaxed);
  });
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Fault storms: pushed-down staging under failing hardware
// ---------------------------------------------------------------------------

TEST(PushdownFaultTest, StormRecoveryKeepsPushedResultsExact) {
  StorageEngine storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateRelation(&storage, "r", 12000, 21));
  (void)rel;
  ASSERT_OK(storage.SyncAllStats());
  ASSERT_OK(storage.CommitRelation("r"));
  Optimizer optimizer(&storage.catalog());
  auto plan = MakeRestrict(MakeScan("r"), Lt(Col("k1000"), Lit(100)));
  ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));
  ASSERT_TRUE(opt->child(0).pushdown);

  MachineOptions healthy;
  healthy.config.num_instruction_processors = 8;
  MachineSimulator sim(&storage, healthy);
  ASSERT_OK_AND_ASSIGN(MachineReport baseline, sim.Run({opt.get()}));
  ASSERT_EQ(baseline.results.size(), 1u);
  EXPECT_GT(baseline.pushdown.pages_filtered, 0u);

  // Contract (fault_injection_test): under any seeded storm the machine
  // either recovers — bit-identical results — or fails cleanly with
  // Unavailable. Pushed-down staging must never turn a fault into a wrong
  // (tuple-dropping or tuple-duplicating) answer.
  int recovered = 0;
  for (uint64_t seed : {7u, 8u, 9u}) {
    FaultPlan fp = FaultPlan::RandomStorm(seed, /*ip_kills=*/2,
                                          /*packet_faults=*/2,
                                          baseline.makespan);
    fp.detection_timeout = SimTime::Micros(500);
    fp.retry_backoff = SimTime::Micros(100);
    MachineOptions faulted = healthy;
    faulted.fault_plan = fp;
    MachineSimulator storm(&storage, faulted);
    auto report = storm.Run({opt.get()});
    if (!report.ok()) {
      EXPECT_EQ(report.status().code(), StatusCode::kUnavailable)
          << "storm " << seed << ": " << report.status().ToString();
      continue;
    }
    ++recovered;
    ASSERT_EQ(report->results.size(), 1u);
    // The answer is exactly the fault-free answer — no survivor tuple lost
    // in a pushed-down staging read, none duplicated by re-dispatch.
    ExpectSameResult(baseline.results[0], report->results[0]);
    EXPECT_GT(report->faults.injected, 0u) << "storm " << seed << " vacuous";
    EXPECT_GT(report->pushdown.pages_filtered, 0u);
  }
  EXPECT_GT(recovered, 0) << "every storm failed cleanly — recovery vacuous";
}

TEST(PushdownFaultTest, CacheStallDelaysButDoesNotCorruptFilteredStaging) {
  StorageEngine storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateRelation(&storage, "r", 8000, 17));
  (void)rel;
  ASSERT_OK(storage.SyncAllStats());
  ASSERT_OK(storage.CommitRelation("r"));
  Optimizer optimizer(&storage.catalog());
  auto plan = MakeRestrict(MakeScan("r"), Lt(Col("k1000"), Lit(50)));
  ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));

  MachineOptions healthy;
  MachineSimulator sim(&storage, healthy);
  ASSERT_OK_AND_ASSIGN(MachineReport baseline, sim.Run({opt.get()}));

  // Stall the disk cache mid-staging: the filtered read is delayed by the
  // stall penalty (the watchdog path that covers a failing pushed-down
  // read), but every survivor still arrives exactly once.
  FaultPlan fp = FaultPlan::StallCache(
      SimTime::Nanos(baseline.makespan.nanos() / 4), SimTime::Millis(30));
  MachineOptions faulted;
  faulted.fault_plan = fp;
  MachineSimulator stalled(&storage, faulted);
  ASSERT_OK_AND_ASSIGN(MachineReport report, stalled.Run({opt.get()}));
  ExpectSameResult(baseline.results[0], report.results[0]);
  EXPECT_EQ(report.faults.cache_stalls, 1u);
  EXPECT_GT(report.makespan.nanos(), baseline.makespan.nanos());
  EXPECT_EQ(report.pushdown.pages_filtered, baseline.pushdown.pages_filtered);
  EXPECT_EQ(report.pushdown.tuples_out, baseline.pushdown.tuples_out);
}

// ---------------------------------------------------------------------------
// Determinism: identical seeds, identical pushdown measurements
// ---------------------------------------------------------------------------

TEST(PushdownDeterminismTest, SimulatorBytesAreReproducible) {
  StorageEngine storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateRelation(&storage, "r", 10000, 31));
  (void)rel;
  ASSERT_OK(storage.SyncAllStats());
  ASSERT_OK(storage.CommitRelation("r"));
  Optimizer optimizer(&storage.catalog());
  auto plan = MakeRestrict(MakeScan("r"), Lt(Col("k1000"), Lit(30)));
  ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));

  auto run = [&] {
    MachineOptions opts;
    MachineSimulator sim(&storage, opts);
    auto report = sim.Run({opt.get()});
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return *std::move(report);
  };
  MachineReport r1 = run();
  MachineReport r2 = run();
  EXPECT_EQ(r1.makespan.nanos(), r2.makespan.nanos());
  EXPECT_EQ(r1.bytes.outer_ring, r2.bytes.outer_ring);
  EXPECT_EQ(r1.bytes.cache_to_ic, r2.bytes.cache_to_ic);
  EXPECT_EQ(r1.pushdown.pages_filtered, r2.pushdown.pages_filtered);
  EXPECT_EQ(r1.pushdown.tuples_out, r2.pushdown.tuples_out);
  EXPECT_EQ(r1.pushdown.bytes_elided, r2.pushdown.bytes_elided);
  EXPECT_EQ(ResultMultiset(r1.results[0]), ResultMultiset(r2.results[0]));
}

}  // namespace
}  // namespace dfdb

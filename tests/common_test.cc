/// \file common_test.cc
/// \brief Tests for the common substrate: Slice, Random, Hash, BitVector,
/// SimTime, string utilities and BlockingQueue.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/bitvector.h"
#include "common/blocking_queue.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/sim_time.h"
#include "common/slice.h"
#include "common/string_util.h"

namespace dfdb {
namespace {

TEST(SliceTest, BasicViews) {
  std::string s = "hello world";
  Slice a(s);
  EXPECT_EQ(a.size(), 11u);
  EXPECT_EQ(a[4], 'o');
  EXPECT_TRUE(a.starts_with(Slice("hello")));
  EXPECT_FALSE(a.starts_with(Slice("world")));
  a.remove_prefix(6);
  EXPECT_EQ(a.ToString(), "world");
}

TEST(SliceTest, Comparison) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_LT(Slice("abc"), Slice("abd"));
  EXPECT_LT(Slice("ab"), Slice("abc"));
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  // Different seed diverges (overwhelmingly likely in 100 draws).
  bool diverged = false;
  Random a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RandomTest, UniformRespectsBounds) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(HashTest, StableAndSensitive) {
  EXPECT_EQ(Hash64("abc", 3), Hash64("abc", 3));
  EXPECT_NE(Hash64("abc", 3), Hash64("abd", 3));
  EXPECT_NE(Hash64("abc", 3), Hash64("abc", 2));
  EXPECT_NE(Hash64("abc", 3, 1), Hash64("abc", 3, 2));  // Seeded.
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(BitVectorTest, SetGetResize) {
  BitVector v(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_TRUE(v.NoneSet());
  v.Set(3);
  v.Set(9);
  EXPECT_TRUE(v.Get(3));
  EXPECT_FALSE(v.Get(4));
  EXPECT_EQ(v.Count(), 2u);
  v.Set(3, false);
  EXPECT_EQ(v.Count(), 1u);
  v.Resize(100);
  EXPECT_TRUE(v.Get(9));
  EXPECT_FALSE(v.Get(99));
  EXPECT_EQ(v.Count(), 1u);
}

TEST(BitVectorTest, ResizeWithOnes) {
  BitVector v(5);
  v.Resize(70, true);
  EXPECT_EQ(v.Count(), 65u);  // The original 5 stay zero.
  EXPECT_FALSE(v.Get(0));
  EXPECT_TRUE(v.Get(5));
  EXPECT_TRUE(v.Get(69));
}

TEST(BitVectorTest, FirstZeroScansAcrossWords) {
  BitVector v(130, true);
  EXPECT_EQ(v.FirstZero(), 130u);  // All set.
  v.Set(128, false);
  EXPECT_EQ(v.FirstZero(), 128u);
  v.Set(1, false);
  EXPECT_EQ(v.FirstZero(), 1u);
  v.ClearAll();
  EXPECT_EQ(v.FirstZero(), 0u);
  EXPECT_TRUE(v.NoneSet());
}

TEST(BitVectorTest, AllSetEmptyEdge) {
  BitVector empty;
  EXPECT_TRUE(empty.AllSet());  // Vacuously.
  EXPECT_EQ(empty.FirstZero(), 0u);
  BitVector v(64, true);
  EXPECT_TRUE(v.AllSet());
}

TEST(SimTimeTest, ArithmeticAndComparison) {
  EXPECT_EQ(SimTime::Millis(1), SimTime::Micros(1000));
  EXPECT_EQ(SimTime::Seconds(2).nanos(), 2000000000LL);
  EXPECT_LT(SimTime::Micros(999), SimTime::Millis(1));
  EXPECT_EQ((SimTime::Millis(3) - SimTime::Millis(1)).nanos(),
            SimTime::Millis(2).nanos());
  EXPECT_EQ((SimTime::Micros(5) * 3).nanos(), SimTime::Micros(15).nanos());
  EXPECT_DOUBLE_EQ(SimTime::Millis(1500).ToSecondsF(), 1.5);
}

TEST(SimTimeTest, TransferTimeMatchesRate) {
  // 1000 bytes at 8000 bits/s = 1 second.
  EXPECT_EQ(TransferTime(1000, 8000.0), SimTime::Seconds(1));
  // Zero rate = free (modelling "infinitely fast" components).
  EXPECT_EQ(TransferTime(1000, 0.0), SimTime::Zero());
  // Rounds up to whole nanoseconds.
  EXPECT_GE(TransferTime(1, 3e9).nanos(), 1);
}

TEST(SimTimeTest, ToStringPicksUnits) {
  EXPECT_EQ(SimTime::Zero().ToString(), "0s");
  EXPECT_EQ(SimTime::Nanos(12).ToString(), "12ns");
  EXPECT_NE(SimTime::Micros(34).ToString().find("us"), std::string::npos);
  EXPECT_NE(SimTime::Millis(56).ToString().find("ms"), std::string::npos);
  EXPECT_NE(SimTime::Seconds(7).ToString().find("s"), std::string::npos);
}

TEST(StringUtilTest, Formatting) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(HumanBitsPerSecond(40e6), "40.00 Mbps");
}

TEST(StringUtilTest, SplitJoinLower) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(JoinStrings({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(ToLower("AbC-9"), "abc-9");
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(BlockingQueueTest, CloseDrainsThenSignals) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));  // Closed queues refuse pushes.
  EXPECT_EQ(*q.Pop(), 1);   // But drain what is there.
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, TryOperations) {
  BlockingQueue<int> q(/*capacity=*/1);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));  // Full.
  EXPECT_EQ(*q.TryPop(), 1);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 1000;
  constexpr int kProducers = 4;
  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        consumed++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
  q.Close();
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace dfdb

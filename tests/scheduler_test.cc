/// \file scheduler_test.cc
/// \brief Tests for the resident Scheduler: concurrent Submit, MC admission,
/// deterministic deferred-start replay, and shutdown semantics.

#include "engine/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/reference.h"
#include "obs/metrics.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;
using ::dfdb::testing::ResultMultiset;

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(/*default_page_bytes=*/1000);
    ASSERT_OK_AND_ASSIGN(auto r1, GenerateRelation(storage_.get(), "alpha",
                                                   500, /*seed=*/7));
    ASSERT_OK_AND_ASSIGN(auto r2, GenerateRelation(storage_.get(), "beta",
                                                   200, /*seed=*/8));
    (void)r1;
    (void)r2;
  }

  ExecOptions Options(int processors) const {
    ExecOptions opts;
    opts.num_processors = processors;
    opts.page_bytes = 1000;
    opts.local_memory_pages = 16;
    opts.disk_cache_pages = 64;
    return opts;
  }

  std::vector<PlanNodePtr> ReadOnlyPlans() const {
    std::vector<PlanNodePtr> plans;
    plans.push_back(
        MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(400))));
    plans.push_back(MakeProject(MakeScan("beta"), {"k10", "k2"},
                                /*dedup=*/true));
    plans.push_back(MakeJoin(MakeScan("beta"),
                             MakeRestrict(MakeScan("alpha"),
                                          Lt(Col("k1000"), Lit(100))),
                             Eq(Col("k100"), RightCol("k100"))));
    plans.push_back(MakeAggregate(
        MakeScan("alpha"), {"k2"},
        {{AggregateSpec::Func::kSum, "k1000", "sum_k1000"}}));
    return plans;
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_F(SchedulerTest, SubmitRunsOneQuery) {
  Scheduler scheduler(storage_.get(), Options(4));
  auto plan = MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(250)));
  ASSERT_OK_AND_ASSIGN(QueryHandle handle, scheduler.Submit(*plan));
  EXPECT_TRUE(handle.valid());
  ASSERT_OK_AND_ASSIGN(QueryResult result, handle.Wait());
  scheduler.Shutdown();

  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*plan));
  ExpectSameResult(expected, result);
  // Admitted with no contention: the per-query stats say so, exactly.
  EXPECT_EQ(result.stats().sched_admitted, 1u);
  EXPECT_EQ(result.stats().sched_queued, 0u);
  EXPECT_EQ(result.stats().sched_queue_wait_ns, 0u);
  EXPECT_EQ(handle.queue_wait_ns(), 0u);
}

TEST_F(SchedulerTest, WaitTwiceReturnsFailedPrecondition) {
  Scheduler scheduler(storage_.get(), Options(2));
  auto plan = MakeScan("beta");
  ASSERT_OK_AND_ASSIGN(QueryHandle handle, scheduler.Submit(*plan));
  ASSERT_TRUE(handle.Wait().ok());
  EXPECT_TRUE(handle.Wait().status().IsFailedPrecondition());
  EXPECT_TRUE(QueryHandle().Wait().status().IsFailedPrecondition());
}

TEST_F(SchedulerTest, AnalysisErrorSurfacesAtSubmit) {
  Scheduler scheduler(storage_.get(), Options(2));
  auto bad = MakeScan("no_such_relation");
  EXPECT_FALSE(scheduler.Submit(*bad).ok());
  // The scheduler stays usable afterwards.
  ASSERT_OK_AND_ASSIGN(QueryHandle ok, scheduler.Submit(*MakeScan("beta")));
  EXPECT_TRUE(ok.Wait().ok());
}

TEST_F(SchedulerTest, ConcurrentSubmitFromManyThreads) {
  // Many client threads submit read queries against one resident pool; every
  // result must match the serial reference executor.
  auto plans = ReadOnlyPlans();
  std::vector<QueryResult> expected;
  ReferenceExecutor reference(storage_.get());
  for (const auto& plan : plans) {
    ASSERT_OK_AND_ASSIGN(QueryResult r, reference.Execute(*plan));
    expected.push_back(std::move(r));
  }

  constexpr int kClientThreads = 8;
  constexpr int kPerThread = 5;
  Scheduler scheduler(storage_.get(), Options(4));
  std::vector<std::vector<StatusOr<QueryResult>>> outcomes(kClientThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto& plan = plans[static_cast<size_t>((t + i) % plans.size())];
        auto handle = scheduler.Submit(*plan);
        if (!handle.ok()) {
          outcomes[static_cast<size_t>(t)].push_back(handle.status());
          continue;
        }
        outcomes[static_cast<size_t>(t)].push_back(handle->Wait());
      }
    });
  }
  for (auto& c : clients) c.join();
  scheduler.Shutdown();

  for (int t = 0; t < kClientThreads; ++t) {
    ASSERT_EQ(outcomes[static_cast<size_t>(t)].size(),
              static_cast<size_t>(kPerThread));
    for (int i = 0; i < kPerThread; ++i) {
      auto& outcome = outcomes[static_cast<size_t>(t)][static_cast<size_t>(i)];
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      const size_t which = static_cast<size_t>((t + i) % plans.size());
      EXPECT_EQ(ResultMultiset(expected[which]), ResultMultiset(*outcome));
    }
  }

  ExecStats totals = scheduler.AggregateStats();
  EXPECT_EQ(totals.sched_admitted + totals.sched_queued,
            static_cast<uint64_t>(kClientThreads * kPerThread));
}

TEST_F(SchedulerTest, ConflictingWritersSerializeOnSharedPool) {
  // Writers against one relation must serialize through the MC queue while
  // sharing the resident pool; the final row count proves none was lost.
  ASSERT_OK_AND_ASSIGN(
      auto sink, GenerateRelation(storage_.get(), "sink", 10, /*seed=*/3));
  (void)sink;
  const uint64_t before = (*storage_->GetHeapFile("sink"))->tuple_count();

  // Deferred start: all writers are submitted before any worker runs, so
  // exactly one is admitted and the rest queue — no timing luck involved.
  constexpr int kWriters = 6;
  SchedulerOptions options;
  options.exec = Options(4);
  options.defer_worker_start = true;
  Scheduler scheduler(storage_.get(), options);
  std::vector<QueryHandle> handles;
  for (int i = 0; i < kWriters; ++i) {
    auto plan = MakeAppend(
        MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(50))), "sink");
    ASSERT_OK_AND_ASSIGN(QueryHandle h, scheduler.Submit(*plan));
    handles.push_back(std::move(h));
  }
  scheduler.Start();
  uint64_t queued = 0;
  for (auto& h : handles) {
    ASSERT_OK_AND_ASSIGN(QueryResult r, h.Wait());
    queued += r.stats().sched_queued;
  }
  scheduler.Shutdown();

  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(
      QueryResult matching,
      reference.Execute(
          *MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(50)))));
  const uint64_t after = (*storage_->GetHeapFile("sink"))->tuple_count();
  EXPECT_EQ(after - before,
            static_cast<uint64_t>(kWriters) * matching.num_tuples());
  // Every writer but the first waited behind another.
  EXPECT_EQ(queued, static_cast<uint64_t>(kWriters - 1));
  ExecStats totals = scheduler.AggregateStats();
  EXPECT_EQ(totals.sched_queued, queued);
  EXPECT_GT(totals.sched_queue_wait_ns, 0u);
}

TEST_F(SchedulerTest, DeferredSingleWorkerReplayIsDeterministic) {
  // Two identically-seeded schedulers, one worker each, workers deferred
  // until every query is enqueued: traces and counters must be identical —
  // the same contract the Executor compatibility wrappers rely on.
  std::string exports[2];
  for (int round = 0; round < 2; ++round) {
    auto storage = std::make_unique<StorageEngine>(/*default_page_bytes=*/1000);
    ASSERT_OK_AND_ASSIGN(auto r1, GenerateRelation(storage.get(), "alpha",
                                                   500, /*seed=*/7));
    ASSERT_OK_AND_ASSIGN(auto r2, GenerateRelation(storage.get(), "beta",
                                                   200, /*seed=*/8));
    (void)r1;
    (void)r2;
    SchedulerOptions options;
    options.exec = Options(/*processors=*/1);
    options.exec.enable_trace = true;
    options.defer_worker_start = true;
    Scheduler scheduler(storage.get(), options);

    std::vector<PlanNodePtr> plans;
    plans.push_back(
        MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(400))));
    plans.push_back(MakeJoin(MakeScan("beta"),
                             MakeRestrict(MakeScan("alpha"),
                                          Lt(Col("k1000"), Lit(100))),
                             Eq(Col("k100"), RightCol("k100"))));
    std::vector<QueryHandle> handles;
    for (const auto& plan : plans) {
      ASSERT_OK_AND_ASSIGN(QueryHandle h, scheduler.Submit(*plan));
      handles.push_back(std::move(h));
    }
    scheduler.Start();
    for (auto& h : handles) ASSERT_TRUE(h.Wait().ok());
    scheduler.Shutdown();
    auto trace = scheduler.FinishTrace();
    ASSERT_NE(trace, nullptr);
    EXPECT_GT(trace->size(), 0u);
    exports[round] =
        scheduler.AggregateStats().ToReport().ToJson(/*include_timing=*/false);
  }
  EXPECT_EQ(exports[0], exports[1]);
}

TEST_F(SchedulerTest, ShutdownCancelsQueuedQueries) {
  // A never-started scheduler cancels everything at shutdown: nothing ran,
  // so nothing was mutated.
  SchedulerOptions options;
  options.exec = Options(2);
  options.defer_worker_start = true;
  const uint64_t before = (*storage_->GetHeapFile("alpha"))->tuple_count();
  Scheduler scheduler(storage_.get(), options);
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 4; ++i) {
    auto plan = MakeAppend(
        MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(50))), "alpha");
    ASSERT_OK_AND_ASSIGN(QueryHandle h, scheduler.Submit(*plan));
    handles.push_back(std::move(h));
  }
  scheduler.Shutdown();
  for (auto& h : handles) {
    EXPECT_TRUE(h.Done());
    auto result = h.Wait();
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsCancelled()) << result.status();
  }
  EXPECT_EQ((*storage_->GetHeapFile("alpha"))->tuple_count(), before);
  // New submissions are rejected after shutdown.
  EXPECT_TRUE(
      scheduler.Submit(*MakeScan("beta")).status().IsUnavailable());
}

TEST_F(SchedulerTest, RunningShutdownDrainsActiveAndCancelsWaiting) {
  // With workers live, Shutdown drains admitted queries to completion and
  // cancels only those still waiting in the MC queue.
  Scheduler scheduler(storage_.get(), Options(2));
  auto writer = MakeAppend(
      MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(100))), "alpha");
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(QueryHandle h, scheduler.Submit(*writer));
    handles.push_back(std::move(h));
  }
  scheduler.Shutdown();
  int completed = 0;
  int cancelled = 0;
  for (auto& h : handles) {
    auto result = h.Wait();
    if (result.ok()) {
      ++completed;
    } else {
      ASSERT_TRUE(result.status().IsCancelled()) << result.status();
      ++cancelled;
    }
  }
  // At least the first writer (admitted immediately) must complete; the
  // split of the rest depends on timing, but nothing may be lost.
  EXPECT_GE(completed, 1);
  EXPECT_EQ(completed + cancelled, 8);
}

TEST_F(SchedulerTest, SubmitAfterShutdownReturnsCleanError) {
  // The server path calls Submit() from connection handlers that can race
  // with Stop(): a post-shutdown Submit must fail with Unavailable, never
  // crash or hang.
  Scheduler scheduler(storage_.get(), Options(2));
  scheduler.Shutdown();
  auto handle = scheduler.Submit(*MakeScan("beta"));
  ASSERT_FALSE(handle.ok());
  EXPECT_TRUE(handle.status().IsUnavailable()) << handle.status();
}

TEST_F(SchedulerTest, ShutdownIsIdempotent) {
  Scheduler scheduler(storage_.get(), Options(2));
  ASSERT_OK_AND_ASSIGN(QueryHandle handle, scheduler.Submit(*MakeScan("beta")));
  EXPECT_TRUE(handle.Wait().ok());
  scheduler.Shutdown();
  scheduler.Shutdown();
  scheduler.Shutdown();
  EXPECT_TRUE(scheduler.Submit(*MakeScan("beta")).status().IsUnavailable());
}

TEST_F(SchedulerTest, ConcurrentShutdownCallsAllJoin) {
  // Several threads race Shutdown() while queries are in flight; every call
  // must block until the pool is actually down (a caller may destroy the
  // scheduler the moment its own Shutdown() returns).
  for (int round = 0; round < 10; ++round) {
    Scheduler scheduler(storage_.get(), Options(4));
    std::vector<QueryHandle> handles;
    for (int i = 0; i < 4; ++i) {
      auto h = scheduler.Submit(
          *MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(300))));
      ASSERT_TRUE(h.ok());
      handles.push_back(*std::move(h));
    }
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i) {
      stoppers.emplace_back([&scheduler] { scheduler.Shutdown(); });
    }
    for (auto& t : stoppers) t.join();
    // Every handle resolves: either the query drained or was cancelled.
    for (auto& h : handles) {
      auto result = h.Wait();
      EXPECT_TRUE(result.ok() || result.status().IsCancelled());
    }
  }
}

TEST_F(SchedulerTest, SnapshotMetricsExposesPoolAndQueueGauges) {
  Scheduler scheduler(storage_.get(), Options(3));
  ASSERT_OK_AND_ASSIGN(QueryHandle h, scheduler.Submit(*MakeScan("alpha")));
  ASSERT_TRUE(h.Wait().ok());
  scheduler.Shutdown();
  obs::MetricsRegistry registry;
  scheduler.SnapshotMetrics(&registry);
  EXPECT_EQ(registry.Get("engine.sched.submitted"), 1u);
  EXPECT_EQ(registry.Get("engine.sched.admitted"), 1u);
  EXPECT_EQ(registry.Get("engine.sched.completed"), 1u);
  EXPECT_EQ(registry.Get("engine.sched.queued"), 0u);
  EXPECT_EQ(registry.Get("engine.sched.cancelled"), 0u);
  EXPECT_EQ(registry.Get("engine.sched.active_queries"), 0u);
  EXPECT_EQ(registry.Get("engine.sched.queue_depth"), 0u);
  EXPECT_EQ(registry.Get("engine.sched.pool.workers"), 3u);
  EXPECT_GE(registry.Get("engine.sched.pool.peak_busy"), 1u);
}

TEST_F(SchedulerTest, QueueWaitIsMeasuredForQueuedQueries) {
  // Deferred start pins the admission outcome: the first writer is admitted
  // with zero queue wait, every later conflicting writer queues and must
  // report a positive wait.
  SchedulerOptions options;
  options.exec = Options(2);
  options.defer_worker_start = true;
  Scheduler scheduler(storage_.get(), options);
  auto writer = MakeAppend(
      MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(100))), "alpha");
  ASSERT_OK_AND_ASSIGN(QueryHandle first, scheduler.Submit(*writer));
  std::vector<QueryHandle> rest;
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(QueryHandle h, scheduler.Submit(*writer));
    rest.push_back(std::move(h));
  }
  scheduler.Start();
  ASSERT_OK_AND_ASSIGN(QueryResult first_result, first.Wait());
  EXPECT_EQ(first_result.stats().sched_queued, 0u);
  EXPECT_EQ(first_result.stats().sched_queue_wait_ns, 0u);
  for (auto& h : rest) {
    ASSERT_OK_AND_ASSIGN(QueryResult r, h.Wait());
    EXPECT_EQ(r.stats().sched_queued, 1u);
    EXPECT_GT(r.stats().sched_queue_wait_ns, 0u);
    EXPECT_EQ(h.queue_wait_ns(), r.stats().sched_queue_wait_ns);
  }
  scheduler.Shutdown();
}

}  // namespace
}  // namespace dfdb

/// \file simulator_test.cc
/// \brief The machine simulator must produce exactly the reference results
/// (it is execution-driven) and sensible timing/traffic measurements.

#include "machine/simulator.h"

#include <gtest/gtest.h>

#include "engine/reference.h"
#include "tests/test_util.h"
#include "workload/paper_benchmark.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;

class SimulatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(/*default_page_bytes=*/2000);
    ASSERT_OK_AND_ASSIGN(auto a, GenerateRelation(storage_.get(), "alpha",
                                                  400, 3));
    ASSERT_OK_AND_ASSIGN(auto b, GenerateRelation(storage_.get(), "beta",
                                                  150, 4));
    ASSERT_OK_AND_ASSIGN(auto c, GenerateRelation(storage_.get(), "gamma",
                                                  80, 5));
    (void)a;
    (void)b;
    (void)c;
  }

  MachineOptions Options(Granularity g, int ips = 4) const {
    MachineOptions opts;
    opts.granularity = g;
    opts.config.num_instruction_processors = ips;
    opts.config.num_instruction_controllers = 3;
    opts.config.page_bytes = 2000;
    opts.config.ic_local_memory_pages = 8;
    opts.config.disk_cache_pages = 64;
    return opts;
  }

  void CheckAgainstReference(const PlanNodePtr& plan, Granularity g,
                             int ips = 4) {
    ReferenceExecutor reference(storage_.get());
    ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*plan));
    MachineSimulator sim(storage_.get(), Options(g, ips));
    ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run({plan.get()}));
    ASSERT_EQ(report.results.size(), 1u);
    ExpectSameResult(expected, report.results[0]);
    EXPECT_GT(report.makespan.nanos(), 0);
    EXPECT_GT(report.bytes.disk_read, 0u);
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_F(SimulatorTest, RestrictPageGranularity) {
  CheckAgainstReference(
      MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(250))),
      Granularity::kPage);
}

TEST_F(SimulatorTest, RestrictRelationGranularity) {
  CheckAgainstReference(
      MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(250))),
      Granularity::kRelation);
}

TEST_F(SimulatorTest, RestrictTupleGranularity) {
  CheckAgainstReference(
      MakeRestrict(MakeScan("gamma"), Lt(Col("k1000"), Lit(500))),
      Granularity::kTuple);
}

TEST_F(SimulatorTest, BareScanWrapped) {
  CheckAgainstReference(MakeScan("beta"), Granularity::kPage);
}

TEST_F(SimulatorTest, JoinPageGranularity) {
  CheckAgainstReference(
      MakeJoin(MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(300))),
               MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(500))),
               Eq(Col("k100"), RightCol("k100"))),
      Granularity::kPage);
}

TEST_F(SimulatorTest, JoinRelationGranularity) {
  CheckAgainstReference(
      MakeJoin(MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(300))),
               MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(500))),
               Eq(Col("k100"), RightCol("k100"))),
      Granularity::kRelation);
}

TEST_F(SimulatorTest, JoinSingleIp) {
  CheckAgainstReference(
      MakeJoin(MakeScan("beta"), MakeScan("gamma"),
               Eq(Col("k100"), RightCol("k100"))),
      Granularity::kPage, /*ips=*/1);
}

TEST_F(SimulatorTest, JoinManyIps) {
  CheckAgainstReference(
      MakeJoin(MakeScan("beta"), MakeScan("gamma"),
               Eq(Col("k100"), RightCol("k100"))),
      Granularity::kPage, /*ips=*/16);
}

TEST_F(SimulatorTest, TwoJoinChain) {
  CheckAgainstReference(
      MakeJoin(
          MakeJoin(MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(200))),
                   MakeScan("gamma"), Eq(Col("k100"), RightCol("k100"))),
          MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(400))),
          Eq(Col("k1000"), RightCol("k1000"))),
      Granularity::kPage);
}

TEST_F(SimulatorTest, EmptyJoinSide) {
  // Restrict that matches nothing: the join must still terminate and
  // produce zero tuples.
  CheckAgainstReference(
      MakeJoin(MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(0))),
               MakeScan("gamma"), Eq(Col("k100"), RightCol("k100"))),
      Granularity::kPage);
}

TEST_F(SimulatorTest, ProjectDedupBarrier) {
  CheckAgainstReference(
      MakeProject(MakeScan("alpha"), {"k10"}, /*dedup=*/true),
      Granularity::kPage);
}

TEST_F(SimulatorTest, AggregateBarrier) {
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "cnt"});
  specs.push_back({AggregateSpec::Func::kSum, "k1000", "total"});
  CheckAgainstReference(MakeAggregate(MakeScan("beta"), {"k10"}, specs),
                        Granularity::kPage);
}

TEST_F(SimulatorTest, DifferenceBarrier) {
  CheckAgainstReference(
      MakeDifference(
          MakeProject(MakeScan("beta"), {"k100"}, true),
          MakeProject(MakeRestrict(MakeScan("beta"), Lt(Col("k100"), Lit(40))),
                      {"k100"}, true)),
      Granularity::kPage);
}

TEST_F(SimulatorTest, MultiQueryBatch) {
  auto q1 = MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(100)));
  auto q2 = MakeJoin(MakeScan("beta"), MakeScan("gamma"),
                     Eq(Col("k100"), RightCol("k100")));
  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(QueryResult e1, reference.Execute(*q1));
  ASSERT_OK_AND_ASSIGN(QueryResult e2, reference.Execute(*q2));

  MachineSimulator sim(storage_.get(), Options(Granularity::kPage, 6));
  ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run({q1.get(), q2.get()}));
  ASSERT_EQ(report.results.size(), 2u);
  ExpectSameResult(e1, report.results[0]);
  ExpectSameResult(e2, report.results[1]);
  // Both queries completed and were timed.
  EXPECT_GT(report.query_completion[0].nanos(), 0);
  EXPECT_GT(report.query_completion[1].nanos(), 0);
  EXPECT_GE(report.makespan, report.query_completion[0]);
  EXPECT_GE(report.makespan, report.query_completion[1]);
}

TEST_F(SimulatorTest, PageBeatsRelationGranularity) {
  // The paper's central claim (Figure 3.1): page-level granularity
  // outperforms relation-level on multi-operator queries.
  auto plan =
      MakeJoin(MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(300))),
               MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(500))),
               Eq(Col("k100"), RightCol("k100")));
  MachineSimulator page_sim(storage_.get(), Options(Granularity::kPage, 8));
  ASSERT_OK_AND_ASSIGN(MachineReport page_report, page_sim.Run({plan.get()}));
  MachineSimulator rel_sim(storage_.get(), Options(Granularity::kRelation, 8));
  ASSERT_OK_AND_ASSIGN(MachineReport rel_report, rel_sim.Run({plan.get()}));
  EXPECT_LT(page_report.makespan.nanos(), rel_report.makespan.nanos())
      << "page=" << page_report.makespan << " relation=" << rel_report.makespan;
}

TEST_F(SimulatorTest, BroadcastReducesRingTraffic) {
  auto plan = MakeJoin(MakeScan("alpha"), MakeScan("beta"),
                       Eq(Col("k100"), RightCol("k100")));
  MachineOptions bcast = Options(Granularity::kPage, 8);
  MachineOptions unicast = Options(Granularity::kPage, 8);
  unicast.broadcast_join = false;
  MachineSimulator s1(storage_.get(), bcast);
  ASSERT_OK_AND_ASSIGN(MachineReport r1, s1.Run({plan.get()}));
  MachineSimulator s2(storage_.get(), unicast);
  ASSERT_OK_AND_ASSIGN(MachineReport r2, s2.Run({plan.get()}));
  EXPECT_LT(r1.bytes.outer_ring, r2.bytes.outer_ring);
  // Results identical either way.
  ExpectSameResult(r1.results[0], r2.results[0]);
}

TEST_F(SimulatorTest, DirectRoutingPreservesResultsAndCutsTraffic) {
  // Section 5.0 future work: IP-to-IP result routing must not change any
  // result and must not increase outer-ring traffic.
  auto plan =
      MakeJoin(MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(400))),
               MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(600))),
               Eq(Col("k100"), RightCol("k100")));
  MachineOptions via_ic = Options(Granularity::kPage, 8);
  MachineOptions direct = Options(Granularity::kPage, 8);
  direct.ip_direct_routing = true;
  MachineSimulator s1(storage_.get(), via_ic);
  ASSERT_OK_AND_ASSIGN(MachineReport r1, s1.Run({plan.get()}));
  MachineSimulator s2(storage_.get(), direct);
  ASSERT_OK_AND_ASSIGN(MachineReport r2, s2.Run({plan.get()}));
  ExpectSameResult(r1.results[0], r2.results[0]);
  EXPECT_GT(r2.direct_routes, 0u);
  EXPECT_LE(r2.bytes.outer_ring, r1.bytes.outer_ring);
}

TEST_F(SimulatorTest, ParallelProjectMatchesSerial) {
  // Section 5.0 future work: the hash-partitioned parallel project must
  // produce exactly the serial barrier's result set and run no slower
  // with multiple IPs.
  auto plan = MakeProject(MakeScan("alpha"), {"k100", "k10"}, /*dedup=*/true);
  MachineOptions serial = Options(Granularity::kPage, 8);
  MachineOptions parallel = Options(Granularity::kPage, 8);
  parallel.parallel_project = true;
  parallel.project_partitions = 4;
  MachineSimulator s1(storage_.get(), serial);
  ASSERT_OK_AND_ASSIGN(MachineReport r1, s1.Run({plan.get()}));
  MachineSimulator s2(storage_.get(), parallel);
  ASSERT_OK_AND_ASSIGN(MachineReport r2, s2.Run({plan.get()}));
  ExpectSameResult(r1.results[0], r2.results[0]);
  EXPECT_LE(r2.makespan.nanos(), r1.makespan.nanos());
  // Also correct against the reference executor.
  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*plan));
  ExpectSameResult(expected, r2.results[0]);
}

TEST_F(SimulatorTest, ParallelProjectUnderJoin) {
  // A dedup-project feeding a join, parallel mode: the consumer must see a
  // correctly deduplicated stream.
  auto plan = MakeJoin(
      MakeProject(MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(400))),
                  {"k100", "k1000"}, /*dedup=*/true),
      MakeScan("gamma"), Eq(Col("k100"), RightCol("k100")));
  MachineOptions opts = Options(Granularity::kPage, 8);
  opts.parallel_project = true;
  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*plan));
  MachineSimulator sim(storage_.get(), opts);
  ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run({plan.get()}));
  ExpectSameResult(expected, report.results[0]);
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  auto plan =
      MakeJoin(MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(300))),
               MakeScan("gamma"), Eq(Col("k100"), RightCol("k100")));
  MachineSimulator s1(storage_.get(), Options(Granularity::kPage, 8));
  ASSERT_OK_AND_ASSIGN(MachineReport r1, s1.Run({plan.get()}));
  MachineSimulator s2(storage_.get(), Options(Granularity::kPage, 8));
  ASSERT_OK_AND_ASSIGN(MachineReport r2, s2.Run({plan.get()}));
  EXPECT_EQ(r1.makespan.nanos(), r2.makespan.nanos());
  EXPECT_EQ(r1.bytes.outer_ring, r2.bytes.outer_ring);
  EXPECT_EQ(r1.events, r2.events);
}

}  // namespace
}  // namespace dfdb

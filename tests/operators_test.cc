/// \file operators_test.cc
/// \brief Tests for the page-at-a-time operator kernels, including the
/// nested-loops vs sorted-merge equivalence property.

#include "operators/kernels.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "operators/aggregator.h"
#include "operators/dedup.h"
#include "operators/set_ops.h"
#include "operators/sort_merge_join.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

/// Materializes a generated relation's pages.
std::vector<PagePtr> PagesOf(StorageEngine* storage, const std::string& name) {
  auto file = storage->GetHeapFile(name);
  EXPECT_TRUE(file.ok());
  EXPECT_OK((*file)->Flush());
  std::vector<PagePtr> pages;
  for (PageId id : (*file)->PageIds()) {
    auto p = storage->page_store().Get(id);
    EXPECT_TRUE(p.ok());
    pages.push_back(*p);
  }
  return pages;
}

class OperatorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(800);
    schema_ = BenchmarkSchema();
    ASSERT_OK_AND_ASSIGN(auto a, GenerateRelation(storage_.get(), "a", 300, 1));
    ASSERT_OK_AND_ASSIGN(auto b, GenerateRelation(storage_.get(), "b", 120, 2));
    (void)a;
    (void)b;
    a_pages_ = PagesOf(storage_.get(), "a");
    b_pages_ = PagesOf(storage_.get(), "b");
  }

  std::unique_ptr<StorageEngine> storage_;
  Schema schema_;
  std::vector<PagePtr> a_pages_;
  std::vector<PagePtr> b_pages_;
};

TEST_F(OperatorsTest, RestrictMatchesManualCount) {
  ExprPtr pred = Lt(Col("k1000"), Lit(500));
  ASSERT_OK(pred->Bind(schema_, nullptr));
  VectorSink sink;
  uint64_t expected = 0;
  for (const PagePtr& page : a_pages_) {
    ASSERT_OK(RestrictPage(schema_, *pred, *page, &sink));
    ASSERT_OK_AND_ASSIGN(uint64_t n, CountMatches(schema_, *pred, *page));
    expected += n;
  }
  EXPECT_EQ(sink.tuples().size(), expected);
  // Every emitted tuple satisfies the predicate.
  for (const std::string& t : sink.tuples()) {
    TupleView view(&schema_, Slice(t));
    ASSERT_OK_AND_ASSIGN(Value k, view.GetValue(7));
    EXPECT_LT(k.as_int32(), 500);
  }
}

TEST_F(OperatorsTest, ProjectKeepsColumnOrderAndWidth) {
  std::vector<int> indices = {7, 0};  // k1000, id.
  VectorSink sink;
  ASSERT_OK(ProjectPage(schema_, indices, *a_pages_[0], &sink));
  EXPECT_EQ(sink.tuples().size(),
            static_cast<size_t>(a_pages_[0]->num_tuples()));
  ASSERT_OK_AND_ASSIGN(Schema out, schema_.Project(indices));
  EXPECT_EQ(sink.tuples()[0].size(), static_cast<size_t>(out.tuple_width()));
  // Spot check: first projected field equals source k1000.
  TupleView src(&schema_, a_pages_[0]->tuple(0));
  TupleView dst(&out, Slice(sink.tuples()[0]));
  ASSERT_OK_AND_ASSIGN(Value sk, src.GetValue(7));
  ASSERT_OK_AND_ASSIGN(Value dk, dst.GetValue(0));
  EXPECT_EQ(sk.as_int32(), dk.as_int32());
}

TEST_F(OperatorsTest, JoinPagesEmitsOnlyMatches) {
  ExprPtr pred = Eq(Col("k100"), RightCol("k100"));
  ASSERT_OK(pred->Bind(schema_, &schema_));
  VectorSink sink;
  ASSERT_OK(JoinPages(schema_, schema_, *pred, *a_pages_[0], *b_pages_[0],
                      &sink));
  Schema joined = schema_.Concat(schema_);
  ASSERT_OK_AND_ASSIGN(int left_k100, joined.ColumnIndex("k100"));
  ASSERT_OK_AND_ASSIGN(int right_k100, joined.ColumnIndex("k100_r"));
  for (const std::string& t : sink.tuples()) {
    TupleView view(&joined, Slice(t));
    ASSERT_OK_AND_ASSIGN(Value l, view.GetValue(left_k100));
    ASSERT_OK_AND_ASSIGN(Value r, view.GetValue(right_k100));
    EXPECT_EQ(l.as_int32(), r.as_int32());
  }
  // Count matches the brute-force expectation.
  size_t expected = 0;
  for (int i = 0; i < a_pages_[0]->num_tuples(); ++i) {
    TupleView l(&schema_, a_pages_[0]->tuple(i));
    for (int j = 0; j < b_pages_[0]->num_tuples(); ++j) {
      TupleView r(&schema_, b_pages_[0]->tuple(j));
      auto c = l.CompareColumn(6, r, 6);
      if (c.ok() && *c == 0) ++expected;
    }
  }
  EXPECT_EQ(sink.tuples().size(), expected);
}

/// Property: sorted-merge and nested-loops produce identical bags for
/// equi-joins, across join columns of different types and duplications.
class JoinEquivalenceTest : public OperatorsTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(JoinEquivalenceTest, SortMergeMatchesNestedLoops) {
  const int col = GetParam();
  // Nested loops over all page pairs.
  ExprPtr pred = Eq(Col(schema_.column(col).name),
                    RightCol(schema_.column(col).name));
  ASSERT_OK(pred->Bind(schema_, &schema_));
  VectorSink nested;
  for (const PagePtr& ap : a_pages_) {
    for (const PagePtr& bp : b_pages_) {
      ASSERT_OK(JoinPages(schema_, schema_, *pred, *ap, *bp, &nested));
    }
  }
  VectorSink merged;
  ASSERT_OK(SortMergeJoin(schema_, a_pages_, col, schema_, b_pages_, col,
                          &merged));
  std::vector<std::string> n = nested.tuples(), m = merged.tuples();
  std::sort(n.begin(), n.end());
  std::sort(m.begin(), m.end());
  EXPECT_EQ(n.size(), m.size());
  EXPECT_EQ(n, m);
}

INSTANTIATE_TEST_SUITE_P(JoinColumns, JoinEquivalenceTest,
                         ::testing::Values(2, 4, 6, 7),  // k2,k10,k100,k1000.
                         [](const auto& info) {
                           return "col" + std::to_string(info.param);
                         });

TEST_F(OperatorsTest, SortMergeRejectsTypeMismatch) {
  VectorSink sink;
  // Column 8 is DOUBLE, column 0 is INT32.
  EXPECT_TRUE(SortMergeJoin(schema_, a_pages_, 0, schema_, b_pages_, 8, &sink)
                  .IsInvalidArgument());
  EXPECT_TRUE(SortMergeJoin(schema_, a_pages_, -1, schema_, b_pages_, 0, &sink)
                  .IsOutOfRange());
}

TEST_F(OperatorsTest, DuplicateEliminatorBasics) {
  DuplicateEliminator d;
  EXPECT_TRUE(d.Insert(Slice("aa")));
  EXPECT_FALSE(d.Insert(Slice("aa")));
  EXPECT_TRUE(d.Insert(Slice("ab")));
  EXPECT_TRUE(d.Contains(Slice("aa")));
  EXPECT_FALSE(d.Contains(Slice("zz")));
  EXPECT_EQ(d.size(), 2u);
  d.Clear();
  EXPECT_EQ(d.size(), 0u);
}

TEST_F(OperatorsTest, DedupPartitionIsStable) {
  for (int parts : {1, 2, 16}) {
    const int p1 = DedupPartition(Slice("hello"), parts);
    const int p2 = DedupPartition(Slice("hello"), parts);
    EXPECT_EQ(p1, p2);
    EXPECT_GE(p1, 0);
    EXPECT_LT(p1, parts);
  }
}

TEST_F(OperatorsTest, UnionBagVsSet) {
  VectorSink bag;
  UnionOp bag_op(/*bag_semantics=*/true);
  ASSERT_OK(bag_op.Consume(*a_pages_[0], &bag));
  ASSERT_OK(bag_op.Consume(*a_pages_[0], &bag));
  EXPECT_EQ(bag.tuples().size(),
            2 * static_cast<size_t>(a_pages_[0]->num_tuples()));

  VectorSink set;
  UnionOp set_op(/*bag_semantics=*/false);
  ASSERT_OK(set_op.Consume(*a_pages_[0], &set));
  ASSERT_OK(set_op.Consume(*a_pages_[0], &set));
  EXPECT_EQ(set.tuples().size(),
            static_cast<size_t>(a_pages_[0]->num_tuples()));
}

TEST_F(OperatorsTest, DifferenceRemovesRightTuples) {
  DifferenceOp op;
  op.ConsumeRight(*a_pages_[0]);
  VectorSink sink;
  ASSERT_OK(op.ConsumeLeft(*a_pages_[0], &sink));
  EXPECT_TRUE(sink.tuples().empty());  // A \ A = empty.
  VectorSink sink2;
  ASSERT_OK(op.ConsumeLeft(*a_pages_[1], &sink2));
  EXPECT_EQ(sink2.tuples().size(),
            static_cast<size_t>(a_pages_[1]->num_tuples()));
}

TEST_F(OperatorsTest, AggregatorComputesAllFunctions) {
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "cnt"});
  specs.push_back({AggregateSpec::Func::kSum, "k1000", "sum"});
  specs.push_back({AggregateSpec::Func::kMin, "k1000", "mn"});
  specs.push_back({AggregateSpec::Func::kMax, "k1000", "mx"});
  specs.push_back({AggregateSpec::Func::kAvg, "k1000", "avg"});
  Schema out = Schema::CreateOrDie(
      {Column::Int64("cnt"), Column::Int64("sum"), Column::Int32("mn"),
       Column::Int32("mx"), Column::Double("avg")});
  ASSERT_OK_AND_ASSIGN(Aggregator agg,
                       Aggregator::Create(schema_, out, {}, specs));
  int64_t expect_cnt = 0, expect_sum = 0;
  int32_t expect_min = INT32_MAX, expect_max = INT32_MIN;
  for (const PagePtr& page : a_pages_) {
    ASSERT_OK(agg.Consume(*page));
    for (int i = 0; i < page->num_tuples(); ++i) {
      TupleView view(&schema_, page->tuple(i));
      ASSERT_OK_AND_ASSIGN(Value v, view.GetValue(7));
      ++expect_cnt;
      expect_sum += v.as_int32();
      expect_min = std::min(expect_min, v.as_int32());
      expect_max = std::max(expect_max, v.as_int32());
    }
  }
  EXPECT_EQ(agg.num_groups(), 1u);
  VectorSink sink;
  ASSERT_OK(agg.Finish(&sink));
  ASSERT_EQ(sink.tuples().size(), 1u);
  TupleView row(&out, Slice(sink.tuples()[0]));
  ASSERT_OK_AND_ASSIGN(Value cnt, row.GetValue(0));
  ASSERT_OK_AND_ASSIGN(Value sum, row.GetValue(1));
  ASSERT_OK_AND_ASSIGN(Value mn, row.GetValue(2));
  ASSERT_OK_AND_ASSIGN(Value mx, row.GetValue(3));
  ASSERT_OK_AND_ASSIGN(Value avg, row.GetValue(4));
  EXPECT_EQ(cnt.as_int64(), expect_cnt);
  EXPECT_EQ(sum.as_int64(), expect_sum);
  EXPECT_EQ(mn.as_int32(), expect_min);
  EXPECT_EQ(mx.as_int32(), expect_max);
  EXPECT_NEAR(avg.as_double(),
              static_cast<double>(expect_sum) / static_cast<double>(expect_cnt),
              1e-9);
  // Finish resets the aggregator.
  EXPECT_EQ(agg.num_groups(), 0u);
}

TEST_F(OperatorsTest, AggregatorGroupsDeterministically) {
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "cnt"});
  Schema out =
      Schema::CreateOrDie({Column::Int32("k10"), Column::Int64("cnt")});
  ASSERT_OK_AND_ASSIGN(Aggregator agg,
                       Aggregator::Create(schema_, out, {"k10"}, specs));
  for (const PagePtr& page : a_pages_) ASSERT_OK(agg.Consume(*page));
  EXPECT_EQ(agg.num_groups(), 10u);
  VectorSink sink;
  ASSERT_OK(agg.Finish(&sink));
  // Counts sum to the relation size.
  int64_t total = 0;
  for (const std::string& t : sink.tuples()) {
    TupleView row(&out, Slice(t));
    ASSERT_OK_AND_ASSIGN(Value cnt, row.GetValue(1));
    total += cnt.as_int64();
  }
  EXPECT_EQ(total, 300);
}

TEST_F(OperatorsTest, PagedSinkSealsAndFlushes) {
  int flushed_pages = 0;
  uint64_t flushed_tuples = 0;
  PagedSink sink(1, 10, 35, [&](PagePtr page) {
    ++flushed_pages;
    flushed_tuples += static_cast<uint64_t>(page->num_tuples());
    return Status::OK();
  });
  for (int i = 0; i < 7; ++i) {
    ASSERT_OK(sink.Emit(Slice("0123456789")));
  }
  EXPECT_EQ(flushed_pages, 2);  // 3 + 3 sealed, 1 buffered.
  ASSERT_OK(sink.Finish());
  EXPECT_EQ(flushed_pages, 3);
  EXPECT_EQ(flushed_tuples, 7u);
  EXPECT_EQ(sink.tuples_emitted(), 7u);
  EXPECT_EQ(sink.pages_flushed(), 3u);
}

TEST_F(OperatorsTest, CopyPagePreservesEverything) {
  VectorSink sink;
  ASSERT_OK(CopyPage(*b_pages_[0], &sink));
  ASSERT_EQ(sink.tuples().size(),
            static_cast<size_t>(b_pages_[0]->num_tuples()));
  EXPECT_EQ(Slice(sink.tuples()[0]), b_pages_[0]->tuple(0));
}

}  // namespace
}  // namespace dfdb

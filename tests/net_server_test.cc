/// \file net_server_test.cc
/// \brief End-to-end server tests: correctness, pipelining, backpressure,
/// deadlines, disconnect robustness, and shutdown.
///
/// Deterministic hostile-client cases use raw sockets (partial frames,
/// mid-query disconnect, unknown opcodes); deterministic deadline/orphan
/// cases freeze the engine with SchedulerOptions::defer_worker_start so a
/// submitted query provably never completes.

#include "net/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/reference.h"
#include "net/client.h"
#include "ra/parser.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace net {
namespace {

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(/*default_page_bytes=*/1000);
    ASSERT_OK_AND_ASSIGN(auto r1, GenerateRelation(storage_.get(), "alpha",
                                                   500, /*seed=*/7));
    ASSERT_OK_AND_ASSIGN(auto r2, GenerateRelation(storage_.get(), "beta",
                                                   200, /*seed=*/8));
    (void)r1;
    (void)r2;
  }

  ServerOptions Options(int max_inflight = 16) const {
    ServerOptions options;
    options.max_inflight = max_inflight;
    options.scheduler.exec.num_processors = 4;
    options.scheduler.exec.page_bytes = 1000;
    options.scheduler.exec.local_memory_pages = 16;
    options.scheduler.exec.disk_cache_pages = 64;
    return options;
  }

  std::unique_ptr<StorageEngine> storage_;
};

/// A raw TCP connection for hostile-client scenarios the Client library
/// (correctly) refuses to produce.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawConn() { Close(); }

  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

  /// Blocks (with a 5 s cap via SO_RCVTIMEO) for the next complete frame.
  StatusOr<Frame> ReadFrame() {
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char buf[4096];
    for (;;) {
      DFDB_ASSIGN_OR_RETURN(auto next, reader_.Next());
      if (next.has_value()) return std::move(*next);
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return Status::IOError("connection closed or timed out");
      reader_.Append(buf, static_cast<size_t>(n));
    }
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameReader reader_;
};

TEST_F(NetServerTest, RoundTripMatchesReferenceExecutor) {
  Server server(storage_.get(), Options());
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server.port()));

  const std::string text = "restrict(alpha, k1000 < 250)";
  ASSERT_OK_AND_ASSIGN(RemoteResult remote, client.Execute(text));

  ASSERT_OK_AND_ASSIGN(auto plan, ParseQuery(text));
  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*plan));

  EXPECT_EQ(remote.num_tuples, expected.num_tuples());
  EXPECT_EQ(remote.schema, expected.schema());
  // Same bag of tuples: compare raw encodings, order-independent.
  std::vector<std::string> got;
  remote.ForEachTuple([&](const TupleView& t) {
    got.push_back(std::string(t.raw().data(), t.raw().size()));
  });
  std::sort(got.begin(), got.end());
  std::vector<std::string> want;
  for (const PagePtr& page : expected.pages()) {
    for (int i = 0; i < page->num_tuples(); ++i) {
      want.push_back(
          std::string(page->tuple(i).data(), page->tuple(i).size()));
    }
  }
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  // Per-query engine counters came back over the wire.
  EXPECT_GT(remote.counters.count("engine.tasks_executed"), 0u);
  server.Stop();
}

TEST_F(NetServerTest, EmptyResultAndWritersWork) {
  Server server(storage_.get(), Options());
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server.port()));

  ASSERT_OK_AND_ASSIGN(RemoteResult empty,
                       client.Execute("restrict(alpha, k1000 < 0)"));
  EXPECT_EQ(empty.num_tuples, 0u);

  ASSERT_OK_AND_ASSIGN(
      RemoteResult append,
      client.Execute("append(restrict(alpha, k1000 < 50), beta)"));
  ASSERT_OK_AND_ASSIGN(RemoteResult del,
                       client.Execute("delete(beta, k1000 < 50)"));
  (void)append;
  (void)del;
  server.Stop();
}

TEST_F(NetServerTest, PipelinedRequestsAllAnswered) {
  Server server(storage_.get(), Options());
  ASSERT_OK(server.Start());
  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());

  // Ship several queries before reading anything; every request must get a
  // terminal frame (stats or error) tagged with its id.
  constexpr int kPipelined = 6;
  std::string wire;
  for (uint32_t id = 1; id <= kPipelined; ++id) {
    QueryRequest q;
    q.text = "restrict(alpha, k1000 < 100)";
    wire += EncodeQueryFrame(id, q);
  }
  conn.Send(wire);

  std::vector<bool> done(kPipelined + 1, false);
  int terminals = 0;
  while (terminals < kPipelined) {
    ASSERT_OK_AND_ASSIGN(Frame frame, conn.ReadFrame());
    const auto op = static_cast<Opcode>(frame.header.opcode);
    ASSERT_GE(frame.header.request_id, 1u);
    ASSERT_LE(frame.header.request_id, static_cast<uint32_t>(kPipelined));
    if (op == Opcode::kStats) {
      EXPECT_FALSE(done[frame.header.request_id]);
      done[frame.header.request_id] = true;
      ++terminals;
    } else {
      ASSERT_TRUE(op == Opcode::kSchema || op == Opcode::kRows);
    }
  }
  server.Stop();
}

TEST_F(NetServerTest, InvalidQueryGetsErrorAndConnectionSurvives) {
  Server server(storage_.get(), Options());
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server.port()));

  auto bad = client.Execute("restrict(alpha, ");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument()) << bad.status();
  auto missing = client.Execute("no_such_relation");
  ASSERT_FALSE(missing.ok());
  // The same connection keeps working.
  ASSERT_OK_AND_ASSIGN(RemoteResult ok,
                       client.Execute("restrict(alpha, k1000 < 10)"));
  EXPECT_GT(server.counters().invalid_requests.load(), 0u);
  (void)ok;
  server.Stop();
}

TEST_F(NetServerTest, AdmissionCapZeroRejectsWithRetryLater) {
  // max_inflight=0 deterministically rejects every query: the client's
  // retry budget exhausts and surfaces ResourceExhausted.
  Server server(storage_.get(), Options(/*max_inflight=*/0));
  ASSERT_OK(server.Start());
  ClientOptions copts;
  copts.max_retries = 2;
  copts.retry_backoff_ms = 1;
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server.port(), copts));
  auto result = client.Execute("restrict(alpha, k1000 < 10)");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();
  // 1 initial + 2 retries, all rejected pre-execution.
  EXPECT_EQ(server.counters().rejected.load(), 3u);
  EXPECT_EQ(server.AggregateStats().tasks_executed, 0u);
  server.Stop();
}

TEST_F(NetServerTest, PartialFrameThenDisconnectIsHarmless) {
  Server server(storage_.get(), Options());
  ASSERT_OK(server.Start());
  {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    QueryRequest q;
    q.text = "restrict(alpha, k1000 < 100)";
    const std::string frame = EncodeQueryFrame(1, q);
    conn.Send(frame.substr(0, frame.size() / 2));  // Half a frame...
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }  // ...then vanish.

  // The server neither crashed nor leaked a query, and still serves.
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server.port()));
  ASSERT_OK_AND_ASSIGN(RemoteResult ok,
                       client.Execute("restrict(alpha, k1000 < 10)"));
  (void)ok;
  for (int i = 0; i < 100 && server.counters().disconnects.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.counters().disconnects.load(), 1u);
  EXPECT_EQ(server.counters().protocol_errors.load(), 0u);
  server.Stop();
}

TEST_F(NetServerTest, CorruptFrameClosesOnlyThatConnection) {
  Server server(storage_.get(), Options());
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(Client good,
                       Client::Connect("127.0.0.1", server.port()));
  {
    RawConn evil(server.port());
    ASSERT_TRUE(evil.connected());
    evil.Send(std::string(64, '\xff'));  // Garbage: bad magic.
    auto frame = evil.ReadFrame();
    EXPECT_FALSE(frame.ok());  // Server closed the corrupt stream.
  }
  for (int i = 0; i < 100 && server.counters().protocol_errors.load() == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.counters().protocol_errors.load(), 1u);
  // The good connection is unaffected.
  ASSERT_OK_AND_ASSIGN(RemoteResult ok,
                       good.Execute("restrict(alpha, k1000 < 10)"));
  (void)ok;
  server.Stop();
}

TEST_F(NetServerTest, UnknownOpcodeAnsweredWithoutDroppingConnection) {
  Server server(storage_.get(), Options());
  ASSERT_OK(server.Start());
  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());

  std::string frame = EncodePingFrame(41);
  frame[5] = static_cast<char>(0xee);  // Unknown-but-framed opcode.
  conn.Send(frame);
  ASSERT_OK_AND_ASSIGN(Frame reply, conn.ReadFrame());
  EXPECT_EQ(reply.header.opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(reply.header.request_id, 41u);
  ASSERT_OK_AND_ASSIGN(ErrorMessage error, DecodeError(reply.body));
  EXPECT_EQ(error.code, WireError::kInvalidRequest);

  // Framing survived: a ping on the same connection still works.
  conn.Send(EncodePingFrame(42));
  ASSERT_OK_AND_ASSIGN(Frame pong, conn.ReadFrame());
  EXPECT_EQ(pong.header.opcode, static_cast<uint8_t>(Opcode::kPong));
  EXPECT_EQ(pong.header.request_id, 42u);
  server.Stop();
}

TEST_F(NetServerTest, MidQueryDisconnectOrphansWithoutLeakOrCrash) {
  // Freeze the engine: the scheduler admits but never executes, so the
  // in-flight query provably outlives its client.
  ServerOptions options = Options();
  options.scheduler.defer_worker_start = true;
  Server server(storage_.get(), options);
  ASSERT_OK(server.Start());
  {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    QueryRequest q;
    q.text = "restrict(alpha, k1000 < 100)";
    conn.Send(EncodeQueryFrame(1, q));
    // Wait until the server has actually admitted it.
    for (int i = 0; i < 200 && server.counters().requests.load() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(server.counters().requests.load(), 1u);
  }  // Client vanishes mid-query.

  // Stop() must not hang on the orphan (the frozen scheduler cancels it)
  // and must account for it.
  server.Stop();
  EXPECT_EQ(server.counters().orphaned_results.load(), 1u);
}

TEST_F(NetServerTest, DeadlineExpiresDeterministically) {
  // Frozen engine + 30 ms deadline: the deadline must fire (the query can
  // never complete) and the client gets a clean Aborted.
  ServerOptions options = Options();
  options.scheduler.defer_worker_start = true;
  Server server(storage_.get(), options);
  ASSERT_OK(server.Start());
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server.port()));
  auto result = client.Execute("restrict(alpha, k1000 < 100)",
                               /*deadline_ms=*/30);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAborted()) << result.status();
  EXPECT_EQ(server.counters().deadline_expired.load(), 1u);
  // The connection survives a deadline miss.
  EXPECT_OK(client.Ping());
  server.Stop();
}

TEST_F(NetServerTest, ConcurrentClientsAllSucceed) {
  // The tsan target of this suite: many connection handlers submitting
  // into one scheduler while another thread snapshots metrics.
  Server server(storage_.get(), Options(/*max_inflight=*/32));
  ASSERT_OK(server.Start());

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const char* kQueries[] = {
          "restrict(alpha, k1000 < 200)",
          "project(beta, [k10, k2], dedup)",
          "agg(alpha, [k2], [count() as n])",
      };
      for (int i = 0; i < kQueriesPerClient; ++i) {
        auto result =
            client->Execute(kQueries[(c + i) % 3]);
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  std::atomic<bool> stop_metrics{false};
  std::thread metrics([&] {
    while (!stop_metrics.load()) {
      obs::MetricsRegistry registry;
      server.SnapshotMetrics(&registry);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : threads) t.join();
  stop_metrics.store(true);
  metrics.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.counters().requests.load(),
            static_cast<uint64_t>(kClients * kQueriesPerClient));
  server.Stop();
}

TEST_F(NetServerTest, StopIsIdempotentAndGraceful) {
  auto server = std::make_unique<Server>(storage_.get(), Options());
  ASSERT_OK(server->Start());
  ASSERT_OK_AND_ASSIGN(Client client,
                       Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(RemoteResult ok,
                       client.Execute("restrict(alpha, k1000 < 10)"));
  (void)ok;
  server->Stop();
  server->Stop();  // Idempotent.
  // Post-drain, new queries on the old connection fail cleanly.
  auto late = client.Execute("restrict(alpha, k1000 < 10)");
  EXPECT_FALSE(late.ok());
  server.reset();  // Destructor after Stop() is fine too.
}

TEST_F(NetServerTest, ExchangeDataForUnknownExchangeRejected) {
  Server server(storage_.get(), Options());
  ASSERT_OK(server.Start());
  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());

  // A batch for an exchange no fragment ever opened: answered with
  // kInvalidRequest, counted, and the connection keeps working.
  ExchangeBatch batch;
  batch.exchange_id = 99;
  batch.num_tuples = 1;
  batch.tuple_width = 4;
  batch.tuples = "abcd";
  conn.Send(EncodeExchangeDataFrame(7, batch));
  ASSERT_OK_AND_ASSIGN(Frame reply, conn.ReadFrame());
  EXPECT_EQ(reply.header.opcode, static_cast<uint8_t>(Opcode::kError));
  ASSERT_OK_AND_ASSIGN(ErrorMessage error, DecodeError(reply.body));
  EXPECT_EQ(error.code, WireError::kInvalidRequest);
  EXPECT_EQ(server.counters().exchange_unknown.load(), 1u);

  // Same for an EOF with no open input.
  conn.Send(EncodeExchangeEofFrame(8, ExchangeEofMessage{99}));
  ASSERT_OK_AND_ASSIGN(Frame reply2, conn.ReadFrame());
  EXPECT_EQ(reply2.header.opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(server.counters().exchange_unknown.load(), 2u);

  conn.Send(EncodePingFrame(9));
  ASSERT_OK_AND_ASSIGN(Frame pong, conn.ReadFrame());
  EXPECT_EQ(pong.header.opcode, static_cast<uint8_t>(Opcode::kPong));
  server.Stop();
}

TEST_F(NetServerTest, ZeroCreditRejectedLateCreditTolerated) {
  Server server(storage_.get(), Options());
  ASSERT_OK(server.Start());
  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());

  // A zero-credit grant fails decode (credit underflow at the frame
  // boundary) and is answered as an invalid request.
  conn.Send(EncodeExchangeCreditFrame(11, ExchangeCreditMessage{5, 0}));
  ASSERT_OK_AND_ASSIGN(Frame reply, conn.ReadFrame());
  EXPECT_EQ(reply.header.opcode, static_cast<uint8_t>(Opcode::kError));
  ASSERT_OK_AND_ASSIGN(ErrorMessage error, DecodeError(reply.body));
  EXPECT_EQ(error.code, WireError::kInvalidRequest);

  // A well-formed credit for a fragment that no longer exists is the
  // grant-after-teardown race: silently counted, never an error. The pong
  // that follows proves the server processed it and stayed healthy.
  conn.Send(EncodeExchangeCreditFrame(12, ExchangeCreditMessage{5, 1}));
  conn.Send(EncodePingFrame(13));
  ASSERT_OK_AND_ASSIGN(Frame pong, conn.ReadFrame());
  EXPECT_EQ(pong.header.opcode, static_cast<uint8_t>(Opcode::kPong));
  EXPECT_EQ(pong.header.request_id, 13u);
  EXPECT_EQ(server.counters().exchange_unknown.load(), 1u);
  server.Stop();
}

TEST_F(NetServerTest, MalformedFragmentRejectedWithoutDroppingConnection) {
  Server server(storage_.get(), Options());
  ASSERT_OK(server.Start());
  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());

  // A kFragment frame whose body is garbage: decode fails, the server
  // answers kInvalidRequest, framing survives.
  FragmentRequest fragment;
  fragment.text = "restrict(alpha, k1000 < 10)";
  std::string frame = EncodeFragmentFrame(21, fragment);
  frame.resize(frame.size() - 3);  // Truncate the body...
  frame[8] = static_cast<char>(frame.size() - 16);  // ...and re-fit the len.
  frame[9] = frame[10] = frame[11] = 0;
  conn.Send(frame);
  ASSERT_OK_AND_ASSIGN(Frame reply, conn.ReadFrame());
  EXPECT_EQ(reply.header.opcode, static_cast<uint8_t>(Opcode::kError));
  ASSERT_OK_AND_ASSIGN(ErrorMessage error, DecodeError(reply.body));
  EXPECT_EQ(error.code, WireError::kInvalidRequest);

  conn.Send(EncodePingFrame(22));
  ASSERT_OK_AND_ASSIGN(Frame pong, conn.ReadFrame());
  EXPECT_EQ(pong.header.opcode, static_cast<uint8_t>(Opcode::kPong));
  server.Stop();
}

TEST_F(NetServerTest, StartTwiceFailsCleanly) {
  Server server(storage_.get(), Options());
  ASSERT_OK(server.Start());
  EXPECT_TRUE(server.Start().IsFailedPrecondition());
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace dfdb

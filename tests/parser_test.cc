/// \file parser_test.cc
/// \brief Tests for the RAQL parser: structure, predicates, errors, and an
/// end-to-end parse -> analyze -> execute round trip.

#include "ra/parser.h"

#include <gtest/gtest.h>

#include "engine/reference.h"
#include "ra/analyzer.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

TEST(ParserTest, BareIdentifierIsScan) {
  ASSERT_OK_AND_ASSIGN(PlanNodePtr q, ParseQuery("orders"));
  EXPECT_EQ(q->op, PlanOp::kScan);
  EXPECT_EQ(q->relation, "orders");
}

TEST(ParserTest, RestrictWithPredicate) {
  ASSERT_OK_AND_ASSIGN(PlanNodePtr q,
                       ParseQuery("restrict(r01, k1000 < 100 and k2 = 1)"));
  EXPECT_EQ(q->op, PlanOp::kRestrict);
  EXPECT_EQ(q->child(0).op, PlanOp::kScan);
  EXPECT_EQ(q->predicate->ToString(), "((k1000 < 100) AND (k2 = 1))");
}

TEST(ParserTest, ProjectPlainAndDedup) {
  ASSERT_OK_AND_ASSIGN(PlanNodePtr plain,
                       ParseQuery("project(r01, [k100, val])"));
  EXPECT_EQ(plain->op, PlanOp::kProject);
  EXPECT_EQ(plain->columns, (std::vector<std::string>{"k100", "val"}));
  EXPECT_FALSE(plain->dedup);
  ASSERT_OK_AND_ASSIGN(PlanNodePtr dd,
                       ParseQuery("project(r01, [k100], dedup)"));
  EXPECT_TRUE(dd->dedup);
}

TEST(ParserTest, JoinWithRightColumns) {
  ASSERT_OK_AND_ASSIGN(
      PlanNodePtr q,
      ParseQuery("join(restrict(r01, k1000 < 100), r06, "
                 "k100 = right.k100)"));
  EXPECT_EQ(q->op, PlanOp::kJoin);
  EXPECT_EQ(q->num_children(), 2);
  EXPECT_EQ(q->predicate->ToString(), "(k100 = right.k100)");
  EXPECT_TRUE(q->predicate->ReferencesRight());
}

TEST(ParserTest, UnionAndDiff) {
  ASSERT_OK_AND_ASSIGN(PlanNodePtr set_union, ParseQuery("union(a, b)"));
  EXPECT_EQ(set_union->op, PlanOp::kUnion);
  EXPECT_FALSE(set_union->bag_semantics);
  ASSERT_OK_AND_ASSIGN(PlanNodePtr bag_union, ParseQuery("union(a, b, bag)"));
  EXPECT_TRUE(bag_union->bag_semantics);
  ASSERT_OK_AND_ASSIGN(PlanNodePtr diff, ParseQuery("diff(a, b)"));
  EXPECT_EQ(diff->op, PlanOp::kDifference);
}

TEST(ParserTest, Aggregate) {
  ASSERT_OK_AND_ASSIGN(
      PlanNodePtr q,
      ParseQuery("agg(r01, [k10], [count() as n, sum(k1000) as total, "
                 "avg(val) as m])"));
  EXPECT_EQ(q->op, PlanOp::kAggregate);
  EXPECT_EQ(q->columns, std::vector<std::string>{"k10"});
  ASSERT_EQ(q->aggregates.size(), 3u);
  EXPECT_EQ(q->aggregates[0].func, AggregateSpec::Func::kCount);
  EXPECT_EQ(q->aggregates[0].output_name, "n");
  EXPECT_EQ(q->aggregates[1].func, AggregateSpec::Func::kSum);
  EXPECT_EQ(q->aggregates[1].column, "k1000");
  EXPECT_EQ(q->aggregates[2].func, AggregateSpec::Func::kAvg);
  // Empty group-by.
  ASSERT_OK_AND_ASSIGN(PlanNodePtr global,
                       ParseQuery("agg(r01, [], [count() as n])"));
  EXPECT_TRUE(global->columns.empty());
}

TEST(ParserTest, AppendAndDelete) {
  ASSERT_OK_AND_ASSIGN(PlanNodePtr app,
                       ParseQuery("append(restrict(a, k2 = 0), archive)"));
  EXPECT_EQ(app->op, PlanOp::kAppend);
  EXPECT_EQ(app->relation, "archive");
  ASSERT_OK_AND_ASSIGN(PlanNodePtr del,
                       ParseQuery("delete(archive, k1000 >= 500)"));
  EXPECT_EQ(del->op, PlanOp::kDelete);
  EXPECT_EQ(del->relation, "archive");
  EXPECT_EQ(del->predicate->ToString(), "(k1000 >= 500)");
}

TEST(ParserTest, PredicateGrammar) {
  ASSERT_OK_AND_ASSIGN(
      ExprPtr p, ParsePredicate("not (a < 3 or b >= 2) and c != 'xy'"));
  EXPECT_EQ(p->ToString(), "(NOT ((a < 3) OR (b >= 2)) AND (c != xy))");
  ASSERT_OK_AND_ASSIGN(ExprPtr arith,
                       ParsePredicate("a + b * 2 - 1 = c / 4"));
  EXPECT_EQ(arith->ToString(), "(((a + (b * 2)) - 1) = (c / 4))");
  ASSERT_OK_AND_ASSIGN(ExprPtr neg, ParsePredicate("a = -5"));
  EXPECT_EQ(neg->ToString(), "(a = -5)");
  ASSERT_OK_AND_ASSIGN(ExprPtr fl, ParsePredicate("val < 0.25"));
  EXPECT_EQ(fl->ToString(), "(val < 0.25)");
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto r1 = ParseQuery("restrict(r01 k2 = 1)");
  EXPECT_TRUE(r1.status().IsInvalidArgument());
  EXPECT_NE(r1.status().message().find("parse error at"), std::string::npos);
  EXPECT_FALSE(ParseQuery("frobnicate(a, b)").ok());
  EXPECT_FALSE(ParseQuery("restrict(a, )").ok());
  EXPECT_FALSE(ParseQuery("join(a, b)").ok());              // Missing pred.
  EXPECT_FALSE(ParseQuery("project(a, [k1,])").ok());       // Trailing comma.
  EXPECT_FALSE(ParseQuery("restrict(a, x = 'open").ok());   // Bad string.
  EXPECT_FALSE(ParseQuery("a b").ok());                     // Trailing junk.
  EXPECT_FALSE(ParseQuery("agg(a, [k1], [median(x) as m])").ok());
  EXPECT_FALSE(ParseQuery("").ok());
}

TEST(ParserTest, ParseAnalyzeExecuteRoundTrip) {
  StorageEngine storage(800);
  ASSERT_OK_AND_ASSIGN(auto a, GenerateRelation(&storage, "events", 400, 3));
  ASSERT_OK_AND_ASSIGN(auto b, GenerateRelation(&storage, "users", 100, 4));
  (void)a;
  (void)b;
  ASSERT_OK_AND_ASSIGN(
      PlanNodePtr parsed,
      ParseQuery("join(restrict(events, k1000 < 300), "
                 "restrict(users, k1000 < 500), k100 = right.k100)"));
  // Identical hand-built tree.
  auto manual =
      MakeJoin(MakeRestrict(MakeScan("events"), Lt(Col("k1000"), Lit(300))),
               MakeRestrict(MakeScan("users"), Lt(Col("k1000"), Lit(500))),
               Eq(Col("k100"), RightCol("k100")));
  ReferenceExecutor reference(&storage);
  ASSERT_OK_AND_ASSIGN(QueryResult from_text, reference.Execute(*parsed));
  ASSERT_OK_AND_ASSIGN(QueryResult from_code, reference.Execute(*manual));
  testing::ExpectSameResult(from_code, from_text);
  EXPECT_GT(from_text.num_tuples(), 0u);
}

}  // namespace
}  // namespace dfdb

/// \file pipeline_fusion_test.cc
/// \brief Differential tests locking down pipelined operator fusion.
///
/// Three layers, mirroring expr_compile_test's compiled-vs-interpreted
/// contract one level up:
///
///  1. kernel — a FusedPipeline program over raw tuple bytes must be
///     byte-identical to an independent per-step oracle (interpreted
///     predicates + manual byte-range projection);
///  2. engine — seeded random plans executed with PipelinePolicy::kForceFuse
///     must produce byte-identical pages, boundaries and order as
///     kForceMaterialize (the pre-fusion baseline) on a single worker;
///  3. simulator — folded restricts must leave every query's result bag
///     unchanged while eliding instruction traffic, and the ten-query mix's
///     pipeline counters must export byte-identical JSON across runs.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/run.h"
#include "machine/simulator.h"
#include "operators/kernels.h"
#include "ra/expr_compile.h"
#include "ra/optimizer.h"
#include "storage/tuple.h"
#include "tests/test_util.h"
#include "workload/generator.h"
#include "workload/paper_benchmark.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;
using ::dfdb::testing::ResultMultiset;

// ---------------------------------------------------------------------------
// Kernel level: FusedPipeline vs an independent per-step oracle
// ---------------------------------------------------------------------------

Schema RandomSchema(Random* rng) {
  const int n = 2 + static_cast<int>(rng->Uniform(4));
  std::vector<Column> cols;
  for (int i = 0; i < n; ++i) {
    // Two-step append (not `"c" + std::to_string(i)`): the rvalue
    // operator+ trips a gcc-12 -Werror=restrict false positive at -O2.
    std::string name = "c";
    name += std::to_string(i);
    switch (rng->Uniform(3)) {
      case 0:
        cols.push_back(Column::Int32(name));
        break;
      case 1:
        cols.push_back(Column::Int64(name));
        break;
      default:
        cols.push_back(
            Column::Char(name, 1 + static_cast<int>(rng->Uniform(6))));
        break;
    }
  }
  return Schema::CreateOrDie(cols);
}

PagePtr RandomPage(const Schema& schema, Random* rng, int n) {
  auto page = Page::Create(0, schema.tuple_width(), schema.tuple_width() * n);
  EXPECT_TRUE(page.ok());
  for (int i = 0; i < n; ++i) {
    std::vector<Value> values;
    for (const Column& col : schema.columns()) {
      switch (col.type) {
        case ColumnType::kInt32:
          values.push_back(
              Value::Int32(static_cast<int32_t>(rng->Uniform(8)) - 2));
          break;
        case ColumnType::kInt64:
          values.push_back(
              Value::Int64(static_cast<int64_t>(rng->Uniform(8)) - 2));
          break;
        default: {
          std::string s;
          const int len = static_cast<int>(
              rng->Uniform(static_cast<uint64_t>(col.width) + 1));
          for (int k = 0; k < len; ++k) {
            s.push_back(static_cast<char>('a' + rng->Uniform(3)));
          }
          values.push_back(Value::Char(s));
          break;
        }
      }
    }
    auto tuple = EncodeTuple(schema, values);
    EXPECT_TRUE(tuple.ok()) << tuple.status();
    EXPECT_TRUE(page->Append(Slice(*tuple)).ok());
  }
  return SealPage(std::move(*page));
}

/// A compilable single compare over a random integer column (falls back to
/// the first column if none is integer — then compilation may refuse and
/// the caller skips the step).
ExprPtr RandomIntCompare(const Schema& schema, Random* rng) {
  std::vector<int> int_cols;
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (schema.column(i).type != ColumnType::kChar) int_cols.push_back(i);
  }
  const int col = int_cols.empty()
                      ? 0
                      : int_cols[rng->Uniform(int_cols.size())];
  ExprPtr lhs = Col(schema.column(col).name);
  ExprPtr rhs = Lit(static_cast<int32_t>(rng->Uniform(8)) - 2);
  switch (rng->Uniform(4)) {
    case 0:
      return Eq(std::move(lhs), std::move(rhs));
    case 1:
      return Ne(std::move(lhs), std::move(rhs));
    case 2:
      return Lt(std::move(lhs), std::move(rhs));
    default:
      return Ge(std::move(lhs), std::move(rhs));
  }
}

TEST(FusedPipelineKernel, MatchesPerStepOracleByteForByte) {
  Random rng(29);
  int chains = 0;
  int nontrivial = 0;
  for (int iter = 0; iter < 300; ++iter) {
    Schema schema = RandomSchema(&rng);
    const PagePtr page = RandomPage(schema, &rng, 40);

    // Oracle state: the surviving tuples, re-projected step by step.
    std::vector<std::string> oracle;
    for (int i = 0; i < page->num_tuples(); ++i) {
      oracle.push_back(page->tuple(i).ToString());
    }

    FusedPipeline fp(schema.tuple_width());
    Schema cur = schema;
    const int steps = 1 + static_cast<int>(rng.Uniform(4));
    bool ok = true;
    for (int s = 0; s < steps && ok; ++s) {
      if (rng.Uniform(2) == 0) {
        ExprPtr pred = RandomIntCompare(cur, &rng);
        if (!pred->Bind(cur, nullptr).ok()) continue;
        auto compiled = CompiledPredicate::Compile(*pred, cur);
        if (!compiled.ok()) continue;  // CHAR-only schema: skip the step.
        fp.AddFilter(*compiled);
        std::vector<std::string> kept;
        for (const std::string& t : oracle) {
          TupleView view(&cur, Slice(t));
          auto want = pred->EvalBool(view, nullptr);
          ASSERT_TRUE(want.ok()) << want.status();
          if (*want) kept.push_back(t);
        }
        oracle = std::move(kept);
      } else {
        // Random non-empty ordered subset of the current columns.
        std::vector<int> indices;
        for (int c = 0; c < cur.num_columns(); ++c) {
          if (rng.Uniform(2) == 0) indices.push_back(c);
        }
        if (indices.empty()) {
          indices.push_back(static_cast<int>(rng.Uniform(
              static_cast<uint64_t>(cur.num_columns()))));
        }
        fp.AddProject(cur, indices);
        std::vector<std::string> projected;
        for (const std::string& t : oracle) {
          std::string out;
          for (int c : indices) {
            out.append(t.data() + cur.offset(c),
                       static_cast<size_t>(cur.column(c).width));
          }
          projected.push_back(std::move(out));
        }
        oracle = std::move(projected);
        std::vector<Column> cols;
        for (int c : indices) cols.push_back(cur.column(c));
        cur = Schema::CreateOrDie(cols);
      }
    }
    if (fp.empty()) continue;
    ++chains;
    if (fp.num_steps() >= 2) ++nontrivial;
    ASSERT_EQ(fp.output_width(), cur.tuple_width());

    VectorSink sink;
    KernelStats stats;
    ASSERT_OK(RunFusedPipeline(fp, *page, &sink, &stats));
    EXPECT_EQ(sink.tuples(), oracle) << "chain of " << fp.num_steps()
                                     << " steps, iter " << iter;
    EXPECT_EQ(stats.compiled_pages.load(), 1u);
  }
  EXPECT_GT(chains, 150);
  EXPECT_GT(nontrivial, 60);
}

// ---------------------------------------------------------------------------
// Engine level: kForceFuse vs kForceMaterialize, byte-identical
// ---------------------------------------------------------------------------

/// Serializes a result preserving page boundaries and order: fusion must
/// not only keep the tuple bag, it must keep the exact page packing.
std::vector<std::string> PagesExact(const QueryResult& result) {
  std::vector<std::string> pages;
  for (const PagePtr& page : result.pages()) {
    std::string p;
    for (int i = 0; i < page->num_tuples(); ++i) {
      p += page->tuple(i).ToString();
    }
    pages.push_back(std::move(p));
  }
  return pages;
}

class PipelineFusionEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(2000);
    ASSERT_OK_AND_ASSIGN(auto big,
                         GenerateRelation(storage_.get(), "big", 800, 1));
    ASSERT_OK_AND_ASSIGN(auto small,
                         GenerateRelation(storage_.get(), "small", 100, 2));
    (void)big;
    (void)small;
  }

  /// Executes \p plan under \p policy on one worker (deterministic task
  /// order, so fused and materialized runs are comparable byte for byte).
  QueryResult Run(const PlanNode& plan, PipelinePolicy policy,
                  ExecStats* stats) {
    ExecOptions opts;
    opts.num_processors = 1;
    opts.page_bytes = 1000;
    opts.pipeline = policy;
    auto result = RunQuery(storage_.get(), plan, opts, stats);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? *std::move(result) : QueryResult{};
  }

  std::unique_ptr<StorageEngine> storage_;
};

/// Random restrict/project/join plans over the benchmark schema. Predicates
/// are k-column compares, always compilable, so fusion opportunities are
/// dense; dedup projects are mixed in to exercise the refuse path.
PlanNodePtr RandomChain(const char* relation, Random* rng, int depth) {
  PlanNodePtr plan = MakeScan(relation);
  static const char* kCols[] = {"k10", "k25", "k100", "k1000"};
  static const int kDomains[] = {10, 25, 100, 1000};
  for (int d = 0; d < depth; ++d) {
    const size_t c = rng->Uniform(4);
    // Keep selectivities loose so joins above still see rows.
    const int32_t lit =
        static_cast<int32_t>(rng->Uniform(static_cast<uint64_t>(kDomains[c])));
    ExprPtr pred = rng->Uniform(2) == 0 ? Lt(Col(kCols[c]), Lit(lit))
                                        : Ge(Col(kCols[c]), Lit(lit));
    plan = MakeRestrict(std::move(plan), std::move(pred));
  }
  return plan;
}

TEST_F(PipelineFusionEngineTest, DifferentialFuzzFusedEqualsMaterialized) {
  Random rng(17);
  uint64_t total_fused_edges = 0;
  uint64_t total_fused_pages = 0;
  for (int iter = 0; iter < 40; ++iter) {
    PlanNodePtr plan;
    // Unary chains are order-preserving, so fused and materialized runs
    // must agree byte for byte including page boundaries. Join outputs
    // depend on the order probe pages reach the join task, which fusion
    // legitimately changes; those compare as multisets.
    bool order_preserving = false;
    switch (rng.Uniform(4)) {
      case 0:
        order_preserving = true;
        // Pure unary chain (collapses into one fused program).
        plan = RandomChain(rng.Uniform(2) == 0 ? "big" : "small", &rng,
                           1 + static_cast<int>(rng.Uniform(3)));
        if (rng.Uniform(2) == 0) {
          plan = MakeProject(std::move(plan), {"id", "k100", "k1000"});
        }
        break;
      case 1:
        // Restrict chains feeding a join (direct-delivery edges).
        plan = MakeJoin(RandomChain("big", &rng, 1 + rng.Uniform(2)),
                        RandomChain("small", &rng, 1),
                        Eq(Col("k100"), RightCol("k100")));
        break;
      case 2:
        // Join with a unary chain above it.
        plan = MakeRestrict(
            MakeJoin(RandomChain("big", &rng, 1),
                     RandomChain("small", &rng, 1),
                     Eq(Col("k10"), RightCol("k10"))),
            Lt(Col("k1000"), Lit(500)));
        break;
      default:
        // Dedup project consumer: fusion must refuse, results must agree.
        order_preserving = true;
        plan = MakeProject(RandomChain("big", &rng, 2), {"k10", "k25"});
        plan->dedup = true;
        break;
    }

    ExecStats mat_stats, fuse_stats;
    QueryResult materialized =
        Run(*plan, PipelinePolicy::kForceMaterialize, &mat_stats);
    QueryResult fused = Run(*plan, PipelinePolicy::kForceFuse, &fuse_stats);

    SCOPED_TRACE("iter " + std::to_string(iter));
    EXPECT_EQ(materialized.num_tuples(), fused.num_tuples());
    if (order_preserving) {
      EXPECT_EQ(PagesExact(materialized), PagesExact(fused));
    } else {
      EXPECT_EQ(ResultMultiset(materialized), ResultMultiset(fused));
    }
    EXPECT_EQ(mat_stats.pipeline_fused_edges, 0u);
    total_fused_edges += fuse_stats.pipeline_fused_edges;
    total_fused_pages += fuse_stats.pipeline_fused_pages;
  }
  // The fuzz must have actually exercised fusion, heavily.
  EXPECT_GT(total_fused_edges, 20u);
  EXPECT_GT(total_fused_pages, 40u);
}

TEST_F(PipelineFusionEngineTest, HonorsOptimizerMarks) {
  // kHonorPlan fuses exactly the edges DecidePipelining marked.
  auto plan = MakeJoin(
      MakeRestrict(MakeScan("big"), Lt(Col("k1000"), Lit(200))),
      MakeRestrict(MakeScan("small"), Ge(Col("k10"), Lit(2))),
      Eq(Col("k100"), RightCol("k100")));
  Optimizer optimizer(&storage_->catalog());
  OptimizerReport report;
  ASSERT_OK_AND_ASSIGN(PlanNodePtr optimized,
                       optimizer.Optimize(*plan, &report));
  ASSERT_GE(report.edges_fused, 1) << report.ToString();

  ExecStats honor_stats, mat_stats;
  QueryResult honored =
      Run(*optimized, PipelinePolicy::kHonorPlan, &honor_stats);
  QueryResult materialized =
      Run(*optimized, PipelinePolicy::kForceMaterialize, &mat_stats);
  EXPECT_EQ(ResultMultiset(honored), ResultMultiset(materialized));
  EXPECT_EQ(honor_stats.pipeline_fused_edges,
            static_cast<uint64_t>(report.edges_fused));
  EXPECT_GT(honor_stats.pipeline_pages_elided, 0u);
  EXPECT_EQ(mat_stats.pipeline_fused_edges, 0u);
}

TEST_F(PipelineFusionEngineTest, UnmarkedPlanRunsFullyMaterialized) {
  // kHonorPlan on a plan nobody marked must not fuse anything.
  auto plan = MakeJoin(
      MakeRestrict(MakeScan("big"), Lt(Col("k1000"), Lit(300))),
      MakeScan("small"), Eq(Col("k100"), RightCol("k100")));
  ExecStats stats;
  QueryResult result = Run(*plan, PipelinePolicy::kHonorPlan, &stats);
  EXPECT_GT(result.num_tuples(), 0u);
  EXPECT_EQ(stats.pipeline_fused_edges, 0u);
  EXPECT_GT(stats.pipeline_materialized_edges, 0u);
}

// ---------------------------------------------------------------------------
// Simulator level: folded restricts keep results, elide traffic
// ---------------------------------------------------------------------------

TEST(PipelineFusionSimulator, FusedEqualsMaterializedAndElidesTraffic) {
  StorageEngine storage(2000);
  ASSERT_OK_AND_ASSIGN(auto big, GenerateRelation(&storage, "big", 600, 1));
  ASSERT_OK_AND_ASSIGN(auto small,
                       GenerateRelation(&storage, "small", 120, 2));
  (void)big;
  (void)small;

  auto q0 = MakeJoin(MakeRestrict(MakeScan("big"), Lt(Col("k1000"), Lit(250))),
                     MakeRestrict(MakeScan("small"), Ge(Col("k10"), Lit(3))),
                     Eq(Col("k100"), RightCol("k100")));
  auto q1 = MakeProject(
      MakeRestrict(MakeScan("big"), Lt(Col("k100"), Lit(40))),
      {"id", "k100"});
  auto q2 = MakeRestrict(MakeScan("small"), Lt(Col("k1000"), Lit(700)));
  std::vector<const PlanNode*> queries{q0.get(), q1.get(), q2.get()};

  MachineOptions materialize;
  materialize.pipeline = PipelinePolicy::kForceMaterialize;
  MachineSimulator mat_sim(&storage, materialize);
  ASSERT_OK_AND_ASSIGN(MachineReport mat, mat_sim.Run(queries));

  MachineOptions fuse;
  fuse.pipeline = PipelinePolicy::kForceFuse;
  MachineSimulator fuse_sim(&storage, fuse);
  ASSERT_OK_AND_ASSIGN(MachineReport fused, fuse_sim.Run(queries));

  ASSERT_EQ(mat.results.size(), fused.results.size());
  for (size_t qi = 0; qi < mat.results.size(); ++qi) {
    SCOPED_TRACE("query " + std::to_string(qi));
    ExpectSameResult(mat.results[qi], fused.results[qi]);
  }
  EXPECT_EQ(mat.pipeline_fused_edges, 0u);
  // q0 folds both restricts; q1 folds one. q2's restrict is the root, so it
  // stays an instruction even under kForceFuse.
  EXPECT_EQ(fused.pipeline_fused_edges, 3u);
  EXPECT_GT(fused.pipeline_fused_pages, 0u);
  EXPECT_GT(fused.pipeline_pages_elided, 0u);
  // The folded restricts' instruction packets and result transfers are
  // gone, so the fused machine strictly does less ring work and finishes
  // no later.
  EXPECT_LT(fused.instruction_packets + fused.result_packets,
            mat.instruction_packets + mat.result_packets);
  EXPECT_LE(fused.makespan.nanos(), mat.makespan.nanos());
}

TEST(PipelineFusionSimulator, MarkedProjectEdgeFallsBack) {
  // The simulator only folds restrict-over-base producers; a marked project
  // edge must materialize and count a fallback rather than misexecute.
  StorageEngine storage(2000);
  ASSERT_OK_AND_ASSIGN(auto big, GenerateRelation(&storage, "big", 200, 1));
  (void)big;
  auto plan = MakeRestrict(
      MakeProject(MakeScan("big"), {"id", "k100", "k1000"}),
      Lt(Col("k1000"), Lit(500)));
  ASSERT_EQ(plan->child(0).op, PlanOp::kProject);
  plan->children[0]->pipeline_fused = true;

  MachineOptions opts;  // kHonorPlan.
  MachineSimulator sim(&storage, opts);
  std::vector<const PlanNode*> queries{plan.get()};
  ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run(queries));
  EXPECT_EQ(report.pipeline_fused_edges, 0u);
  EXPECT_EQ(report.pipeline_runtime_fallbacks, 1u);
  EXPECT_GT(report.results[0].num_tuples(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism golden: ten-query mix, byte-identical pipeline counters
// ---------------------------------------------------------------------------

TEST(PipelineFusionDeterminism, TenQueryCountersExportIdentically) {
  StorageEngine storage(4096);
  ASSERT_OK_AND_ASSIGN(int64_t bytes, BuildPaperDatabase(&storage, 0.05, 42));
  (void)bytes;
  Optimizer optimizer(&storage.catalog());
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<PlanNodePtr> optimized;
  int marked_edges = 0;
  for (const Query& q : queries) {
    OptimizerReport report;
    ASSERT_OK_AND_ASSIGN(PlanNodePtr plan, optimizer.Optimize(*q.root, &report));
    marked_edges += report.edges_fused;
    optimized.push_back(std::move(plan));
  }
  // The paper mix has restrict->join edges in Q3..Q10; the optimizer must
  // find fusion work in it.
  EXPECT_GT(marked_edges, 0);
  std::vector<const PlanNode*> plans;
  for (const PlanNodePtr& p : optimized) plans.push_back(p.get());

  // Simulator: two runs, whole reports byte-identical including the
  // machine.pipeline.* family.
  MachineOptions mopts;
  std::string sim_json[2];
  for (int run = 0; run < 2; ++run) {
    MachineSimulator sim(&storage, mopts);
    ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run(plans));
    EXPECT_GT(report.pipeline_fused_edges, 0u);
    sim_json[run] = report.ToReport().ToJson(/*include_timing=*/false);
  }
  EXPECT_EQ(sim_json[0], sim_json[1]);
  EXPECT_NE(sim_json[0].find("machine.pipeline.fused_edges"),
            std::string::npos);

  // Engine: one worker for a deterministic task order; two runs export
  // byte-identical counters including engine.pipeline.*.
  ExecOptions eopts;
  eopts.num_processors = 1;
  std::string engine_json[2];
  for (int run = 0; run < 2; ++run) {
    ExecStats stats;
    auto results = RunBatch(&storage, plans, eopts, &stats);
    ASSERT_TRUE(results.ok()) << results.status();
    EXPECT_GT(stats.pipeline_fused_edges, 0u);
    engine_json[run] = stats.ToReport().ToJson(/*include_timing=*/false);
  }
  EXPECT_EQ(engine_json[0], engine_json[1]);
  EXPECT_NE(engine_json[0].find("engine.pipeline.fused_edges"),
            std::string::npos);
}

}  // namespace
}  // namespace dfdb

/// \file failure_test.cc
/// \brief Failure injection: runtime errors inside operators must fail the
/// query cleanly — correct Status out, no hangs, no crashes — on every
/// executor.

#include <gtest/gtest.h>

#include "engine/run.h"
#include "engine/reference.h"
#include "machine/simulator.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(500);
    ASSERT_OK_AND_ASSIGN(auto r, GenerateRelation(storage_.get(), "r", 200, 1));
    ASSERT_OK_AND_ASSIGN(auto s, GenerateRelation(storage_.get(), "s", 80, 2));
    (void)r;
    (void)s;
  }

  ExecOptions Opts(int procs = 4) {
    ExecOptions o;
    o.num_processors = procs;
    o.page_bytes = 500;
    return o;
  }

  std::unique_ptr<StorageEngine> storage_;
};

/// A predicate that divides by zero for some tuples: analyzes fine, blows
/// up at execution time.
PlanNodePtr DivByZeroPlan() {
  // k2 is 0 for roughly half the tuples: 1 / k2 faults at runtime.
  return MakeRestrict(MakeScan("r"),
                      Gt(Div(Lit(1), Col("k2")), Lit(0)));
}

TEST_F(FailureTest, RuntimePredicateErrorFailsEngineCleanly) {
  auto result = RunQuery(storage_.get(), *DivByZeroPlan(), Opts());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
  EXPECT_NE(result.status().message().find("division by zero"),
            std::string::npos);
  // Storage stays usable after a failed query.
  auto ok = RunQuery(storage_.get(), *MakeScan("r"), Opts());
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST_F(FailureTest, RuntimePredicateErrorFailsReference) {
  ReferenceExecutor reference(storage_.get());
  auto result = reference.Execute(*DivByZeroPlan());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(FailureTest, RuntimePredicateErrorFailsSimulator) {
  MachineOptions opts;
  opts.config.num_instruction_processors = 4;
  opts.config.page_bytes = 500;
  MachineSimulator sim(storage_.get(), opts);
  auto result = sim.Run({DivByZeroPlan().get()});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(FailureTest, RuntimeErrorInsideJoinTerminatesBatch) {
  // The faulting predicate sits on the join, deep in the pipeline; the
  // other (healthy) query of the batch must not be reported as a result.
  auto bad = MakeJoin(MakeScan("r"), MakeScan("s"),
                      Gt(Div(Lit(1), Col("k2")), Lit(0)));
  auto good = MakeRestrict(MakeScan("s"), Lt(Col("k1000"), Lit(500)));
  auto results = RunBatch(storage_.get(), {bad.get(), good.get()}, Opts());
  ASSERT_FALSE(results.ok());
  EXPECT_TRUE(results.status().IsInvalidArgument());
}

TEST_F(FailureTest, CharPredicateErrorSurfacesFromAllGranularities) {
  // A CHAR column used as a boolean fails EvalBool at runtime.
  auto plan = MakeRestrict(MakeScan("r"), Col("pad"));
  for (Granularity g :
       {Granularity::kPage, Granularity::kRelation, Granularity::kTuple}) {
    ExecOptions o = Opts();
    o.granularity = g;
    auto result = RunQuery(storage_.get(), *plan, o);
    ASSERT_FALSE(result.ok()) << GranularityToString(g);
    EXPECT_TRUE(result.status().IsInvalidArgument());
  }
}

TEST_F(FailureTest, AppendTargetDroppedBeforeExecution) {
  ASSERT_OK_AND_ASSIGN(auto victim,
                       storage_->CreateRelation("victim", BenchmarkSchema()));
  (void)victim;
  auto plan = MakeAppend(MakeScan("r"), "victim");
  ASSERT_OK(storage_->DropRelation("victim"));
  auto result = RunQuery(storage_.get(), *plan, Opts());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(FailureTest, EmptyRelationFlowsThroughEverything) {
  ASSERT_OK_AND_ASSIGN(auto empty,
                       storage_->CreateRelation("empty", BenchmarkSchema()));
  (void)empty;
  auto plan = MakeJoin(
      MakeScan("empty"),
      MakeRestrict(MakeScan("r"), Lt(Col("k1000"), Lit(100))),
      Eq(Col("k100"), RightCol("k100")));
  ASSERT_OK_AND_ASSIGN(QueryResult er,
                       RunQuery(storage_.get(), *plan, Opts()));
  EXPECT_EQ(er.num_tuples(), 0u);
  MachineOptions mopts;
  mopts.config.page_bytes = 500;
  MachineSimulator sim(storage_.get(), mopts);
  ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run({plan.get()}));
  EXPECT_EQ(report.results[0].num_tuples(), 0u);
}

TEST_F(FailureTest, SingleTupleRelation) {
  ASSERT_OK_AND_ASSIGN(auto one, GenerateRelation(storage_.get(), "one", 1, 9));
  (void)one;
  auto plan = MakeJoin(MakeScan("one"), MakeScan("one"),
                       Eq(Col("id"), RightCol("id")));
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       RunQuery(storage_.get(), *plan, Opts(1)));
  EXPECT_EQ(result.num_tuples(), 1u);
}

TEST_F(FailureTest, SimulatorZeroIpConfigCaught) {
  // Degenerate hardware configs must not hang: 1 IP, 1 IC, 1-page memories.
  MachineOptions opts;
  opts.config.num_instruction_processors = 1;
  opts.config.num_instruction_controllers = 1;
  opts.config.ic_local_memory_pages = 1;
  opts.config.disk_cache_pages = 1;
  opts.config.num_disk_drives = 1;
  opts.config.page_bytes = 500;
  MachineSimulator sim(storage_.get(), opts);
  auto plan = MakeJoin(MakeScan("r"), MakeScan("s"),
                       Eq(Col("k100"), RightCol("k100")));
  ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run({plan.get()}));
  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*plan));
  testing::ExpectSameResult(expected, report.results[0]);
}

}  // namespace
}  // namespace dfdb

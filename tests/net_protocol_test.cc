/// \file net_protocol_test.cc
/// \brief Wire-protocol robustness: round-trips, truncation, corruption.
///
/// The decoders must be *total*: any byte string either decodes or returns
/// a Status — never crashes, never over-reads. The fuzz-style cases drive
/// that with deterministic seeded mutations.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "tests/test_util.h"

namespace dfdb {
namespace net {
namespace {

/// Feeds \p bytes into a FrameReader in chunks of \p chunk and collects
/// every complete frame (stopping at the first error).
StatusOr<std::vector<Frame>> ReadAll(const std::string& bytes, size_t chunk) {
  FrameReader reader;
  std::vector<Frame> frames;
  for (size_t off = 0; off < bytes.size(); off += chunk) {
    const size_t n = std::min(chunk, bytes.size() - off);
    reader.Append(bytes.data() + off, n);
    for (;;) {
      DFDB_ASSIGN_OR_RETURN(auto next, reader.Next());
      if (!next.has_value()) break;
      frames.push_back(*std::move(next));
    }
  }
  return frames;
}

TEST(NetProtocolTest, QueryRoundTrip) {
  QueryRequest query;
  query.deadline_ms = 1500;
  query.text = "restrict(r01, k1000 < 100)";
  const std::string frame = EncodeQueryFrame(7, query);

  ASSERT_OK_AND_ASSIGN(auto frames, ReadAll(frame, frame.size()));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.opcode, static_cast<uint8_t>(Opcode::kQuery));
  EXPECT_EQ(frames[0].header.request_id, 7u);
  ASSERT_OK_AND_ASSIGN(QueryRequest out, DecodeQuery(frames[0].body));
  EXPECT_EQ(out.deadline_ms, 1500u);
  EXPECT_EQ(out.text, query.text);
}

TEST(NetProtocolTest, SchemaRoundTrip) {
  const Schema schema = Schema::CreateOrDie(
      {Column::Int32("id"), Column::Int64("big"), Column::Double("val"),
       Column::Char("pad", 12)});
  const std::string frame = EncodeSchemaFrame(3, schema);
  ASSERT_OK_AND_ASSIGN(auto frames, ReadAll(frame, 1));  // Byte at a time.
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_OK_AND_ASSIGN(Schema out, DecodeSchema(frames[0].body));
  EXPECT_EQ(out, schema);
  EXPECT_EQ(out.tuple_width(), schema.tuple_width());
}

TEST(NetProtocolTest, RowsStatsErrorRoundTrip) {
  RowsBatch rows;
  rows.num_tuples = 3;
  rows.tuple_width = 4;
  rows.tuples = std::string("aaaabbbbcccc", 12);
  StatsMessage stats;
  stats.total_rows = 3;
  stats.seconds = 0.25;
  stats.counters = {{"engine.packets", 17}, {"engine.tasks", 4}};
  ErrorMessage error;
  error.code = WireError::kRetryLater;
  error.message = "try later";

  const std::string wire = EncodeRowsFrame(9, rows) +
                           EncodeStatsFrame(9, stats) +
                           EncodeErrorFrame(10, error);
  ASSERT_OK_AND_ASSIGN(auto frames, ReadAll(wire, 5));
  ASSERT_EQ(frames.size(), 3u);

  ASSERT_OK_AND_ASSIGN(RowsBatch r, DecodeRows(frames[0].body));
  EXPECT_EQ(r.num_tuples, 3u);
  EXPECT_EQ(r.tuples, rows.tuples);
  ASSERT_OK_AND_ASSIGN(StatsMessage s, DecodeStats(frames[1].body));
  EXPECT_EQ(s.total_rows, 3u);
  EXPECT_DOUBLE_EQ(s.seconds, 0.25);
  EXPECT_EQ(s.counters, stats.counters);
  ASSERT_OK_AND_ASSIGN(ErrorMessage e, DecodeError(frames[2].body));
  EXPECT_EQ(e.code, WireError::kRetryLater);
  EXPECT_EQ(e.message, "try later");
  EXPECT_TRUE(WireErrorToStatus(e.code, e.message).IsResourceExhausted());
}

TEST(NetProtocolTest, PipelinedFramesSurviveArbitraryChunking) {
  std::string wire;
  for (uint32_t id = 1; id <= 20; ++id) {
    QueryRequest q;
    q.text = std::string(static_cast<size_t>(id * 7), 'q');
    wire += EncodeQueryFrame(id, q);
    wire += EncodePingFrame(id + 100);
  }
  for (size_t chunk : {1ul, 3ul, 16ul, 17ul, 1000ul, wire.size()}) {
    ASSERT_OK_AND_ASSIGN(auto frames, ReadAll(wire, chunk));
    ASSERT_EQ(frames.size(), 40u) << "chunk=" << chunk;
    EXPECT_EQ(frames[0].header.request_id, 1u);
    EXPECT_EQ(frames[39].header.request_id, 120u);
  }
}

TEST(NetProtocolTest, TruncatedFrameIsIncompleteNotError) {
  QueryRequest q;
  q.text = "project(r05, [k100], dedup)";
  const std::string frame = EncodeQueryFrame(1, q);
  // Every proper prefix must yield "need more bytes", never a frame or a
  // crash.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameReader reader;
    reader.Append(frame.data(), cut);
    ASSERT_OK_AND_ASSIGN(auto next, reader.Next());
    EXPECT_FALSE(next.has_value()) << "prefix of " << cut << " bytes";
  }
}

TEST(NetProtocolTest, OversizedLengthPrefixIsStickyError) {
  QueryRequest q;
  q.text = "x";
  std::string frame = EncodeQueryFrame(1, q);
  // Patch body_len (offset 8, little-endian u32) to a huge value.
  frame[8] = static_cast<char>(0xff);
  frame[9] = static_cast<char>(0xff);
  frame[10] = static_cast<char>(0xff);
  frame[11] = static_cast<char>(0x7f);

  FrameReader reader(/*max_frame_bytes=*/1 << 20);
  reader.Append(frame.data(), frame.size());
  auto next = reader.Next();
  ASSERT_FALSE(next.ok());
  // The error is sticky: the stream cannot be resynchronized.
  reader.Append(frame.data(), frame.size());
  EXPECT_FALSE(reader.Next().ok());
}

TEST(NetProtocolTest, BadMagicAndBadVersionAreErrors) {
  const std::string good = EncodePingFrame(1);
  {
    std::string bad = good;
    bad[0] = 'X';
    FrameReader reader;
    reader.Append(bad.data(), bad.size());
    EXPECT_FALSE(reader.Next().ok());
  }
  {
    std::string bad = good;
    bad[4] = static_cast<char>(kProtocolVersion + 1);
    FrameReader reader;
    reader.Append(bad.data(), bad.size());
    EXPECT_FALSE(reader.Next().ok());
  }
}

TEST(NetProtocolTest, UnknownOpcodeStaysFramedButIsNotKnown) {
  // An unknown opcode must not break framing: the length prefix still
  // delimits the frame, so a server can answer with kInvalidRequest and
  // keep the connection.
  std::string frame = EncodePingFrame(5);
  frame[5] = static_cast<char>(0xee);
  FrameReader reader;
  reader.Append(frame.data(), frame.size());
  ASSERT_OK_AND_ASSIGN(auto next, reader.Next());
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(IsKnownOpcode(next->header.opcode));
  // The stream stays usable for the next (valid) frame.
  const std::string pong = EncodePongFrame(6);
  reader.Append(pong.data(), pong.size());
  ASSERT_OK_AND_ASSIGN(auto next2, reader.Next());
  ASSERT_TRUE(next2.has_value());
  EXPECT_EQ(next2->header.opcode, static_cast<uint8_t>(Opcode::kPong));
}

/// Builds a representative fragment request used by the exchange tests.
FragmentRequest TestFragment() {
  FragmentRequest f;
  f.deadline_ms = 250;
  f.text = "join(__exq4, __exq5, k100 = right.k100)";
  f.output_exchange_id = 6;
  f.output_mode = ExchangeMode::kPartition;
  f.output_partitions = 3;
  f.output_key_cols = {0, 2};
  f.output_credits = 4;
  FragmentInput in;
  in.exchange_id = 4;
  in.relation = "__exq4";
  in.schema = Schema::CreateOrDie({Column::Int32("k100"), Column::Char("p", 8)});
  f.inputs.push_back(in);
  in.exchange_id = 5;
  in.relation = "__exq5";
  f.inputs.push_back(in);
  return f;
}

TEST(NetProtocolTest, ExchangeFramesRoundTrip) {
  const FragmentRequest fragment = TestFragment();
  ExchangeBatch batch;
  batch.exchange_id = 6;
  batch.partition_id = 2;
  batch.num_tuples = 3;
  batch.tuple_width = 12;
  batch.tuples = std::string(36, 'x');
  const std::string wire =
      EncodeFragmentFrame(21, fragment) + EncodeExchangeDataFrame(22, batch) +
      EncodeExchangeEofFrame(23, ExchangeEofMessage{6}) +
      EncodeExchangeCreditFrame(24, ExchangeCreditMessage{6, 2});

  ASSERT_OK_AND_ASSIGN(auto frames, ReadAll(wire, 7));
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].header.opcode, static_cast<uint8_t>(Opcode::kFragment));

  ASSERT_OK_AND_ASSIGN(FragmentRequest f, DecodeFragment(frames[0].body));
  EXPECT_EQ(f.deadline_ms, 250u);
  EXPECT_EQ(f.text, fragment.text);
  EXPECT_EQ(f.output_exchange_id, 6u);
  EXPECT_EQ(f.output_mode, ExchangeMode::kPartition);
  EXPECT_EQ(f.output_partitions, 3u);
  EXPECT_EQ(f.output_key_cols, fragment.output_key_cols);
  EXPECT_EQ(f.output_credits, 4u);
  ASSERT_EQ(f.inputs.size(), 2u);
  EXPECT_EQ(f.inputs[0].relation, "__exq4");
  EXPECT_EQ(f.inputs[1].exchange_id, 5u);
  EXPECT_EQ(f.inputs[1].schema, fragment.inputs[1].schema);

  ASSERT_OK_AND_ASSIGN(ExchangeBatch b, DecodeExchangeData(frames[1].body));
  EXPECT_EQ(b.exchange_id, 6u);
  EXPECT_EQ(b.partition_id, 2u);
  EXPECT_EQ(b.num_tuples, 3u);
  EXPECT_EQ(b.tuple_width, 12u);
  EXPECT_EQ(b.tuples, batch.tuples);

  ASSERT_OK_AND_ASSIGN(ExchangeEofMessage eof,
                       DecodeExchangeEof(frames[2].body));
  EXPECT_EQ(eof.exchange_id, 6u);
  ASSERT_OK_AND_ASSIGN(ExchangeCreditMessage credit,
                       DecodeExchangeCredit(frames[3].body));
  EXPECT_EQ(credit.exchange_id, 6u);
  EXPECT_EQ(credit.credits, 2u);
}

TEST(NetProtocolTest, FragmentDecodeRejectsCorruption) {
  const std::string body =
      EncodeFragmentFrame(1, TestFragment()).substr(kFrameHeaderBytes);
  // Every truncation point must fail cleanly, never crash or over-read.
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(DecodeFragment(body.substr(0, cut)).ok()) << "cut=" << cut;
  }
  // Trailing junk is rejected too: the decoder is exact, not prefix-based.
  EXPECT_FALSE(DecodeFragment(body + "zz").ok());
  // Body layout: u32 deadline, u32 text_len, text, u32 out_exchange,
  // u8 mode, u32 partitions. Patch the mode and partition-count fields.
  const size_t text_len = TestFragment().text.size();
  const size_t mode_off = 4 + 4 + text_len + 4;
  {
    std::string bad = body;
    bad[mode_off] = static_cast<char>(9);  // No such ExchangeMode.
    EXPECT_FALSE(DecodeFragment(bad).ok());
  }
  {
    std::string bad = body;  // Zero partitions.
    bad[mode_off + 1] = bad[mode_off + 2] = bad[mode_off + 3] =
        bad[mode_off + 4] = 0;
    EXPECT_FALSE(DecodeFragment(bad).ok());
  }
  {
    std::string bad = body;  // Oversized partition count (> 4096).
    bad[mode_off + 1] = bad[mode_off + 2] = bad[mode_off + 3] =
        bad[mode_off + 4] = static_cast<char>(0xff);
    EXPECT_FALSE(DecodeFragment(bad).ok());
  }
}

TEST(NetProtocolTest, ExchangeDataPayloadMismatchIsCorruption) {
  ExchangeBatch batch;
  batch.exchange_id = 1;
  batch.partition_id = 0;
  batch.num_tuples = 2;
  batch.tuple_width = 8;
  batch.tuples = std::string(16, 'y');
  std::string body =
      EncodeExchangeDataFrame(1, batch).substr(kFrameHeaderBytes);
  ASSERT_TRUE(DecodeExchangeData(body).ok());
  // One byte short and one byte long both break num_tuples * tuple_width.
  EXPECT_FALSE(DecodeExchangeData(body.substr(0, body.size() - 1)).ok());
  EXPECT_FALSE(DecodeExchangeData(body + "q").ok());
  // A huge tuple count whose product overflows 32 bits must not wrap into
  // a "valid" small payload. Layout: u32 exchange, u32 partition,
  // u32 num_tuples, u32 tuple_width.
  std::string bad = body;
  bad[8] = bad[9] = bad[10] = bad[11] = static_cast<char>(0xff);
  EXPECT_FALSE(DecodeExchangeData(bad).ok());
}

TEST(NetProtocolTest, CreditDecodeRejectsZeroAndTruncation) {
  const std::string body =
      EncodeExchangeCreditFrame(1, ExchangeCreditMessage{3, 1})
          .substr(kFrameHeaderBytes);
  ASSERT_TRUE(DecodeExchangeCredit(body).ok());
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(DecodeExchangeCredit(body.substr(0, cut)).ok());
  }
  EXPECT_FALSE(DecodeExchangeCredit(body + "x").ok());
  // A zero-credit grant is meaningless and decodes as corruption — the
  // underflow side of flow control is caught at the frame boundary.
  const std::string zero =
      EncodeExchangeCreditFrame(1, ExchangeCreditMessage{3, 0})
          .substr(kFrameHeaderBytes);
  EXPECT_FALSE(DecodeExchangeCredit(zero).ok());
}

TEST(NetProtocolTest, FuzzDecodersNeverCrash) {
  // Deterministic fuzz: random bytes and mutated valid messages through
  // every decoder. Success is not crashing and not over-reading (asan/ubsan
  // builds make over-reads loud); decode outcomes themselves are free.
  Random rng(20260805);
  const Schema schema = Schema::CreateOrDie(
      {Column::Int32("a"), Column::Char("c", 8)});
  std::vector<std::string> seeds;
  {
    QueryRequest q;
    q.deadline_ms = 9;
    q.text = "union(a, b)";
    seeds.push_back(EncodeQueryFrame(1, q).substr(kFrameHeaderBytes));
  }
  seeds.push_back(EncodeSchemaFrame(1, schema).substr(kFrameHeaderBytes));
  {
    RowsBatch rows;
    rows.num_tuples = 2;
    rows.tuple_width = 12;
    rows.tuples = std::string(24, 'r');
    seeds.push_back(EncodeRowsFrame(1, rows).substr(kFrameHeaderBytes));
  }
  {
    StatsMessage stats;
    stats.total_rows = 2;
    stats.counters = {{"k", 1}};
    seeds.push_back(EncodeStatsFrame(1, stats).substr(kFrameHeaderBytes));
  }
  seeds.push_back(
      EncodeErrorFrame(1, {WireError::kInternal, "boom"})
          .substr(kFrameHeaderBytes));
  seeds.push_back(EncodeFragmentFrame(1, TestFragment())
                      .substr(kFrameHeaderBytes));
  {
    ExchangeBatch batch;
    batch.exchange_id = 2;
    batch.partition_id = 1;
    batch.num_tuples = 3;
    batch.tuple_width = 12;
    batch.tuples = std::string(36, 'e');
    seeds.push_back(
        EncodeExchangeDataFrame(1, batch).substr(kFrameHeaderBytes));
  }
  seeds.push_back(EncodeExchangeEofFrame(1, ExchangeEofMessage{2})
                      .substr(kFrameHeaderBytes));
  seeds.push_back(
      EncodeExchangeCreditFrame(1, ExchangeCreditMessage{2, 4})
          .substr(kFrameHeaderBytes));

  auto exercise = [](const std::string& body) {
    (void)DecodeQuery(body);
    (void)DecodeSchema(body);
    (void)DecodeRows(body);
    (void)DecodeStats(body);
    (void)DecodeError(body);
    (void)DecodeFragment(body);
    (void)DecodeExchangeData(body);
    (void)DecodeExchangeEof(body);
    (void)DecodeExchangeCredit(body);
    (void)DecodeFrameHeader(body, kDefaultMaxFrameBytes);
  };

  for (int iter = 0; iter < 2000; ++iter) {
    std::string body = seeds[static_cast<size_t>(rng.Uniform(
        static_cast<uint64_t>(seeds.size())))];
    // Mutate: flip bytes, truncate, or extend.
    const int mode = static_cast<int>(rng.Uniform(3));
    if (mode == 0 && !body.empty()) {
      for (int flips = 0; flips < 4; ++flips) {
        body[static_cast<size_t>(rng.Uniform(body.size()))] =
            static_cast<char>(rng.Uniform(256));
      }
    } else if (mode == 1) {
      body.resize(static_cast<size_t>(rng.Uniform(body.size() + 1)));
    } else {
      body.append(static_cast<size_t>(rng.Uniform(64)), '\xaa');
    }
    exercise(body);
  }
  // Pure random garbage too.
  for (int iter = 0; iter < 500; ++iter) {
    std::string body(static_cast<size_t>(rng.Uniform(256)), '\0');
    for (auto& c : body) c = static_cast<char>(rng.Uniform(256));
    exercise(body);
  }
}

TEST(NetProtocolTest, FuzzFrameReaderNeverCrash) {
  // A whole stream of garbage through the reader, arbitrary chunking:
  // either frames come out or a sticky error does; no crash, no hang.
  Random rng(4242);
  for (int iter = 0; iter < 300; ++iter) {
    std::string wire;
    // Mix valid frames with garbage.
    for (int part = 0; part < 6; ++part) {
      if (rng.Uniform(2) == 0) {
        wire += EncodePingFrame(static_cast<uint32_t>(iter));
      } else {
        std::string junk(static_cast<size_t>(rng.Uniform(48)), '\0');
        for (auto& c : junk) c = static_cast<char>(rng.Uniform(256));
        wire += junk;
      }
    }
    FrameReader reader;
    size_t off = 0;
    bool dead = false;
    while (off < wire.size() && !dead) {
      const size_t n =
          std::min(wire.size() - off, 1 + static_cast<size_t>(rng.Uniform(33)));
      reader.Append(wire.data() + off, n);
      off += n;
      for (;;) {
        auto next = reader.Next();
        if (!next.ok()) {
          dead = true;  // Sticky error; a real server closes here.
          break;
        }
        if (!next->has_value()) break;
      }
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace dfdb

/// \file test_util.h
/// \brief Shared helpers for dfdb tests.

#ifndef DFDB_TESTS_TEST_UTIL_H_
#define DFDB_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_result.h"
#include "storage/storage_engine.h"
#include "workload/generator.h"

namespace dfdb {
namespace testing {

#define ASSERT_OK(expr)                                  \
  do {                                                   \
    const ::dfdb::Status _s = (expr);                    \
    ASSERT_TRUE(_s.ok()) << _s.ToString();               \
  } while (false)

#define EXPECT_OK(expr)                                  \
  do {                                                   \
    const ::dfdb::Status _s = (expr);                    \
    EXPECT_TRUE(_s.ok()) << _s.ToString();               \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                  \
  ASSERT_OK_AND_ASSIGN_IMPL(                             \
      DFDB_CONCAT(_aoaa_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)        \
  auto tmp = (expr);                                     \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();      \
  lhs = std::move(tmp).value()

/// Collects a result's tuples as a sorted multiset of raw encodings, so two
/// results can be compared independent of row order.
inline std::vector<std::string> ResultMultiset(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const PagePtr& page : result.pages()) {
    for (int i = 0; i < page->num_tuples(); ++i) {
      rows.push_back(page->tuple(i).ToString());
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Asserts two results hold the same bag of tuples.
inline void ExpectSameResult(const QueryResult& expected,
                             const QueryResult& actual) {
  EXPECT_EQ(expected.num_tuples(), actual.num_tuples());
  EXPECT_EQ(ResultMultiset(expected), ResultMultiset(actual));
}

}  // namespace testing
}  // namespace dfdb

#endif  // DFDB_TESTS_TEST_UTIL_H_

/// \file heap_file_test.cc
/// \brief Tests for heap files and the storage-engine facade.

#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include "storage/storage_engine.h"
#include "tests/test_util.h"

namespace dfdb {
namespace {

Schema SmallSchema() {
  return Schema::CreateOrDie({Column::Int32("k"), Column::Int32("v")});
}

TEST(HeapFileTest, AppendSealsFullPages) {
  PageStore store;
  HeapFile file(1, SmallSchema(), /*page_bytes=*/32, &store);  // 4 tuples/page.
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(file.Append({Value::Int32(i), Value::Int32(i * i)}));
  }
  EXPECT_EQ(file.tuple_count(), 10u);
  EXPECT_EQ(file.PageIds().size(), 2u);  // 8 tuples sealed, 2 buffered.
  EXPECT_EQ(file.page_count(), 3u);      // Counting the open page.
  ASSERT_OK(file.Flush());
  EXPECT_EQ(file.PageIds().size(), 3u);
  // Flush of empty current page is a no-op.
  ASSERT_OK(file.Flush());
  EXPECT_EQ(file.PageIds().size(), 3u);
}

TEST(HeapFileTest, RowsSurviveRoundTrip) {
  PageStore store;
  Schema schema = SmallSchema();
  HeapFile file(1, schema, 64, &store);
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(file.Append({Value::Int32(i), Value::Int32(100 - i)}));
  }
  ASSERT_OK(file.Flush());
  int idx = 0;
  for (PageId id : file.PageIds()) {
    ASSERT_OK_AND_ASSIGN(PagePtr page, store.Get(id));
    for (int t = 0; t < page->num_tuples(); ++t, ++idx) {
      TupleView view(&schema, page->tuple(t));
      ASSERT_OK_AND_ASSIGN(Value k, view.GetValue(0));
      EXPECT_EQ(k.as_int32(), idx);
    }
  }
  EXPECT_EQ(idx, 20);
}

TEST(HeapFileTest, DeleteWhereRewritesCompactly) {
  PageStore store;
  Schema schema = SmallSchema();
  HeapFile file(1, schema, 64, &store);
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(file.Append({Value::Int32(i), Value::Int32(0)}));
  }
  const size_t pages_before = store.size();
  ASSERT_OK_AND_ASSIGN(uint64_t removed,
                       file.DeleteWhere([&schema](const TupleView& t) {
                         auto v = t.GetValue(0);
                         return v.ok() && v->as_int32() % 2 == 0;
                       }));
  EXPECT_EQ(removed, 25u);
  EXPECT_EQ(file.tuple_count(), 25u);
  // Old pages were freed from the store.
  EXPECT_LE(store.size(), pages_before);
  // Every remaining key is odd.
  for (PageId id : file.PageIds()) {
    ASSERT_OK_AND_ASSIGN(PagePtr page, store.Get(id));
    for (int t = 0; t < page->num_tuples(); ++t) {
      TupleView view(&schema, page->tuple(t));
      ASSERT_OK_AND_ASSIGN(Value k, view.GetValue(0));
      EXPECT_EQ(k.as_int32() % 2, 1);
    }
  }
}

TEST(HeapFileTest, DeleteEverythingAndNothing) {
  PageStore store;
  HeapFile file(1, SmallSchema(), 64, &store);
  for (int i = 0; i < 9; ++i) {
    ASSERT_OK(file.Append({Value::Int32(i), Value::Int32(0)}));
  }
  ASSERT_OK_AND_ASSIGN(uint64_t none,
                       file.DeleteWhere([](const TupleView&) { return false; }));
  EXPECT_EQ(none, 0u);
  EXPECT_EQ(file.tuple_count(), 9u);
  ASSERT_OK_AND_ASSIGN(uint64_t all,
                       file.DeleteWhere([](const TupleView&) { return true; }));
  EXPECT_EQ(all, 9u);
  EXPECT_EQ(file.tuple_count(), 0u);
  EXPECT_EQ(file.PageIds().size(), 0u);
}

TEST(HeapFileTest, AppendPageChecksWidth) {
  PageStore store;
  HeapFile file(1, SmallSchema(), 64, &store);
  ASSERT_OK_AND_ASSIGN(Page good, Page::Create(2, 8, 64));
  ASSERT_OK(good.Append(Slice("12345678")));
  ASSERT_OK(file.AppendPage(good));
  EXPECT_EQ(file.tuple_count(), 1u);
  ASSERT_OK_AND_ASSIGN(Page bad, Page::Create(2, 5, 64));
  EXPECT_TRUE(file.AppendPage(bad).IsInvalidArgument());
}

TEST(StorageEngineTest, CreateDropLifecycle) {
  StorageEngine storage(128);
  ASSERT_OK_AND_ASSIGN(RelationId id,
                       storage.CreateRelation("t", SmallSchema()));
  ASSERT_OK_AND_ASSIGN(HeapFile * file, storage.GetHeapFile(id));
  ASSERT_OK(file->Append({Value::Int32(1), Value::Int32(2)}));
  ASSERT_OK(storage.SyncStats(id));
  ASSERT_OK_AND_ASSIGN(RelationMeta meta, storage.catalog().GetRelation("t"));
  EXPECT_EQ(meta.tuple_count, 1u);
  EXPECT_GT(storage.page_store().size(), 0u);
  ASSERT_OK(storage.DropRelation("t"));
  EXPECT_EQ(storage.page_store().size(), 0u);
  EXPECT_TRUE(storage.GetHeapFile(id).status().IsNotFound());
  EXPECT_TRUE(storage.DropRelation("t").IsNotFound());
}

TEST(StorageEngineTest, PageSizeMustHoldTuple) {
  StorageEngine storage(4);
  EXPECT_TRUE(storage.CreateRelation("t", SmallSchema())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(storage.CreateRelation("t", SmallSchema(), {.page_bytes = 8}).ok());
}

TEST(StorageEngineTest, SyncAllStats) {
  StorageEngine storage(64);
  ASSERT_OK_AND_ASSIGN(RelationId a, storage.CreateRelation("a", SmallSchema()));
  ASSERT_OK_AND_ASSIGN(RelationId b, storage.CreateRelation("b", SmallSchema()));
  ASSERT_OK_AND_ASSIGN(HeapFile * fa, storage.GetHeapFile(a));
  ASSERT_OK_AND_ASSIGN(HeapFile * fb, storage.GetHeapFile(b));
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(fa->Append({Value::Int32(i), Value::Int32(0)}));
  }
  ASSERT_OK(fb->Append({Value::Int32(9), Value::Int32(9)}));
  ASSERT_OK(storage.SyncAllStats());
  EXPECT_EQ(storage.catalog().TotalBytes(), (5 + 1) * 8);
}

}  // namespace
}  // namespace dfdb

/// \file expr_test.cc
/// \brief Tests for scalar expression trees.

#include "ra/expr.h"

#include <gtest/gtest.h>

#include "storage/tuple.h"
#include "tests/test_util.h"

namespace dfdb {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::CreateOrDie({Column::Int32("a"), Column::Double("d"),
                                   Column::Char("s", 4)});
    auto encoded = EncodeTuple(
        schema_, {Value::Int32(10), Value::Double(2.5), Value::Char("hi")});
    ASSERT_TRUE(encoded.ok());
    tuple_bytes_ = *encoded;
    auto encoded2 = EncodeTuple(
        schema_, {Value::Int32(3), Value::Double(-1.0), Value::Char("zz")});
    ASSERT_TRUE(encoded2.ok());
    tuple2_bytes_ = *encoded2;
  }

  TupleView Left() { return TupleView(&schema_, Slice(tuple_bytes_)); }
  TupleView Right() { return TupleView(&schema_, Slice(tuple2_bytes_)); }

  /// Binds against (schema_, schema_) and evaluates as a predicate.
  bool EvalPred(const ExprPtr& e) {
    EXPECT_OK(e->Bind(schema_, &schema_));
    TupleView l = Left(), r = Right();
    auto v = e->EvalBool(l, &r);
    EXPECT_TRUE(v.ok()) << v.status();
    return v.ok() && *v;
  }

  Schema schema_;
  std::string tuple_bytes_;
  std::string tuple2_bytes_;
};

TEST_F(ExprTest, LiteralsEvaluateToThemselves) {
  ExprPtr e = Lit(7);
  ASSERT_OK(e->Bind(schema_, nullptr));
  TupleView l = Left();
  ASSERT_OK_AND_ASSIGN(Value v, e->Eval(l, nullptr));
  EXPECT_EQ(v.as_int32(), 7);
  EXPECT_FALSE(e->ReferencesRight());
}

TEST_F(ExprTest, ColumnRefReadsCorrectSide) {
  EXPECT_TRUE(EvalPred(Eq(Col("a"), Lit(10))));
  EXPECT_TRUE(EvalPred(Eq(RightCol("a"), Lit(3))));
  EXPECT_FALSE(EvalPred(Eq(Col("a"), RightCol("a"))));
  EXPECT_TRUE(Eq(Col("a"), RightCol("a"))->ReferencesRight());
}

TEST_F(ExprTest, UnboundColumnFails) {
  ExprPtr e = Col("a");
  TupleView l = Left();
  EXPECT_TRUE(e->Eval(l, nullptr).status().IsFailedPrecondition());
}

TEST_F(ExprTest, BindErrors) {
  EXPECT_TRUE(Col("nope")->Bind(schema_, nullptr).IsNotFound());
  // Right-side column with no right schema.
  EXPECT_TRUE(RightCol("a")->Bind(schema_, nullptr).IsInvalidArgument());
}

TEST_F(ExprTest, AllComparisonOps) {
  EXPECT_TRUE(EvalPred(Eq(Lit(1), Lit(1))));
  EXPECT_TRUE(EvalPred(Ne(Lit(1), Lit(2))));
  EXPECT_TRUE(EvalPred(Lt(Lit(1), Lit(2))));
  EXPECT_TRUE(EvalPred(Le(Lit(2), Lit(2))));
  EXPECT_TRUE(EvalPred(Gt(Lit(3), Lit(2))));
  EXPECT_TRUE(EvalPred(Ge(Lit(2), Lit(2))));
  EXPECT_FALSE(EvalPred(Lt(Lit(2), Lit(2))));
}

TEST_F(ExprTest, StringComparison) {
  EXPECT_TRUE(EvalPred(Eq(Col("s"), Lit("hi"))));
  EXPECT_TRUE(EvalPred(Lt(Col("s"), RightCol("s"))));  // "hi" < "zz".
}

TEST_F(ExprTest, LogicalOpsWithShortCircuit) {
  EXPECT_TRUE(EvalPred(And(Lit(1), Lit(1))));
  EXPECT_FALSE(EvalPred(And(Lit(0), Lit(1))));
  EXPECT_TRUE(EvalPred(Or(Lit(0), Lit(1))));
  EXPECT_FALSE(EvalPred(Or(Lit(0), Lit(0))));
  EXPECT_TRUE(EvalPred(Not(Lit(0))));
  // Short-circuit: the right side would divide by zero if evaluated.
  EXPECT_FALSE(EvalPred(And(Lit(0), Eq(Div(Lit(1), Lit(0)), Lit(1)))));
  EXPECT_TRUE(EvalPred(Or(Lit(1), Eq(Div(Lit(1), Lit(0)), Lit(1)))));
}

TEST_F(ExprTest, ArithmeticTyping) {
  ExprPtr int_add = Add(Col("a"), Lit(5));
  ASSERT_OK(int_add->Bind(schema_, nullptr));
  TupleView l = Left();
  ASSERT_OK_AND_ASSIGN(Value v, int_add->Eval(l, nullptr));
  EXPECT_EQ(v.type(), ColumnType::kInt64);
  EXPECT_EQ(v.as_int64(), 15);

  ExprPtr mixed = Mul(Col("a"), Col("d"));
  ASSERT_OK(mixed->Bind(schema_, nullptr));
  ASSERT_OK_AND_ASSIGN(Value m, mixed->Eval(l, nullptr));
  EXPECT_EQ(m.type(), ColumnType::kDouble);
  EXPECT_DOUBLE_EQ(m.as_double(), 25.0);

  // Division is always double and checks for zero.
  ExprPtr division = Div(Lit(7), Lit(2));
  ASSERT_OK(division->Bind(schema_, nullptr));
  ASSERT_OK_AND_ASSIGN(Value d, division->Eval(l, nullptr));
  EXPECT_DOUBLE_EQ(d.as_double(), 3.5);
  ExprPtr by_zero = Div(Lit(1), Lit(0));
  ASSERT_OK(by_zero->Bind(schema_, nullptr));
  EXPECT_TRUE(by_zero->Eval(l, nullptr).status().IsInvalidArgument());
}

TEST_F(ExprTest, SubtractionAndPredicateOnArith) {
  EXPECT_TRUE(EvalPred(Eq(Sub(Col("a"), Lit(7)), Lit(3))));
  EXPECT_TRUE(EvalPred(Gt(Add(Col("a"), RightCol("a")), Lit(12))));
}

TEST_F(ExprTest, CharAsPredicateIsError) {
  ExprPtr e = Col("s");
  ASSERT_OK(e->Bind(schema_, nullptr));
  TupleView l = Left();
  EXPECT_TRUE(e->EvalBool(l, nullptr).status().IsInvalidArgument());
}

TEST_F(ExprTest, MismatchedTypesInComparison) {
  ExprPtr e = Eq(Col("s"), Lit(5));
  ASSERT_OK(e->Bind(schema_, nullptr));
  TupleView l = Left();
  EXPECT_FALSE(e->Eval(l, nullptr).ok());
}

TEST_F(ExprTest, ToStringReadable) {
  ExprPtr e = And(Lt(Col("a"), Lit(5)), Eq(RightCol("s"), Lit("hi")));
  EXPECT_EQ(e->ToString(), "((a < 5) AND (right.s = hi))");
  EXPECT_EQ(Not(Lit(1))->ToString(), "NOT 1");
  EXPECT_EQ(Add(Lit(1), Lit(2))->ToString(), "(1 + 2)");
}

}  // namespace
}  // namespace dfdb

/// \file index_test.cc
/// \brief Zone maps, grid-file indexes, access-path selection, and the
/// pruning differential: index-pruned scans must be byte-identical to full
/// scans on both backends, across MVCC versions and concurrent GC.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/run.h"
#include "index/access_path.h"
#include "index/grid_file.h"
#include "index/index_manager.h"
#include "index/zone_map.h"
#include "machine/simulator.h"
#include "ra/expr_compile.h"
#include "ra/optimizer.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;
using ::dfdb::testing::ResultMultiset;
using ::dfdb::expr_detail::EvalColCompare;

// ---------------------------------------------------------------------------
// Zone maps
// ---------------------------------------------------------------------------

TEST(ZoneMapTest, BuiltOnSealAndBrackets) {
  StorageEngine storage(/*default_page_bytes=*/1000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateRelation(&storage, "r", 500, /*seed=*/3));
  ASSERT_OK_AND_ASSIGN(HeapFile * file, storage.GetHeapFile(rel));
  ASSERT_OK(file->Flush());
  const std::vector<PageId> pages = file->PageIds();
  ASSERT_GT(pages.size(), 1u);
  const Schema schema = BenchmarkSchema();
  for (PageId id : pages) {
    auto entry = file->zone_maps().Get(id);
    ASSERT_NE(entry, nullptr) << "no zone map for page " << id;
    ASSERT_OK_AND_ASSIGN(PagePtr page, storage.page_store().Get(id));
    EXPECT_TRUE(ZoneMapBrackets(*entry, schema, *page));
    EXPECT_EQ(entry->tuples, static_cast<uint32_t>(page->num_tuples()));
  }
}

// Conservativeness fuzz: whenever brute-force evaluation finds a tuple on a
// page satisfying every bound, ZoneMapMayMatch must keep the page.
TEST(ZoneMapTest, MayMatchIsConservative) {
  StorageEngine storage(/*default_page_bytes=*/1000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateRelation(&storage, "r", 1200, /*seed=*/5));
  ASSERT_OK_AND_ASSIGN(HeapFile * file, storage.GetHeapFile(rel));
  ASSERT_OK(file->Flush());
  const Schema schema = BenchmarkSchema();

  Random rng(99);
  const char* cols[] = {"k2", "k10", "k100", "k1000", "val", "seq"};
  int pruned = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // 1-3 random conjuncts compiled to ColCompare bounds.
    ExprPtr pred;
    const int conjuncts = 1 + static_cast<int>(rng.Uniform(3));
    for (int c = 0; c < conjuncts; ++c) {
      const char* col = cols[rng.Uniform(6)];
      ExprPtr lit = std::string(col) == "val"
                        ? Lit(rng.NextDouble())
                        : Lit(static_cast<int32_t>(rng.Uniform(1000)));
      ExprPtr cmp;
      switch (rng.Uniform(5)) {
        case 0: cmp = Lt(Col(col), std::move(lit)); break;
        case 1: cmp = Le(Col(col), std::move(lit)); break;
        case 2: cmp = Gt(Col(col), std::move(lit)); break;
        case 3: cmp = Ge(Col(col), std::move(lit)); break;
        default: cmp = Eq(Col(col), std::move(lit)); break;
      }
      pred = pred == nullptr ? std::move(cmp)
                             : And(std::move(pred), std::move(cmp));
    }
    ASSERT_OK(pred->Bind(schema, nullptr));
    auto compiled = CompiledPredicate::Compile(*pred, schema);
    ASSERT_OK(compiled.status());
    const std::vector<ColCompare>& bounds = compiled->col_compares();
    ASSERT_FALSE(bounds.empty());

    for (PageId id : file->PageIds()) {
      ASSERT_OK_AND_ASSIGN(PagePtr page, storage.page_store().Get(id));
      bool any = false;
      for (int i = 0; i < page->num_tuples() && !any; ++i) {
        bool all = true;
        for (const ColCompare& b : bounds) {
          if (!EvalColCompare(b, page->tuple(i).data())) {
            all = false;
            break;
          }
        }
        any = all;
      }
      auto entry = file->zone_maps().Get(id);
      ASSERT_NE(entry, nullptr);
      const bool keep = ZoneMapMayMatch(*entry, schema, bounds);
      if (any) {
        EXPECT_TRUE(keep) << "pruned a page with matches";
      }
      if (!keep) ++pruned;
    }
  }
  EXPECT_GT(pruned, 0) << "fuzz never pruned anything — vacuous";
}

// ---------------------------------------------------------------------------
// Grid file
// ---------------------------------------------------------------------------

TEST(GridFileTest, ProbeCoversEveryMatchingPage) {
  StorageEngine storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateSkewedRelation(&storage, "ev", 20000, 7));
  ASSERT_OK_AND_ASSIGN(HeapFile * file, storage.GetHeapFile(rel));
  ASSERT_OK(file->Flush());
  ASSERT_OK(storage.CommitRelation("ev"));

  IndexManager* mgr = GetIndexManager(&storage);
  ASSERT_OK(mgr->CreateIndex("ev_user", "ev", {"user", "device"}));
  ASSERT_OK_AND_ASSIGN(IndexMeta meta, storage.catalog().GetIndex("ev_user"));

  Snapshot snap = storage.CaptureSnapshot();
  ASSERT_OK_AND_ASSIGN(SnapshotView view, snap.View("ev"));
  auto index = mgr->Resolve(meta, view.commit_ts, view.pages);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->pages_indexed(), view.pages.size());

  const Schema schema = SkewedEventSchema();
  Random rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    const int32_t user = static_cast<int32_t>(
        rng.Uniform(SkewedEventUserCount(20000)));
    ExprPtr eq = Eq(Col("user"), Lit(user));
    ASSERT_OK(eq->Bind(schema, nullptr));
    auto compiled = CompiledPredicate::Compile(*eq, schema);
    ASSERT_OK(compiled.status());
    auto probed = index->Probe(compiled->col_compares());
    ASSERT_TRUE(probed.has_value());
    // Every page actually holding the user must be in the candidate set.
    for (PageId id : view.pages) {
      ASSERT_OK_AND_ASSIGN(PagePtr page, storage.page_store().Get(id));
      bool holds = false;
      for (int i = 0; i < page->num_tuples() && !holds; ++i) {
        holds = EvalColCompare(compiled->col_compares()[0],
                               page->tuple(i).data());
      }
      if (holds) {
        EXPECT_NE(std::find(probed->begin(), probed->end(), id),
                  probed->end())
            << "grid file dropped page " << id << " holding user " << user;
      }
    }
  }
  // An unconstrained probe declines.
  ExprPtr val_pred = Lt(Col("val"), Lit(0.5));
  ASSERT_OK(val_pred->Bind(schema, nullptr));
  auto unconstrained = CompiledPredicate::Compile(*val_pred, schema);
  ASSERT_OK(unconstrained.status());
  EXPECT_FALSE(index->Probe(unconstrained->col_compares()).has_value());
}

// ---------------------------------------------------------------------------
// Catalog definitions
// ---------------------------------------------------------------------------

TEST(IndexCatalogTest, ValidatesDefinitions) {
  StorageEngine storage;
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateRelation(&storage, "r", 100, 1));
  (void)rel;
  IndexManager* mgr = GetIndexManager(&storage);
  EXPECT_FALSE(mgr->CreateIndex("i", "missing", {"k10"}).ok());
  EXPECT_FALSE(mgr->CreateIndex("i", "r", {"nope"}).ok());
  EXPECT_FALSE(mgr->CreateIndex("i", "r", {"pad"}).ok());  // CHAR key.
  EXPECT_FALSE(mgr->CreateIndex("i", "r", {"k2", "k5", "k10"}).ok());
  EXPECT_FALSE(mgr->CreateIndex("i", "r", {"k10", "k10"}).ok());
  EXPECT_FALSE(mgr->CreateIndex("", "r", {"k10"}).ok());
  ASSERT_OK(mgr->CreateIndex("i", "r", {"k10"}));
  EXPECT_FALSE(mgr->CreateIndex("i", "r", {"k100"}).ok());  // Duplicate.
  EXPECT_EQ(storage.catalog().GetIndexesFor("r").size(), 1u);
  ASSERT_OK(mgr->DropIndex("i"));
  EXPECT_FALSE(mgr->DropIndex("i").ok());
  // Dropping the relation drops its index definitions.
  ASSERT_OK(mgr->CreateIndex("i2", "r", {"k10", "k100"}));
  ASSERT_OK(storage.DropRelation("r"));
  EXPECT_TRUE(storage.catalog().GetIndexesFor("r").empty());
  EXPECT_FALSE(storage.catalog().GetIndex("i2").ok());
}

// ---------------------------------------------------------------------------
// Optimizer access-path selection
// ---------------------------------------------------------------------------

TEST(AccessPathPlanTest, OptimizerMarksScans) {
  StorageEngine storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateSkewedRelation(&storage, "ev", 20000, 7));
  (void)rel;
  ASSERT_OK(storage.SyncAllStats());
  Optimizer optimizer(&storage.catalog());

  // Restrict over scan with extractable bounds -> zone-map mark.
  {
    auto plan = MakeRestrict(MakeScan("ev"), Lt(Col("ts"), Lit(int64_t{400})));
    OptimizerReport report;
    ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, &report));
    ASSERT_EQ(opt->child(0).op, PlanOp::kScan);
    EXPECT_EQ(opt->child(0).access_path, ScanAccessPath::kZoneMap);
    EXPECT_FALSE(opt->child(0).prune_bounds.empty());
    EXPECT_EQ(report.scans_zonemap, 1);
    EXPECT_EQ(report.scans_full, 0);
  }
  // Generic predicate -> full scan.
  {
    auto plan = MakeRestrict(MakeScan("ev"),
                             Lt(Add(Col("user"), Col("device")), Lit(3)));
    OptimizerReport report;
    ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, &report));
    ASSERT_EQ(opt->child(0).op, PlanOp::kScan);
    EXPECT_EQ(opt->child(0).access_path, ScanAccessPath::kFullScan);
    EXPECT_EQ(report.scans_full, 1);
  }
  // With a catalog index and a selective equality -> grid-file mark.
  ASSERT_OK(GetIndexManager(&storage)->CreateIndex("ev_user", "ev", {"user"}));
  {
    auto plan = MakeRestrict(MakeScan("ev"), Eq(Col("user"), Lit(77)));
    OptimizerReport report;
    ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, &report));
    ASSERT_EQ(opt->child(0).op, PlanOp::kScan);
    EXPECT_EQ(opt->child(0).access_path, ScanAccessPath::kGridFile);
    EXPECT_EQ(opt->child(0).index_name, "ev_user");
    EXPECT_EQ(report.scans_gridfile, 1);
  }
  // Unselective range on the indexed column stays zone-map.
  {
    auto plan = MakeRestrict(MakeScan("ev"), Ge(Col("user"), Lit(0)));
    OptimizerReport report;
    ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, &report));
    EXPECT_EQ(opt->child(0).access_path, ScanAccessPath::kZoneMap);
  }
}

// ---------------------------------------------------------------------------
// Differential: pruned vs full scan, both backends
// ---------------------------------------------------------------------------

class PruningDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(/*default_page_bytes=*/2000);
    ASSERT_OK_AND_ASSIGN(
        RelationId rel, GenerateSkewedRelation(storage_.get(), "ev", 30000, 7));
    (void)rel;
    ASSERT_OK(storage_->SyncAllStats());
    ASSERT_OK(storage_->CommitRelation("ev"));
    ASSERT_OK(GetIndexManager(storage_.get())
                  ->CreateIndex("ev_ud", "ev", {"user", "device"}));
  }

  // Seeded random predicates over the skewed columns: ts windows, user
  // equalities/ranges, devices, conjunctions.
  PlanNodePtr RandomQuery(Random* rng) {
    const uint64_t users = SkewedEventUserCount(30000);
    switch (rng->Uniform(5)) {
      case 0: {  // Time window.
        const int64_t lo = rng->UniformInRange(0, 30000);
        return MakeRestrict(
            MakeScan("ev"),
            And(Ge(Col("ts"), Lit(lo)),
                Lt(Col("ts"), Lit(lo + rng->UniformInRange(1, 2000)))));
      }
      case 1:  // User equality (hot or rare).
        return MakeRestrict(
            MakeScan("ev"),
            Eq(Col("user"),
               Lit(static_cast<int32_t>(rng->Uniform(users)))));
      case 2:  // User + device.
        return MakeRestrict(
            MakeScan("ev"),
            And(Eq(Col("user"),
                   Lit(static_cast<int32_t>(rng->Uniform(users)))),
                Eq(Col("device"),
                   Lit(static_cast<int32_t>(rng->Uniform(16))))));
      case 3:  // Rare-user tail range.
        return MakeRestrict(
            MakeScan("ev"),
            Ge(Col("user"), Lit(static_cast<int32_t>(users * 9 / 10))));
      default: {  // Value + time conjunction.
        const int64_t lo = rng->UniformInRange(0, 30000);
        return MakeRestrict(MakeScan("ev"),
                            And(Lt(Col("val"), Lit(rng->NextDouble())),
                                Ge(Col("ts"), Lit(lo))));
      }
    }
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_F(PruningDifferentialTest, EngineMatchesFullScan) {
  Optimizer optimizer(&storage_->catalog());
  Random rng(123);
  ExecOptions honor;
  honor.page_bytes = 2000;
  ExecOptions full = honor;
  full.index = IndexPolicy::kForceFullScan;

  uint64_t total_pruned = 0;
  for (int trial = 0; trial < 30; ++trial) {
    auto plan = RandomQuery(&rng);
    ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));
    ASSERT_OK_AND_ASSIGN(QueryResult pruned,
                         RunQuery(storage_.get(), *opt, honor));
    ASSERT_OK_AND_ASSIGN(QueryResult baseline,
                         RunQuery(storage_.get(), *opt, full));
    ExpectSameResult(baseline, pruned);
    total_pruned += pruned.stats().index.pages_pruned;
    EXPECT_EQ(baseline.stats().index.pages_pruned, 0u);
  }
  EXPECT_GT(total_pruned, 0u) << "no query ever pruned — differential vacuous";
}

TEST_F(PruningDifferentialTest, MachineMatchesFullScanAndEngine) {
  Optimizer optimizer(&storage_->catalog());
  Random rng(321);
  MachineOptions honor;
  MachineOptions full;
  full.index = IndexPolicy::kForceFullScan;
  ExecOptions engine_opts;
  engine_opts.page_bytes = 2000;

  uint64_t total_pruned = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto plan = RandomQuery(&rng);
    ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));
    MachineSimulator sim_honor(storage_.get(), honor);
    ASSERT_OK_AND_ASSIGN(MachineReport pruned, sim_honor.Run({opt.get()}));
    MachineSimulator sim_full(storage_.get(), full);
    ASSERT_OK_AND_ASSIGN(MachineReport baseline, sim_full.Run({opt.get()}));
    ASSERT_EQ(pruned.results.size(), 1u);
    ASSERT_EQ(baseline.results.size(), 1u);
    ExpectSameResult(baseline.results[0], pruned.results[0]);
    ASSERT_OK_AND_ASSIGN(QueryResult engine,
                         RunQuery(storage_.get(), *opt, engine_opts));
    ExpectSameResult(engine, pruned.results[0]);
    total_pruned += pruned.index.pages_pruned;
    EXPECT_EQ(baseline.index.pages_pruned, 0u);
  }
  EXPECT_GT(total_pruned, 0u);
}

// ---------------------------------------------------------------------------
// MVCC versioning: old snapshots see consistent maps and indexes
// ---------------------------------------------------------------------------

TEST(IndexMvccTest, OldSnapshotUnchangedAfterDelete) {
  StorageEngine storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateSkewedRelation(&storage, "ev", 20000, 7));
  (void)rel;
  ASSERT_OK(storage.SyncAllStats());
  ASSERT_OK(storage.CommitRelation("ev"));
  ASSERT_OK(GetIndexManager(&storage)->CreateIndex("ev_u", "ev", {"user"}));

  Optimizer optimizer(&storage.catalog());
  const int32_t user = 3;  // Hot user: survives the delete partially.
  auto plan = MakeRestrict(MakeScan("ev"), Eq(Col("user"), Lit(user)));
  ASSERT_OK_AND_ASSIGN(PlanNodePtr opt, optimizer.Optimize(*plan, nullptr));
  ASSERT_EQ(opt->child(0).access_path, ScanAccessPath::kGridFile);

  ExecOptions honor;
  honor.page_bytes = 2000;
  ExecOptions full = honor;
  full.index = IndexPolicy::kForceFullScan;

  // Result at the pre-delete version, pruned.
  ASSERT_OK_AND_ASSIGN(QueryResult before, RunQuery(&storage, *opt, honor));

  // Hold a snapshot of the old version across a CoW delete + commit.
  Snapshot old_snap = storage.CaptureSnapshot();
  {
    auto del = MakeDelete("ev", Lt(Col("ts"), Lit(int64_t{10000})));
    ASSERT_OK_AND_ASSIGN(PlanNodePtr del_opt,
                         optimizer.Optimize(*del, nullptr));
    ASSERT_OK_AND_ASSIGN(QueryResult del_result,
                         RunQuery(&storage, *del_opt, honor));
    (void)del_result;
    ASSERT_OK(storage.CommitRelation("ev"));
  }

  // The old snapshot's pruned scan equals its full scan — the grid file
  // Resolve()d for the old page list, not the rewritten one.
  ASSERT_OK_AND_ASSIGN(SnapshotView old_view, old_snap.View("ev"));
  IndexPruneCounters stats;
  ASSERT_OK_AND_ASSIGN(IndexMeta meta, storage.catalog().GetIndex("ev_u"));
  std::vector<PageId> kept =
      PruneScanPages(&storage, opt->child(0), old_view.pages,
                     old_view.commit_ts, /*allow_gridfile=*/true, &stats);
  EXPECT_LT(kept.size(), old_view.pages.size());
  EXPECT_EQ(stats.gridfile_probes, 1u);
  std::vector<std::string> brute, via_index;
  ExprPtr eq = Eq(Col("user"), Lit(user));
  ASSERT_OK(eq->Bind(SkewedEventSchema(), nullptr));
  auto compiled = CompiledPredicate::Compile(*eq, SkewedEventSchema());
  ASSERT_OK(compiled.status());
  for (PageId id : old_view.pages) {
    ASSERT_OK_AND_ASSIGN(PagePtr page, storage.page_store().Get(id));
    for (int i = 0; i < page->num_tuples(); ++i) {
      if (EvalColCompare(compiled->col_compares()[0], page->tuple(i).data())) {
        brute.push_back(std::string(page->tuple(i).ToString()));
      }
    }
  }
  for (PageId id : kept) {
    ASSERT_OK_AND_ASSIGN(PagePtr page, storage.page_store().Get(id));
    for (int i = 0; i < page->num_tuples(); ++i) {
      if (EvalColCompare(compiled->col_compares()[0], page->tuple(i).data())) {
        via_index.push_back(std::string(page->tuple(i).ToString()));
      }
    }
  }
  std::sort(brute.begin(), brute.end());
  std::sort(via_index.begin(), via_index.end());
  EXPECT_EQ(brute, via_index);
  // The old version's answer must match the pre-delete result, and the new
  // head's pruned answer must match its own full scan.
  EXPECT_EQ(brute.size(), before.num_tuples());
  ASSERT_OK_AND_ASSIGN(QueryResult after_pruned,
                       RunQuery(&storage, *opt, honor));
  ASSERT_OK_AND_ASSIGN(QueryResult after_full, RunQuery(&storage, *opt, full));
  ExpectSameResult(after_full, after_pruned);
}

// Concurrent pruned readers against a deleting/committing writer with
// snapshot GC churning page ids. Run under tsan via index_test_tsan.
TEST(IndexMvccTest, ConcurrentPrunedReadsUnderGc) {
  StorageEngine storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(RelationId rel,
                       GenerateSkewedRelation(&storage, "ev", 10000, 7));
  (void)rel;
  ASSERT_OK(storage.SyncAllStats());
  ASSERT_OK(storage.CommitRelation("ev"));
  ASSERT_OK(GetIndexManager(&storage)->CreateIndex("ev_u", "ev", {"user"}));

  Optimizer optimizer(&storage.catalog());
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Random rng(1000 + t);
      ExecOptions honor;
      honor.page_bytes = 2000;
      honor.num_processors = 2;
      ExecOptions full = honor;
      full.index = IndexPolicy::kForceFullScan;
      while (!stop.load(std::memory_order_relaxed)) {
        auto plan = MakeRestrict(
            MakeScan("ev"),
            Eq(Col("user"), Lit(static_cast<int32_t>(rng.Uniform(64)))));
        auto opt = optimizer.Optimize(*plan, nullptr);
        if (!opt.ok()) { ++failures; break; }
        // Each run snapshots independently while the writer commits, so
        // only success (no torn reads, no use-after-free under GC) is
        // asserted here; result equality is covered by the differential
        // tests above.
        ExecOptions opts = rng.Bernoulli(0.5) ? honor : full;
        auto a = RunQuery(&storage, **opt, opts);
        auto b = RunQuery(&storage, **opt, full);
        if (!a.ok() || !b.ok()) { ++failures; break; }
      }
    });
  }
  std::thread writer([&] {
    Random rng(5);
    for (int round = 0; round < 8; ++round) {
      auto del = MakeDelete(
          "ev", Eq(Col("device"), Lit(static_cast<int32_t>(rng.Uniform(16)))));
      auto opt = optimizer.Optimize(*del, nullptr);
      if (!opt.ok()) { ++failures; break; }
      ExecOptions opts;
      opts.page_bytes = 2000;
      auto r = RunQuery(&storage, **opt, opts);
      if (!r.ok()) { ++failures; break; }
      if (!storage.CommitRelation("ev").ok()) { ++failures; break; }
    }
    stop.store(true, std::memory_order_relaxed);
  });
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace dfdb

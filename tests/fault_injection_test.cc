/// \file fault_injection_test.cc
/// \brief Deterministic fault injection and recovery for the ring machine
/// (and the threaded engine's analogue).
///
/// The contract under test: for any seeded FaultPlan the machine either
/// recovers — producing results bit-identical to a fault-free run, with
/// every recovery event counted — or fails cleanly with
/// Status::Unavailable. Never a hang, never a wrong answer, and every run
/// is exactly reproducible from (options, plan).

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "engine/run.h"
#include "engine/reference.h"
#include "machine/fault_injector.h"
#include "machine/simulator.h"
#include "tests/test_util.h"
#include "workload/paper_benchmark.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;
using ::dfdb::testing::ResultMultiset;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(/*default_page_bytes=*/2000);
    ASSERT_OK_AND_ASSIGN(auto a,
                         GenerateRelation(storage_.get(), "alpha", 400, 3));
    ASSERT_OK_AND_ASSIGN(auto b,
                         GenerateRelation(storage_.get(), "beta", 150, 4));
    ASSERT_OK_AND_ASSIGN(auto c,
                         GenerateRelation(storage_.get(), "gamma", 80, 5));
    (void)a;
    (void)b;
    (void)c;
  }

  MachineOptions Options(Granularity g, int ips = 4) const {
    MachineOptions opts;
    opts.granularity = g;
    opts.config.num_instruction_processors = ips;
    opts.config.num_instruction_controllers = 3;
    opts.config.page_bytes = 2000;
    opts.config.ic_local_memory_pages = 8;
    opts.config.disk_cache_pages = 64;
    return opts;
  }

  /// A plan that exercises the join protocol (page/relation granularity) or
  /// a small streaming pipeline (tuple granularity, where units are single
  /// tuples and big inputs would dominate the test's runtime).
  PlanNodePtr PlanFor(Granularity g) const {
    if (g == Granularity::kTuple) {
      return MakeRestrict(MakeScan("gamma"), Lt(Col("k1000"), Lit(500)));
    }
    return MakeJoin(
        MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(300))),
        MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(500))),
        Eq(Col("k100"), RightCol("k100")));
  }

  /// Fast detection/retry knobs so the recovery machinery actually runs
  /// inside these short simulations.
  static void Tighten(FaultPlan* plan) {
    plan->detection_timeout = SimTime::Micros(500);
    plan->retry_backoff = SimTime::Micros(100);
  }

  std::unique_ptr<StorageEngine> storage_;
};

// ---------------------------------------------------------------------------
// Recovery sweep: granularity x fault type x injection point
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<Granularity, FaultType, double>;

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto [g, f, frac] = info.param;
  std::string name(GranularityToString(g));
  name += "_";
  for (char c : FaultTypeToString(f)) {
    name += c == '-' ? '_' : c;
  }
  name += frac < 0.5 ? "_early" : "_late";
  return name;
}

class FaultSweepTest : public FaultInjectionTest,
                       public ::testing::WithParamInterface<SweepParam> {};

TEST_P(FaultSweepTest, RecoveredResultsMatchFaultFree) {
  const auto [granularity, fault, frac] = GetParam();
  PlanNodePtr plan = PlanFor(granularity);

  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*plan));

  // Fault-free baseline fixes the injection time as a fraction of the
  // makespan, so every fault type strikes while work is in flight.
  MachineSimulator healthy(storage_.get(), Options(granularity));
  ASSERT_OK_AND_ASSIGN(MachineReport baseline, healthy.Run({plan.get()}));
  ExpectSameResult(expected, baseline.results[0]);
  const SimTime at = SimTime::Nanos(
      static_cast<int64_t>(static_cast<double>(baseline.makespan.nanos()) *
                           frac));

  FaultPlan fp;
  switch (fault) {
    case FaultType::kKillIp:
      fp = FaultPlan::KillIp(1, at);
      break;
    case FaultType::kFailIc:
      fp = FaultPlan::FailIc(0, at);
      break;
    case FaultType::kDropPacket:
      fp = FaultPlan::DropPackets(at, /*count=*/2);
      break;
    case FaultType::kCorruptPacket:
      fp = FaultPlan::CorruptPackets(at, /*count=*/2);
      break;
    case FaultType::kStallCache:
      fp = FaultPlan::StallCache(at, SimTime::Millis(30));
      break;
  }
  Tighten(&fp);

  MachineOptions faulted = Options(granularity);
  faulted.fault_plan = fp;
  MachineSimulator sim(storage_.get(), faulted);
  ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run({plan.get()}));

  // The one property that matters: the answer is exactly the fault-free
  // answer, no tuple lost to the fault and none duplicated by recovery.
  ExpectSameResult(expected, report.results[0]);
  ExpectSameResult(baseline.results[0], report.results[0]);

  if (fault == FaultType::kKillIp) {
    EXPECT_EQ(report.faults.ip_kills, 1u);
  }
  if (fault == FaultType::kFailIc) {
    EXPECT_EQ(report.faults.ic_failures, 1u);
    EXPECT_GE(report.faults.instructions_rehomed, 1u);
  }
  if (fault == FaultType::kStallCache) {
    EXPECT_EQ(report.faults.cache_stalls, 1u);
  }
  // Drop/corrupt faults only fire if an assignment packet crossed the ring
  // after `at`; with frac < 1 at least the injected count is consistent.
  EXPECT_EQ(report.faults.injected,
            report.faults.ip_kills + report.faults.ic_failures +
                report.faults.packets_dropped +
                report.faults.packets_corrupted + report.faults.cache_stalls);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultSweepTest,
    ::testing::Combine(
        ::testing::Values(Granularity::kPage, Granularity::kRelation,
                          Granularity::kTuple),
        ::testing::Values(FaultType::kKillIp, FaultType::kFailIc,
                          FaultType::kDropPacket, FaultType::kCorruptPacket,
                          FaultType::kStallCache),
        ::testing::Values(0.2, 0.6)),
    SweepName);

// ---------------------------------------------------------------------------
// Determinism: the report is a pure function of (options, plan)
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, SameSeedSameStormSameReport) {
  PlanNodePtr plan = PlanFor(Granularity::kPage);
  MachineSimulator healthy(storage_.get(), Options(Granularity::kPage));
  ASSERT_OK_AND_ASSIGN(MachineReport baseline, healthy.Run({plan.get()}));

  auto run_storm = [&](uint64_t seed) -> MachineReport {
    FaultPlan fp = FaultPlan::RandomStorm(seed, /*ip_kills=*/2,
                                          /*packet_faults=*/2,
                                          baseline.makespan);
    Tighten(&fp);
    MachineOptions opts = Options(Granularity::kPage, /*ips=*/8);
    opts.fault_plan = fp;
    MachineSimulator sim(storage_.get(), opts);
    auto report = sim.Run({plan.get()});
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return *std::move(report);
  };

  MachineReport r1 = run_storm(7);
  MachineReport r2 = run_storm(7);
  // Byte-identical measurements, not merely equal results.
  EXPECT_EQ(r1.makespan.nanos(), r2.makespan.nanos());
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_EQ(r1.bytes.outer_ring, r2.bytes.outer_ring);
  EXPECT_EQ(r1.bytes.disk_read, r2.bytes.disk_read);
  EXPECT_EQ(r1.instruction_packets, r2.instruction_packets);
  EXPECT_EQ(r1.control_packets, r2.control_packets);
  EXPECT_EQ(r1.faults.injected, r2.faults.injected);
  EXPECT_EQ(r1.faults.timeouts, r2.faults.timeouts);
  EXPECT_EQ(r1.faults.retries, r2.faults.retries);
  EXPECT_EQ(r1.faults.redispatches, r2.faults.redispatches);
  EXPECT_EQ(r1.faults.retry_ticks_lost.nanos(),
            r2.faults.retry_ticks_lost.nanos());
  EXPECT_EQ(ResultMultiset(r1.results[0]), ResultMultiset(r2.results[0]));
  // And still the right answer.
  ExpectSameResult(baseline.results[0], r1.results[0]);

  // A different seed is a different storm (the schedule itself differs).
  FaultPlan storm7 =
      FaultPlan::RandomStorm(7, 2, 2, baseline.makespan);
  FaultPlan storm8 =
      FaultPlan::RandomStorm(8, 2, 2, baseline.makespan);
  EXPECT_NE(storm7.ToString(), storm8.ToString());
  MachineReport r3 = run_storm(8);
  ExpectSameResult(baseline.results[0], r3.results[0]);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: kill 1 of 8 IPs mid-benchmark
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, PaperBenchmarkSurvivesKillingOneOfEightIps) {
  StorageEngine bench_storage(/*default_page_bytes=*/2000);
  ASSERT_OK_AND_ASSIGN(int64_t total,
                       BuildPaperDatabase(&bench_storage, /*scale=*/0.2));
  EXPECT_GT(total, 0);
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans;
  for (const Query& q : queries) plans.push_back(q.root.get());

  MachineOptions opts;
  opts.granularity = Granularity::kPage;
  opts.config.num_instruction_processors = 8;
  opts.config.num_instruction_controllers = 3;
  opts.config.page_bytes = 2000;
  opts.config.ic_local_memory_pages = 16;
  opts.config.disk_cache_pages = 128;

  MachineSimulator healthy(&bench_storage, opts);
  ASSERT_OK_AND_ASSIGN(MachineReport baseline, healthy.Run(plans));
  ASSERT_EQ(baseline.results.size(), plans.size());

  // Strike at several points of the run: every strike must be survivable,
  // and at least one must catch the IP with undelivered work (a recorded
  // re-dispatch), or the recovery path was never really exercised.
  uint64_t total_redispatches = 0;
  for (double frac : {0.1, 0.25, 0.4, 0.55, 0.7}) {
    SCOPED_TRACE(frac);
    FaultPlan fp = FaultPlan::KillIp(
        1, SimTime::Nanos(static_cast<int64_t>(
               static_cast<double>(baseline.makespan.nanos()) * frac)));
    Tighten(&fp);
    MachineOptions faulted = opts;
    faulted.fault_plan = fp;
    MachineSimulator sim(&bench_storage, faulted);
    ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run(plans));
    EXPECT_EQ(report.faults.ip_kills, 1u);
    total_redispatches += report.faults.redispatches;
    // All ten benchmark answers identical to the fault-free run.
    ASSERT_EQ(report.results.size(), baseline.results.size());
    for (size_t i = 0; i < baseline.results.size(); ++i) {
      SCOPED_TRACE(i);
      ExpectSameResult(baseline.results[i], report.results[i]);
    }
  }
  EXPECT_GE(total_redispatches, 1u);
}

// ---------------------------------------------------------------------------
// Redundancy exhausted: clean Status, never a hang
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, AllIpsKilledFailsUnavailable) {
  PlanNodePtr plan = PlanFor(Granularity::kPage);
  MachineOptions opts = Options(Granularity::kPage, /*ips=*/2);
  FaultPlan fp;
  fp.events.push_back(
      {FaultType::kKillIp, SimTime::Millis(1), /*target=*/0, 1,
       SimTime::Zero()});
  fp.events.push_back(
      {FaultType::kKillIp, SimTime::Millis(1), /*target=*/1, 1,
       SimTime::Zero()});
  Tighten(&fp);
  opts.fault_plan = fp;
  MachineSimulator sim(storage_.get(), opts);
  auto report = sim.Run({plan.get()});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsUnavailable()) << report.status().ToString();
}

TEST_F(FaultInjectionTest, RetryBudgetExhaustedFailsUnavailable) {
  // Every assignment packet corrupts forever: the IC retries max_retries
  // times, then gives up with a clean status instead of spinning.
  PlanNodePtr plan = PlanFor(Granularity::kPage);
  MachineOptions opts = Options(Granularity::kPage);
  FaultPlan fp = FaultPlan::CorruptPackets(SimTime::Zero(),
                                           /*count=*/1u << 20);
  Tighten(&fp);
  fp.max_retries = 2;
  opts.fault_plan = fp;
  MachineSimulator sim(storage_.get(), opts);
  auto report = sim.Run({plan.get()});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsUnavailable()) << report.status().ToString();
}

TEST_F(FaultInjectionTest, AllIcsFailedFailsUnavailable) {
  PlanNodePtr plan = PlanFor(Granularity::kPage);
  MachineOptions opts = Options(Granularity::kPage);
  FaultPlan fp;
  for (int ic = 0; ic < 3; ++ic) {
    fp.events.push_back({FaultType::kFailIc, SimTime::Millis(1), ic, 1,
                         SimTime::Zero()});
  }
  Tighten(&fp);
  opts.fault_plan = fp;
  MachineSimulator sim(storage_.get(), opts);
  auto report = sim.Run({plan.get()});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsUnavailable()) << report.status().ToString();
}

// ---------------------------------------------------------------------------
// Fault-free runs are untouched by the machinery
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, EmptyPlanChangesNothing) {
  PlanNodePtr plan = PlanFor(Granularity::kPage);
  MachineSimulator s1(storage_.get(), Options(Granularity::kPage, 8));
  ASSERT_OK_AND_ASSIGN(MachineReport r1, s1.Run({plan.get()}));
  MachineOptions opts = Options(Granularity::kPage, 8);
  opts.fault_plan.detection_timeout = SimTime::Micros(1);  // Plan still empty.
  MachineSimulator s2(storage_.get(), opts);
  ASSERT_OK_AND_ASSIGN(MachineReport r2, s2.Run({plan.get()}));
  EXPECT_EQ(r1.makespan.nanos(), r2.makespan.nanos());
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_EQ(r1.bytes.outer_ring, r2.bytes.outer_ring);
  EXPECT_EQ(r1.control_packets, r2.control_packets);
  EXPECT_FALSE(r2.faults.any());
}

// ---------------------------------------------------------------------------
// Threaded-engine analogue
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, EngineSurvivesWorkerAbandonmentAndPoison) {
  auto q1 = MakeJoin(
      MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(300))),
      MakeScan("gamma"), Eq(Col("k100"), RightCol("k100")));
  auto q2 = MakeProject(MakeScan("beta"), {"k10", "k100"}, /*dedup=*/true);
  std::vector<const PlanNode*> raw{q1.get(), q2.get()};

  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(QueryResult e1, reference.Execute(*q1));
  ASSERT_OK_AND_ASSIGN(QueryResult e2, reference.Execute(*q2));

  ExecOptions opts;
  opts.num_processors = 4;
  opts.page_bytes = 2000;
  opts.fault_plan.abandon_workers = 2;
  opts.fault_plan.abandon_after_tasks = 3;
  opts.fault_plan.poison_packets = 7;
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<QueryResult> results,
                       RunBatch(storage_.get(), raw, opts, &stats));
  ExpectSameResult(e1, results[0]);
  ExpectSameResult(e2, results[1]);
  EXPECT_EQ(stats.workers_abandoned, 2u);
  EXPECT_EQ(stats.poison_dropped, 7u);
  EXPECT_GE(stats.faults_injected, 9u);
}

TEST_F(FaultInjectionTest, EngineClampsSoOneWorkerSurvives) {
  // Asking every worker to abandon must still finish the batch: the clamp
  // guarantees one survivor drains the queue.
  auto q = MakeRestrict(MakeScan("alpha"), Ge(Col("k1000"), Lit(500)));
  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*q));
  ExecOptions opts;
  opts.num_processors = 3;
  opts.page_bytes = 2000;
  opts.fault_plan.abandon_workers = 99;
  opts.fault_plan.abandon_after_tasks = 1;
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(QueryResult result,
                       RunQuery(storage_.get(), *q, opts, &stats));
  ExpectSameResult(expected, result);
  EXPECT_LE(stats.workers_abandoned, 2u);
}

}  // namespace
}  // namespace dfdb

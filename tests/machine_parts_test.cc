/// \file machine_parts_test.cc
/// \brief Tests for the machine simulator's building blocks: event queue,
/// resources, and plan -> instruction compilation.

#include <gtest/gtest.h>

#include "machine/event_queue.h"
#include "machine/instruction.h"
#include "machine/resources.h"
#include "tests/test_util.h"

namespace dfdb {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.ScheduleAt(SimTime::Millis(3), [&] { order.push_back(3); });
  eq.ScheduleAt(SimTime::Millis(1), [&] { order.push_back(1); });
  eq.ScheduleAt(SimTime::Millis(2), [&] { order.push_back(2); });
  EXPECT_EQ(eq.RunToCompletion(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), SimTime::Millis(3));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eq.ScheduleAt(SimTime::Millis(1), [&order, i] { order.push_back(i); });
  }
  eq.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsMayScheduleEvents) {
  EventQueue eq;
  int fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth > 0) {
      eq.ScheduleAfter(SimTime::Micros(10), [&chain, depth] { chain(depth - 1); });
    }
  };
  eq.ScheduleAt(SimTime::Zero(), [&chain] { chain(9); });
  EXPECT_EQ(eq.RunToCompletion(), 10u);
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(eq.now(), SimTime::Micros(90));
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue eq;
  SimTime observed;
  eq.ScheduleAt(SimTime::Millis(5), [&] {
    eq.ScheduleAt(SimTime::Millis(1), [&] { observed = eq.now(); });
  });
  eq.RunToCompletion();
  EXPECT_EQ(observed, SimTime::Millis(5));  // Not in the past.
}

TEST(EventQueueTest, MaxEventsBounds) {
  EventQueue eq;
  std::function<void()> forever = [&] {
    eq.ScheduleAfter(SimTime::Nanos(1), forever);
  };
  eq.ScheduleAt(SimTime::Zero(), forever);
  EXPECT_EQ(eq.RunToCompletion(100), 100u);
  EXPECT_FALSE(eq.empty());
}

TEST(SerialResourceTest, SerializesOverlappingJobs) {
  SerialResource r;
  // Job A at t=0 for 10ms, job B at t=5 must wait until 10.
  EXPECT_EQ(r.Acquire(SimTime::Zero(), SimTime::Millis(10)),
            SimTime::Millis(10));
  EXPECT_EQ(r.Acquire(SimTime::Millis(5), SimTime::Millis(3)),
            SimTime::Millis(13));
  // Idle gap: job C at t=20 starts immediately.
  EXPECT_EQ(r.Acquire(SimTime::Millis(20), SimTime::Millis(1)),
            SimTime::Millis(21));
  EXPECT_EQ(r.busy_time(), SimTime::Millis(14));
}

TEST(LruPageSetTest, TouchInsertEvict) {
  LruPageSet lru(2);
  lru.Insert(1);
  lru.Insert(2);
  EXPECT_TRUE(lru.Touch(1));  // 1 becomes MRU.
  std::vector<uint64_t> evicted;
  lru.InsertEvict(3, &evicted);
  EXPECT_EQ(evicted, (std::vector<uint64_t>{2}));
  EXPECT_TRUE(lru.Contains(1));
  EXPECT_FALSE(lru.Contains(2));
  EXPECT_TRUE(lru.Contains(3));
  EXPECT_TRUE(lru.Remove(1));
  EXPECT_FALSE(lru.Remove(1));
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LruPageSetTest, ZeroCapacityHoldsNothing) {
  LruPageSet lru(0);
  lru.Insert(1);
  EXPECT_FALSE(lru.Contains(1));
  EXPECT_EQ(lru.size(), 0u);
}

// ---------------------------------------------------------------------------
// Instruction compilation
// ---------------------------------------------------------------------------

class CompileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema = Schema::CreateOrDie({Column::Int32("k"), Column::Int32("g")});
    ASSERT_OK_AND_ASSIGN(auto a, catalog_.CreateRelation("a", schema));
    ASSERT_OK_AND_ASSIGN(auto b, catalog_.CreateRelation("b", schema));
    (void)a;
    (void)b;
  }
  Catalog catalog_;
};

TEST_F(CompileTest, ScansBecomeBaseOperands) {
  auto plan = MakeJoin(MakeRestrict(MakeScan("a"), Lt(Col("k"), Lit(5))),
                       MakeScan("b"), Eq(Col("k"), RightCol("k")));
  ASSERT_OK_AND_ASSIGN(MachineProgram prog,
                       CompileProgram(catalog_, {plan.get()}));
  // Two instructions: the restrict and the join (scans are absorbed).
  ASSERT_EQ(prog.instructions.size(), 2u);
  const MachineInstruction& restrict_i = prog.instructions[0];
  const MachineInstruction& join_i = prog.instructions[1];
  EXPECT_EQ(restrict_i.op, PlanOp::kRestrict);
  ASSERT_EQ(restrict_i.operands.size(), 1u);
  EXPECT_TRUE(restrict_i.operands[0].is_base);
  EXPECT_EQ(restrict_i.operands[0].base_relation, "a");
  EXPECT_EQ(restrict_i.consumer, join_i.id);
  EXPECT_EQ(restrict_i.consumer_slot, 0);

  EXPECT_EQ(join_i.op, PlanOp::kJoin);
  ASSERT_EQ(join_i.operands.size(), 2u);
  EXPECT_FALSE(join_i.operands[0].is_base);
  EXPECT_EQ(join_i.operands[0].producer, restrict_i.id);
  EXPECT_TRUE(join_i.operands[1].is_base);
  EXPECT_EQ(join_i.operands[1].base_relation, "b");
  EXPECT_EQ(join_i.consumer, -1);  // Root: results to the host.
  EXPECT_EQ(prog.roots, (std::vector<int>{join_i.id}));
}

TEST_F(CompileTest, BareScanWrappedInRestrict) {
  auto plan = MakeScan("a");
  ASSERT_OK_AND_ASSIGN(MachineProgram prog,
                       CompileProgram(catalog_, {plan.get()}));
  ASSERT_EQ(prog.instructions.size(), 1u);
  EXPECT_EQ(prog.instructions[0].op, PlanOp::kRestrict);
  EXPECT_TRUE(prog.instructions[0].operands[0].is_base);
}

TEST_F(CompileTest, BarrierFlagging) {
  auto dedup = MakeProject(MakeScan("a"), {"k"}, /*dedup=*/true);
  auto plain = MakeProject(MakeScan("a"), {"k"}, /*dedup=*/false);
  auto agg = MakeAggregate(MakeScan("a"), {},
                           {{AggregateSpec::Func::kCount, "", "c"}});
  auto bag_union = MakeUnion(MakeScan("a"), MakeScan("b"), true);
  auto set_union = MakeUnion(MakeScan("a"), MakeScan("b"), false);
  ASSERT_OK_AND_ASSIGN(
      MachineProgram prog,
      CompileProgram(catalog_, {dedup.get(), plain.get(), agg.get(),
                                bag_union.get(), set_union.get()}));
  ASSERT_EQ(prog.instructions.size(), 5u);
  EXPECT_TRUE(prog.instructions[0].barrier);
  EXPECT_FALSE(prog.instructions[1].barrier);
  EXPECT_TRUE(prog.instructions[2].barrier);
  EXPECT_FALSE(prog.instructions[3].barrier);
  EXPECT_TRUE(prog.instructions[4].barrier);
}

TEST_F(CompileTest, DeleteGetsBaseOperand) {
  auto plan = MakeDelete("a", Lt(Col("k"), Lit(5)));
  ASSERT_OK_AND_ASSIGN(MachineProgram prog,
                       CompileProgram(catalog_, {plan.get()}));
  ASSERT_EQ(prog.instructions.size(), 1u);
  ASSERT_EQ(prog.instructions[0].operands.size(), 1u);
  EXPECT_TRUE(prog.instructions[0].operands[0].is_base);
  EXPECT_EQ(prog.instructions[0].operands[0].base_relation, "a");
}

TEST_F(CompileTest, MultiQueryNumbering) {
  auto q0 = MakeScan("a");
  auto q1 = MakeRestrict(MakeScan("b"), Lt(Col("k"), Lit(1)));
  ASSERT_OK_AND_ASSIGN(MachineProgram prog,
                       CompileProgram(catalog_, {q0.get(), q1.get()}));
  ASSERT_EQ(prog.roots.size(), 2u);
  EXPECT_EQ(prog.instructions[prog.roots[0]].query_index, 0u);
  EXPECT_EQ(prog.instructions[prog.roots[1]].query_index, 1u);
  EXPECT_EQ(prog.analyses.size(), 2u);
}

TEST_F(CompileTest, NullQueryRejected) {
  EXPECT_TRUE(CompileProgram(catalog_, {nullptr}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace dfdb

/// \file expr_compile_test.cc
/// \brief Differential tests for compiled predicate programs: a compiled
/// program must be byte-identical to the interpreted Expr oracle on every
/// tuple, page, and join it accepts — including CHAR trimming, NaN ordering,
/// and hash-join duplicate order.

#include "ra/expr_compile.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <tuple>
#include <vector>
#include <gtest/gtest.h>

#include "common/random.h"
#include "operators/kernels.h"
#include "storage/page.h"
#include "storage/tuple.h"
#include "tests/test_util.h"

namespace dfdb {
namespace {

// ---------------------------------------------------------------------------
// Random schema / page / predicate generation
// ---------------------------------------------------------------------------

Schema RandomSchema(Random* rng) {
  const int n = 1 + static_cast<int>(rng->Uniform(5));
  std::vector<Column> cols;
  for (int i = 0; i < n; ++i) {
    // Two-step append (not `"c" + std::to_string(i)`): the rvalue
    // operator+ trips a gcc-12 -Werror=restrict false positive at -O2.
    std::string name = "c";
    name += std::to_string(i);
    switch (rng->Uniform(4)) {
      case 0:
        cols.push_back(Column::Int32(name));
        break;
      case 1:
        cols.push_back(Column::Int64(name));
        break;
      case 2:
        cols.push_back(Column::Double(name));
        break;
      default:
        cols.push_back(Column::Char(name, 1 + static_cast<int>(rng->Uniform(7))));
        break;
    }
  }
  return Schema::CreateOrDie(cols);
}

/// Small value domains so random predicates hit both outcomes and join keys
/// collide; doubles occasionally NaN to pin down the interpreter's
/// "incomparable compares as equal" behavior.
Value RandomValue(const Column& col, Random* rng) {
  switch (col.type) {
    case ColumnType::kInt32:
      return Value::Int32(static_cast<int32_t>(rng->Uniform(10)) - 3);
    case ColumnType::kInt64:
      return Value::Int64(static_cast<int64_t>(rng->Uniform(10)) - 3);
    case ColumnType::kDouble: {
      static const double kVals[] = {0.0, 0.5, -1.25, 2.0, 3.5};
      if (rng->Uniform(16) == 0) return Value::Double(std::nan(""));
      return Value::Double(kVals[rng->Uniform(5)]);
    }
    case ColumnType::kChar: {
      const int len = static_cast<int>(rng->Uniform(static_cast<uint64_t>(col.width) + 1));
      std::string s;
      for (int i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng->Uniform(3)));
      }
      return Value::Char(s);
    }
  }
  return Value::Int32(0);
}

PagePtr RandomPage(const Schema& schema, Random* rng, int n) {
  auto page = Page::Create(0, schema.tuple_width(), schema.tuple_width() * n);
  EXPECT_TRUE(page.ok());
  for (int i = 0; i < n; ++i) {
    std::vector<Value> values;
    for (const Column& col : schema.columns()) {
      values.push_back(RandomValue(col, rng));
    }
    auto tuple = EncodeTuple(schema, values);
    EXPECT_TRUE(tuple.ok()) << tuple.status();
    EXPECT_TRUE(page->Append(Slice(*tuple)).ok());
  }
  return SealPage(std::move(*page));
}

/// A numeric- or string-valued expression. Deliberately includes constructs
/// Compile() refuses (division, CHAR in arithmetic) so the fuzz also
/// exercises the refusal/fallback decision.
ExprPtr RandomScalar(const Schema& left, const Schema* right, Random* rng,
                     int depth) {
  switch (rng->Uniform(depth > 0 ? 5 : 4)) {
    case 0: {
      if (right != nullptr && rng->Uniform(2) == 0) {
        return RightCol(
            right->column(static_cast<int>(rng->Uniform(
                              static_cast<uint64_t>(right->num_columns())))).name);
      }
      return Col(left.column(static_cast<int>(rng->Uniform(
                                 static_cast<uint64_t>(left.num_columns())))).name);
    }
    case 1:
      return Lit(static_cast<int32_t>(rng->Uniform(10)) - 3);
    case 2: {
      static const double kVals[] = {0.0, 0.5, -1.25, 2.0, 3.5};
      return Lit(kVals[rng->Uniform(5)]);
    }
    case 3: {
      static const char* kStrs[] = {"a", "ab", "b", "abc", "ba"};
      return Lit(kStrs[rng->Uniform(5)]);
    }
    default: {
      ExprPtr l = RandomScalar(left, right, rng, depth - 1);
      ExprPtr r = RandomScalar(left, right, rng, depth - 1);
      switch (rng->Uniform(4)) {
        case 0: return Add(std::move(l), std::move(r));
        case 1: return Sub(std::move(l), std::move(r));
        case 2: return Mul(std::move(l), std::move(r));
        default: return Div(std::move(l), std::move(r));
      }
    }
  }
}

ExprPtr RandomCompare(const Schema& left, const Schema* right, Random* rng,
                      int depth) {
  ExprPtr l = RandomScalar(left, right, rng, depth);
  ExprPtr r = RandomScalar(left, right, rng, depth);
  switch (rng->Uniform(6)) {
    case 0: return Eq(std::move(l), std::move(r));
    case 1: return Ne(std::move(l), std::move(r));
    case 2: return Lt(std::move(l), std::move(r));
    case 3: return Le(std::move(l), std::move(r));
    case 4: return Gt(std::move(l), std::move(r));
    default: return Ge(std::move(l), std::move(r));
  }
}

ExprPtr RandomPred(const Schema& left, const Schema* right, Random* rng,
                   int depth) {
  switch (rng->Uniform(depth > 0 ? 4 : 1)) {
    case 0:
      return RandomCompare(left, right, rng, depth > 0 ? depth - 1 : 0);
    case 1:
      return And(RandomPred(left, right, rng, depth - 1),
                 RandomPred(left, right, rng, depth - 1));
    case 2:
      return Or(RandomPred(left, right, rng, depth - 1),
                RandomPred(left, right, rng, depth - 1));
    default:
      return Not(RandomPred(left, right, rng, depth - 1));
  }
}

// ---------------------------------------------------------------------------
// Differential fuzz: compiled == interpreted, byte for byte
// ---------------------------------------------------------------------------

TEST(ExprCompileFuzz, RestrictAndCountMatchInterpreter) {
  Random rng(7);
  int compiled_preds = 0;
  int refused_preds = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const Schema schema = RandomSchema(&rng);
    const PagePtr page = RandomPage(schema, &rng, 48);
    ExprPtr pred = RandomPred(schema, nullptr, &rng, 3);
    if (!pred->Bind(schema, nullptr).ok()) continue;
    auto compiled = CompiledPredicate::Compile(*pred, schema);
    if (!compiled.ok()) {
      // Refusal is a valid outcome (division, CHAR misuse, CHAR root...);
      // the engines fall back to the interpreter.
      ++refused_preds;
      continue;
    }
    ++compiled_preds;
    // Tuple level: the interpreter must succeed (every per-tuple error
    // construct is rejected at compile time) and agree exactly.
    for (int i = 0; i < page->num_tuples(); ++i) {
      TupleView view(&schema, page->tuple(i));
      auto want = pred->EvalBool(view, nullptr);
      ASSERT_TRUE(want.ok()) << want.status() << " pred=" << pred->ToString();
      EXPECT_EQ(compiled->Matches(page->tuple(i).data(), nullptr), *want)
          << "tuple " << i << " pred=" << pred->ToString();
    }
    // Page level: identical bytes in identical order, and counts agree.
    VectorSink interpreted, fast;
    ASSERT_OK(RestrictPage(schema, *pred, *page, &interpreted));
    ASSERT_OK(RestrictPage(*compiled, *page, &fast));
    EXPECT_EQ(interpreted.tuples(), fast.tuples());
    EXPECT_EQ(CountMatches(*compiled, *page), interpreted.tuples().size());
    ASSERT_OK_AND_ASSIGN(uint64_t auto_count,
                         CountMatches(schema, *pred, *page));
    EXPECT_EQ(auto_count, interpreted.tuples().size());
  }
  // The fuzz is only meaningful if both paths are exercised heavily.
  EXPECT_GT(compiled_preds, 100);
  EXPECT_GT(refused_preds, 20);
}

TEST(ExprCompileFuzz, JoinMatchesInterpreterIncludingOrder) {
  Random rng(11);
  int hash_joins = 0;
  int nested_joins = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Schema outer = RandomSchema(&rng);
    const Schema inner = RandomSchema(&rng);
    const PagePtr outer_page = RandomPage(outer, &rng, 24);
    const PagePtr inner_page = RandomPage(inner, &rng, 24);

    // Bias toward hash-eligible predicates: an explicit same-type equality
    // conjunct, sometimes AND-ed with a random residual.
    ExprPtr pred;
    int oc = -1, ic = -1;
    for (int o = 0; o < outer.num_columns() && oc < 0; ++o) {
      for (int i = 0; i < inner.num_columns(); ++i) {
        if (outer.column(o).type == inner.column(i).type &&
            outer.column(o).type != ColumnType::kDouble) {
          oc = o;
          ic = i;
          break;
        }
      }
    }
    if (oc >= 0 && rng.Uniform(3) != 0) {
      pred = Eq(Col(outer.column(oc).name), RightCol(inner.column(ic).name));
      if (rng.Uniform(2) == 0) {
        pred = And(std::move(pred), RandomPred(outer, &inner, &rng, 2));
      }
    } else {
      pred = RandomPred(outer, &inner, &rng, 2);
    }
    if (!pred->Bind(outer, &inner).ok()) continue;
    auto compiled = CompiledJoinPredicate::Compile(*pred, outer, inner);
    if (!compiled.ok()) continue;

    VectorSink interpreted, fast;
    ASSERT_OK(
        JoinPages(outer, inner, *pred, *outer_page, *inner_page, &interpreted));
    JoinScratch scratch;
    KernelStats stats;
    ASSERT_OK(JoinPages(*compiled, *outer_page, *inner_page, &scratch, &fast,
                        &stats));
    // Byte-identical output in the exact nested-loops order, whichever path
    // the compiled kernel took.
    EXPECT_EQ(interpreted.tuples(), fast.tuples())
        << "pred=" << pred->ToString();
    if (compiled->hash_eligible()) {
      ++hash_joins;
      EXPECT_EQ(stats.hash_joins.load(), 1u);
    } else {
      ++nested_joins;
      EXPECT_EQ(stats.nested_joins.load(), 1u);
    }
  }
  EXPECT_GT(hash_joins, 50);
  EXPECT_GT(nested_joins, 10);
}

// ---------------------------------------------------------------------------
// Targeted semantics
// ---------------------------------------------------------------------------

Schema SmallSchema() {
  return Schema::CreateOrDie({Column::Int32("k"), Column::Double("v"),
                              Column::Char("s", 4)});
}

PagePtr SmallPage(const std::vector<std::tuple<int32_t, double, std::string>>&
                      rows) {
  Schema schema = SmallSchema();
  auto page = Page::Create(
      0, schema.tuple_width(),
      schema.tuple_width() * static_cast<int>(rows.size() ? rows.size() : 1));
  EXPECT_TRUE(page.ok());
  for (const auto& [k, v, s] : rows) {
    auto t = EncodeTuple(schema,
                         {Value::Int32(k), Value::Double(v), Value::Char(s)});
    EXPECT_TRUE(t.ok());
    EXPECT_TRUE(page->Append(Slice(*t)).ok());
  }
  return SealPage(std::move(*page));
}

TEST(ExprCompile, DetectsFastShapes) {
  Schema schema = SmallSchema();
  ExprPtr single = Lt(Col("k"), Lit(5));
  ASSERT_OK(single->Bind(schema, nullptr));
  ASSERT_OK_AND_ASSIGN(CompiledPredicate cs,
                       CompiledPredicate::Compile(*single, schema));
  EXPECT_EQ(cs.shape(), CompiledPredicate::Shape::kSingleCompare);

  // Literal-first compares are flipped into column-vs-constant form.
  ExprPtr flipped = Gt(Lit(5), Col("k"));  // 5 > k  <=>  k < 5.
  ASSERT_OK(flipped->Bind(schema, nullptr));
  ASSERT_OK_AND_ASSIGN(CompiledPredicate cf,
                       CompiledPredicate::Compile(*flipped, schema));
  EXPECT_EQ(cf.shape(), CompiledPredicate::Shape::kSingleCompare);

  ExprPtr conj = And(Ge(Col("k"), Lit(1)), Lt(Col("v"), Lit(2.0)));
  ASSERT_OK(conj->Bind(schema, nullptr));
  ASSERT_OK_AND_ASSIGN(CompiledPredicate cc,
                       CompiledPredicate::Compile(*conj, schema));
  EXPECT_EQ(cc.shape(), CompiledPredicate::Shape::kConjunction);
  EXPECT_EQ(cc.col_compares().size(), 2u);

  // Disjunctions run the generic program.
  ExprPtr disj = Or(Ge(Col("k"), Lit(1)), Lt(Col("v"), Lit(2.0)));
  ASSERT_OK(disj->Bind(schema, nullptr));
  ASSERT_OK_AND_ASSIGN(CompiledPredicate cd,
                       CompiledPredicate::Compile(*disj, schema));
  EXPECT_EQ(cd.shape(), CompiledPredicate::Shape::kGeneric);
  EXPECT_GT(cd.num_ops(), 0u);

  const PagePtr page = SmallPage(
      {{0, 0.0, "a"}, {1, 1.5, "b"}, {5, 2.5, "c"}, {7, -1.0, "d"}});
  for (const auto* e :
       {&single, &flipped, &conj, &disj}) {
    ASSERT_OK_AND_ASSIGN(CompiledPredicate c,
                         CompiledPredicate::Compile(**e, schema));
    for (int i = 0; i < page->num_tuples(); ++i) {
      TupleView view(&schema, page->tuple(i));
      ASSERT_OK_AND_ASSIGN(bool want, (*e)->EvalBool(view, nullptr));
      EXPECT_EQ(c.Matches(page->tuple(i).data(), nullptr), want);
    }
  }
}

TEST(ExprCompile, RefusesPerTupleErrorConstructs) {
  Schema schema = SmallSchema();
  // Division can fail per tuple (div by zero): never compiled.
  ExprPtr div = Gt(Div(Col("k"), Lit(2)), Lit(1));
  ASSERT_OK(div->Bind(schema, nullptr));
  EXPECT_FALSE(CompiledPredicate::Compile(*div, schema).ok());

  // CHAR against a number errors in Value::Compare: rejected.
  ExprPtr mixed = Eq(Col("s"), Lit(1));
  if (mixed->Bind(schema, nullptr).ok()) {
    EXPECT_FALSE(CompiledPredicate::Compile(*mixed, schema).ok());
  }

  // CHAR in arithmetic errors in AsNumeric: rejected.
  ExprPtr arith = Gt(Add(Col("s"), Lit(1)), Lit(0));
  if (arith->Bind(schema, nullptr).ok()) {
    EXPECT_FALSE(CompiledPredicate::Compile(*arith, schema).ok());
  }

  // A right-side reference without a right schema: rejected.
  ExprPtr right = Eq(Col("k"), RightCol("k"));
  EXPECT_FALSE(right->Bind(schema, nullptr).ok() &&
               CompiledPredicate::Compile(*right, schema).ok());

  // Exceeding the evaluation stack budget: rejected (interpreter recurses,
  // the program would need >32 slots).
  ExprPtr deep = Lit(1);
  for (int i = 0; i < 40; ++i) deep = Add(Lit(1), std::move(deep));
  ExprPtr deep_pred = Gt(std::move(deep), Lit(0));
  ASSERT_OK(deep_pred->Bind(schema, nullptr));
  EXPECT_FALSE(CompiledPredicate::Compile(*deep_pred, schema).ok());
}

TEST(ExprCompile, CharTrimmingMatchesInterpreter) {
  Schema schema = SmallSchema();
  // Stored CHAR(4) values are blank-padded; the interpreter trims trailing
  // blanks on load but keeps literal bytes raw. " ab" != "ab".
  const PagePtr page =
      SmallPage({{0, 0.0, "ab"}, {1, 0.0, "ab c"}, {2, 0.0, " ab"},
                 {3, 0.0, ""}, {4, 0.0, "abc"}});
  for (const char* lit : {"ab", " ab", "", "abc", "ab  "}) {
    for (auto make : {&Eq, &Lt, &Ge}) {
      ExprPtr pred = (*make)(Col("s"), Lit(lit));
      ASSERT_OK(pred->Bind(schema, nullptr));
      ASSERT_OK_AND_ASSIGN(CompiledPredicate compiled,
                           CompiledPredicate::Compile(*pred, schema));
      for (int i = 0; i < page->num_tuples(); ++i) {
        TupleView view(&schema, page->tuple(i));
        ASSERT_OK_AND_ASSIGN(bool want, pred->EvalBool(view, nullptr));
        EXPECT_EQ(compiled.Matches(page->tuple(i).data(), nullptr), want)
            << "lit=[" << lit << "] tuple " << i;
      }
    }
  }
  // Sanity on the headline case: trailing blanks trim, leading ones don't.
  ExprPtr eq = Eq(Col("s"), Lit("ab"));
  ASSERT_OK(eq->Bind(schema, nullptr));
  ASSERT_OK_AND_ASSIGN(CompiledPredicate compiled,
                       CompiledPredicate::Compile(*eq, schema));
  EXPECT_EQ(CountMatches(compiled, *page), 1u);
}

TEST(ExprCompile, NanComparisonsMatchInterpreter) {
  Schema schema = SmallSchema();
  const double nan = std::nan("");
  const PagePtr page =
      SmallPage({{0, nan, "a"}, {1, 1.0, "b"}, {2, -0.0, "c"}});
  for (double lit : {1.0, 0.0, nan}) {
    for (auto make : {&Eq, &Ne, &Lt, &Le, &Gt, &Ge}) {
      ExprPtr pred = (*make)(Col("v"), Lit(lit));
      ASSERT_OK(pred->Bind(schema, nullptr));
      ASSERT_OK_AND_ASSIGN(CompiledPredicate compiled,
                           CompiledPredicate::Compile(*pred, schema));
      for (int i = 0; i < page->num_tuples(); ++i) {
        TupleView view(&schema, page->tuple(i));
        ASSERT_OK_AND_ASSIGN(bool want, pred->EvalBool(view, nullptr));
        EXPECT_EQ(compiled.Matches(page->tuple(i).data(), nullptr), want)
            << "lit=" << lit << " tuple " << i;
      }
    }
  }
}

TEST(ExprCompile, HashJoinKeepsDuplicateOrder) {
  Schema schema = SmallSchema();
  // Heavy key duplication on both sides: the hash path chains duplicates
  // and must still emit in exact nested-loops (i-major, ascending-j) order.
  std::vector<std::tuple<int32_t, double, std::string>> rows;
  for (int i = 0; i < 30; ++i) {
    rows.push_back({i % 3, static_cast<double>(i), "x"});
  }
  const PagePtr outer_page = SmallPage(rows);
  const PagePtr inner_page = SmallPage(rows);
  ExprPtr pred = Eq(Col("k"), RightCol("k"));
  ASSERT_OK(pred->Bind(schema, &schema));
  ASSERT_OK_AND_ASSIGN(CompiledJoinPredicate compiled,
                       CompiledJoinPredicate::Compile(*pred, schema, schema));
  ASSERT_TRUE(compiled.hash_eligible());
  EXPECT_FALSE(compiled.has_residual());

  VectorSink interpreted, fast;
  ASSERT_OK(JoinPages(schema, schema, *pred, *outer_page, *inner_page,
                      &interpreted));
  JoinScratch scratch;
  KernelStats stats;
  ASSERT_OK(JoinPages(compiled, *outer_page, *inner_page, &scratch, &fast,
                      &stats));
  EXPECT_EQ(interpreted.tuples().size(), 300u);  // 30 * 10 matches.
  EXPECT_EQ(interpreted.tuples(), fast.tuples());
  EXPECT_EQ(stats.hash_joins.load(), 1u);
}

TEST(ExprCompile, EquiKeyWithResidualSplitsCorrectly) {
  Schema schema = SmallSchema();
  ExprPtr pred = And(Eq(Col("k"), RightCol("k")),
                     Lt(Col("v"), RightCol("v")));
  ASSERT_OK(pred->Bind(schema, &schema));
  ASSERT_OK_AND_ASSIGN(CompiledJoinPredicate compiled,
                       CompiledJoinPredicate::Compile(*pred, schema, schema));
  ASSERT_TRUE(compiled.hash_eligible());
  EXPECT_TRUE(compiled.has_residual());
  EXPECT_EQ(compiled.keys().size(), 1u);

  Random rng(3);
  std::vector<std::tuple<int32_t, double, std::string>> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({static_cast<int32_t>(rng.Uniform(4)),
                    static_cast<double>(rng.Uniform(6)), "y"});
  }
  const PagePtr outer_page = SmallPage(rows);
  std::shuffle(rows.begin(), rows.end(),
               std::mt19937(42));  // NOLINT: determinism only.
  const PagePtr inner_page = SmallPage(rows);

  VectorSink interpreted, fast;
  ASSERT_OK(JoinPages(schema, schema, *pred, *outer_page, *inner_page,
                      &interpreted));
  JoinScratch scratch;
  ASSERT_OK(
      JoinPages(compiled, *outer_page, *inner_page, &scratch, &fast, nullptr));
  EXPECT_EQ(interpreted.tuples(), fast.tuples());

  // Doubles are never extracted as hash keys (-0.0 == 0.0, NaN).
  ExprPtr dpred = Eq(Col("v"), RightCol("v"));
  ASSERT_OK(dpred->Bind(schema, &schema));
  ASSERT_OK_AND_ASSIGN(CompiledJoinPredicate dcompiled,
                       CompiledJoinPredicate::Compile(*dpred, schema, schema));
  EXPECT_FALSE(dcompiled.hash_eligible());
}

TEST(ExprCompile, SharedPredicateIsThreadSafe) {
  Schema schema = SmallSchema();
  Random rng(5);
  std::vector<std::tuple<int32_t, double, std::string>> rows;
  for (int i = 0; i < 64; ++i) {
    rows.push_back({static_cast<int32_t>(rng.Uniform(8)),
                    static_cast<double>(i), "z"});
  }
  const PagePtr page = SmallPage(rows);
  ExprPtr pred = And(Ge(Col("k"), Lit(2)), Lt(Col("k"), Lit(6)));
  ASSERT_OK(pred->Bind(schema, nullptr));
  ASSERT_OK_AND_ASSIGN(CompiledPredicate compiled,
                       CompiledPredicate::Compile(*pred, schema));
  const uint64_t want = CountMatches(compiled, *page);

  KernelStats stats;
  constexpr int kThreads = 4;
  constexpr int kReps = 200;
  std::vector<std::thread> threads;
  std::vector<uint64_t> sums(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kReps; ++r) {
        sums[static_cast<size_t>(t)] += CountMatches(compiled, *page, &stats);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (uint64_t sum : sums) EXPECT_EQ(sum, want * kReps);
  EXPECT_EQ(stats.compiled_pages.load(), static_cast<uint64_t>(kThreads) * kReps);
}

}  // namespace
}  // namespace dfdb

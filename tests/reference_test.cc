/// \file reference_test.cc
/// \brief Ground-truth tests for the reference executor on tiny,
/// hand-computed datasets. Every other executor is validated against the
/// reference, so the reference itself is validated against answers worked
/// out by hand — closing the oracle loop.

#include "engine/reference.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dfdb {
namespace {

/// rows: (id, grp, name)
Schema TinySchema() {
  return Schema::CreateOrDie(
      {Column::Int32("id"), Column::Int32("grp"), Column::Char("name", 4)});
}

class ReferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(64);
    // left: (1,10,"a") (2,20,"b") (3,10,"c") (4,30,"d")
    MakeRel("left", {{1, 10, "a"}, {2, 20, "b"}, {3, 10, "c"}, {4, 30, "d"}});
    // right: (5,10,"x") (6,10,"y") (7,40,"z")
    MakeRel("right_rel", {{5, 10, "x"}, {6, 10, "y"}, {7, 40, "z"}});
    // dup: values with duplicates for project/union tests.
    MakeRel("dup", {{1, 10, "a"}, {1, 10, "a"}, {2, 10, "a"}, {2, 20, "b"}});
  }

  void MakeRel(const std::string& name,
               std::vector<std::tuple<int, int, const char*>> rows) {
    auto id = storage_->CreateRelation(name, TinySchema());
    ASSERT_TRUE(id.ok()) << id.status();
    auto file = storage_->GetHeapFile(*id);
    ASSERT_TRUE(file.ok());
    for (const auto& [a, b, c] : rows) {
      ASSERT_OK((*file)->Append(
          {Value::Int32(a), Value::Int32(b), Value::Char(c)}));
    }
    ASSERT_OK(storage_->SyncStats(*id));
  }

  /// Runs and returns rows as (col0 int, col1 int, ...) tuples of strings
  /// for easy literal comparison, sorted.
  std::vector<std::string> Rows(const PlanNodePtr& plan,
                                bool sort_merge = false) {
    ReferenceExecutor reference(storage_.get());
    auto result = reference.Execute(*plan, sort_merge);
    EXPECT_TRUE(result.ok()) << result.status();
    std::vector<std::string> rows;
    if (!result.ok()) return rows;
    (void)result->ForEachTuple([&](const TupleView& t) -> Status {
      rows.push_back(t.ToString());
      return Status::OK();
    });
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_F(ReferenceTest, RestrictHandComputed) {
  EXPECT_EQ(Rows(MakeRestrict(MakeScan("left"), Eq(Col("grp"), Lit(10)))),
            (std::vector<std::string>{"(1, 10, a)", "(3, 10, c)"}));
  EXPECT_EQ(Rows(MakeRestrict(MakeScan("left"), Gt(Col("id"), Lit(3)))),
            (std::vector<std::string>{"(4, 30, d)"}));
}

TEST_F(ReferenceTest, ProjectHandComputed) {
  EXPECT_EQ(Rows(MakeProject(MakeScan("dup"), {"grp"}, /*dedup=*/false)),
            (std::vector<std::string>{"(10)", "(10)", "(10)", "(20)"}));
  EXPECT_EQ(Rows(MakeProject(MakeScan("dup"), {"grp"}, /*dedup=*/true)),
            (std::vector<std::string>{"(10)", "(20)"}));
  EXPECT_EQ(Rows(MakeProject(MakeScan("dup"), {"name", "grp"}, true)),
            (std::vector<std::string>{"(a, 10)", "(b, 20)"}));
}

TEST_F(ReferenceTest, JoinHandComputed) {
  // grp=10 on both sides: left {1,3} x right {5,6} = 4 rows; 20/30/40
  // match nothing.
  auto plan = MakeJoin(MakeScan("left"), MakeScan("right_rel"),
                       Eq(Col("grp"), RightCol("grp")));
  const std::vector<std::string> expected{
      "(1, 10, a, 5, 10, x)", "(1, 10, a, 6, 10, y)",
      "(3, 10, c, 5, 10, x)", "(3, 10, c, 6, 10, y)"};
  EXPECT_EQ(Rows(plan), expected);
  // Sorted-merge path computes the identical rows.
  EXPECT_EQ(Rows(plan, /*sort_merge=*/true), expected);
}

TEST_F(ReferenceTest, NonEquiJoinHandComputed) {
  // left.id > right-of-dup.id among ids {1,1,2,2}: pairs where l.id > r.id.
  auto plan = MakeJoin(MakeScan("left"), MakeScan("dup"),
                       Gt(Col("id"), RightCol("id")));
  // l=2: r in {1,1}; l=3: r in {1,1,2,2}; l=4: all 4. Total 2+4+4=10.
  EXPECT_EQ(Rows(plan).size(), 10u);
}

TEST_F(ReferenceTest, UnionHandComputed) {
  EXPECT_EQ(Rows(MakeUnion(MakeScan("dup"), MakeScan("dup"), /*bag=*/true))
                .size(),
            8u);
  // Set union of dup with itself = 3 distinct tuples.
  EXPECT_EQ(Rows(MakeUnion(MakeScan("dup"), MakeScan("dup"), false)),
            (std::vector<std::string>{"(1, 10, a)", "(2, 10, a)",
                                      "(2, 20, b)"}));
}

TEST_F(ReferenceTest, DifferenceHandComputed) {
  // left \ right on full tuples: nothing in common -> all 4 left rows.
  EXPECT_EQ(Rows(MakeDifference(MakeScan("left"), MakeScan("right_rel")))
                .size(),
            4u);
  // dup \ dup = empty.
  EXPECT_TRUE(Rows(MakeDifference(MakeScan("dup"), MakeScan("dup"))).empty());
  // Projected difference: {10,20} \ {10} = {20}.
  EXPECT_EQ(
      Rows(MakeDifference(
          MakeProject(MakeScan("dup"), {"grp"}, true),
          MakeProject(MakeRestrict(MakeScan("dup"), Eq(Col("grp"), Lit(10))),
                      {"grp"}, true))),
      std::vector<std::string>{"(20)"});
}

TEST_F(ReferenceTest, AggregateHandComputed) {
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "n"});
  specs.push_back({AggregateSpec::Func::kSum, "id", "s"});
  specs.push_back({AggregateSpec::Func::kMin, "name", "mn"});
  // Group left by grp: 10 -> n=2 s=4 mn=a; 20 -> n=1 s=2 mn=b;
  // 30 -> n=1 s=4 mn=d.
  EXPECT_EQ(Rows(MakeAggregate(MakeScan("left"), {"grp"}, specs)),
            (std::vector<std::string>{"(10, 2, 4, a)", "(20, 1, 2, b)",
                                      "(30, 1, 4, d)"}));
}

TEST_F(ReferenceTest, AppendAndDeleteHandComputed) {
  auto target = storage_->CreateRelation("t", TinySchema());
  ASSERT_TRUE(target.ok());
  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(
      QueryResult ap,
      reference.Execute(*MakeAppend(
          MakeRestrict(MakeScan("left"), Eq(Col("grp"), Lit(10))), "t")));
  EXPECT_EQ(ap.num_tuples(), 0u);
  EXPECT_EQ(Rows(MakeScan("t")),
            (std::vector<std::string>{"(1, 10, a)", "(3, 10, c)"}));
  ASSERT_OK_AND_ASSIGN(
      QueryResult del,
      reference.Execute(*MakeDelete("t", Eq(Col("id"), Lit(1)))));
  (void)del;
  EXPECT_EQ(Rows(MakeScan("t")), std::vector<std::string>{"(3, 10, c)"});
  ASSERT_OK_AND_ASSIGN(RelationMeta meta, storage_->catalog().GetRelation("t"));
  EXPECT_EQ(meta.tuple_count, 1u);
}

TEST_F(ReferenceTest, ComposedPipelineHandComputed) {
  // join(left, right on grp) -> restrict(right id = 6) -> project names.
  auto plan = MakeProject(
      MakeRestrict(MakeJoin(MakeScan("left"), MakeScan("right_rel"),
                            Eq(Col("grp"), RightCol("grp"))),
                   Eq(Col("id_r"), Lit(6))),
      {"name", "name_r"});
  EXPECT_EQ(Rows(plan),
            (std::vector<std::string>{"(a, y)", "(c, y)"}));
}

}  // namespace
}  // namespace dfdb

/// \file snapshot_test.cc
/// \brief MVCC snapshot isolation: old versions stay byte-identically
/// readable under concurrent writers, version GC never reclaims a page an
/// open snapshot can see, and snapshot-mode readers admit without queueing.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/reference.h"
#include "engine/scheduler.h"
#include "storage/storage_engine.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;
using ::dfdb::testing::ResultMultiset;

/// k1000 is column 7 of the benchmark schema (see workload/generator.h).
constexpr int kK1000Col = 7;

bool K1000Below(const TupleView& t, int32_t bound) {
  auto v = t.GetValue(kK1000Col);
  return v.ok() && v->as_int32() < bound;
}

/// Concatenated payload bytes of \p pages, in order — the byte-identity
/// fingerprint of one relation version.
std::string PageBytes(const StorageEngine& storage,
                      const std::vector<PageId>& pages) {
  std::string bytes;
  for (PageId id : pages) {
    auto page = storage.page_store().Get(id);
    if (!page.ok()) return "<missing page>";
    for (int i = 0; i < (*page)->num_tuples(); ++i) {
      Slice t = (*page)->tuple(i);
      bytes.append(t.data(), t.size());
    }
  }
  return bytes;
}

class SnapshotStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(/*default_page_bytes=*/1000);
    ASSERT_OK_AND_ASSIGN(
        auto id, GenerateRelation(storage_.get(), "rows", 300, /*seed=*/7));
    (void)id;
    ASSERT_OK(storage_->CommitRelation("rows"));
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_F(SnapshotStorageTest, OldVersionStaysByteIdentical) {
  Snapshot before = storage_->CaptureSnapshot();
  ASSERT_TRUE(before.valid());
  ASSERT_OK_AND_ASSIGN(SnapshotView view, before.View("rows"));
  EXPECT_EQ(view.tuple_count, 300u);
  const std::string original_bytes = PageBytes(*storage_, view.pages);
  ASSERT_NE(original_bytes, "<missing page>");

  // Copy-on-write delete: survivors are rewritten into fresh pages, the
  // old pages are retired (not freed) because `before` can still see them.
  ASSERT_OK_AND_ASSIGN(HeapFile * file, storage_->GetHeapFile("rows"));
  ASSERT_OK_AND_ASSIGN(
      uint64_t removed,
      file->DeleteWhere([](const TupleView& t) { return K1000Below(t, 500); }));
  EXPECT_GT(removed, 0u);
  ASSERT_OK(storage_->SyncStats("rows"));

  // The old version resolves to the same pages with the same bytes.
  ASSERT_OK_AND_ASSIGN(SnapshotView view_again, before.View("rows"));
  EXPECT_EQ(view_again.pages, view.pages);
  EXPECT_EQ(view_again.tuple_count, 300u);
  EXPECT_EQ(PageBytes(*storage_, view_again.pages), original_bytes);

  // A snapshot captured after the commit sees the survivors only.
  Snapshot after = storage_->CaptureSnapshot();
  ASSERT_OK_AND_ASSIGN(SnapshotView new_view, after.View("rows"));
  EXPECT_EQ(new_view.tuple_count, 300u - removed);
  EXPECT_GT(after.ts(), before.ts());
}

TEST_F(SnapshotStorageTest, GcNeverReclaimsPagesVisibleToOpenSnapshot) {
  Snapshot open_snap = storage_->CaptureSnapshot();
  ASSERT_OK_AND_ASSIGN(SnapshotView view, open_snap.View("rows"));
  ASSERT_FALSE(view.pages.empty());

  // Delete everything: every committed page leaves the head and retires.
  ASSERT_OK_AND_ASSIGN(HeapFile * file, storage_->GetHeapFile("rows"));
  ASSERT_OK_AND_ASSIGN(uint64_t removed,
                       file->DeleteWhere([](const TupleView&) { return true; }));
  EXPECT_EQ(removed, 300u);
  ASSERT_OK(storage_->SyncStats("rows"));

  MvccStats stats = storage_->mvcc_stats();
  EXPECT_EQ(stats.snapshots_open, 1u);
  EXPECT_GE(stats.versions_live, 2u);

  // While the snapshot is open, every page it can see must stay readable.
  for (PageId id : view.pages) {
    EXPECT_OK(storage_->page_store().Get(id).status());
  }
  const uint64_t gc_before = stats.gc_reclaimed;

  // Dropping the pin makes the retired pages reclaimable — and reclaimed.
  open_snap.Release();
  MvccStats after = storage_->mvcc_stats();
  EXPECT_EQ(after.snapshots_open, 0u);
  EXPECT_GT(after.gc_reclaimed, gc_before);
  for (PageId id : view.pages) {
    EXPECT_FALSE(storage_->page_store().Get(id).ok());
  }
}

class SnapshotSchedulerTest : public ::testing::Test {
 protected:
  ExecOptions Options(int processors) const {
    ExecOptions opts;
    opts.num_processors = processors;
    opts.page_bytes = 1000;
    opts.local_memory_pages = 16;
    opts.disk_cache_pages = 64;
    return opts;
  }
};

TEST_F(SnapshotSchedulerTest, ReaderStampedBeforeWriterSeesOldBytes) {
  StorageEngine storage(/*default_page_bytes=*/1000);
  ASSERT_OK_AND_ASSIGN(auto id,
                       GenerateRelation(&storage, "victim", 400, /*seed=*/11));
  (void)id;

  // Serial oracles on identical data: the pre-delete and post-delete states.
  StorageEngine oracle(/*default_page_bytes=*/1000);
  ASSERT_OK_AND_ASSIGN(auto oid,
                       GenerateRelation(&oracle, "victim", 400, /*seed=*/11));
  (void)oid;
  ReferenceExecutor oracle_ref(&oracle);
  ASSERT_OK_AND_ASSIGN(QueryResult pre_writer,
                       oracle_ref.Execute(*MakeScan("victim")));

  // Deferred single-worker replay: the writer is submitted (and admitted)
  // first and fully commits before the reader's plan runs — but the reader
  // was stamped at Submit time, so it must read the pre-writer version
  // byte-identically.
  SchedulerOptions sopts;
  sopts.exec = Options(1);
  sopts.defer_worker_start = true;
  Scheduler scheduler(&storage, std::move(sopts));
  auto del = MakeDelete("victim", Lt(Col("k1000"), Lit(500)));
  auto scan = MakeScan("victim");
  ASSERT_OK_AND_ASSIGN(QueryHandle writer, scheduler.Submit(*del));
  ASSERT_OK_AND_ASSIGN(QueryHandle reader, scheduler.Submit(*scan));
  scheduler.Start();
  ASSERT_OK_AND_ASSIGN(QueryResult writer_result, writer.Wait());
  ASSERT_OK_AND_ASSIGN(QueryResult reader_result, reader.Wait());
  scheduler.Shutdown();
  (void)writer_result;

  ExpectSameResult(pre_writer, reader_result);
  // The reader never touched the admission queue.
  EXPECT_EQ(reader_result.stats().sched_queued, 0u);
  EXPECT_EQ(reader_result.stats().sched_queue_wait_ns, 0u);
  EXPECT_GE(reader_result.stats().mvcc_snapshots_captured, 2u);

  // The head moved on: a fresh scan sees the post-delete state.
  ASSERT_OK_AND_ASSIGN(QueryResult del_oracle,
                       oracle_ref.Execute(*del->Clone()));
  (void)del_oracle;
  ASSERT_OK_AND_ASSIGN(QueryResult post_writer,
                       oracle_ref.Execute(*MakeScan("victim")));
  ReferenceExecutor ref(&storage);
  ASSERT_OK_AND_ASSIGN(QueryResult head, ref.Execute(*MakeScan("victim")));
  ExpectSameResult(post_writer, head);
}

TEST_F(SnapshotSchedulerTest, ConcurrentDeleteAndScanDifferential) {
  // Writers delete disjoint k1000 ranges >= 900 while readers repeatedly
  // scan the k1000 < 900 region. Under snapshot isolation every reader —
  // whenever it was stamped — must return the serial oracle's bytes: a
  // torn read mid-DeleteWhere would drop or duplicate survivor rows.
  StorageEngine storage(/*default_page_bytes=*/1000);
  ASSERT_OK_AND_ASSIGN(auto id,
                       GenerateRelation(&storage, "mix", 1000, /*seed=*/5));
  (void)id;

  StorageEngine oracle(/*default_page_bytes=*/1000);
  ASSERT_OK_AND_ASSIGN(auto oid,
                       GenerateRelation(&oracle, "mix", 1000, /*seed=*/5));
  (void)oid;
  ReferenceExecutor oracle_ref(&oracle);
  auto reader_plan = MakeRestrict(MakeScan("mix"), Lt(Col("k1000"), Lit(900)));
  ASSERT_OK_AND_ASSIGN(QueryResult expected,
                       oracle_ref.Execute(*reader_plan));

  constexpr int kWriters = 4;
  constexpr int kReadersPerThread = 4;
  constexpr int kReaderThreads = 4;
  Scheduler scheduler(&storage, Options(4));

  std::vector<std::thread> threads;
  std::vector<Status> writer_status(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto del = MakeDelete(
          "mix", And(Ge(Col("k1000"), Lit(900 + 25 * w)),
                     Lt(Col("k1000"), Lit(900 + 25 * (w + 1)))));
      auto handle = scheduler.Submit(*del);
      if (!handle.ok()) {
        writer_status[w] = handle.status();
        return;
      }
      writer_status[w] = handle->Wait().status();
    });
  }
  std::vector<std::vector<StatusOr<QueryResult>>> reads(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kReadersPerThread; ++i) {
        auto handle = scheduler.Submit(*reader_plan);
        if (!handle.ok()) {
          reads[t].push_back(handle.status());
          continue;
        }
        reads[t].push_back(handle->Wait());
      }
    });
  }
  for (auto& th : threads) th.join();
  scheduler.Shutdown();

  for (int w = 0; w < kWriters; ++w) EXPECT_OK(writer_status[w]);
  for (int t = 0; t < kReaderThreads; ++t) {
    ASSERT_EQ(reads[t].size(), static_cast<size_t>(kReadersPerThread));
    for (auto& r : reads[t]) {
      ASSERT_OK(r.status());
      ExpectSameResult(expected, *r);
      // Snapshot mode: readers admit immediately, always.
      EXPECT_EQ(r->stats().sched_queued, 0u);
    }
  }

  // Differential: the final head equals the serial oracle after all
  // deletes (order irrelevant — the ranges are disjoint).
  for (int w = 0; w < kWriters; ++w) {
    auto del = MakeDelete(
        "mix", And(Ge(Col("k1000"), Lit(900 + 25 * w)),
                   Lt(Col("k1000"), Lit(900 + 25 * (w + 1)))));
    ASSERT_OK(oracle_ref.Execute(*del).status());
  }
  ASSERT_OK_AND_ASSIGN(QueryResult oracle_head,
                       oracle_ref.Execute(*MakeScan("mix")));
  ReferenceExecutor ref(&storage);
  ASSERT_OK_AND_ASSIGN(QueryResult head, ref.Execute(*MakeScan("mix")));
  ExpectSameResult(oracle_head, head);

  // No snapshot leaked past query completion, and old versions were
  // eventually collected down to the final head.
  MvccStats stats = storage.mvcc_stats();
  EXPECT_EQ(stats.snapshots_open, 0u);
  EXPECT_GE(stats.commits, static_cast<uint64_t>(kWriters));
}

TEST_F(SnapshotSchedulerTest, BarrierModeStillQueuesReaders) {
  // The legacy regime is preserved behind ConcurrencyMode::kBarrier:
  // deferred submission of writer-then-reader makes the reader queue and
  // observe the post-writer state (the pre-MVCC semantics).
  StorageEngine storage(/*default_page_bytes=*/1000);
  ASSERT_OK_AND_ASSIGN(auto id,
                       GenerateRelation(&storage, "victim", 400, /*seed=*/11));
  (void)id;
  StorageEngine oracle(/*default_page_bytes=*/1000);
  ASSERT_OK_AND_ASSIGN(auto oid,
                       GenerateRelation(&oracle, "victim", 400, /*seed=*/11));
  (void)oid;
  ReferenceExecutor oracle_ref(&oracle);
  auto del = MakeDelete("victim", Lt(Col("k1000"), Lit(500)));
  ASSERT_OK(oracle_ref.Execute(*del).status());
  ASSERT_OK_AND_ASSIGN(QueryResult post_writer,
                       oracle_ref.Execute(*MakeScan("victim")));

  SchedulerOptions sopts;
  sopts.exec = Options(1);
  sopts.defer_worker_start = true;
  sopts.concurrency = ConcurrencyMode::kBarrier;
  Scheduler scheduler(&storage, std::move(sopts));
  ASSERT_OK_AND_ASSIGN(QueryHandle writer, scheduler.Submit(*del->Clone()));
  ASSERT_OK_AND_ASSIGN(QueryHandle reader,
                       scheduler.Submit(*MakeScan("victim")));
  scheduler.Start();
  ASSERT_OK(writer.Wait().status());
  ASSERT_OK_AND_ASSIGN(QueryResult reader_result, reader.Wait());
  scheduler.Shutdown();

  EXPECT_EQ(reader_result.stats().sched_queued, 1u);
  ExpectSameResult(post_writer, reader_result);
}

}  // namespace
}  // namespace dfdb

/// \file obs_test.cc
/// \brief The unified observability layer: registry semantics, trace
/// determinism, zero overhead when disabled, and the fault-trace contract.
///
/// The headline contracts under test:
///   - two identically-seeded machine runs export byte-identical JSON
///     (full timing included: simulated time is deterministic);
///   - two identically-seeded 1-worker engine runs export byte-identical
///     canonical JSON (timing omitted: wall clock is not deterministic);
///   - with tracing disabled no trace is allocated at all;
///   - under a fault storm the trace carries exactly one kFaultInjected
///     event per fault counted in MachineReport::faults.injected.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/run.h"
#include "machine/simulator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("n");
  w.Uint(3);
  w.Key("xs");
  w.BeginArray();
  w.Uint(1);
  w.Int(-2);
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Key("s");
  w.String("hi");
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            "{\"n\":3,\"xs\":[1,-2,true,null],\"nested\":{\"s\":\"hi\"}}");
}

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(obs::JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, DoublesRoundTripDeterministically) {
  obs::JsonWriter w1, w2;
  w1.Double(0.1);
  w2.Double(0.1);
  EXPECT_EQ(w1.str(), w2.str());
  EXPECT_EQ(w1.str(), "0.10000000000000001");
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SetAddGetAndSortedExport) {
  obs::MetricsRegistry registry;
  registry.Set("machine.outer_ring_bytes", 100);
  registry.Add("engine.tasks_executed", 7);
  registry.Add("engine.tasks_executed", 3);
  EXPECT_EQ(registry.GetOr("engine.tasks_executed", 0), 10u);
  EXPECT_EQ(registry.GetOr("missing", 42), 42u);
  // Keys export sorted regardless of insertion order.
  EXPECT_EQ(registry.ToJson(),
            "{\"engine.tasks_executed\":10,\"machine.outer_ring_bytes\":100}");
  // Human dump mentions every counter.
  const std::string text = registry.ToString();
  EXPECT_NE(text.find("engine.tasks_executed"), std::string::npos);
  EXPECT_NE(text.find("machine.outer_ring_bytes"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, DisabledRecorderReturnsNull) {
  obs::TraceRecorder recorder(/*enabled=*/false);
  recorder.Record(obs::TraceEventKind::kTaskExecuted, 0, 1, 2, 3, "x", 4);
  EXPECT_EQ(recorder.Finish(), nullptr);
}

TEST(TraceRecorderTest, EventsComeBackInSequenceOrder) {
  obs::TraceRecorder recorder(/*enabled=*/true);
  for (int i = 0; i < 100; ++i) {
    recorder.Record(i % 2 == 0 ? obs::TraceEventKind::kTaskClaimed
                               : obs::TraceEventKind::kTaskExecuted,
                    /*query=*/static_cast<uint64_t>(i), i, -1, 0, nullptr, i);
  }
  std::shared_ptr<const obs::Trace> trace = recorder.Finish();
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->size(), 100u);
  for (size_t i = 0; i < trace->events().size(); ++i) {
    EXPECT_EQ(trace->events()[i].seq, i);
    EXPECT_EQ(trace->events()[i].query, i);
  }
  EXPECT_EQ(trace->CountKind(obs::TraceEventKind::kTaskClaimed), 50u);
  EXPECT_EQ(trace->CountKind(obs::TraceEventKind::kTaskExecuted), 50u);
}

// ---------------------------------------------------------------------------
// Shared fixture: a small database + plans for both backends
// ---------------------------------------------------------------------------

class ObsBackendTest : public ::testing::Test {
 protected:
  static std::unique_ptr<StorageEngine> FreshStorage() {
    auto storage = std::make_unique<StorageEngine>(/*default_page_bytes=*/2000);
    auto a = GenerateRelation(storage.get(), "alpha", 300, 3);
    auto b = GenerateRelation(storage.get(), "beta", 120, 4);
    EXPECT_TRUE(a.ok() && b.ok());
    return storage;
  }

  static std::vector<PlanNodePtr> Plans() {
    std::vector<PlanNodePtr> plans;
    plans.push_back(
        MakeJoin(MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(400))),
                 MakeScan("beta"), Eq(Col("k100"), RightCol("k100"))));
    plans.push_back(MakeRestrict(MakeScan("beta"), Ge(Col("k1000"), Lit(200))));
    return plans;
  }

  static std::vector<const PlanNode*> Raw(const std::vector<PlanNodePtr>& p) {
    std::vector<const PlanNode*> raw;
    for (const auto& n : p) raw.push_back(n.get());
    return raw;
  }

  static MachineOptions MachineOpts(bool trace) {
    MachineOptions opts;
    opts.granularity = Granularity::kPage;
    opts.config.num_instruction_processors = 4;
    opts.config.num_instruction_controllers = 2;
    opts.config.page_bytes = 2000;
    opts.config.ic_local_memory_pages = 8;
    opts.config.disk_cache_pages = 64;
    opts.enable_trace = trace;
    return opts;
  }
};

// ---------------------------------------------------------------------------
// Machine determinism and fault-trace contract
// ---------------------------------------------------------------------------

TEST_F(ObsBackendTest, MachineRunsExportByteIdenticalJson) {
  // Two identically-configured runs — including a seeded fault storm — must
  // export byte-identical full reports (timestamps included).
  std::string docs[2];
  std::string chrome[2];
  for (int run = 0; run < 2; ++run) {
    auto storage = FreshStorage();
    auto plans = Plans();
    MachineOptions opts = MachineOpts(/*trace=*/true);
    opts.fault_plan = FaultPlan::RandomStorm(/*seed=*/7, /*ip_kills=*/1,
                                             /*packet_faults=*/4,
                                             SimTime::Millis(500));
    opts.fault_plan.detection_timeout = SimTime::Micros(500);
    opts.fault_plan.retry_backoff = SimTime::Micros(100);
    MachineSimulator sim(storage.get(), opts);
    auto report = sim.Run(Raw(plans));
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_NE(report->trace, nullptr);
    EXPECT_GT(report->trace->size(), 0u);
    docs[run] = report->ToReport().ToJson(/*include_timing=*/true);
    chrome[run] = report->ToReport().ToChromeTrace();
  }
  EXPECT_EQ(docs[0], docs[1]);
  EXPECT_EQ(chrome[0], chrome[1]);
  EXPECT_NE(docs[0].find("\"backend\":\"machine\""), std::string::npos);
  EXPECT_NE(docs[0].find("machine.outer_ring_bytes"), std::string::npos);
  EXPECT_NE(chrome[0].find("traceEvents"), std::string::npos);
}

TEST_F(ObsBackendTest, MachineTraceCarriesEveryInjectedFault) {
  auto storage = FreshStorage();
  auto plans = Plans();
  MachineOptions opts = MachineOpts(/*trace=*/true);
  opts.fault_plan = FaultPlan::RandomStorm(/*seed=*/11, /*ip_kills=*/2,
                                           /*packet_faults=*/6,
                                           SimTime::Millis(500));
  opts.fault_plan.detection_timeout = SimTime::Micros(500);
  opts.fault_plan.retry_backoff = SimTime::Micros(100);
  MachineSimulator sim(storage.get(), opts);
  auto report = sim.Run(Raw(plans));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_NE(report->trace, nullptr);
  // The contract: one kFaultInjected trace event per counted injection, and
  // recovery work leaves kFaultRecovered events behind.
  EXPECT_EQ(report->trace->CountKind(obs::TraceEventKind::kFaultInjected),
            report->faults.injected);
  EXPECT_GT(report->faults.injected, 0u);
  if (report->faults.retries + report->faults.redispatches +
          report->faults.instructions_rehomed >
      0) {
    EXPECT_GT(report->trace->CountKind(obs::TraceEventKind::kFaultRecovered),
              0u);
  }
}

TEST_F(ObsBackendTest, MachineTracingDisabledMeansNoTrace) {
  auto storage = FreshStorage();
  auto plans = Plans();
  MachineSimulator sim(storage.get(), MachineOpts(/*trace=*/false));
  auto report = sim.Run(Raw(plans));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->trace, nullptr);
  // The RunReport JSON still exports fine, just without a trace field.
  const std::string doc = report->ToReport().ToJson();
  EXPECT_EQ(doc.find("\"trace\""), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_EQ(report->ToReport().ToChromeTrace(), "");
}

// ---------------------------------------------------------------------------
// Engine determinism, per-query stats, disabled-trace contract
// ---------------------------------------------------------------------------

TEST_F(ObsBackendTest, EngineSingleWorkerRunsExportByteIdenticalJson) {
  // With one worker the engine's event order is deterministic; the
  // canonical export (timing omitted) must be byte-identical across runs.
  std::string docs[2];
  for (int run = 0; run < 2; ++run) {
    auto storage = FreshStorage();
    auto plans = Plans();
    ExecOptions opts;
    opts.granularity = Granularity::kPage;
    opts.num_processors = 1;
    opts.page_bytes = 2000;
    opts.enable_trace = true;
    ExecStats stats;
    auto results = RunBatch(storage.get(), Raw(plans), opts, &stats);
    ASSERT_TRUE(results.ok()) << results.status();
    ASSERT_NE(stats.trace, nullptr);
    EXPECT_GT(stats.trace->size(), 0u);
    docs[run] = stats.ToReport().ToJson(/*include_timing=*/false);
  }
  EXPECT_EQ(docs[0], docs[1]);
  EXPECT_NE(docs[0].find("\"backend\":\"engine\""), std::string::npos);
  EXPECT_NE(docs[0].find("engine.arbitration_bytes"), std::string::npos);
  EXPECT_NE(docs[0].find("storage.cache_hits"), std::string::npos);
  // Canonical form omits every wall-clock-derived field.
  EXPECT_EQ(docs[0].find("\"seconds\""), std::string::npos);
  EXPECT_EQ(docs[0].find("\"ts_ns\""), std::string::npos);
}

TEST_F(ObsBackendTest, EngineAttachesPerQueryStatsToResults) {
  auto storage = FreshStorage();
  auto plans = Plans();
  ExecOptions opts;
  opts.granularity = Granularity::kPage;
  opts.num_processors = 2;
  opts.page_bytes = 2000;
  ExecStats batch;
  auto results = RunBatch(storage.get(), Raw(plans), opts, &batch);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 2u);
  uint64_t task_sum = 0;
  for (const QueryResult& r : *results) {
    EXPECT_GT(r.stats().tasks_executed, 0u);
    EXPECT_GT(r.stats().wall_seconds, 0.0);
    task_sum += r.stats().tasks_executed;
  }
  // Per-query work counters partition the batch aggregate.
  EXPECT_EQ(task_sum, batch.tasks_executed);
  EXPECT_GT(batch.wall_seconds, 0.0);
  // Tracing was off: no trace anywhere.
  EXPECT_EQ(batch.trace, nullptr);
  EXPECT_EQ((*results)[0].trace(), nullptr);
}

TEST_F(ObsBackendTest, EngineTraceEventsKeyedByBatchIndex) {
  auto storage = FreshStorage();
  auto plans = Plans();
  ExecOptions opts;
  opts.granularity = Granularity::kPage;
  opts.num_processors = 2;
  opts.page_bytes = 2000;
  opts.enable_trace = true;
  ExecStats batch;
  auto results = RunBatch(storage.get(), Raw(plans), opts, &batch);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_NE(batch.trace, nullptr);
  // Both queries contributed events, keyed 0 / 1 by batch position, and the
  // per-query results share the batch trace.
  bool saw[2] = {false, false};
  for (const obs::TraceEvent& e : batch.trace->events()) {
    ASSERT_LT(e.query, 2u);
    saw[e.query] = true;
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
  EXPECT_EQ((*results)[0].trace(), batch.trace);
  EXPECT_GT(batch.trace->CountKind(obs::TraceEventKind::kTaskExecuted), 0u);
  EXPECT_GT(batch.trace->CountKind(obs::TraceEventKind::kPageProduced), 0u);
  EXPECT_GT(batch.trace->CountKind(obs::TraceEventKind::kPacketEnqueued), 0u);
}

TEST_F(ObsBackendTest, EngineFaultStormLeavesTraceEvidence) {
  auto storage = FreshStorage();
  auto plans = Plans();
  ExecOptions opts;
  opts.granularity = Granularity::kPage;
  opts.num_processors = 4;
  opts.page_bytes = 600;
  opts.enable_trace = true;
  opts.fault_plan.abandon_workers = 2;
  opts.fault_plan.abandon_after_tasks = 2;
  opts.fault_plan.poison_packets = 5;
  ExecStats batch;
  auto results = RunBatch(storage.get(), Raw(plans), opts, &batch);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_NE(batch.trace, nullptr);
  EXPECT_EQ(batch.trace->CountKind(obs::TraceEventKind::kFaultInjected),
            batch.faults_injected);
  EXPECT_EQ(batch.faults_injected, 7u);  // 2 abandons + 5 poison packets.
}

// ---------------------------------------------------------------------------
// RunReport cross-backend shape
// ---------------------------------------------------------------------------

TEST_F(ObsBackendTest, BothBackendsProduceComparableRunReports) {
  auto storage = FreshStorage();
  auto plans = Plans();

  MachineSimulator sim(storage.get(), MachineOpts(/*trace=*/false));
  auto machine_report = sim.Run(Raw(plans));
  ASSERT_TRUE(machine_report.ok()) << machine_report.status();
  obs::RunReport machine_run = machine_report->ToReport();

  ExecOptions opts;
  opts.granularity = Granularity::kPage;
  opts.num_processors = 2;
  opts.page_bytes = 2000;
  ExecStats stats;
  auto results = RunBatch(storage.get(), Raw(plans), opts, &stats);
  ASSERT_TRUE(results.ok()) << results.status();
  obs::RunReport engine_run = stats.ToReport();

  EXPECT_EQ(machine_run.backend, "machine");
  EXPECT_TRUE(machine_run.simulated_time);
  EXPECT_EQ(engine_run.backend, "engine");
  EXPECT_FALSE(engine_run.simulated_time);
  for (const obs::RunReport* run : {&machine_run, &engine_run}) {
    EXPECT_GT(run->seconds, 0.0);
    EXPECT_GT(run->data_bytes, 0u);
    EXPECT_GT(run->packets, 0u);
    EXPECT_EQ(run->faults, 0u);
    EXPECT_GT(run->bits_per_second(), 0.0);
    EXPECT_FALSE(run->counters.counters().empty());
    EXPECT_FALSE(run->ToString().empty());
  }
}

}  // namespace
}  // namespace dfdb

/// \file concurrency_test.cc
/// \brief Tests for MC-style admission control (ConflictManager) and the
/// dataflow Edge.

#include "engine/concurrency.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "engine/edge.h"
#include "tests/test_util.h"

namespace dfdb {
namespace {

TEST(ConflictManagerTest, ReadersShare) {
  ConflictManager cm;
  EXPECT_TRUE(cm.TryAdmit(1, {"a", "b"}, {}));
  EXPECT_TRUE(cm.TryAdmit(2, {"a"}, {}));
  EXPECT_EQ(cm.admitted(), 2);
}

TEST(ConflictManagerTest, WriterExcludesReadersAndWriters) {
  ConflictManager cm;
  EXPECT_TRUE(cm.TryAdmit(1, {}, {"a"}));
  EXPECT_FALSE(cm.TryAdmit(2, {"a"}, {}));   // Read blocked by writer.
  EXPECT_FALSE(cm.TryAdmit(3, {}, {"a"}));   // Write blocked by writer.
  EXPECT_TRUE(cm.TryAdmit(4, {"b"}, {}));    // Unrelated relation fine.
  cm.Release(1);
  EXPECT_TRUE(cm.TryAdmit(2, {"a"}, {}));
  // Now a reader holds "a": a writer must wait.
  EXPECT_FALSE(cm.TryAdmit(5, {}, {"a"}));
  cm.Release(2);
  EXPECT_TRUE(cm.TryAdmit(5, {}, {"a"}));
}

TEST(ConflictManagerTest, AllOrNothingAcquisition) {
  ConflictManager cm;
  EXPECT_TRUE(cm.TryAdmit(1, {}, {"b"}));
  // Query 2 wants a (free) and b (held): must get neither.
  EXPECT_FALSE(cm.TryAdmit(2, {"a"}, {"b"}));
  // "a" must not have been locked by the failed attempt.
  EXPECT_TRUE(cm.TryAdmit(3, {}, {"a"}));
}

TEST(ConflictManagerTest, ReadAndWriteSameRelationBySameQuery) {
  ConflictManager cm;
  // Delete reads and writes its target: one exclusive lock suffices.
  EXPECT_TRUE(cm.TryAdmit(1, {"a"}, {"a"}));
  EXPECT_FALSE(cm.TryAdmit(2, {"a"}, {}));
  cm.Release(1);
  EXPECT_TRUE(cm.TryAdmit(2, {"a"}, {}));
}

TEST(ConflictManagerTest, ReleaseIsIdempotentAndScoped) {
  ConflictManager cm;
  EXPECT_TRUE(cm.TryAdmit(1, {"a"}, {}));
  EXPECT_TRUE(cm.TryAdmit(2, {"a"}, {}));
  cm.Release(1);
  cm.Release(1);  // No-op.
  // Query 2 still holds its read lock.
  EXPECT_FALSE(cm.TryAdmit(3, {}, {"a"}));
  cm.Release(2);
  EXPECT_TRUE(cm.TryAdmit(3, {}, {"a"}));
}

TEST(ConflictManagerTest, DoubleAdmitRejected) {
  ConflictManager cm;
  EXPECT_TRUE(cm.TryAdmit(1, {"a"}, {}));
  EXPECT_FALSE(cm.TryAdmit(1, {"b"}, {}));
}

// ---------------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------------

TEST(AdmissionQueueTest, NonConflictingQueriesAdmitImmediately) {
  AdmissionQueue aq;
  EXPECT_TRUE(aq.Submit(1, {"a"}, {}));
  EXPECT_TRUE(aq.Submit(2, {"a"}, {}));
  EXPECT_TRUE(aq.Submit(3, {}, {"b"}));
  EXPECT_EQ(aq.admitted(), 3);
  EXPECT_EQ(aq.queued(), 0u);
}

TEST(AdmissionQueueTest, ConflictingQueryWaitsAndReAdmitsOnRelease) {
  AdmissionQueue aq;
  EXPECT_TRUE(aq.Submit(1, {}, {"a"}));
  EXPECT_FALSE(aq.Submit(2, {"a"}, {}));  // Blocked behind the writer.
  EXPECT_EQ(aq.queued(), 1u);
  auto admitted = aq.Release(1);
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].qid, 2u);
  EXPECT_EQ(aq.queued(), 0u);
  EXPECT_EQ(aq.admitted(), 1);
}

TEST(AdmissionQueueTest, ReleaseAdmitsEveryNowCompatibleWaiter) {
  AdmissionQueue aq;
  EXPECT_TRUE(aq.Submit(1, {}, {"a"}));
  EXPECT_FALSE(aq.Submit(2, {"a"}, {}));
  EXPECT_FALSE(aq.Submit(3, {"a"}, {}));
  auto admitted = aq.Release(1);
  // Both readers fit together once the writer leaves.
  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0].qid, 2u);
  EXPECT_EQ(admitted[1].qid, 3u);
}

TEST(AdmissionQueueTest, FifoAmongConflictingWaiters) {
  AdmissionQueue aq;
  EXPECT_TRUE(aq.Submit(1, {}, {"a"}));
  EXPECT_FALSE(aq.Submit(2, {}, {"a"}));
  EXPECT_FALSE(aq.Submit(3, {}, {"a"}));
  auto first = aq.Release(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].qid, 2u);  // Queue order, not arrival luck.
  auto second = aq.Release(2);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].qid, 3u);
}

TEST(AdmissionQueueTest, WriterBehindReaderStreamIsNotStarved) {
  // The regression the anti-starvation rule exists for: a writer queues
  // behind a reader; a continuous stream of new readers keeps the read lock
  // occupied. Without the skips barrier the writer waits forever.
  const int kMaxSkips = 4;
  AdmissionQueue aq(kMaxSkips);
  EXPECT_TRUE(aq.Submit(1, {"a"}, {}));
  EXPECT_FALSE(aq.Submit(2, {}, {"a"}));  // Writer queues behind reader 1.

  uint64_t next_reader = 3;
  int writer_admitted_after = -1;
  std::deque<uint64_t> running = {1};
  for (int round = 0; round < 100; ++round) {
    // A new reader arrives while at least one reader still holds the lock.
    if (aq.Submit(next_reader, {"a"}, {})) {
      running.push_back(next_reader);
    }
    ++next_reader;
    // The oldest running reader finishes.
    uint64_t finished = running.front();
    running.pop_front();
    for (const auto& adm : aq.Release(finished)) {
      if (adm.qid == 2) {
        writer_admitted_after = round;
      } else {
        running.push_back(adm.qid);
      }
    }
    if (writer_admitted_after >= 0) break;
  }
  // The writer must be admitted after a bounded number of bypasses; with
  // one overlapping reader per round the bound is ~kMaxSkips rounds plus
  // the drain of already-admitted readers.
  ASSERT_GE(writer_admitted_after, 0) << "writer starved";
  EXPECT_LE(writer_admitted_after, 2 * kMaxSkips + 2);
  EXPECT_GT(aq.requeue_failures(), 0u);
}

TEST(AdmissionQueueTest, StarvedWaiterBarsConflictingNewcomers) {
  AdmissionQueue aq(/*max_admission_skips=*/1);
  EXPECT_TRUE(aq.Submit(1, {"a"}, {}));
  EXPECT_FALSE(aq.Submit(2, {}, {"a"}));  // Writer waits, 0 skips.
  EXPECT_TRUE(aq.Submit(3, {"a"}, {}));   // Bypasses the writer: 1 skip.
  // The writer reached max skips: later conflicting queries must queue
  // behind it even though the lock table would admit this reader.
  EXPECT_FALSE(aq.Submit(4, {"a"}, {}));
  // Unrelated work is unaffected by the barrier.
  EXPECT_TRUE(aq.Submit(5, {}, {"b"}));
  // Readers drain; the writer goes first, then the barred reader.
  EXPECT_TRUE(aq.Release(1).empty());
  auto after = aq.Release(3);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].qid, 2u);
  auto tail = aq.Release(2);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].qid, 4u);
}

TEST(AdmissionQueueTest, CancelRemovesWaiter) {
  AdmissionQueue aq;
  EXPECT_TRUE(aq.Submit(1, {}, {"a"}));
  EXPECT_FALSE(aq.Submit(2, {}, {"a"}));
  EXPECT_TRUE(aq.Cancel(2));
  EXPECT_FALSE(aq.Cancel(2));  // Already gone.
  EXPECT_TRUE(aq.Release(1).empty());
}

TEST(AdmissionQueueTest, CancelAllDrainsTheQueue) {
  AdmissionQueue aq;
  EXPECT_TRUE(aq.Submit(1, {}, {"a"}));
  EXPECT_FALSE(aq.Submit(2, {}, {"a"}));
  EXPECT_FALSE(aq.Submit(3, {"a"}, {}));
  auto cancelled = aq.CancelAll();
  ASSERT_EQ(cancelled.size(), 2u);
  EXPECT_EQ(cancelled[0], 2u);
  EXPECT_EQ(cancelled[1], 3u);
  EXPECT_EQ(aq.queued(), 0u);
  EXPECT_TRUE(aq.Release(1).empty());
}

// ---------------------------------------------------------------------------
// Edge
// ---------------------------------------------------------------------------

class EdgeTest : public ::testing::Test {
 protected:
  std::unique_ptr<Edge> MakeEdge(int tuple_width, int unit_bytes) {
    return std::make_unique<Edge>(
        1, tuple_width, unit_bytes,
        [this](PagePtr page) { pages_.push_back(std::move(page)); },
        [this] { closed_ = true; });
  }

  std::vector<PagePtr> pages_;
  bool closed_ = false;
};

TEST_F(EdgeTest, CompressesTuplesIntoFullPages) {
  auto edge = MakeEdge(10, 30);  // 3 tuples per page.
  for (int i = 0; i < 7; ++i) {
    ASSERT_OK(edge->EmitTuple(Slice("0123456789")));
  }
  EXPECT_EQ(pages_.size(), 2u);
  EXPECT_TRUE(pages_[0]->full());
  ASSERT_OK(edge->CloseProducer());
  ASSERT_EQ(pages_.size(), 3u);
  EXPECT_EQ(pages_[2]->num_tuples(), 1);
  EXPECT_TRUE(closed_);
  EXPECT_EQ(edge->tuples_emitted(), 7u);
  EXPECT_EQ(edge->pages_delivered(), 3u);
}

TEST_F(EdgeTest, FullPagePassthrough) {
  auto edge = MakeEdge(10, 30);
  auto page = Page::Create(1, 10, 30);
  ASSERT_TRUE(page.ok());
  for (int i = 0; i < 3; ++i) ASSERT_OK(page->Append(Slice("0123456789")));
  PagePtr full = SealPage(*std::move(page));
  ASSERT_OK(edge->EmitPage(full));
  ASSERT_EQ(pages_.size(), 1u);
  EXPECT_EQ(pages_[0].get(), full.get());  // Same object, no copy.
}

TEST_F(EdgeTest, PartialPageIsRepacked) {
  auto edge = MakeEdge(10, 30);
  auto page = Page::Create(1, 10, 30);
  ASSERT_TRUE(page.ok());
  ASSERT_OK(page->Append(Slice("0123456789")));
  ASSERT_OK(edge->EmitPage(SealPage(*std::move(page))));
  EXPECT_TRUE(pages_.empty());  // Buffered, not yet a full unit.
  ASSERT_OK(edge->CloseProducer());
  ASSERT_EQ(pages_.size(), 1u);
  EXPECT_EQ(pages_[0]->num_tuples(), 1);
}

TEST_F(EdgeTest, MismatchedWidthPageRejected) {
  auto edge = MakeEdge(10, 30);
  auto page = Page::Create(1, 5, 30);
  ASSERT_TRUE(page.ok());
  PagePtr p = SealPage(*std::move(page));
  EXPECT_TRUE(edge->EmitPage(p).IsInvalidArgument());
}

TEST_F(EdgeTest, EmitAfterCloseFails) {
  auto edge = MakeEdge(10, 30);
  ASSERT_OK(edge->CloseProducer());
  EXPECT_TRUE(edge->EmitTuple(Slice("0123456789")).IsFailedPrecondition());
  EXPECT_TRUE(edge->CloseProducer().IsFailedPrecondition());
}

TEST_F(EdgeTest, ConcurrentProducersLoseNoTuples) {
  // Several producer threads emit through one edge (as parallel tasks of
  // one instruction do); every tuple must come out exactly once.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2500;
  std::mutex mu;
  std::vector<PagePtr> pages;
  Edge edge(1, 4, 40, [&](PagePtr page) {
    std::lock_guard<std::mutex> lock(mu);
    pages.push_back(std::move(page));
  }, [] {});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&edge, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int32_t v = t * kPerThread + i;
        char buf[4];
        std::memcpy(buf, &v, 4);
        ASSERT_TRUE(edge.EmitTuple(Slice(buf, 4)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(edge.CloseProducer().ok());
  std::vector<int32_t> seen;
  for (const PagePtr& page : pages) {
    for (int i = 0; i < page->num_tuples(); ++i) {
      int32_t v;
      std::memcpy(&v, page->tuple(i).data(), 4);
      seen.push_back(v);
    }
  }
  ASSERT_EQ(seen.size(), static_cast<size_t>(kThreads * kPerThread));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    ASSERT_EQ(seen[static_cast<size_t>(i)], i);
  }
  EXPECT_EQ(edge.tuples_emitted(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(EdgeTest, UnitSmallerThanTupleClampsUp) {
  // Tuple granularity edges: unit = one tuple even if configured smaller.
  auto edge = MakeEdge(10, 1);
  ASSERT_OK(edge->EmitTuple(Slice("0123456789")));
  EXPECT_EQ(pages_.size(), 1u);  // Every tuple is immediately a page.
  EXPECT_EQ(pages_[0]->num_tuples(), 1);
}

}  // namespace
}  // namespace dfdb

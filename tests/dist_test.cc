/// \file dist_test.cc
/// \brief Distributed execution tests: fragment planning, multi-worker
/// clusters of in-process net::Servers, and byte-identical results between
/// distributed and single-node reference execution.
///
/// Every end-to-end case compares the distributed result multiset (sorted
/// raw tuple bytes) against ReferenceExecutor over the unpartitioned paper
/// database — the union-of-partitions invariant plus exactly-once group
/// placement means the bytes must match, not just the row counts.

#include "dist/coordinator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "dist/fragment.h"
#include "dist/front_server.h"
#include "engine/reference.h"
#include "net/client.h"
#include "net/server.h"
#include "ra/parser.h"
#include "tests/test_util.h"
#include "workload/paper_benchmark.h"

namespace dfdb {
namespace dist {
namespace {

constexpr double kScale = 0.2;
constexpr uint64_t kSeed = 42;

std::vector<std::string> SortedRows(const std::string& tuples, int width) {
  std::vector<std::string> rows;
  if (width <= 0) return rows;
  for (size_t off = 0; off + static_cast<size_t>(width) <= tuples.size();
       off += static_cast<size_t>(width)) {
    rows.push_back(tuples.substr(off, static_cast<size_t>(width)));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> SortedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  const int width = result.schema().tuple_width();
  for (const PagePtr& page : result.pages()) {
    for (int i = 0; i < page->num_tuples(); ++i) {
      Slice t = page->tuple(i);
      rows.emplace_back(t.data(), t.size());
    }
  }
  std::sort(rows.begin(), rows.end());
  (void)width;
  return rows;
}

/// An N-worker cluster of in-process servers, each loaded with its hash
/// partition of the paper database, plus a coordinator planning against
/// the data-free paper catalog.
class Cluster {
 public:
  static StatusOr<std::unique_ptr<Cluster>> Make(
      int workers, uint64_t broadcast_max_bytes = 96 * 1024) {
    auto cluster = std::make_unique<Cluster>();
    std::vector<WorkerAddress> addrs;
    for (int w = 0; w < workers; ++w) {
      auto storage = std::make_unique<StorageEngine>(4096);
      DFDB_RETURN_IF_ERROR(BuildPartitionedPaperDatabase(
                               storage.get(), w, workers, kScale, kSeed)
                               .status());
      net::ServerOptions options;
      options.port = 0;
      options.scheduler.exec.num_processors = 2;
      auto server =
          std::make_unique<net::Server>(storage.get(), std::move(options));
      DFDB_RETURN_IF_ERROR(server->Start());
      addrs.push_back(WorkerAddress{"127.0.0.1", server->port()});
      cluster->storages_.push_back(std::move(storage));
      cluster->servers_.push_back(std::move(server));
    }
    DFDB_RETURN_IF_ERROR(BuildPaperCatalog(&cluster->catalog_, kScale));
    CoordinatorOptions options;
    options.workers = std::move(addrs);
    options.partition_column = std::string(kPartitionColumn);
    options.broadcast_max_bytes = broadcast_max_bytes;
    cluster->coordinator_ =
        std::make_unique<Coordinator>(&cluster->catalog_, std::move(options));
    DFDB_RETURN_IF_ERROR(cluster->coordinator_->Connect());
    return cluster;
  }

  ~Cluster() {
    coordinator_.reset();
    for (auto& server : servers_) server->Stop();
  }

  Coordinator& coordinator() { return *coordinator_; }
  net::Server& server(int w) { return *servers_[static_cast<size_t>(w)]; }
  const Catalog& catalog() const { return catalog_; }

 private:
  std::vector<std::unique_ptr<StorageEngine>> storages_;
  std::vector<std::unique_ptr<net::Server>> servers_;
  Catalog catalog_;
  std::unique_ptr<Coordinator> coordinator_;
};

/// The query mix every cluster shape is checked against. Aggregates stick
/// to integer columns: cross-worker placement must not perturb a single
/// result byte, and float sums are order-sensitive.
const char* const kQueries[] = {
    "restrict(r10, k5 = 2)",
    "project(restrict(r01, k1000 < 50), [id, k100])",
    "join(restrict(r01, k1000 < 100), r06, k100 = right.k100)",
    "join(restrict(r02, k1000 < 60), restrict(r10, k1000 < 80), "
    "k25 = right.k25)",
    "agg(r02, [k10], [count() as n, sum(k1000) as s])",
    "agg(r01, [id], [count() as n])",
    "agg(restrict(r03, k2 = 0), [], [count() as n, min(k1000) as lo, "
    "max(k1000) as hi])",
    "project(r05, [k25], dedup)",
    "union(restrict(r10, k5 = 0), restrict(r11, k5 = 0))",
    "diff(project(r10, [k100], dedup), project(r11, [k1000], dedup))",
    "agg(join(restrict(r01, k1000 < 150), r06, k100 = right.k100), [k10], "
    "[count() as n, sum(k25) as s])",
};

class DistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reference_storage_ = std::make_unique<StorageEngine>(4096);
    ASSERT_OK_AND_ASSIGN(int64_t bytes,
                         BuildPaperDatabase(reference_storage_.get(), kScale,
                                            kSeed));
    ASSERT_GT(bytes, 0);
  }

 public:
  std::vector<std::string> ReferenceRows(const std::string& text) {
    auto parsed = ParseQuery(text);
    EXPECT_OK(parsed.status());
    ReferenceExecutor reference(reference_storage_.get());
    auto result = reference.Execute(**parsed);
    EXPECT_OK(result.status());
    return SortedRows(*result);
  }

  std::unique_ptr<StorageEngine> reference_storage_;
};

void CheckQueryMix(Cluster* cluster, DistTest* test) {
  for (const char* text : kQueries) {
    SCOPED_TRACE(text);
    auto result = cluster->coordinator().Execute(text);
    ASSERT_OK(result.status());
    EXPECT_EQ(SortedRows(result->tuples, result->schema.tuple_width()),
              test->ReferenceRows(text));
  }
}

// --- planner ----------------------------------------------------------------

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_OK(BuildPaperCatalog(&catalog_, kScale)); }

  StatusOr<DistributedPlan> Plan(const std::string& text, int workers) {
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr root, ParseQuery(text));
    FragmentPlannerOptions options;
    options.num_workers = workers;
    options.partition_column = std::string(kPartitionColumn);
    FragmentPlanner planner(&catalog_, options);
    return planner.Plan(root.get());
  }

  Catalog catalog_;
};

TEST_F(PlannerTest, SingleWorkerIsOneFragment) {
  ASSERT_OK_AND_ASSIGN(
      DistributedPlan plan,
      Plan("join(restrict(r01, k1000 < 100), r06, k100 = right.k100)", 1));
  EXPECT_EQ(plan.fragments.size(), 1u);
  ASSERT_EQ(plan.streams.size(), 1u);
  EXPECT_EQ(plan.streams[0].mode, net::ExchangeMode::kGather);
  EXPECT_TRUE(plan.fragments[0].singleton);
}

TEST_F(PlannerTest, EquiJoinRepartitionsBothSides) {
  ASSERT_OK_AND_ASSIGN(
      DistributedPlan plan,
      Plan("join(r01, r02, k1000 = right.k1000)", 3));
  int repartitions = 0;
  for (const StreamRoute& route : plan.streams) {
    if (route.mode == net::ExchangeMode::kPartition) repartitions++;
  }
  EXPECT_EQ(repartitions, 2);
  EXPECT_EQ(plan.num_workers, 3);
}

TEST_F(PlannerTest, PartitionColumnGroupingSkipsShuffle) {
  // Grouping by the base-relation partition column needs no repartition:
  // every group is already worker-local.
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       Plan("agg(r01, [id], [count() as n])", 3));
  ASSERT_EQ(plan.streams.size(), 1u);
  EXPECT_EQ(plan.streams[0].mode, net::ExchangeMode::kGather);
  EXPECT_EQ(plan.streams[0].exchange_id, plan.root_exchange_id);
}

TEST_F(PlannerTest, GroupByOtherColumnRepartitions) {
  ASSERT_OK_AND_ASSIGN(DistributedPlan plan,
                       Plan("agg(r01, [k10], [count() as n])", 3));
  int repartitions = 0;
  for (const StreamRoute& route : plan.streams) {
    if (route.mode == net::ExchangeMode::kPartition) repartitions++;
  }
  EXPECT_EQ(repartitions, 1);
}

TEST_F(PlannerTest, WritesRejected) {
  auto plan = Plan("append(restrict(r01, k2 = 0), r02)", 3);
  EXPECT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsInvalidArgument());
}

TEST_F(PlannerTest, ExchangeIdsThreadAcrossPlans) {
  ASSERT_OK_AND_ASSIGN(DistributedPlan first,
                       Plan("agg(r01, [k10], [count() as n])", 3));
  FragmentPlannerOptions options;
  options.num_workers = 3;
  options.first_exchange_id = first.next_exchange_id;
  ASSERT_OK_AND_ASSIGN(PlanNodePtr root,
                       ParseQuery("agg(r01, [k10], [count() as n])"));
  FragmentPlanner planner(&catalog_, options);
  ASSERT_OK_AND_ASSIGN(DistributedPlan second, planner.Plan(root.get()));
  for (const StreamRoute& route : second.streams) {
    EXPECT_GE(route.exchange_id, first.next_exchange_id);
  }
}

TEST(ExchangeTempNameTest, Format) {
  EXPECT_EQ(ExchangeTempName(7), "__exq7");
}

// --- end to end -------------------------------------------------------------

TEST_F(DistTest, SingleWorkerMatchesReference) {
  ASSERT_OK_AND_ASSIGN(auto cluster, Cluster::Make(1));
  CheckQueryMix(cluster.get(), this);
}

TEST_F(DistTest, ThreeWorkersMatchReference) {
  ASSERT_OK_AND_ASSIGN(auto cluster, Cluster::Make(3));
  CheckQueryMix(cluster.get(), this);
  EXPECT_GT(cluster->coordinator().counters().repartitions.load(), 0u);
  EXPECT_GT(cluster->coordinator().counters().bytes_shuffled.load(), 0u);
}

TEST_F(DistTest, TwoWorkersMatchReference) {
  ASSERT_OK_AND_ASSIGN(auto cluster, Cluster::Make(2));
  CheckQueryMix(cluster.get(), this);
}

TEST_F(DistTest, BroadcastJoinMatchesReference) {
  // A huge broadcast threshold forces every join to ship one whole side
  // instead of repartitioning; results must not change.
  ASSERT_OK_AND_ASSIGN(
      auto cluster, Cluster::Make(3, /*broadcast_max_bytes=*/64 * 1024 * 1024));
  const std::string text =
      "join(restrict(r01, k1000 < 100), r06, k100 = right.k100)";
  auto result = cluster->coordinator().Execute(text);
  ASSERT_OK(result.status());
  EXPECT_EQ(SortedRows(result->tuples, result->schema.tuple_width()),
            ReferenceRows(text));
  EXPECT_GT(cluster->coordinator().counters().broadcasts.load(), 0u);
}

TEST_F(DistTest, RepartitionOnlyJoinMatchesReference) {
  // Threshold zero disables broadcast: the same join must repartition.
  ASSERT_OK_AND_ASSIGN(auto cluster,
                       Cluster::Make(3, /*broadcast_max_bytes=*/0));
  const std::string text =
      "join(restrict(r01, k1000 < 100), r06, k100 = right.k100)";
  auto result = cluster->coordinator().Execute(text);
  ASSERT_OK(result.status());
  EXPECT_EQ(SortedRows(result->tuples, result->schema.tuple_width()),
            ReferenceRows(text));
  EXPECT_GT(cluster->coordinator().counters().repartitions.load(), 0u);
  EXPECT_EQ(cluster->coordinator().counters().broadcasts.load(), 0u);
}

TEST_F(DistTest, ConnectionsSurviveManyQueries) {
  // The ping/pong drain must leave worker connections clean between
  // queries — run the whole mix twice over the same coordinator.
  ASSERT_OK_AND_ASSIGN(auto cluster, Cluster::Make(3));
  for (int round = 0; round < 2; ++round) {
    CheckQueryMix(cluster.get(), this);
  }
  EXPECT_EQ(cluster->coordinator().counters().errors.load(), 0u);
}

TEST_F(DistTest, ErrorsSurfaceAndConnectionsRecover) {
  ASSERT_OK_AND_ASSIGN(auto cluster, Cluster::Make(2));
  // Unknown relation: planner rejects at analysis.
  EXPECT_FALSE(cluster->coordinator().Execute("restrict(nope, k2 = 0)").ok());
  // Writes are rejected before anything is dispatched.
  auto write = cluster->coordinator().Execute("delete(r01, k2 = 0)");
  EXPECT_FALSE(write.ok());
  EXPECT_TRUE(write.status().IsInvalidArgument());
  // The cluster still answers queries afterwards.
  ASSERT_OK(cluster->coordinator().Connect());
  auto ok = cluster->coordinator().Execute("restrict(r10, k5 = 2)");
  ASSERT_OK(ok.status());
  EXPECT_EQ(SortedRows(ok->tuples, ok->schema.tuple_width()),
            ReferenceRows("restrict(r10, k5 = 2)"));
}

TEST_F(DistTest, FrontServerServesDfw1Clients) {
  ASSERT_OK_AND_ASSIGN(auto cluster, Cluster::Make(3));
  FrontServerOptions options;
  options.port = 0;
  FrontServer front(&cluster->coordinator(), options);
  ASSERT_OK(front.Start());
  ASSERT_OK_AND_ASSIGN(auto client,
                       net::Client::Connect("127.0.0.1", front.port()));
  ASSERT_OK(client.Ping());
  const std::string text =
      "join(restrict(r01, k1000 < 100), r06, k100 = right.k100)";
  ASSERT_OK_AND_ASSIGN(net::RemoteResult result, client.Execute(text));
  EXPECT_EQ(SortedRows(result.tuples, result.schema.tuple_width()),
            ReferenceRows(text));
  EXPECT_GT(result.counters["dist.batches_routed"], 0u);
  client.Close();
  front.Stop();
}

}  // namespace
}  // namespace dist
}  // namespace dfdb

/// \file status_test.cc
/// \brief Tests for Status, StatusOr and the error-propagation macros.

#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/statusor.h"

namespace dfdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists},
      {Status::Corruption("d"), StatusCode::kCorruption},
      {Status::IOError("e"), StatusCode::kIOError},
      {Status::NotSupported("f"), StatusCode::kNotSupported},
      {Status::FailedPrecondition("g"), StatusCode::kFailedPrecondition},
      {Status::OutOfRange("h"), StatusCode::kOutOfRange},
      {Status::ResourceExhausted("i"), StatusCode::kResourceExhausted},
      {Status::Aborted("j"), StatusCode::kAborted},
      {Status::Internal("k"), StatusCode::kInternal},
      {Status::Cancelled("l"), StatusCode::kCancelled},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsCorruption());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::IOError("disk gone");
  Status copy = s;
  EXPECT_EQ(copy, s);
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIOError());
  EXPECT_EQ(moved.message(), "disk gone");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("page 7");
  Status wrapped = s.WithContext("fetching operand");
  EXPECT_TRUE(wrapped.IsNotFound());
  EXPECT_EQ(wrapped.message(), "fetching operand: page 7");
  // OK statuses pass through untouched.
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Corruption("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, OkStatusIsRejected) {
  StatusOr<int> v = Status::OK();
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInternal());
}

TEST(StatusOrTest, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(9);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = *std::move(v);
  EXPECT_EQ(*out, 9);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

StatusOr<int> DoubleIfPositive(int x) {
  DFDB_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

StatusOr<int> ChainWithAssign(int x) {
  DFDB_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_EQ(*DoubleIfPositive(3), 6);
  EXPECT_TRUE(DoubleIfPositive(-1).status().IsInvalidArgument());
}

TEST(MacrosTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*ChainWithAssign(5), 11);
  EXPECT_TRUE(ChainWithAssign(-2).status().IsInvalidArgument());
}

}  // namespace
}  // namespace dfdb

/// \file optimizer_test.cc
/// \brief Tests for the heuristic optimizer: rewrites preserve semantics
/// (checked against the reference executor) and fire when expected.

#include "ra/optimizer.h"

#include <gtest/gtest.h>

#include "engine/run.h"
#include "engine/reference.h"
#include "tests/test_util.h"
#include "workload/generator.h"
#include "workload/paper_benchmark.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(1000);
    ASSERT_OK_AND_ASSIGN(auto big,
                         GenerateRelation(storage_.get(), "big", 800, 1));
    ASSERT_OK_AND_ASSIGN(auto small,
                         GenerateRelation(storage_.get(), "small", 100, 2));
    (void)big;
    (void)small;
  }

  /// Optimizes and verifies identical results via the reference executor.
  PlanNodePtr OptimizeChecked(const PlanNodePtr& plan,
                              OptimizerReport* report) {
    Optimizer optimizer(&storage_->catalog());
    auto optimized = optimizer.Optimize(*plan, report);
    EXPECT_TRUE(optimized.ok()) << optimized.status();
    ReferenceExecutor reference(storage_.get());
    auto before = reference.Execute(*plan);
    auto after = reference.Execute(**optimized);
    EXPECT_TRUE(before.ok() && after.ok());
    if (before.ok() && after.ok()) ExpectSameResult(*before, *after);
    return *std::move(optimized);
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_F(OptimizerTest, MergesAdjacentRestricts) {
  auto plan = MakeRestrict(
      MakeRestrict(MakeScan("big"), Lt(Col("k1000"), Lit(500))),
      Eq(Col("k2"), Lit(1)));
  OptimizerReport report;
  PlanNodePtr optimized = OptimizeChecked(plan, &report);
  EXPECT_EQ(report.restricts_merged, 1);
  // Two restricts became one over the scan.
  EXPECT_EQ(optimized->op, PlanOp::kRestrict);
  EXPECT_EQ(optimized->child(0).op, PlanOp::kScan);
}

TEST_F(OptimizerTest, PushesRestrictThroughUnion) {
  auto plan = MakeRestrict(MakeUnion(MakeScan("big"), MakeScan("small"),
                                     /*bag=*/true),
                           Lt(Col("k1000"), Lit(300)));
  OptimizerReport report;
  PlanNodePtr optimized = OptimizeChecked(plan, &report);
  EXPECT_GE(report.predicates_pushed, 2);
  EXPECT_EQ(optimized->op, PlanOp::kUnion);
  EXPECT_EQ(optimized->child(0).op, PlanOp::kRestrict);
  EXPECT_EQ(optimized->child(1).op, PlanOp::kRestrict);
}

TEST_F(OptimizerTest, PushesRestrictThroughProject) {
  auto plan = MakeRestrict(MakeProject(MakeScan("big"), {"k100", "k1000"}),
                           Lt(Col("k1000"), Lit(200)));
  OptimizerReport report;
  PlanNodePtr optimized = OptimizeChecked(plan, &report);
  EXPECT_GE(report.predicates_pushed, 1);
  EXPECT_EQ(optimized->op, PlanOp::kProject);
  EXPECT_EQ(optimized->child(0).op, PlanOp::kRestrict);
}

TEST_F(OptimizerTest, PushesLeftConjunctsIntoJoin) {
  auto plan = MakeRestrict(
      MakeJoin(MakeScan("big"), MakeScan("small"),
               Eq(Col("k100"), RightCol("k100"))),
      And(Lt(Col("k1000"), Lit(100)),      // Left-only: pushable.
          Gt(Col("k1000_r"), Lit(50))));   // Right-renamed: stays.
  OptimizerReport report;
  PlanNodePtr optimized = OptimizeChecked(plan, &report);
  EXPECT_GE(report.predicates_pushed, 1);
  // The top restrict remains (the k1000_r conjunct), but the left join
  // input gained a restrict.
  const PlanNode* join = optimized.get();
  while (join->op != PlanOp::kJoin) join = &join->child(0);
  bool left_has_restrict = false;
  const PlanNode* l = &join->child(0);
  while (l->op == PlanOp::kRestrict) {
    left_has_restrict = true;
    l = &l->child(0);
  }
  EXPECT_TRUE(left_has_restrict);
}

TEST_F(OptimizerTest, SwapsJoinToPutSmallerInner) {
  // small JOIN big should become big JOIN small (bigger outer).
  auto plan = MakeJoin(MakeScan("small"), MakeScan("big"),
                       Eq(Col("k100"), RightCol("k100")));
  OptimizerReport report;
  PlanNodePtr optimized = OptimizeChecked(plan, &report);
  EXPECT_EQ(report.joins_swapped, 1);
  // The swap is wrapped in a schema-restoring projection.
  ASSERT_EQ(optimized->op, PlanOp::kProject);
  const PlanNode& join = optimized->child(0);
  EXPECT_EQ(join.child(0).relation, "big");
  EXPECT_EQ(join.child(1).relation, "small");
  // The public schema is unchanged.
  auto original = plan->Clone();
  Analyzer analyzer(&storage_->catalog());
  ASSERT_OK_AND_ASSIGN(auto a, analyzer.Resolve(original.get()));
  (void)a;
  EXPECT_EQ(optimized->output_schema, original->output_schema);
  // Already-good order is left alone.
  auto good = MakeJoin(MakeScan("big"), MakeScan("small"),
                       Eq(Col("k100"), RightCol("k100")));
  OptimizerReport report2;
  PlanNodePtr unchanged = OptimizeChecked(good, &report2);
  EXPECT_EQ(report2.joins_swapped, 0);
  EXPECT_EQ(unchanged->child(0).relation, "big");
}

TEST_F(OptimizerTest, SelectivityUsesUniformDomains) {
  Optimizer optimizer(&storage_->catalog());
  Schema schema = BenchmarkSchema();
  EXPECT_NEAR(optimizer.EstimateSelectivity(*Lt(Col("k1000"), Lit(250)),
                                            schema),
              0.25, 1e-9);
  EXPECT_NEAR(optimizer.EstimateSelectivity(*Eq(Col("k100"), Lit(7)), schema),
              0.01, 1e-9);
  EXPECT_NEAR(optimizer.EstimateSelectivity(*Ge(Col("k10"), Lit(4)), schema),
              0.6, 1e-9);
  EXPECT_NEAR(
      optimizer.EstimateSelectivity(
          *And(Lt(Col("k10"), Lit(5)), Lt(Col("k100"), Lit(50))), schema),
      0.25, 1e-9);
  EXPECT_NEAR(optimizer.EstimateSelectivity(*Not(Lt(Col("k10"), Lit(2))),
                                            schema),
              0.8, 1e-9);
}

TEST_F(OptimizerTest, EstimateRowsFollowsStats) {
  Optimizer optimizer(&storage_->catalog());
  Analyzer analyzer(&storage_->catalog());
  auto scan = MakeScan("big");
  ASSERT_OK_AND_ASSIGN(auto a1, analyzer.Resolve(scan.get()));
  (void)a1;
  EXPECT_DOUBLE_EQ(optimizer.EstimateRows(*scan), 800.0);
  auto restricted =
      MakeRestrict(MakeScan("big"), Lt(Col("k1000"), Lit(100)));
  ASSERT_OK_AND_ASSIGN(auto a2, analyzer.Resolve(restricted.get()));
  (void)a2;
  EXPECT_NEAR(optimizer.EstimateRows(*restricted), 80.0, 1e-6);
  auto join = MakeJoin(MakeScan("big"), MakeScan("small"),
                       Eq(Col("k100"), RightCol("k100")));
  ASSERT_OK_AND_ASSIGN(auto a3, analyzer.Resolve(join.get()));
  (void)a3;
  EXPECT_NEAR(optimizer.EstimateRows(*join), 800.0 * 100.0 / 100.0, 1e-6);
}

TEST_F(OptimizerTest, ComplexTreeStaysCorrectOnEngine) {
  // A messy tree exercising several rules at once, verified end to end on
  // the dataflow engine.
  auto plan = MakeRestrict(
      MakeRestrict(
          MakeJoin(MakeScan("small"),
                   MakeRestrict(MakeScan("big"), Lt(Col("k1000"), Lit(400))),
                   Eq(Col("k100"), RightCol("k100"))),
          Lt(Col("k1000"), Lit(800))),
      Eq(Col("k2"), Lit(0)));
  Optimizer optimizer(&storage_->catalog());
  OptimizerReport report;
  ASSERT_OK_AND_ASSIGN(PlanNodePtr optimized,
                       optimizer.Optimize(*plan, &report));
  EXPECT_GT(report.restricts_merged + report.predicates_pushed +
                report.joins_swapped,
            0);
  ExecOptions opts;
  opts.num_processors = 4;
  opts.page_bytes = 1000;
  ASSERT_OK_AND_ASSIGN(QueryResult before,
                       RunQuery(storage_.get(), *plan, opts));
  ASSERT_OK_AND_ASSIGN(QueryResult after,
                       RunQuery(storage_.get(), *optimized, opts));
  ExpectSameResult(before, after);
}

TEST_F(OptimizerTest, PushThroughAliasedProjectRenamesCorrectly) {
  // A restrict above a projection with aliases (as the join-swap rule
  // produces) must be rewritten against the pre-projection names.
  auto proj = MakeProject(MakeScan("big"), {"k1000", "k100"});
  proj->project_aliases = {"thousand", "hundred"};
  auto plan = MakeRestrict(std::move(proj), Lt(Col("thousand"), Lit(200)));
  OptimizerReport report;
  PlanNodePtr optimized = OptimizeChecked(plan, &report);
  EXPECT_GE(report.predicates_pushed, 1);
  ASSERT_EQ(optimized->op, PlanOp::kProject);
  EXPECT_EQ(optimized->child(0).op, PlanOp::kRestrict);
  // The pushed predicate speaks the base schema's language.
  EXPECT_EQ(optimized->child(0).predicate->ToString(), "(k1000 < 200)");
  // The public schema still uses the aliases.
  ASSERT_OK_AND_ASSIGN(int idx, optimized->output_schema.ColumnIndex("thousand"));
  EXPECT_EQ(idx, 0);
}

TEST_F(OptimizerTest, PaperBenchmarkUnchangedSemantics) {
  // Optimizing all ten paper queries must not change any result.
  StorageEngine paper_storage(4096);
  ASSERT_OK_AND_ASSIGN(int64_t bytes,
                       BuildPaperDatabase(&paper_storage, 0.05, 42));
  (void)bytes;
  Optimizer optimizer(&paper_storage.catalog());
  ReferenceExecutor reference(&paper_storage);
  int total_rewrites = 0;
  for (const Query& q : MakePaperBenchmarkQueries()) {
    OptimizerReport report;
    ASSERT_OK_AND_ASSIGN(PlanNodePtr optimized,
                         optimizer.Optimize(*q.root, &report));
    total_rewrites += report.restricts_merged + report.predicates_pushed +
                      report.joins_swapped;
    ASSERT_OK_AND_ASSIGN(QueryResult before, reference.Execute(*q.root));
    ASSERT_OK_AND_ASSIGN(QueryResult after, reference.Execute(*optimized));
    SCOPED_TRACE(q.name);
    ExpectSameResult(before, after);
  }
  // The benchmark's trees are already well-shaped; some joins still get
  // reordered by the estimates.
  EXPECT_GE(total_rewrites, 0);
}

TEST_F(OptimizerTest, ReportToString) {
  OptimizerReport r;
  r.restricts_merged = 1;
  r.predicates_pushed = 2;
  r.joins_swapped = 3;
  r.edges_fused = 4;
  r.edges_materialized = 5;
  r.scans_full = 6;
  r.scans_zonemap = 7;
  r.scans_gridfile = 8;
  r.scans_pushdown = 9;
  EXPECT_EQ(r.ToString(),
            "merged=1 pushed=2 swapped=3 fused=4 materialized=5 "
            "scans(full=6 zonemap=7 gridfile=8) pushdown=9");
}

// ---------------------------------------------------------------------------
// Per-edge pipeline decisions (DecidePipelining)
// ---------------------------------------------------------------------------

TEST_F(OptimizerTest, MarksSelectiveRestrictIntoJoinFused) {
  // restrict(big) -> join: low selectivity, modest join fanout -> fuse.
  auto plan = MakeJoin(
      MakeRestrict(MakeScan("big"), Lt(Col("k1000"), Lit(100))),
      MakeScan("small"), Eq(Col("k100"), RightCol("k100")));
  OptimizerReport report;
  PlanNodePtr optimized = OptimizeChecked(plan, &report);
  EXPECT_GE(report.edges_fused, 1) << report.ToString();
  // The restrict feeding the join carries the mark.
  const PlanNode* join = optimized.get();
  while (join->op != PlanOp::kJoin) join = &join->child(0);
  bool any_marked = false;
  for (int i = 0; i < join->num_children(); ++i) {
    if (join->child(i).op == PlanOp::kRestrict &&
        join->child(i).pipeline_fused) {
      any_marked = true;
    }
  }
  EXPECT_TRUE(any_marked);
}

TEST_F(OptimizerTest, HighFanoutJoinInputStaysMaterialized) {
  // Joining big with itself on k2 has fanout rows/2 = 400, far above
  // kPipelineFanoutLimit: the stats veto must keep the edge materialized.
  auto plan = MakeJoin(
      MakeRestrict(MakeScan("big"), Lt(Col("k1000"), Lit(900))),
      MakeScan("big"), Eq(Col("k2"), RightCol("k2")));
  Optimizer optimizer(&storage_->catalog());
  OptimizerReport report;
  ASSERT_OK_AND_ASSIGN(PlanNodePtr optimized,
                       optimizer.Optimize(*plan, &report));
  EXPECT_EQ(report.edges_fused, 0) << report.ToString();
  EXPECT_GE(report.fallback_high_fanout, 1) << report.ToString();
  const PlanNode* join = optimized.get();
  while (join->op != PlanOp::kJoin) join = &join->child(0);
  for (int i = 0; i < join->num_children(); ++i) {
    EXPECT_FALSE(join->child(i).pipeline_fused);
  }
}

TEST_F(OptimizerTest, DedupProjectConsumerIsNotFusable) {
  // restrict -> dedup project: the project is a barrier (hash state), so
  // the edge below it must stay materialized with an unsupported-consumer
  // fallback.
  auto plan = MakeProject(
      MakeRestrict(MakeScan("big"), Lt(Col("k1000"), Lit(100))), {"k100"});
  plan->dedup = true;
  Optimizer optimizer(&storage_->catalog());
  OptimizerReport report;
  ASSERT_OK_AND_ASSIGN(PlanNodePtr optimized,
                       optimizer.Optimize(*plan, &report));
  (void)optimized;
  EXPECT_EQ(report.edges_fused, 0) << report.ToString();
  EXPECT_GE(report.fallback_unsupported_consumer, 1) << report.ToString();
}

TEST_F(OptimizerTest, RestrictChainIntoJoinFusesEveryEdge) {
  // restrict(restrict(big)) -> join: with merging disabled by distinct
  // columns... the merge rule will collapse them first, so build the chain
  // as restrict -> project -> join instead: both unary edges can fuse.
  auto plan = MakeJoin(
      MakeProject(MakeRestrict(MakeScan("big"), Lt(Col("k1000"), Lit(50))),
                  {"k100", "k1000"}),
      MakeScan("small"), Eq(Col("k100"), RightCol("k100")));
  OptimizerReport report;
  PlanNodePtr optimized = OptimizeChecked(plan, &report);
  EXPECT_GE(report.edges_fused, 2) << report.ToString();
  (void)optimized;
}

}  // namespace
}  // namespace dfdb

/// \file integration_test.cc
/// \brief Full-stack integration: the paper benchmark end-to-end on all
/// three executors, plus cross-engine statistics invariants.

#include <gtest/gtest.h>

#include "engine/run.h"
#include "engine/reference.h"
#include "machine/simulator.h"
#include "tests/test_util.h"
#include "workload/paper_benchmark.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(4096);
    ASSERT_OK_AND_ASSIGN(int64_t bytes,
                         BuildPaperDatabase(storage_.get(), 0.05, 42));
    EXPECT_GT(bytes, 0);
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_F(IntegrationTest, AllTenQueriesAgreeAcrossExecutors) {
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans;
  for (const Query& q : queries) plans.push_back(q.root.get());

  // Reference results.
  ReferenceExecutor reference(storage_.get());
  std::vector<QueryResult> expected;
  for (const Query& q : queries) {
    ASSERT_OK_AND_ASSIGN(QueryResult r, reference.Execute(*q.root));
    expected.push_back(std::move(r));
  }

  // Threads engine, batch, page granularity.
  ExecOptions eopts;
  eopts.granularity = Granularity::kPage;
  eopts.num_processors = 4;
  eopts.page_bytes = 4096;
  ASSERT_OK_AND_ASSIGN(std::vector<QueryResult> engine_results,
                       RunBatch(storage_.get(), plans, eopts));
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE(queries[i].name);
    ExpectSameResult(expected[i], engine_results[i]);
  }

  // Machine simulator, batch, page granularity.
  MachineOptions mopts;
  mopts.granularity = Granularity::kPage;
  mopts.config.num_instruction_processors = 8;
  mopts.config.page_bytes = 4096;
  MachineSimulator sim(storage_.get(), mopts);
  ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run(plans));
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE(queries[i].name);
    ExpectSameResult(expected[i], report.results[i]);
  }
}

TEST_F(IntegrationTest, SortMergeReferenceAgreesOnEquiJoins) {
  // The Blasgen-Eswaran baseline must compute the same joins.
  ReferenceExecutor reference(storage_.get());
  for (const Query& q : MakePaperBenchmarkQueries()) {
    ASSERT_OK_AND_ASSIGN(QueryResult nested,
                         reference.Execute(*q.root, false));
    ASSERT_OK_AND_ASSIGN(QueryResult merged, reference.Execute(*q.root, true));
    SCOPED_TRACE(q.name);
    ExpectSameResult(nested, merged);
  }
}

TEST_F(IntegrationTest, EngineStatsInvariants) {
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans;
  for (const Query& q : queries) plans.push_back(q.root.get());
  ExecOptions opts;
  opts.granularity = Granularity::kPage;
  opts.num_processors = 2;
  opts.page_bytes = 4096;
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(auto results,
                       RunBatch(storage_.get(), plans, opts, &stats));
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.tasks_executed, 0u);
  EXPECT_GT(stats.packets, 0u);
  // Every packet was counted with its overhead.
  EXPECT_EQ(stats.overhead_bytes,
            stats.packets * static_cast<uint64_t>(opts.packet_overhead_bytes));
  // Joins re-read operands, so arbitration traffic strictly exceeds result
  // traffic on this benchmark.
  EXPECT_GT(stats.arbitration_bytes, stats.distribution_bytes);
  EXPECT_GT(stats.pages_produced, 0u);
  EXPECT_GT(stats.tuples_produced, 0u);
  // Base data was read through the hierarchy.
  EXPECT_GT(stats.buffer.disk_read_bytes, 0u);
  EXPECT_EQ(stats.network_bytes(), stats.arbitration_bytes +
                                       stats.distribution_bytes +
                                       stats.overhead_bytes);
}

TEST_F(IntegrationTest, MachineGranularityOrderingOnBenchmark) {
  // At equal resources: page <= relation makespan (the paper's claim), and
  // every granularity completes with identical per-query tuple counts.
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans;
  for (const Query& q : queries) plans.push_back(q.root.get());
  SimTime times[2];
  std::vector<uint64_t> counts[2];
  for (int g = 0; g < 2; ++g) {
    MachineOptions opts;
    opts.granularity = g == 0 ? Granularity::kPage : Granularity::kRelation;
    opts.config.num_instruction_processors = 16;
    opts.config.page_bytes = 4096;
    MachineSimulator sim(storage_.get(), opts);
    ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run(plans));
    times[g] = report.makespan;
    for (const QueryResult& r : report.results) {
      counts[g].push_back(r.num_tuples());
    }
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_LE(times[0].nanos(), times[1].nanos());
}

TEST_F(IntegrationTest, RepeatedBatchesAreStable) {
  // Running the same batch twice against the same (read-only) database
  // produces identical results — guards against cross-run state leaks.
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans;
  for (const Query& q : queries) plans.push_back(q.root.get());
  ExecOptions opts;
  opts.num_processors = 4;
  opts.page_bytes = 4096;
  ASSERT_OK_AND_ASSIGN(auto first, RunBatch(storage_.get(), plans, opts));
  ASSERT_OK_AND_ASSIGN(auto second, RunBatch(storage_.get(), plans, opts));
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectSameResult(first[i], second[i]);
  }
}

}  // namespace
}  // namespace dfdb

/// \file packet_test.cc
/// \brief Round-trip and sizing tests for the Figure 4.3-4.5 packet formats.

#include "machine/packet.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

Page MakePage(int tuples) {
  Schema schema = Schema::CreateOrDie({Column::Int32("a"), Column::Int32("b")});
  auto page = Page::Create(7, schema.tuple_width(), 256);
  EXPECT_TRUE(page.ok());
  for (int i = 0; i < tuples; ++i) {
    auto t = EncodeTuple(schema, {Value::Int32(i), Value::Int32(i * 2)});
    EXPECT_TRUE(t.ok());
    EXPECT_OK(page->Append(Slice(*t)));
  }
  return *std::move(page);
}

TEST(PacketTest, InstructionPacketRoundTrip) {
  InstructionPacket pkt;
  pkt.ip_id = 3;
  pkt.query_id = 42;
  pkt.ic_id_sender = 1;
  pkt.ic_id_destination = 2;
  pkt.flush_when_done = true;
  pkt.opcode = PacketOpcode::kJoin;
  pkt.result_relation_name = "out";
  pkt.result_tuple_length = 16;
  PacketOperand outer;
  outer.relation_name = "lhs";
  outer.tuple_length = 8;
  outer.page = MakePage(5);
  pkt.operands.push_back(std::move(outer));
  PacketOperand inner;
  inner.relation_name = "rhs";
  inner.tuple_length = 8;
  inner.page = MakePage(3);
  pkt.operands.push_back(std::move(inner));

  const std::string wire = pkt.Serialize();
  EXPECT_EQ(static_cast<int64_t>(wire.size()), pkt.WireBytes());

  auto decoded = InstructionPacket::Deserialize(Slice(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->ip_id, 3u);
  EXPECT_EQ(decoded->query_id, 42u);
  EXPECT_EQ(decoded->ic_id_destination, 2u);
  EXPECT_TRUE(decoded->flush_when_done);
  EXPECT_EQ(decoded->opcode, PacketOpcode::kJoin);
  EXPECT_EQ(decoded->result_relation_name, "out");
  ASSERT_EQ(decoded->operands.size(), 2u);
  EXPECT_EQ(decoded->operands[0].relation_name, "lhs");
  ASSERT_TRUE(decoded->operands[0].page.has_value());
  EXPECT_EQ(decoded->operands[0].page->num_tuples(), 5);
  EXPECT_EQ(decoded->operands[1].page->num_tuples(), 3);
  // Tuple payloads survive intact.
  EXPECT_EQ(decoded->operands[0].page->tuple(4).ToString(),
            MakePage(5).tuple(4).ToString());
}

TEST(PacketTest, InstructionPacketNoOperandPage) {
  InstructionPacket pkt;
  pkt.opcode = PacketOpcode::kRestrict;
  PacketOperand op;
  op.relation_name = "r";
  op.tuple_length = 100;
  pkt.operands.push_back(std::move(op));
  const std::string wire = pkt.Serialize();
  auto decoded = InstructionPacket::Deserialize(Slice(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_FALSE(decoded->operands[0].page.has_value());
}

TEST(PacketTest, ResultPacketRoundTrip) {
  ResultPacket pkt;
  pkt.ic_id = 5;
  pkt.relation_name = "tmp";
  pkt.page = MakePage(4);
  const std::string wire = pkt.Serialize();
  EXPECT_EQ(static_cast<int64_t>(wire.size()), pkt.WireBytes());
  auto decoded = ResultPacket::Deserialize(Slice(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->ic_id, 5u);
  EXPECT_EQ(decoded->relation_name, "tmp");
  ASSERT_TRUE(decoded->page.has_value());
  EXPECT_EQ(decoded->page->num_tuples(), 4);
}

TEST(PacketTest, ControlPacketRoundTrip) {
  ControlPacket pkt;
  pkt.ic_id = 2;
  pkt.ip_id_sender = 9;
  pkt.message = ControlMessage::kRequestPage;
  pkt.argument = 17;
  const std::string wire = pkt.Serialize();
  EXPECT_EQ(static_cast<int64_t>(wire.size()), pkt.WireBytes());
  auto decoded = ControlPacket::Deserialize(Slice(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->message, ControlMessage::kRequestPage);
  EXPECT_EQ(decoded->argument, 17u);
}

TEST(PacketTest, CorruptionDetected) {
  ControlPacket pkt;
  std::string wire = pkt.Serialize();
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(ControlPacket::Deserialize(Slice(wire)).ok());

  ResultPacket rp;
  rp.page = MakePage(2);
  std::string rw = rp.Serialize();
  rw[5] = static_cast<char>(rw[5] + 1);  // Corrupt the length field.
  EXPECT_FALSE(ResultPacket::Deserialize(Slice(rw)).ok());
}

/// The simulator computes wire sizes analytically; assert the formulas
/// agree with the real serialized formats.
TEST(PacketTest, AnalyticSizesMatchSerialization) {
  // Unary packet with one operand page of P payload bytes:
  // header 48 + operand 16 + page header 16 + payload.
  InstructionPacket pkt;
  PacketOperand op;
  op.relation_name = "r";
  op.page = MakePage(6);
  const int64_t payload = op.page->payload_bytes();
  pkt.operands.push_back(std::move(op));
  EXPECT_EQ(pkt.WireBytes(), 48 + 16 + 16 + payload);

  ControlPacket cp;
  EXPECT_EQ(cp.WireBytes(), 20);

  ResultPacket rp;
  rp.page = MakePage(6);
  EXPECT_EQ(rp.WireBytes(), 20 + 16 + payload);
}

}  // namespace
}  // namespace dfdb

/// \file buffer_manager_test.cc
/// \brief Tests of the three-level storage hierarchy (Section 4.1).

#include "storage/buffer_manager.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dfdb {
namespace {

PagePtr MakePage(int bytes = 100) {
  auto page = Page::Create(1, 10, bytes);
  EXPECT_TRUE(page.ok());
  while (!page->full()) {
    EXPECT_OK(page->Append(Slice("0123456789")));
  }
  return SealPage(*std::move(page));
}

TEST(BufferManagerTest, LocalHitIsFree) {
  PageStore store;
  BufferManager buffer(&store, /*local=*/4, /*cache=*/8);
  const PageId id = buffer.PutNew(MakePage());
  ASSERT_OK_AND_ASSIGN(PagePtr p, buffer.Fetch(id));
  (void)p;
  const BufferStats stats = buffer.stats();
  EXPECT_EQ(stats.local_hits, 1u);
  EXPECT_EQ(stats.total_transferred_bytes(), 0u);
}

TEST(BufferManagerTest, EvictionCascadesToCacheThenDisk) {
  PageStore store;
  BufferManager buffer(&store, /*local=*/2, /*cache=*/2);
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(buffer.PutNew(MakePage()));
  // Local holds 2, cache holds 2, two victims went to "disk".
  EXPECT_EQ(buffer.local_resident_pages(), 2);
  EXPECT_EQ(buffer.cache_resident_pages(), 2);
  const BufferStats stats = buffer.stats();
  EXPECT_EQ(stats.cache_writes, 4u);  // Four local evictions.
  EXPECT_EQ(stats.disk_writes, 2u);   // Two cache evictions.
  EXPECT_EQ(stats.cache_write_bytes, 400u);
  EXPECT_EQ(stats.disk_write_bytes, 200u);
}

TEST(BufferManagerTest, FetchFromEachLevel) {
  PageStore store;
  BufferManager buffer(&store, 2, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(buffer.PutNew(MakePage()));
  buffer.ResetStats();

  // ids[0..1] were evicted to disk, ids[2..3] to cache, ids[4..5] local.
  ASSERT_OK_AND_ASSIGN(PagePtr local, buffer.Fetch(ids[5]));
  EXPECT_EQ(buffer.stats().local_hits, 1u);

  ASSERT_OK_AND_ASSIGN(PagePtr cached, buffer.Fetch(ids[3]));
  EXPECT_EQ(buffer.stats().cache_reads, 1u);
  EXPECT_EQ(buffer.stats().cache_read_bytes, 100u);
  EXPECT_EQ(buffer.stats().disk_reads, 0u);

  ASSERT_OK_AND_ASSIGN(PagePtr diskp, buffer.Fetch(ids[0]));
  EXPECT_EQ(buffer.stats().disk_reads, 1u);
  EXPECT_EQ(buffer.stats().disk_read_bytes, 100u);
  (void)local;
  (void)cached;
  (void)diskp;
}

TEST(BufferManagerTest, LruOrderGovernsEviction) {
  PageStore store;
  BufferManager buffer(&store, 2, 4);
  const PageId a = buffer.PutNew(MakePage());
  const PageId b = buffer.PutNew(MakePage());
  // Touch a so that b is the LRU victim when c arrives.
  ASSERT_OK_AND_ASSIGN(PagePtr pa, buffer.Fetch(a));
  (void)pa;
  const PageId c = buffer.PutNew(MakePage());
  (void)c;
  buffer.ResetStats();
  // a should still be local; b should be in the cache level.
  ASSERT_OK_AND_ASSIGN(PagePtr pa2, buffer.Fetch(a));
  (void)pa2;
  EXPECT_EQ(buffer.stats().local_hits, 1u);
  ASSERT_OK_AND_ASSIGN(PagePtr pb, buffer.Fetch(b));
  (void)pb;
  EXPECT_EQ(buffer.stats().cache_reads, 1u);
}

TEST(BufferManagerTest, DiscardFreesEverywhere) {
  PageStore store;
  BufferManager buffer(&store, 2, 2);
  const PageId id = buffer.PutNew(MakePage());
  ASSERT_OK(buffer.Discard(id));
  EXPECT_TRUE(buffer.Fetch(id).status().IsNotFound());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(buffer.Discard(id).IsNotFound());
}

TEST(BufferManagerTest, FlushAllDrainsResidency) {
  PageStore store;
  BufferManager buffer(&store, 4, 4);
  for (int i = 0; i < 4; ++i) buffer.PutNew(MakePage());
  buffer.FlushAll();
  EXPECT_EQ(buffer.local_resident_pages(), 0);
  EXPECT_EQ(buffer.cache_resident_pages(), 0);
  // Flushing counted the writebacks.
  EXPECT_EQ(buffer.stats().cache_writes, 4u);
  EXPECT_EQ(buffer.stats().disk_writes, 4u);
}

TEST(BufferManagerTest, StatsToStringIsHuman) {
  BufferStats stats;
  stats.disk_read_bytes = 1024;
  EXPECT_NE(stats.ToString().find("KB"), std::string::npos);
}

}  // namespace
}  // namespace dfdb

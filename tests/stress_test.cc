/// \file stress_test.cc
/// \brief Concurrency stress: many simultaneous queries, write conflicts,
/// and repeated runs shaking out races in the dataflow engine.

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/reference.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(600);
    ASSERT_OK_AND_ASSIGN(auto a, GenerateRelation(storage_.get(), "a", 400, 1));
    ASSERT_OK_AND_ASSIGN(auto b, GenerateRelation(storage_.get(), "b", 150, 2));
    (void)a;
    (void)b;
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_F(StressTest, TwentyConcurrentReadQueries) {
  // A wide batch of read-only queries sharing relations: all run
  // concurrently (no conflicts) and every result matches the reference.
  std::vector<PlanNodePtr> plans;
  std::vector<const PlanNode*> raw;
  for (int i = 0; i < 20; ++i) {
    const int32_t cut = 50 + i * 45;
    if (i % 3 == 0) {
      plans.push_back(
          MakeJoin(MakeRestrict(MakeScan("a"), Lt(Col("k1000"), Lit(cut))),
                   MakeScan("b"), Eq(Col("k100"), RightCol("k100"))));
    } else {
      plans.push_back(MakeRestrict(MakeScan(i % 2 ? "a" : "b"),
                                   Ge(Col("k1000"), Lit(cut))));
    }
    raw.push_back(plans.back().get());
  }
  ExecOptions opts;
  opts.num_processors = 8;
  opts.page_bytes = 600;
  Executor engine(storage_.get(), opts);
  ASSERT_OK_AND_ASSIGN(std::vector<QueryResult> results,
                       engine.ExecuteBatch(raw));
  ReferenceExecutor reference(storage_.get());
  for (size_t i = 0; i < plans.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*plans[i]));
    ExpectSameResult(expected, results[i]);
  }
}

TEST_F(StressTest, ConflictingWritersSerializeInSubmissionOrder) {
  // Three writers into the same relation submitted in one batch: the MC
  // admits conflicting queries FIFO, so the final state is deterministic:
  //   1. append all a-rows with k1000 < 100        (+N1)
  //   2. append all a-rows with k1000 >= 900       (+N2)
  //   3. delete rows with k2 = 0                    (-matching)
  ASSERT_OK_AND_ASSIGN(auto acc,
                       storage_->CreateRelation("acc", BenchmarkSchema()));
  (void)acc;
  auto w1 = MakeAppend(
      MakeRestrict(MakeScan("a"), Lt(Col("k1000"), Lit(100))), "acc");
  auto w2 = MakeAppend(
      MakeRestrict(MakeScan("a"), Ge(Col("k1000"), Lit(900))), "acc");
  auto w3 = MakeDelete("acc", Eq(Col("k2"), Lit(0)));
  ExecOptions opts;
  opts.num_processors = 4;
  opts.page_bytes = 600;
  Executor engine(storage_.get(), opts);
  ASSERT_OK_AND_ASSIGN(auto results,
                       engine.ExecuteBatch({w1.get(), w2.get(), w3.get()}));
  (void)results;

  // Expected final contents, computed serially.
  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(
      QueryResult expected,
      reference.Execute(*MakeRestrict(
          MakeScan("a"),
          And(Or(Lt(Col("k1000"), Lit(100)), Ge(Col("k1000"), Lit(900))),
              Ne(Col("k2"), Lit(0))))));
  ASSERT_OK_AND_ASSIGN(QueryResult actual,
                       reference.Execute(*MakeScan("acc")));
  ExpectSameResult(expected, actual);
}

TEST_F(StressTest, RepeatedBatchesShakeOutRaces) {
  // Run the same mixed batch several times under different processor
  // counts; every run must match the first.
  auto q1 = MakeJoin(MakeScan("b"), MakeScan("b"),
                     Eq(Col("k100"), RightCol("k100")));
  auto q2 = MakeProject(MakeScan("a"), {"k10", "k100"}, /*dedup=*/true);
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "n"});
  auto q3 = MakeAggregate(MakeScan("a"), {"k25"}, specs);
  std::vector<const PlanNode*> raw{q1.get(), q2.get(), q3.get()};

  std::vector<std::vector<std::string>> baseline;
  for (int procs : {1, 2, 4, 8, 8, 8}) {
    ExecOptions opts;
    opts.num_processors = procs;
    opts.page_bytes = 600;
    opts.local_memory_pages = 4;  // Tiny memories stress the hierarchy.
    opts.disk_cache_pages = 8;
    Executor engine(storage_.get(), opts);
    ASSERT_OK_AND_ASSIGN(auto results, engine.ExecuteBatch(raw));
    std::vector<std::vector<std::string>> rows;
    for (const QueryResult& r : results) {
      rows.push_back(testing::ResultMultiset(r));
    }
    if (baseline.empty()) {
      for (auto& r : rows) baseline.push_back(r);
    } else {
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i], baseline[i]) << "query " << i << " procs " << procs;
      }
    }
  }
}

}  // namespace
}  // namespace dfdb

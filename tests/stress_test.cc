/// \file stress_test.cc
/// \brief Concurrency stress: many simultaneous queries, write conflicts,
/// repeated runs shaking out races in the dataflow engine, and seeded
/// fault storms on the ring machine.

#include <gtest/gtest.h>

#include "engine/run.h"
#include "engine/reference.h"
#include "machine/simulator.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(600);
    ASSERT_OK_AND_ASSIGN(auto a, GenerateRelation(storage_.get(), "a", 400, 1));
    ASSERT_OK_AND_ASSIGN(auto b, GenerateRelation(storage_.get(), "b", 150, 2));
    (void)a;
    (void)b;
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_F(StressTest, TwentyConcurrentReadQueries) {
  // A wide batch of read-only queries sharing relations: all run
  // concurrently (no conflicts) and every result matches the reference.
  std::vector<PlanNodePtr> plans;
  std::vector<const PlanNode*> raw;
  for (int i = 0; i < 20; ++i) {
    const int32_t cut = 50 + i * 45;
    if (i % 3 == 0) {
      plans.push_back(
          MakeJoin(MakeRestrict(MakeScan("a"), Lt(Col("k1000"), Lit(cut))),
                   MakeScan("b"), Eq(Col("k100"), RightCol("k100"))));
    } else {
      plans.push_back(MakeRestrict(MakeScan(i % 2 ? "a" : "b"),
                                   Ge(Col("k1000"), Lit(cut))));
    }
    raw.push_back(plans.back().get());
  }
  ExecOptions opts;
  opts.num_processors = 8;
  opts.page_bytes = 600;
  ASSERT_OK_AND_ASSIGN(std::vector<QueryResult> results,
                       RunBatch(storage_.get(), raw, opts));
  ReferenceExecutor reference(storage_.get());
  for (size_t i = 0; i < plans.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*plans[i]));
    ExpectSameResult(expected, results[i]);
  }
}

TEST_F(StressTest, ConflictingWritersSerializeInSubmissionOrder) {
  // Three writers into the same relation submitted in one batch: the MC
  // admits conflicting queries FIFO, so the final state is deterministic:
  //   1. append all a-rows with k1000 < 100        (+N1)
  //   2. append all a-rows with k1000 >= 900       (+N2)
  //   3. delete rows with k2 = 0                    (-matching)
  ASSERT_OK_AND_ASSIGN(auto acc,
                       storage_->CreateRelation("acc", BenchmarkSchema()));
  (void)acc;
  auto w1 = MakeAppend(
      MakeRestrict(MakeScan("a"), Lt(Col("k1000"), Lit(100))), "acc");
  auto w2 = MakeAppend(
      MakeRestrict(MakeScan("a"), Ge(Col("k1000"), Lit(900))), "acc");
  auto w3 = MakeDelete("acc", Eq(Col("k2"), Lit(0)));
  ExecOptions opts;
  opts.num_processors = 4;
  opts.page_bytes = 600;
  ASSERT_OK_AND_ASSIGN(auto results, RunBatch(storage_.get(),
                                              {w1.get(), w2.get(), w3.get()},
                                              opts));
  (void)results;

  // Expected final contents, computed serially.
  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(
      QueryResult expected,
      reference.Execute(*MakeRestrict(
          MakeScan("a"),
          And(Or(Lt(Col("k1000"), Lit(100)), Ge(Col("k1000"), Lit(900))),
              Ne(Col("k2"), Lit(0))))));
  ASSERT_OK_AND_ASSIGN(QueryResult actual,
                       reference.Execute(*MakeScan("acc")));
  ExpectSameResult(expected, actual);
}

TEST_F(StressTest, RepeatedBatchesShakeOutRaces) {
  // Run the same mixed batch several times under different processor
  // counts; every run must match the first.
  auto q1 = MakeJoin(MakeScan("b"), MakeScan("b"),
                     Eq(Col("k100"), RightCol("k100")));
  auto q2 = MakeProject(MakeScan("a"), {"k10", "k100"}, /*dedup=*/true);
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "n"});
  auto q3 = MakeAggregate(MakeScan("a"), {"k25"}, specs);
  std::vector<const PlanNode*> raw{q1.get(), q2.get(), q3.get()};

  std::vector<std::vector<std::string>> baseline;
  for (int procs : {1, 2, 4, 8, 8, 8}) {
    ExecOptions opts;
    opts.num_processors = procs;
    opts.page_bytes = 600;
    opts.local_memory_pages = 4;  // Tiny memories stress the hierarchy.
    opts.disk_cache_pages = 8;
    ASSERT_OK_AND_ASSIGN(auto results, RunBatch(storage_.get(), raw, opts));
    std::vector<std::vector<std::string>> rows;
    for (const QueryResult& r : results) {
      rows.push_back(testing::ResultMultiset(r));
    }
    if (baseline.empty()) {
      for (auto& r : rows) baseline.push_back(r);
    } else {
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i], baseline[i]) << "query " << i << " procs " << procs;
      }
    }
  }
}

TEST_F(StressTest, MachineFaultStormNeitherHangsNorCorrupts) {
  // A multi-query batch on the ring machine under seeded random fault
  // storms: every storm the machine survives must leave every result
  // identical to the reference, and no storm may hang the simulation (the
  // event-count safety valve turns a livelock into a test failure).
  auto q1 = MakeJoin(MakeRestrict(MakeScan("a"), Lt(Col("k1000"), Lit(400))),
                     MakeScan("b"), Eq(Col("k100"), RightCol("k100")));
  auto q2 = MakeRestrict(MakeScan("a"), Ge(Col("k1000"), Lit(700)));
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "n"});
  auto q3 = MakeAggregate(MakeScan("b"), {"k10"}, specs);
  std::vector<const PlanNode*> raw{q1.get(), q2.get(), q3.get()};

  ReferenceExecutor reference(storage_.get());
  std::vector<QueryResult> expected;
  for (const PlanNode* p : raw) {
    ASSERT_OK_AND_ASSIGN(QueryResult e, reference.Execute(*p));
    expected.push_back(std::move(e));
  }

  MachineOptions base;
  base.granularity = Granularity::kPage;
  base.config.num_instruction_processors = 8;
  base.config.num_instruction_controllers = 3;
  base.config.page_bytes = 600;
  base.config.ic_local_memory_pages = 8;
  base.config.disk_cache_pages = 32;
  MachineSimulator healthy(storage_.get(), base);
  ASSERT_OK_AND_ASSIGN(MachineReport baseline, healthy.Run(raw));

  int survived = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    FaultPlan storm = FaultPlan::RandomStorm(seed, /*ip_kills=*/3,
                                             /*packet_faults=*/4,
                                             baseline.makespan);
    storm.detection_timeout = SimTime::Micros(500);
    storm.retry_backoff = SimTime::Micros(100);
    MachineOptions opts = base;
    opts.fault_plan = storm;
    MachineSimulator sim(storage_.get(), opts);
    auto report = sim.Run(raw);
    if (!report.ok()) {
      // Redundancy exhausted is the only acceptable failure, and it must
      // be the clean status — never a hang or a crash.
      EXPECT_TRUE(report.status().IsUnavailable())
          << report.status().ToString();
      continue;
    }
    ++survived;
    ASSERT_EQ(report->results.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      SCOPED_TRACE(i);
      ExpectSameResult(expected[i], report->results[i]);
    }
  }
  // Three kills against eight IPs: most storms must be survivable.
  EXPECT_GE(survived, 4);
}

TEST_F(StressTest, EngineAbandonmentStormMatchesReference) {
  // The twenty-query batch again, but with workers abandoning mid-batch
  // and poison packets in the task queue: results must be unchanged.
  std::vector<PlanNodePtr> plans;
  std::vector<const PlanNode*> raw;
  for (int i = 0; i < 20; ++i) {
    const int32_t cut = 50 + i * 45;
    if (i % 3 == 0) {
      plans.push_back(
          MakeJoin(MakeRestrict(MakeScan("a"), Lt(Col("k1000"), Lit(cut))),
                   MakeScan("b"), Eq(Col("k100"), RightCol("k100"))));
    } else {
      plans.push_back(MakeRestrict(MakeScan(i % 2 ? "a" : "b"),
                                   Ge(Col("k1000"), Lit(cut))));
    }
    raw.push_back(plans.back().get());
  }
  ExecOptions opts;
  opts.num_processors = 8;
  opts.page_bytes = 600;
  opts.fault_plan.abandon_workers = 3;
  opts.fault_plan.abandon_after_tasks = 2;
  opts.fault_plan.poison_packets = 11;
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<QueryResult> results,
                       RunBatch(storage_.get(), raw, opts, &stats));
  ReferenceExecutor reference(storage_.get());
  for (size_t i = 0; i < plans.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_OK_AND_ASSIGN(QueryResult ex, reference.Execute(*plans[i]));
    ExpectSameResult(ex, results[i]);
  }
  EXPECT_EQ(stats.workers_abandoned, 3u);
  EXPECT_EQ(stats.poison_dropped, 11u);
}

}  // namespace
}  // namespace dfdb

/// \file property_test.cc
/// \brief Randomized property testing: for randomly generated query trees,
/// the multithreaded data-flow engine (every granularity) and the machine
/// simulator must produce exactly the reference executor's result bag.

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/run.h"
#include "engine/reference.h"
#include "machine/simulator.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;

/// Generates a random read-only query tree over the benchmark schema.
///
/// Depth-bounded; mixes restrict/project/join/union/difference/aggregate
/// with random predicates whose selectivities avoid degenerate explosions.
class PlanFuzzer {
 public:
  PlanFuzzer(Random* rng, std::vector<std::string> relations)
      : rng_(rng), relations_(std::move(relations)) {}

  PlanNodePtr Generate(int max_depth) { return Gen(max_depth, true); }

 private:
  ExprPtr RandomPredicate() {
    // Compare a random k-column against a random literal in range.
    static const struct {
      const char* name;
      int bound;
    } kCols[] = {{"k10", 10}, {"k25", 25}, {"k100", 100}, {"k1000", 1000}};
    const auto& col = kCols[rng_->Uniform(4)];
    const int32_t lit =
        static_cast<int32_t>(rng_->Uniform(static_cast<uint64_t>(col.bound)));
    switch (rng_->Uniform(4)) {
      case 0:
        return Lt(Col(col.name), Lit(lit));
      case 1:
        return Ge(Col(col.name), Lit(lit));
      case 2:
        return Eq(Col("k10"), Lit(static_cast<int32_t>(rng_->Uniform(10))));
      default:
        return And(Lt(Col(col.name), Lit(lit)),
                   Eq(Col("k2"), Lit(static_cast<int32_t>(rng_->Uniform(2)))));
    }
  }

  PlanNodePtr Leaf() {
    PlanNodePtr scan =
        MakeScan(relations_[rng_->Uniform(relations_.size())]);
    // Usually restrict the scan to keep joins small.
    if (rng_->Bernoulli(0.8)) {
      return MakeRestrict(std::move(scan), RandomPredicate());
    }
    return scan;
  }

  PlanNodePtr Gen(int depth, bool is_root) {
    if (depth <= 0) return Leaf();
    switch (rng_->Uniform(is_root ? 7 : 5)) {
      case 0:
        return Leaf();
      case 1:
        return MakeRestrict(Gen(depth - 1, false), RandomPredicate());
      case 2: {
        // Equi-join on a group key between two shallower trees. Both sides
        // keep the full benchmark schema through restrict-only paths, so
        // project/aggregate are only generated at the root.
        const char* key = rng_->Bernoulli(0.5) ? "k100" : "k1000";
        return MakeJoin(Leaf(), Leaf(), Eq(Col(key), RightCol(key)));
      }
      case 3:
        return MakeUnion(Leaf(), Leaf(), /*bag=*/rng_->Bernoulli(0.5));
      case 4:
        return MakeDifference(Leaf(), Leaf());
      case 5:
        return MakeProject(Gen(depth - 1, false),
                           {"k10", "k100"}, /*dedup=*/rng_->Bernoulli(0.5));
      default: {
        std::vector<AggregateSpec> specs;
        specs.push_back({AggregateSpec::Func::kCount, "", "cnt"});
        specs.push_back({AggregateSpec::Func::kSum, "k1000", "sum"});
        specs.push_back({AggregateSpec::Func::kMax, "val", "mx"});
        return MakeAggregate(Gen(depth - 1, false), {"k10"}, std::move(specs));
      }
    }
  }

  Random* rng_;
  std::vector<std::string> relations_;
};

class PropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(600);
    for (const auto& [name, rows] :
         {std::pair<const char*, uint64_t>{"p1", 300},
          {"p2", 150},
          {"p3", 60}}) {
      ASSERT_OK_AND_ASSIGN(auto id,
                           GenerateRelation(storage_.get(), name, rows,
                                            GetParam() * 31 + 7));
      (void)id;
    }
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_P(PropertyTest, EnginesAgreeWithReferenceOnRandomPlans) {
  Random rng(GetParam());
  PlanFuzzer fuzzer(&rng, {"p1", "p2", "p3"});
  ReferenceExecutor reference(storage_.get());
  for (int round = 0; round < 6; ++round) {
    PlanNodePtr plan = fuzzer.Generate(2);
    SCOPED_TRACE("plan:\n" + plan->ToString());
    ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*plan));

    for (Granularity g :
         {Granularity::kPage, Granularity::kRelation, Granularity::kTuple}) {
      ExecOptions opts;
      opts.granularity = g;
      opts.num_processors = 1 + static_cast<int>(rng.Uniform(6));
      opts.page_bytes = 600;
      opts.local_memory_pages = 8;
      opts.disk_cache_pages = 32;
      ASSERT_OK_AND_ASSIGN(QueryResult actual,
                           RunQuery(storage_.get(), *plan, opts));
      ExpectSameResult(expected, actual);
    }

    MachineOptions mopts;
    mopts.granularity = Granularity::kPage;
    mopts.config.num_instruction_processors =
        1 + static_cast<int>(rng.Uniform(8));
    mopts.config.page_bytes = 600;
    MachineSimulator sim(storage_.get(), mopts);
    ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run({plan.get()}));
    ExpectSameResult(expected, report.results[0]);
  }
}

TEST_P(PropertyTest, BatchEqualsSequentialExecution) {
  // Executing N read-only queries as one batch must give the same results
  // as executing them one by one.
  Random rng(GetParam() + 1000);
  PlanFuzzer fuzzer(&rng, {"p1", "p2", "p3"});
  std::vector<PlanNodePtr> plans;
  std::vector<const PlanNode*> raw;
  for (int i = 0; i < 4; ++i) {
    plans.push_back(fuzzer.Generate(2));
    raw.push_back(plans.back().get());
  }
  ExecOptions opts;
  opts.granularity = Granularity::kPage;
  opts.num_processors = 4;
  opts.page_bytes = 600;
  ASSERT_OK_AND_ASSIGN(std::vector<QueryResult> batch,
                       RunBatch(storage_.get(), raw, opts));
  for (size_t i = 0; i < plans.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i) + ":\n" + plans[i]->ToString());
    ASSERT_OK_AND_ASSIGN(QueryResult solo,
                         RunQuery(storage_.get(), *plans[i], opts));
    ExpectSameResult(solo, batch[i]);
  }
}

TEST_P(PropertyTest, SimulatorGranularitiesAgree) {
  // All three machine granularities compute identical results (timing
  // differs; data must not).
  Random rng(GetParam() + 2000);
  PlanFuzzer fuzzer(&rng, {"p2", "p3"});
  PlanNodePtr plan = fuzzer.Generate(1);
  SCOPED_TRACE("plan:\n" + plan->ToString());
  std::vector<QueryResult> results;
  for (Granularity g :
       {Granularity::kPage, Granularity::kRelation, Granularity::kTuple}) {
    MachineOptions opts;
    opts.granularity = g;
    opts.config.num_instruction_processors = 4;
    opts.config.page_bytes = 600;
    MachineSimulator sim(storage_.get(), opts);
    ASSERT_OK_AND_ASSIGN(MachineReport report, sim.Run({plan.get()}));
    results.push_back(std::move(report.results[0]));
  }
  ExpectSameResult(results[0], results[1]);
  ExpectSameResult(results[0], results[2]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace dfdb

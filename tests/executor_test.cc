/// \file executor_test.cc
/// \brief End-to-end tests of the data-flow engine against the serial
/// reference executor, across granularities and processor counts.

#include <gtest/gtest.h>

#include "engine/run.h"

#include "engine/reference.h"
#include "tests/test_util.h"
#include "workload/paper_benchmark.h"

namespace dfdb {
namespace {

using ::dfdb::testing::ExpectSameResult;

struct EngineParam {
  Granularity granularity;
  int processors;
};

std::string ParamName(const ::testing::TestParamInfo<EngineParam>& info) {
  return std::string(GranularityToString(info.param.granularity)) + "_p" +
         std::to_string(info.param.processors);
}

class ExecutorCorrectnessTest : public ::testing::TestWithParam<EngineParam> {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageEngine>(/*default_page_bytes=*/1000);
    ASSERT_OK_AND_ASSIGN(auto r1, GenerateRelation(storage_.get(), "alpha",
                                                   600, /*seed=*/7));
    ASSERT_OK_AND_ASSIGN(auto r2, GenerateRelation(storage_.get(), "beta",
                                                   250, /*seed=*/8));
    ASSERT_OK_AND_ASSIGN(auto r3, GenerateRelation(storage_.get(), "gamma",
                                                   120, /*seed=*/9));
    (void)r1;
    (void)r2;
    (void)r3;
  }

  ExecOptions Options() const {
    ExecOptions opts;
    opts.granularity = GetParam().granularity;
    opts.num_processors = GetParam().processors;
    opts.page_bytes = 1000;
    opts.local_memory_pages = 16;
    opts.disk_cache_pages = 64;
    return opts;
  }

  /// Runs \p plan on both engines and compares results.
  void CheckAgainstReference(const PlanNodePtr& plan) {
    ReferenceExecutor reference(storage_.get());
    ASSERT_OK_AND_ASSIGN(QueryResult expected, reference.Execute(*plan));
    ASSERT_OK_AND_ASSIGN(QueryResult actual,
                         RunQuery(storage_.get(), *plan, Options()));
    ExpectSameResult(expected, actual);
  }

  std::unique_ptr<StorageEngine> storage_;
};

TEST_P(ExecutorCorrectnessTest, RestrictOnly) {
  CheckAgainstReference(
      MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(200))));
}

TEST_P(ExecutorCorrectnessTest, RestrictConjunction) {
  CheckAgainstReference(MakeRestrict(
      MakeScan("alpha"),
      And(Lt(Col("k1000"), Lit(700)), Eq(Col("k2"), Lit(1)))));
}

TEST_P(ExecutorCorrectnessTest, RestrictNothingMatches) {
  CheckAgainstReference(
      MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(0))));
}

TEST_P(ExecutorCorrectnessTest, RestrictEverythingMatches) {
  CheckAgainstReference(
      MakeRestrict(MakeScan("beta"), Ge(Col("k1000"), Lit(0))));
}

TEST_P(ExecutorCorrectnessTest, ProjectNoDedup) {
  CheckAgainstReference(MakeProject(MakeScan("alpha"), {"k10", "k100"}));
}

TEST_P(ExecutorCorrectnessTest, ProjectWithDedup) {
  CheckAgainstReference(
      MakeProject(MakeScan("alpha"), {"k10", "k2"}, /*dedup=*/true));
}

TEST_P(ExecutorCorrectnessTest, SimpleEquiJoin) {
  CheckAgainstReference(MakeJoin(MakeScan("beta"), MakeScan("gamma"),
                                 Eq(Col("k100"), RightCol("k100"))));
}

TEST_P(ExecutorCorrectnessTest, JoinWithRestrictedInputs) {
  CheckAgainstReference(
      MakeJoin(MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(300))),
               MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(400))),
               Eq(Col("k100"), RightCol("k100"))));
}

TEST_P(ExecutorCorrectnessTest, NonEquiJoin) {
  CheckAgainstReference(
      MakeJoin(MakeRestrict(MakeScan("gamma"), Lt(Col("k1000"), Lit(200))),
               MakeRestrict(MakeScan("gamma"), Lt(Col("k1000"), Lit(150))),
               Lt(Col("k1000"), RightCol("k1000"))));
}

TEST_P(ExecutorCorrectnessTest, TwoJoinChain) {
  CheckAgainstReference(MakeJoin(
      MakeJoin(MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(150))),
               MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(300))),
               Eq(Col("k100"), RightCol("k100"))),
      MakeRestrict(MakeScan("gamma"), Lt(Col("k1000"), Lit(500))),
      Eq(Col("k1000"), RightCol("k1000"))));
}

TEST_P(ExecutorCorrectnessTest, UnionSet) {
  CheckAgainstReference(MakeUnion(
      MakeProject(MakeScan("beta"), {"k100"}, true),
      MakeProject(MakeScan("gamma"), {"k100"}, true)));
}

TEST_P(ExecutorCorrectnessTest, UnionBag) {
  CheckAgainstReference(
      MakeUnion(MakeRestrict(MakeScan("beta"), Lt(Col("k1000"), Lit(300))),
                MakeRestrict(MakeScan("beta"), Ge(Col("k1000"), Lit(700))),
                /*bag_semantics=*/true));
}

TEST_P(ExecutorCorrectnessTest, Difference) {
  CheckAgainstReference(MakeDifference(
      MakeProject(MakeScan("beta"), {"k100"}, true),
      MakeProject(MakeRestrict(MakeScan("beta"), Lt(Col("k100"), Lit(50))),
                  {"k100"}, true)));
}

TEST_P(ExecutorCorrectnessTest, AggregateGrouped) {
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "cnt"});
  specs.push_back({AggregateSpec::Func::kSum, "k1000", "total"});
  specs.push_back({AggregateSpec::Func::kMin, "val", "lo"});
  specs.push_back({AggregateSpec::Func::kMax, "val", "hi"});
  CheckAgainstReference(
      MakeAggregate(MakeScan("alpha"), {"k10"}, std::move(specs)));
}

TEST_P(ExecutorCorrectnessTest, AggregateGlobal) {
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "cnt"});
  specs.push_back({AggregateSpec::Func::kAvg, "val", "avg_val"});
  CheckAgainstReference(MakeAggregate(MakeScan("beta"), {}, std::move(specs)));
}

TEST_P(ExecutorCorrectnessTest, AppendThenScan) {
  // Append restricted alpha rows into a fresh relation, then verify the
  // contents via a follow-up scan on both engines.
  ASSERT_OK_AND_ASSIGN(RelationId sink_rel,
                       storage_->CreateRelation("sink", BenchmarkSchema()));
  (void)sink_rel;
  auto append = MakeAppend(
      MakeRestrict(MakeScan("alpha"), Lt(Col("k1000"), Lit(100))), "sink");
  ASSERT_OK_AND_ASSIGN(QueryResult append_result,
                       RunQuery(storage_.get(), *append, Options()));
  EXPECT_EQ(append_result.num_tuples(), 0u);

  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(
      QueryResult expected,
      reference.Execute(*MakeRestrict(MakeScan("alpha"),
                                      Lt(Col("k1000"), Lit(100)))));
  ASSERT_OK_AND_ASSIGN(QueryResult actual,
                       reference.Execute(*MakeScan("sink")));
  ExpectSameResult(expected, actual);
}

TEST_P(ExecutorCorrectnessTest, DeleteRemovesMatching) {
  ASSERT_OK_AND_ASSIGN(RelationId victim_rel,
                       GenerateRelation(storage_.get(), "victim", 200, 11));
  (void)victim_rel;
  auto del = MakeDelete("victim", Lt(Col("k1000"), Lit(500)));
  ASSERT_OK_AND_ASSIGN(QueryResult del_result,
                       RunQuery(storage_.get(), *del, Options()));
  EXPECT_EQ(del_result.num_tuples(), 0u);

  ReferenceExecutor reference(storage_.get());
  ASSERT_OK_AND_ASSIGN(QueryResult remaining,
                       reference.Execute(*MakeScan("victim")));
  Status check = remaining.ForEachTuple([](const TupleView& t) -> Status {
    auto v = t.GetValue(7);  // k1000.
    if (!v.ok()) return v.status();
    if (v->as_int32() < 500) {
      return Status::Internal("tuple should have been deleted");
    }
    return Status::OK();
  });
  EXPECT_OK(check);
}

TEST_P(ExecutorCorrectnessTest, ErrorPropagatesFromBadRelation) {
  auto plan = MakeScan("does_not_exist");
  auto result = RunQuery(storage_.get(), *plan, Options());
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound()) << result.status();
}

INSTANTIATE_TEST_SUITE_P(
    Granularities, ExecutorCorrectnessTest,
    ::testing::Values(EngineParam{Granularity::kPage, 1},
                      EngineParam{Granularity::kPage, 4},
                      EngineParam{Granularity::kPage, 8},
                      EngineParam{Granularity::kRelation, 1},
                      EngineParam{Granularity::kRelation, 4},
                      EngineParam{Granularity::kTuple, 1},
                      EngineParam{Granularity::kTuple, 4}),
    ParamName);

}  // namespace
}  // namespace dfdb

/// \file schema_test.cc
/// \brief Tests for typed values, schemas, and the catalog.

#include "catalog/schema.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "tests/test_util.h"

namespace dfdb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Int32(5).type(), ColumnType::kInt32);
  EXPECT_EQ(Value::Int64(5).type(), ColumnType::kInt64);
  EXPECT_EQ(Value::Double(1.5).type(), ColumnType::kDouble);
  EXPECT_EQ(Value::Char("x").type(), ColumnType::kChar);
  EXPECT_EQ(Value::Int32(-3).as_int32(), -3);
  EXPECT_EQ(Value::Char("abc").as_char(), "abc");
}

TEST(ValueTest, CompareAcrossNumericWidths) {
  auto c = Value::Int32(5).Compare(Value::Int64(5));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 0);
  c = Value::Int32(5).Compare(Value::Double(5.5));
  ASSERT_TRUE(c.ok());
  EXPECT_LT(*c, 0);
  c = Value::Double(7.0).Compare(Value::Int32(6));
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, 0);
}

TEST(ValueTest, CompareCharWithNumericFails) {
  EXPECT_FALSE(Value::Char("5").Compare(Value::Int32(5)).ok());
  EXPECT_FALSE(Value::Int32(5).AsNumeric().status().ok() == false);
  EXPECT_FALSE(Value::Char("x").AsNumeric().ok());
}

TEST(ValueTest, EqualNumbersHashEqually) {
  EXPECT_EQ(Value::Int32(41).Hash(), Value::Int64(41).Hash());
  EXPECT_EQ(Value::Int64(41).Hash(), Value::Double(41.0).Hash());
  EXPECT_NE(Value::Int32(41).Hash(), Value::Int32(42).Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int32(7).ToString(), "7");
  EXPECT_EQ(Value::Char("hi").ToString(), "hi");
  EXPECT_EQ(Value::Double(0.5).ToString(), "0.5");
}

TEST(SchemaTest, LayoutOffsets) {
  Schema s = Schema::CreateOrDie(
      {Column::Int32("a"), Column::Char("b", 10), Column::Double("c")});
  EXPECT_EQ(s.num_columns(), 3);
  EXPECT_EQ(s.offset(0), 0);
  EXPECT_EQ(s.offset(1), 4);
  EXPECT_EQ(s.offset(2), 14);
  EXPECT_EQ(s.tuple_width(), 22);
}

TEST(SchemaTest, ValidationErrors) {
  EXPECT_FALSE(Schema::Create({}).ok());
  EXPECT_FALSE(Schema::Create({Column::Int32("")}).ok());
  EXPECT_FALSE(
      Schema::Create({Column::Int32("a"), Column::Int32("a")}).ok());
  EXPECT_FALSE(Schema::Create({Column::Char("c", 0)}).ok());
  Column bad = Column::Int32("x");
  bad.width = 7;
  EXPECT_FALSE(Schema::Create({bad}).ok());
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema s = Schema::CreateOrDie({Column::Int32("a"), Column::Int32("b")});
  ASSERT_OK_AND_ASSIGN(int idx, s.ColumnIndex("b"));
  EXPECT_EQ(idx, 1);
  EXPECT_TRUE(s.ColumnIndex("zz").status().IsNotFound());
}

TEST(SchemaTest, ProjectSubset) {
  Schema s = Schema::CreateOrDie(
      {Column::Int32("a"), Column::Char("b", 8), Column::Double("c")});
  ASSERT_OK_AND_ASSIGN(Schema p, s.Project({2, 0}));
  EXPECT_EQ(p.num_columns(), 2);
  EXPECT_EQ(p.column(0).name, "c");
  EXPECT_EQ(p.column(1).name, "a");
  EXPECT_EQ(p.tuple_width(), 12);
  // Duplicates get disambiguated.
  ASSERT_OK_AND_ASSIGN(Schema dup, s.Project({0, 0}));
  EXPECT_NE(dup.column(0).name, dup.column(1).name);
  // Out of range rejected.
  EXPECT_FALSE(s.Project({5}).ok());
}

TEST(SchemaTest, ConcatRenamesCollisions) {
  Schema a = Schema::CreateOrDie({Column::Int32("x"), Column::Int32("y")});
  Schema b = Schema::CreateOrDie({Column::Int32("x"), Column::Int32("z")});
  Schema j = a.Concat(b);
  EXPECT_EQ(j.num_columns(), 4);
  EXPECT_EQ(j.column(2).name, "x_r");
  EXPECT_EQ(j.column(3).name, "z");
  EXPECT_EQ(j.tuple_width(), 16);
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  Schema s = Schema::CreateOrDie({Column::Int32("a")});
  ASSERT_OK_AND_ASSIGN(RelationId id, catalog.CreateRelation("t", s));
  EXPECT_NE(id, kInvalidRelationId);
  EXPECT_TRUE(catalog.Exists("t"));
  ASSERT_OK_AND_ASSIGN(RelationMeta meta, catalog.GetRelation("t"));
  EXPECT_EQ(meta.id, id);
  EXPECT_EQ(meta.schema, s);
  ASSERT_OK_AND_ASSIGN(RelationMeta by_id, catalog.GetRelation(id));
  EXPECT_EQ(by_id.name, "t");
  ASSERT_OK(catalog.DropRelation("t"));
  EXPECT_FALSE(catalog.Exists("t"));
  EXPECT_TRUE(catalog.GetRelation("t").status().IsNotFound());
  EXPECT_TRUE(catalog.GetRelation(id).status().IsNotFound());
}

TEST(CatalogTest, DuplicateNamesRejected) {
  Catalog catalog;
  Schema s = Schema::CreateOrDie({Column::Int32("a")});
  ASSERT_OK_AND_ASSIGN(RelationId id, catalog.CreateRelation("t", s));
  (void)id;
  EXPECT_TRUE(catalog.CreateRelation("t", s).status().IsAlreadyExists());
  EXPECT_TRUE(catalog.CreateRelation("", s).status().IsInvalidArgument());
}

TEST(CatalogTest, StatsAndTotals) {
  Catalog catalog;
  Schema s = Schema::CreateOrDie({Column::Char("pad", 100)});
  ASSERT_OK_AND_ASSIGN(RelationId a, catalog.CreateRelation("a", s));
  ASSERT_OK_AND_ASSIGN(RelationId b, catalog.CreateRelation("b", s));
  ASSERT_OK(catalog.UpdateStats(a, 1000, 10));
  ASSERT_OK(catalog.UpdateStats(b, 500, 5));
  EXPECT_EQ(catalog.TotalBytes(), 150000);
  ASSERT_OK_AND_ASSIGN(RelationMeta meta, catalog.GetRelation("a"));
  EXPECT_EQ(meta.tuple_count, 1000u);
  EXPECT_EQ(meta.page_count, 10u);
  EXPECT_TRUE(catalog.UpdateStats(999, 1, 1).IsNotFound());
  EXPECT_EQ(catalog.ListRelations(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace dfdb

/// \file analyzer_test.cc
/// \brief Tests for plan construction and semantic analysis.

#include "ra/analyzer.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dfdb {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema = Schema::CreateOrDie(
        {Column::Int32("k"), Column::Int32("g"), Column::Char("s", 8)});
    ASSERT_OK_AND_ASSIGN(auto r1, catalog_.CreateRelation("r", schema));
    ASSERT_OK_AND_ASSIGN(auto r2, catalog_.CreateRelation("t", schema));
    Schema other =
        Schema::CreateOrDie({Column::Int64("big"), Column::Double("x")});
    ASSERT_OK_AND_ASSIGN(auto r3, catalog_.CreateRelation("other", other));
    (void)r1;
    (void)r2;
    (void)r3;
  }

  StatusOr<QueryAnalysis> Resolve(PlanNode* root) {
    Analyzer analyzer(&catalog_);
    return analyzer.Resolve(root);
  }

  Catalog catalog_;
};

TEST_F(AnalyzerTest, ScanResolvesToCatalogSchema) {
  auto plan = MakeScan("r");
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a, Resolve(plan.get()));
  EXPECT_TRUE(plan->resolved);
  EXPECT_EQ(plan->output_schema.num_columns(), 3);
  EXPECT_EQ(a.num_nodes, 1);
  EXPECT_EQ(a.read_set, std::set<std::string>{"r"});
  EXPECT_TRUE(a.write_set.empty());
}

TEST_F(AnalyzerTest, UnknownRelationFails) {
  auto plan = MakeScan("missing");
  EXPECT_TRUE(Resolve(plan.get()).status().IsNotFound());
}

TEST_F(AnalyzerTest, RestrictBindsAndPropagatesSchema) {
  auto plan = MakeRestrict(MakeScan("r"), Lt(Col("k"), Lit(5)));
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a, Resolve(plan.get()));
  EXPECT_EQ(a.num_restricts, 1);
  EXPECT_EQ(plan->output_schema.num_columns(), 3);
  // Post-order ids: scan 0, restrict 1.
  EXPECT_EQ(plan->id, 1);
  EXPECT_EQ(plan->child(0).id, 0);
}

TEST_F(AnalyzerTest, RestrictRejectsRightRefsAndMissingPredicate) {
  auto plan = MakeRestrict(MakeScan("r"), Eq(Col("k"), RightCol("k")));
  EXPECT_TRUE(Resolve(plan.get()).status().IsInvalidArgument());
  auto plan2 = MakeRestrict(MakeScan("r"), nullptr);
  EXPECT_TRUE(Resolve(plan2.get()).status().IsInvalidArgument());
}

TEST_F(AnalyzerTest, ProjectComputesSubSchema) {
  auto plan = MakeProject(MakeScan("r"), {"s", "k"});
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a, Resolve(plan.get()));
  EXPECT_EQ(a.num_projects, 1);
  EXPECT_EQ(plan->output_schema.num_columns(), 2);
  EXPECT_EQ(plan->output_schema.column(0).name, "s");
  EXPECT_EQ(plan->output_schema.tuple_width(), 12);
  auto bad = MakeProject(MakeScan("r"), {"nope"});
  EXPECT_TRUE(Resolve(bad.get()).status().IsNotFound());
  auto empty = MakeProject(MakeScan("r"), {});
  EXPECT_TRUE(Resolve(empty.get()).status().IsInvalidArgument());
}

TEST_F(AnalyzerTest, JoinConcatenatesSchemas) {
  auto plan =
      MakeJoin(MakeScan("r"), MakeScan("t"), Eq(Col("k"), RightCol("k")));
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a, Resolve(plan.get()));
  EXPECT_EQ(a.num_joins, 1);
  EXPECT_EQ(plan->output_schema.num_columns(), 6);
  EXPECT_EQ(plan->output_schema.column(3).name, "k_r");
  EXPECT_EQ(a.read_set, (std::set<std::string>{"r", "t"}));
  EXPECT_EQ(a.max_depth, 2);
}

TEST_F(AnalyzerTest, UnionRequiresCompatibility) {
  auto good = MakeUnion(MakeScan("r"), MakeScan("t"));
  EXPECT_TRUE(Resolve(good.get()).ok());
  auto bad = MakeUnion(MakeScan("r"), MakeScan("other"));
  EXPECT_TRUE(Resolve(bad.get()).status().IsInvalidArgument());
  auto diff_bad = MakeDifference(MakeScan("r"), MakeScan("other"));
  EXPECT_TRUE(Resolve(diff_bad.get()).status().IsInvalidArgument());
}

TEST_F(AnalyzerTest, AggregateSchemaTyping) {
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "cnt"});
  specs.push_back({AggregateSpec::Func::kSum, "k", "sum_k"});
  specs.push_back({AggregateSpec::Func::kMin, "s", "min_s"});
  auto plan = MakeAggregate(MakeScan("r"), {"g"}, specs);
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a, Resolve(plan.get()));
  (void)a;
  const Schema& out = plan->output_schema;
  EXPECT_EQ(out.num_columns(), 4);
  EXPECT_EQ(out.column(0).name, "g");
  EXPECT_EQ(out.column(1).type, ColumnType::kInt64);  // COUNT.
  EXPECT_EQ(out.column(2).type, ColumnType::kInt64);  // SUM of int.
  EXPECT_EQ(out.column(3).type, ColumnType::kChar);   // MIN of char.
  EXPECT_EQ(out.column(3).width, 8);
}

TEST_F(AnalyzerTest, AggregateRejectsSumOfChar) {
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kSum, "s", "bad"});
  auto plan = MakeAggregate(MakeScan("r"), {}, specs);
  EXPECT_TRUE(Resolve(plan.get()).status().IsInvalidArgument());
}

TEST_F(AnalyzerTest, AppendChecksCompatibilityAndWriteSet) {
  auto plan = MakeAppend(MakeScan("r"), "t");
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a, Resolve(plan.get()));
  EXPECT_EQ(a.write_set, std::set<std::string>{"t"});
  EXPECT_EQ(a.read_set, std::set<std::string>{"r"});
  auto bad = MakeAppend(MakeScan("other"), "t");
  EXPECT_TRUE(Resolve(bad.get()).status().IsInvalidArgument());
}

TEST_F(AnalyzerTest, DeleteBindsAgainstTarget) {
  auto plan = MakeDelete("t", Lt(Col("k"), Lit(3)));
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a, Resolve(plan.get()));
  EXPECT_EQ(a.write_set, std::set<std::string>{"t"});
  EXPECT_EQ(a.read_set, std::set<std::string>{"t"});
  auto bad = MakeDelete("t", Lt(Col("missing"), Lit(3)));
  EXPECT_TRUE(Resolve(bad.get()).status().IsNotFound());
}

TEST_F(AnalyzerTest, DeepTreeCountsAndDepth) {
  auto plan = MakeJoin(
      MakeJoin(MakeRestrict(MakeScan("r"), Lt(Col("k"), Lit(1))),
               MakeRestrict(MakeScan("t"), Lt(Col("k"), Lit(2))),
               Eq(Col("k"), RightCol("k"))),
      MakeRestrict(MakeScan("r"), Lt(Col("g"), Lit(3))),
      Eq(Col("g"), RightCol("g")));
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a, Resolve(plan.get()));
  EXPECT_EQ(a.num_nodes, 8);
  EXPECT_EQ(a.num_joins, 2);
  EXPECT_EQ(a.num_restricts, 3);
  EXPECT_EQ(a.max_depth, 4);
  EXPECT_EQ(plan->TreeSize(), 8);
  EXPECT_EQ(plan->id, 7);  // Root gets the last post-order id.
}

TEST_F(AnalyzerTest, CloneIsDeepAndReanalyzable) {
  auto plan = MakeRestrict(MakeScan("r"), Lt(Col("k"), Lit(5)));
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a1, Resolve(plan.get()));
  (void)a1;
  auto clone = plan->Clone();
  EXPECT_FALSE(clone->resolved);
  EXPECT_EQ(clone->TreeSize(), 2);
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a2, Resolve(clone.get()));
  (void)a2;
  EXPECT_EQ(clone->output_schema, plan->output_schema);
}

TEST_F(AnalyzerTest, ResolveIsIdempotent) {
  auto plan =
      MakeJoin(MakeScan("r"), MakeScan("t"), Eq(Col("k"), RightCol("k")));
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a1, Resolve(plan.get()));
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a2, Resolve(plan.get()));
  EXPECT_EQ(a1.num_nodes, a2.num_nodes);
  EXPECT_EQ(plan->output_schema.num_columns(), 6);
}

TEST_F(AnalyzerTest, NullRootRejected) {
  Analyzer analyzer(&catalog_);
  EXPECT_TRUE(analyzer.Resolve(nullptr).status().IsInvalidArgument());
}

TEST_F(AnalyzerTest, PlanToStringShowsStructure) {
  auto plan = MakeRestrict(MakeScan("r"), Lt(Col("k"), Lit(5)));
  ASSERT_OK_AND_ASSIGN(QueryAnalysis a, Resolve(plan.get()));
  (void)a;
  const std::string s = plan->ToString();
  EXPECT_NE(s.find("Restrict"), std::string::npos);
  EXPECT_NE(s.find("Scan(r)"), std::string::npos);
  EXPECT_NE(s.find("(k < 5)"), std::string::npos);
}

}  // namespace
}  // namespace dfdb

# Builds one test target in a dedicated -DDFDB_SANITIZE=thread tree and runs
# it. Driven by the `*_tsan` ctest entries (CONFIGURATIONS tsan) so the
# default test run never pays for the extra build.
if(NOT DEFINED SOURCE_DIR OR NOT DEFINED BINARY_DIR OR NOT DEFINED TEST_TARGET)
  message(FATAL_ERROR
          "run_tsan_test.cmake needs SOURCE_DIR, BINARY_DIR and TEST_TARGET")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DDFDB_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE configure_result)
if(NOT configure_result EQUAL 0)
  message(FATAL_ERROR "tsan configure failed")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR} --target ${TEST_TARGET} -j
  RESULT_VARIABLE build_result)
if(NOT build_result EQUAL 0)
  message(FATAL_ERROR "tsan build failed")
endif()

execute_process(
  COMMAND ${BINARY_DIR}/tests/${TEST_TARGET}
  RESULT_VARIABLE test_result)
if(NOT test_result EQUAL 0)
  message(FATAL_ERROR "${TEST_TARGET} under tsan failed")
endif()

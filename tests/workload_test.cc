/// \file workload_test.cc
/// \brief The generated database and benchmark must match the paper's
/// published parameters (Section 3.2).

#include "workload/paper_benchmark.h"

#include <gtest/gtest.h>

#include "engine/reference.h"
#include "ra/analyzer.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace dfdb {
namespace {

TEST(GeneratorTest, SchemaIs100Bytes) {
  // Section 3.3 assumes 100-byte tuples.
  EXPECT_EQ(BenchmarkSchema().tuple_width(), 100);
}

TEST(GeneratorTest, DeterministicForSeed) {
  StorageEngine s1(1000), s2(1000), s3(1000);
  ASSERT_OK_AND_ASSIGN(auto a, GenerateRelation(&s1, "r", 100, 42));
  ASSERT_OK_AND_ASSIGN(auto b, GenerateRelation(&s2, "r", 100, 42));
  ASSERT_OK_AND_ASSIGN(auto c, GenerateRelation(&s3, "r", 100, 43));
  (void)a;
  (void)b;
  (void)c;
  auto dump = [](StorageEngine& s) {
    auto file = s.GetHeapFile("r");
    EXPECT_TRUE(file.ok());
    EXPECT_OK((*file)->Flush());
    std::string out;
    for (PageId id : (*file)->PageIds()) {
      auto p = s.page_store().Get(id);
      EXPECT_TRUE(p.ok());
      out += (*p)->Serialize();
    }
    return out;
  };
  EXPECT_EQ(dump(s1), dump(s2));
  EXPECT_NE(dump(s1), dump(s3));
}

TEST(GeneratorTest, IdsAreDenseUnique) {
  StorageEngine storage(1000);
  ASSERT_OK_AND_ASSIGN(auto r, GenerateRelation(&storage, "r", 500, 1));
  (void)r;
  ASSERT_OK_AND_ASSIGN(HeapFile * file, storage.GetHeapFile("r"));
  ASSERT_OK(file->Flush());
  Schema schema = BenchmarkSchema();
  std::vector<bool> seen(500, false);
  for (PageId id : file->PageIds()) {
    ASSERT_OK_AND_ASSIGN(PagePtr page, storage.page_store().Get(id));
    for (int i = 0; i < page->num_tuples(); ++i) {
      TupleView view(&schema, page->tuple(i));
      ASSERT_OK_AND_ASSIGN(Value v, view.GetValue(0));
      ASSERT_GE(v.as_int32(), 0);
      ASSERT_LT(v.as_int32(), 500);
      EXPECT_FALSE(seen[static_cast<size_t>(v.as_int32())]);
      seen[static_cast<size_t>(v.as_int32())] = true;
    }
  }
}

TEST(GeneratorTest, GroupColumnsInRange) {
  StorageEngine storage(1000);
  ASSERT_OK_AND_ASSIGN(auto r, GenerateRelation(&storage, "r", 1000, 5));
  (void)r;
  ASSERT_OK_AND_ASSIGN(HeapFile * file, storage.GetHeapFile("r"));
  ASSERT_OK(file->Flush());
  Schema schema = BenchmarkSchema();
  const int bounds[] = {2, 5, 10, 25, 100, 1000};
  for (PageId id : file->PageIds()) {
    ASSERT_OK_AND_ASSIGN(PagePtr page, storage.page_store().Get(id));
    for (int i = 0; i < page->num_tuples(); ++i) {
      TupleView view(&schema, page->tuple(i));
      for (int c = 0; c < 6; ++c) {
        ASSERT_OK_AND_ASSIGN(Value v, view.GetValue(2 + c));
        ASSERT_GE(v.as_int32(), 0);
        ASSERT_LT(v.as_int32(), bounds[c]);
      }
    }
  }
}

TEST(PaperBenchmarkTest, DatabaseMatchesPaperParameters) {
  // "a relational database containing 15 relations with a combined size of
  // 5.5 megabytes"
  const auto layout = PaperDatabaseLayout(1.0);
  EXPECT_EQ(layout.size(), 15u);
  uint64_t total_tuples = 0;
  for (const auto& spec : layout) total_tuples += spec.tuples;
  const double mb = static_cast<double>(total_tuples) * 100.0 / 1e6;
  EXPECT_GT(mb, 5.2);
  EXPECT_LT(mb, 5.8);
}

TEST(PaperBenchmarkTest, BuildsAtSmallScale) {
  StorageEngine storage(1000);
  ASSERT_OK_AND_ASSIGN(int64_t bytes, BuildPaperDatabase(&storage, 0.02, 42));
  EXPECT_GT(bytes, 0);
  EXPECT_EQ(storage.catalog().ListRelations().size(), 15u);
  EXPECT_EQ(storage.catalog().TotalBytes(), bytes);
}

TEST(PaperBenchmarkTest, QueryMixMatchesPaper) {
  // "2 queries with 1 restrict operator only, 3 queries with 1 join and 2
  // restricts each, 2 queries with 2 joins and 3 restricts each, 1 query
  // with 3 joins and 4 restricts, 1 query with 4 joins and 4 restricts,
  // and 1 query with 5 joins and 6 restricts"
  StorageEngine storage(1000);
  ASSERT_OK_AND_ASSIGN(int64_t bytes, BuildPaperDatabase(&storage, 0.02, 42));
  (void)bytes;
  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<QueryShape> expected = PaperBenchmarkShapes();
  ASSERT_EQ(queries.size(), 10u);
  ASSERT_EQ(expected.size(), 10u);
  Analyzer analyzer(&storage.catalog());
  int total_joins = 0, total_restricts = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto clone = queries[i].root->Clone();
    ASSERT_OK_AND_ASSIGN(QueryAnalysis a, analyzer.Resolve(clone.get()));
    EXPECT_EQ(a.num_joins, expected[i].joins) << queries[i].name;
    EXPECT_EQ(a.num_restricts, expected[i].restricts) << queries[i].name;
    total_joins += a.num_joins;
    total_restricts += a.num_restricts;
  }
  EXPECT_EQ(total_joins, 19);
  EXPECT_EQ(total_restricts, 28);
}

TEST(PaperBenchmarkTest, QueriesProduceNonTrivialResults) {
  // Guards against cardinality collapse/explosion when tuning the mix: at
  // scale 0.3 every query returns something, none exceeds ~20k tuples.
  StorageEngine storage(16384);
  ASSERT_OK_AND_ASSIGN(int64_t bytes, BuildPaperDatabase(&storage, 0.3, 42));
  (void)bytes;
  // Reference executor keeps this test independent of the engines.
  ReferenceExecutor reference(&storage);
  for (const Query& q : MakePaperBenchmarkQueries()) {
    ASSERT_OK_AND_ASSIGN(QueryResult result, reference.Execute(*q.root));
    EXPECT_GT(result.num_tuples(), 0u) << q.name;
    EXPECT_LT(result.num_tuples(), 20000u) << q.name;
  }
}

}  // namespace
}  // namespace dfdb

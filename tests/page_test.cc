/// \file page_test.cc
/// \brief Tests for pages, tuple encoding, page store and page tables.

#include "storage/page.h"

#include <gtest/gtest.h>

#include "storage/page_store.h"
#include "storage/page_table.h"
#include "storage/tuple.h"
#include "tests/test_util.h"

namespace dfdb {
namespace {

Schema TwoColSchema() {
  return Schema::CreateOrDie({Column::Int32("a"), Column::Char("s", 6)});
}

std::string Encode(const Schema& schema, int32_t a, const std::string& s) {
  auto t = EncodeTuple(schema, {Value::Int32(a), Value::Char(s)});
  EXPECT_TRUE(t.ok()) << t.status();
  return *t;
}

TEST(PageTest, CreateValidation) {
  EXPECT_FALSE(Page::Create(1, 0, 100).ok());
  EXPECT_FALSE(Page::Create(1, -4, 100).ok());
  EXPECT_FALSE(Page::Create(1, 100, 50).ok());  // Cannot hold one tuple.
  ASSERT_OK_AND_ASSIGN(Page p, Page::Create(1, 10, 100));
  EXPECT_EQ(p.capacity_tuples(), 10);
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.full());
}

TEST(PageTest, AppendUntilFull) {
  Schema schema = TwoColSchema();
  ASSERT_OK_AND_ASSIGN(Page p, Page::Create(1, schema.tuple_width(), 35));
  EXPECT_EQ(p.capacity_tuples(), 3);
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(p.Append(Slice(Encode(schema, i, "abc"))));
  }
  EXPECT_TRUE(p.full());
  EXPECT_EQ(p.num_tuples(), 3);
  EXPECT_EQ(p.payload_bytes(), 30);
  EXPECT_TRUE(p.Append(Slice(Encode(schema, 4, "x"))).IsResourceExhausted());
  // Wrong-width tuples rejected.
  EXPECT_TRUE(p.Append(Slice("short")).IsInvalidArgument());
}

TEST(PageTest, AppendPartsMatchesAppend) {
  Schema schema = TwoColSchema();
  ASSERT_OK_AND_ASSIGN(Page whole, Page::Create(1, schema.tuple_width(), 35));
  ASSERT_OK_AND_ASSIGN(Page parts, Page::Create(1, schema.tuple_width(), 35));
  for (int i = 0; i < 3; ++i) {
    const std::string t = Encode(schema, i, "abc");
    ASSERT_OK(whole.Append(Slice(t)));
    const Slice split[2] = {Slice(t.data(), 4), Slice(t.data() + 4, 6)};
    ASSERT_OK(parts.AppendParts(split, 2));
  }
  ASSERT_EQ(parts.num_tuples(), whole.num_tuples());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(parts.tuple(i), whole.tuple(i));
  }
  // Wrong total width and full pages are rejected just like Append.
  const std::string t = Encode(schema, 9, "xyz");
  const Slice bad[1] = {Slice(t.data(), 4)};
  EXPECT_TRUE(parts.AppendParts(bad, 1).IsInvalidArgument());
  const Slice full[1] = {Slice(t)};
  EXPECT_TRUE(parts.AppendParts(full, 1).IsResourceExhausted());
}

TEST(PageTest, TupleRoundTrip) {
  Schema schema = TwoColSchema();
  ASSERT_OK_AND_ASSIGN(Page p, Page::Create(1, schema.tuple_width(), 100));
  ASSERT_OK(p.Append(Slice(Encode(schema, 42, "hello"))));
  TupleView view(&schema, p.tuple(0));
  ASSERT_OK(view.Validate());
  ASSERT_OK_AND_ASSIGN(Value a, view.GetValue(0));
  ASSERT_OK_AND_ASSIGN(Value s, view.GetValue(1));
  EXPECT_EQ(a.as_int32(), 42);
  EXPECT_EQ(s.as_char(), "hello");  // Padding trimmed.
  EXPECT_EQ(view.ToString(), "(42, hello)");
}

TEST(PageTest, FillFromCompressesPartials) {
  Schema schema = TwoColSchema();
  ASSERT_OK_AND_ASSIGN(Page src, Page::Create(1, schema.tuple_width(), 100));
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(src.Append(Slice(Encode(schema, i, "t"))));
  }
  ASSERT_OK_AND_ASSIGN(Page dst, Page::Create(1, schema.tuple_width(), 25));
  ASSERT_OK_AND_ASSIGN(int copied, dst.FillFrom(src, 1));
  EXPECT_EQ(copied, 2);  // Capacity 2, starting from tuple 1.
  TupleView t0(&schema, dst.tuple(0));
  ASSERT_OK_AND_ASSIGN(Value v, t0.GetValue(0));
  EXPECT_EQ(v.as_int32(), 1);
  EXPECT_TRUE(dst.FillFrom(src, 99).status().IsOutOfRange());
}

TEST(PageTest, SerializeRoundTrip) {
  Schema schema = TwoColSchema();
  ASSERT_OK_AND_ASSIGN(Page p, Page::Create(7, schema.tuple_width(), 64));
  ASSERT_OK(p.Append(Slice(Encode(schema, 1, "aa"))));
  ASSERT_OK(p.Append(Slice(Encode(schema, 2, "bb"))));
  const std::string wire = p.Serialize();
  ASSERT_OK_AND_ASSIGN(Page q, Page::Deserialize(Slice(wire)));
  EXPECT_EQ(q.relation(), 7u);
  EXPECT_EQ(q.num_tuples(), 2);
  EXPECT_EQ(q.tuple(1).ToString(), p.tuple(1).ToString());
}

TEST(PageTest, DeserializeRejectsCorruption) {
  Schema schema = TwoColSchema();
  ASSERT_OK_AND_ASSIGN(Page p, Page::Create(7, schema.tuple_width(), 64));
  ASSERT_OK(p.Append(Slice(Encode(schema, 1, "aa"))));
  std::string wire = p.Serialize();
  EXPECT_TRUE(Page::Deserialize(Slice(wire.data(), 8)).status().IsCorruption());
  std::string truncated = wire.substr(0, wire.size() - 1);
  EXPECT_TRUE(Page::Deserialize(Slice(truncated)).status().IsCorruption());
}

TEST(TupleTest, EncodeValidation) {
  Schema schema = TwoColSchema();
  // Wrong arity.
  EXPECT_TRUE(EncodeTuple(schema, {Value::Int32(1)}).status().IsInvalidArgument());
  // Wrong type.
  EXPECT_TRUE(EncodeTuple(schema, {Value::Double(1), Value::Char("x")})
                  .status()
                  .IsInvalidArgument());
  // Oversized CHAR.
  EXPECT_TRUE(EncodeTuple(schema, {Value::Int32(1), Value::Char("toolongg")})
                  .status()
                  .IsInvalidArgument());
}

TEST(TupleTest, ConcatAndProject) {
  Schema schema = TwoColSchema();
  const std::string a = Encode(schema, 1, "x");
  const std::string b = Encode(schema, 2, "y");
  const std::string joined = ConcatTuples(Slice(a), Slice(b));
  EXPECT_EQ(joined.size(), a.size() + b.size());
  Schema wide = schema.Concat(schema);
  TupleView view(&wide, Slice(joined));
  ASSERT_OK_AND_ASSIGN(Value v2, view.GetValue(2));
  EXPECT_EQ(v2.as_int32(), 2);

  const std::string projected = ProjectTuple(schema, Slice(a), {1});
  EXPECT_EQ(projected.size(), 6u);
  EXPECT_EQ(projected[0], 'x');
}

TEST(TupleTest, CompareColumnFastPaths) {
  Schema schema = TwoColSchema();
  const std::string a = Encode(schema, 5, "mm");
  const std::string b = Encode(schema, 9, "mm");
  TupleView va(&schema, Slice(a));
  TupleView vb(&schema, Slice(b));
  ASSERT_OK_AND_ASSIGN(int c_int, va.CompareColumn(0, vb, 0));
  EXPECT_LT(c_int, 0);
  ASSERT_OK_AND_ASSIGN(int c_str, va.CompareColumn(1, vb, 1));
  EXPECT_EQ(c_str, 0);
  EXPECT_TRUE(va.CompareColumn(7, vb, 0).status().IsOutOfRange());
}

TEST(PageStoreTest, PutGetFree) {
  PageStore store;
  ASSERT_OK_AND_ASSIGN(Page p, Page::Create(1, 10, 100));
  ASSERT_OK(p.Append(Slice("0123456789")));
  const PageId id = store.Put(SealPage(std::move(p)));
  EXPECT_NE(id, kInvalidPageId);
  EXPECT_EQ(store.size(), 1u);
  ASSERT_OK_AND_ASSIGN(PagePtr got, store.Get(id));
  EXPECT_EQ(got->num_tuples(), 1);
  ASSERT_OK(store.Free(id));
  EXPECT_TRUE(store.Get(id).status().IsNotFound());
  EXPECT_TRUE(store.Free(id).IsNotFound());
}

TEST(PageStoreTest, StatsCountBytes) {
  PageStore store;
  ASSERT_OK_AND_ASSIGN(Page p, Page::Create(1, 10, 100));
  ASSERT_OK(p.Append(Slice("0123456789")));
  const PageId id = store.Put(SealPage(std::move(p)));
  ASSERT_OK_AND_ASSIGN(PagePtr got, store.Get(id));
  (void)got;
  const PageStoreStats stats = store.stats();
  EXPECT_EQ(stats.pages_written, 1u);
  EXPECT_EQ(stats.bytes_written, 10u);
  EXPECT_EQ(stats.pages_read, 1u);
  EXPECT_EQ(stats.bytes_read, 10u);
  store.ResetStats();
  EXPECT_EQ(store.stats().pages_written, 0u);
}

TEST(PageTableTest, StreamSemantics) {
  PageTable table;
  EXPECT_FALSE(table.complete());
  ASSERT_OK(table.Append(11));
  ASSERT_OK(table.Append(22));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(*table.At(1), 22u);
  EXPECT_FALSE(table.At(2).has_value());
  EXPECT_FALSE(table.Exhausted(2));  // Not complete yet.
  table.MarkComplete();
  EXPECT_TRUE(table.complete());
  EXPECT_TRUE(table.Exhausted(2));
  EXPECT_FALSE(table.Exhausted(1));
  EXPECT_TRUE(table.Append(33).IsFailedPrecondition());
  EXPECT_EQ(table.Ids(), (std::vector<PageId>{11, 22}));
}

}  // namespace
}  // namespace dfdb

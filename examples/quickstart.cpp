/// \file quickstart.cpp
/// \brief Quickstart: build a database, run the paper's Figure 2.1 query.
///
/// The sample query tree of Figure 2.1 joins two restricted relations and
/// joins the result with a third:
///
///           J
///          . .
///         J   R(suppliers)
///        . .
///  R(parts) R(orders)
///
/// This example creates three relations, executes the tree on the
/// page-granularity data-flow engine, and prints the first rows plus the
/// engine's traffic statistics.

#include <cstdio>

#include "engine/run.h"
#include "ra/plan.h"
#include "storage/storage_engine.h"
#include "workload/generator.h"

using namespace dfdb;

int main() {
  // 1. A storage engine with 4 KB pages.
  StorageEngine storage(/*default_page_bytes=*/4096);

  // 2. Three relations of the standard benchmark schema (id, seq, k2..k1000,
  //    val, pad) — see workload/generator.h.
  for (const auto& [name, rows] : {std::pair<const char*, uint64_t>{"parts", 2000},
                                   {"orders", 800},
                                   {"suppliers", 300}}) {
    auto id = GenerateRelation(&storage, name, rows, /*seed=*/7);
    if (!id.ok()) {
      std::fprintf(stderr, "generate %s: %s\n", name, id.status().ToString().c_str());
      return 1;
    }
  }

  // 3. The Figure 2.1 query tree: two restricts feeding a join, whose
  //    result joins a third relation.
  PlanNodePtr tree = MakeJoin(
      MakeJoin(MakeRestrict(MakeScan("parts"), Lt(Col("k1000"), Lit(250))),
               MakeRestrict(MakeScan("orders"), Lt(Col("k1000"), Lit(500))),
               Eq(Col("k100"), RightCol("k100"))),
      MakeScan("suppliers"), Eq(Col("k1000"), RightCol("k1000")));
  std::printf("Query tree:\n%s\n", tree->ToString().c_str());

  // 4. Execute with page-level granularity on 4 processors.
  ExecOptions options;
  options.granularity = Granularity::kPage;
  options.num_processors = 4;
  options.page_bytes = 4096;
  auto result = RunQuery(&storage, *tree, options);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 5. Inspect the result.
  std::printf("Result: %llu tuples of schema [%s]\n",
              static_cast<unsigned long long>(result->num_tuples()),
              result->schema().ToString().c_str());
  int shown = 0;
  (void)result->ForEachTuple([&](const TupleView& t) -> Status {
    if (shown++ < 5) std::printf("  %s\n", t.ToString().c_str());
    return Status::OK();
  });
  if (result->num_tuples() > 5) std::printf("  ... and more\n");

  // Per-query statistics ride on the QueryResult itself.
  std::printf("\nEngine statistics: %s\n", result->stats().ToString().c_str());
  return 0;
}

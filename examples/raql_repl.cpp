/// \file raql_repl.cpp
/// \brief An interactive shell over the data-flow engine.
///
/// Reads RAQL queries (see ra/parser.h) from stdin, optimizes them, runs
/// them on the page-granularity data-flow engine, and prints results.
///
/// With `--connect host:port` the shell runs against a remote dfdb_server
/// instead: queries ship over the wire protocol via dfdb::net::Client and
/// results stream back (the storage-local commands \gen/\paper/\explain/
/// \trace are unavailable remotely; \d, \stats and plain queries work).
///
/// Commands:
///   \d                 list relations (name, tuples, pages)
///   \explain <query>   show the optimized plan without running it
///   \gen <name> <n>    generate a benchmark relation with n tuples
///   \paper             load the paper's 15-relation database (scale 0.5)
///   \stats             full counter registry of the last query
///   \trace on|off      record per-query event traces (off by default)
///   \trace             dump the last query's trace (first 40 events)
///   \q                 quit
///   create index <name> on <rel> (<col>[, <col>])
///                      build a grid-file index (1-2 numeric columns)
///   drop index <name>  drop it
/// Anything else is parsed as a query.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "engine/run.h"
#include "index/index_manager.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ra/optimizer.h"
#include "ra/parser.h"
#include "storage/storage_engine.h"
#include "workload/generator.h"
#include "workload/paper_benchmark.h"

using namespace dfdb;

namespace {

void PrintResult(const QueryResult& result) {
  // Header.
  for (int c = 0; c < result.schema().num_columns(); ++c) {
    std::printf("%s%s", c ? " | " : "", result.schema().column(c).name.c_str());
  }
  std::printf("\n");
  int shown = 0;
  (void)result.ForEachTuple([&](const TupleView& t) -> Status {
    if (shown < 20) {
      std::printf("%s\n", t.ToString().c_str());
    }
    ++shown;
    return Status::OK();
  });
  if (shown > 20) std::printf("... (%d rows total)\n", shown);
  std::printf("(%llu rows)\n",
              static_cast<unsigned long long>(result.num_tuples()));
}

/// Remote mode: ship each line to a dfdb_server as RAQL text; results come
/// back over the wire already typed (schema + tuple batches + counters).
int RunRemote(const std::string& host, uint16_t port) {
  auto client = net::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s:%u failed: %s\n", host.c_str(), port,
                 client.status().ToString().c_str());
    return 1;
  }
  std::printf("dfdb RAQL shell (remote %s:%u) — \\stats, \\q to quit\n",
              host.c_str(), port);
  net::RemoteResult last;
  bool have_stats = false;
  std::string line;
  while (true) {
    std::printf("dfdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\stats") {
      if (!have_stats) {
        std::printf("no query has run yet\n");
      } else {
        for (const auto& [name, value] : last.counters) {
          std::printf("%-36s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
        }
      }
      continue;
    }
    auto result = client->Execute(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      if (!client->connected()) return 1;
      continue;
    }
    for (int c = 0; c < result->schema.num_columns(); ++c) {
      std::printf("%s%s", c ? " | " : "",
                  result->schema.column(c).name.c_str());
    }
    std::printf("\n");
    uint64_t shown = 0;
    result->ForEachTuple([&](const TupleView& t) {
      if (shown < 20) std::printf("%s\n", t.ToString().c_str());
      ++shown;
    });
    if (shown > 20) {
      std::printf("... (%llu rows total)\n",
                  static_cast<unsigned long long>(shown));
    }
    std::printf("(%llu rows, %.3f ms server)\n",
                static_cast<unsigned long long>(result->num_tuples),
                result->server_seconds * 1e3);
    last = *std::move(result);
    have_stats = true;
  }
  return 0;
}

}  // namespace

int RunLocal();

int main(int argc, char** argv) {
  // --connect host:port (or --connect=host:port) switches to remote mode.
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string target;
    if (arg.rfind("--connect=", 0) == 0) {
      target = arg.substr(10);
    } else if (arg == "--connect" && i + 1 < argc) {
      target = argv[i + 1];
    } else {
      continue;
    }
    const size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "usage: raql_repl --connect host:port\n");
      return 2;
    }
    return RunRemote(target.substr(0, colon),
                     static_cast<uint16_t>(
                         std::atoi(target.c_str() + colon + 1)));
  }
  return RunLocal();
}

int RunLocal() {
  StorageEngine storage(/*default_page_bytes=*/4096);
  ExecOptions options;
  options.granularity = Granularity::kPage;
  options.num_processors = 4;
  options.page_bytes = 4096;
  Optimizer optimizer(&storage.catalog());
  ExecStats last_stats;  // Snapshot of the most recent query.
  bool have_stats = false;

  std::printf("dfdb RAQL shell — \\d relations, \\gen, \\paper, \\explain, "
              "\\stats, \\trace, create/drop index, \\q to quit\n");
  std::string line;
  while (true) {
    std::printf("dfdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\d") {
      for (const std::string& name : storage.catalog().ListRelations()) {
        auto meta = storage.catalog().GetRelation(name);
        if (meta.ok()) {
          std::printf("  %-12s %8llu tuples %6llu pages\n", name.c_str(),
                      static_cast<unsigned long long>(meta->tuple_count),
                      static_cast<unsigned long long>(meta->page_count));
        }
      }
      continue;
    }
    if (line == "\\paper") {
      auto bytes = BuildPaperDatabase(&storage, 0.5, 42);
      if (!bytes.ok()) {
        std::printf("error: %s\n", bytes.status().ToString().c_str());
      } else {
        std::printf("loaded 15 relations, %.2f MB\n",
                    static_cast<double>(*bytes) / 1e6);
      }
      continue;
    }
    if (line == "\\stats") {
      if (!have_stats) {
        std::printf("no query has run yet\n");
      } else {
        obs::MetricsRegistry registry;
        RegisterMetrics(last_stats, &registry);
        std::printf("%s%s", last_stats.ToString().c_str(),
                    registry.ToString().c_str());
      }
      continue;
    }
    if (line == "\\trace on" || line == "\\trace off") {
      options.enable_trace = line == "\\trace on";
      std::printf("tracing %s\n", options.enable_trace ? "on" : "off");
      continue;
    }
    if (line == "\\trace") {
      if (last_stats.trace == nullptr) {
        std::printf("no trace recorded (\\trace on, then run a query)\n");
      } else {
        const auto& events = last_stats.trace->events();
        const size_t show = events.size() < 40 ? events.size() : 40;
        for (size_t i = 0; i < show; ++i) {
          const obs::TraceEvent& e = events[i];
          std::printf("  %6llu %9.3fms %-16s node=%d station=%d bytes=%llu%s%s\n",
                      static_cast<unsigned long long>(e.seq),
                      static_cast<double>(e.ts_ns) / 1e6,
                      std::string(obs::TraceEventKindToString(e.kind)).c_str(),
                      e.a, e.b, static_cast<unsigned long long>(e.bytes),
                      e.detail != nullptr ? " " : "",
                      e.detail != nullptr ? e.detail : "");
        }
        if (events.size() > show) {
          std::printf("  ... %llu more events\n",
                      static_cast<unsigned long long>(events.size() - show));
        }
      }
      continue;
    }
    if (line.rfind("\\gen ", 0) == 0) {
      char name[64];
      unsigned long long n = 0;
      if (std::sscanf(line.c_str(), "\\gen %63s %llu", name, &n) == 2 && n > 0) {
        auto id = GenerateRelation(&storage, name, n, 42);
        std::printf("%s\n", id.ok() ? "ok" : id.status().ToString().c_str());
      } else {
        std::printf("usage: \\gen <name> <tuples>\n");
      }
      continue;
    }
    if (line.rfind("create index ", 0) == 0) {
      char name[64], rel[64], cols[128];
      if (std::sscanf(line.c_str() + 13, "%63s on %63s ( %127[^)])", name,
                      rel, cols) == 3) {
        std::vector<std::string> columns;
        for (char* tok = std::strtok(cols, ", "); tok != nullptr;
             tok = std::strtok(nullptr, ", ")) {
          columns.emplace_back(tok);
        }
        Status s = GetIndexManager(&storage)->CreateIndex(name, rel,
                                                          std::move(columns));
        std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
      } else {
        std::printf("usage: create index <name> on <relation> (<col>[, <col>])\n");
      }
      continue;
    }
    if (line.rfind("drop index ", 0) == 0) {
      Status s = GetIndexManager(&storage)->DropIndex(line.substr(11));
      std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
      continue;
    }
    const bool explain = line.rfind("\\explain ", 0) == 0;
    const std::string text = explain ? line.substr(9) : line;

    auto parsed = ParseQuery(text);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      continue;
    }
    OptimizerReport report;
    auto optimized = optimizer.Optimize(**parsed, &report);
    if (!optimized.ok()) {
      std::printf("error: %s\n", optimized.status().ToString().c_str());
      continue;
    }
    if (explain) {
      std::printf("%s(optimizer: %s)\n", (*optimized)->ToString().c_str(),
                  report.ToString().c_str());
      continue;
    }
    // A one-shot run per query picks up the current \trace setting.
    auto result = RunQuery(&storage, **optimized, options);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result);
    last_stats = result->stats();
    have_stats = true;
    std::printf("%s\n", last_stats.ToString().c_str());
  }
  return 0;
}

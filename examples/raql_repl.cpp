/// \file raql_repl.cpp
/// \brief An interactive shell over the data-flow engine.
///
/// Reads RAQL queries (see ra/parser.h) from stdin, optimizes them, runs
/// them on the page-granularity data-flow engine, and prints results.
///
/// Commands:
///   \d                 list relations (name, tuples, pages)
///   \explain <query>   show the optimized plan without running it
///   \gen <name> <n>    generate a benchmark relation with n tuples
///   \paper             load the paper's 15-relation database (scale 0.5)
///   \q                 quit
/// Anything else is parsed as a query.

#include <cstdio>
#include <iostream>
#include <string>

#include "engine/executor.h"
#include "ra/optimizer.h"
#include "ra/parser.h"
#include "storage/storage_engine.h"
#include "workload/generator.h"
#include "workload/paper_benchmark.h"

using namespace dfdb;

namespace {

void PrintResult(const QueryResult& result) {
  // Header.
  for (int c = 0; c < result.schema().num_columns(); ++c) {
    std::printf("%s%s", c ? " | " : "", result.schema().column(c).name.c_str());
  }
  std::printf("\n");
  int shown = 0;
  (void)result.ForEachTuple([&](const TupleView& t) -> Status {
    if (shown < 20) {
      std::printf("%s\n", t.ToString().c_str());
    }
    ++shown;
    return Status::OK();
  });
  if (shown > 20) std::printf("... (%d rows total)\n", shown);
  std::printf("(%llu rows)\n",
              static_cast<unsigned long long>(result.num_tuples()));
}

}  // namespace

int main() {
  StorageEngine storage(/*default_page_bytes=*/4096);
  ExecOptions options;
  options.granularity = Granularity::kPage;
  options.num_processors = 4;
  options.page_bytes = 4096;
  Executor engine(&storage, options);
  Optimizer optimizer(&storage.catalog());

  std::printf("dfdb RAQL shell — \\d relations, \\gen, \\paper, \\explain, "
              "\\q to quit\n");
  std::string line;
  while (true) {
    std::printf("dfdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\d") {
      for (const std::string& name : storage.catalog().ListRelations()) {
        auto meta = storage.catalog().GetRelation(name);
        if (meta.ok()) {
          std::printf("  %-12s %8llu tuples %6llu pages\n", name.c_str(),
                      static_cast<unsigned long long>(meta->tuple_count),
                      static_cast<unsigned long long>(meta->page_count));
        }
      }
      continue;
    }
    if (line == "\\paper") {
      auto bytes = BuildPaperDatabase(&storage, 0.5, 42);
      if (!bytes.ok()) {
        std::printf("error: %s\n", bytes.status().ToString().c_str());
      } else {
        std::printf("loaded 15 relations, %.2f MB\n",
                    static_cast<double>(*bytes) / 1e6);
      }
      continue;
    }
    if (line.rfind("\\gen ", 0) == 0) {
      char name[64];
      unsigned long long n = 0;
      if (std::sscanf(line.c_str(), "\\gen %63s %llu", name, &n) == 2 && n > 0) {
        auto id = GenerateRelation(&storage, name, n, 42);
        std::printf("%s\n", id.ok() ? "ok" : id.status().ToString().c_str());
      } else {
        std::printf("usage: \\gen <name> <tuples>\n");
      }
      continue;
    }
    const bool explain = line.rfind("\\explain ", 0) == 0;
    const std::string text = explain ? line.substr(9) : line;

    auto parsed = ParseQuery(text);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      continue;
    }
    OptimizerReport report;
    auto optimized = optimizer.Optimize(**parsed, &report);
    if (!optimized.ok()) {
      std::printf("error: %s\n", optimized.status().ToString().c_str());
      continue;
    }
    if (explain) {
      std::printf("%s(optimizer: %s)\n", (*optimized)->ToString().c_str(),
                  report.ToString().c_str());
      continue;
    }
    auto result = engine.Execute(**optimized);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result);
    std::printf("%s\n", engine.last_stats().ToString().c_str());
  }
  return 0;
}

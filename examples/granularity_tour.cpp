/// \file granularity_tour.cpp
/// \brief A tour of the paper's three operand granularities (Section 3).
///
/// Runs one join query under relation-, page-, and tuple-level granularity
/// on BOTH engines (threads and machine simulator) and prints, side by
/// side, the quantities the paper reasons about: execution time, network
/// bytes, packet counts, and storage-hierarchy traffic.

#include <cstdio>

#include "engine/run.h"
#include "machine/simulator.h"
#include "storage/storage_engine.h"
#include "workload/generator.h"

using namespace dfdb;

int main() {
  StorageEngine storage(/*default_page_bytes=*/1000);
  for (const auto& [name, rows] :
       {std::pair<const char*, uint64_t>{"outer_rel", 1000}, {"inner_rel", 400}}) {
    auto id = GenerateRelation(&storage, name, rows, /*seed=*/3);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  auto plan =
      MakeJoin(MakeRestrict(MakeScan("outer_rel"), Lt(Col("k1000"), Lit(400))),
               MakeRestrict(MakeScan("inner_rel"), Lt(Col("k1000"), Lit(500))),
               Eq(Col("k100"), RightCol("k100")));

  std::printf("Join of restricted 1000- and 400-tuple relations, 100 B "
              "tuples, 1 KB pages, 8 processors.\n\n");

  std::printf("%-10s | %12s %12s %10s | %12s %12s\n", "granularity",
              "sim_time", "ring_bytes", "packets", "threads_wall",
              "arb_bytes");
  for (Granularity g :
       {Granularity::kRelation, Granularity::kPage, Granularity::kTuple}) {
    // Machine simulator.
    MachineOptions mopts;
    mopts.granularity = g;
    mopts.config.num_instruction_processors = 8;
    mopts.config.page_bytes = 1000;
    MachineSimulator sim(&storage, mopts);
    auto report = sim.Run({plan.get()});
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    // Threads engine.
    ExecOptions eopts;
    eopts.granularity = g;
    eopts.num_processors = 8;
    eopts.page_bytes = 1000;
    auto result = RunQuery(&storage, *plan, eopts);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s | %10.3f s %12llu %10llu | %10.3f s %12llu\n",
                std::string(GranularityToString(g)).c_str(),
                report->makespan.ToSecondsF(),
                static_cast<unsigned long long>(report->bytes.outer_ring),
                static_cast<unsigned long long>(report->instruction_packets),
                result->stats().wall_seconds,
                static_cast<unsigned long long>(
                    result->stats().arbitration_bytes));
  }

  std::printf(
      "\nWhat to look for (Section 3):\n"
      "  - tuple granularity moves an order of magnitude more bytes across\n"
      "    the ring and pays a packet per tuple;\n"
      "  - relation granularity moves the same bytes as page granularity\n"
      "    but loses pipelining (higher time at equal resources);\n"
      "  - page granularity is the sweet spot — the paper's thesis.\n");
  return 0;
}

/// \file machine_sim.cpp
/// \brief Drive the Section 4 machine simulator on a custom configuration.
///
/// Simulates the ring-based data-flow database machine — master
/// controller, instruction controllers, instruction processors, DLCN
/// rings, CCD disk cache, IBM 3330 drives — on the paper's ten-query
/// benchmark and prints the timing and per-level bandwidth report.
///
/// Usage: machine_sim [ips] [granularity: page|relation|tuple] [scale]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "machine/simulator.h"
#include "workload/paper_benchmark.h"

using namespace dfdb;

int main(int argc, char** argv) {
  const int ips = argc > 1 ? std::atoi(argv[1]) : 16;
  Granularity granularity = Granularity::kPage;
  if (argc > 2) {
    if (std::strcmp(argv[2], "relation") == 0) granularity = Granularity::kRelation;
    if (std::strcmp(argv[2], "tuple") == 0) granularity = Granularity::kTuple;
  }
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.5;

  StorageEngine storage(/*default_page_bytes=*/16384);
  auto bytes = BuildPaperDatabase(&storage, scale, /*seed=*/42);
  if (!bytes.ok()) {
    std::fprintf(stderr, "%s\n", bytes.status().ToString().c_str());
    return 1;
  }
  std::printf("Database: 15 relations, %.2f MB\n",
              static_cast<double>(*bytes) / 1e6);

  std::vector<Query> queries = MakePaperBenchmarkQueries();
  std::vector<const PlanNode*> plans;
  for (const Query& q : queries) plans.push_back(q.root.get());

  MachineOptions options;
  options.granularity = granularity;
  options.config.num_instruction_processors = ips;
  options.config.num_instruction_controllers = 8;
  options.config.page_bytes = 16384;
  std::printf("Machine: %d IPs, %d ICs, %s granularity, 16 KB pages,\n"
              "         %d-page CCD cache, %d disk drives, 40 Mbps outer ring\n\n",
              options.config.num_instruction_processors,
              options.config.num_instruction_controllers,
              std::string(GranularityToString(granularity)).c_str(),
              options.config.disk_cache_pages, options.config.num_disk_drives);

  MachineSimulator sim(&storage, options);
  auto report = sim.Run(plans);
  if (!report.ok()) {
    std::fprintf(stderr, "simulation: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("Per-query completion times (simulated):\n");
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("  %-4s %10.3f s   (%llu result tuples)\n",
                queries[i].name.c_str(),
                report->query_completion[i].ToSecondsF(),
                static_cast<unsigned long long>(
                    report->results[i].num_tuples()));
  }
  std::printf("\nBenchmark makespan: %.3f s\n", report->makespan.ToSecondsF());
  std::printf("Average bandwidths (total bytes / makespan, as in Fig. 4.2):\n");
  std::printf("  outer ring : %8.3f Mbps %s\n", report->OuterRingBps() / 1e6,
              report->OuterRingBps() < 40e6 ? "(within the 40 Mbps DLCN budget)"
                                            : "(EXCEEDS 40 Mbps!)");
  std::printf("  inner ring : %8.3f Kbps\n", report->InnerRingBps() / 1e3);
  std::printf("  disk cache : %8.3f Mbps\n", report->CacheBps() / 1e6);
  std::printf("  disk       : %8.3f Mbps\n", report->DiskBps() / 1e6);
  std::printf("IP utilization: %.1f%%   packets: %llu instr / %llu result / "
              "%llu control / %llu broadcasts\n",
              report->IpUtilization() * 100.0,
              static_cast<unsigned long long>(report->instruction_packets),
              static_cast<unsigned long long>(report->result_packets),
              static_cast<unsigned long long>(report->control_packets),
              static_cast<unsigned long long>(report->broadcasts));
  return 0;
}

/// \file multiuser.cpp
/// \brief Multi-query execution through the resident Scheduler.
///
/// Section 4.0, requirement 1: "a database machine ... must be able to
/// support the simultaneous execution of multiple queries from several
/// users ... This requires careful control of which queries are permitted
/// to execute concurrently."
///
/// This example submits a mixed stream — read-only analytics, an append
/// pipeline, and a delete — to a long-lived Scheduler: the master
/// controller admits non-conflicting queries onto one shared worker pool
/// and parks conflicting ones in its admission queue, re-admitting them as
/// the conflicts drain. Each handle reports how long its query waited.

#include <cstdio>

#include "engine/scheduler.h"
#include "storage/storage_engine.h"
#include "workload/generator.h"

using namespace dfdb;

int main() {
  StorageEngine storage(/*default_page_bytes=*/4096);
  for (const auto& [name, rows] :
       {std::pair<const char*, uint64_t>{"events", 3000}, {"users", 500}}) {
    auto id = GenerateRelation(&storage, name, rows, /*seed=*/11);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  // An initially empty archive relation the stream will write into.
  auto archive = storage.CreateRelation("archive", BenchmarkSchema());
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }

  // The stream:
  //   A: analytics join (reads events, users)
  //   B: archive recent events (reads events, WRITES archive)
  //   C: aggregate over users (reads users)
  //   D: purge archived rows (WRITES archive) — conflicts with B, so the
  //      MC queues it and re-admits it when B completes.
  auto query_a =
      MakeJoin(MakeRestrict(MakeScan("events"), Lt(Col("k1000"), Lit(100))),
               MakeScan("users"), Eq(Col("k100"), RightCol("k100")));
  auto query_b = MakeAppend(
      MakeRestrict(MakeScan("events"), Ge(Col("k1000"), Lit(900))), "archive");
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "cnt"});
  specs.push_back({AggregateSpec::Func::kAvg, "val", "mean_val"});
  auto query_c = MakeAggregate(MakeScan("users"), {"k10"}, specs);
  auto query_d = MakeDelete("archive", Lt(Col("k2"), Lit(1)));

  SchedulerOptions options;
  options.exec.granularity = Granularity::kPage;
  options.exec.num_processors = 4;
  options.exec.page_bytes = 4096;
  Scheduler scheduler(&storage, std::move(options));

  // Submit the whole stream up front — in a real service each of these
  // would arrive from a different client thread. No caller retry loops:
  // the admission queue owns conflict resolution.
  const PlanNode* plans[] = {query_a.get(), query_b.get(), query_c.get(),
                             query_d.get()};
  const char* names[] = {"A (join)", "B (append)", "C (aggregate)",
                         "D (delete)"};
  std::vector<QueryHandle> handles;
  for (const PlanNode* plan : plans) {
    auto handle = scheduler.Submit(*plan);
    if (!handle.ok()) {
      std::fprintf(stderr, "submit: %s\n", handle.status().ToString().c_str());
      return 1;
    }
    handles.push_back(*std::move(handle));
  }

  std::vector<QueryResult> results;
  for (size_t i = 0; i < handles.size(); ++i) {
    auto result = handles[i].Wait();
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", names[i],
                   result.status().ToString().c_str());
      return 1;
    }
    results.push_back(*std::move(result));
  }

  std::printf("A (join):       %llu tuples\n",
              static_cast<unsigned long long>(results[0].num_tuples()));
  std::printf("B (append):     side effect on 'archive'\n");
  std::printf("C (aggregate):  %llu groups\n",
              static_cast<unsigned long long>(results[2].num_tuples()));
  std::printf("D (delete):     side effect on 'archive'\n");

  auto meta = storage.catalog().GetRelation("archive");
  if (meta.ok()) {
    std::printf("archive now holds %llu tuples (k1000>=900 minus k2=0)\n",
                static_cast<unsigned long long>(meta->tuple_count));
  }

  // Per-query admission stats: D conflicted with B on 'archive', so it is
  // the one that shows a queue wait.
  std::printf("\nqueue waits:\n");
  for (size_t i = 0; i < handles.size(); ++i) {
    const ExecStats& qs = results[i].stats();
    std::printf("  %-14s %s, waited %.3f ms (requeues: %llu)\n", names[i],
                qs.sched_queued ? "queued " : "admitted",
                static_cast<double>(qs.sched_queue_wait_ns) / 1e6,
                static_cast<unsigned long long>(qs.sched_requeues));
  }

  ExecStats totals = scheduler.AggregateStats();
  std::printf("\nScheduler totals: %s\n", totals.ToString().c_str());
  std::printf("Join query alone: %.3fs, %llu pages\n",
              results[0].stats().wall_seconds,
              static_cast<unsigned long long>(
                  results[0].stats().pages_produced));
  return 0;
}

/// \file multiuser.cpp
/// \brief Multi-query execution with MC-style admission control.
///
/// Section 4.0, requirement 1: "a database machine ... must be able to
/// support the simultaneous execution of multiple queries from several
/// users ... This requires careful control of which queries are permitted
/// to execute concurrently."
///
/// This example submits a mixed batch — read-only analytics, an append
/// pipeline, and a delete — and shows that conflicting queries serialize
/// while the rest share the processor pool. It then verifies the final
/// state of the written relation.

#include <cstdio>

#include "engine/executor.h"
#include "engine/reference.h"
#include "storage/storage_engine.h"
#include "workload/generator.h"

using namespace dfdb;

int main() {
  StorageEngine storage(/*default_page_bytes=*/4096);
  for (const auto& [name, rows] :
       {std::pair<const char*, uint64_t>{"events", 3000}, {"users", 500}}) {
    auto id = GenerateRelation(&storage, name, rows, /*seed=*/11);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  // An initially empty archive relation the batch will write into.
  auto archive = storage.CreateRelation("archive", BenchmarkSchema());
  if (!archive.ok()) {
    std::fprintf(stderr, "%s\n", archive.status().ToString().c_str());
    return 1;
  }

  // The batch:
  //   A: analytics join (reads events, users)
  //   B: archive recent events (reads events, WRITES archive)
  //   C: aggregate over users (reads users)
  //   D: purge archived rows (WRITES archive) — conflicts with B, so the
  //      MC admits it only after B completes.
  auto query_a =
      MakeJoin(MakeRestrict(MakeScan("events"), Lt(Col("k1000"), Lit(100))),
               MakeScan("users"), Eq(Col("k100"), RightCol("k100")));
  auto query_b = MakeAppend(
      MakeRestrict(MakeScan("events"), Ge(Col("k1000"), Lit(900))), "archive");
  std::vector<AggregateSpec> specs;
  specs.push_back({AggregateSpec::Func::kCount, "", "cnt"});
  specs.push_back({AggregateSpec::Func::kAvg, "val", "mean_val"});
  auto query_c = MakeAggregate(MakeScan("users"), {"k10"}, specs);
  auto query_d = MakeDelete("archive", Lt(Col("k2"), Lit(1)));

  ExecOptions options;
  options.granularity = Granularity::kPage;
  options.num_processors = 4;
  options.page_bytes = 4096;
  Executor engine(&storage, options);

  ExecStats batch_stats;
  auto results = engine.ExecuteBatch(
      {query_a.get(), query_b.get(), query_c.get(), query_d.get()},
      &batch_stats);
  if (!results.ok()) {
    std::fprintf(stderr, "batch: %s\n", results.status().ToString().c_str());
    return 1;
  }

  std::printf("A (join):       %llu tuples\n",
              static_cast<unsigned long long>((*results)[0].num_tuples()));
  std::printf("B (append):     side effect on 'archive'\n");
  std::printf("C (aggregate):  %llu groups\n",
              static_cast<unsigned long long>((*results)[2].num_tuples()));
  std::printf("D (delete):     side effect on 'archive'\n");

  auto meta = storage.catalog().GetRelation("archive");
  if (meta.ok()) {
    std::printf("archive now holds %llu tuples (k1000>=900 minus k2=0)\n",
                static_cast<unsigned long long>(meta->tuple_count));
  }
  std::printf("\nBatch statistics: %s\n", batch_stats.ToString().c_str());
  // Each QueryResult also carries its own per-query snapshot.
  std::printf("Join query alone: %.3fs, %llu pages\n",
              (*results)[0].stats().wall_seconds,
              static_cast<unsigned long long>(
                  (*results)[0].stats().pages_produced));
  return 0;
}

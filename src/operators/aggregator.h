/// \file aggregator.h
/// \brief Grouped aggregation over a page stream (extension operator).

#ifndef DFDB_OPERATORS_AGGREGATOR_H_
#define DFDB_OPERATORS_AGGREGATOR_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "operators/page_sink.h"
#include "ra/plan.h"
#include "storage/page.h"
#include "storage/tuple.h"

namespace dfdb {

/// \brief Accumulates grouped aggregates across pages, then emits one tuple
/// per group in group-key order (deterministic output).
class Aggregator {
 public:
  /// \p input_schema and \p output_schema must be the analyzer-resolved
  /// schemas of the aggregate node's child and of the node itself.
  static StatusOr<Aggregator> Create(const Schema& input_schema,
                                     const Schema& output_schema,
                                     const std::vector<std::string>& group_by,
                                     std::vector<AggregateSpec> specs);

  /// Folds every tuple of \p page into the running groups.
  Status Consume(const Page& page);

  /// Emits one encoded output tuple per group. After Finish() the
  /// aggregator is reset and reusable.
  Status Finish(PageSink* out);

  size_t num_groups() const { return groups_.size(); }

 private:
  struct AggState {
    int64_t count = 0;
    double sum_double = 0;
    int64_t sum_int = 0;
    std::optional<Value> min;
    std::optional<Value> max;
  };
  struct GroupState {
    std::vector<Value> group_values;
    std::vector<AggState> aggs;
  };

  Aggregator(Schema input_schema, Schema output_schema,
             std::vector<int> group_indices, std::vector<AggregateSpec> specs,
             std::vector<int> agg_indices)
      : input_schema_(std::move(input_schema)),
        output_schema_(std::move(output_schema)),
        group_indices_(std::move(group_indices)),
        specs_(std::move(specs)),
        agg_indices_(std::move(agg_indices)) {}

  Schema input_schema_;
  Schema output_schema_;
  std::vector<int> group_indices_;
  std::vector<AggregateSpec> specs_;
  /// Input column index per spec (-1 for COUNT).
  std::vector<int> agg_indices_;
  /// Keyed by the encoded group-column bytes for deterministic ordering.
  std::map<std::string, GroupState> groups_;
};

}  // namespace dfdb

#endif  // DFDB_OPERATORS_AGGREGATOR_H_

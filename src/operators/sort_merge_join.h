/// \file sort_merge_join.h
/// \brief The "sorted-merge" equi-join baseline (Blasgen & Eswaran).
///
/// The paper cites this as the O(n log n) uniprocessor algorithm that is
/// fastest on one processor but hard to parallelize (Section 2.1). We
/// implement it as the single-threaded comparator for the nested-loops
/// engine benchmarks.

#ifndef DFDB_OPERATORS_SORT_MERGE_JOIN_H_
#define DFDB_OPERATORS_SORT_MERGE_JOIN_H_

#include <vector>

#include "catalog/schema.h"
#include "operators/page_sink.h"
#include "storage/page.h"

namespace dfdb {

/// \brief Equi-joins two fully materialized relations by sorting both sides
/// on the join column and merging. Emits outer ++ inner concatenations.
///
/// \p outer_col / \p inner_col are the join columns (must be the same type).
/// Handles duplicate keys on both sides (block cross products).
Status SortMergeJoin(const Schema& outer_schema,
                     const std::vector<PagePtr>& outer_pages, int outer_col,
                     const Schema& inner_schema,
                     const std::vector<PagePtr>& inner_pages, int inner_col,
                     PageSink* out);

}  // namespace dfdb

#endif  // DFDB_OPERATORS_SORT_MERGE_JOIN_H_

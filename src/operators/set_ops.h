/// \file set_ops.h
/// \brief Stateful union / difference operators over page streams.

#ifndef DFDB_OPERATORS_SET_OPS_H_
#define DFDB_OPERATORS_SET_OPS_H_

#include "operators/dedup.h"
#include "operators/page_sink.h"
#include "storage/page.h"

#include "common/macros.h"

namespace dfdb {

/// \brief Set (or bag) union: streams both inputs, deduplicating when set
/// semantics are requested. Inputs may interleave freely — union is fully
/// pipelineable, which the page-dataflow engine exploits.
class UnionOp {
 public:
  explicit UnionOp(bool bag_semantics) : bag_(bag_semantics) {}

  Status Consume(const Page& page, PageSink* out) {
    for (int i = 0; i < page.num_tuples(); ++i) {
      if (bag_ || seen_.Insert(page.tuple(i))) {
        DFDB_RETURN_IF_ERROR(out->Emit(page.tuple(i)));
      }
    }
    return Status::OK();
  }

 private:
  bool bag_;
  DuplicateEliminator seen_;
};

/// \brief Set difference left \ right. The right side must be consumed
/// completely before any left page (a pipeline barrier on one input —
/// exactly the situation where relation-level granularity loses least).
class DifferenceOp {
 public:
  /// Feeds one page of the right (subtrahend) input.
  void ConsumeRight(const Page& page) {
    for (int i = 0; i < page.num_tuples(); ++i) {
      right_.Insert(page.tuple(i));
    }
  }

  /// Streams one page of the left input, emitting tuples not present in the
  /// right set. Output is deduplicated (set semantics).
  Status ConsumeLeft(const Page& page, PageSink* out) {
    for (int i = 0; i < page.num_tuples(); ++i) {
      if (!right_.Contains(page.tuple(i)) && emitted_.Insert(page.tuple(i))) {
        DFDB_RETURN_IF_ERROR(out->Emit(page.tuple(i)));
      }
    }
    return Status::OK();
  }

 private:
  DuplicateEliminator right_;
  DuplicateEliminator emitted_;
};

}  // namespace dfdb

#endif  // DFDB_OPERATORS_SET_OPS_H_

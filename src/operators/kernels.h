/// \file kernels.h
/// \brief Stateless page-at-a-time operator kernels.
///
/// These are the computations an instruction processor performs on the data
/// page(s) of one instruction packet. Both execution engines call them: the
/// multithreaded engine directly, the machine simulator to derive result
/// sizes for its timing model.
///
/// Each predicate-driven kernel comes in two flavours. The Expr flavour
/// interprets the tree per tuple; it is the semantic reference (the
/// differential-fuzz oracle, and reference.cc's path). The CompiledPredicate
/// / CompiledJoinPredicate flavour runs the flat program from
/// ra/expr_compile.h over all tuples of the page — this is what the engines
/// use, falling back to the Expr flavour when compilation is rejected.

#ifndef DFDB_OPERATORS_KERNELS_H_
#define DFDB_OPERATORS_KERNELS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "operators/page_sink.h"
#include "ra/expr.h"
#include "ra/expr_compile.h"
#include "storage/page.h"
#include "storage/tuple.h"

namespace dfdb {

/// \brief Plain copy of KernelStats for reporting.
struct KernelStatsSnapshot {
  uint64_t compiled_pages = 0;
  uint64_t interpreted_pages = 0;
  uint64_t compile_fallbacks = 0;
  uint64_t hash_joins = 0;
  uint64_t nested_joins = 0;
  uint64_t hash_build_collisions = 0;
};

/// \brief Counters for the compiled-vs-interpreted kernel split, updated
/// with relaxed atomics from concurrent workers. Engines embed one and
/// export it as the `engine.kernel.*` / `machine.kernel.*` counter family.
struct KernelStats {
  std::atomic<uint64_t> compiled_pages{0};     ///< Pages run via a program.
  std::atomic<uint64_t> interpreted_pages{0};  ///< Pages run via Expr::Eval.
  std::atomic<uint64_t> compile_fallbacks{0};  ///< Predicates that refused to compile.
  std::atomic<uint64_t> hash_joins{0};         ///< Page-pair joins on the hash path.
  std::atomic<uint64_t> nested_joins{0};       ///< Page-pair joins on nested loops.
  std::atomic<uint64_t> hash_build_collisions{0};  ///< Build-side slot probes.

  KernelStatsSnapshot Snapshot() const {
    KernelStatsSnapshot s;
    s.compiled_pages = compiled_pages.load(std::memory_order_relaxed);
    s.interpreted_pages = interpreted_pages.load(std::memory_order_relaxed);
    s.compile_fallbacks = compile_fallbacks.load(std::memory_order_relaxed);
    s.hash_joins = hash_joins.load(std::memory_order_relaxed);
    s.nested_joins = nested_joins.load(std::memory_order_relaxed);
    s.hash_build_collisions =
        hash_build_collisions.load(std::memory_order_relaxed);
    return s;
  }
};

/// \brief Reusable hash-table scratch for the equijoin fast path. One per
/// worker/kernel; JoinPages sizes it per inner page, so repeated calls do
/// not reallocate once the vectors reach steady state.
struct JoinScratch {
  std::vector<uint64_t> slot_hash;  ///< Full hash of the slot's key.
  std::vector<int32_t> head;        ///< Slot -> first inner tuple, -1 empty.
  std::vector<int32_t> tail;        ///< Slot -> last inner tuple in chain.
  std::vector<int32_t> next;        ///< Inner tuple -> next with equal key.
};

/// \brief Emits tuples of \p in satisfying \p pred (the `restrict` operator
/// applied to one page). Interpreted reference flavour.
Status RestrictPage(const Schema& schema, const Expr& pred, const Page& in,
                    PageSink* out);

/// \brief Compiled restrict: runs the predicate program over every tuple.
Status RestrictPage(const CompiledPredicate& pred, const Page& in,
                    PageSink* out, KernelStats* stats = nullptr);

/// \brief Emits the \p indices columns of every tuple of \p in (projection
/// without duplicate elimination; see DuplicateEliminator for full project).
/// Adjacent source columns are merged into runs and emitted via
/// PageSink::EmitParts, so no per-tuple buffer is materialized.
Status ProjectPage(const Schema& schema, const std::vector<int>& indices,
                   const Page& in, PageSink* out);

/// \brief Joins one outer page against one inner page with the nested-loops
/// method: every outer tuple against every inner tuple, emitting
/// outer ++ inner whenever \p pred holds. Interpreted reference flavour.
///
/// This is the page-granularity unit of the paper's join: "each processor
/// will join a distinct set of pages from the outer relation with all the
/// pages of the inner relation" (Section 4.0).
Status JoinPages(const Schema& outer_schema, const Schema& inner_schema,
                 const Expr& pred, const Page& outer, const Page& inner,
                 PageSink* out);

/// \brief Compiled join. When \p pred carries equi-keys, builds an
/// open-addressing hash table over the inner page in \p scratch and probes
/// it with the outer page (O(n+m) instead of O(n*m)); otherwise runs
/// program-driven nested loops. Output tuple order is identical to the
/// nested-loops flavour in both cases: probes emit matches in ascending
/// inner order, outer-major.
Status JoinPages(const CompiledJoinPredicate& pred, const Page& outer,
                 const Page& inner, JoinScratch* scratch, PageSink* out,
                 KernelStats* stats = nullptr);

/// \brief Runs a fused unary pipeline (restrict/project chain compiled by
/// the optimizer's per-edge decision; see FusedPipeline in expr_compile.h)
/// over one raw input page in a single pass, emitting surviving — possibly
/// projected — tuples straight into \p out. None of the chain's
/// intermediate pages are ever materialized; a mid-chain projection that
/// feeds a later filter is staged per tuple in a small scratch buffer.
Status RunFusedPipeline(const FusedPipeline& fp, const Page& in,
                        PageSink* out, KernelStats* stats = nullptr);

/// \brief Copies every tuple of \p in to \p out (union branch plumbing).
Status CopyPage(const Page& in, PageSink* out);

/// \brief Counts tuples of \p in satisfying \p pred without emitting
/// (selectivity probes in the workload generator). Compiles the predicate
/// internally and falls back to interpretation when compilation fails.
StatusOr<uint64_t> CountMatches(const Schema& schema, const Expr& pred,
                                const Page& in, KernelStats* stats = nullptr);

/// \brief Compiled count for callers that already hold a program.
uint64_t CountMatches(const CompiledPredicate& pred, const Page& in,
                      KernelStats* stats = nullptr);

}  // namespace dfdb

#endif  // DFDB_OPERATORS_KERNELS_H_

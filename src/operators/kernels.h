/// \file kernels.h
/// \brief Stateless page-at-a-time operator kernels.
///
/// These are the computations an instruction processor performs on the data
/// page(s) of one instruction packet. Both execution engines call them: the
/// multithreaded engine directly, the machine simulator to derive result
/// sizes for its timing model.

#ifndef DFDB_OPERATORS_KERNELS_H_
#define DFDB_OPERATORS_KERNELS_H_

#include <vector>

#include "catalog/schema.h"
#include "operators/page_sink.h"
#include "ra/expr.h"
#include "storage/page.h"
#include "storage/tuple.h"

namespace dfdb {

/// \brief Emits tuples of \p in satisfying \p pred (the `restrict` operator
/// applied to one page).
Status RestrictPage(const Schema& schema, const Expr& pred, const Page& in,
                    PageSink* out);

/// \brief Emits the \p indices columns of every tuple of \p in (projection
/// without duplicate elimination; see DuplicateEliminator for full project).
Status ProjectPage(const Schema& schema, const std::vector<int>& indices,
                   const Page& in, PageSink* out);

/// \brief Joins one outer page against one inner page with the nested-loops
/// method: every outer tuple against every inner tuple, emitting
/// outer ++ inner whenever \p pred holds.
///
/// This is the page-granularity unit of the paper's join: "each processor
/// will join a distinct set of pages from the outer relation with all the
/// pages of the inner relation" (Section 4.0).
Status JoinPages(const Schema& outer_schema, const Schema& inner_schema,
                 const Expr& pred, const Page& outer, const Page& inner,
                 PageSink* out);

/// \brief Copies every tuple of \p in to \p out (union branch plumbing).
Status CopyPage(const Page& in, PageSink* out);

/// \brief Counts tuples of \p in satisfying \p pred without emitting
/// (selectivity probes in the workload generator).
StatusOr<uint64_t> CountMatches(const Schema& schema, const Expr& pred,
                                const Page& in);

}  // namespace dfdb

#endif  // DFDB_OPERATORS_KERNELS_H_

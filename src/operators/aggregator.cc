#include "operators/aggregator.h"

#include "common/macros.h"

namespace dfdb {

StatusOr<Aggregator> Aggregator::Create(const Schema& input_schema,
                                        const Schema& output_schema,
                                        const std::vector<std::string>& group_by,
                                        std::vector<AggregateSpec> specs) {
  std::vector<int> group_indices;
  group_indices.reserve(group_by.size());
  for (const std::string& name : group_by) {
    DFDB_ASSIGN_OR_RETURN(int idx, input_schema.ColumnIndex(name));
    group_indices.push_back(idx);
  }
  std::vector<int> agg_indices;
  agg_indices.reserve(specs.size());
  for (const AggregateSpec& spec : specs) {
    if (spec.func == AggregateSpec::Func::kCount) {
      agg_indices.push_back(-1);
    } else {
      DFDB_ASSIGN_OR_RETURN(int idx, input_schema.ColumnIndex(spec.column));
      agg_indices.push_back(idx);
    }
  }
  return Aggregator(input_schema, output_schema, std::move(group_indices),
                    std::move(specs), std::move(agg_indices));
}

Status Aggregator::Consume(const Page& page) {
  for (int t = 0; t < page.num_tuples(); ++t) {
    TupleView view(&input_schema_, page.tuple(t));
    // Group key: raw bytes of the group columns in order.
    std::string key;
    for (int gi : group_indices_) {
      const Slice raw = view.GetRaw(gi);
      key.append(raw.data(), raw.size());
    }
    auto [it, inserted] = groups_.try_emplace(std::move(key));
    GroupState& state = it->second;
    if (inserted) {
      state.group_values.reserve(group_indices_.size());
      for (int gi : group_indices_) {
        DFDB_ASSIGN_OR_RETURN(Value v, view.GetValue(gi));
        state.group_values.push_back(std::move(v));
      }
      state.aggs.resize(specs_.size());
    }
    for (size_t s = 0; s < specs_.size(); ++s) {
      AggState& agg = state.aggs[s];
      agg.count++;
      if (agg_indices_[s] < 0) continue;  // COUNT needs no value.
      DFDB_ASSIGN_OR_RETURN(Value v, view.GetValue(agg_indices_[s]));
      switch (specs_[s].func) {
        case AggregateSpec::Func::kCount:
          break;
        case AggregateSpec::Func::kSum:
        case AggregateSpec::Func::kAvg: {
          DFDB_ASSIGN_OR_RETURN(double d, v.AsNumeric());
          agg.sum_double += d;
          if (v.type() == ColumnType::kInt32) agg.sum_int += v.as_int32();
          if (v.type() == ColumnType::kInt64) agg.sum_int += v.as_int64();
          break;
        }
        case AggregateSpec::Func::kMin: {
          if (!agg.min.has_value()) {
            agg.min = v;
          } else {
            DFDB_ASSIGN_OR_RETURN(int c, v.Compare(*agg.min));
            if (c < 0) agg.min = v;
          }
          break;
        }
        case AggregateSpec::Func::kMax: {
          if (!agg.max.has_value()) {
            agg.max = v;
          } else {
            DFDB_ASSIGN_OR_RETURN(int c, v.Compare(*agg.max));
            if (c > 0) agg.max = v;
          }
          break;
        }
      }
    }
  }
  return Status::OK();
}

Status Aggregator::Finish(PageSink* out) {
  for (auto& [key, state] : groups_) {
    std::vector<Value> row = state.group_values;
    for (size_t s = 0; s < specs_.size(); ++s) {
      const AggState& agg = state.aggs[s];
      const int out_col = static_cast<int>(group_indices_.size() + s);
      const ColumnType out_type = output_schema_.column(out_col).type;
      switch (specs_[s].func) {
        case AggregateSpec::Func::kCount:
          row.push_back(Value::Int64(agg.count));
          break;
        case AggregateSpec::Func::kSum:
          if (out_type == ColumnType::kInt64) {
            row.push_back(Value::Int64(agg.sum_int));
          } else {
            row.push_back(Value::Double(agg.sum_double));
          }
          break;
        case AggregateSpec::Func::kAvg:
          row.push_back(Value::Double(
              agg.count == 0 ? 0.0
                             : agg.sum_double / static_cast<double>(agg.count)));
          break;
        case AggregateSpec::Func::kMin:
          if (!agg.min.has_value()) {
            return Status::Internal("MIN over empty group");
          }
          row.push_back(*agg.min);
          break;
        case AggregateSpec::Func::kMax:
          if (!agg.max.has_value()) {
            return Status::Internal("MAX over empty group");
          }
          row.push_back(*agg.max);
          break;
      }
    }
    DFDB_ASSIGN_OR_RETURN(std::string encoded, EncodeTuple(output_schema_, row));
    DFDB_RETURN_IF_ERROR(out->Emit(Slice(encoded)));
  }
  groups_.clear();
  return Status::OK();
}

}  // namespace dfdb

#include "operators/kernels.h"

#include "common/macros.h"

namespace dfdb {

Status RestrictPage(const Schema& schema, const Expr& pred, const Page& in,
                    PageSink* out) {
  for (int i = 0; i < in.num_tuples(); ++i) {
    TupleView view(&schema, in.tuple(i));
    DFDB_ASSIGN_OR_RETURN(bool keep, pred.EvalBool(view, nullptr));
    if (keep) {
      DFDB_RETURN_IF_ERROR(out->Emit(in.tuple(i)));
    }
  }
  return Status::OK();
}

Status ProjectPage(const Schema& schema, const std::vector<int>& indices,
                   const Page& in, PageSink* out) {
  for (int i = 0; i < in.num_tuples(); ++i) {
    const std::string projected = ProjectTuple(schema, in.tuple(i), indices);
    DFDB_RETURN_IF_ERROR(out->Emit(Slice(projected)));
  }
  return Status::OK();
}

Status JoinPages(const Schema& outer_schema, const Schema& inner_schema,
                 const Expr& pred, const Page& outer, const Page& inner,
                 PageSink* out) {
  for (int i = 0; i < outer.num_tuples(); ++i) {
    TupleView outer_view(&outer_schema, outer.tuple(i));
    for (int j = 0; j < inner.num_tuples(); ++j) {
      TupleView inner_view(&inner_schema, inner.tuple(j));
      DFDB_ASSIGN_OR_RETURN(bool match, pred.EvalBool(outer_view, &inner_view));
      if (match) {
        const std::string joined = ConcatTuples(outer.tuple(i), inner.tuple(j));
        DFDB_RETURN_IF_ERROR(out->Emit(Slice(joined)));
      }
    }
  }
  return Status::OK();
}

Status CopyPage(const Page& in, PageSink* out) {
  for (int i = 0; i < in.num_tuples(); ++i) {
    DFDB_RETURN_IF_ERROR(out->Emit(in.tuple(i)));
  }
  return Status::OK();
}

StatusOr<uint64_t> CountMatches(const Schema& schema, const Expr& pred,
                                const Page& in) {
  uint64_t n = 0;
  for (int i = 0; i < in.num_tuples(); ++i) {
    TupleView view(&schema, in.tuple(i));
    DFDB_ASSIGN_OR_RETURN(bool keep, pred.EvalBool(view, nullptr));
    if (keep) ++n;
  }
  return n;
}

}  // namespace dfdb

#include "operators/kernels.h"

#include <cstring>

#include "common/hash.h"
#include "common/macros.h"

namespace dfdb {

namespace {

inline void CountRelaxed(std::atomic<uint64_t>* c, uint64_t n = 1) {
  c->fetch_add(n, std::memory_order_relaxed);
}

/// Hashes the equi-key columns of one tuple, chaining parts through
/// Hash64's seed. CHAR parts hash their right-trimmed bytes so that tuples
/// whose keys differ only in blank padding (which Value::Compare treats as
/// equal) land in the same slot.
template <bool kOuter>
uint64_t HashKey(const std::vector<EquiKey>& keys, const char* t) {
  uint64_t h = 0;
  for (const EquiKey& k : keys) {
    const int32_t off = kOuter ? k.outer_offset : k.inner_offset;
    const int32_t width = kOuter ? k.outer_width : k.inner_width;
    const char* p = t + off;
    const size_t n = k.type == ColumnType::kChar
                         ? TrimmedCharLen(p, width)
                         : static_cast<size_t>(width);
    h = Hash64(p, n, h ^ 0xcbf29ce484222325ULL);
  }
  return h;
}

inline bool KeyPartEquals(const EquiKey& k, const char* a, int32_t a_off,
                          int32_t a_width, const char* b, int32_t b_off,
                          int32_t b_width) {
  const char* pa = a + a_off;
  const char* pb = b + b_off;
  if (k.type == ColumnType::kChar) {
    const size_t na = TrimmedCharLen(pa, a_width);
    const size_t nb = TrimmedCharLen(pb, b_width);
    return na == nb && (na == 0 || std::memcmp(pa, pb, na) == 0);
  }
  // Identical non-double fixed types: raw-byte equality is value equality.
  return std::memcmp(pa, pb, static_cast<size_t>(a_width)) == 0;
}

bool KeysEqualOuterInner(const std::vector<EquiKey>& keys, const char* outer,
                         const char* inner) {
  for (const EquiKey& k : keys) {
    if (!KeyPartEquals(k, outer, k.outer_offset, k.outer_width, inner,
                       k.inner_offset, k.inner_width)) {
      return false;
    }
  }
  return true;
}

bool KeysEqualInnerInner(const std::vector<EquiKey>& keys, const char* a,
                         const char* b) {
  for (const EquiKey& k : keys) {
    if (!KeyPartEquals(k, a, k.inner_offset, k.inner_width, b, k.inner_offset,
                       k.inner_width)) {
      return false;
    }
  }
  return true;
}

Status HashJoinPages(const CompiledJoinPredicate& pred, const Page& outer,
                     const Page& inner, JoinScratch* scratch, PageSink* out,
                     KernelStats* stats) {
  const std::vector<EquiKey>& keys = pred.keys();
  const int m = inner.num_tuples();

  // Build: open-addressing table over the inner page, >= 2x occupancy.
  // Duplicate keys chain in ascending inner order so the probe below emits
  // exactly the sequence the nested-loops flavour would.
  size_t nslots = 16;
  while (nslots < static_cast<size_t>(m) * 2) nslots <<= 1;
  const uint64_t mask = nslots - 1;
  scratch->slot_hash.assign(nslots, 0);
  scratch->head.assign(nslots, -1);
  scratch->tail.assign(nslots, -1);
  scratch->next.assign(static_cast<size_t>(m), -1);
  uint64_t collisions = 0;
  for (int j = 0; j < m; ++j) {
    const char* t = inner.tuple(j).data();
    const uint64_t h = HashKey</*kOuter=*/false>(keys, t);
    size_t s = h & mask;
    for (;;) {
      if (scratch->head[s] < 0) {
        scratch->slot_hash[s] = h;
        scratch->head[s] = j;
        scratch->tail[s] = j;
        break;
      }
      if (scratch->slot_hash[s] == h &&
          KeysEqualInnerInner(keys, inner.tuple(scratch->head[s]).data(), t)) {
        scratch->next[scratch->tail[s]] = j;
        scratch->tail[s] = j;
        break;
      }
      ++collisions;
      s = (s + 1) & mask;
    }
  }
  if (stats != nullptr) {
    CountRelaxed(&stats->hash_joins);
    if (collisions != 0) CountRelaxed(&stats->hash_build_collisions, collisions);
  }

  // Probe: one lookup per outer tuple, then walk the key's chain.
  for (int i = 0; i < outer.num_tuples(); ++i) {
    const Slice outer_tuple = outer.tuple(i);
    const char* ot = outer_tuple.data();
    const uint64_t h = HashKey</*kOuter=*/true>(keys, ot);
    size_t s = h & mask;
    for (;;) {
      const int32_t head = scratch->head[s];
      if (head < 0) break;  // No inner tuple has this key.
      if (scratch->slot_hash[s] == h &&
          KeysEqualOuterInner(keys, ot, inner.tuple(head).data())) {
        for (int32_t j = head; j >= 0; j = scratch->next[j]) {
          const Slice inner_tuple = inner.tuple(j);
          if (pred.ResidualMatches(ot, inner_tuple.data())) {
            const Slice parts[2] = {outer_tuple, inner_tuple};
            DFDB_RETURN_IF_ERROR(out->EmitParts(parts, 2));
          }
        }
        break;
      }
      s = (s + 1) & mask;
    }
  }
  return Status::OK();
}

/// Runs the strided per-tuple loop of a restrict with \p eval inlined.
/// Walking raw page bytes (base + i*stride) instead of re-constructing a
/// Slice per tuple keeps the loop down to load/compare/branch.
template <typename Eval>
Status RestrictLoop(const Page& in, PageSink* out, Eval eval) {
  const int n = in.num_tuples();
  const size_t stride = static_cast<size_t>(in.tuple_width());
  const char* base = n > 0 ? in.tuple(0).data() : nullptr;
  for (int i = 0; i < n; ++i) {
    const char* t = base + static_cast<size_t>(i) * stride;
    if (eval(t)) {
      DFDB_RETURN_IF_ERROR(out->Emit(Slice(t, stride)));
    }
  }
  return Status::OK();
}

template <typename Eval>
uint64_t CountLoop(const Page& in, Eval eval) {
  const int n = in.num_tuples();
  const size_t stride = static_cast<size_t>(in.tuple_width());
  const char* base = n > 0 ? in.tuple(0).data() : nullptr;
  uint64_t count = 0;
  for (int i = 0; i < n; ++i) {
    if (eval(base + static_cast<size_t>(i) * stride)) ++count;
  }
  return count;
}

/// Invokes \p body with a monomorphic evaluator for the single compare
/// \p c: the kind dispatch and the constant/offset loads happen once per
/// page here, so the per-tuple work the compiler sees inside the loop is
/// just load + compare.
template <typename Body>
auto WithCompareEval(const ColCompare& c, Body body) {
  using expr_detail::ApplyCmp;
  using expr_detail::Cmp3F;
  using expr_detail::Cmp3I;
  using expr_detail::Cmp3S;
  using expr_detail::LoadF64;
  using expr_detail::LoadI32;
  using expr_detail::LoadI64;
  using expr_detail::TrimmedLen;
  const CompareOp op = c.op;
  const int32_t off = c.offset;
  switch (c.kind) {
    case ColCompare::Kind::kI32I: {
      const int64_t k = c.const_i;
      return body(
          [=](const char* t) { return ApplyCmp(op, Cmp3I(LoadI32(t, off), k)); });
    }
    case ColCompare::Kind::kI64I: {
      const int64_t k = c.const_i;
      return body(
          [=](const char* t) { return ApplyCmp(op, Cmp3I(LoadI64(t, off), k)); });
    }
    case ColCompare::Kind::kI32F: {
      const double k = c.const_f;
      return body([=](const char* t) {
        return ApplyCmp(op, Cmp3F(static_cast<double>(LoadI32(t, off)), k));
      });
    }
    case ColCompare::Kind::kI64F: {
      const double k = c.const_f;
      return body([=](const char* t) {
        return ApplyCmp(op, Cmp3F(static_cast<double>(LoadI64(t, off)), k));
      });
    }
    case ColCompare::Kind::kF64F: {
      const double k = c.const_f;
      return body(
          [=](const char* t) { return ApplyCmp(op, Cmp3F(LoadF64(t, off), k)); });
    }
    case ColCompare::Kind::kStr: {
      const int32_t w = c.width;
      const char* s = c.const_s.data();
      const uint32_t sn = static_cast<uint32_t>(c.const_s.size());
      return body([=](const char* t) {
        const char* p = t + off;
        return ApplyCmp(op, Cmp3S(p, TrimmedLen(p, w), s, sn));
      });
    }
  }
  return body([](const char*) { return false; });  // Unreachable.
}

}  // namespace

Status RestrictPage(const Schema& schema, const Expr& pred, const Page& in,
                    PageSink* out) {
  for (int i = 0; i < in.num_tuples(); ++i) {
    TupleView view(&schema, in.tuple(i));
    DFDB_ASSIGN_OR_RETURN(bool keep, pred.EvalBool(view, nullptr));
    if (keep) {
      DFDB_RETURN_IF_ERROR(out->Emit(in.tuple(i)));
    }
  }
  return Status::OK();
}

Status RestrictPage(const CompiledPredicate& pred, const Page& in,
                    PageSink* out, KernelStats* stats) {
  if (stats != nullptr) CountRelaxed(&stats->compiled_pages);
  switch (pred.shape()) {
    case CompiledPredicate::Shape::kSingleCompare:
      return WithCompareEval(pred.col_compares()[0], [&](auto eval) {
        return RestrictLoop(in, out, eval);
      });
    case CompiledPredicate::Shape::kConjunction: {
      const std::vector<ColCompare>& cmps = pred.col_compares();
      return RestrictLoop(in, out, [&](const char* t) {
        for (const ColCompare& c : cmps) {
          if (!expr_detail::EvalColCompare(c, t)) return false;
        }
        return true;
      });
    }
    case CompiledPredicate::Shape::kGeneric:
      break;
  }
  return RestrictLoop(in, out,
                      [&](const char* t) { return pred.Matches(t, nullptr); });
}

Status ProjectPage(const Schema& schema, const std::vector<int>& indices,
                   const Page& in, PageSink* out) {
  // Merge adjacent source columns into (offset, width) runs once per page;
  // each tuple is then emitted as borrowed ranges, copy-free until the sink.
  struct Run {
    int offset;
    int width;
  };
  std::vector<Run> runs;
  runs.reserve(indices.size());
  for (int i : indices) {
    const int off = schema.offset(i);
    const int width = schema.column(i).width;
    if (!runs.empty() && runs.back().offset + runs.back().width == off) {
      runs.back().width += width;
    } else {
      runs.push_back(Run{off, width});
    }
  }
  std::vector<Slice> parts(runs.size());
  for (int i = 0; i < in.num_tuples(); ++i) {
    const char* t = in.tuple(i).data();
    for (size_t r = 0; r < runs.size(); ++r) {
      parts[r] = Slice(t + runs[r].offset, static_cast<size_t>(runs[r].width));
    }
    DFDB_RETURN_IF_ERROR(out->EmitParts(parts.data(), parts.size()));
  }
  return Status::OK();
}

Status JoinPages(const Schema& outer_schema, const Schema& inner_schema,
                 const Expr& pred, const Page& outer, const Page& inner,
                 PageSink* out) {
  for (int i = 0; i < outer.num_tuples(); ++i) {
    TupleView outer_view(&outer_schema, outer.tuple(i));
    for (int j = 0; j < inner.num_tuples(); ++j) {
      TupleView inner_view(&inner_schema, inner.tuple(j));
      DFDB_ASSIGN_OR_RETURN(bool match, pred.EvalBool(outer_view, &inner_view));
      if (match) {
        const Slice parts[2] = {outer.tuple(i), inner.tuple(j)};
        DFDB_RETURN_IF_ERROR(out->EmitParts(parts, 2));
      }
    }
  }
  return Status::OK();
}

Status JoinPages(const CompiledJoinPredicate& pred, const Page& outer,
                 const Page& inner, JoinScratch* scratch, PageSink* out,
                 KernelStats* stats) {
  if (pred.hash_eligible() && scratch != nullptr) {
    return HashJoinPages(pred, outer, inner, scratch, out, stats);
  }
  if (stats != nullptr) CountRelaxed(&stats->nested_joins);
  for (int i = 0; i < outer.num_tuples(); ++i) {
    const Slice outer_tuple = outer.tuple(i);
    for (int j = 0; j < inner.num_tuples(); ++j) {
      const Slice inner_tuple = inner.tuple(j);
      if (pred.Matches(outer_tuple.data(), inner_tuple.data())) {
        const Slice parts[2] = {outer_tuple, inner_tuple};
        DFDB_RETURN_IF_ERROR(out->EmitParts(parts, 2));
      }
    }
  }
  return Status::OK();
}

Status RunFusedPipeline(const FusedPipeline& fp, const Page& in,
                        PageSink* out, KernelStats* stats) {
  if (stats != nullptr) CountRelaxed(&stats->compiled_pages);
  const std::vector<FusedPipeline::Step>& steps = fp.steps();
  const int n = in.num_tuples();
  const size_t stride = static_cast<size_t>(in.tuple_width());
  const char* base = n > 0 ? in.tuple(0).data() : nullptr;
  // Two alternating scratch buffers for mid-chain projections (a step may
  // read from the buffer the previous projection wrote).
  std::string scratch[2];
  int flip = 0;
  std::vector<Slice> parts;
  for (int i = 0; i < n; ++i) {
    const char* cur = base + static_cast<size_t>(i) * stride;
    bool keep = true;
    bool emitted = false;
    for (size_t s = 0; s < steps.size(); ++s) {
      const FusedPipeline::Step& step = steps[s];
      if (step.kind == FusedPipeline::Step::Kind::kFilter) {
        if (!step.filter.Matches(cur, nullptr)) {
          keep = false;
          break;
        }
        continue;
      }
      // Projection. The last step emits borrowed ranges copy-free; one
      // that feeds a later step gathers into scratch instead.
      if (s + 1 == steps.size()) {
        parts.resize(step.runs.size());
        for (size_t r = 0; r < step.runs.size(); ++r) {
          parts[r] = Slice(cur + step.runs[r].offset,
                           static_cast<size_t>(step.runs[r].width));
        }
        DFDB_RETURN_IF_ERROR(out->EmitParts(parts.data(), parts.size()));
        emitted = true;
        break;
      }
      std::string& buf = scratch[flip];
      flip ^= 1;
      buf.clear();
      for (const FusedPipeline::ColumnRun& run : step.runs) {
        buf.append(cur + run.offset, static_cast<size_t>(run.width));
      }
      cur = buf.data();
    }
    if (keep && !emitted) {
      DFDB_RETURN_IF_ERROR(
          out->Emit(Slice(cur, static_cast<size_t>(fp.output_width()))));
    }
  }
  return Status::OK();
}

Status CopyPage(const Page& in, PageSink* out) {
  for (int i = 0; i < in.num_tuples(); ++i) {
    DFDB_RETURN_IF_ERROR(out->Emit(in.tuple(i)));
  }
  return Status::OK();
}

StatusOr<uint64_t> CountMatches(const Schema& schema, const Expr& pred,
                                const Page& in, KernelStats* stats) {
  auto compiled = CompiledPredicate::Compile(pred, schema);
  if (compiled.ok()) {
    return CountMatches(*compiled, in, stats);
  }
  if (stats != nullptr) {
    CountRelaxed(&stats->compile_fallbacks);
    CountRelaxed(&stats->interpreted_pages);
  }
  uint64_t n = 0;
  for (int i = 0; i < in.num_tuples(); ++i) {
    TupleView view(&schema, in.tuple(i));
    DFDB_ASSIGN_OR_RETURN(bool keep, pred.EvalBool(view, nullptr));
    if (keep) ++n;
  }
  return n;
}

uint64_t CountMatches(const CompiledPredicate& pred, const Page& in,
                      KernelStats* stats) {
  if (stats != nullptr) CountRelaxed(&stats->compiled_pages);
  switch (pred.shape()) {
    case CompiledPredicate::Shape::kSingleCompare:
      return WithCompareEval(pred.col_compares()[0],
                             [&](auto eval) { return CountLoop(in, eval); });
    case CompiledPredicate::Shape::kConjunction: {
      const std::vector<ColCompare>& cmps = pred.col_compares();
      return CountLoop(in, [&](const char* t) {
        for (const ColCompare& c : cmps) {
          if (!expr_detail::EvalColCompare(c, t)) return false;
        }
        return true;
      });
    }
    case CompiledPredicate::Shape::kGeneric:
      break;
  }
  return CountLoop(in, [&](const char* t) { return pred.Matches(t, nullptr); });
}

}  // namespace dfdb

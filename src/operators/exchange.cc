/// \file exchange.cc

#include "operators/exchange.h"

#include <utility>

#include "common/string_util.h"

namespace dfdb {

StatusOr<ExchangeKey> ExchangeKey::FromColumns(
    const Schema& schema, const std::vector<int>& column_indices) {
  ExchangeKey key;
  key.parts_.reserve(column_indices.size());
  for (const int idx : column_indices) {
    if (idx < 0 || idx >= schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("exchange key column %d out of range", idx));
    }
    const Column& col = schema.column(idx);
    if (col.type == ColumnType::kDouble) {
      return Status::InvalidArgument(StrFormat(
          "exchange key column '%s' is DOUBLE (bit pattern not "
          "equality-stable)",
          col.name.c_str()));
    }
    key.parts_.emplace_back(schema.offset(idx), col.width);
  }
  return key;
}

ExchangePartitioner::ExchangePartitioner(int partitions, ExchangeKey key,
                                         int tuple_width,
                                         size_t target_batch_bytes, Emit emit)
    : partitions_(partitions),
      key_(std::move(key)),
      tuple_width_(tuple_width),
      target_batch_bytes_(target_batch_bytes),
      emit_(std::move(emit)),
      buffers_(static_cast<size_t>(partitions)),
      counts_(static_cast<size_t>(partitions), 0) {}

void ExchangePartitioner::Add(Slice tuple) {
  const int p =
      key_.empty() ? 0 : key_.PartitionOf(tuple, partitions_);
  buffers_[static_cast<size_t>(p)].append(tuple.data(), tuple.size());
  ++counts_[static_cast<size_t>(p)];
  ++tuples_routed_;
  if (buffers_[static_cast<size_t>(p)].size() >= target_batch_bytes_) {
    EmitPartition(p);
  }
}

void ExchangePartitioner::Flush() {
  for (int p = 0; p < partitions_; ++p) {
    if (counts_[static_cast<size_t>(p)] > 0) EmitPartition(p);
  }
}

void ExchangePartitioner::EmitPartition(int p) {
  emit_(p, counts_[static_cast<size_t>(p)],
        std::move(buffers_[static_cast<size_t>(p)]));
  buffers_[static_cast<size_t>(p)].clear();
  counts_[static_cast<size_t>(p)] = 0;
}

}  // namespace dfdb

/// \file page_sink.h
/// \brief Output collection for page-at-a-time operator kernels.

#ifndef DFDB_OPERATORS_PAGE_SINK_H_
#define DFDB_OPERATORS_PAGE_SINK_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "storage/page.h"

namespace dfdb {

/// \brief Consumer of encoded result tuples.
class PageSink {
 public:
  virtual ~PageSink() = default;
  /// Accepts one encoded tuple of the sink's schema width.
  virtual Status Emit(Slice tuple) = 0;

  /// Accepts one tuple given as \p n byte ranges (join: outer ++ inner;
  /// project: column runs of the source tuple). Sinks that buffer pages
  /// override this to copy the ranges straight into the page, so kernels
  /// never materialize an intermediate tuple. The default assembles a
  /// temporary and calls Emit(), keeping third-party sinks correct.
  virtual Status EmitParts(const Slice* parts, size_t n) {
    std::string buf;
    size_t total = 0;
    for (size_t i = 0; i < n; ++i) total += parts[i].size();
    buf.reserve(total);
    for (size_t i = 0; i < n; ++i) buf.append(parts[i].data(), parts[i].size());
    return Emit(Slice(buf));
  }

  /// Accepts a whole produced page (pass-through kernels and fused
  /// pipelines with nothing to do). The default emits tuple by tuple;
  /// page-packing sinks override it to forward full pages of the right
  /// width without re-copying, mirroring Edge::EmitPage.
  virtual Status EmitPage(const PagePtr& page) {
    for (int i = 0; i < page->num_tuples(); ++i) {
      DFDB_RETURN_IF_ERROR(Emit(page->tuple(i)));
    }
    return Status::OK();
  }
};

/// \brief PageSink that packs tuples into fixed-size pages and hands each
/// full page to a flush callback; Finish() flushes the final partial page.
///
/// This mirrors the IPs' behaviour: "Tuples of the result relation are first
/// placed by the IP in an internal buffer" (Section 4.2), shipped out a page
/// at a time.
class PagedSink final : public PageSink {
 public:
  using FlushFn = std::function<Status(PagePtr)>;

  PagedSink(RelationId relation, int tuple_width, int page_bytes, FlushFn flush)
      : relation_(relation),
        tuple_width_(tuple_width),
        page_bytes_(page_bytes),
        flush_(std::move(flush)) {}

  DFDB_DISALLOW_COPY(PagedSink);

  Status Emit(Slice tuple) override {
    DFDB_RETURN_IF_ERROR(EnsurePage());
    DFDB_RETURN_IF_ERROR(current_->Append(tuple));
    ++tuples_emitted_;
    if (current_->full()) return FlushCurrent();
    return Status::OK();
  }

  Status EmitParts(const Slice* parts, size_t n) override {
    DFDB_RETURN_IF_ERROR(EnsurePage());
    DFDB_RETURN_IF_ERROR(current_->AppendParts(parts, n));
    ++tuples_emitted_;
    if (current_->full()) return FlushCurrent();
    return Status::OK();
  }

  Status EmitPage(const PagePtr& page) override {
    // A full page of the right width passes straight to the flush callback
    // when nothing is buffered ahead of it (order would break otherwise).
    if ((current_ == nullptr || current_->empty()) && page->full() &&
        page->tuple_width() == tuple_width_) {
      tuples_emitted_ += static_cast<uint64_t>(page->num_tuples());
      ++pages_flushed_;
      return flush_(page);
    }
    for (int i = 0; i < page->num_tuples(); ++i) {
      DFDB_RETURN_IF_ERROR(Emit(page->tuple(i)));
    }
    return Status::OK();
  }

  /// Flushes any buffered partial page. Must be called exactly once at
  /// end-of-input (the "flush-when-done" flag of Figure 4.3).
  Status Finish() {
    if (current_ != nullptr && !current_->empty()) return FlushCurrent();
    current_.reset();
    return Status::OK();
  }

  uint64_t tuples_emitted() const { return tuples_emitted_; }
  uint64_t pages_flushed() const { return pages_flushed_; }

 private:
  Status EnsurePage() {
    if (current_ == nullptr) {
      DFDB_ASSIGN_OR_RETURN(Page page,
                            Page::Create(relation_, tuple_width_, page_bytes_));
      current_ = std::make_unique<Page>(std::move(page));
    }
    return Status::OK();
  }

  Status FlushCurrent() {
    ++pages_flushed_;
    PagePtr page = SealPage(std::move(*current_));
    current_.reset();
    return flush_(std::move(page));
  }

  RelationId relation_;
  int tuple_width_;
  int page_bytes_;
  FlushFn flush_;
  std::unique_ptr<Page> current_;
  uint64_t tuples_emitted_ = 0;
  uint64_t pages_flushed_ = 0;
};

/// \brief PageSink that simply collects encoded tuples (for tests).
class VectorSink final : public PageSink {
 public:
  Status Emit(Slice tuple) override {
    tuples_.push_back(tuple.ToString());
    return Status::OK();
  }
  Status EmitParts(const Slice* parts, size_t n) override {
    std::string& t = tuples_.emplace_back();
    for (size_t i = 0; i < n; ++i) t.append(parts[i].data(), parts[i].size());
    return Status::OK();
  }
  const std::vector<std::string>& tuples() const { return tuples_; }

 private:
  std::vector<std::string> tuples_;
};

}  // namespace dfdb

#endif  // DFDB_OPERATORS_PAGE_SINK_H_

#include "operators/sort_merge_join.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"
#include "storage/tuple.h"

namespace dfdb {

namespace {

/// Reference to one tuple inside a page list.
struct TupleRef {
  const Page* page;
  int index;
  Slice tuple() const { return page->tuple(index); }
};

/// Collects refs to every tuple.
std::vector<TupleRef> CollectRefs(const std::vector<PagePtr>& pages) {
  std::vector<TupleRef> refs;
  for (const PagePtr& p : pages) {
    for (int i = 0; i < p->num_tuples(); ++i) {
      refs.push_back(TupleRef{p.get(), i});
    }
  }
  return refs;
}

/// Comparator on a single column of a schema. Requires both sides share the
/// schema; returns a strict weak order.
class ColumnLess {
 public:
  ColumnLess(const Schema* schema, int col) : schema_(schema), col_(col) {}
  bool operator()(const TupleRef& a, const TupleRef& b) const {
    TupleView va(schema_, a.tuple());
    TupleView vb(schema_, b.tuple());
    auto c = va.CompareColumn(col_, vb, col_);
    return c.ok() && *c < 0;
  }

 private:
  const Schema* schema_;
  int col_;
};

}  // namespace

Status SortMergeJoin(const Schema& outer_schema,
                     const std::vector<PagePtr>& outer_pages, int outer_col,
                     const Schema& inner_schema,
                     const std::vector<PagePtr>& inner_pages, int inner_col,
                     PageSink* out) {
  if (outer_col < 0 || outer_col >= outer_schema.num_columns() ||
      inner_col < 0 || inner_col >= inner_schema.num_columns()) {
    return Status::OutOfRange("join column index out of range");
  }
  if (outer_schema.column(outer_col).type != inner_schema.column(inner_col).type) {
    return Status::InvalidArgument("join columns have different types");
  }

  std::vector<TupleRef> outer = CollectRefs(outer_pages);
  std::vector<TupleRef> inner = CollectRefs(inner_pages);
  std::sort(outer.begin(), outer.end(), ColumnLess(&outer_schema, outer_col));
  std::sort(inner.begin(), inner.end(), ColumnLess(&inner_schema, inner_col));

  size_t i = 0, j = 0;
  while (i < outer.size() && j < inner.size()) {
    TupleView vo(&outer_schema, outer[i].tuple());
    TupleView vi(&inner_schema, inner[j].tuple());
    DFDB_ASSIGN_OR_RETURN(int c, vo.CompareColumn(outer_col, vi, inner_col));
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      // Find the extent of the equal-key block on each side.
      size_t i_end = i + 1;
      while (i_end < outer.size()) {
        TupleView v(&outer_schema, outer[i_end].tuple());
        DFDB_ASSIGN_OR_RETURN(int cc, v.CompareColumn(outer_col, vo, outer_col));
        if (cc != 0) break;
        ++i_end;
      }
      size_t j_end = j + 1;
      while (j_end < inner.size()) {
        TupleView v(&inner_schema, inner[j_end].tuple());
        DFDB_ASSIGN_OR_RETURN(int cc, v.CompareColumn(inner_col, vi, inner_col));
        if (cc != 0) break;
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          const Slice parts[2] = {outer[a].tuple(), inner[b].tuple()};
          DFDB_RETURN_IF_ERROR(out->EmitParts(parts, 2));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return Status::OK();
}

}  // namespace dfdb

/// \file exchange.h
/// \brief Hash-partition routing for distributed exchange operators.
///
/// The paper's ring machine routes result packets over the outer ring; the
/// distributed engine routes row batches between `dfdb_server` processes
/// over DFW1 exchange frames (net/protocol.h). This file holds the routing
/// arithmetic shared by every party that must agree on it:
///
///  - load-time hash partitioning of base relations across workers
///    (workload/paper_benchmark.h),
///  - the worker-side exchange *sink* that splits a fragment's result pages
///    into partition-routed batches (net/server.cc),
///  - the coordinator's fragment planner, which relies on both using the
///    same Hash64-over-key-bytes function to prove co-partitioning
///    (dist/fragment.h).
///
/// Keys hash over the raw fixed-width column bytes (no decoding), so the
/// kernel-compiled fast paths can feed the sink without materializing
/// Values.

#ifndef DFDB_OPERATORS_EXCHANGE_H_
#define DFDB_OPERATORS_EXCHANGE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/hash.h"
#include "common/slice.h"
#include "common/statusor.h"

namespace dfdb {

/// \brief Precomputed byte layout of a tuple's partitioning key: the
/// (offset, width) runs of the key columns within the fixed-width tuple.
class ExchangeKey {
 public:
  ExchangeKey() = default;

  /// Resolves \p column_indices against \p schema. Rejects kDouble key
  /// columns: their bit patterns are not equality-stable (-0.0 == +0.0 but
  /// hashes differ), the same exclusion the compiled hash join applies.
  static StatusOr<ExchangeKey> FromColumns(
      const Schema& schema, const std::vector<int>& column_indices);

  bool empty() const { return parts_.empty(); }

  /// Hash of the key bytes of one packed tuple.
  uint64_t Hash(Slice tuple) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& [offset, width] : parts_) {
      h = Hash64(tuple.data() + offset, static_cast<size_t>(width), h);
    }
    return h;
  }

  /// Partition in [0, partitions) for one packed tuple.
  int PartitionOf(Slice tuple, int partitions) const {
    return static_cast<int>(Hash(tuple) % static_cast<uint64_t>(partitions));
  }

 private:
  std::vector<std::pair<int, int>> parts_;  // (byte offset, byte width)
};

/// \brief Splits a stream of packed tuples into per-partition batches of
/// bounded size, emitting each full batch through a callback.
///
/// The emitter receives (partition, num_tuples, packed bytes); batches are
/// cut at \p target_batch_bytes so one exchange frame stays well under the
/// protocol frame cap regardless of result size.
class ExchangePartitioner {
 public:
  using Emit =
      std::function<void(int partition, uint32_t num_tuples, std::string bytes)>;

  ExchangePartitioner(int partitions, ExchangeKey key, int tuple_width,
                      size_t target_batch_bytes, Emit emit);

  /// Routes one packed tuple (exactly tuple_width bytes).
  void Add(Slice tuple);

  /// Emits every non-empty buffered batch.
  void Flush();

  uint64_t tuples_routed() const { return tuples_routed_; }

 private:
  void EmitPartition(int p);

  int partitions_;
  ExchangeKey key_;
  int tuple_width_;
  size_t target_batch_bytes_;
  Emit emit_;
  std::vector<std::string> buffers_;
  std::vector<uint32_t> counts_;
  uint64_t tuples_routed_ = 0;
};

}  // namespace dfdb

#endif  // DFDB_OPERATORS_EXCHANGE_H_

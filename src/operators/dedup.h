/// \file dedup.h
/// \brief Duplicate elimination state for the full `project` operator.
///
/// The paper leaves a parallel project algorithm as future work
/// (Section 5.0). We implement the sequential core here and the
/// partitioned-parallel variant in the engine: tuples are hash-partitioned
/// by content, so each partition's eliminator never sees another
/// partition's duplicates and partitions dedup independently in parallel.

#ifndef DFDB_OPERATORS_DEDUP_H_
#define DFDB_OPERATORS_DEDUP_H_

#include <string>
#include <unordered_set>

#include "common/hash.h"
#include "common/slice.h"

namespace dfdb {

/// \brief Remembers every tuple seen (by content) and reports duplicates.
class DuplicateEliminator {
 public:
  /// Returns true the first time this exact byte string is seen.
  bool Insert(Slice tuple) {
    return seen_.insert(tuple.ToString()).second;
  }

  bool Contains(Slice tuple) const {
    return seen_.count(tuple.ToString()) > 0;
  }

  size_t size() const { return seen_.size(); }
  void Clear() { seen_.clear(); }

 private:
  std::unordered_set<std::string> seen_;
};

/// \brief Stable partition assignment for parallel duplicate elimination:
/// equal tuples always land in the same partition.
inline int DedupPartition(Slice tuple, int num_partitions) {
  return static_cast<int>(Hash64(tuple) % static_cast<uint64_t>(num_partitions));
}

}  // namespace dfdb

#endif  // DFDB_OPERATORS_DEDUP_H_

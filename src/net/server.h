/// \file server.h
/// \brief The host-interface TCP server fronting the resident Scheduler.
///
/// The paper's Section 4.0 master controller "interfaces with the host
/// computer (receives compiled queries and returns results)". `Server` is
/// that interface made real: a poll-based TCP event loop that parses each
/// kQuery frame, plans it through the RAQL parser → analyzer → optimizer,
/// submits it to the shared `Scheduler`, and streams the result relation
/// back page by page as queries complete.
///
/// Design points (each one a load-bearing property, not plumbing — cf.
/// Rödiger et al., "High-Speed Query Processing over High-Speed Networks"):
///
/// - **Pipelining.** A connection may have many requests outstanding;
///   responses are sent in completion order, tagged by request_id.
/// - **Bounded admission.** At most `max_inflight` requests may be
///   submitted-but-unanswered across the server. Excess requests are
///   rejected immediately with kRetryLater — backpressure is pushed to the
///   client instead of queueing unboundedly in server memory.
/// - **Deadlines.** Each request carries an optional deadline; when it
///   expires before completion the client gets kDeadlineExceeded right
///   away while the engine-side query is left to finish and be discarded
///   (the engine has no preemption — Section 2.2's packets run to
///   completion).
/// - **Graceful drain.** Stop() stops accepting, answers every in-flight
///   request, flushes the sockets, then shuts the scheduler down.
/// - **Robustness.** A malformed frame closes only the offending
///   connection; a client disconnect mid-query never crashes the server or
///   leaks the in-flight query (the scheduler still owns and reaps it).

#ifndef DFDB_NET_SERVER_H_
#define DFDB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "common/macros.h"
#include "common/status.h"
#include "engine/scheduler.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "ra/optimizer.h"
#include "storage/storage_engine.h"

namespace dfdb {
namespace net {

/// \brief Configuration of one server instance.
struct ServerOptions {
  /// Address to bind. The default serves loopback only; set "0.0.0.0" to
  /// accept remote hosts.
  std::string host = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;

  /// listen(2) backlog.
  int backlog = 64;

  /// Admission cap: maximum requests submitted to the scheduler and not
  /// yet answered, across all connections. Requests beyond the cap are
  /// rejected with kRetryLater. 0 rejects everything (useful in tests).
  int max_inflight = 64;

  /// Maximum concurrently-open client connections; further accepts are
  /// refused (closed immediately).
  int max_connections = 256;

  /// Per-frame body cap; a bigger length prefix is a protocol error.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Deadline applied to requests that do not carry their own; 0 = none.
  uint32_t default_deadline_ms = 0;

  /// Scheduler (master controller) configuration. The worker pool is
  /// started by the Scheduler constructor unless defer_worker_start is set
  /// (tests use deferral to freeze the engine deterministically).
  SchedulerOptions scheduler;
};

/// \brief Monotonic server-wide counters, exported as net.* metrics.
struct ServerCounters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_refused{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> rejected{0};          ///< kRetryLater responses.
  std::atomic<uint64_t> invalid_requests{0};  ///< Parse/analyze failures.
  std::atomic<uint64_t> protocol_errors{0};   ///< Corrupt frames (conn closed).
  std::atomic<uint64_t> deadline_expired{0};
  std::atomic<uint64_t> disconnects{0};
  std::atomic<uint64_t> orphaned_results{0};  ///< Completions with no client.
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> pings{0};

  // Distributed fragment execution, exported as net.exchange.*.
  std::atomic<uint64_t> fragments{0};          ///< kFragment frames accepted.
  std::atomic<uint64_t> fragment_errors{0};    ///< Fragments answered kError.
  std::atomic<uint64_t> exchange_batches_in{0};
  std::atomic<uint64_t> exchange_batches_out{0};
  std::atomic<uint64_t> exchange_bytes_in{0};   ///< Tuple payload only.
  std::atomic<uint64_t> exchange_bytes_out{0};  ///< Tuple payload only.
  std::atomic<uint64_t> exchange_credits_granted{0};
  std::atomic<uint64_t> exchange_credit_stalls{0};  ///< Output waits on credit.
  std::atomic<uint64_t> exchange_credit_underflows{0};
  std::atomic<uint64_t> exchange_unknown{0};  ///< Frames for no such exchange.
  std::atomic<uint64_t> exchange_eofs{0};
  std::atomic<uint64_t> exchange_broadcast_batches{0};
};

/// \brief TCP front door over one StorageEngine + resident Scheduler.
///
/// Lifecycle: construct → Start() → serve → Stop(). Stop() (and the
/// destructor) drains gracefully and is idempotent. All socket handling
/// runs on one internal event-loop thread; query execution runs on the
/// scheduler's worker pool.
class Server {
 public:
  Server(StorageEngine* storage, ServerOptions options);
  ~Server();
  DFDB_DISALLOW_COPY(Server);

  /// Binds, listens, and starts the event loop. Fails with Unavailable if
  /// the address cannot be bound.
  Status Start();

  /// Graceful drain: stop accepting connections and queries, answer every
  /// in-flight request, flush and close sockets, shut the scheduler down.
  /// Idempotent; also called by the destructor.
  void Stop();

  /// Bound TCP port (after a successful Start()).
  uint16_t port() const { return port_; }

  const ServerOptions& options() const { return options_; }
  const ServerCounters& counters() const { return counters_; }

  /// Registers net.* counters/gauges plus the scheduler's engine.sched.*
  /// into \p registry, so one RunReport covers host → MC → engine.
  void SnapshotMetrics(obs::MetricsRegistry* registry) const;

  /// Lifetime engine aggregate (passthrough to Scheduler::AggregateStats).
  ExecStats AggregateStats() const { return scheduler_.AggregateStats(); }

 private:
  struct LoopState;  // Event-loop-private state (connections, inflight).

  void Loop();
  void Wake();

  StorageEngine* storage_;
  const ServerOptions options_;
  Scheduler scheduler_;
  Optimizer optimizer_;
  ServerCounters counters_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop() wakes the poll loop.
  uint16_t port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> active_connections_{0};
  std::atomic<uint64_t> inflight_now_{0};

  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool stopped_ = false;
  std::thread loop_thread_;
};

}  // namespace net
}  // namespace dfdb

#endif  // DFDB_NET_SERVER_H_

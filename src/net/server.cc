/// \file server.cc
/// \brief Poll-based event loop: framing, admission, response streaming.
///
/// All socket and frame handling runs on one loop thread; query execution
/// runs on the Scheduler's worker pool. The loop polls completion by
/// QueryHandle::Done() — handles are cheap shared-state probes — so no
/// extra thread per request is needed and Submit() is only ever called
/// from the loop thread while Wait() is only called once Done() is true
/// (i.e. it never blocks the loop).

#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "ra/parser.h"

namespace dfdb {
namespace net {

namespace {

using SteadyClock = std::chrono::steady_clock;

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Engine/planner status → wire error category.
WireError StatusToWireError(const Status& status) {
  if (status.IsInvalidArgument() || status.IsNotFound()) {
    return WireError::kInvalidRequest;
  }
  if (status.IsUnavailable() || status.IsCancelled()) {
    return WireError::kShuttingDown;
  }
  return WireError::kInternal;
}

}  // namespace

/// \brief Event-loop-private state. Only the loop thread touches it.
struct Server::LoopState {
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameReader reader;
    /// Encoded frames awaiting the socket; out_offset is the progress
    /// within the front frame.
    std::deque<std::string> outq;
    size_t out_offset = 0;
    bool dead = false;

    explicit Connection(uint32_t max_frame_bytes)
        : reader(max_frame_bytes) {}
  };

  /// One submitted-but-unanswered request. `orphaned` means nobody is
  /// waiting anymore (client disconnected or deadline already answered);
  /// the handle is kept until Done() so the admission gauge keeps counting
  /// the pool resources the query still occupies, then the result is
  /// discarded — the scheduler reaps the runtime either way.
  struct InFlight {
    uint64_t conn_id = 0;
    uint32_t request_id = 0;
    QueryHandle handle;
    bool has_deadline = false;
    SteadyClock::time_point deadline{};
    bool orphaned = false;
  };

  std::map<uint64_t, Connection> conns;
  std::vector<InFlight> inflight;
  uint64_t next_conn_id = 1;
};

Server::Server(StorageEngine* storage, ServerOptions options)
    : storage_(storage),
      options_(std::move(options)),
      scheduler_(storage, options_.scheduler),
      optimizer_(&storage->catalog()) {
  DFDB_CHECK(storage != nullptr);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return Status::FailedPrecondition("server already started");
  if (stopped_) return Status::FailedPrecondition("server already stopped");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrFormat("cannot parse bind address '%s'", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string(s.message()));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string(s.message()));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  if (!SetNonBlocking(listen_fd_) || ::pipe(wake_fds_) != 0 ||
      !SetNonBlocking(wake_fds_[0])) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Errno("server setup");
  }

  started_ = true;
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void Server::Wake() {
  if (wake_fds_[1] >= 0) {
    const char byte = 'w';
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
}

void Server::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (stopped_) return;
  draining_.store(true, std::memory_order_release);
  if (started_) {
    Wake();
    loop_thread_.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int i = 0; i < 2; ++i) {
    if (wake_fds_[i] >= 0) ::close(wake_fds_[i]);
  }
  listen_fd_ = -1;
  wake_fds_[0] = wake_fds_[1] = -1;
  scheduler_.Shutdown();
  stopped_ = true;
}

void Server::SnapshotMetrics(obs::MetricsRegistry* registry) const {
  registry->Set("net.connections", counters_.connections_accepted.load());
  registry->Set("net.connections.refused",
                counters_.connections_refused.load());
  registry->Set("net.connections.active", active_connections_.load());
  registry->Set("net.requests", counters_.requests.load());
  registry->Set("net.rejected", counters_.rejected.load());
  registry->Set("net.invalid_requests", counters_.invalid_requests.load());
  registry->Set("net.protocol_errors", counters_.protocol_errors.load());
  registry->Set("net.deadline_expired", counters_.deadline_expired.load());
  registry->Set("net.disconnects", counters_.disconnects.load());
  registry->Set("net.orphaned_results", counters_.orphaned_results.load());
  registry->Set("net.bytes_in", counters_.bytes_in.load());
  registry->Set("net.bytes_out", counters_.bytes_out.load());
  registry->Set("net.pings", counters_.pings.load());
  registry->Set("net.inflight", inflight_now_.load());
  registry->Set("net.max_inflight",
                static_cast<uint64_t>(std::max(0, options_.max_inflight)));
  scheduler_.SnapshotMetrics(registry);
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void Server::Loop() {
  LoopState state;

  auto send_frame = [&](LoopState::Connection& conn, std::string frame) {
    if (conn.dead) return;
    conn.outq.push_back(std::move(frame));
  };

  auto send_error = [&](LoopState::Connection& conn, uint32_t request_id,
                        WireError code, std::string message) {
    send_frame(conn, EncodeErrorFrame(
                         request_id, ErrorMessage{code, std::move(message)}));
  };

  // Closes the socket and orphans the connection's in-flight requests.
  // The map entry survives until retired requests stop referencing it.
  auto drop_conn = [&](LoopState::Connection& conn) {
    if (conn.dead) return;
    conn.dead = true;
    ::close(conn.fd);
    conn.fd = -1;
    conn.outq.clear();
    counters_.disconnects.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    for (auto& req : state.inflight) {
      if (req.conn_id == conn.id) req.orphaned = true;
    }
  };

  auto handle_query = [&](LoopState::Connection& conn, uint32_t request_id,
                          Slice body) {
    counters_.requests.fetch_add(1, std::memory_order_relaxed);
    auto query = DecodeQuery(body);
    if (!query.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 query.status().ToString());
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      send_error(conn, request_id, WireError::kShuttingDown,
                 "server is draining");
      return;
    }
    if (inflight_now_.load(std::memory_order_relaxed) >=
        static_cast<uint64_t>(std::max(0, options_.max_inflight))) {
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kRetryLater,
                 StrFormat("admission cap of %d in-flight requests reached",
                           options_.max_inflight));
      return;
    }
    auto parsed = ParseQuery(query->text);
    if (!parsed.ok()) {
      counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 parsed.status().ToString());
      return;
    }
    auto optimized = optimizer_.Optimize(**parsed);
    if (!optimized.ok()) {
      counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 optimized.status().ToString());
      return;
    }
    auto handle = scheduler_.Submit(**optimized);
    if (!handle.ok()) {
      const WireError code = StatusToWireError(handle.status());
      if (code == WireError::kInvalidRequest) {
        counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      }
      send_error(conn, request_id, code, handle.status().ToString());
      return;
    }
    LoopState::InFlight req;
    req.conn_id = conn.id;
    req.request_id = request_id;
    req.handle = *std::move(handle);
    const uint32_t deadline_ms = query->deadline_ms != 0
                                     ? query->deadline_ms
                                     : options_.default_deadline_ms;
    if (deadline_ms != 0) {
      req.has_deadline = true;
      req.deadline =
          SteadyClock::now() + std::chrono::milliseconds(deadline_ms);
    }
    state.inflight.push_back(std::move(req));
    inflight_now_.fetch_add(1, std::memory_order_relaxed);
  };

  auto handle_frame = [&](LoopState::Connection& conn, const Frame& frame) {
    if (!IsKnownOpcode(frame.header.opcode)) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, frame.header.request_id, WireError::kInvalidRequest,
                 StrFormat("unknown opcode %u",
                           static_cast<unsigned>(frame.header.opcode)));
      return;
    }
    switch (static_cast<Opcode>(frame.header.opcode)) {
      case Opcode::kQuery:
        handle_query(conn, frame.header.request_id, Slice(frame.body));
        break;
      case Opcode::kPing:
        counters_.pings.fetch_add(1, std::memory_order_relaxed);
        send_frame(conn, EncodePongFrame(frame.header.request_id));
        break;
      default:
        // A client sending server→client frames is confused but framed;
        // answer and keep the connection.
        send_error(conn, frame.header.request_id, WireError::kInvalidRequest,
                   "unexpected frame direction");
        break;
    }
  };

  auto read_conn = [&](LoopState::Connection& conn) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        counters_.bytes_in.fetch_add(static_cast<uint64_t>(n),
                                     std::memory_order_relaxed);
        conn.reader.Append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {  // Peer closed.
        drop_conn(conn);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      drop_conn(conn);
      return;
    }
    for (;;) {
      auto next = conn.reader.Next();
      if (!next.ok()) {
        // Framing lost: the stream cannot be resynchronized.
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        drop_conn(conn);
        return;
      }
      if (!next->has_value()) break;
      handle_frame(conn, **next);
      if (conn.dead) return;
    }
  };

  auto flush_conn = [&](LoopState::Connection& conn) {
    while (!conn.outq.empty()) {
      const std::string& front = conn.outq.front();
      const ssize_t n =
          ::send(conn.fd, front.data() + conn.out_offset,
                 front.size() - conn.out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        counters_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
        conn.out_offset += static_cast<size_t>(n);
        if (conn.out_offset == front.size()) {
          conn.outq.pop_front();
          conn.out_offset = 0;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      drop_conn(conn);
      return;
    }
  };

  // Streams one completed result: schema, one rows frame per result page,
  // then the terminal stats frame carrying the per-query counters.
  auto respond_result = [&](LoopState::Connection& conn, uint32_t request_id,
                            const QueryResult& result) {
    send_frame(conn, EncodeSchemaFrame(request_id, result.schema()));
    for (const PagePtr& page : result.pages()) {
      if (page->num_tuples() == 0) continue;
      RowsBatch batch;
      batch.num_tuples = static_cast<uint32_t>(page->num_tuples());
      batch.tuple_width = static_cast<uint32_t>(page->tuple_width());
      batch.tuples.reserve(static_cast<size_t>(page->payload_bytes()));
      for (int i = 0; i < page->num_tuples(); ++i) {
        const Slice t = page->tuple(i);
        batch.tuples.append(t.data(), t.size());
      }
      send_frame(conn, EncodeRowsFrame(request_id, batch));
    }
    StatsMessage stats;
    stats.total_rows = result.num_tuples();
    stats.seconds = result.stats().wall_seconds;
    obs::MetricsRegistry registry;
    RegisterMetrics(result.stats(), &registry);
    stats.counters = registry.counters();
    send_frame(conn, EncodeStatsFrame(request_id, stats));
  };

  // Sweeps in-flight requests: answer completions, fire deadlines.
  auto sweep_inflight = [&] {
    const auto now = SteadyClock::now();
    for (size_t i = 0; i < state.inflight.size();) {
      LoopState::InFlight& req = state.inflight[i];
      if (req.handle.Done()) {
        auto result = req.handle.Wait();
        auto conn_it = state.conns.find(req.conn_id);
        const bool deliverable = !req.orphaned &&
                                 conn_it != state.conns.end() &&
                                 !conn_it->second.dead;
        if (!deliverable) {
          counters_.orphaned_results.fetch_add(1, std::memory_order_relaxed);
        } else if (result.ok()) {
          respond_result(conn_it->second, req.request_id, *result);
        } else {
          send_error(conn_it->second, req.request_id,
                     StatusToWireError(result.status()),
                     result.status().ToString());
        }
        state.inflight.erase(state.inflight.begin() +
                             static_cast<ptrdiff_t>(i));
        inflight_now_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      if (!req.orphaned && req.has_deadline && now >= req.deadline) {
        counters_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        auto conn_it = state.conns.find(req.conn_id);
        if (conn_it != state.conns.end() && !conn_it->second.dead) {
          send_error(conn_it->second, req.request_id,
                     WireError::kDeadlineExceeded,
                     "deadline expired before the query completed");
        }
        // Keep the handle until Done() so the admission cap still counts
        // the pool resources this query occupies.
        req.orphaned = true;
      }
      ++i;
    }
  };

  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  // conn id per pollfd (0 = listen/wake).

  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);

    // Reap dead connections no in-flight request references anymore.
    for (auto it = state.conns.begin(); it != state.conns.end();) {
      bool referenced = false;
      if (it->second.dead) {
        for (const auto& req : state.inflight) {
          if (req.conn_id == it->first) {
            referenced = true;
            break;
          }
        }
        if (!referenced) {
          it = state.conns.erase(it);
          continue;
        }
      }
      ++it;
    }

    if (draining) {
      // Drained when every request that still has a waiting client is
      // answered and every response byte is on the wire.
      bool pending = false;
      for (const auto& req : state.inflight) {
        if (!req.orphaned) pending = true;
      }
      for (const auto& [id, conn] : state.conns) {
        if (!conn.dead && !conn.outq.empty()) pending = true;
      }
      if (!pending) break;
    }

    pfds.clear();
    pfd_conn.clear();
    if (!draining) {
      pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    pfd_conn.push_back(0);
    for (auto& [id, conn] : state.conns) {
      if (conn.dead) continue;
      short events = POLLIN;
      if (!conn.outq.empty()) events |= POLLOUT;
      pfds.push_back(pollfd{conn.fd, events, 0});
      pfd_conn.push_back(id);
    }

    const bool busy = !state.inflight.empty();
    const int timeout_ms = busy ? 1 : (draining ? 10 : 100);
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      DFDB_LOG(Error) << "server poll failed: " << std::strerror(errno);
      break;
    }

    for (size_t i = 0; i < pfds.size(); ++i) {
      const pollfd& p = pfds[i];
      if (p.revents == 0) continue;
      if (p.fd == wake_fds_[0]) {
        char drain[64];
        while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (!draining && p.fd == listen_fd_) {
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          if (active_connections_.load(std::memory_order_relaxed) >=
                  static_cast<uint64_t>(options_.max_connections) ||
              !SetNonBlocking(fd)) {
            counters_.connections_refused.fetch_add(
                1, std::memory_order_relaxed);
            ::close(fd);
            continue;
          }
          const int one = 1;
          (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          counters_.connections_accepted.fetch_add(1,
                                                   std::memory_order_relaxed);
          active_connections_.fetch_add(1, std::memory_order_relaxed);
          const uint64_t id = state.next_conn_id++;
          auto [it, inserted] = state.conns.emplace(
              id, LoopState::Connection(options_.max_frame_bytes));
          it->second.id = id;
          it->second.fd = fd;
        }
        continue;
      }
      auto it = state.conns.find(pfd_conn[i]);
      if (it == state.conns.end() || it->second.dead) continue;
      LoopState::Connection& conn = it->second;
      if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (p.revents & POLLIN) == 0) {
        drop_conn(conn);
        continue;
      }
      if ((p.revents & POLLIN) != 0) read_conn(conn);
      if (!conn.dead && (p.revents & POLLOUT) != 0) flush_conn(conn);
    }

    sweep_inflight();

    // Try to push queued responses immediately instead of waiting one
    // poll round for POLLOUT.
    for (auto& [id, conn] : state.conns) {
      if (!conn.dead && !conn.outq.empty()) flush_conn(conn);
    }
  }

  // Loop exit (drain complete): close sockets; any still-running orphaned
  // queries are owned by the scheduler, which Stop() shuts down next.
  for (auto& [id, conn] : state.conns) {
    if (!conn.dead) {
      ::close(conn.fd);
      conn.fd = -1;
      conn.dead = true;
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  const uint64_t orphans = static_cast<uint64_t>(state.inflight.size());
  if (orphans > 0) {
    counters_.orphaned_results.fetch_add(orphans, std::memory_order_relaxed);
    inflight_now_.fetch_sub(orphans, std::memory_order_relaxed);
  }
  state.inflight.clear();
}

}  // namespace net
}  // namespace dfdb

/// \file server.cc
/// \brief Poll-based event loop: framing, admission, response streaming.
///
/// All socket and frame handling runs on one loop thread; query execution
/// runs on the Scheduler's worker pool. The loop polls completion by
/// QueryHandle::Done() — handles are cheap shared-state probes — so no
/// extra thread per request is needed and Submit() is only ever called
/// from the loop thread while Wait() is only called once Done() is true
/// (i.e. it never blocks the loop).

#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "operators/exchange.h"
#include "ra/parser.h"

namespace dfdb {
namespace net {

namespace {

using SteadyClock = std::chrono::steady_clock;

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Engine/planner status → wire error category.
WireError StatusToWireError(const Status& status) {
  if (status.IsInvalidArgument() || status.IsNotFound()) {
    return WireError::kInvalidRequest;
  }
  if (status.IsUnavailable() || status.IsCancelled()) {
    return WireError::kShuttingDown;
  }
  return WireError::kInternal;
}

}  // namespace

/// \brief Event-loop-private state. Only the loop thread touches it.
struct Server::LoopState {
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameReader reader;
    /// Encoded frames awaiting the socket; out_offset is the progress
    /// within the front frame.
    std::deque<std::string> outq;
    size_t out_offset = 0;
    bool dead = false;

    explicit Connection(uint32_t max_frame_bytes)
        : reader(max_frame_bytes) {}
  };

  /// One submitted-but-unanswered request. `orphaned` means nobody is
  /// waiting anymore (client disconnected or deadline already answered);
  /// the handle is kept until Done() so the admission gauge keeps counting
  /// the pool resources the query still occupies, then the result is
  /// discarded — the scheduler reaps the runtime either way.
  struct InFlight {
    uint64_t conn_id = 0;
    uint32_t request_id = 0;
    QueryHandle handle;
    bool has_deadline = false;
    SteadyClock::time_point deadline{};
    bool orphaned = false;
    /// Non-zero: this query is a distributed fragment; completion routes
    /// through the exchange-output path keyed by (conn_id, exchange id).
    uint32_t fragment_exchange_id = 0;
    bool is_fragment = false;
  };

  /// One plan fragment a coordinator pushed via kFragment. Inputs stream
  /// into coordinator-named temp relations; once every input is EOF the
  /// fragment text runs as an ordinary query, and the finished result is
  /// re-partitioned into kExchangeData frames released one per output
  /// credit, terminated by kStats.
  struct FragmentState {
    uint64_t conn_id = 0;
    uint32_t request_id = 0;
    FragmentRequest spec;
    std::vector<std::string> temp_relations;  // Dropped on completion.
    int inputs_pending = 0;
    bool submitted = false;
    bool done = false;                 // Query finished; only streaming left.
    std::deque<std::string> pending;   // Encoded kExchangeData frames.
    std::string terminal;              // Encoded kStats or kError frame.
    uint32_t out_credits = 0;          // Output credits granted by the peer.
  };

  /// One inbound exchange stream feeding a fragment's temp relation.
  struct ExchangeInput {
    std::pair<uint64_t, uint32_t> fragment_key;
    std::string relation;
    HeapFile* heap = nullptr;  // Borrowed; valid until the temp is dropped.
    uint32_t tuple_width = 0;
    uint32_t sender_credits = kExchangeInitialCredits;
    bool eof = false;
  };

  std::map<uint64_t, Connection> conns;
  std::vector<InFlight> inflight;
  /// Keyed by (conn id, output exchange id) — exchange ids are unique per
  /// coordinator, and isolating by connection keeps coordinators from
  /// colliding with each other.
  std::map<std::pair<uint64_t, uint32_t>, FragmentState> fragments;
  /// Keyed by (conn id, input exchange id).
  std::map<std::pair<uint64_t, uint32_t>, ExchangeInput> exchange_inputs;
  uint64_t next_conn_id = 1;
};

Server::Server(StorageEngine* storage, ServerOptions options)
    : storage_(storage),
      options_(std::move(options)),
      scheduler_(storage, options_.scheduler),
      optimizer_(&storage->catalog()) {
  DFDB_CHECK(storage != nullptr);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return Status::FailedPrecondition("server already started");
  if (stopped_) return Status::FailedPrecondition("server already stopped");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrFormat("cannot parse bind address '%s'", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string(s.message()));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string(s.message()));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  if (!SetNonBlocking(listen_fd_) || ::pipe(wake_fds_) != 0 ||
      !SetNonBlocking(wake_fds_[0])) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Errno("server setup");
  }

  started_ = true;
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void Server::Wake() {
  if (wake_fds_[1] >= 0) {
    const char byte = 'w';
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
}

void Server::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (stopped_) return;
  draining_.store(true, std::memory_order_release);
  if (started_) {
    Wake();
    loop_thread_.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int i = 0; i < 2; ++i) {
    if (wake_fds_[i] >= 0) ::close(wake_fds_[i]);
  }
  listen_fd_ = -1;
  wake_fds_[0] = wake_fds_[1] = -1;
  scheduler_.Shutdown();
  stopped_ = true;
}

void Server::SnapshotMetrics(obs::MetricsRegistry* registry) const {
  registry->Set("net.connections", counters_.connections_accepted.load());
  registry->Set("net.connections.refused",
                counters_.connections_refused.load());
  registry->Set("net.connections.active", active_connections_.load());
  registry->Set("net.requests", counters_.requests.load());
  registry->Set("net.rejected", counters_.rejected.load());
  registry->Set("net.invalid_requests", counters_.invalid_requests.load());
  registry->Set("net.protocol_errors", counters_.protocol_errors.load());
  registry->Set("net.deadline_expired", counters_.deadline_expired.load());
  registry->Set("net.disconnects", counters_.disconnects.load());
  registry->Set("net.orphaned_results", counters_.orphaned_results.load());
  registry->Set("net.bytes_in", counters_.bytes_in.load());
  registry->Set("net.bytes_out", counters_.bytes_out.load());
  registry->Set("net.pings", counters_.pings.load());
  registry->Set("net.exchange.fragments", counters_.fragments.load());
  registry->Set("net.exchange.fragment_errors",
                counters_.fragment_errors.load());
  registry->Set("net.exchange.batches_in", counters_.exchange_batches_in.load());
  registry->Set("net.exchange.batches_out",
                counters_.exchange_batches_out.load());
  registry->Set("net.exchange.bytes_in", counters_.exchange_bytes_in.load());
  registry->Set("net.exchange.bytes_out", counters_.exchange_bytes_out.load());
  registry->Set("net.exchange.credits_granted",
                counters_.exchange_credits_granted.load());
  registry->Set("net.exchange.credit_stalls",
                counters_.exchange_credit_stalls.load());
  registry->Set("net.exchange.credit_underflows",
                counters_.exchange_credit_underflows.load());
  registry->Set("net.exchange.unknown", counters_.exchange_unknown.load());
  registry->Set("net.exchange.eofs", counters_.exchange_eofs.load());
  registry->Set("net.exchange.broadcast_batches",
                counters_.exchange_broadcast_batches.load());
  registry->Set("net.inflight", inflight_now_.load());
  registry->Set("net.max_inflight",
                static_cast<uint64_t>(std::max(0, options_.max_inflight)));
  scheduler_.SnapshotMetrics(registry);
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void Server::Loop() {
  LoopState state;

  auto send_frame = [&](LoopState::Connection& conn, std::string frame) {
    if (conn.dead) return;
    conn.outq.push_back(std::move(frame));
  };

  auto send_error = [&](LoopState::Connection& conn, uint32_t request_id,
                        WireError code, std::string message) {
    send_frame(conn, EncodeErrorFrame(
                         request_id, ErrorMessage{code, std::move(message)}));
  };

  // Tears one fragment down: drops its temp relations, unregisters its
  // input streams, erases its state. Safe to call with a stale key.
  auto cleanup_fragment = [&](const std::pair<uint64_t, uint32_t>& key) {
    auto it = state.fragments.find(key);
    if (it == state.fragments.end()) return;
    for (const std::string& rel : it->second.temp_relations) {
      (void)storage_->DropRelation(rel);
    }
    for (auto in = state.exchange_inputs.begin();
         in != state.exchange_inputs.end();) {
      if (in->second.fragment_key == key) {
        in = state.exchange_inputs.erase(in);
      } else {
        ++in;
      }
    }
    state.fragments.erase(it);
  };

  // Closes the socket and orphans the connection's in-flight requests.
  // The map entry survives until retired requests stop referencing it.
  auto drop_conn = [&](LoopState::Connection& conn) {
    if (conn.dead) return;
    conn.dead = true;
    ::close(conn.fd);
    conn.fd = -1;
    conn.outq.clear();
    counters_.disconnects.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    for (auto& req : state.inflight) {
      if (req.conn_id == conn.id) req.orphaned = true;
    }
    // Fragments still running stay until the engine finishes (the orphaned
    // InFlight reaps them); everything else is torn down now.
    std::vector<std::pair<uint64_t, uint32_t>> dead_frags;
    for (const auto& [key, frag] : state.fragments) {
      if (key.first == conn.id && (!frag.submitted || frag.done)) {
        dead_frags.push_back(key);
      }
    }
    for (const auto& key : dead_frags) cleanup_fragment(key);
  };

  auto handle_query = [&](LoopState::Connection& conn, uint32_t request_id,
                          Slice body) {
    counters_.requests.fetch_add(1, std::memory_order_relaxed);
    auto query = DecodeQuery(body);
    if (!query.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 query.status().ToString());
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      send_error(conn, request_id, WireError::kShuttingDown,
                 "server is draining");
      return;
    }
    if (inflight_now_.load(std::memory_order_relaxed) >=
        static_cast<uint64_t>(std::max(0, options_.max_inflight))) {
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kRetryLater,
                 StrFormat("admission cap of %d in-flight requests reached",
                           options_.max_inflight));
      return;
    }
    auto parsed = ParseQuery(query->text);
    if (!parsed.ok()) {
      counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 parsed.status().ToString());
      return;
    }
    auto optimized = optimizer_.Optimize(**parsed);
    if (!optimized.ok()) {
      counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 optimized.status().ToString());
      return;
    }
    auto handle = scheduler_.Submit(**optimized);
    if (!handle.ok()) {
      const WireError code = StatusToWireError(handle.status());
      if (code == WireError::kInvalidRequest) {
        counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      }
      send_error(conn, request_id, code, handle.status().ToString());
      return;
    }
    LoopState::InFlight req;
    req.conn_id = conn.id;
    req.request_id = request_id;
    req.handle = *std::move(handle);
    const uint32_t deadline_ms = query->deadline_ms != 0
                                     ? query->deadline_ms
                                     : options_.default_deadline_ms;
    if (deadline_ms != 0) {
      req.has_deadline = true;
      req.deadline =
          SteadyClock::now() + std::chrono::milliseconds(deadline_ms);
    }
    state.inflight.push_back(std::move(req));
    inflight_now_.fetch_add(1, std::memory_order_relaxed);
  };

  // Runs a fragment whose inputs are all materialized: commits the temp
  // relations, then plans and submits the fragment text like any query.
  // Fragments bypass the admission cap — a coordinator is a trusted peer
  // whose fan-out its own configuration bounds, and rejecting one fragment
  // of a distributed query would waste the whole shuffle.
  auto submit_fragment = [&](LoopState::Connection& conn,
                             const std::pair<uint64_t, uint32_t>& key) {
    LoopState::FragmentState& frag = state.fragments.at(key);
    frag.submitted = true;
    auto fail = [&](const Status& status) {
      counters_.fragment_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, frag.request_id, StatusToWireError(status),
                 status.ToString());
      cleanup_fragment(key);
    };
    for (const std::string& rel : frag.temp_relations) {
      Status s = storage_->SyncStats(rel);
      if (!s.ok()) return fail(s);
    }
    auto parsed = ParseQuery(frag.spec.text);
    if (!parsed.ok()) {
      counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      return fail(parsed.status());
    }
    auto optimized = optimizer_.Optimize(**parsed);
    if (!optimized.ok()) {
      counters_.invalid_requests.fetch_add(1, std::memory_order_relaxed);
      return fail(optimized.status());
    }
    auto handle = scheduler_.Submit(**optimized);
    if (!handle.ok()) return fail(handle.status());
    LoopState::InFlight req;
    req.conn_id = conn.id;
    req.request_id = frag.request_id;
    req.handle = *std::move(handle);
    req.is_fragment = true;
    req.fragment_exchange_id = key.second;
    if (frag.spec.deadline_ms != 0) {
      req.has_deadline = true;
      req.deadline = SteadyClock::now() +
                     std::chrono::milliseconds(frag.spec.deadline_ms);
    }
    state.inflight.push_back(std::move(req));
    inflight_now_.fetch_add(1, std::memory_order_relaxed);
  };

  // Releases staged output batches, one per granted credit; once drained,
  // sends the terminal stats/error frame and tears the fragment down.
  auto flush_fragment_output = [&](LoopState::Connection& conn,
                                   const std::pair<uint64_t, uint32_t>& key) {
    auto it = state.fragments.find(key);
    if (it == state.fragments.end()) return;
    LoopState::FragmentState& frag = it->second;
    if (!frag.done) return;
    while (frag.out_credits > 0 && !frag.pending.empty()) {
      counters_.exchange_batches_out.fetch_add(1, std::memory_order_relaxed);
      send_frame(conn, std::move(frag.pending.front()));
      frag.pending.pop_front();
      --frag.out_credits;
    }
    if (!frag.pending.empty()) {
      counters_.exchange_credit_stalls.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    send_frame(conn, std::move(frag.terminal));
    cleanup_fragment(key);
  };

  // Splits a completed fragment result into partition-routed kExchangeData
  // frames (staged, credit-released) plus the terminal kStats frame.
  auto stage_fragment_output = [&](LoopState::FragmentState& frag,
                                   const QueryResult& result) -> Status {
    const Schema& schema = result.schema();
    const int width = schema.tuple_width();
    const uint32_t exchange_id = frag.spec.output_exchange_id;
    const size_t batch_bytes = std::min<size_t>(
        64 * 1024, std::max<uint32_t>(1024, options_.max_frame_bytes / 2));
    auto emit = [&](int partition, uint32_t num_tuples, std::string bytes) {
      counters_.exchange_bytes_out.fetch_add(bytes.size(),
                                             std::memory_order_relaxed);
      ExchangeBatch out;
      out.exchange_id = exchange_id;
      out.partition_id = static_cast<uint32_t>(partition);
      out.num_tuples = num_tuples;
      out.tuple_width = static_cast<uint32_t>(width);
      out.tuples = std::move(bytes);
      frag.pending.push_back(EncodeExchangeDataFrame(frag.request_id, out));
    };
    ExchangeKey key;
    int partitions = static_cast<int>(frag.spec.output_partitions);
    ExchangePartitioner::Emit route = emit;
    if (frag.spec.output_mode == ExchangeMode::kPartition) {
      std::vector<int> cols(frag.spec.output_key_cols.begin(),
                            frag.spec.output_key_cols.end());
      DFDB_ASSIGN_OR_RETURN(key, ExchangeKey::FromColumns(schema, cols));
      if (key.empty()) {
        return Status::InvalidArgument(
            "partition-mode fragment without key columns");
      }
    } else if (frag.spec.output_mode == ExchangeMode::kBroadcast) {
      // Batch once, then duplicate every batch to all consumers.
      const int fanout = partitions;
      partitions = 1;
      route = [&, fanout](int, uint32_t num_tuples, std::string bytes) {
        for (int p = 0; p < fanout; ++p) {
          counters_.exchange_broadcast_batches.fetch_add(
              1, std::memory_order_relaxed);
          emit(p, num_tuples, bytes);
        }
      };
    } else {
      partitions = 1;  // kGather: one consumer stream.
    }
    ExchangePartitioner partitioner(partitions, std::move(key), width,
                                    batch_bytes, route);
    for (const PagePtr& page : result.pages()) {
      for (int i = 0; i < page->num_tuples(); ++i) {
        partitioner.Add(page->tuple(i));
      }
    }
    partitioner.Flush();
    StatsMessage stats;
    stats.total_rows = result.num_tuples();
    stats.seconds = result.stats().wall_seconds;
    obs::MetricsRegistry registry;
    RegisterMetrics(result.stats(), &registry);
    stats.counters = registry.counters();
    frag.terminal = EncodeStatsFrame(frag.request_id, stats);
    return Status::OK();
  };

  auto handle_fragment = [&](LoopState::Connection& conn, uint32_t request_id,
                             Slice body) {
    auto decoded = DecodeFragment(body);
    if (!decoded.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 decoded.status().ToString());
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      send_error(conn, request_id, WireError::kShuttingDown,
                 "server is draining");
      return;
    }
    const auto key = std::make_pair(conn.id, decoded->output_exchange_id);
    if (state.fragments.count(key) != 0) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 StrFormat("duplicate fragment exchange id %u",
                           decoded->output_exchange_id));
      return;
    }
    counters_.fragments.fetch_add(1, std::memory_order_relaxed);
    LoopState::FragmentState& frag = state.fragments[key];
    frag.conn_id = conn.id;
    frag.request_id = request_id;
    frag.spec = *std::move(decoded);
    frag.out_credits = frag.spec.output_credits;
    auto fail = [&](const Status& status) {
      counters_.fragment_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, StatusToWireError(status),
                 status.ToString());
      cleanup_fragment(key);
    };
    for (const FragmentInput& input : frag.spec.inputs) {
      const auto in_key = std::make_pair(conn.id, input.exchange_id);
      if (state.exchange_inputs.count(in_key) != 0) {
        return fail(Status::InvalidArgument(
            StrFormat("duplicate input exchange id %u", input.exchange_id)));
      }
      auto id = storage_->CreateRelation(input.relation, input.schema);
      if (!id.ok()) return fail(id.status());
      frag.temp_relations.push_back(input.relation);
      auto heap = storage_->GetHeapFile(*id);
      if (!heap.ok()) return fail(heap.status());
      LoopState::ExchangeInput in;
      in.fragment_key = key;
      in.relation = input.relation;
      in.heap = *heap;
      in.tuple_width = static_cast<uint32_t>(input.schema.tuple_width());
      state.exchange_inputs.emplace(in_key, std::move(in));
    }
    frag.inputs_pending = static_cast<int>(frag.spec.inputs.size());
    if (frag.inputs_pending == 0) submit_fragment(conn, key);
  };

  auto handle_exchange_data = [&](LoopState::Connection& conn,
                                  uint32_t request_id, Slice body) {
    auto batch = DecodeExchangeData(body);
    if (!batch.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 batch.status().ToString());
      return;
    }
    auto it = state.exchange_inputs.find({conn.id, batch->exchange_id});
    if (it == state.exchange_inputs.end()) {
      counters_.exchange_unknown.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 StrFormat("no open exchange input %u", batch->exchange_id));
      return;
    }
    LoopState::ExchangeInput& in = it->second;
    if (in.eof) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 "exchange data after EOF");
      return;
    }
    if (in.sender_credits == 0) {
      counters_.exchange_credit_underflows.fetch_add(1,
                                                     std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 "exchange credit underflow: batch sent without credit");
      return;
    }
    if (batch->tuple_width != in.tuple_width) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 StrFormat("exchange tuple width %u != schema width %u",
                           batch->tuple_width, in.tuple_width));
      return;
    }
    --in.sender_credits;
    for (uint32_t i = 0; i < batch->num_tuples; ++i) {
      Status s = in.heap->AppendEncoded(
          Slice(batch->tuples.data() +
                    static_cast<size_t>(i) * batch->tuple_width,
                batch->tuple_width));
      if (!s.ok()) {
        const auto frag_key = in.fragment_key;
        auto fit = state.fragments.find(frag_key);
        counters_.fragment_errors.fetch_add(1, std::memory_order_relaxed);
        send_error(conn,
                   fit != state.fragments.end() ? fit->second.request_id
                                                : request_id,
                   WireError::kInternal, s.ToString());
        cleanup_fragment(frag_key);
        return;
      }
    }
    counters_.exchange_batches_in.fetch_add(1, std::memory_order_relaxed);
    counters_.exchange_bytes_in.fetch_add(batch->tuples.size(),
                                          std::memory_order_relaxed);
    // The batch is consumed synchronously, so its credit goes straight
    // back to the sender.
    ++in.sender_credits;
    counters_.exchange_credits_granted.fetch_add(1, std::memory_order_relaxed);
    send_frame(conn,
               EncodeExchangeCreditFrame(
                   request_id, ExchangeCreditMessage{batch->exchange_id, 1}));
  };

  auto handle_exchange_eof = [&](LoopState::Connection& conn,
                                 uint32_t request_id, Slice body) {
    auto eof = DecodeExchangeEof(body);
    if (!eof.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 eof.status().ToString());
      return;
    }
    auto it = state.exchange_inputs.find({conn.id, eof->exchange_id});
    if (it == state.exchange_inputs.end()) {
      counters_.exchange_unknown.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 StrFormat("no open exchange input %u", eof->exchange_id));
      return;
    }
    LoopState::ExchangeInput& in = it->second;
    if (in.eof) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 "duplicate exchange EOF");
      return;
    }
    in.eof = true;
    counters_.exchange_eofs.fetch_add(1, std::memory_order_relaxed);
    auto fit = state.fragments.find(in.fragment_key);
    if (fit != state.fragments.end() && --fit->second.inputs_pending == 0) {
      submit_fragment(conn, in.fragment_key);
    }
  };

  auto handle_exchange_credit = [&](LoopState::Connection& conn,
                                    uint32_t request_id, Slice body) {
    auto credit = DecodeExchangeCredit(body);
    if (!credit.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request_id, WireError::kInvalidRequest,
                 credit.status().ToString());
      return;
    }
    const auto key = std::make_pair(conn.id, credit->exchange_id);
    auto it = state.fragments.find(key);
    if (it == state.fragments.end()) {
      // A grant-after-consume credit inherently races with the fragment's
      // terminal frame: the coordinator may credit a batch after this side
      // already sent everything and tore the fragment down. Count it,
      // don't error — credits are advisory.
      counters_.exchange_unknown.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    it->second.out_credits += credit->credits;
    flush_fragment_output(conn, key);
  };

  auto handle_frame = [&](LoopState::Connection& conn, const Frame& frame) {
    if (!IsKnownOpcode(frame.header.opcode)) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, frame.header.request_id, WireError::kInvalidRequest,
                 StrFormat("unknown opcode %u",
                           static_cast<unsigned>(frame.header.opcode)));
      return;
    }
    switch (static_cast<Opcode>(frame.header.opcode)) {
      case Opcode::kQuery:
        handle_query(conn, frame.header.request_id, Slice(frame.body));
        break;
      case Opcode::kPing:
        counters_.pings.fetch_add(1, std::memory_order_relaxed);
        send_frame(conn, EncodePongFrame(frame.header.request_id));
        break;
      case Opcode::kFragment:
        handle_fragment(conn, frame.header.request_id, Slice(frame.body));
        break;
      case Opcode::kExchangeData:
        handle_exchange_data(conn, frame.header.request_id,
                             Slice(frame.body));
        break;
      case Opcode::kExchangeEof:
        handle_exchange_eof(conn, frame.header.request_id, Slice(frame.body));
        break;
      case Opcode::kExchangeCredit:
        handle_exchange_credit(conn, frame.header.request_id,
                               Slice(frame.body));
        break;
      default:
        // A client sending server→client frames is confused but framed;
        // answer and keep the connection.
        send_error(conn, frame.header.request_id, WireError::kInvalidRequest,
                   "unexpected frame direction");
        break;
    }
  };

  auto read_conn = [&](LoopState::Connection& conn) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        counters_.bytes_in.fetch_add(static_cast<uint64_t>(n),
                                     std::memory_order_relaxed);
        conn.reader.Append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {  // Peer closed.
        drop_conn(conn);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      drop_conn(conn);
      return;
    }
    for (;;) {
      auto next = conn.reader.Next();
      if (!next.ok()) {
        // Framing lost: the stream cannot be resynchronized.
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        drop_conn(conn);
        return;
      }
      if (!next->has_value()) break;
      handle_frame(conn, **next);
      if (conn.dead) return;
    }
  };

  auto flush_conn = [&](LoopState::Connection& conn) {
    while (!conn.outq.empty()) {
      const std::string& front = conn.outq.front();
      const ssize_t n =
          ::send(conn.fd, front.data() + conn.out_offset,
                 front.size() - conn.out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        counters_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
        conn.out_offset += static_cast<size_t>(n);
        if (conn.out_offset == front.size()) {
          conn.outq.pop_front();
          conn.out_offset = 0;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      drop_conn(conn);
      return;
    }
  };

  // Streams one completed result: schema, one rows frame per result page,
  // then the terminal stats frame carrying the per-query counters.
  auto respond_result = [&](LoopState::Connection& conn, uint32_t request_id,
                            const QueryResult& result) {
    send_frame(conn, EncodeSchemaFrame(request_id, result.schema()));
    for (const PagePtr& page : result.pages()) {
      if (page->num_tuples() == 0) continue;
      RowsBatch batch;
      batch.num_tuples = static_cast<uint32_t>(page->num_tuples());
      batch.tuple_width = static_cast<uint32_t>(page->tuple_width());
      batch.tuples.reserve(static_cast<size_t>(page->payload_bytes()));
      for (int i = 0; i < page->num_tuples(); ++i) {
        const Slice t = page->tuple(i);
        batch.tuples.append(t.data(), t.size());
      }
      send_frame(conn, EncodeRowsFrame(request_id, batch));
    }
    StatsMessage stats;
    stats.total_rows = result.num_tuples();
    stats.seconds = result.stats().wall_seconds;
    obs::MetricsRegistry registry;
    RegisterMetrics(result.stats(), &registry);
    stats.counters = registry.counters();
    send_frame(conn, EncodeStatsFrame(request_id, stats));
  };

  // Sweeps in-flight requests: answer completions, fire deadlines.
  auto sweep_inflight = [&] {
    const auto now = SteadyClock::now();
    for (size_t i = 0; i < state.inflight.size();) {
      LoopState::InFlight& req = state.inflight[i];
      if (req.handle.Done()) {
        auto result = req.handle.Wait();
        auto conn_it = state.conns.find(req.conn_id);
        const bool deliverable = !req.orphaned &&
                                 conn_it != state.conns.end() &&
                                 !conn_it->second.dead;
        if (req.is_fragment) {
          const auto key =
              std::make_pair(req.conn_id, req.fragment_exchange_id);
          auto fit = state.fragments.find(key);
          if (!deliverable || fit == state.fragments.end()) {
            counters_.orphaned_results.fetch_add(1, std::memory_order_relaxed);
            cleanup_fragment(key);
          } else if (!result.ok()) {
            counters_.fragment_errors.fetch_add(1, std::memory_order_relaxed);
            send_error(conn_it->second, req.request_id,
                       StatusToWireError(result.status()),
                       result.status().ToString());
            cleanup_fragment(key);
          } else {
            Status staged = stage_fragment_output(fit->second, *result);
            if (!staged.ok()) {
              counters_.fragment_errors.fetch_add(1,
                                                  std::memory_order_relaxed);
              send_error(conn_it->second, req.request_id,
                         StatusToWireError(staged), staged.ToString());
              cleanup_fragment(key);
            } else {
              fit->second.done = true;
              flush_fragment_output(conn_it->second, key);
            }
          }
        } else if (!deliverable) {
          counters_.orphaned_results.fetch_add(1, std::memory_order_relaxed);
        } else if (result.ok()) {
          respond_result(conn_it->second, req.request_id, *result);
        } else {
          send_error(conn_it->second, req.request_id,
                     StatusToWireError(result.status()),
                     result.status().ToString());
        }
        state.inflight.erase(state.inflight.begin() +
                             static_cast<ptrdiff_t>(i));
        inflight_now_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      if (!req.orphaned && req.has_deadline && now >= req.deadline) {
        counters_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        auto conn_it = state.conns.find(req.conn_id);
        if (conn_it != state.conns.end() && !conn_it->second.dead) {
          send_error(conn_it->second, req.request_id,
                     WireError::kDeadlineExceeded,
                     "deadline expired before the query completed");
        }
        // Keep the handle until Done() so the admission cap still counts
        // the pool resources this query occupies.
        req.orphaned = true;
      }
      ++i;
    }
  };

  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  // conn id per pollfd (0 = listen/wake).

  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);

    // Reap dead connections no in-flight request references anymore.
    for (auto it = state.conns.begin(); it != state.conns.end();) {
      bool referenced = false;
      if (it->second.dead) {
        for (const auto& req : state.inflight) {
          if (req.conn_id == it->first) {
            referenced = true;
            break;
          }
        }
        if (!referenced) {
          it = state.conns.erase(it);
          continue;
        }
      }
      ++it;
    }

    if (draining) {
      // Drained when every request that still has a waiting client is
      // answered and every response byte is on the wire.
      bool pending = false;
      for (const auto& req : state.inflight) {
        if (!req.orphaned) pending = true;
      }
      for (const auto& [id, conn] : state.conns) {
        if (!conn.dead && !conn.outq.empty()) pending = true;
      }
      if (!pending) break;
    }

    pfds.clear();
    pfd_conn.clear();
    if (!draining) {
      pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    pfd_conn.push_back(0);
    for (auto& [id, conn] : state.conns) {
      if (conn.dead) continue;
      short events = POLLIN;
      if (!conn.outq.empty()) events |= POLLOUT;
      pfds.push_back(pollfd{conn.fd, events, 0});
      pfd_conn.push_back(id);
    }

    const bool busy = !state.inflight.empty();
    const int timeout_ms = busy ? 1 : (draining ? 10 : 100);
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      DFDB_LOG(Error) << "server poll failed: " << std::strerror(errno);
      break;
    }

    for (size_t i = 0; i < pfds.size(); ++i) {
      const pollfd& p = pfds[i];
      if (p.revents == 0) continue;
      if (p.fd == wake_fds_[0]) {
        char drain[64];
        while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (!draining && p.fd == listen_fd_) {
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          if (active_connections_.load(std::memory_order_relaxed) >=
                  static_cast<uint64_t>(options_.max_connections) ||
              !SetNonBlocking(fd)) {
            counters_.connections_refused.fetch_add(
                1, std::memory_order_relaxed);
            ::close(fd);
            continue;
          }
          const int one = 1;
          (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          counters_.connections_accepted.fetch_add(1,
                                                   std::memory_order_relaxed);
          active_connections_.fetch_add(1, std::memory_order_relaxed);
          const uint64_t id = state.next_conn_id++;
          auto [it, inserted] = state.conns.emplace(
              id, LoopState::Connection(options_.max_frame_bytes));
          it->second.id = id;
          it->second.fd = fd;
        }
        continue;
      }
      auto it = state.conns.find(pfd_conn[i]);
      if (it == state.conns.end() || it->second.dead) continue;
      LoopState::Connection& conn = it->second;
      if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (p.revents & POLLIN) == 0) {
        drop_conn(conn);
        continue;
      }
      if ((p.revents & POLLIN) != 0) read_conn(conn);
      if (!conn.dead && (p.revents & POLLOUT) != 0) flush_conn(conn);
    }

    sweep_inflight();

    // Try to push queued responses immediately instead of waiting one
    // poll round for POLLOUT.
    for (auto& [id, conn] : state.conns) {
      if (!conn.dead && !conn.outq.empty()) flush_conn(conn);
    }
  }

  // Loop exit (drain complete): tear down any fragment remnants so their
  // temp relations do not outlive the server, then close sockets; any
  // still-running orphaned queries are owned by the scheduler, which
  // Stop() shuts down next.
  while (!state.fragments.empty()) {
    cleanup_fragment(state.fragments.begin()->first);
  }
  for (auto& [id, conn] : state.conns) {
    if (!conn.dead) {
      ::close(conn.fd);
      conn.fd = -1;
      conn.dead = true;
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  const uint64_t orphans = static_cast<uint64_t>(state.inflight.size());
  if (orphans > 0) {
    counters_.orphaned_results.fetch_add(orphans, std::memory_order_relaxed);
    inflight_now_.fetch_sub(orphans, std::memory_order_relaxed);
  }
  state.inflight.clear();
}

}  // namespace net
}  // namespace dfdb

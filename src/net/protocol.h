/// \file protocol.h
/// \brief The dfdb wire protocol: versioned, length-prefixed binary frames.
///
/// Boral & DeWitt position the machine as a *back-end*: "queries are
/// entered into the host computer and passed to the back-end machine for
/// execution" (Section 4.0). This protocol is the host↔back-end interface:
/// a client ships RAQL query text to the master controller (the resident
/// Scheduler behind `dfdb::net::Server`) and receives the typed result
/// relation back as a schema frame plus a stream of tuple-batch frames,
/// closed by a stats frame (success) or an error frame (failure).
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///        0     4  magic      "DFW1"
///        4     1  version    kProtocolVersion
///        5     1  opcode     Opcode
///        6     2  reserved   0
///        8     4  body_len   bytes following the header
///       12     4  request_id client-assigned, echoed on every response
///
/// Requests may be pipelined: a client can send several kQuery frames
/// before reading responses; the server tags every response frame with the
/// originating request_id. Responses to one request are contiguous and
/// ordered (schema, rows*, stats|error), but responses to different
/// requests may interleave in completion order.
///
/// Every decoder is bounds-checked and total: arbitrary bytes produce a
/// Status error, never undefined behavior — the server keeps running when a
/// client sends garbage, and vice versa.

#ifndef DFDB_NET_PROTOCOL_H_
#define DFDB_NET_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "catalog/schema.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/statusor.h"

namespace dfdb {
namespace net {

/// Protocol version carried in every frame header. A server rejects frames
/// from a different version with a clean error.
inline constexpr uint8_t kProtocolVersion = 1;

/// Frame header size on the wire.
inline constexpr size_t kFrameHeaderBytes = 16;

/// Default sanity cap on one frame's body. A length prefix above the
/// configured cap is a protocol error, not an allocation.
inline constexpr uint32_t kDefaultMaxFrameBytes = 4u << 20;

/// \brief Frame types. kQuery and kPing travel client→server; kSchema
/// through kPong travel server→client. The exchange family (kFragment,
/// kExchangeData, kExchangeEof, kExchangeCredit) carries distributed plan
/// fragments and partition-routed row batches between a coordinator and
/// workers — see dist/coordinator.h.
enum class Opcode : uint8_t {
  kQuery = 1,   ///< RAQL text + deadline.
  kSchema = 2,  ///< Result schema (first response frame of a query).
  kRows = 3,    ///< One batch of fixed-width result tuples.
  kStats = 4,   ///< Terminal success frame: row count + ExecStats counters.
  kError = 5,   ///< Terminal failure frame: WireError + message.
  kPing = 6,    ///< Liveness probe.
  kPong = 7,    ///< Liveness reply.
  // --- distributed execution (coordinator ↔ worker) ---
  kFragment = 8,       ///< Plan fragment: RAQL + exchange input/output spec.
  kExchangeData = 9,   ///< One partition-routed batch of exchange tuples.
  kExchangeEof = 10,   ///< No more data for one exchange input.
  kExchangeCredit = 11,  ///< Flow control: grants more kExchangeData sends.
};

/// True for opcodes this protocol version defines. Unknown opcodes are
/// skippable (the length prefix still frames them) but must be answered
/// with kError/kInvalidRequest by a server.
bool IsKnownOpcode(uint8_t op);

/// \brief Structured error category carried by kError frames.
///
/// kRetryLater is the backpressure signal: the server's admission cap is
/// full and the request was rejected *before* any execution, so a client
/// may safely retry it after a backoff — including writers.
enum class WireError : uint8_t {
  kInvalidRequest = 1,    ///< Parse/analyze/optimize failure, bad frame.
  kRetryLater = 2,        ///< Admission cap reached; retry after backoff.
  kDeadlineExceeded = 3,  ///< Per-request deadline expired server-side.
  kShuttingDown = 4,      ///< Server is draining; do not retry here.
  kInternal = 5,          ///< Execution failure.
};

/// Maps a wire error onto the repo's StatusCode vocabulary (the inverse of
/// Server's status→wire mapping): kRetryLater → ResourceExhausted,
/// kDeadlineExceeded → Aborted, kShuttingDown → Unavailable, ...
Status WireErrorToStatus(WireError code, const std::string& message);

/// \brief Decoded frame header.
struct FrameHeader {
  uint8_t version = kProtocolVersion;
  uint8_t opcode = 0;
  uint32_t body_len = 0;
  uint32_t request_id = 0;
};

/// \brief One complete frame (header + body) as surfaced by FrameReader.
struct Frame {
  FrameHeader header;
  std::string body;
};

// ---------------------------------------------------------------------------
// Message payloads
// ---------------------------------------------------------------------------

/// kQuery body.
struct QueryRequest {
  /// Milliseconds the client is willing to wait; 0 = no deadline.
  uint32_t deadline_ms = 0;
  /// RAQL query text (see ra/parser.h).
  std::string text;
};

/// kRows body: a batch of packed fixed-width tuples (one result page).
struct RowsBatch {
  uint32_t num_tuples = 0;
  uint32_t tuple_width = 0;
  /// Exactly num_tuples * tuple_width bytes.
  std::string tuples;
};

/// kStats body: terminal success summary for one query.
struct StatsMessage {
  uint64_t total_rows = 0;
  /// Server-side wall seconds from submission to completion.
  double seconds = 0;
  /// Per-query counter snapshot (the engine.* naming scheme).
  std::map<std::string, uint64_t> counters;
};

/// kError body.
struct ErrorMessage {
  WireError code = WireError::kInternal;
  std::string message;
};

// --- distributed execution messages -----------------------------------------

/// Exchange flow control: credits initially granted to a sender per
/// exchange. One credit allows one kExchangeData frame; the receiver grants
/// credits back (kExchangeCredit) as it consumes batches. Sending with zero
/// outstanding credit is a protocol violation (credit underflow).
inline constexpr uint32_t kExchangeInitialCredits = 8;

/// How a fragment routes its output stream.
enum class ExchangeMode : uint8_t {
  kGather = 0,     ///< Everything to partition 0 (the coordinator merge).
  kPartition = 1,  ///< Hash on key columns, route per partition.
  kBroadcast = 2,  ///< Full copy to every partition.
};

/// One exchange-fed input of a fragment: the worker materializes the
/// incoming batches into a process-local temp relation named \p relation
/// (created with \p schema), then runs the fragment text against it.
struct FragmentInput {
  uint32_t exchange_id = 0;
  std::string relation;
  Schema schema;
};

/// kFragment body: one plan fragment dispatched by the coordinator.
///
/// The fragment itself is RAQL text (the same language kQuery carries);
/// exchange inputs appear in the text as scans of the temp relations
/// declared in \p inputs. The worker answers with kExchangeData frames
/// (partition-routed per \p output_mode) and a terminal kStats, or kError.
struct FragmentRequest {
  uint32_t deadline_ms = 0;
  std::string text;
  /// Output stream identity: every kExchangeData the worker sends back for
  /// this fragment carries this exchange id.
  uint32_t output_exchange_id = 0;
  ExchangeMode output_mode = ExchangeMode::kGather;
  /// Partition count for kPartition routing (kGather/kBroadcast: receiver
  /// fan-out, informational).
  uint32_t output_partitions = 1;
  /// Key column indices (into the fragment's output schema) hashed for
  /// kPartition routing; empty for gather/broadcast.
  std::vector<uint32_t> output_key_cols;
  /// Output credits initially granted to the worker by the coordinator.
  uint32_t output_credits = kExchangeInitialCredits;
  std::vector<FragmentInput> inputs;
};

/// kExchangeData body: one batch of packed fixed-width tuples routed to
/// \p partition_id of exchange \p exchange_id.
struct ExchangeBatch {
  uint32_t exchange_id = 0;
  uint32_t partition_id = 0;
  uint32_t num_tuples = 0;
  uint32_t tuple_width = 0;
  /// Exactly num_tuples * tuple_width bytes.
  std::string tuples;
};

/// kExchangeEof body: the sender has no more data for this exchange input.
struct ExchangeEofMessage {
  uint32_t exchange_id = 0;
};

/// kExchangeCredit body: grants \p credits more kExchangeData sends.
struct ExchangeCreditMessage {
  uint32_t exchange_id = 0;
  uint32_t credits = 0;
};

// ---------------------------------------------------------------------------
// Encoding (always succeeds; sizes are caller-controlled)
// ---------------------------------------------------------------------------

std::string EncodeQueryFrame(uint32_t request_id, const QueryRequest& query);
std::string EncodeSchemaFrame(uint32_t request_id, const Schema& schema);
std::string EncodeRowsFrame(uint32_t request_id, const RowsBatch& rows);
std::string EncodeStatsFrame(uint32_t request_id, const StatsMessage& stats);
std::string EncodeErrorFrame(uint32_t request_id, const ErrorMessage& error);
std::string EncodePingFrame(uint32_t request_id);
std::string EncodePongFrame(uint32_t request_id);
std::string EncodeFragmentFrame(uint32_t request_id,
                                const FragmentRequest& fragment);
std::string EncodeExchangeDataFrame(uint32_t request_id,
                                    const ExchangeBatch& batch);
std::string EncodeExchangeEofFrame(uint32_t request_id,
                                   const ExchangeEofMessage& eof);
std::string EncodeExchangeCreditFrame(uint32_t request_id,
                                      const ExchangeCreditMessage& credit);

// ---------------------------------------------------------------------------
// Decoding (total: every input yields a value or a Status, never UB)
// ---------------------------------------------------------------------------

/// Decodes and validates a frame header from exactly kFrameHeaderBytes
/// bytes: magic and version must match, and body_len must not exceed
/// \p max_frame_bytes. The opcode is NOT validated here (unknown opcodes
/// stay skippable); consumers check IsKnownOpcode.
StatusOr<FrameHeader> DecodeFrameHeader(Slice bytes,
                                        uint32_t max_frame_bytes);

StatusOr<QueryRequest> DecodeQuery(Slice body);
StatusOr<Schema> DecodeSchema(Slice body);
StatusOr<RowsBatch> DecodeRows(Slice body);
StatusOr<StatsMessage> DecodeStats(Slice body);
StatusOr<ErrorMessage> DecodeError(Slice body);
StatusOr<FragmentRequest> DecodeFragment(Slice body);
StatusOr<ExchangeBatch> DecodeExchangeData(Slice body);
StatusOr<ExchangeEofMessage> DecodeExchangeEof(Slice body);
StatusOr<ExchangeCreditMessage> DecodeExchangeCredit(Slice body);

/// \brief Incremental frame assembler over a byte stream.
///
/// Feed arbitrarily-chunked bytes with Append(); Next() yields complete
/// frames in order. A malformed header (bad magic/version, oversized
/// length) makes the stream unrecoverable: the error is sticky and the
/// connection should be closed.
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, size_t len) { buffer_.append(data, len); }

  /// Returns the next complete frame, std::nullopt when more bytes are
  /// needed, or a sticky error when the stream is corrupt.
  StatusOr<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  Status error_ = Status::OK();
};

}  // namespace net
}  // namespace dfdb

#endif  // DFDB_NET_PROTOCOL_H_

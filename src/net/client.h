/// \file client.h
/// \brief Blocking client for the dfdb wire protocol.
///
/// This is the "host computer" side of the paper's host↔back-end split: it
/// ships RAQL text to a `dfdb::net::Server` and reassembles the streamed
/// response (schema, row batches, stats) into a `RemoteResult`.
///
/// Retry policy — correctness first: the client retries only
/// (a) connect-time failures and (b) kRetryLater rejections, which the
/// server guarantees happen *before* any execution. A connection that dies
/// mid-query is NOT retried, because the server may already have executed
/// the query (re-running an append/delete would double-apply it); such
/// failures surface as IOError for the caller to decide.
///
/// Thread safety: a Client instance serves one thread. Open one client per
/// thread for concurrent load (see bench/bench_wire_throughput.cc).

#ifndef DFDB_NET_CLIENT_H_
#define DFDB_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "net/protocol.h"
#include "storage/tuple.h"

namespace dfdb {
namespace net {

/// \brief Client-side knobs.
struct ClientOptions {
  /// Per-attempt connect timeout.
  int connect_timeout_ms = 5000;

  /// Socket send/receive timeout; an exceeded receive timeout fails the
  /// query with IOError (the query may still complete server-side).
  int io_timeout_ms = 30000;

  /// Additional attempts after the first, applied to connect failures and
  /// kRetryLater rejections (each with exponential backoff).
  int max_retries = 8;

  /// Initial backoff; doubles per retry, capped at 1 second.
  int retry_backoff_ms = 5;

  /// Frame-size sanity cap for responses.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// \brief One query's reassembled result set.
struct RemoteResult {
  Schema schema;
  /// Packed fixed-width tuples, concatenated across row batches.
  std::string tuples;
  uint64_t num_tuples = 0;
  /// Server-side wall seconds for the query.
  double server_seconds = 0;
  /// Per-query engine counters from the terminal stats frame.
  std::map<std::string, uint64_t> counters;
  /// kRetryLater rejections absorbed before this result was obtained.
  int retries = 0;

  /// Visits each tuple as a TupleView over `schema`.
  void ForEachTuple(const std::function<void(const TupleView&)>& fn) const;

  /// Renders all tuples as printable rows (mirrors QueryResult::ToRows).
  std::vector<std::vector<std::string>> ToRows() const;
};

/// \brief Blocking connection to one dfdb_server.
class Client {
 public:
  Client() = default;
  ~Client();
  DFDB_DISALLOW_COPY(Client);
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects (with retries/backoff per \p options).
  static StatusOr<Client> Connect(const std::string& host, uint16_t port,
                                  ClientOptions options = {});

  bool connected() const { return fd_ >= 0; }

  /// Runs one RAQL query and blocks for the full response.
  /// \p deadline_ms is enforced server-side; 0 = no deadline.
  StatusOr<RemoteResult> Execute(const std::string& text,
                                 uint32_t deadline_ms = 0);

  /// Round-trips a ping frame.
  Status Ping();

  void Close();

  // Raw frame-level access — the distributed coordinator (src/dist/) talks
  // the fragment/exchange sub-protocol directly over the same connection.
  // Mixing raw frames with Execute() on one client is the caller's job to
  // sequence (one thread per client, as above).

  /// Sends one pre-encoded frame.
  Status SendFrame(const std::string& frame);
  /// Blocks until one complete frame arrives (up to io_timeout_ms).
  StatusOr<Frame> ReadAnyFrame();
  /// Allocates a fresh request id (client-unique, monotonic).
  uint32_t AllocRequestId() { return next_request_id_++; }

 private:
  Status SendAll(const std::string& bytes);
  /// Blocks until one complete frame arrives.
  StatusOr<Frame> ReadFrame();

  ClientOptions options_;
  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  FrameReader reader_;
};

}  // namespace net
}  // namespace dfdb

#endif  // DFDB_NET_CLIENT_H_

/// \file client.cc

#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/string_util.h"

namespace dfdb {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

void SleepBackoff(const ClientOptions& options, int attempt) {
  int64_t ms = options.retry_backoff_ms;
  ms <<= std::min(attempt, 10);
  ms = std::min<int64_t>(ms, 1000);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void SetTimeouts(int fd, int io_timeout_ms) {
  if (io_timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = (io_timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// connect(2) with a timeout: non-blocking connect + poll, then back to
/// blocking mode (SO_RCVTIMEO handles I/O timeouts afterwards).
Status ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t addr_len,
                          int timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl");
  }
  int rc = ::connect(fd, addr, addr_len);
  if (rc != 0 && errno != EINPROGRESS) return Errno("connect");
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (rc == 0) return Status::IOError("connect timed out");
    if (rc < 0) return Errno("poll");
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      return Status::IOError(
          StrFormat("connect: %s", std::strerror(err != 0 ? err : errno)));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) return Errno("fcntl");
  return Status::OK();
}

StatusOr<int> DialOnce(const std::string& host, uint16_t port,
                       const ClientOptions& options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                               &result);
  if (rc != 0) {
    return Status::IOError(
        StrFormat("resolve %s: %s", host.c_str(), ::gai_strerror(rc)));
  }
  Status last = Status::IOError("no addresses resolved");
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    Status s = ConnectWithTimeout(fd, ai->ai_addr, ai->ai_addrlen,
                                  options.connect_timeout_ms);
    if (s.ok()) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      SetTimeouts(fd, options.io_timeout_ms);
      ::freeaddrinfo(result);
      return fd;
    }
    last = std::move(s);
    ::close(fd);
  }
  ::freeaddrinfo(result);
  return last;
}

}  // namespace

void RemoteResult::ForEachTuple(
    const std::function<void(const TupleView&)>& fn) const {
  const size_t width = static_cast<size_t>(schema.tuple_width());
  if (width == 0) return;
  for (size_t off = 0; off + width <= tuples.size(); off += width) {
    TupleView view(&schema, Slice(tuples.data() + off, width));
    fn(view);
  }
}

std::vector<std::vector<std::string>> RemoteResult::ToRows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(static_cast<size_t>(num_tuples));
  ForEachTuple([&](const TupleView& t) {
    std::vector<std::string> row;
    row.reserve(static_cast<size_t>(schema.num_columns()));
    for (int c = 0; c < schema.num_columns(); ++c) {
      auto v = t.GetValue(c);
      row.push_back(v.ok() ? v->ToString() : std::string("<bad>"));
    }
    rows.push_back(std::move(row));
  });
  return rows;
}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : options_(std::move(other.options_)),
      fd_(other.fd_),
      next_request_id_(other.next_request_id_),
      reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    options_ = std::move(other.options_);
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Client> Client::Connect(const std::string& host, uint16_t port,
                                 ClientOptions options) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    if (attempt > 0) SleepBackoff(options, attempt - 1);
    auto fd = DialOnce(host, port, options);
    if (fd.ok()) {
      Client client;
      client.options_ = options;
      client.fd_ = *fd;
      client.reader_ = FrameReader(options.max_frame_bytes);
      return client;
    }
    last = fd.status();
  }
  return last;
}

Status Client::SendAll(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::IOError("send timed out");
    }
    return Errno("send");
  }
  return Status::OK();
}

StatusOr<Frame> Client::ReadFrame() {
  char buf[64 * 1024];
  for (;;) {
    auto next = reader_.Next();
    if (!next.ok()) {
      Close();
      return next.status();
    }
    if (next->has_value()) return std::move(**next);
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    Close();
    if (n == 0) return Status::IOError("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("receive timed out");
    }
    return Errno("recv");
  }
}

Status Client::SendFrame(const std::string& frame) {
  if (!connected()) return Status::FailedPrecondition("client not connected");
  return SendAll(frame);
}

StatusOr<Frame> Client::ReadAnyFrame() {
  if (!connected()) return Status::FailedPrecondition("client not connected");
  return ReadFrame();
}

Status Client::Ping() {
  if (!connected()) return Status::FailedPrecondition("client not connected");
  const uint32_t id = next_request_id_++;
  DFDB_RETURN_IF_ERROR(SendAll(EncodePingFrame(id)));
  for (;;) {
    DFDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.header.request_id != id) continue;  // Stale pipelined frame.
    if (static_cast<Opcode>(frame.header.opcode) == Opcode::kPong) {
      return Status::OK();
    }
    Close();
    return Status::Internal("unexpected frame in ping response");
  }
}

StatusOr<RemoteResult> Client::Execute(const std::string& text,
                                       uint32_t deadline_ms) {
  if (!connected()) return Status::FailedPrecondition("client not connected");
  QueryRequest request;
  request.deadline_ms = deadline_ms;
  request.text = text;

  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    const uint32_t id = next_request_id_++;
    DFDB_RETURN_IF_ERROR(SendAll(EncodeQueryFrame(id, request)));

    RemoteResult result;
    result.retries = attempt;
    bool have_schema = false;
    bool retry = false;
    while (!retry) {
      DFDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
      if (frame.header.request_id != id) {
        Close();
        return Status::Internal(StrFormat(
            "response for request %u while waiting for %u",
            frame.header.request_id, id));
      }
      switch (static_cast<Opcode>(frame.header.opcode)) {
        case Opcode::kSchema: {
          DFDB_ASSIGN_OR_RETURN(result.schema, DecodeSchema(frame.body));
          have_schema = true;
          break;
        }
        case Opcode::kRows: {
          DFDB_ASSIGN_OR_RETURN(RowsBatch batch, DecodeRows(frame.body));
          if (!have_schema ||
              (batch.num_tuples > 0 &&
               batch.tuple_width !=
                   static_cast<uint32_t>(result.schema.tuple_width()))) {
            Close();
            return Status::Internal("rows frame inconsistent with schema");
          }
          result.tuples.append(batch.tuples);
          result.num_tuples += batch.num_tuples;
          break;
        }
        case Opcode::kStats: {
          DFDB_ASSIGN_OR_RETURN(StatsMessage stats, DecodeStats(frame.body));
          result.server_seconds = stats.seconds;
          result.counters = std::move(stats.counters);
          if (stats.total_rows != result.num_tuples) {
            Close();
            return Status::Internal("row count mismatch in stats frame");
          }
          return result;
        }
        case Opcode::kError: {
          DFDB_ASSIGN_OR_RETURN(ErrorMessage err, DecodeError(frame.body));
          // Only kRetryLater is guaranteed pre-execution; everything else
          // (including deadline/internal) is surfaced, not retried.
          if (err.code == WireError::kRetryLater &&
              attempt < options_.max_retries) {
            SleepBackoff(options_, attempt);
            retry = true;
            break;
          }
          return WireErrorToStatus(err.code, err.message);
        }
        case Opcode::kPong:
          break;  // Stale ping reply; skip.
        default:
          Close();
          return Status::Internal(
              StrFormat("unexpected opcode %u in query response",
                        static_cast<unsigned>(frame.header.opcode)));
      }
    }
  }
  return Status::ResourceExhausted(StrFormat(
      "server busy: rejected after %d attempts", options_.max_retries + 1));
}

}  // namespace net
}  // namespace dfdb

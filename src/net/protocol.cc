/// \file protocol.cc
/// \brief Wire-protocol encoders and total, bounds-checked decoders.

#include "net/protocol.h"

#include <cstring>

#include "common/macros.h"
#include "common/string_util.h"

namespace dfdb {
namespace net {

namespace {

constexpr char kMagic[4] = {'D', 'F', 'W', '1'};

/// Hard cap on the column count of a wire schema and the tuple count of a
/// rows batch: both are re-validated against the body length, but rejecting
/// absurd counts first keeps error messages crisp.
constexpr uint32_t kMaxWireColumns = 4096;

// --- little-endian primitive writers -------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// \brief Bounds-checked little-endian reader over a body slice. Every
/// accessor fails softly: once ok() is false all further reads return 0,
/// so decoders can read a whole message and check once.
class WireReader {
 public:
  explicit WireReader(Slice data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return v;
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return v;
  }

  double Double() {
    const uint64_t bits = U64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Length-prefixed string; the prefix is validated against the bytes
  /// actually remaining, so a huge prefix cannot trigger a huge read.
  std::string String() {
    const uint32_t len = U32();
    if (!ok_ || len > remaining()) {
      ok_ = false;
      return std::string();
    }
    std::string s(data_.data() + pos_, len);
    pos_ += len;
    return s;
  }

  /// Raw byte run of exactly \p len bytes.
  std::string Bytes(size_t len) {
    if (!Need(len)) return std::string();
    std::string s(data_.data() + pos_, len);
    pos_ += len;
    return s;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  Slice data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Sanity caps for fragment messages: a fragment's exchange-input list and
/// a partition-routing key list are small by construction.
constexpr uint32_t kMaxFragmentInputs = 64;
constexpr uint32_t kMaxExchangeKeyCols = 64;
constexpr uint32_t kMaxExchangePartitions = 4096;

void PutSchemaFields(std::string* out, const Schema& schema) {
  PutU32(out, static_cast<uint32_t>(schema.num_columns()));
  for (const Column& col : schema.columns()) {
    PutU8(out, static_cast<uint8_t>(col.type));
    PutU32(out, static_cast<uint32_t>(col.width));
    PutString(out, col.name);
  }
}

/// Reads the column-list encoding produced by PutSchemaFields. Does not
/// require the reader to be exhausted, so schemas can be embedded inside
/// larger messages.
StatusOr<Schema> ReadSchemaFields(WireReader& r) {
  const uint32_t ncols = r.U32();
  if (!r.ok() || ncols > kMaxWireColumns) {
    return Status::Corruption("bad schema column count");
  }
  std::vector<Column> columns;
  columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    Column col;
    const uint8_t type = r.U8();
    if (type > static_cast<uint8_t>(ColumnType::kChar)) {
      return Status::Corruption(
          StrFormat("unknown column type %u", static_cast<unsigned>(type)));
    }
    col.type = static_cast<ColumnType>(type);
    const uint32_t width = r.U32();
    if (width == 0 || width > (1u << 20)) {
      return Status::Corruption("bad column width");
    }
    col.width = static_cast<int>(width);
    col.name = r.String();
    if (!r.ok()) return Status::Corruption("truncated schema");
    columns.push_back(std::move(col));
  }
  // Schema::Create re-validates widths against types and name uniqueness.
  return Schema::Create(std::move(columns));
}

std::string EncodeFrame(Opcode op, uint32_t request_id,
                        std::string_view body) {
  std::string out;
  out.reserve(kFrameHeaderBytes + body.size());
  out.append(kMagic, sizeof(kMagic));
  PutU8(&out, kProtocolVersion);
  PutU8(&out, static_cast<uint8_t>(op));
  PutU16(&out, 0);  // reserved
  PutU32(&out, static_cast<uint32_t>(body.size()));
  PutU32(&out, request_id);
  out.append(body.data(), body.size());
  return out;
}

Status Truncated(const char* what) {
  return Status::Corruption(StrFormat("truncated %s message", what));
}

}  // namespace

bool IsKnownOpcode(uint8_t op) {
  return op >= static_cast<uint8_t>(Opcode::kQuery) &&
         op <= static_cast<uint8_t>(Opcode::kExchangeCredit);
}

Status WireErrorToStatus(WireError code, const std::string& message) {
  switch (code) {
    case WireError::kInvalidRequest:
      return Status::InvalidArgument(message);
    case WireError::kRetryLater:
      return Status::ResourceExhausted(message);
    case WireError::kDeadlineExceeded:
      return Status::Aborted(message);
    case WireError::kShuttingDown:
      return Status::Unavailable(message);
    case WireError::kInternal:
      return Status::Internal(message);
  }
  return Status::Internal(message);
}

// ---------------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------------

std::string EncodeQueryFrame(uint32_t request_id, const QueryRequest& query) {
  std::string body;
  PutU32(&body, query.deadline_ms);
  PutString(&body, query.text);
  return EncodeFrame(Opcode::kQuery, request_id, body);
}

std::string EncodeSchemaFrame(uint32_t request_id, const Schema& schema) {
  std::string body;
  PutSchemaFields(&body, schema);
  return EncodeFrame(Opcode::kSchema, request_id, body);
}

std::string EncodeRowsFrame(uint32_t request_id, const RowsBatch& rows) {
  std::string body;
  PutU32(&body, rows.num_tuples);
  PutU32(&body, rows.tuple_width);
  body.append(rows.tuples);
  return EncodeFrame(Opcode::kRows, request_id, body);
}

std::string EncodeStatsFrame(uint32_t request_id, const StatsMessage& stats) {
  std::string body;
  PutU64(&body, stats.total_rows);
  PutDouble(&body, stats.seconds);
  PutU32(&body, static_cast<uint32_t>(stats.counters.size()));
  for (const auto& [name, value] : stats.counters) {
    PutString(&body, name);
    PutU64(&body, value);
  }
  return EncodeFrame(Opcode::kStats, request_id, body);
}

std::string EncodeErrorFrame(uint32_t request_id, const ErrorMessage& error) {
  std::string body;
  PutU8(&body, static_cast<uint8_t>(error.code));
  PutString(&body, error.message);
  return EncodeFrame(Opcode::kError, request_id, body);
}

std::string EncodePingFrame(uint32_t request_id) {
  return EncodeFrame(Opcode::kPing, request_id, std::string_view());
}

std::string EncodePongFrame(uint32_t request_id) {
  return EncodeFrame(Opcode::kPong, request_id, std::string_view());
}

std::string EncodeFragmentFrame(uint32_t request_id,
                                const FragmentRequest& fragment) {
  std::string body;
  PutU32(&body, fragment.deadline_ms);
  PutString(&body, fragment.text);
  PutU32(&body, fragment.output_exchange_id);
  PutU8(&body, static_cast<uint8_t>(fragment.output_mode));
  PutU32(&body, fragment.output_partitions);
  PutU32(&body, static_cast<uint32_t>(fragment.output_key_cols.size()));
  for (const uint32_t col : fragment.output_key_cols) PutU32(&body, col);
  PutU32(&body, fragment.output_credits);
  PutU32(&body, static_cast<uint32_t>(fragment.inputs.size()));
  for (const FragmentInput& input : fragment.inputs) {
    PutU32(&body, input.exchange_id);
    PutString(&body, input.relation);
    PutSchemaFields(&body, input.schema);
  }
  return EncodeFrame(Opcode::kFragment, request_id, body);
}

std::string EncodeExchangeDataFrame(uint32_t request_id,
                                    const ExchangeBatch& batch) {
  std::string body;
  PutU32(&body, batch.exchange_id);
  PutU32(&body, batch.partition_id);
  PutU32(&body, batch.num_tuples);
  PutU32(&body, batch.tuple_width);
  body.append(batch.tuples);
  return EncodeFrame(Opcode::kExchangeData, request_id, body);
}

std::string EncodeExchangeEofFrame(uint32_t request_id,
                                   const ExchangeEofMessage& eof) {
  std::string body;
  PutU32(&body, eof.exchange_id);
  return EncodeFrame(Opcode::kExchangeEof, request_id, body);
}

std::string EncodeExchangeCreditFrame(uint32_t request_id,
                                      const ExchangeCreditMessage& credit) {
  std::string body;
  PutU32(&body, credit.exchange_id);
  PutU32(&body, credit.credits);
  return EncodeFrame(Opcode::kExchangeCredit, request_id, body);
}

// ---------------------------------------------------------------------------
// Decoders
// ---------------------------------------------------------------------------

StatusOr<FrameHeader> DecodeFrameHeader(Slice bytes,
                                        uint32_t max_frame_bytes) {
  if (bytes.size() != kFrameHeaderBytes) {
    return Status::Corruption(
        StrFormat("frame header must be %zu bytes, got %zu",
                  kFrameHeaderBytes, bytes.size()));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad frame magic");
  }
  WireReader r(Slice(bytes.data() + sizeof(kMagic),
                     bytes.size() - sizeof(kMagic)));
  FrameHeader header;
  header.version = r.U8();
  header.opcode = r.U8();
  (void)r.U16();  // reserved
  header.body_len = r.U32();
  header.request_id = r.U32();
  if (header.version != kProtocolVersion) {
    return Status::Corruption(StrFormat(
        "protocol version mismatch: got %u, want %u",
        static_cast<unsigned>(header.version),
        static_cast<unsigned>(kProtocolVersion)));
  }
  if (header.body_len > max_frame_bytes) {
    return Status::Corruption(StrFormat(
        "frame body of %u bytes exceeds the %u-byte cap", header.body_len,
        max_frame_bytes));
  }
  return header;
}

StatusOr<QueryRequest> DecodeQuery(Slice body) {
  WireReader r(body);
  QueryRequest q;
  q.deadline_ms = r.U32();
  q.text = r.String();
  if (!r.ok() || r.remaining() != 0) return Truncated("query");
  return q;
}

StatusOr<Schema> DecodeSchema(Slice body) {
  WireReader r(body);
  DFDB_ASSIGN_OR_RETURN(Schema schema, ReadSchemaFields(r));
  if (r.remaining() != 0) return Truncated("schema");
  return schema;
}

StatusOr<RowsBatch> DecodeRows(Slice body) {
  WireReader r(body);
  RowsBatch rows;
  rows.num_tuples = r.U32();
  rows.tuple_width = r.U32();
  if (!r.ok()) return Truncated("rows");
  const uint64_t payload = static_cast<uint64_t>(rows.num_tuples) *
                           static_cast<uint64_t>(rows.tuple_width);
  if (payload != r.remaining()) {
    return Status::Corruption(StrFormat(
        "rows payload mismatch: %u tuples * %u bytes != %zu body bytes",
        rows.num_tuples, rows.tuple_width, r.remaining()));
  }
  rows.tuples = r.Bytes(static_cast<size_t>(payload));
  if (!r.ok()) return Truncated("rows");
  return rows;
}

StatusOr<StatsMessage> DecodeStats(Slice body) {
  WireReader r(body);
  StatsMessage stats;
  stats.total_rows = r.U64();
  stats.seconds = r.Double();
  const uint32_t n = r.U32();
  if (!r.ok()) return Truncated("stats");
  for (uint32_t i = 0; i < n; ++i) {
    std::string name = r.String();
    const uint64_t value = r.U64();
    if (!r.ok()) return Truncated("stats");
    stats.counters[std::move(name)] = value;
  }
  if (r.remaining() != 0) return Truncated("stats");
  return stats;
}

StatusOr<ErrorMessage> DecodeError(Slice body) {
  WireReader r(body);
  ErrorMessage error;
  const uint8_t code = r.U8();
  if (code < static_cast<uint8_t>(WireError::kInvalidRequest) ||
      code > static_cast<uint8_t>(WireError::kInternal)) {
    return Status::Corruption("unknown wire error code");
  }
  error.code = static_cast<WireError>(code);
  error.message = r.String();
  if (!r.ok() || r.remaining() != 0) return Truncated("error");
  return error;
}

StatusOr<FragmentRequest> DecodeFragment(Slice body) {
  WireReader r(body);
  FragmentRequest f;
  f.deadline_ms = r.U32();
  f.text = r.String();
  f.output_exchange_id = r.U32();
  const uint8_t mode = r.U8();
  if (!r.ok()) return Truncated("fragment");
  if (mode > static_cast<uint8_t>(ExchangeMode::kBroadcast)) {
    return Status::Corruption(
        StrFormat("unknown exchange mode %u", static_cast<unsigned>(mode)));
  }
  f.output_mode = static_cast<ExchangeMode>(mode);
  f.output_partitions = r.U32();
  if (!r.ok() || f.output_partitions == 0 ||
      f.output_partitions > kMaxExchangePartitions) {
    return Status::Corruption("bad fragment partition count");
  }
  const uint32_t nkeys = r.U32();
  if (!r.ok() || nkeys > kMaxExchangeKeyCols) {
    return Status::Corruption("bad fragment key column count");
  }
  f.output_key_cols.reserve(nkeys);
  for (uint32_t i = 0; i < nkeys; ++i) f.output_key_cols.push_back(r.U32());
  f.output_credits = r.U32();
  const uint32_t ninputs = r.U32();
  if (!r.ok() || ninputs > kMaxFragmentInputs) {
    return Status::Corruption("bad fragment input count");
  }
  f.inputs.reserve(ninputs);
  for (uint32_t i = 0; i < ninputs; ++i) {
    FragmentInput input;
    input.exchange_id = r.U32();
    input.relation = r.String();
    if (!r.ok() || input.relation.empty()) return Truncated("fragment");
    DFDB_ASSIGN_OR_RETURN(input.schema, ReadSchemaFields(r));
    f.inputs.push_back(std::move(input));
  }
  if (!r.ok() || r.remaining() != 0) return Truncated("fragment");
  return f;
}

StatusOr<ExchangeBatch> DecodeExchangeData(Slice body) {
  WireReader r(body);
  ExchangeBatch batch;
  batch.exchange_id = r.U32();
  batch.partition_id = r.U32();
  batch.num_tuples = r.U32();
  batch.tuple_width = r.U32();
  if (!r.ok()) return Truncated("exchange data");
  const uint64_t payload = static_cast<uint64_t>(batch.num_tuples) *
                           static_cast<uint64_t>(batch.tuple_width);
  if (payload != r.remaining()) {
    return Status::Corruption(StrFormat(
        "exchange payload mismatch: %u tuples * %u bytes != %zu body bytes",
        batch.num_tuples, batch.tuple_width, r.remaining()));
  }
  batch.tuples = r.Bytes(static_cast<size_t>(payload));
  if (!r.ok()) return Truncated("exchange data");
  return batch;
}

StatusOr<ExchangeEofMessage> DecodeExchangeEof(Slice body) {
  WireReader r(body);
  ExchangeEofMessage eof;
  eof.exchange_id = r.U32();
  if (!r.ok() || r.remaining() != 0) return Truncated("exchange eof");
  return eof;
}

StatusOr<ExchangeCreditMessage> DecodeExchangeCredit(Slice body) {
  WireReader r(body);
  ExchangeCreditMessage credit;
  credit.exchange_id = r.U32();
  credit.credits = r.U32();
  if (!r.ok() || r.remaining() != 0) return Truncated("exchange credit");
  if (credit.credits == 0) {
    return Status::Corruption("exchange credit grant of zero");
  }
  return credit;
}

StatusOr<std::optional<Frame>> FrameReader::Next() {
  if (!error_.ok()) return error_;
  // Compact the buffer once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer forever.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  if (buffer_.size() - consumed_ < kFrameHeaderBytes) return std::optional<Frame>();
  auto header = DecodeFrameHeader(
      Slice(buffer_.data() + consumed_, kFrameHeaderBytes), max_frame_bytes_);
  if (!header.ok()) {
    error_ = header.status();  // Sticky: framing is lost for good.
    return error_;
  }
  const size_t total = kFrameHeaderBytes + header->body_len;
  if (buffer_.size() - consumed_ < total) return std::optional<Frame>();
  Frame frame;
  frame.header = *header;
  frame.body.assign(buffer_.data() + consumed_ + kFrameHeaderBytes,
                    header->body_len);
  consumed_ += total;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace net
}  // namespace dfdb

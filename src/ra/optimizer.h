/// \file optimizer.h
/// \brief Heuristic query-tree optimizer.
///
/// The paper's queries are hand-shaped trees; a downstream user wants the
/// system to shape them. This optimizer applies the classic rewrites that
/// matter most for the nested-loops data-flow engine:
///
///  1. restrict merging            — adjacent restricts fold into one AND;
///  2. predicate pushdown          — conjuncts move below joins, unions and
///                                   projections toward the scans, shrinking
///                                   every stream early;
///  3. join input ordering         — the smaller (estimated) input becomes
///                                   the inner relation, minimizing the
///                                   broadcast traffic of the Section 4.2
///                                   join and the IRC-vector length.
///
/// Cardinality estimates combine catalog statistics with selectivity
/// heuristics; columns following the benchmark convention "k<N>" (uniform
/// over [0,N)) get exact range selectivities.

#ifndef DFDB_RA_OPTIMIZER_H_
#define DFDB_RA_OPTIMIZER_H_

#include <string>

#include "catalog/catalog.h"
#include "ra/analyzer.h"
#include "ra/plan.h"

namespace dfdb {

/// \brief Rewrite counters for tests and EXPLAIN-style reporting.
struct OptimizerReport {
  int restricts_merged = 0;
  int predicates_pushed = 0;
  int joins_swapped = 0;
  std::string ToString() const;
};

/// \brief Rule-based optimizer over resolved plans.
class Optimizer {
 public:
  explicit Optimizer(const Catalog* catalog) : catalog_(catalog) {}

  /// Returns an optimized copy of \p plan (which may be unresolved). The
  /// result is resolved. If a rewrite would not re-resolve (a rule bug),
  /// the original resolved clone is returned instead — optimization is
  /// never allowed to break a valid query.
  StatusOr<PlanNodePtr> Optimize(const PlanNode& plan,
                                 OptimizerReport* report = nullptr) const;

  /// Estimated output rows of a resolved node (used by the join-ordering
  /// rule; exposed for tests and EXPLAIN output).
  double EstimateRows(const PlanNode& node) const;

  /// Estimated selectivity in [0,1] of \p pred against \p schema.
  double EstimateSelectivity(const Expr& pred, const Schema& schema) const;

 private:
  const Catalog* catalog_;
};

}  // namespace dfdb

#endif  // DFDB_RA_OPTIMIZER_H_

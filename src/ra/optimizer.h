/// \file optimizer.h
/// \brief Heuristic query-tree optimizer.
///
/// The paper's queries are hand-shaped trees; a downstream user wants the
/// system to shape them. This optimizer applies the classic rewrites that
/// matter most for the nested-loops data-flow engine:
///
///  1. restrict merging            — adjacent restricts fold into one AND;
///  2. predicate pushdown          — conjuncts move below joins, unions and
///                                   projections toward the scans, shrinking
///                                   every stream early;
///  3. join input ordering         — the smaller (estimated) input becomes
///                                   the inner relation, minimizing the
///                                   broadcast traffic of the Section 4.2
///                                   join and the IRC-vector length.
///
/// Cardinality estimates combine catalog statistics with selectivity
/// heuristics; columns following the benchmark convention "k<N>" (uniform
/// over [0,N)) get exact range selectivities.

#ifndef DFDB_RA_OPTIMIZER_H_
#define DFDB_RA_OPTIMIZER_H_

#include <string>

#include "catalog/catalog.h"
#include "ra/analyzer.h"
#include "ra/plan.h"

namespace dfdb {

/// \brief Rewrite counters for tests and EXPLAIN-style reporting.
struct OptimizerReport {
  int restricts_merged = 0;
  int predicates_pushed = 0;
  int joins_swapped = 0;

  /// Per-edge pipeline decision (DecidePipelining). Every operator→consumer
  /// edge is either fused or materialized; materialized edges additionally
  /// record *why* fusion was refused, mirroring the compile-or-interpret
  /// contract of the kernel layer.
  int edges_fused = 0;
  int edges_materialized = 0;
  int fallback_unsupported_producer = 0;  ///< Producer op cannot stream.
  int fallback_unsupported_consumer = 0;  ///< Consumer cannot take a stream.
  int fallback_predicate_not_compiled = 0;  ///< Predicate refused to compile.
  int fallback_high_fanout = 0;  ///< Join fanout estimate over threshold.

  /// Per-scan access-path decision (DecideAccessPaths). Every kScan leaf is
  /// counted exactly once.
  int scans_full = 0;
  int scans_zonemap = 0;
  int scans_gridfile = 0;

  /// Per-scan near-data pushdown decision (DecidePushdown).
  int scans_pushdown = 0;
  /// Restrict-over-scan shapes left on the raw path: the predicate refused
  /// compilation or the estimated selectivity was above the device
  /// breakeven (kPushdownSelectivity).
  int pushdown_rejected = 0;

  std::string ToString() const;
};

/// \brief Rule-based optimizer over resolved plans.
class Optimizer {
 public:
  explicit Optimizer(const Catalog* catalog) : catalog_(catalog) {}

  /// Returns an optimized copy of \p plan (which may be unresolved). The
  /// result is resolved. If a rewrite would not re-resolve (a rule bug),
  /// the original resolved clone is returned instead — optimization is
  /// never allowed to break a valid query.
  StatusOr<PlanNodePtr> Optimize(const PlanNode& plan,
                                 OptimizerReport* report = nullptr) const;

  /// Estimated output rows of a resolved node (used by the join-ordering
  /// rule; exposed for tests and EXPLAIN output).
  double EstimateRows(const PlanNode& node) const;

  /// Estimated selectivity in [0,1] of \p pred against \p schema.
  double EstimateSelectivity(const Expr& pred, const Schema& schema) const;

  /// Marks each edge of a *resolved* tree pipeline-fused or materialized
  /// (PlanNode::pipeline_fused on the producer) and counts the decisions in
  /// \p report. An edge fuses when it passes the safety conditions of
  /// PipelineEdgeSafe() *and* the catalog stats do not veto it: an edge
  /// into a join whose estimated fanout (output rows per producer row)
  /// exceeds kPipelineFanoutLimit materializes, so a fused stream never
  /// feeds a multiplying consumer that would hold its pages live while
  /// re-expanding them. Run automatically by Optimize(); exposed for
  /// hand-shaped plans and tests.
  void DecidePipelining(PlanNode* root, OptimizerReport* report) const;

  /// Join-fanout threshold above which DecidePipelining falls back to
  /// materialization (output rows per fused input row).
  static constexpr double kPipelineFanoutLimit = 16.0;

  /// Marks each kScan leaf of a *resolved* tree with an access path
  /// (PlanNode::access_path / index_name / prune_bounds) and counts the
  /// decisions in \p report. A scan consumed by a restrict whose predicate
  /// compiles to column-vs-constant conjuncts gets those conjuncts as
  /// prune bounds (zone-map pruning); if a catalog index covers one of the
  /// bound columns and the estimated selectivity is below
  /// kGridFileSelectivity, the scan probes that grid file first. Scans
  /// feeding kDelete are never marked (the delete rewrites the working
  /// head, not a snapshot version). Run automatically by Optimize();
  /// exposed for hand-shaped plans and tests.
  void DecideAccessPaths(PlanNode* root, OptimizerReport* report) const;

  /// Selectivity threshold below which a covering grid file is probed; at
  /// higher selectivities most cells qualify and the probe is pure
  /// overhead over zone maps.
  static constexpr double kGridFileSelectivity = 0.25;

  /// Marks each kScan leaf consumed by a restrict whose predicate compiles
  /// as near-data pushable (PlanNode::pushdown) and counts the decisions in
  /// \p report. Composes with DecideAccessPaths (run it first): access-path
  /// pruning drops whole pages, pushdown filters the residual pages inside
  /// the storage hierarchy. The decision rule follows the filtered-transfer
  /// cost model (CcdCacheModel::FilteredAccessTime): pushing down pays
  /// scanned/filter_rate + surviving/port_rate against the raw path's
  /// scanned/port_rate, so it wins when estimated selectivity is below
  /// 1 - port_rate/filter_rate = kPushdownSelectivity. Run automatically by
  /// Optimize(); exposed for hand-shaped plans and tests.
  void DecidePushdown(PlanNode* root, OptimizerReport* report) const;

  /// Selectivity breakeven for near-data pushdown (see DecidePushdown).
  static constexpr double kPushdownSelectivity = 0.75;

 private:
  const Catalog* catalog_;
};

/// \brief Safety-only half of the per-edge decision, shared with the
/// backends' PipelinePolicy::kForceFuse path (stats are not consulted).
///
/// True when streaming \p producer's output straight into \p consumer
/// provably preserves results: the producer is a restrict whose predicate
/// compiles (see expr_compile.h) or a projection without duplicate
/// elimination, and the consumer is a join, a restrict whose own predicate
/// compiles, or a non-dedup projection. Everything else — aggregates,
/// unions, differences, writes, interpreted predicates — materializes, the
/// conservative fallback.
bool PipelineEdgeSafe(const PlanNode& producer, const PlanNode& consumer);

/// \brief One hash-partitionable equality conjunct `left.col = right.col`
/// of a join predicate.
///
/// Restricted to identical non-double column types on the two sides — the
/// same rule the compiled hash join applies (expr_compile.h), so a key the
/// distributed planner partitions on is also a key the worker-local join
/// can hash on.
struct EquiJoinKey {
  std::string left_column;
  std::string right_column;
};

/// Extracts every hash-partitionable equi-key conjunct of a kJoin node
/// whose children are resolved (their output schemas are consulted for the
/// type rule). Non-join nodes and predicates without usable conjuncts
/// yield an empty vector. Used by the distributed fragment planner
/// (dist/fragment.h) to derive partitioning properties and cut exchanges.
std::vector<EquiJoinKey> ExtractEquiJoinKeys(const PlanNode& join);

}  // namespace dfdb

#endif  // DFDB_RA_OPTIMIZER_H_

#include "ra/parser.h"

#include <cctype>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"

namespace dfdb {

namespace {

enum class TokKind {
  kIdent,
  kInt,
  kFloat,
  kString,
  kSymbol,  // ( ) [ ] , .
  kOp,      // = != < <= > >= + - * /
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      const size_t start = pos_;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        out.push_back({TokKind::kIdent,
                       std::string(text_.substr(start, pos_ - start)), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) &&
           LastWasValueContext(out))) {
        bool is_float = false;
        ++pos_;
        while (pos_ < text_.size()) {
          const char d = text_[pos_];
          if (std::isdigit(static_cast<unsigned char>(d))) {
            ++pos_;
          } else if (d == '.' && !is_float) {
            is_float = true;
            ++pos_;
          } else {
            break;
          }
        }
        out.push_back({is_float ? TokKind::kFloat : TokKind::kInt,
                       std::string(text_.substr(start, pos_ - start)), start});
        continue;
      }
      if (c == '\'') {
        ++pos_;
        std::string s;
        while (pos_ < text_.size() && text_[pos_] != '\'') {
          s += text_[pos_++];
        }
        if (pos_ >= text_.size()) {
          return Err(start, "unterminated string literal");
        }
        ++pos_;  // Closing quote.
        out.push_back({TokKind::kString, std::move(s), start});
        continue;
      }
      if (c == '(' || c == ')' || c == '[' || c == ']' || c == ',' ||
          c == '.') {
        ++pos_;
        out.push_back({TokKind::kSymbol, std::string(1, c), start});
        continue;
      }
      if (c == '!' || c == '<' || c == '>' || c == '=') {
        ++pos_;
        std::string op(1, c);
        if (pos_ < text_.size() && text_[pos_] == '=') {
          op += '=';
          ++pos_;
        }
        if (op == "!") return Err(start, "expected '!='");
        out.push_back({TokKind::kOp, std::move(op), start});
        continue;
      }
      if (c == '+' || c == '-' || c == '*' || c == '/') {
        ++pos_;
        out.push_back({TokKind::kOp, std::string(1, c), start});
        continue;
      }
      return Err(start, StrFormat("unexpected character '%c'", c));
    }
    out.push_back({TokKind::kEnd, "", text_.size()});
    return out;
  }

 private:
  /// Unary minus only directly after an operator / opening bracket.
  static bool LastWasValueContext(const std::vector<Token>& toks) {
    if (toks.empty()) return true;
    const Token& t = toks.back();
    return t.kind == TokKind::kOp ||
           (t.kind == TokKind::kSymbol &&
            (t.text == "(" || t.text == "[" || t.text == ","));
  }

  Status Err(size_t pos, std::string msg) const {
    return Status::InvalidArgument(
        StrFormat("parse error at %zu: %s", pos, msg.c_str()));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  StatusOr<PlanNodePtr> ParseTopQuery() {
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr q, ParseExpr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kEnd, ""));
    return q;
  }

  StatusOr<ExprPtr> ParseTopPredicate() {
    DFDB_ASSIGN_OR_RETURN(ExprPtr p, ParseOr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kEnd, ""));
    return p;
  }

 private:
  const Token& Peek() const { return toks_[i_]; }
  const Token& Next() { return toks_[i_++]; }
  bool PeekIs(TokKind kind, std::string_view text = "") const {
    return Peek().kind == kind && (text.empty() || Peek().text == text);
  }
  bool Eat(TokKind kind, std::string_view text = "") {
    if (!PeekIs(kind, text)) return false;
    ++i_;
    return true;
  }
  Status Expect(TokKind kind, std::string_view text) {
    if (Eat(kind, text)) return Status::OK();
    return Status::InvalidArgument(
        StrFormat("parse error at %zu: expected %s, got '%s'", Peek().pos,
                  text.empty() ? "end of input" : std::string(text).c_str(),
                  Peek().text.c_str()));
  }
  Status ErrHere(std::string msg) {
    return Status::InvalidArgument(
        StrFormat("parse error at %zu: %s", Peek().pos, msg.c_str()));
  }

  // ---- query trees --------------------------------------------------------

  StatusOr<PlanNodePtr> ParseExpr() {
    if (!PeekIs(TokKind::kIdent)) {
      return ErrHere("expected an operator or relation name");
    }
    const std::string head = Peek().text;
    // A bare identifier (no call parens) is a scan.
    if (toks_[i_ + 1].kind != TokKind::kSymbol || toks_[i_ + 1].text != "(") {
      Next();
      return MakeScan(head);
    }
    if (head == "restrict") return ParseRestrict();
    if (head == "project") return ParseProject();
    if (head == "join") return ParseJoin();
    if (head == "union") return ParseUnion();
    if (head == "diff") return ParseDiff();
    if (head == "agg") return ParseAgg();
    if (head == "append") return ParseAppend();
    if (head == "delete") return ParseDelete();
    return ErrHere("unknown operator '" + head + "'");
  }

  StatusOr<PlanNodePtr> ParseRestrict() {
    Next();  // restrict
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr child, ParseExpr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ","));
    DFDB_ASSIGN_OR_RETURN(ExprPtr pred, ParseOr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
    return MakeRestrict(std::move(child), std::move(pred));
  }

  StatusOr<PlanNodePtr> ParseProject() {
    Next();
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr child, ParseExpr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ","));
    DFDB_ASSIGN_OR_RETURN(std::vector<std::string> cols, ParseNameList());
    bool dedup = false;
    if (Eat(TokKind::kSymbol, ",")) {
      if (!Eat(TokKind::kIdent, "dedup")) {
        return ErrHere("expected 'dedup'");
      }
      dedup = true;
    }
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
    return MakeProject(std::move(child), std::move(cols), dedup);
  }

  StatusOr<PlanNodePtr> ParseJoin() {
    Next();
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr left, ParseExpr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ","));
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr right, ParseExpr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ","));
    DFDB_ASSIGN_OR_RETURN(ExprPtr pred, ParseOr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
    return MakeJoin(std::move(left), std::move(right), std::move(pred));
  }

  StatusOr<PlanNodePtr> ParseUnion() {
    Next();
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr left, ParseExpr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ","));
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr right, ParseExpr());
    bool bag = false;
    if (Eat(TokKind::kSymbol, ",")) {
      if (!Eat(TokKind::kIdent, "bag")) return ErrHere("expected 'bag'");
      bag = true;
    }
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
    return MakeUnion(std::move(left), std::move(right), bag);
  }

  StatusOr<PlanNodePtr> ParseDiff() {
    Next();
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr left, ParseExpr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ","));
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr right, ParseExpr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
    return MakeDifference(std::move(left), std::move(right));
  }

  StatusOr<PlanNodePtr> ParseAgg() {
    Next();
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr child, ParseExpr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ","));
    DFDB_ASSIGN_OR_RETURN(std::vector<std::string> group_by, ParseNameList());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ","));
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "["));
    std::vector<AggregateSpec> specs;
    for (;;) {
      DFDB_ASSIGN_OR_RETURN(AggregateSpec spec, ParseAggSpec());
      specs.push_back(std::move(spec));
      if (!Eat(TokKind::kSymbol, ",")) break;
    }
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "]"));
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
    return MakeAggregate(std::move(child), std::move(group_by),
                         std::move(specs));
  }

  StatusOr<AggregateSpec> ParseAggSpec() {
    if (!PeekIs(TokKind::kIdent)) return ErrHere("expected aggregate function");
    const std::string func = Next().text;
    AggregateSpec spec;
    if (func == "count") {
      spec.func = AggregateSpec::Func::kCount;
    } else if (func == "sum") {
      spec.func = AggregateSpec::Func::kSum;
    } else if (func == "min") {
      spec.func = AggregateSpec::Func::kMin;
    } else if (func == "max") {
      spec.func = AggregateSpec::Func::kMax;
    } else if (func == "avg") {
      spec.func = AggregateSpec::Func::kAvg;
    } else {
      return ErrHere("unknown aggregate '" + func + "'");
    }
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
    if (PeekIs(TokKind::kIdent)) {
      spec.column = Next().text;
    } else if (spec.func != AggregateSpec::Func::kCount) {
      return ErrHere("aggregate needs a column");
    }
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
    if (!Eat(TokKind::kIdent, "as")) return ErrHere("expected 'as'");
    if (!PeekIs(TokKind::kIdent)) return ErrHere("expected output name");
    spec.output_name = Next().text;
    return spec;
  }

  StatusOr<PlanNodePtr> ParseAppend() {
    Next();
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
    DFDB_ASSIGN_OR_RETURN(PlanNodePtr child, ParseExpr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ","));
    if (!PeekIs(TokKind::kIdent)) return ErrHere("expected target relation");
    const std::string target = Next().text;
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
    return MakeAppend(std::move(child), target);
  }

  StatusOr<PlanNodePtr> ParseDelete() {
    Next();
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "("));
    if (!PeekIs(TokKind::kIdent)) return ErrHere("expected target relation");
    const std::string target = Next().text;
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ","));
    DFDB_ASSIGN_OR_RETURN(ExprPtr pred, ParseOr());
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
    return MakeDelete(target, std::move(pred));
  }

  StatusOr<std::vector<std::string>> ParseNameList() {
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "["));
    std::vector<std::string> names;
    if (!PeekIs(TokKind::kSymbol, "]")) {
      for (;;) {
        if (!PeekIs(TokKind::kIdent)) return ErrHere("expected column name");
        names.push_back(Next().text);
        if (!Eat(TokKind::kSymbol, ",")) break;
      }
    }
    DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, "]"));
    return names;
  }

  // ---- predicates ----------------------------------------------------------

  StatusOr<ExprPtr> ParseOr() {
    DFDB_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Eat(TokKind::kIdent, "or")) {
      DFDB_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Or(std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAnd() {
    DFDB_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Eat(TokKind::kIdent, "and")) {
      DFDB_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (Eat(TokKind::kIdent, "not")) {
      DFDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return Not(std::move(inner));
    }
    return ParseComparison();
  }

  StatusOr<ExprPtr> ParseComparison() {
    DFDB_ASSIGN_OR_RETURN(ExprPtr left, ParseAdd());
    if (PeekIs(TokKind::kOp)) {
      const std::string op = Peek().text;
      CompareOp cmp;
      if (op == "=") {
        cmp = CompareOp::kEq;
      } else if (op == "!=") {
        cmp = CompareOp::kNe;
      } else if (op == "<") {
        cmp = CompareOp::kLt;
      } else if (op == "<=") {
        cmp = CompareOp::kLe;
      } else if (op == ">") {
        cmp = CompareOp::kGt;
      } else if (op == ">=") {
        cmp = CompareOp::kGe;
      } else {
        return left;  // Arithmetic ops handled below ParseAdd.
      }
      Next();
      DFDB_ASSIGN_OR_RETURN(ExprPtr right, ParseAdd());
      return ExprPtr(std::make_shared<CompareExpr>(cmp, std::move(left),
                                                   std::move(right)));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAdd() {
    DFDB_ASSIGN_OR_RETURN(ExprPtr left, ParseMul());
    while (PeekIs(TokKind::kOp, "+") || PeekIs(TokKind::kOp, "-")) {
      const bool add = Next().text == "+";
      DFDB_ASSIGN_OR_RETURN(ExprPtr right, ParseMul());
      left = add ? Add(std::move(left), std::move(right))
                 : Sub(std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseMul() {
    DFDB_ASSIGN_OR_RETURN(ExprPtr left, ParseAtom());
    while (PeekIs(TokKind::kOp, "*") || PeekIs(TokKind::kOp, "/")) {
      const bool mul = Next().text == "*";
      DFDB_ASSIGN_OR_RETURN(ExprPtr right, ParseAtom());
      left = mul ? Mul(std::move(left), std::move(right))
                 : Div(std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAtom() {
    if (Eat(TokKind::kSymbol, "(")) {
      DFDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      DFDB_RETURN_IF_ERROR(Expect(TokKind::kSymbol, ")"));
      return inner;
    }
    if (PeekIs(TokKind::kInt)) {
      return Lit(static_cast<int32_t>(std::atoi(Next().text.c_str())));
    }
    if (PeekIs(TokKind::kFloat)) {
      return Lit(std::atof(Next().text.c_str()));
    }
    if (PeekIs(TokKind::kString)) {
      return Lit(Value::Char(Next().text));
    }
    if (PeekIs(TokKind::kIdent)) {
      const std::string name = Next().text;
      if (name == "right" && Eat(TokKind::kSymbol, ".")) {
        if (!PeekIs(TokKind::kIdent)) return ErrHere("expected column name");
        return RightCol(Next().text);
      }
      return Col(name);
    }
    return ErrHere("expected a value, column, or '('");
  }

  std::vector<Token> toks_;
  size_t i_ = 0;
};

}  // namespace

StatusOr<PlanNodePtr> ParseQuery(std::string_view text) {
  Lexer lexer(text);
  DFDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.ParseTopQuery();
}

StatusOr<ExprPtr> ParsePredicate(std::string_view text) {
  Lexer lexer(text);
  DFDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Run());
  Parser parser(std::move(tokens));
  return parser.ParseTopPredicate();
}

}  // namespace dfdb

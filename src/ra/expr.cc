#include "ra/expr.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace dfdb {

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

StatusOr<bool> Expr::EvalBool(const TupleView& left,
                              const TupleView* right) const {
  DFDB_ASSIGN_OR_RETURN(Value v, Eval(left, right));
  if (v.type() == ColumnType::kChar) {
    return Status::InvalidArgument("CHAR value used as a predicate");
  }
  DFDB_ASSIGN_OR_RETURN(double d, v.AsNumeric());
  return d != 0.0;
}

StatusOr<Value> ColumnRefExpr::Eval(const TupleView& left,
                                    const TupleView* right) const {
  if (index_ < 0) {
    return Status::FailedPrecondition("column reference not bound: " + name_);
  }
  if (side_ == Side::kLeft) return left.GetValue(index_);
  if (right == nullptr) {
    return Status::InvalidArgument(
        "right-side column referenced in single-input context: " + name_);
  }
  return right->GetValue(index_);
}

Status ColumnRefExpr::Bind(const Schema& left, const Schema* right) {
  const Schema* schema = side_ == Side::kLeft ? &left : right;
  if (schema == nullptr) {
    return Status::InvalidArgument(
        "right-side column in a single-input expression: " + name_);
  }
  auto idx = schema->ColumnIndex(name_);
  if (!idx.ok()) return idx.status();
  index_ = *idx;
  return Status::OK();
}

std::string ColumnRefExpr::ToString() const {
  return side_ == Side::kLeft ? name_ : ("right." + name_);
}

StatusOr<Value> CompareExpr::Eval(const TupleView& left,
                                  const TupleView* right) const {
  DFDB_ASSIGN_OR_RETURN(Value a, lhs_->Eval(left, right));
  DFDB_ASSIGN_OR_RETURN(Value b, rhs_->Eval(left, right));
  DFDB_ASSIGN_OR_RETURN(int c, a.Compare(b));
  bool result = false;
  switch (op_) {
    case CompareOp::kEq:
      result = c == 0;
      break;
    case CompareOp::kNe:
      result = c != 0;
      break;
    case CompareOp::kLt:
      result = c < 0;
      break;
    case CompareOp::kLe:
      result = c <= 0;
      break;
    case CompareOp::kGt:
      result = c > 0;
      break;
    case CompareOp::kGe:
      result = c >= 0;
      break;
  }
  return Value::Int32(result ? 1 : 0);
}

Status CompareExpr::Bind(const Schema& left, const Schema* right) {
  DFDB_RETURN_IF_ERROR(lhs_->Bind(left, right));
  return rhs_->Bind(left, right);
}

std::string CompareExpr::ToString() const {
  return StrFormat("(%s %s %s)", lhs_->ToString().c_str(),
                   std::string(CompareOpToString(op_)).c_str(),
                   rhs_->ToString().c_str());
}

StatusOr<Value> LogicExpr::Eval(const TupleView& left,
                                const TupleView* right) const {
  DFDB_ASSIGN_OR_RETURN(bool a, lhs_->EvalBool(left, right));
  switch (op_) {
    case LogicOp::kNot:
      return Value::Int32(a ? 0 : 1);
    case LogicOp::kAnd: {
      if (!a) return Value::Int32(0);  // Short circuit.
      DFDB_ASSIGN_OR_RETURN(bool b, rhs_->EvalBool(left, right));
      return Value::Int32(b ? 1 : 0);
    }
    case LogicOp::kOr: {
      if (a) return Value::Int32(1);
      DFDB_ASSIGN_OR_RETURN(bool b, rhs_->EvalBool(left, right));
      return Value::Int32(b ? 1 : 0);
    }
  }
  return Status::Internal("unreachable");
}

Status LogicExpr::Bind(const Schema& left, const Schema* right) {
  if (op_ == LogicOp::kNot) {
    if (rhs_ != nullptr) {
      return Status::InvalidArgument("NOT takes exactly one operand");
    }
    return lhs_->Bind(left, right);
  }
  if (rhs_ == nullptr) {
    return Status::InvalidArgument("binary logic op missing right operand");
  }
  DFDB_RETURN_IF_ERROR(lhs_->Bind(left, right));
  return rhs_->Bind(left, right);
}

std::string LogicExpr::ToString() const {
  switch (op_) {
    case LogicOp::kNot:
      return "NOT " + lhs_->ToString();
    case LogicOp::kAnd:
      return StrFormat("(%s AND %s)", lhs_->ToString().c_str(),
                       rhs_->ToString().c_str());
    case LogicOp::kOr:
      return StrFormat("(%s OR %s)", lhs_->ToString().c_str(),
                       rhs_->ToString().c_str());
  }
  return "?";
}

StatusOr<Value> ArithExpr::Eval(const TupleView& left,
                                const TupleView* right) const {
  DFDB_ASSIGN_OR_RETURN(Value a, lhs_->Eval(left, right));
  DFDB_ASSIGN_OR_RETURN(Value b, rhs_->Eval(left, right));
  const bool ints = a.type() != ColumnType::kDouble &&
                    b.type() != ColumnType::kDouble &&
                    a.type() != ColumnType::kChar &&
                    b.type() != ColumnType::kChar;
  if (ints && op_ != ArithOp::kDiv) {
    const int64_t x = a.type() == ColumnType::kInt32 ? a.as_int32() : a.as_int64();
    const int64_t y = b.type() == ColumnType::kInt32 ? b.as_int32() : b.as_int64();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int64(x + y);
      case ArithOp::kSub:
        return Value::Int64(x - y);
      case ArithOp::kMul:
        return Value::Int64(x * y);
      case ArithOp::kDiv:
        break;
    }
  }
  DFDB_ASSIGN_OR_RETURN(double x, a.AsNumeric());
  DFDB_ASSIGN_OR_RETURN(double y, b.AsNumeric());
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Double(x + y);
    case ArithOp::kSub:
      return Value::Double(x - y);
    case ArithOp::kMul:
      return Value::Double(x * y);
    case ArithOp::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(x / y);
  }
  return Status::Internal("unreachable");
}

Status ArithExpr::Bind(const Schema& left, const Schema* right) {
  DFDB_RETURN_IF_ERROR(lhs_->Bind(left, right));
  return rhs_->Bind(left, right);
}

std::string ArithExpr::ToString() const {
  const char* op = "?";
  switch (op_) {
    case ArithOp::kAdd:
      op = "+";
      break;
    case ArithOp::kSub:
      op = "-";
      break;
    case ArithOp::kMul:
      op = "*";
      break;
    case ArithOp::kDiv:
      op = "/";
      break;
  }
  return StrFormat("(%s %s %s)", lhs_->ToString().c_str(), op,
                   rhs_->ToString().c_str());
}

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Lit(int32_t v) { return Lit(Value::Int32(v)); }
ExprPtr Lit(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr Lit(double v) { return Lit(Value::Double(v)); }
ExprPtr Lit(const char* v) { return Lit(Value::Char(v)); }
ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name), Side::kLeft);
}
ExprPtr RightCol(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name), Side::kRight);
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CompareOp::kEq, std::move(l), std::move(r));
}
ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CompareOp::kNe, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CompareOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CompareOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CompareOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(CompareOp::kGe, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicExpr>(LogicOp::kAnd, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicExpr>(LogicOp::kOr, std::move(l), std::move(r));
}
ExprPtr Not(ExprPtr e) {
  return std::make_shared<LogicExpr>(LogicOp::kNot, std::move(e), nullptr);
}
ExprPtr Add(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kSub, std::move(l), std::move(r));
}
ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kMul, std::move(l), std::move(r));
}
ExprPtr Div(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kDiv, std::move(l), std::move(r));
}

}  // namespace dfdb

/// \file raql.cc
/// \brief Plan/expression → parseable RAQL text.

#include "ra/raql.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/macros.h"
#include "common/string_util.h"

namespace dfdb {

namespace {

/// True when \p name lexes as one identifier token and does not collide
/// with a grammar keyword (which would re-lex as structure, not a name).
bool IsRaqlIdentifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  static const char* kKeywords[] = {
      "restrict", "project", "join", "union", "diff",  "agg", "append",
      "delete",   "and",     "or",   "not",   "right", "as",  "dedup",
      "bag",      "count",   "sum",  "min",   "max",   "avg"};
  for (const char* kw : kKeywords) {
    if (name == kw) return false;
  }
  return true;
}

Status BadName(const char* what, const std::string& name) {
  return Status::InvalidArgument(StrFormat(
      "cannot serialize to RAQL: %s '%s' is not a plain identifier", what,
      name.c_str()));
}

StatusOr<std::string> LiteralToRaql(const Value& v) {
  switch (v.type()) {
    case ColumnType::kInt32:
      return std::to_string(v.as_int32());
    case ColumnType::kInt64: {
      const int64_t x = v.as_int64();
      if (x < std::numeric_limits<int32_t>::min() ||
          x > std::numeric_limits<int32_t>::max()) {
        return Status::InvalidArgument(
            "cannot serialize to RAQL: int64 literal out of int32 range");
      }
      return std::to_string(x);
    }
    case ColumnType::kDouble: {
      const double x = v.as_double();
      if (!std::isfinite(x)) {
        return Status::InvalidArgument(
            "cannot serialize to RAQL: non-finite double literal");
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", x);
      std::string s(buf);
      // The RAQL lexer only accepts digits and one '.' — no exponent form.
      if (s.find_first_of("eE") != std::string::npos) {
        return Status::InvalidArgument(
            "cannot serialize to RAQL: double literal needs exponent form");
      }
      if (s.find('.') == std::string::npos) s += ".0";
      return s;
    }
    case ColumnType::kChar: {
      const std::string& s = v.as_char();
      // The lexer has no escapes: a quote in the value cannot round-trip.
      if (s.find('\'') != std::string::npos) {
        return Status::InvalidArgument(
            "cannot serialize to RAQL: string literal contains a quote");
      }
      return "'" + s + "'";
    }
  }
  return Status::InvalidArgument("cannot serialize unknown literal type");
}

StatusOr<std::string> ExprText(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kLiteral:
      return LiteralToRaql(static_cast<const LiteralExpr&>(expr).value());
    case Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      if (!IsRaqlIdentifier(ref.name())) return BadName("column", ref.name());
      return ref.side() == Side::kRight ? "right." + ref.name() : ref.name();
    }
    case Expr::Kind::kCompare: {
      const auto& cmp = static_cast<const CompareExpr&>(expr);
      DFDB_ASSIGN_OR_RETURN(std::string lhs, ExprText(cmp.lhs()));
      DFDB_ASSIGN_OR_RETURN(std::string rhs, ExprText(cmp.rhs()));
      return StrFormat("(%s %s %s)", lhs.c_str(),
                       std::string(CompareOpToString(cmp.op())).c_str(),
                       rhs.c_str());
    }
    case Expr::Kind::kLogic: {
      const auto& logic = static_cast<const LogicExpr&>(expr);
      DFDB_ASSIGN_OR_RETURN(std::string lhs, ExprText(logic.lhs()));
      if (logic.op() == LogicOp::kNot) {
        return StrFormat("(not %s)", lhs.c_str());
      }
      DFDB_ASSIGN_OR_RETURN(std::string rhs, ExprText(*logic.rhs()));
      return StrFormat("(%s %s %s)", lhs.c_str(),
                       logic.op() == LogicOp::kAnd ? "and" : "or",
                       rhs.c_str());
    }
    case Expr::Kind::kArith: {
      const auto& arith = static_cast<const ArithExpr&>(expr);
      DFDB_ASSIGN_OR_RETURN(std::string lhs, ExprText(arith.lhs()));
      DFDB_ASSIGN_OR_RETURN(std::string rhs, ExprText(arith.rhs()));
      const char* op = "+";
      switch (arith.op()) {
        case ArithOp::kAdd:
          op = "+";
          break;
        case ArithOp::kSub:
          op = "-";
          break;
        case ArithOp::kMul:
          op = "*";
          break;
        case ArithOp::kDiv:
          op = "/";
          break;
      }
      return StrFormat("(%s %s %s)", lhs.c_str(), op, rhs.c_str());
    }
  }
  return Status::InvalidArgument("cannot serialize unknown expression kind");
}

StatusOr<std::string> NameList(const std::vector<std::string>& names,
                               const char* what) {
  std::string out = "[";
  for (size_t i = 0; i < names.size(); ++i) {
    if (!IsRaqlIdentifier(names[i])) return BadName(what, names[i]);
    if (i > 0) out += ", ";
    out += names[i];
  }
  out += "]";
  return out;
}

StatusOr<std::string> AggListText(const std::vector<AggregateSpec>& specs) {
  std::string out = "[";
  for (size_t i = 0; i < specs.size(); ++i) {
    const AggregateSpec& spec = specs[i];
    if (spec.func != AggregateSpec::Func::kCount &&
        !IsRaqlIdentifier(spec.column)) {
      return BadName("aggregate column", spec.column);
    }
    if (!IsRaqlIdentifier(spec.output_name)) {
      return BadName("aggregate output", spec.output_name);
    }
    const char* func = "count";
    switch (spec.func) {
      case AggregateSpec::Func::kCount:
        func = "count";
        break;
      case AggregateSpec::Func::kSum:
        func = "sum";
        break;
      case AggregateSpec::Func::kMin:
        func = "min";
        break;
      case AggregateSpec::Func::kMax:
        func = "max";
        break;
      case AggregateSpec::Func::kAvg:
        func = "avg";
        break;
    }
    if (i > 0) out += ", ";
    out += StrFormat("%s(%s) as %s", func,
                     spec.func == AggregateSpec::Func::kCount
                         ? ""
                         : spec.column.c_str(),
                     spec.output_name.c_str());
  }
  out += "]";
  return out;
}

StatusOr<std::string> PlanText(const PlanNode& node) {
  switch (node.op) {
    case PlanOp::kScan:
      if (!IsRaqlIdentifier(node.relation)) {
        return BadName("relation", node.relation);
      }
      return node.relation;
    case PlanOp::kRestrict: {
      DFDB_ASSIGN_OR_RETURN(std::string child, PlanText(node.child(0)));
      DFDB_ASSIGN_OR_RETURN(std::string pred, ExprText(*node.predicate));
      return StrFormat("restrict(%s, %s)", child.c_str(), pred.c_str());
    }
    case PlanOp::kProject: {
      // The grammar has no alias syntax; a projection that renames columns
      // cannot be expressed as text.
      for (size_t i = 0; i < node.project_aliases.size(); ++i) {
        if (!node.project_aliases[i].empty() &&
            node.project_aliases[i] != node.columns[i]) {
          return Status::InvalidArgument(
              "cannot serialize to RAQL: project aliases are not expressible");
        }
      }
      DFDB_ASSIGN_OR_RETURN(std::string child, PlanText(node.child(0)));
      DFDB_ASSIGN_OR_RETURN(std::string cols,
                            NameList(node.columns, "column"));
      return StrFormat("project(%s, %s%s)", child.c_str(), cols.c_str(),
                       node.dedup ? ", dedup" : "");
    }
    case PlanOp::kJoin: {
      DFDB_ASSIGN_OR_RETURN(std::string left, PlanText(node.child(0)));
      DFDB_ASSIGN_OR_RETURN(std::string right, PlanText(node.child(1)));
      DFDB_ASSIGN_OR_RETURN(std::string pred, ExprText(*node.predicate));
      return StrFormat("join(%s, %s, %s)", left.c_str(), right.c_str(),
                       pred.c_str());
    }
    case PlanOp::kUnion: {
      DFDB_ASSIGN_OR_RETURN(std::string left, PlanText(node.child(0)));
      DFDB_ASSIGN_OR_RETURN(std::string right, PlanText(node.child(1)));
      return StrFormat("union(%s, %s%s)", left.c_str(), right.c_str(),
                       node.bag_semantics ? ", bag" : "");
    }
    case PlanOp::kDifference: {
      DFDB_ASSIGN_OR_RETURN(std::string left, PlanText(node.child(0)));
      DFDB_ASSIGN_OR_RETURN(std::string right, PlanText(node.child(1)));
      return StrFormat("diff(%s, %s)", left.c_str(), right.c_str());
    }
    case PlanOp::kAggregate: {
      DFDB_ASSIGN_OR_RETURN(std::string child, PlanText(node.child(0)));
      DFDB_ASSIGN_OR_RETURN(std::string groups,
                            NameList(node.columns, "group column"));
      DFDB_ASSIGN_OR_RETURN(std::string specs, AggListText(node.aggregates));
      return StrFormat("agg(%s, %s, %s)", child.c_str(), groups.c_str(),
                       specs.c_str());
    }
    case PlanOp::kAppend: {
      DFDB_ASSIGN_OR_RETURN(std::string child, PlanText(node.child(0)));
      if (!IsRaqlIdentifier(node.relation)) {
        return BadName("relation", node.relation);
      }
      return StrFormat("append(%s, %s)", child.c_str(),
                       node.relation.c_str());
    }
    case PlanOp::kDelete: {
      if (!IsRaqlIdentifier(node.relation)) {
        return BadName("relation", node.relation);
      }
      DFDB_ASSIGN_OR_RETURN(std::string pred, ExprText(*node.predicate));
      return StrFormat("delete(%s, %s)", node.relation.c_str(), pred.c_str());
    }
  }
  return Status::InvalidArgument("cannot serialize unknown plan operator");
}

}  // namespace

StatusOr<std::string> ExprToRaql(const Expr& expr) { return ExprText(expr); }

StatusOr<std::string> PlanToRaql(const PlanNode& plan) {
  return PlanText(plan);
}

StatusOr<std::string> AggregateListToRaql(
    const std::vector<AggregateSpec>& specs) {
  return AggListText(specs);
}

}  // namespace dfdb

#include "ra/analyzer.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace dfdb {

namespace {

Status CheckArity(const PlanNode& node, int want) {
  if (node.num_children() != want) {
    return Status::InvalidArgument(
        StrFormat("%s expects %d input(s), got %d",
                  std::string(PlanOpToString(node.op)).c_str(), want,
                  node.num_children()));
  }
  return Status::OK();
}

/// Union compatibility: same column types and widths position by position.
Status CheckUnionCompatible(const Schema& a, const Schema& b) {
  if (a.num_columns() != b.num_columns()) {
    return Status::InvalidArgument("inputs have different column counts");
  }
  for (int i = 0; i < a.num_columns(); ++i) {
    if (a.column(i).type != b.column(i).type ||
        a.column(i).width != b.column(i).width) {
      return Status::InvalidArgument(
          StrFormat("column %d type/width mismatch between inputs", i));
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<QueryAnalysis> Analyzer::Resolve(PlanNode* root) const {
  if (root == nullptr) return Status::InvalidArgument("null query tree");
  QueryAnalysis analysis;
  int next_id = 0;
  DFDB_RETURN_IF_ERROR(ResolveNode(root, 1, &next_id, &analysis));
  analysis.num_nodes = next_id;
  return analysis;
}

Status Analyzer::ResolveNode(PlanNode* node, int depth, int* next_id,
                             QueryAnalysis* analysis) const {
  analysis->max_depth = std::max(analysis->max_depth, depth);
  for (auto& child : node->children) {
    DFDB_RETURN_IF_ERROR(ResolveNode(child.get(), depth + 1, next_id, analysis));
  }

  switch (node->op) {
    case PlanOp::kScan: {
      DFDB_RETURN_IF_ERROR(CheckArity(*node, 0));
      DFDB_ASSIGN_OR_RETURN(RelationMeta meta,
                            catalog_->GetRelation(node->relation));
      node->output_schema = meta.schema;
      analysis->read_set.insert(node->relation);
      break;
    }
    case PlanOp::kRestrict: {
      DFDB_RETURN_IF_ERROR(CheckArity(*node, 1));
      if (!node->predicate) {
        return Status::InvalidArgument("Restrict requires a predicate");
      }
      const Schema& in = node->child(0).output_schema;
      DFDB_RETURN_IF_ERROR(node->predicate->Bind(in, nullptr));
      if (node->predicate->ReferencesRight()) {
        return Status::InvalidArgument(
            "Restrict predicate references a right input");
      }
      node->output_schema = in;
      analysis->num_restricts++;
      break;
    }
    case PlanOp::kProject: {
      DFDB_RETURN_IF_ERROR(CheckArity(*node, 1));
      if (node->columns.empty()) {
        return Status::InvalidArgument("Project requires at least one column");
      }
      const Schema& in = node->child(0).output_schema;
      std::vector<int> indices;
      for (const std::string& name : node->columns) {
        DFDB_ASSIGN_OR_RETURN(int idx, in.ColumnIndex(name));
        indices.push_back(idx);
      }
      DFDB_ASSIGN_OR_RETURN(node->output_schema, in.Project(indices));
      if (!node->project_aliases.empty()) {
        if (node->project_aliases.size() != node->columns.size()) {
          return Status::InvalidArgument(
              "project aliases must match the column list in length");
        }
        std::vector<Column> renamed = node->output_schema.columns();
        for (size_t i = 0; i < renamed.size(); ++i) {
          renamed[i].name = node->project_aliases[i];
        }
        DFDB_ASSIGN_OR_RETURN(node->output_schema,
                              Schema::Create(std::move(renamed)));
      }
      analysis->num_projects++;
      break;
    }
    case PlanOp::kJoin: {
      DFDB_RETURN_IF_ERROR(CheckArity(*node, 2));
      if (!node->predicate) {
        return Status::InvalidArgument("Join requires a predicate");
      }
      const Schema& left = node->child(0).output_schema;
      const Schema& right = node->child(1).output_schema;
      DFDB_RETURN_IF_ERROR(node->predicate->Bind(left, &right));
      node->output_schema = left.Concat(right);
      analysis->num_joins++;
      break;
    }
    case PlanOp::kUnion:
    case PlanOp::kDifference: {
      DFDB_RETURN_IF_ERROR(CheckArity(*node, 2));
      DFDB_RETURN_IF_ERROR(CheckUnionCompatible(node->child(0).output_schema,
                                                node->child(1).output_schema)
                               .WithContext(std::string(PlanOpToString(node->op))));
      node->output_schema = node->child(0).output_schema;
      break;
    }
    case PlanOp::kAggregate: {
      DFDB_RETURN_IF_ERROR(CheckArity(*node, 1));
      if (node->aggregates.empty()) {
        return Status::InvalidArgument("Aggregate requires at least one spec");
      }
      const Schema& in = node->child(0).output_schema;
      std::vector<Column> out_cols;
      for (const std::string& g : node->columns) {
        DFDB_ASSIGN_OR_RETURN(int idx, in.ColumnIndex(g));
        out_cols.push_back(in.column(idx));
      }
      for (const AggregateSpec& spec : node->aggregates) {
        if (spec.output_name.empty()) {
          return Status::InvalidArgument("aggregate output name is empty");
        }
        Column col;
        col.name = spec.output_name;
        if (spec.func == AggregateSpec::Func::kCount) {
          col.type = ColumnType::kInt64;
          col.width = 8;
        } else {
          DFDB_ASSIGN_OR_RETURN(int idx, in.ColumnIndex(spec.column));
          const Column& src = in.column(idx);
          if (src.type == ColumnType::kChar &&
              spec.func != AggregateSpec::Func::kMin &&
              spec.func != AggregateSpec::Func::kMax) {
            return Status::InvalidArgument(
                "SUM/AVG require a numeric column: " + spec.column);
          }
          switch (spec.func) {
            case AggregateSpec::Func::kSum:
              col.type = src.type == ColumnType::kDouble ? ColumnType::kDouble
                                                         : ColumnType::kInt64;
              col.width = 8;
              break;
            case AggregateSpec::Func::kAvg:
              col.type = ColumnType::kDouble;
              col.width = 8;
              break;
            case AggregateSpec::Func::kMin:
            case AggregateSpec::Func::kMax:
              col.type = src.type;
              col.width = src.width;
              break;
            case AggregateSpec::Func::kCount:
              break;  // Handled above.
          }
        }
        out_cols.push_back(std::move(col));
      }
      DFDB_ASSIGN_OR_RETURN(node->output_schema,
                            Schema::Create(std::move(out_cols)));
      break;
    }
    case PlanOp::kAppend: {
      DFDB_RETURN_IF_ERROR(CheckArity(*node, 1));
      DFDB_ASSIGN_OR_RETURN(RelationMeta meta,
                            catalog_->GetRelation(node->relation));
      DFDB_RETURN_IF_ERROR(
          CheckUnionCompatible(node->child(0).output_schema, meta.schema)
              .WithContext("Append into " + node->relation));
      node->output_schema = node->child(0).output_schema;
      analysis->write_set.insert(node->relation);
      break;
    }
    case PlanOp::kDelete: {
      DFDB_RETURN_IF_ERROR(CheckArity(*node, 0));
      if (!node->predicate) {
        return Status::InvalidArgument("Delete requires a predicate");
      }
      DFDB_ASSIGN_OR_RETURN(RelationMeta meta,
                            catalog_->GetRelation(node->relation));
      DFDB_RETURN_IF_ERROR(node->predicate->Bind(meta.schema, nullptr));
      if (node->predicate->ReferencesRight()) {
        return Status::InvalidArgument(
            "Delete predicate references a right input");
      }
      node->output_schema = meta.schema;
      analysis->read_set.insert(node->relation);
      analysis->write_set.insert(node->relation);
      break;
    }
  }

  node->id = (*next_id)++;
  node->resolved = true;
  return Status::OK();
}

}  // namespace dfdb

#include "ra/plan.h"

#include "common/string_util.h"

namespace dfdb {

std::string_view PlanOpToString(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "Scan";
    case PlanOp::kRestrict:
      return "Restrict";
    case PlanOp::kProject:
      return "Project";
    case PlanOp::kJoin:
      return "Join";
    case PlanOp::kUnion:
      return "Union";
    case PlanOp::kDifference:
      return "Difference";
    case PlanOp::kAggregate:
      return "Aggregate";
    case PlanOp::kAppend:
      return "Append";
    case PlanOp::kDelete:
      return "Delete";
  }
  return "?";
}

std::string_view ScanAccessPathToString(ScanAccessPath p) {
  switch (p) {
    case ScanAccessPath::kFullScan:
      return "full_scan";
    case ScanAccessPath::kZoneMap:
      return "zone_map";
    case ScanAccessPath::kGridFile:
      return "grid_file";
  }
  return "?";
}

std::string_view AggregateFuncToString(AggregateSpec::Func f) {
  switch (f) {
    case AggregateSpec::Func::kCount:
      return "COUNT";
    case AggregateSpec::Func::kSum:
      return "SUM";
    case AggregateSpec::Func::kMin:
      return "MIN";
    case AggregateSpec::Func::kMax:
      return "MAX";
    case AggregateSpec::Func::kAvg:
      return "AVG";
  }
  return "?";
}

int PlanNode::TreeSize() const {
  int n = 1;
  for (const auto& c : children) n += c->TreeSize();
  return n;
}

std::string PlanNode::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += PlanOpToString(op);
  if (!relation.empty()) out += "(" + relation + ")";
  if (predicate) out += " [" + predicate->ToString() + "]";
  if (!columns.empty()) out += " cols={" + JoinStrings(columns, ",") + "}";
  if (op == PlanOp::kProject && dedup) out += " dedup";
  if (op == PlanOp::kAggregate) {
    std::vector<std::string> parts;
    for (const auto& a : aggregates) {
      parts.push_back(StrFormat("%s(%s)",
                                std::string(AggregateFuncToString(a.func)).c_str(),
                                a.column.c_str()));
    }
    out += " aggs={" + JoinStrings(parts, ",") + "}";
  }
  if (pipeline_fused) out += " pipelined";
  if (access_path != ScanAccessPath::kFullScan) {
    out += " via=" + std::string(ScanAccessPathToString(access_path));
    if (!index_name.empty()) out += "(" + index_name + ")";
  }
  if (pushdown) out += " pushdown";
  if (id >= 0) out += StrFormat("  #%d", id);
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->op = op;
  copy->relation = relation;
  if (predicate) {
    // Reconstruct the expression tree with unbound column refs: binding
    // mutates ColumnRefExpr, so a shared expression would race when two
    // queries cloned from one template run concurrently.
    copy->predicate = predicate->TransformColumns(
        [](const ColumnRefExpr& ref) -> ExprPtr {
          return std::make_shared<ColumnRefExpr>(ref.name(), ref.side());
        });
  }
  copy->columns = columns;
  copy->project_aliases = project_aliases;
  copy->dedup = dedup;
  copy->bag_semantics = bag_semantics;
  copy->aggregates = aggregates;
  copy->pipeline_fused = pipeline_fused;
  copy->access_path = access_path;
  copy->index_name = index_name;
  copy->prune_bounds = prune_bounds;
  copy->pushdown = pushdown;
  for (const auto& c : children) copy->children.push_back(c->Clone());
  return copy;
}

PlanNodePtr MakeScan(std::string relation) {
  auto n = std::make_unique<PlanNode>();
  n->op = PlanOp::kScan;
  n->relation = std::move(relation);
  return n;
}

PlanNodePtr MakeRestrict(PlanNodePtr child, ExprPtr predicate) {
  auto n = std::make_unique<PlanNode>();
  n->op = PlanOp::kRestrict;
  n->children.push_back(std::move(child));
  n->predicate = std::move(predicate);
  return n;
}

PlanNodePtr MakeProject(PlanNodePtr child, std::vector<std::string> columns,
                        bool dedup) {
  auto n = std::make_unique<PlanNode>();
  n->op = PlanOp::kProject;
  n->children.push_back(std::move(child));
  n->columns = std::move(columns);
  n->dedup = dedup;
  return n;
}

PlanNodePtr MakeJoin(PlanNodePtr left, PlanNodePtr right, ExprPtr predicate) {
  auto n = std::make_unique<PlanNode>();
  n->op = PlanOp::kJoin;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  n->predicate = std::move(predicate);
  return n;
}

PlanNodePtr MakeUnion(PlanNodePtr left, PlanNodePtr right, bool bag_semantics) {
  auto n = std::make_unique<PlanNode>();
  n->op = PlanOp::kUnion;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  n->bag_semantics = bag_semantics;
  return n;
}

PlanNodePtr MakeDifference(PlanNodePtr left, PlanNodePtr right) {
  auto n = std::make_unique<PlanNode>();
  n->op = PlanOp::kDifference;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanNodePtr MakeAggregate(PlanNodePtr child, std::vector<std::string> group_by,
                          std::vector<AggregateSpec> aggregates) {
  auto n = std::make_unique<PlanNode>();
  n->op = PlanOp::kAggregate;
  n->children.push_back(std::move(child));
  n->columns = std::move(group_by);
  n->aggregates = std::move(aggregates);
  return n;
}

PlanNodePtr MakeAppend(PlanNodePtr child, std::string target_relation) {
  auto n = std::make_unique<PlanNode>();
  n->op = PlanOp::kAppend;
  n->children.push_back(std::move(child));
  n->relation = std::move(target_relation);
  return n;
}

PlanNodePtr MakeDelete(std::string target_relation, ExprPtr predicate) {
  auto n = std::make_unique<PlanNode>();
  n->op = PlanOp::kDelete;
  n->relation = std::move(target_relation);
  n->predicate = std::move(predicate);
  return n;
}

}  // namespace dfdb

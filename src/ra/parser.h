/// \file parser.h
/// \brief A textual relational-algebra language ("RAQL") for dfdb.
///
/// The paper's interface is relational algebra trees; RAQL is that algebra
/// as text, so queries can be typed, logged, and shipped:
///
///   restrict(r01, k1000 < 100 and k2 = 1)
///   project(r05, [k100, val], dedup)
///   join(restrict(r01, k1000 < 100), r06, k100 = right.k100)
///   union(a, b)            union(a, b, bag)
///   diff(a, b)
///   agg(r01, [k10], [count() as n, sum(k1000) as total, avg(val) as m])
///   append(restrict(r01, k2 = 0), archive)
///   delete(archive, k1000 >= 500)
///
/// Predicates support and/or/not, the six comparisons (= != < <= > >=),
/// + - * /, integer/float/'string' literals, column names, and
/// `right.column` for the right join input. A bare identifier is a scan.

#ifndef DFDB_RA_PARSER_H_
#define DFDB_RA_PARSER_H_

#include <string>
#include <string_view>

#include "common/statusor.h"
#include "ra/plan.h"

namespace dfdb {

/// \brief Parses one RAQL query into an (unresolved) plan tree.
///
/// Errors are InvalidArgument with a position-annotated message.
StatusOr<PlanNodePtr> ParseQuery(std::string_view text);

/// \brief Parses just a predicate (testing / tooling hook).
StatusOr<ExprPtr> ParsePredicate(std::string_view text);

}  // namespace dfdb

#endif  // DFDB_RA_PARSER_H_

/// \file expr_compile.h
/// \brief Compilation of analyzed Expr trees into flat predicate programs.
///
/// The paper's core argument (Sections 3.3, 4.0) is that a page is the right
/// operand granularity because an IP can amortize per-instruction overhead
/// across every tuple on the page. The interpreted Expr::Eval path defeats
/// that: it re-walks a virtual-dispatch tree, materializes Values, and
/// threads StatusOr through every node, per tuple. Compile() lowers a bound
/// Expr once per query into a flat, allocation-free program over raw tuple
/// bytes: column offsets and types are pre-resolved from the fixed-width
/// Schema, type errors are rejected at compile time, and evaluation is a
/// tight loop with no virtual calls and no Status plumbing.
///
/// Compilation is conservative: anything whose interpreted evaluation could
/// fail per tuple (division, CHAR used as a number, unbound columns) is
/// rejected, so a successfully compiled program can never diverge from the
/// interpreted oracle — Matches() returns exactly what Expr::EvalBool()
/// would, for every tuple (see expr_compile_test's differential fuzz).
/// Callers fall back to the interpreted kernels when Compile() fails.

#ifndef DFDB_RA_EXPR_COMPILE_H_
#define DFDB_RA_EXPR_COMPILE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "common/statusor.h"
#include "ra/expr.h"

namespace dfdb {

/// \brief One pre-resolved column-vs-constant comparison (the dominant
/// predicate shape: `k1000 < 100`, `k2 = 1 AND k100 >= 7`, ...).
struct ColCompare {
  enum class Kind : uint8_t {
    kI32I,  ///< int32 column vs int64 constant.
    kI64I,  ///< int64 column vs int64 constant.
    kI32F,  ///< int32 column vs double constant (mixed promote).
    kI64F,  ///< int64 column vs double constant (mixed promote).
    kF64F,  ///< double column vs double constant.
    kStr,   ///< CHAR column (right-trimmed) vs raw constant bytes.
  };
  Kind kind = Kind::kI32I;
  CompareOp op = CompareOp::kEq;
  int32_t offset = 0;  ///< Byte offset of the column in the tuple.
  int32_t width = 0;   ///< Column width (kStr only).
  int64_t const_i = 0;
  double const_f = 0;
  std::string const_s;
};

/// Raw-byte evaluation helpers, defined in the header so the page kernels
/// can inline the per-tuple compare into their strided loops — the whole
/// point of compiling is that the hot loop has no call boundary.
namespace expr_detail {

inline bool ApplyCmp(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

/// Mirror of Value::Compare over raw operands: -1/0/1, with the same
/// NaN behaviour (neither a<b nor a>b yields 0, so NaN "equals" anything —
/// the compiled path must reproduce that, not fix it).
inline int Cmp3I(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }
inline int Cmp3F(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }

/// Byte-wise three-way compare matching std::string::compare semantics
/// (char_traits<char> compares like memcmp), sign-normalized like
/// Value::Compare.
inline int Cmp3S(const char* a, uint32_t an, const char* b, uint32_t bn) {
  const uint32_t m = an < bn ? an : bn;
  const int c = m != 0 ? std::memcmp(a, b, m) : 0;
  if (c != 0) return c < 0 ? -1 : 1;
  return an < bn ? -1 : (an > bn ? 1 : 0);
}

inline int64_t LoadI32(const char* base, int32_t off) {
  int32_t x;
  std::memcpy(&x, base + off, 4);
  return x;
}
inline int64_t LoadI64(const char* base, int32_t off) {
  int64_t x;
  std::memcpy(&x, base + off, 8);
  return x;
}
inline double LoadF64(const char* base, int32_t off) {
  double x;
  std::memcpy(&x, base + off, 8);
  return x;
}

/// Right-trims the blank padding of a CHAR column, exactly like
/// TupleView::GetValue does before building the std::string the interpreter
/// compares.
inline uint32_t TrimmedLen(const char* p, int32_t width) {
  uint32_t n = static_cast<uint32_t>(width);
  while (n > 0 && p[n - 1] == ' ') --n;
  return n;
}

inline bool EvalColCompare(const ColCompare& c, const char* t) {
  switch (c.kind) {
    case ColCompare::Kind::kI32I:
      return ApplyCmp(c.op, Cmp3I(LoadI32(t, c.offset), c.const_i));
    case ColCompare::Kind::kI64I:
      return ApplyCmp(c.op, Cmp3I(LoadI64(t, c.offset), c.const_i));
    case ColCompare::Kind::kI32F:
      return ApplyCmp(
          c.op, Cmp3F(static_cast<double>(LoadI32(t, c.offset)), c.const_f));
    case ColCompare::Kind::kI64F:
      return ApplyCmp(
          c.op, Cmp3F(static_cast<double>(LoadI64(t, c.offset)), c.const_f));
    case ColCompare::Kind::kF64F:
      return ApplyCmp(c.op, Cmp3F(LoadF64(t, c.offset), c.const_f));
    case ColCompare::Kind::kStr: {
      const char* p = t + c.offset;
      return ApplyCmp(c.op, Cmp3S(p, TrimmedLen(p, c.width), c.const_s.data(),
                                  static_cast<uint32_t>(c.const_s.size())));
    }
  }
  return false;
}

}  // namespace expr_detail

/// \brief A compiled single- or two-input predicate program.
///
/// Immutable after Compile() and safe to evaluate concurrently from many
/// workers over shared read-only pages (no mutable state in Matches()).
class CompiledPredicate {
 public:
  /// Recognized fast shapes; kGeneric runs the stack program.
  enum class Shape : uint8_t { kGeneric, kSingleCompare, kConjunction };

  /// Compiles a *bound* expression against \p left (and \p right for join
  /// predicates). Fails — and the caller must use the interpreted path —
  /// when the tree contains anything that could error per tuple (division,
  /// CHAR/numeric mixing, unbound or out-of-range columns) or exceeds the
  /// evaluation stack budget.
  static StatusOr<CompiledPredicate> Compile(const Expr& expr,
                                             const Schema& left,
                                             const Schema* right = nullptr);

  /// Evaluates against raw tuple bytes. \p right may be null iff the
  /// expression references no right-side columns (checked at compile time).
  /// Never fails: every error path was rejected by Compile().
  bool Matches(const char* left, const char* right) const;

  Shape shape() const { return shape_; }
  /// Number of stack-program instructions (0 for specialized shapes).
  size_t num_ops() const { return prog_.size(); }
  /// The conjuncts of a kSingleCompare/kConjunction shape.
  const std::vector<ColCompare>& col_compares() const { return cmps_; }

 private:
  friend class ExprCompiler;
  friend class CompiledJoinPredicate;

  /// One stack-machine instruction. Operand types were resolved at compile
  /// time, so every opcode is monomorphic.
  struct Instr {
    enum class Op : uint8_t {
      kLoadI32,   // push sign-extended int32 column [side, offset]
      kLoadI64,   // push int64 column
      kLoadF64,   // push double column
      kLoadStr,   // push right-trimmed CHAR column [side, offset, width]
      kConstI,    // push imm_i
      kConstF,    // push imm_f
      kConstStr,  // push raw constant bytes [str_off, str_len]
      kI2F,       // top: int -> double
      kI2FN,      // next-on-stack: int -> double
      kCmpI,      // pop b,a (int); push cmp(a,b) under `cmp` as 0/1
      kCmpF,      // same over doubles
      kCmpS,      // same over (ptr,len) strings, memcmp order
      kToBoolI,   // top: int -> (x != 0)
      kToBoolF,   // top: double -> (d != 0.0) as int
      kAnd,       // pop b,a (bools); push a & b
      kOr,        // pop b,a (bools); push a | b
      kNot,       // top: bool -> 1 - x
      kAddI, kSubI, kMulI,  // int64 arithmetic
      kAddF, kSubF, kMulF,  // double arithmetic
    };
    Op op;
    CompareOp cmp = CompareOp::kEq;
    uint8_t side = 0;
    int32_t offset = 0;
    int32_t width = 0;
    int64_t imm_i = 0;
    double imm_f = 0;
    uint32_t str_off = 0;
    uint32_t str_len = 0;
  };

  bool RunProgram(const char* left, const char* right) const;

  Shape shape_ = Shape::kGeneric;
  std::vector<ColCompare> cmps_;  // kSingleCompare / kConjunction.
  std::vector<Instr> prog_;       // kGeneric.
  std::string pool_;              // Constant string bytes (kConstStr).
};

/// \brief One `outer.col = inner.col` equality conjunct of a join predicate,
/// usable as a hash key. Restricted to identical non-double column types so
/// raw-byte (or right-trimmed, for CHAR) equality coincides exactly with the
/// interpreted Value::Compare semantics.
struct EquiKey {
  ColumnType type = ColumnType::kInt32;
  int32_t outer_offset = 0;
  int32_t inner_offset = 0;
  int32_t outer_width = 0;
  int32_t inner_width = 0;
};

/// \brief A compiled join predicate: extracted equi-keys plus a residual
/// program, and a full program for the nested-loops fallback.
class CompiledJoinPredicate {
 public:
  /// Compiles a bound join predicate over (outer, inner). Fails under the
  /// same conditions as CompiledPredicate::Compile, in which case the
  /// caller must run the interpreted nested-loops join.
  static StatusOr<CompiledJoinPredicate> Compile(const Expr& pred,
                                                 const Schema& outer,
                                                 const Schema& inner);

  /// True when at least one hashable equality conjunct was found; the
  /// kernel then builds a hash table over the inner page instead of running
  /// the O(n*m) nested loops.
  bool hash_eligible() const { return !keys_.empty(); }
  const std::vector<EquiKey>& keys() const { return keys_; }

  bool has_residual() const { return !residuals_.empty(); }
  /// The non-equi-key remainder of the predicate (one compiled program per
  /// leftover AND-conjunct); true when empty.
  bool ResidualMatches(const char* outer, const char* inner) const {
    for (const CompiledPredicate& r : residuals_) {
      if (!r.Matches(outer, inner)) return false;
    }
    return true;
  }

  /// The full predicate (for the program-driven nested-loops path).
  bool Matches(const char* outer, const char* inner) const {
    return full_.Matches(outer, inner);
  }

 private:
  std::vector<EquiKey> keys_;
  std::vector<CompiledPredicate> residuals_;
  CompiledPredicate full_;
};

/// \brief A fused unary pipeline program: an ordered list of compiled
/// filter and projection steps applied in one pass over raw input tuple
/// bytes.
///
/// This is the compiled form of a restrict→project→… chain whose edges the
/// optimizer marked pipelineable: the kernel (RunFusedPipeline,
/// operators/kernels.h) walks every input tuple through all steps and
/// emits survivors straight into the downstream PageSink — the
/// intermediate Pages the chain would otherwise materialize per operator
/// are never built. Steps are appended bottom-up (deepest operator first).
/// Immutable once built and safe to run concurrently (no mutable state).
class FusedPipeline {
 public:
  /// A contiguous byte range of the step's input tuple (projection runs,
  /// merged like ProjectPage's).
  struct ColumnRun {
    int32_t offset = 0;
    int32_t width = 0;
  };

  struct Step {
    enum class Kind : uint8_t { kFilter, kProject };
    Kind kind = Kind::kFilter;
    CompiledPredicate filter;      ///< kFilter only.
    std::vector<ColumnRun> runs;   ///< kProject only.
    int32_t out_width = 0;         ///< Tuple width leaving this step.
  };

  /// \p input_width is the tuple width entering the pipeline (the fused
  /// chain's deepest input).
  explicit FusedPipeline(int32_t input_width)
      : input_width_(input_width), output_width_(input_width) {}
  FusedPipeline() = default;

  /// Appends a filter over the current layout. The predicate must have
  /// been compiled against the schema of the tuples reaching this step.
  void AddFilter(CompiledPredicate pred) {
    Step s;
    s.kind = Step::Kind::kFilter;
    s.filter = std::move(pred);
    s.out_width = output_width_;
    steps_.push_back(std::move(s));
  }

  /// Appends a projection of \p indices out of \p current — the schema of
  /// the tuples reaching this step. Adjacent columns merge into runs.
  void AddProject(const Schema& current, const std::vector<int>& indices) {
    Step s;
    s.kind = Step::Kind::kProject;
    int32_t width = 0;
    for (int i : indices) {
      const int32_t off = current.offset(i);
      const int32_t w = current.column(i).width;
      if (!s.runs.empty() &&
          s.runs.back().offset + s.runs.back().width == off) {
        s.runs.back().width += w;
      } else {
        s.runs.push_back(ColumnRun{off, w});
      }
      width += w;
    }
    s.out_width = width;
    output_width_ = width;
    steps_.push_back(std::move(s));
  }

  bool empty() const { return steps_.empty(); }
  size_t num_steps() const { return steps_.size(); }
  const std::vector<Step>& steps() const { return steps_; }
  int32_t input_width() const { return input_width_; }
  /// Width of the tuples the pipeline emits.
  int32_t output_width() const { return output_width_; }

 private:
  std::vector<Step> steps_;
  int32_t input_width_ = 0;
  int32_t output_width_ = 0;
};

inline bool CompiledPredicate::Matches(const char* left,
                                       const char* right) const {
  switch (shape_) {
    case Shape::kSingleCompare:
      return expr_detail::EvalColCompare(cmps_[0], left);
    case Shape::kConjunction:
      for (const ColCompare& c : cmps_) {
        if (!expr_detail::EvalColCompare(c, left)) return false;
      }
      return true;
    case Shape::kGeneric:
      return RunProgram(left, right);
  }
  return false;
}

}  // namespace dfdb

#endif  // DFDB_RA_EXPR_COMPILE_H_

/// \file raql.h
/// \brief Plan → RAQL text serialization (the inverse of ra/parser.h).
///
/// The distributed coordinator ships plan fragments to workers as RAQL
/// text over the wire (dist/coordinator.h), so plan trees must round-trip
/// through the textual language. PlanNode::ToString and Expr::ToString are
/// debugging renderings and are *not* parseable; these functions emit text
/// that ParseQuery/ParsePredicate accept and that resolves to the same
/// query.
///
/// Serialization is total-or-error: constructs the grammar cannot express
/// (project aliases, non-finite doubles, literals with quotes, identifiers
/// that collide with keywords) yield InvalidArgument instead of silently
/// emitting unparseable text.

#ifndef DFDB_RA_RAQL_H_
#define DFDB_RA_RAQL_H_

#include <string>

#include "common/statusor.h"
#include "ra/expr.h"
#include "ra/plan.h"

namespace dfdb {

/// Renders \p expr as RAQL predicate text (fully parenthesized). The result
/// parses back (ParsePredicate) to an expression with identical semantics.
StatusOr<std::string> ExprToRaql(const Expr& expr);

/// Renders \p plan as a RAQL query. Works on resolved and unresolved trees
/// alike (only the logical fields are consulted). The result parses back
/// (ParseQuery) to an equivalent tree.
StatusOr<std::string> PlanToRaql(const PlanNode& plan);

/// Renders an aggregate spec list as the bracketed RAQL form
/// `[count() as n, sum(col) as s, ...]` — the piece the distributed
/// fragment planner needs when it rebuilds an agg() call over an exchange
/// temp relation instead of a serialized subtree.
StatusOr<std::string> AggregateListToRaql(
    const std::vector<AggregateSpec>& specs);

}  // namespace dfdb

#endif  // DFDB_RA_RAQL_H_

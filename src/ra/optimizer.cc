#include "ra/optimizer.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/macros.h"
#include "common/string_util.h"
#include "ra/expr_compile.h"

namespace dfdb {

namespace {

/// Splits an AND tree into its conjuncts.
void CollectConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  const auto* logic = dynamic_cast<const LogicExpr*>(e.get());
  if (logic != nullptr && logic->op() == LogicOp::kAnd) {
    CollectConjuncts(logic->shared_lhs(), out);
    CollectConjuncts(logic->shared_rhs(), out);
    return;
  }
  out->push_back(e);
}

/// Rebuilds an AND of \p conjuncts (nullptr if empty).
ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc;
  for (const ExprPtr& c : conjuncts) {
    acc = acc == nullptr ? c : And(acc, c);
  }
  return acc;
}

/// Clones an expression tree (column refs reconstructed unbound).
ExprPtr CloneExpr(const Expr& e) {
  return e.TransformColumns([](const ColumnRefExpr& ref) {
    return std::make_shared<ColumnRefExpr>(ref.name(), ref.side());
  });
}

/// Swaps the sides of every column reference (for join input swapping).
ExprPtr SwapSides(const Expr& e) {
  return e.TransformColumns([](const ColumnRefExpr& ref) {
    return std::make_shared<ColumnRefExpr>(
        ref.name(),
        ref.side() == Side::kLeft ? Side::kRight : Side::kLeft);
  });
}

/// True if every column named in \p e exists in \p schema (left side only).
bool AllColumnsIn(const Expr& e, const Schema& schema) {
  std::vector<const ColumnRefExpr*> refs;
  e.CollectColumnRefs(&refs);
  for (const ColumnRefExpr* ref : refs) {
    if (ref->side() != Side::kLeft) return false;
    if (!schema.ColumnIndex(ref->name()).ok()) return false;
  }
  return true;
}

/// If \p name matches the benchmark convention "k<N>", returns N.
bool UniformDomain(const std::string& name, double* domain) {
  if (name.size() < 2 || name[0] != 'k') return false;
  double d = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    d = d * 10 + (name[i] - '0');
  }
  if (d <= 0) return false;
  *domain = d;
  return true;
}

}  // namespace

std::string OptimizerReport::ToString() const {
  return StrFormat(
      "merged=%d pushed=%d swapped=%d fused=%d materialized=%d "
      "scans(full=%d zonemap=%d gridfile=%d) pushdown=%d",
      restricts_merged, predicates_pushed, joins_swapped, edges_fused,
      edges_materialized, scans_full, scans_zonemap, scans_gridfile,
      scans_pushdown);
}

double Optimizer::EstimateSelectivity(const Expr& pred,
                                      const Schema& schema) const {
  if (const auto* cmp = dynamic_cast<const CompareExpr*>(&pred)) {
    // Column-vs-literal with a known uniform domain gets an exact estimate.
    const auto* col = dynamic_cast<const ColumnRefExpr*>(&cmp->lhs());
    const auto* lit = dynamic_cast<const LiteralExpr*>(&cmp->rhs());
    if (col == nullptr || lit == nullptr) {
      // Mirror literal-vs-column.
      col = dynamic_cast<const ColumnRefExpr*>(&cmp->rhs());
      lit = dynamic_cast<const LiteralExpr*>(&cmp->lhs());
    }
    double domain = 0;
    if (col != nullptr && lit != nullptr &&
        UniformDomain(col->name(), &domain) &&
        lit->value().type() != ColumnType::kChar) {
      const double v = lit->value().AsNumeric().value_or(0.0);
      const double frac = std::clamp(v / domain, 0.0, 1.0);
      switch (cmp->op()) {
        case CompareOp::kEq:
          return 1.0 / domain;
        case CompareOp::kNe:
          return 1.0 - 1.0 / domain;
        case CompareOp::kLt:
        case CompareOp::kLe:
          return frac;
        case CompareOp::kGt:
        case CompareOp::kGe:
          return 1.0 - frac;
      }
    }
    switch (cmp->op()) {
      case CompareOp::kEq:
        return 0.05;
      case CompareOp::kNe:
        return 0.95;
      default:
        return 1.0 / 3.0;
    }
  }
  if (const auto* logic = dynamic_cast<const LogicExpr*>(&pred)) {
    const double s1 = EstimateSelectivity(logic->lhs(), schema);
    switch (logic->op()) {
      case LogicOp::kNot:
        return 1.0 - s1;
      case LogicOp::kAnd: {
        const double s2 = EstimateSelectivity(*logic->rhs(), schema);
        return s1 * s2;
      }
      case LogicOp::kOr: {
        const double s2 = EstimateSelectivity(*logic->rhs(), schema);
        return s1 + s2 - s1 * s2;
      }
    }
  }
  return 0.5;
}

double Optimizer::EstimateRows(const PlanNode& node) const {
  switch (node.op) {
    case PlanOp::kScan: {
      auto meta = catalog_->GetRelation(node.relation);
      if (!meta.ok()) return 1000.0;
      return std::max<double>(1.0, static_cast<double>(meta->tuple_count));
    }
    case PlanOp::kRestrict: {
      const double child = EstimateRows(node.child(0));
      const double sel = node.predicate == nullptr
                             ? 0.5
                             : EstimateSelectivity(*node.predicate,
                                                   node.child(0).output_schema);
      return std::max(1.0, child * sel);
    }
    case PlanOp::kProject: {
      const double child = EstimateRows(node.child(0));
      return node.dedup ? std::max(1.0, child * 0.7) : child;
    }
    case PlanOp::kJoin: {
      const double l = EstimateRows(node.child(0));
      const double r = EstimateRows(node.child(1));
      double sel = 0.25;
      // Equi-join on a uniform-domain key: 1/domain.
      if (const auto* cmp =
              dynamic_cast<const CompareExpr*>(node.predicate.get())) {
        if (cmp->op() == CompareOp::kEq) {
          const auto* a = dynamic_cast<const ColumnRefExpr*>(&cmp->lhs());
          double domain = 0;
          if (a != nullptr && UniformDomain(a->name(), &domain)) {
            sel = 1.0 / domain;
          } else {
            sel = 0.01;
          }
        }
      }
      return std::max(1.0, l * r * sel);
    }
    case PlanOp::kUnion: {
      const double sum =
          EstimateRows(node.child(0)) + EstimateRows(node.child(1));
      return node.bag_semantics ? sum : std::max(1.0, sum * 0.8);
    }
    case PlanOp::kDifference:
      return std::max(1.0, EstimateRows(node.child(0)) * 0.5);
    case PlanOp::kAggregate: {
      const double child = EstimateRows(node.child(0));
      return node.columns.empty() ? 1.0 : std::max(1.0, child * 0.1);
    }
    case PlanOp::kAppend:
      return EstimateRows(node.child(0));
    case PlanOp::kDelete: {
      auto meta = catalog_->GetRelation(node.relation);
      return meta.ok() ? static_cast<double>(meta->tuple_count) : 1000.0;
    }
  }
  return 1000.0;
}

namespace {

/// One optimization pass over a resolved tree (recursive, bottom-up).
/// Rewrites in place; returns counters through \p report.
class Rewriter {
 public:
  Rewriter(const Optimizer* optimizer, OptimizerReport* report)
      : optimizer_(optimizer), report_(report) {}

  void Rewrite(PlanNodePtr* node) {
    for (auto& child : (*node)->children) {
      Rewrite(&child);
    }
    MergeRestricts(node);
    PushThroughUnion(node);
    PushThroughProject(node);
    PushIntoJoin(node);
    ReorderJoin(node);
  }

 private:
  /// restrict(restrict(x, p), q) => restrict(x, q AND p).
  void MergeRestricts(PlanNodePtr* node) {
    PlanNode& n = **node;
    if (n.op != PlanOp::kRestrict || n.child(0).op != PlanOp::kRestrict) {
      return;
    }
    PlanNodePtr inner = std::move(n.children[0]);
    n.predicate = And(n.predicate, inner->predicate);
    n.children[0] = std::move(inner->children[0]);
    report_->restricts_merged++;
  }

  /// restrict(union(a, b), p) => union(restrict(a, p), restrict(b, p)).
  void PushThroughUnion(PlanNodePtr* node) {
    PlanNode& n = **node;
    if (n.op != PlanOp::kRestrict || n.child(0).op != PlanOp::kUnion) return;
    PlanNodePtr u = std::move(n.children[0]);
    ExprPtr pred = n.predicate;
    u->children[0] =
        MakeRestrict(std::move(u->children[0]), CloneExpr(*pred));
    u->children[1] =
        MakeRestrict(std::move(u->children[1]), CloneExpr(*pred));
    report_->predicates_pushed += 2;
    *node = std::move(u);
  }

  /// restrict(project(x, cols), p) => project(restrict(x, p'), cols) where
  /// p' renames output columns back to the input names. Only when every
  /// projected column name maps uniquely (no dedup-breaking: restrict
  /// commutes with dedup-project).
  void PushThroughProject(PlanNodePtr* node) {
    PlanNode& n = **node;
    if (n.op != PlanOp::kRestrict || n.child(0).op != PlanOp::kProject) return;
    PlanNode& proj = n.child(0);
    // Output name -> input name mapping.
    const Schema& out = proj.output_schema;
    if (out.num_columns() != static_cast<int>(proj.columns.size())) return;
    std::map<std::string, std::string> rename;
    for (int i = 0; i < out.num_columns(); ++i) {
      rename[out.column(i).name] = proj.columns[static_cast<size_t>(i)];
    }
    ExprPtr renamed = n.predicate->TransformColumns(
        [&rename](const ColumnRefExpr& ref) -> ExprPtr {
          auto it = rename.find(ref.name());
          return std::make_shared<ColumnRefExpr>(
              it != rename.end() ? it->second : ref.name(), ref.side());
        });
    PlanNodePtr p = std::move(n.children[0]);
    p->children[0] = MakeRestrict(std::move(p->children[0]), renamed);
    report_->predicates_pushed++;
    *node = std::move(p);
  }

  /// restrict(join(l, r), p): conjuncts of p whose columns all exist in
  /// l's schema move onto l. (Right-side pushes would need the rename map
  /// of Concat; left names pass through unchanged, so only those move.)
  void PushIntoJoin(PlanNodePtr* node) {
    PlanNode& n = **node;
    if (n.op != PlanOp::kRestrict || n.child(0).op != PlanOp::kJoin) return;
    PlanNode& join = n.child(0);
    const Schema& left_schema = join.child(0).output_schema;
    std::vector<ExprPtr> conjuncts;
    CollectConjuncts(n.predicate, &conjuncts);
    std::vector<ExprPtr> pushed, kept;
    for (ExprPtr& c : conjuncts) {
      if (AllColumnsIn(*c, left_schema)) {
        pushed.push_back(CloneExpr(*c));
      } else {
        kept.push_back(c);
      }
    }
    if (pushed.empty()) return;
    join.children[0] =
        MakeRestrict(std::move(join.children[0]), AndAll(pushed));
    report_->predicates_pushed += static_cast<int>(pushed.size());
    if (kept.empty()) {
      // The whole restrict moved; splice it out.
      *node = std::move(n.children[0]);
    } else {
      n.predicate = AndAll(kept);
    }
  }

  /// join(small, big) => project(join(big, small)): more outer pages means
  /// more parallelism across IPs, and a smaller inner relation means less
  /// broadcast traffic and shorter IRC vectors. The wrapping projection
  /// restores the original output schema (column order and names), because
  /// swapping the inputs both reorders the concatenation and flips which
  /// duplicate names get the "_r" suffix.
  void ReorderJoin(PlanNodePtr* node) {
    PlanNode& n = **node;
    if (n.op != PlanOp::kJoin || !n.resolved) return;
    const double left = optimizer_->EstimateRows(n.child(0));
    const double right = optimizer_->EstimateRows(n.child(1));
    if (left >= right) return;

    const Schema original = n.output_schema;
    const Schema& old_left = n.child(0).output_schema;
    const Schema& old_right = n.child(1).output_schema;
    const int old_left_n = old_left.num_columns();
    const int old_right_n = old_right.num_columns();
    // A child rewritten earlier in this pass leaves this node's schema
    // stale (it reflects the pre-rewrite children). Defer to the next
    // fixpoint pass, which re-resolves before rules run again.
    if (!n.child(0).resolved || !n.child(1).resolved ||
        original.num_columns() != old_left_n + old_right_n) {
      return;
    }
    const Schema swapped = old_right.Concat(old_left);

    std::vector<std::string> cols;
    std::vector<std::string> aliases;
    cols.reserve(static_cast<size_t>(original.num_columns()));
    for (int i = 0; i < original.num_columns(); ++i) {
      const int swapped_pos =
          i < old_left_n ? old_right_n + i : i - old_left_n;
      cols.push_back(swapped.column(swapped_pos).name);
      aliases.push_back(original.column(i).name);
    }

    std::swap(n.children[0], n.children[1]);
    n.predicate = SwapSides(*n.predicate);
    PlanNodePtr wrapper = MakeProject(std::move(*node), std::move(cols));
    wrapper->project_aliases = std::move(aliases);
    *node = std::move(wrapper);
    report_->joins_swapped++;
  }

  const Optimizer* optimizer_;
  OptimizerReport* report_;
};

/// Why an edge cannot fuse (safety conditions only; stats come later).
enum class FuseVeto {
  kNone,
  kUnsupportedProducer,
  kUnsupportedConsumer,
  kPredicateNotCompiled,
};

/// The safety half of the per-edge decision. Mirrors the compile-or-
/// interpret contract: whenever any link of the chain cannot be *proven*
/// safe to stream, the edge materializes.
FuseVeto ClassifyEdgeSafety(const PlanNode& producer,
                            const PlanNode& consumer) {
  if (!producer.resolved || producer.num_children() < 1) {
    return FuseVeto::kUnsupportedProducer;
  }
  switch (producer.op) {
    case PlanOp::kRestrict:
      if (producer.predicate == nullptr ||
          !CompiledPredicate::Compile(*producer.predicate,
                                      producer.child(0).output_schema)
               .ok()) {
        return FuseVeto::kPredicateNotCompiled;
      }
      break;
    case PlanOp::kProject:
      // Duplicate elimination needs the whole input before any output row
      // is final — not streamable.
      if (producer.dedup) return FuseVeto::kUnsupportedProducer;
      break;
    default:
      return FuseVeto::kUnsupportedProducer;
  }
  switch (consumer.op) {
    case PlanOp::kJoin:
      return FuseVeto::kNone;
    case PlanOp::kRestrict:
      // The consumer's own predicate becomes the last step of the fused
      // program, so it must compile too.
      if (consumer.predicate == nullptr || !consumer.resolved ||
          !CompiledPredicate::Compile(*consumer.predicate,
                                      consumer.child(0).output_schema)
               .ok()) {
        return FuseVeto::kPredicateNotCompiled;
      }
      return FuseVeto::kNone;
    case PlanOp::kProject:
      return consumer.dedup ? FuseVeto::kUnsupportedConsumer
                            : FuseVeto::kNone;
    default:
      return FuseVeto::kUnsupportedConsumer;
  }
}

}  // namespace

bool PipelineEdgeSafe(const PlanNode& producer, const PlanNode& consumer) {
  return ClassifyEdgeSafety(producer, consumer) == FuseVeto::kNone;
}

void Optimizer::DecidePipelining(PlanNode* root,
                                 OptimizerReport* report) const {
  for (auto& child : root->children) {
    DecidePipelining(child.get(), report);
    PlanNode& producer = *child;
    // Scan edges are storage reads: the staging path already streams them,
    // so they are not materialize-vs-pipeline decisions.
    if (producer.op == PlanOp::kScan) continue;
    producer.pipeline_fused = false;
    switch (ClassifyEdgeSafety(producer, *root)) {
      case FuseVeto::kUnsupportedProducer:
        report->fallback_unsupported_producer++;
        report->edges_materialized++;
        continue;
      case FuseVeto::kUnsupportedConsumer:
        report->fallback_unsupported_consumer++;
        report->edges_materialized++;
        continue;
      case FuseVeto::kPredicateNotCompiled:
        report->fallback_predicate_not_compiled++;
        report->edges_materialized++;
        continue;
      case FuseVeto::kNone:
        break;
    }
    // Stats veto: an edge into a join that multiplies each streamed row
    // beyond the fanout limit materializes, so the buffer hierarchy (not a
    // live pipeline) absorbs the expansion.
    if (root->op == PlanOp::kJoin) {
      const double in = std::max(1.0, EstimateRows(producer));
      const double out = EstimateRows(*root);
      if (out / in > kPipelineFanoutLimit) {
        report->fallback_high_fanout++;
        report->edges_materialized++;
        continue;
      }
    }
    producer.pipeline_fused = true;
    report->edges_fused++;
  }
}

void Optimizer::DecideAccessPaths(PlanNode* root,
                                  OptimizerReport* report) const {
  for (auto& child : root->children) DecideAccessPaths(child.get(), report);

  // Count bare scans (joins, projects, appends reading whole relations) as
  // full scans; only the restrict-over-scan shape below upgrades.
  if (root->op == PlanOp::kScan) {
    root->access_path = ScanAccessPath::kFullScan;
    root->prune_bounds.clear();
    root->index_name.clear();
    report->scans_full++;
    return;
  }
  if (root->op != PlanOp::kRestrict || root->predicate == nullptr ||
      root->num_children() != 1 || root->child(0).op != PlanOp::kScan ||
      !root->child(0).resolved) {
    return;
  }
  PlanNode& scan = root->child(0);
  auto compiled = CompiledPredicate::Compile(*root->predicate,
                                             scan.output_schema);
  if (!compiled.ok() || compiled->col_compares().empty()) {
    return;  // Generic predicate: no extractable bounds, stays full scan.
  }
  // The compiled conjuncts are exactly the bounds pruning tests pages
  // against — already offset/type-resolved against the scan schema.
  scan.prune_bounds = compiled->col_compares();
  scan.access_path = ScanAccessPath::kZoneMap;
  report->scans_full--;

  // Grid-file upgrade: a catalog index over one of the bound columns, and
  // a selective enough predicate that probing beats scanning the scale.
  for (const IndexMeta& index : catalog_->GetIndexesFor(scan.relation)) {
    bool covers = false;
    for (const std::string& col : index.columns) {
      auto idx = scan.output_schema.ColumnIndex(col);
      if (!idx.ok()) continue;
      const int32_t offset = scan.output_schema.offset(*idx);
      for (const ColCompare& c : scan.prune_bounds) {
        if (c.offset == offset && c.op != CompareOp::kNe &&
            c.kind != ColCompare::Kind::kStr) {
          covers = true;
          break;
        }
      }
      if (covers) break;
    }
    if (!covers) continue;
    if (EstimateSelectivity(*root->predicate, scan.output_schema) >
        kGridFileSelectivity) {
      continue;
    }
    scan.access_path = ScanAccessPath::kGridFile;
    scan.index_name = index.name;
    break;
  }
  if (scan.access_path == ScanAccessPath::kGridFile) {
    report->scans_gridfile++;
  } else {
    report->scans_zonemap++;
  }
}

void Optimizer::DecidePushdown(PlanNode* root, OptimizerReport* report) const {
  for (auto& child : root->children) DecidePushdown(child.get(), report);

  if (root->op == PlanOp::kScan) {
    root->pushdown = false;  // Bare scans ship raw pages; nothing to filter.
    return;
  }
  if (root->op != PlanOp::kRestrict || root->predicate == nullptr ||
      root->num_children() != 1 || root->child(0).op != PlanOp::kScan ||
      !root->child(0).resolved) {
    return;
  }
  PlanNode& scan = root->child(0);
  auto compiled = CompiledPredicate::Compile(*root->predicate,
                                             scan.output_schema);
  if (!compiled.ok()) {
    report->pushdown_rejected++;
    return;  // Interpreted predicates stay at the processors.
  }
  // Device breakeven: the in-cache scan runs at filter_rate, survivors ship
  // at port_rate; the raw path ships everything at port_rate. With the
  // default 4x internal rate the filter wins below 75% survival.
  if (EstimateSelectivity(*root->predicate, scan.output_schema) >
      kPushdownSelectivity) {
    report->pushdown_rejected++;
    return;
  }
  scan.pushdown = true;
  report->scans_pushdown++;
}

StatusOr<PlanNodePtr> Optimizer::Optimize(const PlanNode& plan,
                                          OptimizerReport* report) const {
  Analyzer analyzer(catalog_);
  PlanNodePtr original = plan.Clone();
  DFDB_RETURN_IF_ERROR(analyzer.Resolve(original.get()).status());

  PlanNodePtr optimized = original->Clone();
  DFDB_RETURN_IF_ERROR(analyzer.Resolve(optimized.get()).status());
  OptimizerReport local;
  Rewriter rewriter(this, &local);
  // Run to a fixpoint (pushes can expose further merges), bounded for
  // safety.
  for (int pass = 0; pass < 5; ++pass) {
    const int before = local.restricts_merged + local.predicates_pushed +
                       local.joins_swapped;
    rewriter.Rewrite(&optimized);
    // Rules need resolved schemas; rebind between passes.
    auto mid = analyzer.Resolve(optimized.get());
    if (!mid.ok()) break;
    const int after = local.restricts_merged + local.predicates_pushed +
                      local.joins_swapped;
    if (after == before) break;
  }

  // Safety: a rewrite must re-resolve; if not, keep the original.
  auto reresolved = analyzer.Resolve(optimized.get());
  if (!reresolved.ok()) {
    OptimizerReport fallback;  // Zero rewrites, but edges still decided.
    DecidePipelining(original.get(), &fallback);
    DecideAccessPaths(original.get(), &fallback);
    DecidePushdown(original.get(), &fallback);
    if (report != nullptr) *report = fallback;
    return original;
  }
  DecidePipelining(optimized.get(), &local);
  DecideAccessPaths(optimized.get(), &local);
  DecidePushdown(optimized.get(), &local);
  if (report != nullptr) *report = local;
  return optimized;
}

std::vector<EquiJoinKey> ExtractEquiJoinKeys(const PlanNode& join) {
  std::vector<EquiJoinKey> keys;
  if (join.op != PlanOp::kJoin || join.predicate == nullptr ||
      join.num_children() != 2 || !join.child(0).resolved ||
      !join.child(1).resolved) {
    return keys;
  }
  const Schema& left = join.child(0).output_schema;
  const Schema& right = join.child(1).output_schema;
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(join.predicate, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() != Expr::Kind::kCompare) continue;
    const auto& cmp = static_cast<const CompareExpr&>(*c);
    if (cmp.op() != CompareOp::kEq) continue;
    if (cmp.lhs().kind() != Expr::Kind::kColumnRef ||
        cmp.rhs().kind() != Expr::Kind::kColumnRef) {
      continue;
    }
    const auto* a = static_cast<const ColumnRefExpr*>(&cmp.lhs());
    const auto* b = static_cast<const ColumnRefExpr*>(&cmp.rhs());
    if (a->side() == Side::kRight && b->side() == Side::kLeft) std::swap(a, b);
    if (a->side() != Side::kLeft || b->side() != Side::kRight) continue;
    auto li = left.ColumnIndex(a->name());
    auto ri = right.ColumnIndex(b->name());
    if (!li.ok() || !ri.ok()) continue;
    const Column& lc = left.column(*li);
    const Column& rc = right.column(*ri);
    if (lc.type != rc.type || lc.type == ColumnType::kDouble) continue;
    keys.push_back(EquiJoinKey{a->name(), b->name()});
  }
  return keys;
}

}  // namespace dfdb

/// \file expr.h
/// \brief Scalar expression trees: predicates and arithmetic over tuples.
///
/// Expressions are evaluated against one tuple (restrict/project) or a pair
/// of tuples (join predicates). A ColumnRef names its input side so the same
/// machinery serves both cases.

#ifndef DFDB_RA_EXPR_H_
#define DFDB_RA_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "common/status.h"
#include "common/statusor.h"
#include "storage/tuple.h"

namespace dfdb {

class Expr;
class ColumnRefExpr;
/// Expressions are shared mutable only during Bind(); after analysis they
/// are treated as immutable and may be read concurrently.
using ExprPtr = std::shared_ptr<Expr>;

/// Comparison and arithmetic operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicOp { kAnd, kOr, kNot };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

std::string_view CompareOpToString(CompareOp op);

/// \brief Which input tuple a column reference reads from.
enum class Side : int { kLeft = 0, kRight = 1 };

/// \brief Immutable expression node.
///
/// Construction helpers live at the bottom of this header. Expressions are
/// shared (shared_ptr) because plans are cloned across engine runs.
class Expr {
 public:
  enum class Kind { kLiteral, kColumnRef, kCompare, kLogic, kArith };

  virtual ~Expr() = default;

  Kind kind() const { return kind_; }

  /// Evaluates against \p left (and \p right, required iff some ColumnRef
  /// uses Side::kRight).
  virtual StatusOr<Value> Eval(const TupleView& left,
                               const TupleView* right) const = 0;

  /// Convenience wrapper: evaluates and coerces to bool. Any non-zero
  /// numeric is true; CHAR values are an error.
  StatusOr<bool> EvalBool(const TupleView& left, const TupleView* right) const;

  /// Binds column names to indices and checks types against the schemas.
  /// \p right may be null for single-input expressions.
  virtual Status Bind(const Schema& left, const Schema* right) = 0;

  /// True if any node references Side::kRight.
  virtual bool ReferencesRight() const = 0;

  /// Appends every column reference in the tree to \p out (analysis hook
  /// for the optimizer: which sides/names a predicate touches).
  virtual void CollectColumnRefs(
      std::vector<const ColumnRefExpr*>* out) const = 0;

  /// Rebuilds the tree, replacing every column reference with
  /// \p fn(ref) — the optimizer's mechanism for side swaps (join input
  /// reordering) and renames (pushing predicates through projections).
  /// The result is unbound; call Bind() before evaluating.
  virtual ExprPtr TransformColumns(
      const std::function<ExprPtr(const ColumnRefExpr&)>& fn) const = 0;

  virtual std::string ToString() const = 0;

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// \brief A constant Value.
class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(Kind::kLiteral), value_(std::move(v)) {}

  StatusOr<Value> Eval(const TupleView&, const TupleView*) const override {
    return value_;
  }
  Status Bind(const Schema&, const Schema*) override { return Status::OK(); }
  bool ReferencesRight() const override { return false; }
  void CollectColumnRefs(std::vector<const ColumnRefExpr*>*) const override {}
  ExprPtr TransformColumns(
      const std::function<ExprPtr(const ColumnRefExpr&)>&) const override {
    return std::make_shared<LiteralExpr>(value_);
  }
  std::string ToString() const override { return value_.ToString(); }

  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// \brief A column reference, by name until Bind() resolves the index.
class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(std::string name, Side side)
      : Expr(Kind::kColumnRef), name_(std::move(name)), side_(side) {}

  StatusOr<Value> Eval(const TupleView& left,
                       const TupleView* right) const override;
  Status Bind(const Schema& left, const Schema* right) override;
  bool ReferencesRight() const override { return side_ == Side::kRight; }
  void CollectColumnRefs(
      std::vector<const ColumnRefExpr*>* out) const override {
    out->push_back(this);
  }
  ExprPtr TransformColumns(
      const std::function<ExprPtr(const ColumnRefExpr&)>& fn) const override {
    return fn(*this);
  }
  std::string ToString() const override;

  Side side() const { return side_; }
  const std::string& name() const { return name_; }
  /// Resolved index; -1 before Bind().
  int index() const { return index_; }

 private:
  std::string name_;
  Side side_;
  int index_ = -1;
};

/// \brief lhs <op> rhs comparison producing Int32 0/1.
class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kCompare), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  StatusOr<Value> Eval(const TupleView& left,
                       const TupleView* right) const override;
  Status Bind(const Schema& left, const Schema* right) override;
  bool ReferencesRight() const override {
    return lhs_->ReferencesRight() || rhs_->ReferencesRight();
  }
  void CollectColumnRefs(
      std::vector<const ColumnRefExpr*>* out) const override {
    lhs_->CollectColumnRefs(out);
    rhs_->CollectColumnRefs(out);
  }
  ExprPtr TransformColumns(
      const std::function<ExprPtr(const ColumnRefExpr&)>& fn) const override {
    return std::make_shared<CompareExpr>(op_, lhs_->TransformColumns(fn),
                                         rhs_->TransformColumns(fn));
  }
  std::string ToString() const override;

  CompareOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

 private:
  CompareOp op_;
  ExprPtr lhs_, rhs_;
};

/// \brief AND / OR / NOT over boolean-valued children.
class LogicExpr final : public Expr {
 public:
  /// For kNot, \p rhs must be null.
  LogicExpr(LogicOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kLogic), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  StatusOr<Value> Eval(const TupleView& left,
                       const TupleView* right) const override;
  Status Bind(const Schema& left, const Schema* right) override;
  bool ReferencesRight() const override {
    return lhs_->ReferencesRight() || (rhs_ && rhs_->ReferencesRight());
  }
  void CollectColumnRefs(
      std::vector<const ColumnRefExpr*>* out) const override {
    lhs_->CollectColumnRefs(out);
    if (rhs_) rhs_->CollectColumnRefs(out);
  }
  ExprPtr TransformColumns(
      const std::function<ExprPtr(const ColumnRefExpr&)>& fn) const override {
    return std::make_shared<LogicExpr>(
        op_, lhs_->TransformColumns(fn),
        rhs_ ? rhs_->TransformColumns(fn) : nullptr);
  }
  std::string ToString() const override;

  LogicOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr* rhs() const { return rhs_.get(); }
  ExprPtr shared_lhs() const { return lhs_; }
  ExprPtr shared_rhs() const { return rhs_; }

 private:
  LogicOp op_;
  ExprPtr lhs_, rhs_;
};

/// \brief Arithmetic over numeric children; result is Double unless both
/// inputs are integers and the op is not division.
class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::kArith), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  StatusOr<Value> Eval(const TupleView& left,
                       const TupleView* right) const override;
  Status Bind(const Schema& left, const Schema* right) override;
  bool ReferencesRight() const override {
    return lhs_->ReferencesRight() || rhs_->ReferencesRight();
  }
  void CollectColumnRefs(
      std::vector<const ColumnRefExpr*>* out) const override {
    lhs_->CollectColumnRefs(out);
    rhs_->CollectColumnRefs(out);
  }
  ExprPtr TransformColumns(
      const std::function<ExprPtr(const ColumnRefExpr&)>& fn) const override {
    return std::make_shared<ArithExpr>(op_, lhs_->TransformColumns(fn),
                                       rhs_->TransformColumns(fn));
  }
  std::string ToString() const override;

  ArithOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

 private:
  ArithOp op_;
  ExprPtr lhs_, rhs_;
};

/// \name Construction helpers
/// @{
ExprPtr Lit(Value v);
ExprPtr Lit(int32_t v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
/// Column of the (single or left) input.
ExprPtr Col(std::string name);
/// Column of the right input of a join predicate.
ExprPtr RightCol(std::string name);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);
/// @}

}  // namespace dfdb

#endif  // DFDB_RA_EXPR_H_

/// \file plan.h
/// \brief The relational-algebra query tree (the paper's Figure 2.1).
///
/// "Each relational algebra query is generally comprised of one or more
/// relational algebra operations (instructions) and is organized in the form
/// of a tree." Each PlanNode is one such instruction; in the data-flow
/// engines every node becomes a memory cell / instruction-controller
/// assignment.

#ifndef DFDB_RA_PLAN_H_
#define DFDB_RA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "ra/expr.h"
#include "ra/expr_compile.h"

namespace dfdb {

/// How a kScan leaf reads its relation. Chosen by
/// Optimizer::DecideAccessPaths from the consuming restrict's compiled
/// bounds and the catalog's index definitions; kFullScan is always safe and
/// ExecOptions::index / MachineOptions::index can force it at execution
/// time.
enum class ScanAccessPath {
  kFullScan,  ///< Read every page of the snapshot view.
  kZoneMap,   ///< Skip pages whose zone map cannot contain a match.
  kGridFile,  ///< Grid-file candidate pages, then zone maps on top.
};

std::string_view ScanAccessPathToString(ScanAccessPath p);

/// Relational algebra operators (the paper names restrict, join, project,
/// append, delete; union/difference/aggregate round out the algebra).
enum class PlanOp {
  kScan,        ///< Leaf: read a base relation.
  kRestrict,    ///< Selection by predicate.
  kProject,     ///< Column elimination, optional duplicate elimination.
  kJoin,        ///< Conditional cross product (nested loops in the engine).
  kUnion,       ///< Bag or set union of union-compatible inputs.
  kDifference,  ///< Set difference of union-compatible inputs.
  kAggregate,   ///< Grouped aggregation (extension).
  kAppend,      ///< Insert the input stream into a base relation.
  kDelete,      ///< Remove matching tuples from a base relation.
};

std::string_view PlanOpToString(PlanOp op);

/// \brief One aggregate computation within a kAggregate node.
struct AggregateSpec {
  enum class Func { kCount, kSum, kMin, kMax, kAvg };
  Func func = Func::kCount;
  /// Input column; ignored for kCount.
  std::string column;
  /// Name of the output column.
  std::string output_name;
};

std::string_view AggregateFuncToString(AggregateSpec::Func f);

/// \brief A node of the query tree.
///
/// Built by the helper constructors below, then resolved once by
/// Analyzer::Resolve which fills node ids, binds expressions, and computes
/// output schemas. After resolution the tree is immutable and may be shared
/// by concurrent engine runs.
struct PlanNode {
  PlanOp op;
  /// Post-order id assigned by the analyzer; -1 before resolution.
  int id = -1;

  std::vector<std::unique_ptr<PlanNode>> children;

  /// kScan: source relation. kAppend/kDelete: target relation.
  std::string relation;
  /// kRestrict/kJoin/kDelete predicate.
  ExprPtr predicate;
  /// kProject: output columns. kAggregate: group-by columns.
  std::vector<std::string> columns;
  /// kProject: optional output column names (aliases), parallel to
  /// `columns`. Empty keeps the source names. Used by the optimizer to
  /// restore the public schema after join-input swaps.
  std::vector<std::string> project_aliases;
  /// kProject: eliminate duplicates (the full relational project).
  bool dedup = false;
  /// kUnion: keep duplicates (bag union) when true.
  bool bag_semantics = false;
  /// kAggregate only.
  std::vector<AggregateSpec> aggregates;

  /// Optimizer decision for the *edge* from this node to its consumer:
  /// when true, the backends may stream this node's output into the
  /// consumer in one pass — the threads engine skips the buffer-hierarchy
  /// round trip (and collapses unary chains into one fused program), the
  /// simulator folds the operator into the consumer's operand staging.
  /// Set by Optimizer::DecidePipelining; false (materialize) is always
  /// safe, and ExecOptions::pipeline / MachineOptions::pipeline can
  /// override the marks at execution time.
  bool pipeline_fused = false;

  /// kScan only: optimizer access-path decision plus the pre-resolved
  /// column-vs-constant bounds (from the consuming restrict's compiled
  /// predicate) the pruning layer tests pages against. Bounds are conjuncts
  /// of the full predicate, so dropping *only* pages where no tuple can
  /// satisfy some bound never changes the restrict's output.
  ScanAccessPath access_path = ScanAccessPath::kFullScan;
  /// kGridFile: name of the catalog index to probe.
  std::string index_name;
  std::vector<ColCompare> prune_bounds;

  /// kScan only: optimizer near-data pushdown decision. When true, the
  /// consuming restrict's compiled predicate runs inside the storage
  /// hierarchy (BufferManager::ReadFiltered in the threads engine, IC
  /// staging in the simulator) so only surviving tuples cross buffer
  /// levels and rings. Composes with access_path: pruning drops whole
  /// pages first, pushdown filters the residual pages. Set by
  /// Optimizer::DecidePushdown; false is always safe, and
  /// ExecOptions::pushdown / MachineOptions::pushdown can force it off at
  /// execution time.
  bool pushdown = false;

  /// Filled by the analyzer.
  Schema output_schema;
  bool resolved = false;

  bool is_leaf() const { return children.empty(); }
  int num_children() const { return static_cast<int>(children.size()); }
  const PlanNode& child(int i) const { return *children[static_cast<size_t>(i)]; }
  PlanNode& child(int i) { return *children[static_cast<size_t>(i)]; }

  /// Number of nodes in this subtree.
  int TreeSize() const;

  /// Indented multi-line rendering of the subtree.
  std::string ToString(int indent = 0) const;

  /// Deep copy (unresolved; the copy must be re-analyzed). Expressions are
  /// reconstructed unbound so the copy can be resolved and executed
  /// concurrently with other clones of the same template tree.
  std::unique_ptr<PlanNode> Clone() const;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// \name Tree constructors
/// @{
PlanNodePtr MakeScan(std::string relation);
PlanNodePtr MakeRestrict(PlanNodePtr child, ExprPtr predicate);
PlanNodePtr MakeProject(PlanNodePtr child, std::vector<std::string> columns,
                        bool dedup = false);
PlanNodePtr MakeJoin(PlanNodePtr left, PlanNodePtr right, ExprPtr predicate);
PlanNodePtr MakeUnion(PlanNodePtr left, PlanNodePtr right,
                      bool bag_semantics = false);
PlanNodePtr MakeDifference(PlanNodePtr left, PlanNodePtr right);
PlanNodePtr MakeAggregate(PlanNodePtr child, std::vector<std::string> group_by,
                          std::vector<AggregateSpec> aggregates);
PlanNodePtr MakeAppend(PlanNodePtr child, std::string target_relation);
PlanNodePtr MakeDelete(std::string target_relation, ExprPtr predicate);
/// @}

/// \brief A named query: a tree plus identity for admission control.
struct Query {
  uint64_t id = 0;
  std::string name;
  PlanNodePtr root;
};

}  // namespace dfdb

#endif  // DFDB_RA_PLAN_H_

/// \file analyzer.h
/// \brief Semantic analysis of query trees: schema resolution, expression
/// binding, validation, and read/write-set extraction.

#ifndef DFDB_RA_ANALYZER_H_
#define DFDB_RA_ANALYZER_H_

#include <set>
#include <string>

#include "catalog/catalog.h"
#include "ra/plan.h"

namespace dfdb {

/// \brief Facts about a resolved query used for admission control and
/// reporting (the paper's MC "checks [a query] for concurrency conflicts").
struct QueryAnalysis {
  int num_nodes = 0;
  int num_joins = 0;
  int num_restricts = 0;
  int num_projects = 0;
  int max_depth = 0;
  /// Base relations read (scan sources, delete targets' old tuples).
  std::set<std::string> read_set;
  /// Base relations mutated (append/delete targets).
  std::set<std::string> write_set;
};

/// \brief Resolves and validates query trees against a catalog.
class Analyzer {
 public:
  explicit Analyzer(const Catalog* catalog) : catalog_(catalog) {}

  /// Resolves \p root in place: assigns post-order node ids, binds every
  /// expression, computes output schemas, and validates operator arity and
  /// union compatibility. Idempotent.
  StatusOr<QueryAnalysis> Resolve(PlanNode* root) const;

 private:
  Status ResolveNode(PlanNode* node, int depth, int* next_id,
                     QueryAnalysis* analysis) const;

  const Catalog* catalog_;
};

}  // namespace dfdb

#endif  // DFDB_RA_ANALYZER_H_

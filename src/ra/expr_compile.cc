#include "ra/expr_compile.h"

#include <cstring>
#include <utility>

#include "common/macros.h"

namespace dfdb {

using namespace expr_detail;

namespace {

/// Evaluation stack budget for the generic program. Deep trees are rare
/// (hand-written predicates nest a handful of levels); anything deeper
/// falls back to the interpreter rather than growing the hot-loop stack.
constexpr int kMaxStack = 32;

/// Static type of a stack slot / subexpression. kBool is an int64 slot
/// constrained to 0/1, which lets logic ops skip re-coercion.
enum class Ty : uint8_t { kInt, kFloat, kStr, kBool };

inline bool IsIntLike(Ty t) { return t == Ty::kInt || t == Ty::kBool; }

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

}  // namespace

/// \brief Lowers one Expr tree into a CompiledPredicate::Instr program.
///
/// Every construct whose interpreted evaluation could fail per tuple is
/// rejected here with an error Status, which the caller turns into an
/// interpreted-path fallback.
class ExprCompiler {
 public:
  using Instr = CompiledPredicate::Instr;
  using Op = Instr::Op;

  ExprCompiler(const Schema& left, const Schema* right,
               CompiledPredicate* out)
      : left_(left), right_(right), out_(out) {}

  Status CompileRoot(const Expr& expr) {
    Ty ty;
    DFDB_ASSIGN_OR_RETURN(ty, Emit(expr));
    // EvalBool: a CHAR root is an InvalidArgument at runtime; reject.
    // Numeric roots coerce through AsNumeric() != 0.0.
    switch (ty) {
      case Ty::kStr:
        return Status::InvalidArgument("CHAR-valued predicate root");
      case Ty::kInt:
        DFDB_RETURN_IF_ERROR(Push(Instr{.op = Op::kToBoolI}, 0));
        break;
      case Ty::kFloat:
        DFDB_RETURN_IF_ERROR(Push(Instr{.op = Op::kToBoolF}, 0));
        break;
      case Ty::kBool:
        break;
    }
    if (depth_ != 1) return Status::Internal("unbalanced predicate program");
    return Status::OK();
  }

 private:
  StatusOr<Ty> Emit(const Expr& expr) {
    switch (expr.kind()) {
      case Expr::Kind::kLiteral:
        return EmitLiteral(static_cast<const LiteralExpr&>(expr));
      case Expr::Kind::kColumnRef:
        return EmitColumnRef(static_cast<const ColumnRefExpr&>(expr));
      case Expr::Kind::kCompare:
        return EmitCompare(static_cast<const CompareExpr&>(expr));
      case Expr::Kind::kLogic:
        return EmitLogic(static_cast<const LogicExpr&>(expr));
      case Expr::Kind::kArith:
        return EmitArith(static_cast<const ArithExpr&>(expr));
    }
    return Status::InvalidArgument("unknown expression kind");
  }

  StatusOr<Ty> EmitLiteral(const LiteralExpr& lit) {
    const Value& v = lit.value();
    switch (v.type()) {
      case ColumnType::kInt32:
        DFDB_RETURN_IF_ERROR(
            Push(Instr{.op = Op::kConstI, .imm_i = v.as_int32()}, 1));
        return Ty::kInt;
      case ColumnType::kInt64:
        DFDB_RETURN_IF_ERROR(
            Push(Instr{.op = Op::kConstI, .imm_i = v.as_int64()}, 1));
        return Ty::kInt;
      case ColumnType::kDouble:
        DFDB_RETURN_IF_ERROR(
            Push(Instr{.op = Op::kConstF, .imm_f = v.as_double()}, 1));
        return Ty::kFloat;
      case ColumnType::kChar: {
        // Literal CHARs keep their raw bytes: the interpreter compares the
        // literal's std::string as-is (only *column* values are trimmed).
        Instr in{.op = Op::kConstStr};
        in.str_off = static_cast<uint32_t>(out_->pool_.size());
        in.str_len = static_cast<uint32_t>(v.as_char().size());
        out_->pool_.append(v.as_char());
        DFDB_RETURN_IF_ERROR(Push(in, 1));
        return Ty::kStr;
      }
    }
    return Status::InvalidArgument("unknown literal type");
  }

  StatusOr<Ty> EmitColumnRef(const ColumnRefExpr& ref) {
    const Schema* schema = ref.side() == Side::kLeft ? &left_ : right_;
    if (schema == nullptr) {
      return Status::InvalidArgument(
          "right-side column in a single-input predicate: " + ref.name());
    }
    const int idx = ref.index();
    if (idx < 0 || idx >= schema->num_columns()) {
      return Status::InvalidArgument("unbound column reference: " + ref.name());
    }
    const Column& col = schema->column(idx);
    Instr in{};
    in.side = ref.side() == Side::kLeft ? 0 : 1;
    in.offset = schema->offset(idx);
    in.width = col.width;
    switch (col.type) {
      case ColumnType::kInt32:
        in.op = Op::kLoadI32;
        DFDB_RETURN_IF_ERROR(Push(in, 1));
        return Ty::kInt;
      case ColumnType::kInt64:
        in.op = Op::kLoadI64;
        DFDB_RETURN_IF_ERROR(Push(in, 1));
        return Ty::kInt;
      case ColumnType::kDouble:
        in.op = Op::kLoadF64;
        DFDB_RETURN_IF_ERROR(Push(in, 1));
        return Ty::kFloat;
      case ColumnType::kChar:
        in.op = Op::kLoadStr;
        DFDB_RETURN_IF_ERROR(Push(in, 1));
        return Ty::kStr;
    }
    return Status::InvalidArgument("unknown column type");
  }

  StatusOr<Ty> EmitCompare(const CompareExpr& cmp) {
    Ty a, b;
    DFDB_ASSIGN_OR_RETURN(a, Emit(cmp.lhs()));
    DFDB_ASSIGN_OR_RETURN(b, Emit(cmp.rhs()));
    if ((a == Ty::kStr) != (b == Ty::kStr)) {
      // Value::Compare rejects CHAR vs numeric per tuple; reject at
      // compile time instead.
      return Status::InvalidArgument("CHAR compared against numeric");
    }
    Instr in{};
    in.cmp = cmp.op();
    if (a == Ty::kStr) {
      in.op = Op::kCmpS;
    } else if (IsIntLike(a) && IsIntLike(b)) {
      in.op = Op::kCmpI;  // Integer fast path, no double rounding.
    } else {
      DFDB_RETURN_IF_ERROR(PromoteToFloat(a, b));
      in.op = Op::kCmpF;
    }
    DFDB_RETURN_IF_ERROR(Push(in, -1));
    return Ty::kBool;
  }

  StatusOr<Ty> EmitLogic(const LogicExpr& logic) {
    if (logic.op() == LogicOp::kNot) {
      if (logic.rhs() != nullptr) {
        return Status::InvalidArgument("NOT takes exactly one operand");
      }
      DFDB_RETURN_IF_ERROR(EmitAsBool(logic.lhs()));
      DFDB_RETURN_IF_ERROR(Push(Instr{.op = Op::kNot}, 0));
      return Ty::kBool;
    }
    if (logic.rhs() == nullptr) {
      return Status::InvalidArgument("binary logic op missing right operand");
    }
    // The interpreter short-circuits AND/OR; evaluating both sides is
    // observationally identical because every per-tuple error path was
    // rejected at compile time, so full evaluation over 0/1 ints is safe.
    DFDB_RETURN_IF_ERROR(EmitAsBool(logic.lhs()));
    DFDB_RETURN_IF_ERROR(EmitAsBool(*logic.rhs()));
    DFDB_RETURN_IF_ERROR(Push(
        Instr{.op = logic.op() == LogicOp::kAnd ? Op::kAnd : Op::kOr}, -1));
    return Ty::kBool;
  }

  StatusOr<Ty> EmitArith(const ArithExpr& arith) {
    if (arith.op() == ArithOp::kDiv) {
      // Division by zero is a per-tuple runtime error in the interpreter;
      // a compiled program cannot reproduce it, so division never compiles.
      return Status::InvalidArgument("division does not compile");
    }
    Ty a, b;
    DFDB_ASSIGN_OR_RETURN(a, Emit(arith.lhs()));
    DFDB_ASSIGN_OR_RETURN(b, Emit(arith.rhs()));
    if (a == Ty::kStr || b == Ty::kStr) {
      return Status::InvalidArgument("CHAR operand in arithmetic");
    }
    Instr in{};
    if (IsIntLike(a) && IsIntLike(b)) {
      switch (arith.op()) {
        case ArithOp::kAdd:
          in.op = Op::kAddI;
          break;
        case ArithOp::kSub:
          in.op = Op::kSubI;
          break;
        case ArithOp::kMul:
          in.op = Op::kMulI;
          break;
        case ArithOp::kDiv:
          return Status::Internal("unreachable");
      }
      DFDB_RETURN_IF_ERROR(Push(in, -1));
      return Ty::kInt;
    }
    DFDB_RETURN_IF_ERROR(PromoteToFloat(a, b));
    switch (arith.op()) {
      case ArithOp::kAdd:
        in.op = Op::kAddF;
        break;
      case ArithOp::kSub:
        in.op = Op::kSubF;
        break;
      case ArithOp::kMul:
        in.op = Op::kMulF;
        break;
      case ArithOp::kDiv:
        return Status::Internal("unreachable");
    }
    DFDB_RETURN_IF_ERROR(Push(in, -1));
    return Ty::kFloat;
  }

  /// Emits \p expr then coerces the top of stack to 0/1, mirroring
  /// Expr::EvalBool (CHAR is an error; numeric tests != 0).
  Status EmitAsBool(const Expr& expr) {
    Ty ty;
    DFDB_ASSIGN_OR_RETURN(ty, Emit(expr));
    switch (ty) {
      case Ty::kStr:
        return Status::InvalidArgument("CHAR value used as a predicate");
      case Ty::kInt:
        return Push(Instr{.op = Op::kToBoolI}, 0);
      case Ty::kFloat:
        return Push(Instr{.op = Op::kToBoolF}, 0);
      case Ty::kBool:
        return Status::OK();
    }
    return Status::Internal("unreachable");
  }

  /// With [.., a, b] on the stack, converts whichever of the two numeric
  /// operands is an integer to double (AsNumeric promotion of the
  /// interpreter's mixed int/double paths).
  Status PromoteToFloat(Ty a, Ty b) {
    if (IsIntLike(b)) DFDB_RETURN_IF_ERROR(Push(Instr{.op = Op::kI2F}, 0));
    if (IsIntLike(a)) DFDB_RETURN_IF_ERROR(Push(Instr{.op = Op::kI2FN}, 0));
    return Status::OK();
  }

  Status Push(Instr in, int depth_delta) {
    depth_ += depth_delta;
    if (depth_ > kMaxStack) {
      return Status::InvalidArgument("predicate too deep to compile");
    }
    out_->prog_.push_back(in);
    return Status::OK();
  }

  const Schema& left_;
  const Schema* right_;
  CompiledPredicate* out_;
  int depth_ = 0;
};

namespace {

/// Recognizes `column <op> literal` (either order) over the left input.
/// Returns false when the conjunct does not have that shape or mixes types
/// in a way the specialized evaluator does not model.
bool TryColCompare(const Expr& expr, const Schema& schema, ColCompare* out) {
  if (expr.kind() != Expr::Kind::kCompare) return false;
  const auto& cmp = static_cast<const CompareExpr&>(expr);
  const Expr* col_side = &cmp.lhs();
  const Expr* lit_side = &cmp.rhs();
  CompareOp op = cmp.op();
  if (col_side->kind() == Expr::Kind::kLiteral &&
      lit_side->kind() == Expr::Kind::kColumnRef) {
    std::swap(col_side, lit_side);
    op = FlipCompare(op);  // `5 < k` evaluates as `k > 5`.
  }
  if (col_side->kind() != Expr::Kind::kColumnRef ||
      lit_side->kind() != Expr::Kind::kLiteral) {
    return false;
  }
  const auto& ref = static_cast<const ColumnRefExpr&>(*col_side);
  const auto& lit = static_cast<const LiteralExpr&>(*lit_side);
  if (ref.side() != Side::kLeft) return false;
  const int idx = ref.index();
  if (idx < 0 || idx >= schema.num_columns()) return false;
  const Column& col = schema.column(idx);
  const Value& v = lit.value();

  out->op = op;
  out->offset = schema.offset(idx);
  out->width = col.width;
  const bool lit_int =
      v.type() == ColumnType::kInt32 || v.type() == ColumnType::kInt64;
  const int64_t lit_i =
      v.type() == ColumnType::kInt32
          ? v.as_int32()
          : (v.type() == ColumnType::kInt64 ? v.as_int64() : 0);
  switch (col.type) {
    case ColumnType::kInt32:
      if (lit_int) {
        out->kind = ColCompare::Kind::kI32I;
        out->const_i = lit_i;
        return true;
      }
      if (v.type() == ColumnType::kDouble) {
        out->kind = ColCompare::Kind::kI32F;
        out->const_f = v.as_double();
        return true;
      }
      return false;
    case ColumnType::kInt64:
      if (lit_int) {
        out->kind = ColCompare::Kind::kI64I;
        out->const_i = lit_i;
        return true;
      }
      if (v.type() == ColumnType::kDouble) {
        out->kind = ColCompare::Kind::kI64F;
        out->const_f = v.as_double();
        return true;
      }
      return false;
    case ColumnType::kDouble:
      if (v.type() == ColumnType::kDouble) {
        out->kind = ColCompare::Kind::kF64F;
        out->const_f = v.as_double();
        return true;
      }
      if (lit_int) {
        // Mixed int literal vs double column: the interpreter promotes the
        // literal through AsNumeric, which is exactly this cast.
        out->kind = ColCompare::Kind::kF64F;
        out->const_f = static_cast<double>(lit_i);
        return true;
      }
      return false;
    case ColumnType::kChar:
      if (v.type() != ColumnType::kChar) return false;
      out->kind = ColCompare::Kind::kStr;
      out->const_s = v.as_char();
      return true;
  }
  return false;
}

/// Flattens a left-side-only AND tree of column-vs-literal compares into
/// ColCompare conjuncts. Returns false on any other shape.
bool TryFlattenConjunction(const Expr& expr, const Schema& schema,
                           std::vector<ColCompare>* out) {
  if (expr.kind() == Expr::Kind::kLogic) {
    const auto& logic = static_cast<const LogicExpr&>(expr);
    if (logic.op() != LogicOp::kAnd || logic.rhs() == nullptr) return false;
    return TryFlattenConjunction(logic.lhs(), schema, out) &&
           TryFlattenConjunction(*logic.rhs(), schema, out);
  }
  ColCompare c;
  if (!TryColCompare(expr, schema, &c)) return false;
  out->push_back(std::move(c));
  return true;
}

}  // namespace

StatusOr<CompiledPredicate> CompiledPredicate::Compile(const Expr& expr,
                                                       const Schema& left,
                                                       const Schema* right) {
  CompiledPredicate p;
  ExprCompiler compiler(left, right, &p);
  DFDB_RETURN_IF_ERROR(compiler.CompileRoot(expr));

  // Shape specialization: the dominant predicates are a single
  // column-vs-constant compare or a conjunction of them. Those skip the
  // stack machine entirely.
  std::vector<ColCompare> cmps;
  if (TryFlattenConjunction(expr, left, &cmps)) {
    p.cmps_ = std::move(cmps);
    p.shape_ =
        p.cmps_.size() == 1 ? Shape::kSingleCompare : Shape::kConjunction;
  }
  return p;
}

bool CompiledPredicate::RunProgram(const char* left, const char* right) const {
  // One slot per operand: numerics in the union, CHARs as (ptr, len).
  struct Slot {
    union {
      int64_t i;
      double f;
    };
    const char* p;
    uint32_t n;
  };
  Slot stack[kMaxStack];
  int sp = 0;
  for (const Instr& in : prog_) {
    switch (in.op) {
      case Instr::Op::kLoadI32:
        stack[sp++].i = LoadI32(in.side == 0 ? left : right, in.offset);
        break;
      case Instr::Op::kLoadI64:
        stack[sp++].i = LoadI64(in.side == 0 ? left : right, in.offset);
        break;
      case Instr::Op::kLoadF64:
        stack[sp++].f = LoadF64(in.side == 0 ? left : right, in.offset);
        break;
      case Instr::Op::kLoadStr: {
        const char* base = (in.side == 0 ? left : right) + in.offset;
        stack[sp].p = base;
        stack[sp].n = TrimmedLen(base, in.width);
        ++sp;
        break;
      }
      case Instr::Op::kConstI:
        stack[sp++].i = in.imm_i;
        break;
      case Instr::Op::kConstF:
        stack[sp++].f = in.imm_f;
        break;
      case Instr::Op::kConstStr:
        stack[sp].p = pool_.data() + in.str_off;
        stack[sp].n = in.str_len;
        ++sp;
        break;
      case Instr::Op::kI2F:
        stack[sp - 1].f = static_cast<double>(stack[sp - 1].i);
        break;
      case Instr::Op::kI2FN:
        stack[sp - 2].f = static_cast<double>(stack[sp - 2].i);
        break;
      case Instr::Op::kCmpI:
        --sp;
        stack[sp - 1].i =
            ApplyCmp(in.cmp, Cmp3I(stack[sp - 1].i, stack[sp].i)) ? 1 : 0;
        break;
      case Instr::Op::kCmpF:
        --sp;
        stack[sp - 1].i =
            ApplyCmp(in.cmp, Cmp3F(stack[sp - 1].f, stack[sp].f)) ? 1 : 0;
        break;
      case Instr::Op::kCmpS:
        --sp;
        stack[sp - 1].i =
            ApplyCmp(in.cmp, Cmp3S(stack[sp - 1].p, stack[sp - 1].n,
                                   stack[sp].p, stack[sp].n))
                ? 1
                : 0;
        break;
      case Instr::Op::kToBoolI:
        stack[sp - 1].i = stack[sp - 1].i != 0 ? 1 : 0;
        break;
      case Instr::Op::kToBoolF:
        stack[sp - 1].i = stack[sp - 1].f != 0.0 ? 1 : 0;
        break;
      case Instr::Op::kAnd:
        --sp;
        stack[sp - 1].i &= stack[sp].i;
        break;
      case Instr::Op::kOr:
        --sp;
        stack[sp - 1].i |= stack[sp].i;
        break;
      case Instr::Op::kNot:
        stack[sp - 1].i = 1 - stack[sp - 1].i;
        break;
      case Instr::Op::kAddI:
        --sp;
        stack[sp - 1].i += stack[sp].i;
        break;
      case Instr::Op::kSubI:
        --sp;
        stack[sp - 1].i -= stack[sp].i;
        break;
      case Instr::Op::kMulI:
        --sp;
        stack[sp - 1].i *= stack[sp].i;
        break;
      case Instr::Op::kAddF:
        --sp;
        stack[sp - 1].f += stack[sp].f;
        break;
      case Instr::Op::kSubF:
        --sp;
        stack[sp - 1].f -= stack[sp].f;
        break;
      case Instr::Op::kMulF:
        --sp;
        stack[sp - 1].f *= stack[sp].f;
        break;
    }
  }
  return stack[0].i != 0;
}

namespace {

/// Recognizes `outer.col = inner.col` (either side order) as a hash key.
/// Restricted to identical non-double types: for those, raw-byte (CHAR:
/// right-trimmed) equality coincides exactly with Value::Compare == 0;
/// doubles are excluded because -0.0 == 0.0 and NaN "equality" break the
/// bytes-equal <=> values-equal correspondence.
bool TryEquiKey(const Expr& expr, const Schema& outer, const Schema& inner,
                EquiKey* out) {
  if (expr.kind() != Expr::Kind::kCompare) return false;
  const auto& cmp = static_cast<const CompareExpr&>(expr);
  if (cmp.op() != CompareOp::kEq) return false;
  if (cmp.lhs().kind() != Expr::Kind::kColumnRef ||
      cmp.rhs().kind() != Expr::Kind::kColumnRef) {
    return false;
  }
  const auto* a = static_cast<const ColumnRefExpr*>(&cmp.lhs());
  const auto* b = static_cast<const ColumnRefExpr*>(&cmp.rhs());
  if (a->side() == Side::kRight && b->side() == Side::kLeft) std::swap(a, b);
  if (a->side() != Side::kLeft || b->side() != Side::kRight) return false;
  if (a->index() < 0 || a->index() >= outer.num_columns()) return false;
  if (b->index() < 0 || b->index() >= inner.num_columns()) return false;
  const Column& oc = outer.column(a->index());
  const Column& ic = inner.column(b->index());
  if (oc.type != ic.type || oc.type == ColumnType::kDouble) return false;
  out->type = oc.type;
  out->outer_offset = outer.offset(a->index());
  out->inner_offset = inner.offset(b->index());
  out->outer_width = oc.width;
  out->inner_width = ic.width;
  return true;
}

/// Collects the AND-conjuncts of \p expr in evaluation order. Only
/// top-level ANDs are flattened; anything else is one conjunct.
void FlattenAnd(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind() == Expr::Kind::kLogic) {
    const auto& logic = static_cast<const LogicExpr&>(expr);
    if (logic.op() == LogicOp::kAnd && logic.rhs() != nullptr) {
      FlattenAnd(logic.lhs(), out);
      FlattenAnd(*logic.rhs(), out);
      return;
    }
  }
  out->push_back(&expr);
}

}  // namespace

StatusOr<CompiledJoinPredicate> CompiledJoinPredicate::Compile(
    const Expr& pred, const Schema& outer, const Schema& inner) {
  CompiledJoinPredicate jp;
  DFDB_ASSIGN_OR_RETURN(jp.full_,
                        CompiledPredicate::Compile(pred, outer, &inner));

  // AND-conjunct split: equi-keys drive the hash table, the rest becomes
  // the residual. Conjunction over compiled (error-free) programs is
  // order-insensitive, so evaluating keys before residuals is exact.
  std::vector<const Expr*> conjuncts;
  FlattenAnd(pred, &conjuncts);
  for (const Expr* c : conjuncts) {
    EquiKey key;
    if (TryEquiKey(*c, outer, inner, &key)) {
      jp.keys_.push_back(key);
      continue;
    }
    DFDB_ASSIGN_OR_RETURN(CompiledPredicate residual,
                          CompiledPredicate::Compile(*c, outer, &inner));
    jp.residuals_.push_back(std::move(residual));
  }
  return jp;
}

}  // namespace dfdb

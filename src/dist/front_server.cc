#include "dist/front_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/protocol.h"

namespace dfdb {
namespace dist {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(StrFormat("%s: %s", what, std::strerror(errno)));
}

bool SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

net::WireError StatusToWire(const Status& s) {
  if (s.IsInvalidArgument()) return net::WireError::kInvalidRequest;
  if (s.IsFailedPrecondition()) return net::WireError::kRetryLater;
  return net::WireError::kInternal;
}

}  // namespace

FrontServer::FrontServer(Coordinator* coordinator, FrontServerOptions options)
    : coordinator_(coordinator), options_(std::move(options)) {
  DFDB_CHECK(coordinator != nullptr);
}

FrontServer::~FrontServer() { Stop(); }

Status FrontServer::Start() {
  if (started_) return Status::FailedPrecondition("front server started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrFormat("cannot parse bind address '%s'", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    Status s = Errno("bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FrontServer::Stop() {
  if (!started_) return;
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Closing the listen socket kicks accept(); shutting down connection fds
  // kicks their blocked recv() calls.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void FrontServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listen socket closed by Stop().
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void FrontServer::ServeConnection(int fd) {
  net::FrameReader reader(options_.max_frame_bytes);
  char buf[64 * 1024];
  bool alive = true;
  while (alive && !stopping_.load()) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    reader.Append(buf, static_cast<size_t>(n));
    for (;;) {
      auto next = reader.Next();
      if (!next.ok()) {
        alive = false;
        break;
      }
      if (!next->has_value()) break;
      const net::Frame& frame = **next;
      const uint32_t rid = frame.header.request_id;
      switch (static_cast<net::Opcode>(frame.header.opcode)) {
        case net::Opcode::kPing:
          alive = SendAll(fd, net::EncodePongFrame(rid));
          break;
        case net::Opcode::kQuery: {
          auto query = net::DecodeQuery(Slice(frame.body));
          if (!query.ok()) {
            alive = SendAll(
                fd, net::EncodeErrorFrame(
                        rid, net::ErrorMessage{
                                 net::WireError::kInvalidRequest,
                                 std::string(query.status().message())}));
            break;
          }
          auto result = coordinator_->Execute(query->text);
          if (!result.ok()) {
            alive = SendAll(
                fd, net::EncodeErrorFrame(
                        rid, net::ErrorMessage{
                                 StatusToWire(result.status()),
                                 std::string(result.status().message())}));
            break;
          }
          alive = SendAll(fd, net::EncodeSchemaFrame(rid, result->schema));
          const uint32_t width =
              static_cast<uint32_t>(result->schema.tuple_width());
          const size_t batch_bytes =
              std::max<size_t>(width, options_.max_frame_bytes / 2);
          for (size_t off = 0; alive && off < result->tuples.size();) {
            size_t take =
                std::min(batch_bytes, result->tuples.size() - off);
            take -= width == 0 ? 0 : take % width;
            net::RowsBatch batch;
            batch.tuple_width = width;
            batch.num_tuples =
                width == 0 ? 0 : static_cast<uint32_t>(take / width);
            batch.tuples = result->tuples.substr(off, take);
            alive = SendAll(fd, net::EncodeRowsFrame(rid, batch));
            off += take;
          }
          if (alive) {
            net::StatsMessage stats;
            stats.total_rows = result->num_tuples;
            stats.seconds = result->server_seconds;
            const DistCounters& c = coordinator_->counters();
            stats.counters["dist.fragments"] =
                c.fragments_dispatched.load(std::memory_order_relaxed);
            stats.counters["dist.batches_routed"] =
                c.batches_routed.load(std::memory_order_relaxed);
            stats.counters["dist.bytes_shuffled"] =
                c.bytes_shuffled.load(std::memory_order_relaxed);
            alive = SendAll(fd, net::EncodeStatsFrame(rid, stats));
          }
          break;
        }
        default:
          alive = SendAll(
              fd, net::EncodeErrorFrame(
                      rid, net::ErrorMessage{net::WireError::kInvalidRequest,
                                             "unsupported opcode"}));
          break;
      }
      if (!alive) break;
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

}  // namespace dist
}  // namespace dfdb

/// \file coordinator.h
/// \brief The scale-out query coordinator: fragment dispatch and shuffle
/// routing across a set of dfdb_server workers.
///
/// Topology is a coordinator-routed star — every exchange batch flows
/// worker → coordinator → worker. That is deliberately the paper's outer
/// ring made explicit: Section 4's ring machine moves every result packet
/// over the shared outer ring, and Figure 4.2 measures how that shared
/// path saturates as processors are added. The coordinator plays the same
/// role here, so the simulator's outer-ring utilisation and the real
/// cluster's `dist.shuffle.*` gauges land in one comparable table
/// (bench/bench_distributed_join.cc).
///
/// Per query: parse → FragmentPlanner (dist/fragment.h) → dispatch every
/// kFragment frame → route kExchangeData batches by partition id (worker
/// index) under credit-based flow control → concatenate the root gather
/// stream. There is no coordinator-side merge operator: the planner
/// arranges shuffles so every join/aggregate/dedup group is computed
/// exactly once on exactly one worker.
///
/// Threading: one reader + one sender thread per worker while a query is
/// in flight. Readers never block on sends (they enqueue to the target
/// worker's sender), senders alone gate data frames on consumer input
/// credits, and credit grants flow back on reader threads — so the credit
/// loop cannot deadlock, including worker-to-itself shuffles.

#ifndef DFDB_DIST_COORDINATOR_H_
#define DFDB_DIST_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/macros.h"
#include "common/statusor.h"
#include "dist/fragment.h"
#include "net/client.h"
#include "obs/metrics.h"

namespace dfdb {
namespace dist {

struct WorkerAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct CoordinatorOptions {
  std::vector<WorkerAddress> workers;
  /// Column base relations are hash-partitioned on (must match how the
  /// workers were loaded; see tools/dfdb_cluster.cc).
  std::string partition_column = "id";
  /// Broadcast-vs-repartition threshold handed to the fragment planner.
  uint64_t broadcast_max_bytes = 96 * 1024;
  /// Deadline stamped into every fragment; 0 = none.
  uint32_t deadline_ms = 0;
  /// Per-worker connection knobs.
  net::ClientOptions client;
};

/// \brief Monotonic dist.* counters across the coordinator's lifetime.
struct DistCounters {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> fragments_dispatched{0};
  std::atomic<uint64_t> batches_routed{0};
  std::atomic<uint64_t> bytes_shuffled{0};  ///< Tuple payload through the star.
  std::atomic<uint64_t> rows_returned{0};
  std::atomic<uint64_t> repartitions{0};  ///< kPartition streams planned.
  std::atomic<uint64_t> broadcasts{0};    ///< kBroadcast streams planned.
  std::atomic<uint64_t> gathers{0};       ///< Non-root kGather streams.
  std::atomic<uint64_t> credit_waits{0};  ///< Sender stalls on input credit.
  std::atomic<uint64_t> errors{0};
  /// Wall seconds spent inside Execute() routing shuffles (microsecond
  /// resolution, accumulated); with bytes_shuffled this yields the
  /// dist.shuffle.mbit_s gauge mirroring the simulator's Fig 4.2 ring.
  std::atomic<uint64_t> shuffle_micros{0};
};

/// \brief Plans and executes queries across a fixed set of workers.
///
/// Thread-compatible: Execute() serializes internally; use one coordinator
/// per cluster. Workers must all hold the same partition_column-partitioned
/// slice layout of the catalog's relations.
class Coordinator {
 public:
  Coordinator(const Catalog* catalog, CoordinatorOptions options);
  ~Coordinator();
  DFDB_DISALLOW_COPY(Coordinator);

  /// Dials every worker (idempotent: reconnects only the dead ones).
  Status Connect();

  /// Runs one RAQL query across the cluster and reassembles the gathered
  /// result. Read-only queries only.
  StatusOr<net::RemoteResult> Execute(const std::string& text);

  int num_workers() const { return static_cast<int>(options_.workers.size()); }
  const DistCounters& counters() const { return counters_; }

  /// Exports dist.* counters plus the derived dist.shuffle.mbit_s gauge.
  void SnapshotMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct Run;  // Per-query routing state (defined in coordinator.cc).

  StatusOr<net::RemoteResult> RunPlan(const DistributedPlan& plan);

  const Catalog* catalog_;
  const CoordinatorOptions options_;
  std::vector<net::Client> workers_;
  uint32_t next_exchange_id_ = 1;
  std::mutex mu_;  ///< Serializes Execute().
  DistCounters counters_;
};

}  // namespace dist
}  // namespace dfdb

#endif  // DFDB_DIST_COORDINATOR_H_

#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "ra/parser.h"

namespace dfdb {
namespace dist {

namespace {

/// (worker, exchange-or-request id) → one map key.
uint64_t Key(int worker, uint32_t id) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(worker)) << 32) | id;
}

}  // namespace

/// \brief Per-query routing state shared by the reader/sender threads.
struct Coordinator::Run {
  struct StreamExec {
    net::ExchangeMode mode = net::ExchangeMode::kGather;
    int producers_remaining = 0;
    bool is_root = false;
    std::vector<int> consumer_workers;
  };

  /// One frame queued toward a worker. Data frames gate on that worker's
  /// input credits for `gate_exchange`; after a gated send the producer
  /// that originated the batch gets one credit back (`grant_*`).
  struct Outbound {
    std::string frame;
    uint32_t gate_exchange = 0;
    int grant_worker = -1;
    uint32_t grant_exchange = 0;
    uint32_t grant_request_id = 0;
  };

  struct Chan {
    std::deque<Outbound> q;
    bool stop = false;
    std::thread sender;
    std::thread reader;
  };

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::unique_ptr<Chan>> chans;
  std::map<uint32_t, StreamExec> streams;
  /// Remaining input credits per (consumer worker, exchange).
  std::map<uint64_t, uint32_t> input_credits;
  /// Request id of the fragment instance per (worker, output exchange) —
  /// the address output-credit grants are stamped with.
  std::map<uint64_t, uint32_t> frag_rid;
  /// (worker, request id) → output exchange, for terminal-frame dispatch.
  std::map<uint64_t, uint32_t> rid_to_stream;

  int terminals_remaining = 0;
  int root_remaining = 0;
  uint32_t root_width = 0;
  /// engine.tasks_executed summed from fragment terminals, per worker —
  /// the deterministic work measure behind the bench's compute-speedup
  /// gauge (max over workers = the critical path).
  std::vector<uint64_t> worker_tasks;
  std::string result_tuples;
  uint64_t result_rows = 0;
  uint64_t bytes = 0;
  uint64_t batches = 0;
  uint64_t credit_waits = 0;
  bool failed = false;
  Status error = Status::OK();

  void Fail(Status s) {
    if (!failed) {
      failed = true;
      error = std::move(s);
    }
    cv.notify_all();
  }

  bool Finished() const {
    return failed || (root_remaining == 0 && terminals_remaining == 0);
  }
};

Coordinator::Coordinator(const Catalog* catalog, CoordinatorOptions options)
    : catalog_(catalog), options_(std::move(options)) {
  DFDB_CHECK(catalog != nullptr);
  workers_.resize(options_.workers.size());
}

Coordinator::~Coordinator() = default;

Status Coordinator::Connect() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.workers.empty()) {
    return Status::InvalidArgument("coordinator has no workers");
  }
  for (size_t i = 0; i < options_.workers.size(); ++i) {
    if (workers_[i].connected()) continue;
    DFDB_ASSIGN_OR_RETURN(
        workers_[i],
        net::Client::Connect(options_.workers[i].host,
                             options_.workers[i].port, options_.client));
  }
  return Status::OK();
}

void Coordinator::SnapshotMetrics(obs::MetricsRegistry* registry) const {
  registry->Set("dist.workers", static_cast<uint64_t>(num_workers()));
  registry->Set("dist.queries", counters_.queries.load());
  registry->Set("dist.fragments", counters_.fragments_dispatched.load());
  registry->Set("dist.batches_routed", counters_.batches_routed.load());
  registry->Set("dist.bytes_shuffled", counters_.bytes_shuffled.load());
  registry->Set("dist.rows_returned", counters_.rows_returned.load());
  registry->Set("dist.repartitions", counters_.repartitions.load());
  registry->Set("dist.broadcasts", counters_.broadcasts.load());
  registry->Set("dist.gathers", counters_.gathers.load());
  registry->Set("dist.credit_waits", counters_.credit_waits.load());
  registry->Set("dist.errors", counters_.errors.load());
  registry->Set("dist.shuffle_micros", counters_.shuffle_micros.load());
  // The outer-ring bandwidth gauge: shuffled payload over routed wall time,
  // in megabits/s (matching the simulator's Fig 4.2 ring measurement).
  const uint64_t micros = counters_.shuffle_micros.load();
  const uint64_t mbit_s =
      micros == 0 ? 0
                  : static_cast<uint64_t>(
                        (counters_.bytes_shuffled.load() * 8.0 / 1e6) /
                        (static_cast<double>(micros) / 1e6));
  registry->Set("dist.shuffle.mbit_s", mbit_s);
}

StatusOr<net::RemoteResult> Coordinator::Execute(const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.queries.fetch_add(1, std::memory_order_relaxed);
  for (const net::Client& w : workers_) {
    if (!w.connected()) {
      counters_.errors.fetch_add(1, std::memory_order_relaxed);
      return Status::FailedPrecondition(
          "coordinator is not connected to all workers (call Connect)");
    }
  }
  auto fail = [&](Status s) -> Status {
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    return s;
  };
  auto parsed = ParseQuery(text);
  if (!parsed.ok()) return fail(parsed.status());

  FragmentPlannerOptions popt;
  popt.num_workers = num_workers();
  popt.partition_column = options_.partition_column;
  popt.broadcast_max_bytes = options_.broadcast_max_bytes;
  popt.deadline_ms = options_.deadline_ms;
  popt.first_exchange_id = next_exchange_id_;
  FragmentPlanner planner(catalog_, popt);
  auto plan = planner.Plan(parsed->get());
  if (!plan.ok()) return fail(plan.status());
  next_exchange_id_ = plan->next_exchange_id;
  return RunPlan(*plan);
}

StatusOr<net::RemoteResult> Coordinator::RunPlan(const DistributedPlan& plan) {
  const int W = num_workers();
  const auto t0 = std::chrono::steady_clock::now();
  Run run;
  run.worker_tasks.assign(static_cast<size_t>(W), 0);
  run.chans.reserve(static_cast<size_t>(W));
  for (int w = 0; w < W; ++w) {
    run.chans.push_back(std::make_unique<Run::Chan>());
  }

  // Routing tables: producers per stream, declared consumers per stream,
  // input credit budgets.
  for (const StreamRoute& route : plan.streams) {
    Run::StreamExec se;
    se.mode = route.mode;
    const FragmentUnit& producer =
        plan.fragments[static_cast<size_t>(route.producer_fragment)];
    se.producers_remaining = producer.singleton ? 1 : W;
    se.is_root = route.exchange_id == plan.root_exchange_id;
    run.streams.emplace(route.exchange_id, std::move(se));
    switch (route.mode) {
      case net::ExchangeMode::kPartition:
        counters_.repartitions.fetch_add(1, std::memory_order_relaxed);
        break;
      case net::ExchangeMode::kBroadcast:
        counters_.broadcasts.fetch_add(1, std::memory_order_relaxed);
        break;
      case net::ExchangeMode::kGather:
        if (route.exchange_id != plan.root_exchange_id) {
          counters_.gathers.fetch_add(1, std::memory_order_relaxed);
        }
        break;
    }
  }
  for (const FragmentUnit& frag : plan.fragments) {
    const int first = 0;
    const int last = frag.singleton ? 1 : W;
    for (int w = first; w < last; ++w) {
      for (const net::FragmentInput& input : frag.request.inputs) {
        auto it = run.streams.find(input.exchange_id);
        if (it == run.streams.end()) {
          return Status::Internal("fragment references unknown exchange");
        }
        it->second.consumer_workers.push_back(w);
        run.input_credits[Key(w, input.exchange_id)] =
            net::kExchangeInitialCredits;
      }
      run.terminals_remaining++;
    }
  }
  auto root_it = run.streams.find(plan.root_exchange_id);
  if (root_it == run.streams.end()) {
    return Status::Internal("plan has no root stream");
  }
  run.root_remaining = root_it->second.producers_remaining;
  run.root_width = static_cast<uint32_t>(plan.result_schema.tuple_width());

  // Dispatch every fragment before routing any data: workers must know an
  // exchange id before batches can land on it.
  for (const FragmentUnit& frag : plan.fragments) {
    const int last = frag.singleton ? 1 : W;
    for (int w = 0; w < last; ++w) {
      const uint32_t rid = workers_[static_cast<size_t>(w)].AllocRequestId();
      run.rid_to_stream[Key(w, rid)] = frag.request.output_exchange_id;
      run.frag_rid[Key(w, frag.request.output_exchange_id)] = rid;
      Status s = workers_[static_cast<size_t>(w)].SendFrame(
          net::EncodeFragmentFrame(rid, frag.request));
      if (!s.ok()) {
        for (net::Client& c : workers_) c.Close();
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        return s;
      }
      counters_.fragments_dispatched.fetch_add(1, std::memory_order_relaxed);
    }
  }

  auto sender_loop = [&](int w) {
    Run::Chan& chan = *run.chans[static_cast<size_t>(w)];
    net::Client& client = workers_[static_cast<size_t>(w)];
    for (;;) {
      std::unique_lock<std::mutex> lk(run.mu);
      run.cv.wait(lk, [&] { return chan.stop || !chan.q.empty(); });
      if (chan.q.empty() || (chan.stop && run.failed)) break;
      Run::Outbound item = std::move(chan.q.front());
      chan.q.pop_front();
      if (item.gate_exchange != 0) {
        uint32_t& avail = run.input_credits[Key(w, item.gate_exchange)];
        if (avail == 0) {
          run.credit_waits++;
          run.cv.wait(lk, [&] {
            return run.failed ||
                   run.input_credits[Key(w, item.gate_exchange)] > 0;
          });
          if (run.failed) break;
        }
        run.input_credits[Key(w, item.gate_exchange)]--;
      }
      lk.unlock();
      Status s = client.SendFrame(item.frame);
      if (!s.ok()) {
        std::lock_guard<std::mutex> g(run.mu);
        run.Fail(std::move(s));
        break;
      }
      if (item.grant_worker >= 0) {
        Run::Outbound grant;
        grant.frame = net::EncodeExchangeCreditFrame(
            item.grant_request_id,
            net::ExchangeCreditMessage{item.grant_exchange, 1});
        std::lock_guard<std::mutex> g(run.mu);
        run.chans[static_cast<size_t>(item.grant_worker)]->q.push_back(
            std::move(grant));
        run.cv.notify_all();
      }
      {
        // Queue drained? The control thread waits on that to stop us.
        std::lock_guard<std::mutex> g(run.mu);
        if (chan.q.empty()) run.cv.notify_all();
      }
    }
  };

  auto reader_loop = [&](int w) {
    net::Client& client = workers_[static_cast<size_t>(w)];
    for (;;) {
      auto frame = client.ReadAnyFrame();
      if (!frame.ok()) {
        std::lock_guard<std::mutex> g(run.mu);
        if (!run.Finished()) run.Fail(frame.status());
        return;
      }
      const uint32_t rid = frame->header.request_id;
      switch (static_cast<net::Opcode>(frame->header.opcode)) {
        case net::Opcode::kPong:
          return;  // Drain marker: everything before it was processed.
        case net::Opcode::kExchangeCredit: {
          auto credit = net::DecodeExchangeCredit(Slice(frame->body));
          if (!credit.ok()) {
            std::lock_guard<std::mutex> g(run.mu);
            run.Fail(credit.status());
            return;
          }
          std::lock_guard<std::mutex> g(run.mu);
          run.input_credits[Key(w, credit->exchange_id)] += credit->credits;
          run.cv.notify_all();
          break;
        }
        case net::Opcode::kExchangeData: {
          auto batch = net::DecodeExchangeData(Slice(frame->body));
          if (!batch.ok()) {
            std::lock_guard<std::mutex> g(run.mu);
            run.Fail(batch.status());
            return;
          }
          std::lock_guard<std::mutex> g(run.mu);
          auto it = run.streams.find(batch->exchange_id);
          if (it == run.streams.end()) {
            run.Fail(Status::Internal(StrFormat(
                "worker sent batch for unknown exchange %u",
                batch->exchange_id)));
            return;
          }
          run.bytes += batch->tuples.size();
          run.batches++;
          const uint32_t grant_rid =
              run.frag_rid[Key(w, batch->exchange_id)];
          if (it->second.is_root) {
            if (batch->tuple_width != run.root_width) {
              run.Fail(Status::Internal("result tuple width mismatch"));
              return;
            }
            run.result_tuples.append(batch->tuples);
            run.result_rows += batch->num_tuples;
          } else {
            const int target = static_cast<int>(batch->partition_id);
            if (target < 0 || target >= W) {
              run.Fail(Status::Internal("batch routed to bad partition"));
              return;
            }
            Run::Outbound out;
            out.gate_exchange = batch->exchange_id;
            out.grant_worker = w;
            out.grant_exchange = batch->exchange_id;
            out.grant_request_id = grant_rid;
            out.frame = net::EncodeExchangeDataFrame(grant_rid, *batch);
            run.chans[static_cast<size_t>(target)]->q.push_back(
                std::move(out));
            run.cv.notify_all();
            break;
          }
          // Root batch consumed on the spot: credit the producer directly.
          Run::Outbound grant;
          grant.frame = net::EncodeExchangeCreditFrame(
              grant_rid,
              net::ExchangeCreditMessage{batch->exchange_id, 1});
          run.chans[static_cast<size_t>(w)]->q.push_back(std::move(grant));
          run.cv.notify_all();
          break;
        }
        case net::Opcode::kStats: {
          auto stats = net::DecodeStats(Slice(frame->body));
          std::lock_guard<std::mutex> g(run.mu);
          auto rit = run.rid_to_stream.find(Key(w, rid));
          if (rit == run.rid_to_stream.end()) break;  // Not a fragment.
          if (stats.ok()) {
            auto tit = stats->counters.find("engine.tasks_executed");
            if (tit != stats->counters.end()) {
              run.worker_tasks[static_cast<size_t>(w)] += tit->second;
            }
          }
          auto sit = run.streams.find(rit->second);
          if (sit == run.streams.end()) break;
          Run::StreamExec& se = sit->second;
          se.producers_remaining--;
          run.terminals_remaining--;
          if (se.producers_remaining == 0) {
            if (se.is_root) {
              // Root complete; nothing downstream to EOF.
            } else {
              for (int t : se.consumer_workers) {
                Run::Outbound eof;
                eof.frame = net::EncodeExchangeEofFrame(
                    0, net::ExchangeEofMessage{rit->second});
                run.chans[static_cast<size_t>(t)]->q.push_back(
                    std::move(eof));
              }
            }
          }
          if (se.is_root) run.root_remaining--;
          run.cv.notify_all();
          break;
        }
        case net::Opcode::kError: {
          auto err = net::DecodeError(Slice(frame->body));
          std::lock_guard<std::mutex> g(run.mu);
          run.Fail(Status::Internal(
              err.ok() ? StrFormat("worker %d: %s", w, err->message.c_str())
                       : "worker reported an undecodable error"));
          return;
        }
        default:
          break;  // kSchema/kRows never appear on the fragment path.
      }
    }
  };

  for (int w = 0; w < W; ++w) {
    run.chans[static_cast<size_t>(w)]->sender =
        std::thread(sender_loop, w);
    run.chans[static_cast<size_t>(w)]->reader =
        std::thread(reader_loop, w);
  }

  // Wait for completion (all terminals in), then for the grant/EOF queues
  // to drain, then stop the senders.
  {
    std::unique_lock<std::mutex> lk(run.mu);
    run.cv.wait(lk, [&] { return run.Finished(); });
    if (!run.failed) {
      run.cv.wait(lk, [&] {
        if (run.failed) return true;
        for (const auto& chan : run.chans) {
          if (!chan->q.empty()) return false;
        }
        return true;
      });
    }
    for (const auto& chan : run.chans) chan->stop = true;
    run.cv.notify_all();
  }
  for (const auto& chan : run.chans) chan->sender.join();

  // Readers drain until the pong marker (ordered after every pending
  // server frame); on failure, hard-close instead so they unblock.
  bool failed_snapshot;
  {
    std::lock_guard<std::mutex> g(run.mu);
    failed_snapshot = run.failed;
  }
  if (failed_snapshot) {
    for (net::Client& c : workers_) c.Close();
  } else {
    for (int w = 0; w < W; ++w) {
      net::Client& c = workers_[static_cast<size_t>(w)];
      Status s = c.SendFrame(net::EncodePingFrame(c.AllocRequestId()));
      if (!s.ok()) {
        std::lock_guard<std::mutex> g(run.mu);
        run.Fail(std::move(s));
        c.Close();
      }
    }
  }
  for (const auto& chan : run.chans) chan->reader.join();

  {
    std::lock_guard<std::mutex> g(run.mu);
    if (run.failed) {
      for (net::Client& c : workers_) c.Close();
      counters_.errors.fetch_add(1, std::memory_order_relaxed);
      return run.error;
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
  counters_.batches_routed.fetch_add(run.batches, std::memory_order_relaxed);
  counters_.bytes_shuffled.fetch_add(run.bytes, std::memory_order_relaxed);
  counters_.rows_returned.fetch_add(run.result_rows,
                                    std::memory_order_relaxed);
  counters_.credit_waits.fetch_add(run.credit_waits,
                                   std::memory_order_relaxed);
  counters_.shuffle_micros.fetch_add(micros, std::memory_order_relaxed);

  net::RemoteResult result;
  result.schema = plan.result_schema;
  result.tuples = std::move(run.result_tuples);
  result.num_tuples = run.result_rows;
  result.server_seconds = static_cast<double>(micros) / 1e6;
  uint64_t total_tasks = 0;
  uint64_t max_tasks = 0;
  for (uint64_t t : run.worker_tasks) {
    total_tasks += t;
    max_tasks = std::max(max_tasks, t);
  }
  result.counters["dist.batches_routed"] = run.batches;
  result.counters["dist.bytes_shuffled"] = run.bytes;
  result.counters["dist.credit_waits"] = run.credit_waits;
  result.counters["dist.worker_tasks_total"] = total_tasks;
  result.counters["dist.worker_tasks_max"] = max_tasks;
  for (int w = 0; w < W; ++w) {
    result.counters[StrFormat("dist.worker_tasks.%d", w)] =
        run.worker_tasks[static_cast<size_t>(w)];
  }
  return result;
}

}  // namespace dist
}  // namespace dfdb

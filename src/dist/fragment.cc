#include "dist/fragment.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "ra/analyzer.h"
#include "ra/raql.h"

namespace dfdb {
namespace dist {

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  return JoinStrings(names, ",");
}

std::string BracketList(const std::vector<std::string>& names) {
  // Spelled out (not `"[" + ... + "]"`): the rvalue operator+ chain trips
  // a gcc-12 -Werror=restrict false positive at -O2.
  std::string out = "[";
  out += JoinStrings(names, ", ");
  out += "]";
  return out;
}

/// True when every column of the comma-joined \p key_csv is in \p cols —
/// i.e. a stream partitioned by key_csv is also grouped-colocated for a
/// group-by over cols.
bool KeyCoveredBy(const std::string& key_csv,
                  const std::vector<std::string>& cols) {
  if (key_csv.empty()) return false;
  const std::set<std::string> have(cols.begin(), cols.end());
  size_t start = 0;
  while (start <= key_csv.size()) {
    const size_t comma = key_csv.find(',', start);
    const std::string part = key_csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (have.count(part) == 0) return false;
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

/// All of \p names resolve in \p schema to equality-stable (non-double)
/// columns, so hash routing on them is sound.
bool ColumnsHashable(const Schema& schema,
                     const std::vector<std::string>& names) {
  if (names.empty()) return false;
  for (const std::string& name : names) {
    auto idx = schema.ColumnIndex(name);
    if (!idx.ok()) return false;
    if (schema.column(*idx).type == ColumnType::kDouble) return false;
  }
  return true;
}

}  // namespace

std::string ExchangeTempName(uint32_t exchange_id) {
  return StrFormat("__exq%u", exchange_id);
}

/// A subtree kept as composable RAQL text, annotated with where its data
/// lives: on every worker (optionally hash-partitioned by partition_key)
/// or gathered onto worker 0 (singleton).
struct FragmentPlanner::Stream {
  std::string raql;
  std::vector<net::FragmentInput> inputs;
  bool singleton = false;
  /// Comma-joined column names the stream is hash-partitioned by across
  /// workers; empty = unknown placement.
  std::string partition_key;
  const PlanNode* node = nullptr;  ///< Schema and cardinality source.
};

FragmentPlanner::FragmentPlanner(const Catalog* catalog,
                                 FragmentPlannerOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      optimizer_(catalog),
      next_exchange_id_(options_.first_exchange_id) {}

uint64_t FragmentPlanner::EstimateBytes(const Stream& s) const {
  const double rows = optimizer_.EstimateRows(*s.node);
  const double bytes = rows * s.node->output_schema.tuple_width();
  return bytes < 0 ? 0 : static_cast<uint64_t>(bytes);
}

StatusOr<FragmentPlanner::Stream> FragmentPlanner::Cut(
    Stream s, net::ExchangeMode mode,
    const std::vector<std::string>& key_columns) {
  const Schema& schema = s.node->output_schema;
  net::FragmentRequest req;
  req.deadline_ms = options_.deadline_ms;
  req.text = std::move(s.raql);
  req.inputs = std::move(s.inputs);
  req.output_exchange_id = next_exchange_id_++;
  req.output_mode = mode;
  req.output_partitions = mode == net::ExchangeMode::kGather
                              ? 1
                              : static_cast<uint32_t>(options_.num_workers);
  for (const std::string& name : key_columns) {
    DFDB_ASSIGN_OR_RETURN(int idx, schema.ColumnIndex(name));
    req.output_key_cols.push_back(static_cast<uint32_t>(idx));
  }
  plan_.fragments.push_back(FragmentUnit{s.singleton, std::move(req)});
  const auto& placed = plan_.fragments.back().request;
  plan_.streams.push_back(StreamRoute{
      placed.output_exchange_id,
      static_cast<int>(plan_.fragments.size()) - 1, mode});

  Stream out;
  out.raql = ExchangeTempName(placed.output_exchange_id);
  out.inputs.push_back(
      net::FragmentInput{placed.output_exchange_id, out.raql, schema});
  out.singleton = mode == net::ExchangeMode::kGather;
  out.partition_key =
      mode == net::ExchangeMode::kPartition ? JoinNames(key_columns) : "";
  out.node = s.node;
  return out;
}

StatusOr<FragmentPlanner::Stream> FragmentPlanner::BuildScan(
    const PlanNode& node) {
  Stream s;
  DFDB_ASSIGN_OR_RETURN(s.raql, PlanToRaql(node));
  s.node = &node;
  // Base relations are hash-partitioned across workers on the deployment's
  // partition column (when they carry it and it hashes soundly).
  if (options_.num_workers > 1 &&
      ColumnsHashable(node.output_schema, {options_.partition_column})) {
    s.partition_key = options_.partition_column;
  }
  return s;
}

StatusOr<FragmentPlanner::Stream> FragmentPlanner::BuildJoin(
    const PlanNode& node) {
  DFDB_ASSIGN_OR_RETURN(Stream l, BuildStream(node.child(0)));
  DFDB_ASSIGN_OR_RETURN(Stream r, BuildStream(node.child(1)));
  DFDB_ASSIGN_OR_RETURN(std::string pred, ExprToRaql(*node.predicate));

  auto compose = [&](std::string key) {
    Stream out;
    out.raql = StrFormat("join(%s, %s, %s)", l.raql.c_str(), r.raql.c_str(),
                         pred.c_str());
    out.inputs = std::move(l.inputs);
    out.inputs.insert(out.inputs.end(),
                      std::make_move_iterator(r.inputs.begin()),
                      std::make_move_iterator(r.inputs.end()));
    out.singleton = l.singleton && r.singleton;
    out.partition_key = std::move(key);
    out.node = &node;
    return out;
  };

  if (options_.num_workers == 1) return compose(l.partition_key);

  const std::vector<EquiJoinKey> keys = ExtractEquiJoinKeys(node);
  if (keys.empty()) {
    // No hash-partitionable key: colocate both sides on worker 0.
    if (!l.singleton) {
      DFDB_ASSIGN_OR_RETURN(l, Cut(std::move(l), net::ExchangeMode::kGather,
                                   {}));
    }
    if (!r.singleton) {
      DFDB_ASSIGN_OR_RETURN(r, Cut(std::move(r), net::ExchangeMode::kGather,
                                   {}));
    }
    return compose("");
  }

  std::vector<std::string> lcols, rcols;
  for (const EquiJoinKey& k : keys) {
    lcols.push_back(k.left_column);
    rcols.push_back(k.right_column);
  }
  const std::string lkey = JoinNames(lcols);
  const std::string rkey = JoinNames(rcols);

  if (l.singleton && r.singleton) return compose("");

  if (l.singleton != r.singleton) {
    // Mixed placement: ship the singleton side everywhere when it is
    // small, else pull the distributed side onto worker 0.
    Stream& single = l.singleton ? l : r;
    Stream& dist = l.singleton ? r : l;
    if (EstimateBytes(single) <= options_.broadcast_max_bytes) {
      const std::string key = dist.partition_key;
      DFDB_ASSIGN_OR_RETURN(
          single, Cut(std::move(single), net::ExchangeMode::kBroadcast, {}));
      return compose(key);
    }
    DFDB_ASSIGN_OR_RETURN(
        dist, Cut(std::move(dist), net::ExchangeMode::kGather, {}));
    return compose("");
  }

  // Both sides on all workers. Co-partitioned on the join key: local join.
  if (l.partition_key == lkey && r.partition_key == rkey) {
    return compose(lkey);
  }
  // Broadcast the (estimated) small side so the big side never moves.
  const uint64_t lbytes = EstimateBytes(l);
  const uint64_t rbytes = EstimateBytes(r);
  if (std::min(lbytes, rbytes) <= options_.broadcast_max_bytes) {
    if (rbytes <= lbytes) {
      const std::string key = l.partition_key;
      DFDB_ASSIGN_OR_RETURN(
          r, Cut(std::move(r), net::ExchangeMode::kBroadcast, {}));
      return compose(key);
    }
    const std::string key = r.partition_key;
    DFDB_ASSIGN_OR_RETURN(
        l, Cut(std::move(l), net::ExchangeMode::kBroadcast, {}));
    return compose(key);
  }
  // Distributed hash join: repartition whichever sides are not already
  // hash-placed on their join key columns.
  if (l.partition_key != lkey) {
    DFDB_ASSIGN_OR_RETURN(
        l, Cut(std::move(l), net::ExchangeMode::kPartition, lcols));
  }
  if (r.partition_key != rkey) {
    DFDB_ASSIGN_OR_RETURN(
        r, Cut(std::move(r), net::ExchangeMode::kPartition, rcols));
  }
  return compose(lkey);
}

StatusOr<FragmentPlanner::Stream> FragmentPlanner::BuildAggregate(
    const PlanNode& node) {
  DFDB_ASSIGN_OR_RETURN(Stream c, BuildStream(node.child(0)));
  DFDB_ASSIGN_OR_RETURN(std::string specs,
                        AggregateListToRaql(node.aggregates));
  const std::vector<std::string>& groups = node.columns;

  auto compose = [&](std::string key) {
    Stream out;
    out.raql = StrFormat("agg(%s, %s, %s)", c.raql.c_str(),
                         BracketList(groups).c_str(), specs.c_str());
    out.inputs = std::move(c.inputs);
    out.singleton = c.singleton;
    out.partition_key = std::move(key);
    out.node = &node;
    return out;
  };

  if (options_.num_workers == 1 || c.singleton) {
    return compose(KeyCoveredBy(c.partition_key, groups) ? c.partition_key
                                                         : "");
  }
  if (groups.empty()) {
    // Global aggregate: exact only with every row in one place.
    DFDB_ASSIGN_OR_RETURN(c, Cut(std::move(c), net::ExchangeMode::kGather,
                                 {}));
    return compose("");
  }
  if (KeyCoveredBy(c.partition_key, groups)) {
    // Every group already lives on exactly one worker.
    return compose(c.partition_key);
  }
  if (ColumnsHashable(node.child(0).output_schema, groups)) {
    // Shuffle on the group keys, then aggregate each group exactly where
    // all of its rows landed — no partial/merge rewrite needed.
    DFDB_ASSIGN_OR_RETURN(
        c, Cut(std::move(c), net::ExchangeMode::kPartition, groups));
    return compose(JoinNames(groups));
  }
  DFDB_ASSIGN_OR_RETURN(c, Cut(std::move(c), net::ExchangeMode::kGather, {}));
  return compose("");
}

StatusOr<FragmentPlanner::Stream> FragmentPlanner::BuildProject(
    const PlanNode& node) {
  for (size_t i = 0; i < node.project_aliases.size(); ++i) {
    if (!node.project_aliases[i].empty() &&
        node.project_aliases[i] != node.columns[i]) {
      return Status::InvalidArgument(
          "cannot distribute: project aliases are not expressible in RAQL");
    }
  }
  DFDB_ASSIGN_OR_RETURN(Stream c, BuildStream(node.child(0)));

  auto compose = [&](bool dedup, std::string key) {
    Stream out;
    out.raql = StrFormat("project(%s, %s%s)", c.raql.c_str(),
                         BracketList(node.columns).c_str(),
                         dedup ? ", dedup" : "");
    out.inputs = std::move(c.inputs);
    out.singleton = c.singleton;
    out.partition_key = std::move(key);
    out.node = &node;
    return out;
  };

  // The partition key survives projection iff all its columns do.
  const std::string kept_key =
      KeyCoveredBy(c.partition_key, node.columns) ? c.partition_key : "";
  if (!node.dedup || options_.num_workers == 1 || c.singleton) {
    return compose(node.dedup, kept_key);
  }
  if (!kept_key.empty()) {
    // Duplicates agree on every column, including the partition key, so
    // they are already colocated: local dedup is global dedup.
    return compose(true, kept_key);
  }
  if (ColumnsHashable(node.output_schema, node.columns)) {
    // Project without dedup, shuffle on all output columns, dedup locally.
    Stream projected = compose(false, "");
    DFDB_ASSIGN_OR_RETURN(
        c, Cut(std::move(projected), net::ExchangeMode::kPartition,
               node.columns));
    Stream out;
    out.raql = StrFormat("project(%s, %s, dedup)", c.raql.c_str(),
                         BracketList(node.columns).c_str());
    out.inputs = std::move(c.inputs);
    out.singleton = false;
    out.partition_key = JoinNames(node.columns);
    out.node = &node;
    return out;
  }
  // Unhashable projected columns (doubles): dedup on one worker.
  Stream projected = compose(false, "");
  DFDB_ASSIGN_OR_RETURN(
      c, Cut(std::move(projected), net::ExchangeMode::kGather, {}));
  Stream out;
  out.raql = StrFormat("project(%s, %s, dedup)", c.raql.c_str(),
                       BracketList(node.columns).c_str());
  out.inputs = std::move(c.inputs);
  out.singleton = true;
  out.node = &node;
  return out;
}

StatusOr<FragmentPlanner::Stream> FragmentPlanner::BuildBinarySetOp(
    const PlanNode& node) {
  DFDB_ASSIGN_OR_RETURN(Stream l, BuildStream(node.child(0)));
  DFDB_ASSIGN_OR_RETURN(Stream r, BuildStream(node.child(1)));

  auto compose = [&] {
    Stream out;
    out.raql = node.op == PlanOp::kUnion
                   ? StrFormat("union(%s, %s%s)", l.raql.c_str(),
                               r.raql.c_str(),
                               node.bag_semantics ? ", bag" : "")
                   : StrFormat("diff(%s, %s)", l.raql.c_str(),
                               r.raql.c_str());
    out.inputs = std::move(l.inputs);
    out.inputs.insert(out.inputs.end(),
                      std::make_move_iterator(r.inputs.begin()),
                      std::make_move_iterator(r.inputs.end()));
    out.singleton = l.singleton && r.singleton;
    out.node = &node;
    return out;
  };

  if (options_.num_workers == 1) return compose();
  // Bag union distributes as-is (concatenation commutes with partitioning).
  if (node.op == PlanOp::kUnion && node.bag_semantics && !l.singleton &&
      !r.singleton) {
    return compose();
  }
  // Set semantics (and mixed placement): colocate both sides on worker 0.
  if (!l.singleton) {
    DFDB_ASSIGN_OR_RETURN(l, Cut(std::move(l), net::ExchangeMode::kGather,
                                 {}));
  }
  if (!r.singleton) {
    DFDB_ASSIGN_OR_RETURN(r, Cut(std::move(r), net::ExchangeMode::kGather,
                                 {}));
  }
  return compose();
}

StatusOr<FragmentPlanner::Stream> FragmentPlanner::BuildStream(
    const PlanNode& node) {
  switch (node.op) {
    case PlanOp::kScan:
      return BuildScan(node);
    case PlanOp::kRestrict: {
      DFDB_ASSIGN_OR_RETURN(Stream c, BuildStream(node.child(0)));
      DFDB_ASSIGN_OR_RETURN(std::string pred, ExprToRaql(*node.predicate));
      Stream out;
      out.raql = StrFormat("restrict(%s, %s)", c.raql.c_str(), pred.c_str());
      out.inputs = std::move(c.inputs);
      out.singleton = c.singleton;
      out.partition_key = c.partition_key;
      out.node = &node;
      return out;
    }
    case PlanOp::kProject:
      return BuildProject(node);
    case PlanOp::kJoin:
      return BuildJoin(node);
    case PlanOp::kUnion:
    case PlanOp::kDifference:
      return BuildBinarySetOp(node);
    case PlanOp::kAggregate:
      return BuildAggregate(node);
    case PlanOp::kAppend:
    case PlanOp::kDelete:
      return Status::InvalidArgument(
          "writes are not supported in distributed execution");
  }
  return Status::InvalidArgument("unknown plan operator");
}

StatusOr<DistributedPlan> FragmentPlanner::Plan(PlanNode* root) {
  if (options_.num_workers < 1) {
    return Status::InvalidArgument("need at least one worker");
  }
  Analyzer analyzer(catalog_);
  DFDB_ASSIGN_OR_RETURN(QueryAnalysis analysis, analyzer.Resolve(root));
  if (!analysis.write_set.empty()) {
    return Status::InvalidArgument(
        "writes are not supported in distributed execution");
  }
  plan_.num_workers = options_.num_workers;
  DFDB_ASSIGN_OR_RETURN(Stream s, BuildStream(*root));

  // Root fragment: gather the result stream to the coordinator.
  net::FragmentRequest req;
  req.deadline_ms = options_.deadline_ms;
  req.text = std::move(s.raql);
  req.inputs = std::move(s.inputs);
  req.output_exchange_id = next_exchange_id_++;
  req.output_mode = net::ExchangeMode::kGather;
  req.output_partitions = 1;
  plan_.root_exchange_id = req.output_exchange_id;
  // One worker makes every placement trivially a singleton.
  const bool root_singleton = s.singleton || options_.num_workers == 1;
  plan_.fragments.push_back(FragmentUnit{root_singleton, std::move(req)});
  plan_.streams.push_back(StreamRoute{
      plan_.root_exchange_id, static_cast<int>(plan_.fragments.size()) - 1,
      net::ExchangeMode::kGather});
  plan_.result_schema = root->output_schema;
  plan_.next_exchange_id = next_exchange_id_;
  return std::move(plan_);
}

}  // namespace dist
}  // namespace dfdb

/// \file fragment.h
/// \brief Cuts a resolved plan tree into distributed fragments.
///
/// The paper's machine distributes one query across many processors by
/// streaming operand packets between cells; the scale-out engine does the
/// moral equivalent across `dfdb_server` processes. The planner walks the
/// analyzer-resolved tree bottom-up, keeping each subtree as composable
/// RAQL text for as long as the data can stay where it is, and *cutting*
/// the stream into a fragment whenever tuples must move:
///
///  - **repartition** both sides of an equi-join on the join key columns
///    (the distributed hash join),
///  - **broadcast** a small side (chosen from catalog cardinality stats)
///    so the big side never moves,
///  - **gather** onto one worker for operators with no partition-friendly
///    decomposition (set union, difference, global aggregates, dedup over
///    unhashable columns).
///
/// Base relations are assumed hash-partitioned across workers on
/// `options.partition_column` (workload/paper_benchmark.h's convention,
/// enforced by tools/dfdb_cluster at load time), which is what lets a
/// restrict/project pipeline run fully local and an aggregate grouped by
/// the partition column skip its shuffle.
///
/// Fragments reference their inputs as scans of coordinator-named temp
/// relations (`__exq<id>`), which workers materialize from kExchangeData
/// frames before executing the fragment text (net/server.cc).

#ifndef DFDB_DIST_FRAGMENT_H_
#define DFDB_DIST_FRAGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/statusor.h"
#include "net/protocol.h"
#include "ra/optimizer.h"
#include "ra/plan.h"

namespace dfdb {
namespace dist {

/// \brief One fragment of the distributed plan: a FragmentRequest plus the
/// worker set it runs on (worker 0 only, or every worker).
struct FragmentUnit {
  bool singleton = false;
  net::FragmentRequest request;
};

/// \brief One exchange edge of the plan, for the executor's routing and
/// EOF bookkeeping. Consumers are derived from FragmentUnit inputs.
struct StreamRoute {
  uint32_t exchange_id = 0;
  int producer_fragment = -1;  ///< Index into DistributedPlan::fragments.
  net::ExchangeMode mode = net::ExchangeMode::kGather;
};

/// \brief A fully cut plan: fragments in dependency order (root last, its
/// kGather output consumed by the coordinator itself).
struct DistributedPlan {
  std::vector<FragmentUnit> fragments;
  std::vector<StreamRoute> streams;
  uint32_t root_exchange_id = 0;
  Schema result_schema;
  int num_workers = 1;
  /// First exchange id not used by this plan (the coordinator threads it
  /// into the next query so temp names never collide across queries).
  uint32_t next_exchange_id = 1;
};

struct FragmentPlannerOptions {
  int num_workers = 1;
  /// Column base relations are hash-partitioned on across workers.
  std::string partition_column = "id";
  /// A join side estimated at or under this many bytes is broadcast
  /// instead of repartitioning both sides.
  uint64_t broadcast_max_bytes = 96 * 1024;
  /// Deadline stamped into every fragment; 0 = none.
  uint32_t deadline_ms = 0;
  /// First exchange id to allocate.
  uint32_t first_exchange_id = 1;
};

/// \brief Bottom-up fragment cutter over one resolved query.
///
/// Single-query, single-use: construct, Plan(), read the result. The
/// catalog provides schemas and cardinality stats only — the coordinator
/// plans against a data-free catalog (workload BuildPaperCatalog).
class FragmentPlanner {
 public:
  FragmentPlanner(const Catalog* catalog, FragmentPlannerOptions options);

  /// Resolves \p root against the catalog (in place, idempotent) and cuts
  /// it. InvalidArgument for writes (append/delete) — distributed
  /// execution is read-only — and for constructs RAQL cannot express.
  StatusOr<DistributedPlan> Plan(PlanNode* root);

 private:
  struct Stream;

  StatusOr<Stream> BuildStream(const PlanNode& node);
  StatusOr<Stream> BuildScan(const PlanNode& node);
  StatusOr<Stream> BuildJoin(const PlanNode& node);
  StatusOr<Stream> BuildAggregate(const PlanNode& node);
  StatusOr<Stream> BuildProject(const PlanNode& node);
  StatusOr<Stream> BuildBinarySetOp(const PlanNode& node);

  /// Cuts \p s into its own fragment whose output moves with \p mode;
  /// returns the stream reading the routed temp relation.
  StatusOr<Stream> Cut(Stream s, net::ExchangeMode mode,
                       const std::vector<std::string>& key_columns);

  /// Estimated stream size in bytes (optimizer cardinality x tuple width).
  uint64_t EstimateBytes(const Stream& s) const;

  const Catalog* catalog_;
  const FragmentPlannerOptions options_;
  Optimizer optimizer_;
  DistributedPlan plan_;
  uint32_t next_exchange_id_;
};

/// \brief Temp relation name workers materialize exchange \p id into.
std::string ExchangeTempName(uint32_t exchange_id);

}  // namespace dist
}  // namespace dfdb

#endif  // DFDB_DIST_FRAGMENT_H_

/// \file front_server.h
/// \brief DFW1-speaking front door for a distributed cluster.
///
/// Accepts ordinary client connections (the same wire protocol
/// tools/dfdb_client speaks against a single dfdb_server) and answers
/// kQuery frames by running them through a dist::Coordinator. Existing
/// clients and scripts work against a cluster unchanged.
///
/// Thread-per-connection blocking design: the coordinator already
/// serializes Execute() internally (one distributed query in flight per
/// cluster), so a poll loop buys nothing here, and blocking reads keep the
/// query path trivial to reason about.

#ifndef DFDB_DIST_FRONT_SERVER_H_
#define DFDB_DIST_FRONT_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "dist/coordinator.h"

namespace dfdb {
namespace dist {

struct FrontServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  int backlog = 16;
  uint32_t max_frame_bytes = 4 * 1024 * 1024;
};

/// \brief Lifecycle: construct → Start() → serve → Stop().
///
/// Stop() closes the listen socket, shuts down every connection, and joins
/// all threads; in-flight queries finish with a closed-connection error on
/// the client side at worst.
class FrontServer {
 public:
  FrontServer(Coordinator* coordinator, FrontServerOptions options);
  ~FrontServer();
  DFDB_DISALLOW_COPY(FrontServer);

  Status Start();
  void Stop();

  /// Bound TCP port (after a successful Start()).
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Coordinator* coordinator_;
  const FrontServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace dist
}  // namespace dfdb

#endif  // DFDB_DIST_FRONT_SERVER_H_

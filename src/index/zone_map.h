/// \file zone_map.h
/// \brief Per-page zone maps: min/max per attribute of a sealed page.
///
/// The paper's bandwidth argument (Section 3.3) is that only tuples which
/// survive a restrict should ever cross the rings; a zone map extends that
/// one level down — a page whose [min, max] range cannot contain a match is
/// never staged at all. Zone maps are built exactly once, when a page is
/// sealed (HeapFile::SealCurrentLocked and DeleteWhere's CoW rewrite are
/// the only two seal sites), and are erased when the page is freed. Because
/// sealed pages are immutable and MVCC versions are page-id lists, a zone
/// map is valid for every snapshot that can see its page — versioned
/// consistency falls out of page immutability, with no epoch bookkeeping.
///
/// This translation unit is compiled into dfdb_storage (HeapFile owns a
/// ZoneMapStore) and depends only on catalog + page; the predicate-facing
/// side (may-this-page-match for a ColCompare bound) lives in
/// index/access_path.h, above the ra layer.

#ifndef DFDB_INDEX_ZONE_MAP_H_
#define DFDB_INDEX_ZONE_MAP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "storage/page.h"

namespace dfdb {

/// \brief Min/max summary of one column over one page.
///
/// Numeric columns keep int64 or double extrema depending on the column
/// type; CHAR columns keep right-trimmed string extrema (matching the
/// interpreter's trim-before-compare semantics, see expr_detail::TrimmedLen).
/// `valid == false` means "no usable summary — never prune on this column";
/// it is set for double columns containing a NaN, because the comparison
/// kernels treat NaN as equal to everything (Cmp3F returns 0), so no range
/// test is conservative for such a page.
struct ZoneMapColumn {
  bool valid = false;
  int64_t min_i = 0;
  int64_t max_i = 0;
  double min_f = 0;
  double max_f = 0;
  std::string min_s;
  std::string max_s;
};

/// \brief Zone map of one sealed page: one ZoneMapColumn per schema column.
struct ZoneMapEntry {
  uint32_t tuples = 0;
  std::vector<ZoneMapColumn> cols;  ///< Parallel to the relation schema.
};

/// Builds the zone map of a sealed page. Columns of an empty page are all
/// invalid (an empty page is pruned by tuple count, not by range).
ZoneMapEntry BuildZoneMap(const Schema& schema, const Page& page);

/// True when the zone map brackets every tuple of \p page: each valid
/// column's [min, max] contains the column value of every tuple. The
/// DFDB_SANITIZE seal-time invariant (a stale or mis-built map would make
/// pruning drop matching tuples silently).
bool ZoneMapBrackets(const ZoneMapEntry& entry, const Schema& schema,
                     const Page& page);

/// \brief Thread-safe PageId -> zone map store, one per HeapFile.
///
/// Readers (scan pruning, possibly from many worker threads) and writers
/// (seal under the heap file's mutex, erase at page free) synchronize on an
/// internal mutex; entries are shared_ptr<const> so a reader's view stays
/// alive across a concurrent erase.
class ZoneMapStore {
 public:
  void Put(PageId id, ZoneMapEntry entry) {
    std::lock_guard<std::mutex> lock(mu_);
    maps_[id] = std::make_shared<const ZoneMapEntry>(std::move(entry));
  }

  /// Null when the page has no map (pre-index pages never exist in-repo;
  /// a miss simply means "do not prune").
  std::shared_ptr<const ZoneMapEntry> Get(PageId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = maps_.find(id);
    return it == maps_.end() ? nullptr : it->second;
  }

  void Erase(PageId id) {
    std::lock_guard<std::mutex> lock(mu_);
    maps_.erase(id);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return maps_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<PageId, std::shared_ptr<const ZoneMapEntry>> maps_;
};

}  // namespace dfdb

#endif  // DFDB_INDEX_ZONE_MAP_H_

/// \file access_path.h
/// \brief Runtime page pruning for marked scans — the one implementation
/// both backends call.
///
/// The optimizer marks a kScan with an access path and pre-resolved bounds
/// (PlanNode::access_path / prune_bounds); at execution time the threads
/// engine (scheduler scan drivers) and the ring simulator (IC operand
/// staging) pass the scan's snapshot page list through PruneScanPages()
/// before reading anything. Because both backends prune the *same marks*
/// against the *same snapshot view* with this one function, the surviving
/// page sets are identical — results stay byte-identical to a full scan,
/// only the page reads (and the simulator's ring transfers) shrink.

#ifndef DFDB_INDEX_ACCESS_PATH_H_
#define DFDB_INDEX_ACCESS_PATH_H_

#include <vector>

#include "index/index_stats.h"
#include "index/zone_map.h"
#include "ra/plan.h"
#include "storage/storage_engine.h"

namespace dfdb {

/// True when a page with zone map \p entry may contain a tuple satisfying
/// every bound in \p bounds (the conjuncts of the consuming restrict).
/// Conservative: unknown columns, invalid summaries (NaN pages), and kNe
/// bounds keep the page. Exposed for tests; the NaN/CHAR-trim semantics
/// mirror expr_detail exactly.
bool ZoneMapMayMatch(const ZoneMapEntry& entry, const Schema& schema,
                     const std::vector<ColCompare>& bounds);

/// Prunes \p pages (the scan's snapshot page list, in view order) per the
/// scan's marks. \p view_commit_ts is the commit timestamp the page list
/// belongs to; \p allow_gridfile must be false when the caller reads a
/// working head rather than a committed version (barrier mode), where only
/// zone maps — keyed by immutable page id — are safe. Returns the
/// surviving subset in the original order and accumulates counters into
/// \p stats.
std::vector<PageId> PruneScanPages(StorageEngine* storage,
                                   const PlanNode& scan,
                                   const std::vector<PageId>& pages,
                                   uint64_t view_commit_ts,
                                   bool allow_gridfile,
                                   IndexPruneCounters* stats);

}  // namespace dfdb

#endif  // DFDB_INDEX_ACCESS_PATH_H_

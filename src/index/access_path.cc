#include "index/access_path.h"

#include <cmath>
#include <unordered_set>

#include "index/index_manager.h"

namespace dfdb {
namespace {

using expr_detail::Cmp3F;
using expr_detail::Cmp3I;
using expr_detail::Cmp3S;

/// May any value in [cmin, cmax] (three-way compares of the column's min
/// and max against the constant) satisfy \p op?
bool RangeMayMatch(CompareOp op, int cmin, int cmax) {
  switch (op) {
    case CompareOp::kEq:
      return cmin <= 0 && cmax >= 0;
    case CompareOp::kNe:
      // Only a page whose every value equals the constant fails `!=`.
      return !(cmin == 0 && cmax == 0);
    case CompareOp::kLt:
      return cmin < 0;
    case CompareOp::kLe:
      return cmin <= 0;
    case CompareOp::kGt:
      return cmax > 0;
    case CompareOp::kGe:
      return cmax >= 0;
  }
  return true;
}

}  // namespace

bool ZoneMapMayMatch(const ZoneMapEntry& entry, const Schema& schema,
                     const std::vector<ColCompare>& bounds) {
  if (entry.tuples == 0) return false;
  for (const ColCompare& c : bounds) {
    // Bounds carry byte offsets (pre-resolved by the predicate compiler);
    // find the column summary at that offset.
    int col = -1;
    for (int i = 0; i < schema.num_columns(); ++i) {
      if (schema.offset(i) == c.offset) {
        col = i;
        break;
      }
    }
    if (col < 0 || static_cast<size_t>(col) >= entry.cols.size()) continue;
    const ZoneMapColumn& zc = entry.cols[static_cast<size_t>(col)];
    if (!zc.valid) continue;
    int cmin = 0, cmax = 0;
    switch (c.kind) {
      case ColCompare::Kind::kI32I:
      case ColCompare::Kind::kI64I:
        if (schema.column(col).type == ColumnType::kChar ||
            schema.column(col).type == ColumnType::kDouble) {
          continue;  // Offset collision with a non-int column: no pruning.
        }
        cmin = Cmp3I(zc.min_i, c.const_i);
        cmax = Cmp3I(zc.max_i, c.const_i);
        break;
      case ColCompare::Kind::kI32F:
      case ColCompare::Kind::kI64F:
        if (schema.column(col).type == ColumnType::kChar ||
            schema.column(col).type == ColumnType::kDouble) {
          continue;
        }
        // The kernels compare double(v) vs const_f; int64 -> double is
        // monotone, so [double(min), double(max)] brackets every
        // double(v). A NaN constant yields cmin == cmax == 0, and
        // RangeMayMatch then reproduces Cmp3F's NaN-equals-everything
        // behaviour exactly (kEq keeps the page, kLt prunes it — just
        // like no tuple could ever satisfy kLt against NaN).
        cmin = Cmp3F(static_cast<double>(zc.min_i), c.const_f);
        cmax = Cmp3F(static_cast<double>(zc.max_i), c.const_f);
        break;
      case ColCompare::Kind::kF64F:
        if (schema.column(col).type != ColumnType::kDouble) continue;
        cmin = Cmp3F(zc.min_f, c.const_f);
        cmax = Cmp3F(zc.max_f, c.const_f);
        break;
      case ColCompare::Kind::kStr:
        if (schema.column(col).type != ColumnType::kChar) continue;
        cmin = Cmp3S(zc.min_s.data(), static_cast<uint32_t>(zc.min_s.size()),
                     c.const_s.data(), static_cast<uint32_t>(c.const_s.size()));
        cmax = Cmp3S(zc.max_s.data(), static_cast<uint32_t>(zc.max_s.size()),
                     c.const_s.data(), static_cast<uint32_t>(c.const_s.size()));
        break;
    }
    if (!RangeMayMatch(c.op, cmin, cmax)) return false;
  }
  return true;
}

std::vector<PageId> PruneScanPages(StorageEngine* storage,
                                   const PlanNode& scan,
                                   const std::vector<PageId>& pages,
                                   uint64_t view_commit_ts,
                                   bool allow_gridfile,
                                   IndexPruneCounters* stats) {
  if (scan.access_path == ScanAccessPath::kFullScan ||
      scan.prune_bounds.empty() || pages.empty()) {
    return pages;
  }
  auto file = storage->GetHeapFile(scan.relation);
  if (!file.ok()) return pages;  // Racing drop; the scan will fail anyway.
  const Schema& schema = (*file)->schema();

  // Grid-file candidate set (page ids the probe says may match).
  bool have_candidates = false;
  std::unordered_set<PageId> candidates;
  if (scan.access_path == ScanAccessPath::kGridFile) {
    bool probed = false;
    if (allow_gridfile) {
      auto meta = storage->catalog().GetIndex(scan.index_name);
      if (meta.ok() && meta->relation == scan.relation) {
        auto index = GetIndexManager(storage)->Resolve(*meta, view_commit_ts,
                                                       pages);
        if (index != nullptr) {
          stats->gridfile_probes++;
          auto result = index->Probe(scan.prune_bounds);
          if (result.has_value()) {
            candidates.insert(result->begin(), result->end());
            have_candidates = true;
          }
          probed = true;
        }
      }
    }
    if (!probed || !have_candidates) stats->fallback_scans++;
  }

  std::vector<PageId> kept;
  kept.reserve(pages.size());
  for (PageId id : pages) {
    if (have_candidates && candidates.count(id) == 0) {
      stats->pages_pruned++;
      continue;
    }
    auto entry = (*file)->zone_maps().Get(id);
    if (entry != nullptr &&
        !ZoneMapMayMatch(*entry, schema, scan.prune_bounds)) {
      stats->pages_pruned++;
      stats->zonemap_hits++;
      continue;
    }
    kept.push_back(id);
  }
  return kept;
}

}  // namespace dfdb

#include "index/index_manager.h"

#include <algorithm>
#include <utility>

namespace dfdb {

Status IndexManager::CreateIndex(const std::string& name,
                                 const std::string& relation,
                                 std::vector<std::string> columns) {
  IndexMeta meta;
  meta.name = name;
  meta.relation = relation;
  meta.columns = std::move(columns);
  DFDB_RETURN_IF_ERROR(storage_->catalog().CreateIndex(meta));
  // Warm build at the current committed version; later snapshots at other
  // timestamps rebuild on demand in Resolve().
  Snapshot snap = storage_->CaptureSnapshot();
  auto view = snap.View(relation);
  if (view.ok()) (void)Resolve(meta, view->commit_ts, view->pages);
  return Status::OK();
}

Status IndexManager::DropIndex(const std::string& name) {
  DFDB_RETURN_IF_ERROR(storage_->catalog().DropIndex(name));
  std::lock_guard<std::mutex> lock(mu_);
  built_.erase(name);
  return Status::OK();
}

std::shared_ptr<const GridFileIndex> IndexManager::Resolve(
    const IndexMeta& meta, uint64_t commit_ts,
    const std::vector<PageId>& pages) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = built_.find(meta.name);
    if (it != built_.end()) {
      for (const auto& idx : it->second.versions) {
        if (idx->built_ts() == commit_ts &&
            idx->pages_indexed() == pages.size()) {
          return idx;
        }
      }
    }
  }
  // Build outside the lock (pass over every page of the version); two
  // racing builders produce identical immutable indexes, either may win
  // the cache slot.
  auto rel = storage_->catalog().GetRelation(meta.relation);
  if (!rel.ok()) return nullptr;
  std::vector<int> key_columns;
  for (const std::string& col : meta.columns) {
    auto idx = rel->schema.ColumnIndex(col);
    if (!idx.ok()) return nullptr;
    key_columns.push_back(*idx);
  }
  auto built = GridFileIndex::Build(rel->schema, key_columns,
                                    storage_->page_store(), pages, commit_ts);
  if (!built.ok()) return nullptr;

  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = built_[meta.name];
  entry.relation = rel->id;
  entry.versions.push_back(*built);
  if (entry.versions.size() > kVersionsCached) {
    entry.versions.erase(entry.versions.begin());
  }
  return *built;
}

void IndexManager::OnRelationDropped(RelationId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = built_.begin(); it != built_.end();) {
    if (it->second.relation == id) {
      it = built_.erase(it);
    } else {
      ++it;
    }
  }
}

IndexManager* GetIndexManager(StorageEngine* storage) {
  RelationIndexCache* cache = storage->GetOrCreateIndexCache(
      [storage]() { return std::make_unique<IndexManager>(storage); });
  // The slot is install-once and only this function installs, so the
  // concrete type is always IndexManager.
  return static_cast<IndexManager*>(cache);
}

}  // namespace dfdb

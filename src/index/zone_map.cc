#include "index/zone_map.h"

#include <cmath>
#include <cstring>

namespace dfdb {
namespace {

int64_t LoadI32(const char* p) {
  int32_t x;
  std::memcpy(&x, p, 4);
  return x;
}
int64_t LoadI64(const char* p) {
  int64_t x;
  std::memcpy(&x, p, 8);
  return x;
}
double LoadF64(const char* p) {
  double x;
  std::memcpy(&x, p, 8);
  return x;
}

/// Right-trimmed view of a CHAR column, mirroring expr_detail::TrimmedLen.
std::string_view Trimmed(const char* p, int width) {
  size_t n = static_cast<size_t>(width);
  while (n > 0 && p[n - 1] == ' ') --n;
  return std::string_view(p, n);
}

}  // namespace

ZoneMapEntry BuildZoneMap(const Schema& schema, const Page& page) {
  ZoneMapEntry entry;
  entry.tuples = static_cast<uint32_t>(page.num_tuples());
  entry.cols.resize(static_cast<size_t>(schema.num_columns()));
  if (page.num_tuples() == 0) return entry;

  for (int c = 0; c < schema.num_columns(); ++c) {
    ZoneMapColumn& zc = entry.cols[static_cast<size_t>(c)];
    const Column& col = schema.column(c);
    const int off = schema.offset(c);
    zc.valid = true;
    switch (col.type) {
      case ColumnType::kInt32:
      case ColumnType::kInt64: {
        const bool wide = col.type == ColumnType::kInt64;
        for (int i = 0; i < page.num_tuples(); ++i) {
          const char* t = page.tuple(i).data();
          const int64_t v = wide ? LoadI64(t + off) : LoadI32(t + off);
          if (i == 0 || v < zc.min_i) zc.min_i = v;
          if (i == 0 || v > zc.max_i) zc.max_i = v;
        }
        break;
      }
      case ColumnType::kDouble: {
        for (int i = 0; i < page.num_tuples(); ++i) {
          const double v = LoadF64(page.tuple(i).data() + off);
          if (std::isnan(v)) {
            // Cmp3F(NaN, x) == 0: a NaN tuple "equals" every constant, so
            // no [min, max] test over this page is conservative.
            zc.valid = false;
            break;
          }
          if (i == 0 || v < zc.min_f) zc.min_f = v;
          if (i == 0 || v > zc.max_f) zc.max_f = v;
        }
        break;
      }
      case ColumnType::kChar: {
        for (int i = 0; i < page.num_tuples(); ++i) {
          const std::string_view v =
              Trimmed(page.tuple(i).data() + off, col.width);
          if (i == 0 || v < std::string_view(zc.min_s)) zc.min_s = v;
          if (i == 0 || v > std::string_view(zc.max_s)) zc.max_s = v;
        }
        break;
      }
    }
  }
  return entry;
}

bool ZoneMapBrackets(const ZoneMapEntry& entry, const Schema& schema,
                     const Page& page) {
  if (entry.tuples != static_cast<uint32_t>(page.num_tuples())) return false;
  if (entry.cols.size() != static_cast<size_t>(schema.num_columns()))
    return false;
  for (int c = 0; c < schema.num_columns(); ++c) {
    const ZoneMapColumn& zc = entry.cols[static_cast<size_t>(c)];
    if (!zc.valid) continue;
    const Column& col = schema.column(c);
    const int off = schema.offset(c);
    for (int i = 0; i < page.num_tuples(); ++i) {
      const char* t = page.tuple(i).data();
      switch (col.type) {
        case ColumnType::kInt32:
        case ColumnType::kInt64: {
          const int64_t v = col.type == ColumnType::kInt64 ? LoadI64(t + off)
                                                           : LoadI32(t + off);
          if (v < zc.min_i || v > zc.max_i) return false;
          break;
        }
        case ColumnType::kDouble: {
          const double v = LoadF64(t + off);
          if (std::isnan(v)) return false;  // NaN pages must be invalid.
          if (v < zc.min_f || v > zc.max_f) return false;
          break;
        }
        case ColumnType::kChar: {
          const std::string_view v = Trimmed(t + off, col.width);
          if (v < std::string_view(zc.min_s) || v > std::string_view(zc.max_s))
            return false;
          break;
        }
      }
    }
  }
  return true;
}

}  // namespace dfdb

#include "index/grid_file.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

#include "common/status.h"

namespace dfdb {
namespace {

/// Split-point budget per dimension: enough resolution that selective
/// probes touch few cells, small enough that the scale stays cache-resident
/// (1-D: 128 cells; 2-D: 64 x 64 = 4096 cells).
int CellsPerDim(size_t num_dims) { return num_dims == 1 ? 128 : 64; }

double LoadKey(ColumnType type, const char* p) {
  switch (type) {
    case ColumnType::kInt32: {
      int32_t x;
      std::memcpy(&x, p, 4);
      return static_cast<double>(x);
    }
    case ColumnType::kInt64: {
      int64_t x;
      std::memcpy(&x, p, 8);
      return static_cast<double>(x);
    }
    case ColumnType::kDouble: {
      double x;
      std::memcpy(&x, p, 8);
      return x;
    }
    case ColumnType::kChar:
      break;
  }
  return 0;
}

}  // namespace

StatusOr<std::shared_ptr<const GridFileIndex>> GridFileIndex::Build(
    const Schema& schema, const std::vector<int>& key_columns,
    const PageStore& store, const std::vector<PageId>& pages,
    uint64_t built_ts) {
  if (key_columns.empty() || key_columns.size() > 2) {
    return Status::InvalidArgument("grid file needs 1 or 2 key columns");
  }
  auto index = std::shared_ptr<GridFileIndex>(new GridFileIndex());
  index->built_ts_ = built_ts;
  index->pages_indexed_ = pages.size();
  for (int col : key_columns) {
    if (col < 0 || col >= schema.num_columns()) {
      return Status::InvalidArgument("grid key column out of range");
    }
    if (schema.column(col).type == ColumnType::kChar) {
      return Status::InvalidArgument("grid key column must be numeric");
    }
    Dim d;
    d.column = col;
    d.offset = schema.offset(col);
    d.type = schema.column(col).type;
    index->dims_.push_back(std::move(d));
  }

  // Pass 1: equi-depth scales from a strided sample of the key values
  // (equi-width splits collapse under zipfian skew — nearly all tuples
  // would land in one cell).
  std::vector<PagePtr> loaded;
  loaded.reserve(pages.size());
  uint64_t total_tuples = 0;
  for (PageId id : pages) {
    auto page = store.Get(id);
    if (!page.ok()) return page.status();
    total_tuples += static_cast<uint64_t>((*page)->num_tuples());
    loaded.push_back(*std::move(page));
  }
  constexpr uint64_t kMaxSample = 1 << 16;
  const uint64_t stride = std::max<uint64_t>(1, total_tuples / kMaxSample);
  for (Dim& d : index->dims_) {
    std::vector<double> sample;
    sample.reserve(static_cast<size_t>(
        std::min<uint64_t>(total_tuples, kMaxSample + 1)));
    uint64_t pos = 0;
    for (const PagePtr& page : loaded) {
      for (int i = 0; i < page->num_tuples(); ++i, ++pos) {
        if (pos % stride != 0) continue;
        const double v = LoadKey(d.type, page->tuple(i).data() + d.offset);
        if (!std::isnan(v)) sample.push_back(v);
      }
    }
    std::sort(sample.begin(), sample.end());
    const int want = CellsPerDim(index->dims_.size());
    for (int s = 1; s < want && !sample.empty(); ++s) {
      const size_t at = sample.size() * static_cast<size_t>(s) /
                        static_cast<size_t>(want);
      const double b = sample[std::min(at, sample.size() - 1)];
      if (d.boundaries.empty() || b > d.boundaries.back()) {
        d.boundaries.push_back(b);
      }
    }
  }
  int num_cells = 1;
  for (const Dim& d : index->dims_) num_cells *= d.cells();
  index->num_cells_ = num_cells;
  index->postings_.resize(static_cast<size_t>(num_cells));

  // Pass 2: post each page to every cell one of its tuples falls in.
  // Pages are walked in view order and each page is appended at most once
  // per cell, so posting lists come out sorted iff page ids ascend; sort
  // defensively since views may reorder after CoW rewrites.
  std::vector<char> touched(static_cast<size_t>(num_cells));
  for (size_t pi = 0; pi < loaded.size(); ++pi) {
    const Page& page = *loaded[pi];
    std::fill(touched.begin(), touched.end(), 0);
    for (int i = 0; i < page.num_tuples(); ++i) {
      const char* t = page.tuple(i).data();
      // Cell ranges per dim (a NaN key spans the whole dimension).
      int lo[2] = {0, 0}, hi[2] = {0, 0};
      for (size_t di = 0; di < index->dims_.size(); ++di) {
        const Dim& d = index->dims_[di];
        const double v = LoadKey(d.type, t + d.offset);
        if (std::isnan(v)) {
          lo[di] = 0;
          hi[di] = d.cells() - 1;
        } else {
          lo[di] = hi[di] = index->CellOf(static_cast<int>(di), v);
        }
      }
      if (index->dims_.size() == 1) {
        for (int c = lo[0]; c <= hi[0]; ++c) touched[static_cast<size_t>(c)] = 1;
      } else {
        const int inner = index->dims_[1].cells();
        for (int c0 = lo[0]; c0 <= hi[0]; ++c0) {
          for (int c1 = lo[1]; c1 <= hi[1]; ++c1) {
            touched[static_cast<size_t>(c0 * inner + c1)] = 1;
          }
        }
      }
    }
    for (int c = 0; c < num_cells; ++c) {
      if (touched[static_cast<size_t>(c)]) {
        index->postings_[static_cast<size_t>(c)].push_back(pages[pi]);
      }
    }
  }
  for (auto& list : index->postings_) std::sort(list.begin(), list.end());
  return std::shared_ptr<const GridFileIndex>(std::move(index));
}

int GridFileIndex::CellOf(int dim, double v) const {
  const std::vector<double>& b = dims_[static_cast<size_t>(dim)].boundaries;
  return static_cast<int>(std::upper_bound(b.begin(), b.end(), v) - b.begin());
}

std::optional<std::vector<PageId>> GridFileIndex::Probe(
    const std::vector<ColCompare>& bounds) const {
  int lo[2] = {0, 0}, hi[2] = {0, 0};
  for (size_t di = 0; di < dims_.size(); ++di) hi[di] = dims_[di].cells() - 1;
  bool constrained = false;
  for (const ColCompare& c : bounds) {
    for (size_t di = 0; di < dims_.size(); ++di) {
      const Dim& d = dims_[di];
      if (c.offset != d.offset) continue;
      double v = 0;
      switch (c.kind) {
        case ColCompare::Kind::kI32I:
        case ColCompare::Kind::kI64I:
          // Same int -> double conversion the build pass applied to the
          // data; both sides rounded by one monotone function keeps the
          // cell-range test conservative.
          v = static_cast<double>(c.const_i);
          break;
        case ColCompare::Kind::kI32F:
        case ColCompare::Kind::kI64F:
        case ColCompare::Kind::kF64F:
          v = c.const_f;
          break;
        case ColCompare::Kind::kStr:
          continue;  // Not a numeric key bound.
      }
      if (std::isnan(v)) continue;  // NaN constants never reach Probe.
      const int cell = CellOf(static_cast<int>(di), v);
      switch (c.op) {
        case CompareOp::kEq:
          lo[di] = std::max(lo[di], cell);
          hi[di] = std::min(hi[di], cell);
          constrained = true;
          break;
        case CompareOp::kLt:
        case CompareOp::kLe:
          hi[di] = std::min(hi[di], cell);
          constrained = true;
          break;
        case CompareOp::kGt:
        case CompareOp::kGe:
          lo[di] = std::max(lo[di], cell);
          constrained = true;
          break;
        case CompareOp::kNe:
          break;  // A cell can always hold values != c.
      }
    }
  }
  if (!constrained) return std::nullopt;

  std::vector<PageId> out;
  if (lo[0] > hi[0] || (dims_.size() == 2 && lo[1] > hi[1])) return out;
  std::set<PageId> uniq;
  if (dims_.size() == 1) {
    for (int c = lo[0]; c <= hi[0]; ++c) {
      const auto& list = postings_[static_cast<size_t>(c)];
      uniq.insert(list.begin(), list.end());
    }
  } else {
    const int inner = dims_[1].cells();
    for (int c0 = lo[0]; c0 <= hi[0]; ++c0) {
      for (int c1 = lo[1]; c1 <= hi[1]; ++c1) {
        const auto& list = postings_[static_cast<size_t>(c0 * inner + c1)];
        uniq.insert(list.begin(), list.end());
      }
    }
  }
  out.assign(uniq.begin(), uniq.end());
  return out;
}

}  // namespace dfdb

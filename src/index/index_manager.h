/// \file index_manager.h
/// \brief Lifecycle of built grid-file indexes: CREATE INDEX, per-version
/// builds, and the probe-side resolution the pruning layer calls.
///
/// The catalog owns index *definitions* (IndexMeta); this manager owns the
/// built structures. A built GridFileIndex is bound to one MVCC version
/// (the page list of one commit timestamp), so Resolve() rebuilds on demand
/// whenever a snapshot reads a version nobody has built yet — an old
/// snapshot probing through a freshly written relation gets an index over
/// exactly its own page list, never the newer one. A small per-index
/// version cache keeps the common case (every reader at the newest commit)
/// build-free.
///
/// The manager installs itself into the StorageEngine's RelationIndexCache
/// slot, which anchors its lifetime to the database and lets DropRelation
/// invalidate built state without dfdb_storage linking this library.

#ifndef DFDB_INDEX_INDEX_MANAGER_H_
#define DFDB_INDEX_INDEX_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "index/grid_file.h"
#include "storage/storage_engine.h"

namespace dfdb {

class IndexManager : public RelationIndexCache {
 public:
  explicit IndexManager(StorageEngine* storage) : storage_(storage) {}

  /// Registers a grid-file index over 1–2 numeric columns (validated by
  /// Catalog::CreateIndex) and eagerly builds it at the current committed
  /// version.
  Status CreateIndex(const std::string& name, const std::string& relation,
                     std::vector<std::string> columns);

  /// Drops the definition and every built version.
  Status DropIndex(const std::string& name);

  /// The built index for \p meta matching the version at \p commit_ts with
  /// page list \p pages, building it if needed. Null when the index cannot
  /// be built (relation dropped, schema changed under the definition) —
  /// callers fall back to zone-map/full scanning.
  std::shared_ptr<const GridFileIndex> Resolve(const IndexMeta& meta,
                                               uint64_t commit_ts,
                                               const std::vector<PageId>& pages);

  void OnRelationDropped(RelationId id) override;

 private:
  /// Built versions of one index, newest last; capped at kVersionsCached.
  struct Entry {
    RelationId relation = kInvalidRelationId;
    std::vector<std::shared_ptr<const GridFileIndex>> versions;
  };
  static constexpr size_t kVersionsCached = 4;

  StorageEngine* storage_;
  std::mutex mu_;
  std::map<std::string, Entry, std::less<>> built_;
};

/// The database's IndexManager, installed into the StorageEngine's index
/// cache slot on first use.
IndexManager* GetIndexManager(StorageEngine* storage);

}  // namespace dfdb

#endif  // DFDB_INDEX_INDEX_MANAGER_H_

/// \file index_stats.h
/// \brief Counters for the access-path layer (zone maps + grid files).
///
/// Header-only and dependency-free so every layer that reports pruning —
/// the threads engine (per-query EngineCounters), the ring simulator
/// (MachineReport), and the benches — can share one counter vocabulary.
/// Published as `engine.index.*` / `machine.index.*` in the metrics
/// registry.

#ifndef DFDB_INDEX_INDEX_STATS_H_
#define DFDB_INDEX_INDEX_STATS_H_

#include <atomic>
#include <cstdint>

namespace dfdb {

/// \brief Plain snapshot of the pruning counters (report/stats structs).
struct IndexPruneCounters {
  /// Pages a marked scan skipped entirely (never staged, never scanned).
  uint64_t pages_pruned = 0;
  /// Pages eliminated because their zone map cannot contain a match.
  uint64_t zonemap_hits = 0;
  /// Grid-file lookups performed (one per probed scan).
  uint64_t gridfile_probes = 0;
  /// Marked scans that fell back to zone-map-only or full scanning
  /// (index dropped, unusable bounds, dirty relation state, ...).
  uint64_t fallback_scans = 0;

  IndexPruneCounters& operator+=(const IndexPruneCounters& o) {
    pages_pruned += o.pages_pruned;
    zonemap_hits += o.zonemap_hits;
    gridfile_probes += o.gridfile_probes;
    fallback_scans += o.fallback_scans;
    return *this;
  }
  bool any() const {
    return pages_pruned || zonemap_hits || gridfile_probes || fallback_scans;
  }
};

/// \brief Thread-safe accumulator, embedded in the engine's per-query
/// EngineCounters (many workers prune scans of one query concurrently).
struct IndexPruneStats {
  std::atomic<uint64_t> pages_pruned{0};
  std::atomic<uint64_t> zonemap_hits{0};
  std::atomic<uint64_t> gridfile_probes{0};
  std::atomic<uint64_t> fallback_scans{0};

  void Add(const IndexPruneCounters& c) {
    pages_pruned.fetch_add(c.pages_pruned, std::memory_order_relaxed);
    zonemap_hits.fetch_add(c.zonemap_hits, std::memory_order_relaxed);
    gridfile_probes.fetch_add(c.gridfile_probes, std::memory_order_relaxed);
    fallback_scans.fetch_add(c.fallback_scans, std::memory_order_relaxed);
  }

  IndexPruneCounters Snapshot() const {
    IndexPruneCounters c;
    c.pages_pruned = pages_pruned.load(std::memory_order_relaxed);
    c.zonemap_hits = zonemap_hits.load(std::memory_order_relaxed);
    c.gridfile_probes = gridfile_probes.load(std::memory_order_relaxed);
    c.fallback_scans = fallback_scans.load(std::memory_order_relaxed);
    return c;
  }
};

}  // namespace dfdb

#endif  // DFDB_INDEX_INDEX_STATS_H_

/// \file grid_file.h
/// \brief Grid-file secondary index: grid cells over 1–2 numeric key
/// attributes mapping to qualifying page ids.
///
/// Follows "Using Grid Files for a Relational Database Management System"
/// (PAPERS.md): each key dimension carries a linear scale (here equi-depth
/// split points over the observed values, so skewed/zipfian keys still give
/// balanced cells), and each grid cell holds the sorted list of pages
/// containing at least one tuple that falls in the cell. A probe converts a
/// restrict's compiled bounds into a cell rectangle and unions the posting
/// lists — the candidate pages a scan must still read (zone maps then prune
/// further on top).
///
/// An index instance is immutable after Build() and bound to one MVCC
/// version: it summarizes exactly the page list it was built from, at
/// `built_ts`. The IndexManager rebuilds per snapshot version on demand, so
/// pruning through an old Snapshot stays byte-identical to a full scan of
/// that snapshot.

#ifndef DFDB_INDEX_GRID_FILE_H_
#define DFDB_INDEX_GRID_FILE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "catalog/schema.h"
#include "common/statusor.h"
#include "ra/expr_compile.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace dfdb {

class GridFileIndex {
 public:
  /// One key dimension: the schema column it indexes and its linear scale.
  /// `boundaries` is sorted ascending; a value v falls in cell
  /// upper_bound(boundaries, v), giving boundaries.size() + 1 cells. All
  /// key values (int32/int64/double columns) are mapped to double with the
  /// same monotone conversion at build and probe time, so cell lookup is
  /// order-preserving and pruning stays conservative.
  struct Dim {
    int column = 0;
    int32_t offset = 0;
    ColumnType type = ColumnType::kInt32;
    std::vector<double> boundaries;
    int cells() const { return static_cast<int>(boundaries.size()) + 1; }
  };

  /// Builds a grid file over \p key_columns (1–2 numeric columns of
  /// \p schema) from the sealed \p pages. A tuple whose key is NaN is
  /// posted to every cell of that dimension (NaN compares equal to
  /// everything in the kernels, so it can match any probe).
  static StatusOr<std::shared_ptr<const GridFileIndex>> Build(
      const Schema& schema, const std::vector<int>& key_columns,
      const PageStore& store, const std::vector<PageId>& pages,
      uint64_t built_ts);

  /// Commit timestamp of the heap-file version this index summarizes.
  uint64_t built_ts() const { return built_ts_; }
  const std::vector<Dim>& dims() const { return dims_; }
  int num_cells() const { return num_cells_; }
  uint64_t pages_indexed() const { return pages_indexed_; }

  /// Candidate pages for \p bounds: the union of posting lists of the cell
  /// rectangle the bounds select, sorted ascending. nullopt when no bound
  /// constrains any key dimension (the probe cannot help — caller falls
  /// back to zone-map/full scanning). An empty vector means provably no
  /// page can match.
  std::optional<std::vector<PageId>> Probe(
      const std::vector<ColCompare>& bounds) const;

 private:
  GridFileIndex() = default;

  int CellOf(int dim, double v) const;

  std::vector<Dim> dims_;
  /// Posting lists per linearized cell (row-major over dims), each sorted.
  std::vector<std::vector<PageId>> postings_;
  int num_cells_ = 1;
  uint64_t built_ts_ = 0;
  uint64_t pages_indexed_ = 0;
};

}  // namespace dfdb

#endif  // DFDB_INDEX_GRID_FILE_H_

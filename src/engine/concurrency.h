/// \file concurrency.h
/// \brief Query admission control (Section 4.0, requirement 1).
///
/// "A database machine ... must be able to support the simultaneous
/// execution of multiple queries from several users ... This requires
/// careful control of which queries are permitted to execute concurrently."
/// The master controller admits a query only when its relation-granularity
/// read/write sets do not conflict with any running query.

#ifndef DFDB_ENGINE_CONCURRENCY_H_
#define DFDB_ENGINE_CONCURRENCY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "common/macros.h"
#include "common/status.h"

namespace dfdb {

/// \brief All-or-nothing relation-level shared/exclusive lock table.
///
/// No blocking waits: TryAdmit either acquires every lock or acquires none,
/// so admission never deadlocks — queries that cannot be admitted stay in
/// the MC's queue (the caller's responsibility).
class ConflictManager {
 public:
  ConflictManager() = default;
  DFDB_DISALLOW_COPY(ConflictManager);

  /// Attempts to admit query \p query_id reading \p read_set and writing
  /// \p write_set. Returns true and records the locks on success.
  bool TryAdmit(uint64_t query_id, const std::set<std::string>& read_set,
                const std::set<std::string>& write_set);

  /// Releases every lock held by \p query_id (idempotent).
  void Release(uint64_t query_id);

  /// Number of currently admitted queries.
  int admitted() const;

 private:
  struct LockState {
    std::set<uint64_t> readers;
    uint64_t writer = 0;  // 0 = none.
  };

  mutable std::mutex mu_;
  std::map<std::string, LockState> locks_;
  std::map<uint64_t, std::pair<std::set<std::string>, std::set<std::string>>>
      held_;
};

}  // namespace dfdb

#endif  // DFDB_ENGINE_CONCURRENCY_H_

/// \file concurrency.h
/// \brief Query admission control (Section 4.0, requirement 1).
///
/// "A database machine ... must be able to support the simultaneous
/// execution of multiple queries from several users ... This requires
/// careful control of which queries are permitted to execute concurrently."
/// The master controller admits a query only when its relation-granularity
/// read/write sets do not conflict with any running query.

#ifndef DFDB_ENGINE_CONCURRENCY_H_
#define DFDB_ENGINE_CONCURRENCY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace dfdb {

/// \brief All-or-nothing relation-level shared/exclusive lock table.
///
/// No blocking waits: TryAdmit either acquires every lock or acquires none,
/// so admission never deadlocks — queries that cannot be admitted stay in
/// the MC's queue (the caller's responsibility).
class ConflictManager {
 public:
  ConflictManager() = default;
  DFDB_DISALLOW_COPY(ConflictManager);

  /// Attempts to admit query \p query_id reading \p read_set and writing
  /// \p write_set. Returns true and records the locks on success.
  bool TryAdmit(uint64_t query_id, const std::set<std::string>& read_set,
                const std::set<std::string>& write_set);

  /// Releases every lock held by \p query_id (idempotent).
  void Release(uint64_t query_id);

  /// Number of currently admitted queries.
  int admitted() const;

 private:
  struct LockState {
    std::set<uint64_t> readers;
    uint64_t writer = 0;  // 0 = none.
  };

  mutable std::mutex mu_;
  std::map<std::string, LockState> locks_;
  std::map<uint64_t, std::pair<std::set<std::string>, std::set<std::string>>>
      held_;
};

/// \brief The MC's admission queue: ConflictManager plus a FIFO wait list
/// with an anti-starvation bound.
///
/// Historically, queued re-admission was "the caller's responsibility"; the
/// AdmissionQueue makes it the MC's. A query that cannot be admitted waits
/// in FIFO order and is retried whenever a running query releases its
/// locks. Plain FIFO retry still starves writers — a stream of readers
/// keeps the shared lock warm forever — so each waiting query counts how
/// many *conflicting* later queries were admitted ahead of it ("skips").
/// Once a query's skips reach `max_admission_skips` it becomes a barrier:
/// no conflicting query may be admitted ahead of it (direct submissions
/// queue behind it, and re-admission scans stop at it), so it is admitted
/// as soon as the current holders of its relations drain. This bounds the
/// bypass count of any waiting query by `max_admission_skips`.
///
/// Not internally synchronized beyond the ConflictManager it owns: the
/// scheduler serializes calls under its admission mutex, and tests drive it
/// single-threaded.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(int max_admission_skips = 8);
  DFDB_DISALLOW_COPY(AdmissionQueue);

  /// A query admitted from the wait queue by Release().
  struct ReAdmitted {
    uint64_t qid = 0;
    /// Failed re-admission probes this query experienced while queued.
    uint64_t failed_probes = 0;
    /// Conflicting later admissions that bypassed this query while it
    /// waited (the anti-starvation counter at admission time).
    uint64_t skips = 0;
  };

  /// Admits \p query_id now (true) or appends it to the wait queue (false).
  bool Submit(uint64_t query_id, const std::set<std::string>& read_set,
              const std::set<std::string>& write_set);

  /// Releases \p query_id's locks and scans the wait queue in FIFO order,
  /// admitting every query that now fits (stopping at a starved barrier
  /// query that still does not fit). Returns the admitted queries in queue
  /// order.
  std::vector<ReAdmitted> Release(uint64_t query_id);

  /// Removes a still-waiting query (returns false if it was not queued).
  bool Cancel(uint64_t query_id);

  /// Empties the wait queue (shutdown); returns the cancelled qids in
  /// queue order.
  std::vector<uint64_t> CancelAll();

  int admitted() const { return conflicts_.admitted(); }
  size_t queued() const { return waiting_.size(); }

  /// Times a conflicting later query was admitted ahead of a still-waiting
  /// \p query_id (0 when not waiting). Test/diagnostic visibility.
  uint64_t skips(uint64_t query_id) const;

  /// Total failed re-admission probes across all Release() scans.
  uint64_t requeue_failures() const { return requeue_failures_; }

  /// Total bypasses suffered by all queries over the queue's lifetime
  /// (accumulated when a waiting query is finally admitted or cancelled).
  uint64_t total_skips() const { return total_skips_; }

 private:
  struct Waiting {
    uint64_t qid = 0;
    std::set<std::string> reads;
    std::set<std::string> writes;
    uint64_t skips = 0;
    uint64_t failed_probes = 0;
  };

  /// Read/write-set conflict between a waiting query and another query.
  static bool Conflicts(const Waiting& w, const std::set<std::string>& reads,
                        const std::set<std::string>& writes);

  ConflictManager conflicts_;
  std::deque<Waiting> waiting_;
  const int max_skips_;
  uint64_t requeue_failures_ = 0;
  uint64_t total_skips_ = 0;
};

}  // namespace dfdb

#endif  // DFDB_ENGINE_CONCURRENCY_H_

/// \file edge.h
/// \brief Dataflow edges: compressed page streams between plan nodes.
///
/// An Edge connects a producing node to one input slot of its consumer.
/// Producers emit tuples or whole pages; the edge compresses partial pages
/// into full ones ("As pages (which may not be full) arrive, they are
/// compressed to form full pages", Section 4.2) and notifies the consumer
/// through a callback as each schedulable unit becomes available.

#ifndef DFDB_ENGINE_EDGE_H_
#define DFDB_ENGINE_EDGE_H_

#include <functional>
#include <memory>
#include <mutex>

#include "common/macros.h"
#include "storage/page.h"

namespace dfdb {

/// \brief Producer-side page compressor + consumer notification.
///
/// Thread-safe: multiple producer tasks may emit concurrently. The consumer
/// callback is invoked outside no locks other than the edge's own, and must
/// not re-enter the edge.
class Edge {
 public:
  /// \p on_page fires once per sealed page; \p on_close fires exactly once
  /// after the final page, when the producer side completes.
  using PageFn = std::function<void(PagePtr)>;
  using CloseFn = std::function<void()>;

  /// \p pseudo_relation tags produced pages (producing node id).
  /// \p tuple_width is the producer's output tuple width.
  /// \p unit_bytes is the scheduling unit: the configured page size, or the
  /// tuple width itself under tuple granularity.
  Edge(RelationId pseudo_relation, int tuple_width, int unit_bytes,
       PageFn on_page, CloseFn on_close)
      : relation_(pseudo_relation),
        tuple_width_(tuple_width),
        unit_bytes_(unit_bytes < tuple_width ? tuple_width : unit_bytes),
        on_page_(std::move(on_page)),
        on_close_(std::move(on_close)) {}

  DFDB_DISALLOW_COPY(Edge);

  int tuple_width() const { return tuple_width_; }
  int unit_bytes() const { return unit_bytes_; }

  /// Adds one encoded tuple; seals and delivers a page when full.
  Status EmitTuple(Slice tuple);

  /// Adds one tuple given as \p n byte ranges summing to the tuple width
  /// (kernel scatter/gather emission; see PageSink::EmitParts).
  Status EmitTupleParts(const Slice* parts, size_t n);

  /// Adds a whole produced page. Full pages of the right width pass through
  /// unchanged; partial pages are compressed tuple by tuple.
  Status EmitPage(const PagePtr& page);

  /// Producer completion: flushes any partial page, then signals close.
  /// Each producer task must NOT call this; the owning node calls it once
  /// when its last task retires.
  Status CloseProducer();

  uint64_t pages_delivered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pages_delivered_;
  }
  uint64_t tuples_emitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tuples_emitted_;
  }

 private:
  const RelationId relation_;
  const int tuple_width_;
  const int unit_bytes_;
  PageFn on_page_;
  CloseFn on_close_;

  mutable std::mutex mu_;
  std::unique_ptr<Page> current_;
  uint64_t pages_delivered_ = 0;
  uint64_t tuples_emitted_ = 0;
  bool closed_ = false;
};

}  // namespace dfdb

#endif  // DFDB_ENGINE_EDGE_H_

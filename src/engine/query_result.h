/// \file query_result.h
/// \brief Materialized result of one query execution.

#ifndef DFDB_ENGINE_QUERY_RESULT_H_
#define DFDB_ENGINE_QUERY_RESULT_H_

#include <functional>
#include <vector>

#include "catalog/schema.h"
#include "common/macros.h"
#include "engine/engine_stats.h"
#include "storage/page.h"
#include "storage/tuple.h"

namespace dfdb {

/// \brief The pages produced by a query's root node, with helpers to read
/// them back as typed rows.
class QueryResult {
 public:
  QueryResult() = default;
  explicit QueryResult(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  void set_schema(Schema schema) { schema_ = std::move(schema); }

  void AddPage(PagePtr page) {
    num_tuples_ += static_cast<uint64_t>(page->num_tuples());
    pages_.push_back(std::move(page));
  }

  const std::vector<PagePtr>& pages() const { return pages_; }
  uint64_t num_tuples() const { return num_tuples_; }
  bool empty() const { return num_tuples_ == 0; }

  /// Per-query execution statistics, attached by the engine when the query
  /// completes (replaces the old Executor::last_stats() side-channel, which
  /// raced under concurrent callers and could not attribute work to a query
  /// within a batch). Default-constructed for results the simulator builds.
  const ExecStats& stats() const { return stats_; }
  void set_stats(ExecStats stats) { stats_ = std::move(stats); }

  /// Event trace of the run that produced this result (shared across the
  /// batch; filter by TraceEvent::query). Null unless
  /// ExecOptions::enable_trace was set.
  const std::shared_ptr<const obs::Trace>& trace() const {
    return stats_.trace;
  }

  /// Invokes \p fn for every tuple; stops at the first non-OK status.
  Status ForEachTuple(const std::function<Status(const TupleView&)>& fn) const {
    for (const PagePtr& page : pages_) {
      for (int i = 0; i < page->num_tuples(); ++i) {
        TupleView view(&schema_, page->tuple(i));
        DFDB_RETURN_IF_ERROR(fn(view));
      }
    }
    return Status::OK();
  }

  /// Materializes every row as Values (test/diagnostic convenience).
  StatusOr<std::vector<std::vector<Value>>> ToRows() const {
    std::vector<std::vector<Value>> rows;
    rows.reserve(num_tuples_);
    Status status = ForEachTuple([&](const TupleView& t) -> Status {
      std::vector<Value> row;
      row.reserve(static_cast<size_t>(schema_.num_columns()));
      for (int c = 0; c < schema_.num_columns(); ++c) {
        DFDB_ASSIGN_OR_RETURN(Value v, t.GetValue(c));
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
      return Status::OK();
    });
    if (!status.ok()) return status;
    return rows;
  }

 private:
  Schema schema_;
  std::vector<PagePtr> pages_;
  uint64_t num_tuples_ = 0;
  ExecStats stats_;
};

}  // namespace dfdb

#endif  // DFDB_ENGINE_QUERY_RESULT_H_

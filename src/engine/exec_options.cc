#include "engine/exec_options.h"

#include "common/string_util.h"

namespace dfdb {

std::string_view GranularityToString(Granularity g) {
  switch (g) {
    case Granularity::kRelation:
      return "relation";
    case Granularity::kPage:
      return "page";
    case Granularity::kTuple:
      return "tuple";
  }
  return "?";
}

std::string_view PipelinePolicyToString(PipelinePolicy p) {
  switch (p) {
    case PipelinePolicy::kHonorPlan:
      return "plan";
    case PipelinePolicy::kForceMaterialize:
      return "materialize";
    case PipelinePolicy::kForceFuse:
      return "fuse";
  }
  return "?";
}

std::string_view IndexPolicyToString(IndexPolicy p) {
  switch (p) {
    case IndexPolicy::kHonorPlan:
      return "plan";
    case IndexPolicy::kForceFullScan:
      return "full_scan";
  }
  return "?";
}

std::string_view PushdownPolicyToString(PushdownPolicy p) {
  switch (p) {
    case PushdownPolicy::kHonorPlan:
      return "plan";
    case PushdownPolicy::kForceOff:
      return "off";
  }
  return "?";
}

std::string ExecOptions::ToString() const {
  return StrFormat(
      "granularity=%s procs=%d cells=%d page=%dB local=%dp cache=%dp "
      "pipeline=%s index=%s pushdown=%s",
      std::string(GranularityToString(granularity)).c_str(), num_processors,
      memory_cells_per_processor, page_bytes, local_memory_pages,
      disk_cache_pages, std::string(PipelinePolicyToString(pipeline)).c_str(),
      std::string(IndexPolicyToString(index)).c_str(),
      std::string(PushdownPolicyToString(pushdown)).c_str());
}

}  // namespace dfdb
